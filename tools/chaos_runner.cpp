// Seeded fault-schedule fuzzer for every registered consensus protocol.
//
//   chaos_runner --protocol=raft --seed=42          # replay one run
//   chaos_runner --protocol=all --seeds=200         # fuzz the 4x matrix
//   chaos_runner --protocol=raft --seeds=50 --inject-quorum-bug
//   chaos_runner --protocol=all --seeds=50 --compaction-cap=64
//   chaos_runner --protocol=all --seeds=200 --restarts   # crash-restart faults
//   chaos_runner --protocol=raft --seeds=50 --inject-persistence-bug
//   chaos_runner --seed-file=chaos_failures.txt     # replay saved seeds
//   chaos_runner --seeds=200 --restarts --corpus-out=tools/chaos_corpus.txt
//
// Each failure prints the seed, the generated schedule, the violated
// invariants, the recent event trace, and the exact repro command. Exit
// status is the number of failing (protocol, seed) runs, capped at 99.
//
// --seed-file replays an explicit list instead of a contiguous range: one
// run per line, either "<seed>" (run under --protocol) or
// "<protocol> <seed>", optionally followed by per-run flags
// (--compaction-cap=N, --inject-quorum-bug) so a failure replays under the
// exact configuration it was found with — --failures-out writes lines in
// this format; '#' starts a comment. This is the stepping stone for
// corpus-driven fuzzing — a future coverage-guided mutator only has to
// persist interesting seeds in this format.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/runner.h"
#include "consensus/registry.h"

using namespace praft;

namespace {

struct CliOptions {
  std::string protocol = "all";
  uint64_t seed = 1;
  int seeds = 1;
  int replicas = 5;
  bool inject_quorum_bug = false;
  bool restarts = false;
  bool inject_persistence_bug = false;
  size_t compaction_cap = 0;
  bool verbose = false;
  bool stop_on_failure = false;
  std::string failures_out;
  std::string seed_file;
  std::string corpus_out;
  size_t corpus_size = 16;
};

/// One (protocol, seed) run resolved from the CLI flags or a seed file.
/// Seed-file lines may carry per-run flag overrides (--compaction-cap=N,
/// --inject-quorum-bug) so a saved failure replays under the exact
/// configuration it was found with.
struct PlannedRun {
  std::string protocol;
  uint64_t seed = 0;
  size_t compaction_cap = 0;
  bool inject_quorum_bug = false;
  bool restarts = false;
  bool inject_persistence_bug = false;
};

/// Serializes a run's flag overrides in the --seed-file per-line format.
/// The ONE implementation shared by the --failures-out and --corpus-out
/// writers: both files replay through the same parser, so the seed must
/// come back under exactly the configuration it ran with.
std::string flags_of(const PlannedRun& run) {
  std::string flags;
  if (run.compaction_cap > 0) {
    char fb[48];
    std::snprintf(fb, sizeof(fb), " --compaction-cap=%zu", run.compaction_cap);
    flags += fb;
  }
  if (run.restarts) flags += " --restarts";
  if (run.inject_quorum_bug) flags += " --inject-quorum-bug";
  if (run.inject_persistence_bug) flags += " --inject-persistence-bug";
  return flags;
}

bool parse_flag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--protocol=NAME|all] [--seed=N] [--seeds=K] [--replicas=N]\n"
      "          [--inject-quorum-bug] [--compaction-cap=N] [--restarts]\n"
      "          [--inject-persistence-bug] [--verbose] [--stop-on-failure]\n"
      "          [--failures-out=PATH] [--seed-file=PATH]\n"
      "          [--corpus-out=PATH] [--corpus-size=N]\n"
      "protocols: all",
      argv0);
  for (const auto& name : consensus::protocol_names()) {
    std::fprintf(stderr, ", %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
}

void print_failure(const chaos::RunResult& r) {
  std::printf("FAIL protocol=%s seed=%llu\n", r.protocol.c_str(),
              static_cast<unsigned long long>(r.seed));
  std::printf("  schedule: %s\n", r.schedule.c_str());
  for (const auto& v : r.violations) {
    std::printf("  invariant violated: %s\n", v.c_str());
  }
  std::printf("  trace (last %zu events):\n", r.trace.size());
  for (const auto& t : r.trace) std::printf("    %s\n", t.c_str());
  std::printf("  repro: %s\n", r.repro.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (parse_flag(argv[i], "--protocol", &v) && v != nullptr) {
      cli.protocol = v;
    } else if (parse_flag(argv[i], "--seed", &v) && v != nullptr) {
      cli.seed = std::strtoull(v, nullptr, 10);
    } else if (parse_flag(argv[i], "--seeds", &v) && v != nullptr) {
      cli.seeds = std::atoi(v);
    } else if (parse_flag(argv[i], "--replicas", &v) && v != nullptr) {
      cli.replicas = std::atoi(v);
    } else if (parse_flag(argv[i], "--inject-quorum-bug", &v)) {
      cli.inject_quorum_bug = true;
    } else if (parse_flag(argv[i], "--restarts", &v)) {
      cli.restarts = true;
    } else if (parse_flag(argv[i], "--inject-persistence-bug", &v)) {
      cli.inject_persistence_bug = true;
    } else if (parse_flag(argv[i], "--corpus-out", &v) && v != nullptr) {
      cli.corpus_out = v;
    } else if (parse_flag(argv[i], "--corpus-size", &v) && v != nullptr) {
      cli.corpus_size = std::strtoull(v, nullptr, 10);
    } else if (parse_flag(argv[i], "--compaction-cap", &v) && v != nullptr) {
      cli.compaction_cap = std::strtoull(v, nullptr, 10);
    } else if (parse_flag(argv[i], "--seed-file", &v) && v != nullptr) {
      cli.seed_file = v;
    } else if (parse_flag(argv[i], "--verbose", &v)) {
      cli.verbose = true;
    } else if (parse_flag(argv[i], "--stop-on-failure", &v)) {
      cli.stop_on_failure = true;
    } else if (parse_flag(argv[i], "--failures-out", &v) && v != nullptr) {
      cli.failures_out = v;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  std::vector<std::string> protocols;
  if (cli.protocol == "all") {
    protocols = consensus::protocol_names();
  } else if (consensus::ProtocolRegistry::instance().contains(cli.protocol)) {
    protocols.push_back(cli.protocol);
  } else {
    std::fprintf(stderr, "unknown protocol '%s'\n", cli.protocol.c_str());
    usage(argv[0]);
    return 2;
  }

  // Resolve the run list: either the contiguous --seed/--seeds range, or an
  // explicit seed file (e.g. a saved --failures-out corpus).
  std::vector<PlannedRun> planned;
  if (!cli.seed_file.empty()) {
    std::ifstream in(cli.seed_file);
    if (!in) {
      std::fprintf(stderr, "cannot read seed file %s\n", cli.seed_file.c_str());
      return 2;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (const size_t hash = line.find('#'); hash != std::string::npos) {
        line.resize(hash);
      }
      std::istringstream ls(line);
      std::string first;
      if (!(ls >> first)) continue;  // blank / comment-only line
      std::vector<PlannedRun> line_runs;
      if (consensus::ProtocolRegistry::instance().contains(first)) {
        uint64_t seed = 0;
        if (!(ls >> seed)) {
          std::fprintf(stderr, "%s:%d: protocol '%s' without a seed\n",
                       cli.seed_file.c_str(), lineno, first.c_str());
          return 2;
        }
        line_runs.push_back(PlannedRun{first, seed, cli.compaction_cap,
                                       cli.inject_quorum_bug, cli.restarts,
                                       cli.inject_persistence_bug});
      } else {
        char* end = nullptr;
        const uint64_t seed = std::strtoull(first.c_str(), &end, 10);
        if (end == first.c_str() || *end != '\0') {
          std::fprintf(stderr,
                       "%s:%d: '%s' is neither a registered protocol nor a "
                       "seed\n",
                       cli.seed_file.c_str(), lineno, first.c_str());
          return 2;
        }
        // Bare seed: run it under the --protocol selection.
        for (const auto& protocol : protocols) {
          line_runs.push_back(PlannedRun{protocol, seed, cli.compaction_cap,
                                         cli.inject_quorum_bug, cli.restarts,
                                         cli.inject_persistence_bug});
        }
      }
      // Per-line flag overrides (written by --failures-out): the seed must
      // replay under the configuration it failed with.
      std::string flag;
      while (ls >> flag) {
        const char* v = nullptr;
        if (parse_flag(flag.c_str(), "--compaction-cap", &v) && v != nullptr) {
          for (auto& r : line_runs) {
            r.compaction_cap = std::strtoull(v, nullptr, 10);
          }
        } else if (parse_flag(flag.c_str(), "--inject-quorum-bug", &v)) {
          for (auto& r : line_runs) r.inject_quorum_bug = true;
        } else if (parse_flag(flag.c_str(), "--restarts", &v)) {
          for (auto& r : line_runs) r.restarts = true;
        } else if (parse_flag(flag.c_str(), "--inject-persistence-bug", &v)) {
          for (auto& r : line_runs) r.inject_persistence_bug = true;
        } else {
          std::fprintf(stderr, "%s:%d: unknown per-run flag '%s'\n",
                       cli.seed_file.c_str(), lineno, flag.c_str());
          return 2;
        }
      }
      planned.insert(planned.end(), line_runs.begin(), line_runs.end());
    }
  } else {
    for (const auto& protocol : protocols) {
      for (int k = 0; k < cli.seeds; ++k) {
        planned.push_back(PlannedRun{protocol,
                                     cli.seed + static_cast<uint64_t>(k),
                                     cli.compaction_cap,
                                     cli.inject_quorum_bug, cli.restarts,
                                     cli.inject_persistence_bug});
      }
    }
  }

  struct CorpusEntry {
    uint64_t score = 0;
    PlannedRun run;
  };
  std::vector<CorpusEntry> corpus;

  std::FILE* failures_file = nullptr;
  if (!cli.failures_out.empty()) {
    failures_file = std::fopen(cli.failures_out.c_str(), "w");
    if (failures_file == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", cli.failures_out.c_str());
      return 2;
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  int failures = 0;
  uint64_t runs = 0;
  for (const PlannedRun& pr : planned) {
    chaos::RunOptions opt;
    opt.protocol = pr.protocol;
    opt.seed = pr.seed;
    opt.num_replicas = cli.replicas;
    opt.inject_quorum_bug = pr.inject_quorum_bug;
    opt.compaction_log_cap = pr.compaction_cap;
    opt.crash_restarts = pr.restarts;
    opt.inject_persistence_bug = pr.inject_persistence_bug;
    const chaos::RunResult r = chaos::run_one(opt);
    ++runs;
    if (cli.verbose) {
      std::printf(
          "%s protocol=%s seed=%llu log=%lld client_ops=%llu snapshots=%llu "
          "restarts=%llu leader_changes=%llu revocations=%llu\n",
          r.ok ? "ok  " : "FAIL", r.protocol.c_str(),
          static_cast<unsigned long long>(r.seed),
          static_cast<long long>(r.log_length),
          static_cast<unsigned long long>(r.client_ops),
          static_cast<unsigned long long>(r.snapshot_installs),
          static_cast<unsigned long long>(r.restarts),
          static_cast<unsigned long long>(r.leader_changes),
          static_cast<unsigned long long>(r.revocations));
    }
    if (!cli.corpus_out.empty() && r.ok) {
      // Coverage score: rare-path events dominate (leader churn, Mencius
      // revocations, snapshot transfers, crash-restarts) so the saved corpus
      // concentrates the fuzzer on interesting interleavings.
      const uint64_t score = 3 * r.leader_changes + 5 * r.revocations +
                             2 * r.snapshot_installs + 3 * r.restarts +
                             (r.log_length > 0 ? 1 : 0);
      corpus.push_back(CorpusEntry{score, pr});
    }
    if (!r.ok) {
      ++failures;
      print_failure(r);
      if (failures_file != nullptr) {
        // Flags before the comment so --seed-file replays the exact
        // configuration the seed failed under.
        std::fprintf(failures_file, "%s %llu%s  # repro: %s\n",
                     r.protocol.c_str(),
                     static_cast<unsigned long long>(r.seed),
                     flags_of(pr).c_str(), r.repro.c_str());
        std::fflush(failures_file);
      }
      if (cli.stop_on_failure) break;
    }
  }
  if (failures_file != nullptr) std::fclose(failures_file);
  if (!cli.corpus_out.empty()) {
    // Persist the top-coverage seeds in the --seed-file format ("<protocol>
    // <seed> [flags]  # comment") so a later run — or the ROADMAP's
    // coverage-guided mutator — replays exactly these runs.
    std::stable_sort(corpus.begin(), corpus.end(),
                     [](const CorpusEntry& a, const CorpusEntry& b) {
                       return a.score > b.score;
                     });
    if (corpus.size() > cli.corpus_size) corpus.resize(cli.corpus_size);
    std::FILE* cf = std::fopen(cli.corpus_out.c_str(), "w");
    if (cf == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", cli.corpus_out.c_str());
      return 2;
    }
    std::fprintf(cf, "# chaos corpus: top-%zu coverage seeds of this batch\n",
                 corpus.size());
    for (const CorpusEntry& ce : corpus) {
      std::fprintf(cf, "%s %llu%s  # cov=%llu\n", ce.run.protocol.c_str(),
                   static_cast<unsigned long long>(ce.run.seed),
                   flags_of(ce.run).c_str(),
                   static_cast<unsigned long long>(ce.score));
    }
    std::fclose(cf);
    std::printf("corpus: wrote top %zu seeds to %s\n", corpus.size(),
                cli.corpus_out.c_str());
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  // Count the protocols actually run (a seed file may name a different set
  // than the --protocol selection).
  std::vector<std::string> ran;
  for (const PlannedRun& pr : planned) {
    if (std::find(ran.begin(), ran.end(), pr.protocol) == ran.end()) {
      ran.push_back(pr.protocol);
    }
  }
  std::printf("chaos: %llu runs (%zu protocol(s)) in %.1fs, %d failure(s)\n",
              static_cast<unsigned long long>(runs), ran.size(), elapsed,
              failures);
  return failures > 99 ? 99 : failures;
}
