// Seeded fault-schedule fuzzer for every registered consensus protocol.
//
//   chaos_runner --protocol=raft --seed=42          # replay one run
//   chaos_runner --protocol=all --seeds=200         # fuzz the 4x matrix
//   chaos_runner --protocol=raft --seeds=50 --inject-quorum-bug
//
// Each failure prints the seed, the generated schedule, the violated
// invariants, the recent event trace, and the exact repro command. Exit
// status is the number of failing (protocol, seed) runs, capped at 99.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/runner.h"
#include "consensus/registry.h"

using namespace praft;

namespace {

struct CliOptions {
  std::string protocol = "all";
  uint64_t seed = 1;
  int seeds = 1;
  int replicas = 5;
  bool inject_quorum_bug = false;
  bool verbose = false;
  bool stop_on_failure = false;
  std::string failures_out;
};

bool parse_flag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--protocol=NAME|all] [--seed=N] [--seeds=K] [--replicas=N]\n"
      "          [--inject-quorum-bug] [--verbose] [--stop-on-failure]\n"
      "          [--failures-out=PATH]\n"
      "protocols: all",
      argv0);
  for (const auto& name : consensus::protocol_names()) {
    std::fprintf(stderr, ", %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
}

void print_failure(const chaos::RunResult& r) {
  std::printf("FAIL protocol=%s seed=%llu\n", r.protocol.c_str(),
              static_cast<unsigned long long>(r.seed));
  std::printf("  schedule: %s\n", r.schedule.c_str());
  for (const auto& v : r.violations) {
    std::printf("  invariant violated: %s\n", v.c_str());
  }
  std::printf("  trace (last %zu events):\n", r.trace.size());
  for (const auto& t : r.trace) std::printf("    %s\n", t.c_str());
  std::printf("  repro: %s\n", r.repro.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (parse_flag(argv[i], "--protocol", &v) && v != nullptr) {
      cli.protocol = v;
    } else if (parse_flag(argv[i], "--seed", &v) && v != nullptr) {
      cli.seed = std::strtoull(v, nullptr, 10);
    } else if (parse_flag(argv[i], "--seeds", &v) && v != nullptr) {
      cli.seeds = std::atoi(v);
    } else if (parse_flag(argv[i], "--replicas", &v) && v != nullptr) {
      cli.replicas = std::atoi(v);
    } else if (parse_flag(argv[i], "--inject-quorum-bug", &v)) {
      cli.inject_quorum_bug = true;
    } else if (parse_flag(argv[i], "--verbose", &v)) {
      cli.verbose = true;
    } else if (parse_flag(argv[i], "--stop-on-failure", &v)) {
      cli.stop_on_failure = true;
    } else if (parse_flag(argv[i], "--failures-out", &v) && v != nullptr) {
      cli.failures_out = v;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  std::vector<std::string> protocols;
  if (cli.protocol == "all") {
    protocols = consensus::protocol_names();
  } else if (consensus::ProtocolRegistry::instance().contains(cli.protocol)) {
    protocols.push_back(cli.protocol);
  } else {
    std::fprintf(stderr, "unknown protocol '%s'\n", cli.protocol.c_str());
    usage(argv[0]);
    return 2;
  }

  std::FILE* failures_file = nullptr;
  if (!cli.failures_out.empty()) {
    failures_file = std::fopen(cli.failures_out.c_str(), "w");
    if (failures_file == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", cli.failures_out.c_str());
      return 2;
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  int failures = 0;
  uint64_t runs = 0;
  for (const auto& protocol : protocols) {
    for (int k = 0; k < cli.seeds; ++k) {
      chaos::RunOptions opt;
      opt.protocol = protocol;
      opt.seed = cli.seed + static_cast<uint64_t>(k);
      opt.num_replicas = cli.replicas;
      opt.inject_quorum_bug = cli.inject_quorum_bug;
      const chaos::RunResult r = chaos::run_one(opt);
      ++runs;
      if (cli.verbose) {
        std::printf("%s protocol=%s seed=%llu log=%lld client_ops=%llu\n",
                    r.ok ? "ok  " : "FAIL", r.protocol.c_str(),
                    static_cast<unsigned long long>(r.seed),
                    static_cast<long long>(r.log_length),
                    static_cast<unsigned long long>(r.client_ops));
      }
      if (!r.ok) {
        ++failures;
        print_failure(r);
        if (failures_file != nullptr) {
          std::fprintf(failures_file, "%s %llu  # repro: %s\n",
                       r.protocol.c_str(),
                       static_cast<unsigned long long>(r.seed),
                       r.repro.c_str());
          std::fflush(failures_file);
        }
        if (cli.stop_on_failure) goto done;
      }
    }
  }
done:
  if (failures_file != nullptr) std::fclose(failures_file);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  std::printf("chaos: %llu runs (%zu protocol(s) x %d seed(s)) in %.1fs, "
              "%d failure(s)\n",
              static_cast<unsigned long long>(runs), protocols.size(),
              cli.seeds, elapsed, failures);
  return failures > 99 ? 99 : failures;
}
