// Seeded fault-schedule fuzzer for every registered consensus protocol.
//
//   chaos_runner --protocol=raft --seed=42          # replay one run
//   chaos_runner --protocol=all --seeds=200         # fuzz the 4x matrix
//   chaos_runner --protocol=raft --seeds=50 --inject-quorum-bug
//   chaos_runner --protocol=all --seeds=50 --compaction-cap=64
//   chaos_runner --protocol=all --seeds=200 --restarts   # crash-restart faults
//   chaos_runner --protocol=raft --seeds=50 --inject-persistence-bug
//   chaos_runner --protocol=all --seeds=50 --groups=3    # sharded: 3 groups
//   chaos_runner --protocol=all --seeds=50 --verify-determinism
//       # run every seed twice; coverage counters + trace fingerprints must
//       # match exactly (runtime backstop for praft_lint's D1/D2 rules)
//   chaos_runner --seed-file=chaos_failures.txt     # replay saved runs
//   chaos_runner --seeds=200 --restarts --corpus-out=tools/chaos_corpus.txt
//   chaos_runner --protocol=all --evolve=4 --restarts
//       --seed-file=tools/chaos_corpus.txt --corpus-out=tools/chaos_corpus.txt
//
// Each failure prints the seed, the schedule, the violated invariants, the
// recent event trace, and the exact repro command. Exit status is the number
// of failing runs, capped at 99 (2 = bad usage, including malformed numeric
// flag values).
//
// --seed-file replays an explicit list instead of a contiguous range. Two
// entry forms coexist: one run per line, either "<seed>" (run under
// --protocol) or "<protocol> <seed>", optionally followed by per-run flags
// (--compaction-cap=N, --inject-quorum-bug, ...) — and multi-line
// "schedule <protocol> [flags] { ... }" blocks holding an explicit evolved
// schedule (see src/chaos/mutator.h for the block grammar). '#' starts a
// comment. --failures-out and --corpus-out both write this format, so any
// saved run replays under the exact configuration it was found with.
//
// --evolve=N runs the coverage-guided evolution loop instead of a flat
// batch: the population seeds from --seed-file (if given) plus fresh random
// schedules, every run is scored with the harness coverage counters (leader
// changes, revocations, snapshot installs, restarts), and the top scorers
// are kept/mutated for N generations. All evolved runs execute under the
// CLI flags (--restarts, --compaction-cap, ...); --corpus-out persists the
// elite population as schedule blocks.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/mutator.h"
#include "chaos/runner.h"
#include "consensus/registry.h"

using namespace praft;

namespace {

struct CliOptions {
  std::string protocol = "all";
  uint64_t seed = 1;
  int seeds = 1;
  int replicas = 5;
  bool inject_quorum_bug = false;
  bool restarts = false;
  bool inject_persistence_bug = false;
  bool wan = false;
  int groups = 1;
  size_t compaction_cap = 0;
  bool verbose = false;
  bool verify_determinism = false;
  bool stop_on_failure = false;
  std::string failures_out;
  std::string seed_file;
  std::string corpus_out;
  size_t corpus_size = 16;
  int evolve = 0;  // generations; 0 = flat batch mode
  int population = 16;
  int elite = 4;
};

/// One run resolved from the CLI flags or a seed file: a (protocol, seed)
/// pair, or an explicit schedule block. Per-entry flag overrides replay a
/// saved failure under the exact configuration it was found with.
struct PlannedRun {
  std::string protocol;
  uint64_t seed = 0;
  std::optional<chaos::Schedule> schedule;
  size_t compaction_cap = 0;
  bool inject_quorum_bug = false;
  bool restarts = false;
  bool inject_persistence_bug = false;
  bool wan = false;
  int groups = 1;
};

/// A (protocol, seed) run under the batch-wide CLI flags — the ONE place the
/// seed-range and seed-file paths derive a run's configuration, so new flags
/// cannot silently drop out of one of them.
PlannedRun planned_seed_run(const CliOptions& cli, const std::string& protocol,
                            uint64_t seed) {
  PlannedRun run;
  run.protocol = protocol;
  run.seed = seed;
  run.compaction_cap = cli.compaction_cap;
  run.inject_quorum_bug = cli.inject_quorum_bug;
  run.restarts = cli.restarts;
  run.inject_persistence_bug = cli.inject_persistence_bug;
  run.wan = cli.wan;
  run.groups = cli.groups;
  return run;
}

/// Serializes a run's flag overrides in the --seed-file per-line format.
/// The ONE implementation shared by the --failures-out and --corpus-out
/// writers: both files replay through the same parser, so the run must
/// come back under exactly the configuration it ran with.
std::string flags_of(const PlannedRun& run) {
  std::string flags;
  if (run.compaction_cap > 0) {
    char fb[48];
    std::snprintf(fb, sizeof(fb), " --compaction-cap=%zu", run.compaction_cap);
    flags += fb;
  }
  if (run.restarts) flags += " --restarts";
  if (run.inject_quorum_bug) flags += " --inject-quorum-bug";
  if (run.inject_persistence_bug) flags += " --inject-persistence-bug";
  if (run.wan) flags += " --wan";
  if (run.groups > 1) {
    char gb[32];
    std::snprintf(gb, sizeof(gb), " --groups=%d", run.groups);
    flags += gb;
  }
  return flags;
}

/// Identity of a planned run for corpus dedup: replaying a seed file that
/// repeats a line must not burn two elite slots on the same run.
std::string dedup_key(const PlannedRun& run) {
  std::string key = run.protocol + flags_of(run) + '\n';
  if (run.schedule.has_value()) {
    key += chaos::serialize_schedule(*run.schedule);
  } else {
    char sb[32];
    std::snprintf(sb, sizeof(sb), "seed=%llu",
                  static_cast<unsigned long long>(run.seed));
    key += sb;
  }
  return key;
}

bool parse_flag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

// Numeric flag values parse with end-pointer checks: `--seeds=abc` must be
// a usage error (exit 2), not a silent zero-run batch that exits green.
bool parse_u64_value(const char* v, uint64_t* out) {
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  *out = std::strtoull(v, &end, 10);
  return end != v && *end == '\0' && *v != '-';
}

bool parse_int_value(const char* v, int* out) {
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  const long wide = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || wide < INT32_MIN || wide > INT32_MAX) {
    return false;
  }
  *out = static_cast<int>(wide);
  return true;
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--protocol=NAME|all] [--seed=N] [--seeds=K] [--replicas=N]\n"
      "          [--inject-quorum-bug] [--compaction-cap=N] [--restarts]\n"
      "          [--inject-persistence-bug] [--wan] [--groups=N] [--verbose]\n"
      "          [--verify-determinism] [--stop-on-failure]\n"
      "          [--failures-out=PATH] [--seed-file=PATH]\n"
      "          [--corpus-out=PATH] [--corpus-size=N]\n"
      "          [--evolve=GENERATIONS] [--population=N] [--elite=N]\n"
      "protocols: all",
      argv0);
  for (const auto& name : consensus::protocol_names()) {
    std::fprintf(stderr, ", %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
}

void print_failure(const chaos::RunResult& r) {
  std::printf("FAIL protocol=%s seed=%llu\n", r.protocol.c_str(),
              static_cast<unsigned long long>(r.seed));
  std::printf("  schedule: %s\n", r.schedule.c_str());
  for (const auto& v : r.violations) {
    std::printf("  invariant violated: %s\n", v.c_str());
  }
  std::printf("  trace (last %zu events):\n", r.trace.size());
  for (const auto& t : r.trace) std::printf("    %s\n", t.c_str());
  std::printf("  repro: %s\n", r.repro.c_str());
}

/// Writes one replayable entry — a "<protocol> <seed> [flags]" line or a
/// schedule block — with `comment` on the line (or a line of its own ahead
/// of a block, since blocks span lines).
void write_entry(std::FILE* f, const PlannedRun& run,
                 const std::string& comment) {
  if (run.schedule.has_value()) {
    if (!comment.empty()) std::fprintf(f, "# %s\n", comment.c_str());
    std::string header = run.protocol + flags_of(run);
    std::fprintf(f, "%s",
                 chaos::serialize_schedule(*run.schedule, header).c_str());
  } else {
    std::fprintf(f, "%s %llu%s%s%s\n", run.protocol.c_str(),
                 static_cast<unsigned long long>(run.seed),
                 flags_of(run).c_str(), comment.empty() ? "" : "  # ",
                 comment.c_str());
  }
}

/// Parses --seed-file: bare seed / "<protocol> <seed>" lines with optional
/// per-run flags, plus "schedule <protocol> [flags] { ... }" blocks.
/// Returns false (after printing the offending line) on malformed input.
bool load_seed_file(const CliOptions& cli,
                    const std::vector<std::string>& protocols,
                    std::vector<PlannedRun>* planned) {
  std::ifstream in(cli.seed_file);
  if (!in) {
    std::fprintf(stderr, "cannot read seed file %s\n", cli.seed_file.c_str());
    return false;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);

  const auto apply_run_flag = [&cli](const std::string& flag,
                                     std::vector<PlannedRun>* runs,
                                     int lineno) {
    const char* v = nullptr;
    if (parse_flag(flag.c_str(), "--compaction-cap", &v) && v != nullptr) {
      uint64_t cap = 0;
      if (!parse_u64_value(v, &cap)) {
        std::fprintf(stderr, "%s:%d: bad --compaction-cap value '%s'\n",
                     cli.seed_file.c_str(), lineno, v);
        return false;
      }
      for (auto& r : *runs) r.compaction_cap = cap;
    } else if (parse_flag(flag.c_str(), "--inject-quorum-bug", &v)) {
      for (auto& r : *runs) r.inject_quorum_bug = true;
    } else if (parse_flag(flag.c_str(), "--restarts", &v)) {
      for (auto& r : *runs) r.restarts = true;
    } else if (parse_flag(flag.c_str(), "--inject-persistence-bug", &v)) {
      for (auto& r : *runs) r.inject_persistence_bug = true;
    } else if (parse_flag(flag.c_str(), "--wan", &v)) {
      for (auto& r : *runs) r.wan = true;
    } else if (parse_flag(flag.c_str(), "--groups", &v) && v != nullptr) {
      int groups = 0;
      if (!parse_int_value(v, &groups) || groups < 1) {
        std::fprintf(stderr, "%s:%d: bad --groups value '%s'\n",
                     cli.seed_file.c_str(), lineno, v);
        return false;
      }
      for (auto& r : *runs) r.groups = groups;
    } else {
      std::fprintf(stderr, "%s:%d: unknown per-run flag '%s'\n",
                   cli.seed_file.c_str(), lineno, flag.c_str());
      return false;
    }
    return true;
  };

  for (size_t pos = 0; pos < lines.size();) {
    const int lineno = static_cast<int>(pos) + 1;
    std::string stripped = lines[pos];
    if (const size_t hash = stripped.find('#'); hash != std::string::npos) {
      stripped.resize(hash);
    }
    std::istringstream ls(stripped);
    std::string first;
    if (!(ls >> first)) {  // blank / comment-only line
      ++pos;
      continue;
    }
    if (first == "schedule") {
      chaos::Schedule sched;
      std::string header;
      std::string error;
      if (!chaos::parse_schedule(lines, &pos, &sched, &header, &error)) {
        std::fprintf(stderr, "%s:%d: %s\n", cli.seed_file.c_str(), lineno,
                     error.c_str());
        return false;
      }
      std::istringstream hs(header);
      std::string protocol;
      if (!(hs >> protocol) ||
          !consensus::ProtocolRegistry::instance().contains(protocol)) {
        std::fprintf(stderr,
                     "%s:%d: schedule block needs a registered protocol "
                     "after 'schedule' (got '%s')\n",
                     cli.seed_file.c_str(), lineno, header.c_str());
        return false;
      }
      // The block format does not carry the replica count; an event naming
      // a replica the replaying cluster does not have must be a clean
      // usage error, not an out-of-bounds crash mid-batch.
      for (const chaos::FaultEvent& e : sched.events) {
        if (e.a >= cli.replicas || e.b >= cli.replicas) {
          std::fprintf(stderr,
                       "%s:%d: event targets replica %d but the cluster has "
                       "%d replicas (replay with a bigger --replicas)\n",
                       cli.seed_file.c_str(), lineno, std::max(e.a, e.b),
                       cli.replicas);
          return false;
        }
      }
      std::vector<PlannedRun> block_runs;
      PlannedRun run = planned_seed_run(cli, protocol, sched.seed);
      run.schedule = sched;
      block_runs.push_back(std::move(run));
      std::string flag;
      while (hs >> flag) {
        if (!apply_run_flag(flag, &block_runs, lineno)) return false;
      }
      planned->insert(planned->end(), block_runs.begin(), block_runs.end());
      continue;
    }
    std::vector<PlannedRun> line_runs;
    if (consensus::ProtocolRegistry::instance().contains(first)) {
      std::string seed_tok;
      uint64_t seed = 0;
      if (!(ls >> seed_tok) || !parse_u64_value(seed_tok.c_str(), &seed)) {
        std::fprintf(stderr, "%s:%d: protocol '%s' without a valid seed\n",
                     cli.seed_file.c_str(), lineno, first.c_str());
        return false;
      }
      line_runs.push_back(planned_seed_run(cli, first, seed));
    } else {
      uint64_t seed = 0;
      if (!parse_u64_value(first.c_str(), &seed)) {
        std::fprintf(stderr,
                     "%s:%d: '%s' is neither a registered protocol nor a "
                     "seed\n",
                     cli.seed_file.c_str(), lineno, first.c_str());
        return false;
      }
      // Bare seed: run it under the --protocol selection.
      for (const auto& protocol : protocols) {
        line_runs.push_back(planned_seed_run(cli, protocol, seed));
      }
    }
    // Per-line flag overrides (written by --failures-out): the run must
    // replay under the configuration it failed with.
    std::string flag;
    while (ls >> flag) {
      if (!apply_run_flag(flag, &line_runs, lineno)) return false;
    }
    planned->insert(planned->end(), line_runs.begin(), line_runs.end());
    ++pos;
  }
  return true;
}

/// An evolved candidate as a persistable run under the CLI flags — the ONE
/// place the evolve-mode writers (--failures-out, --corpus-out) derive the
/// replay configuration from, so new per-run flags cannot drift between
/// them.
PlannedRun planned_run_of(const CliOptions& cli,
                          const chaos::EvolveCandidate& c) {
  PlannedRun run = planned_seed_run(cli, c.protocol, c.schedule.seed);
  run.schedule = c.schedule;
  return run;
}

chaos::RunOptions run_options_of(const CliOptions& cli,
                                 const PlannedRun& run) {
  chaos::RunOptions opt;
  opt.protocol = run.protocol;
  opt.seed = run.seed;
  opt.schedule = run.schedule;
  opt.num_replicas = cli.replicas;
  opt.inject_quorum_bug = run.inject_quorum_bug;
  opt.compaction_log_cap = run.compaction_cap;
  opt.crash_restarts = run.restarts;
  opt.inject_persistence_bug = run.inject_persistence_bug;
  opt.wan = run.wan;
  opt.groups = run.groups;
  return opt;
}

/// The --evolve mode: population from the seed file + fresh randomness,
/// N generations of keep-the-top/mutate, elite corpus out.
int run_evolution(const CliOptions& cli,
                  const std::vector<std::string>& protocols,
                  const std::vector<PlannedRun>& planned) {
  chaos::EvolveOptions eopt;
  eopt.generations = cli.evolve;
  eopt.population = cli.population;
  eopt.elite = cli.elite;
  eopt.rng_seed = cli.seed;
  eopt.protocols = protocols;
  eopt.base.num_replicas = cli.replicas;
  eopt.base.inject_quorum_bug = cli.inject_quorum_bug;
  eopt.base.compaction_log_cap = cli.compaction_cap;
  eopt.base.crash_restarts = cli.restarts;
  eopt.base.inject_persistence_bug = cli.inject_persistence_bug;
  eopt.base.wan = cli.wan;
  eopt.base.groups = cli.groups;

  // Seed the population from --seed-file entries: explicit schedule blocks
  // verbatim, seed lines expanded exactly as run_one would expand them.
  std::vector<chaos::EvolveCandidate> seeds;
  for (const PlannedRun& pr : planned) {
    chaos::EvolveCandidate cand;
    cand.protocol = pr.protocol;
    cand.schedule = chaos::schedule_of(run_options_of(cli, pr));
    seeds.push_back(std::move(cand));
  }

  // praft-lint: allow(D2 wall-clock is reporting-only; never in trajectories)
  const auto wall_start = std::chrono::steady_clock::now();
  const chaos::EvolveStats stats = chaos::evolve(eopt, std::move(seeds));
  for (const chaos::RunResult& r : stats.failures) print_failure(r);
  if (!cli.failures_out.empty() && !stats.failures.empty()) {
    // Evolved failures are only replayable as schedule blocks: persist the
    // exact (protocol, schedule, flags) each failing run executed under.
    std::FILE* ff = std::fopen(cli.failures_out.c_str(), "w");
    if (ff == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", cli.failures_out.c_str());
      return 2;
    }
    for (size_t i = 0; i < stats.failed_candidates.size(); ++i) {
      const PlannedRun run =
          planned_run_of(cli, stats.failed_candidates[i]);
      const std::string violated = stats.failures[i].violations.empty()
                                       ? "?"
                                       : stats.failures[i].violations.front();
      write_entry(ff, run, "FAIL: " + violated);
    }
    std::fclose(ff);
  }

  for (size_t g = 0; g < stats.generation_mean.size(); ++g) {
    std::printf("evolve: gen %zu archive mean cov %.1f\n", g,
                stats.generation_mean[g]);
  }
  if (!cli.corpus_out.empty() && !stats.population.empty()) {
    std::FILE* cf = std::fopen(cli.corpus_out.c_str(), "w");
    if (cf == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", cli.corpus_out.c_str());
      return 2;
    }
    std::fprintf(cf,
                 "# chaos corpus: elite population of %d-generation "
                 "evolution (%zu schedules)\n",
                 cli.evolve, stats.population.size());
    std::fprintf(cf,
                 "# regenerate: chaos_runner --protocol=%s --evolve=%d "
                 "--population=%d --elite=%d --seed=%llu%s%s "
                 "--corpus-out=<this file>\n",
                 cli.protocol.c_str(), cli.evolve, cli.population, cli.elite,
                 static_cast<unsigned long long>(cli.seed),
                 cli.restarts ? " --restarts" : "",
                 cli.inject_quorum_bug ? " --inject-quorum-bug" : "");
    for (const chaos::EvolveCandidate& c : stats.population) {
      const PlannedRun run = planned_run_of(cli, c);
      char comment[32];
      std::snprintf(comment, sizeof(comment), "cov=%llu",
                    static_cast<unsigned long long>(c.score));
      write_entry(cf, run, comment);
    }
    std::fclose(cf);
    std::printf("corpus: wrote %zu evolved schedules to %s\n",
                stats.population.size(), cli.corpus_out.c_str());
  }
  const double elapsed =
      // praft-lint: allow(D2 wall-clock is reporting-only; not in trajectories)
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const int failures = static_cast<int>(stats.failures.size());
  std::printf(
      "evolve: %llu runs over %d generation(s) in %.1fs, elite mean cov "
      "%.1f best %llu, %d failure(s)\n",
      static_cast<unsigned long long>(stats.runs), cli.evolve, elapsed,
      stats.mean_score, static_cast<unsigned long long>(stats.best_score),
      failures);
  return failures > 99 ? 99 : failures;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    bool ok = true;
    if (parse_flag(argv[i], "--protocol", &v) && v != nullptr) {
      cli.protocol = v;
    } else if (parse_flag(argv[i], "--seed", &v) && v != nullptr) {
      ok = parse_u64_value(v, &cli.seed);
    } else if (parse_flag(argv[i], "--seeds", &v) && v != nullptr) {
      ok = parse_int_value(v, &cli.seeds) && cli.seeds >= 1;
    } else if (parse_flag(argv[i], "--replicas", &v) && v != nullptr) {
      ok = parse_int_value(v, &cli.replicas) && cli.replicas >= 2;
    } else if (parse_flag(argv[i], "--inject-quorum-bug", &v)) {
      cli.inject_quorum_bug = true;
    } else if (parse_flag(argv[i], "--restarts", &v)) {
      cli.restarts = true;
    } else if (parse_flag(argv[i], "--inject-persistence-bug", &v)) {
      cli.inject_persistence_bug = true;
    } else if (parse_flag(argv[i], "--wan", &v)) {
      cli.wan = true;
    } else if (parse_flag(argv[i], "--groups", &v) && v != nullptr) {
      ok = parse_int_value(v, &cli.groups) && cli.groups >= 1;
    } else if (parse_flag(argv[i], "--corpus-out", &v) && v != nullptr) {
      cli.corpus_out = v;
    } else if (parse_flag(argv[i], "--corpus-size", &v) && v != nullptr) {
      uint64_t size = 0;
      ok = parse_u64_value(v, &size) && size >= 1;
      cli.corpus_size = static_cast<size_t>(size);
    } else if (parse_flag(argv[i], "--compaction-cap", &v) && v != nullptr) {
      uint64_t cap = 0;
      ok = parse_u64_value(v, &cap);
      cli.compaction_cap = static_cast<size_t>(cap);
    } else if (parse_flag(argv[i], "--seed-file", &v) && v != nullptr) {
      cli.seed_file = v;
    } else if (parse_flag(argv[i], "--evolve", &v) && v != nullptr) {
      ok = parse_int_value(v, &cli.evolve) && cli.evolve >= 1;
    } else if (parse_flag(argv[i], "--population", &v) && v != nullptr) {
      ok = parse_int_value(v, &cli.population) && cli.population >= 2;
    } else if (parse_flag(argv[i], "--elite", &v) && v != nullptr) {
      ok = parse_int_value(v, &cli.elite) && cli.elite >= 1;
    } else if (parse_flag(argv[i], "--verify-determinism", &v)) {
      cli.verify_determinism = true;
    } else if (parse_flag(argv[i], "--verbose", &v)) {
      cli.verbose = true;
    } else if (parse_flag(argv[i], "--stop-on-failure", &v)) {
      cli.stop_on_failure = true;
    } else if (parse_flag(argv[i], "--failures-out", &v) && v != nullptr) {
      cli.failures_out = v;
    } else {
      usage(argv[0]);
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "invalid value in '%s'\n", argv[i]);
      usage(argv[0]);
      return 2;
    }
  }
  if (cli.elite >= cli.population) {
    std::fprintf(stderr, "--elite must be smaller than --population\n");
    return 2;
  }
  if (cli.verify_determinism && cli.evolve > 0) {
    std::fprintf(stderr,
                 "--verify-determinism applies to flat / seed-file batches, "
                 "not --evolve\n");
    return 2;
  }

  std::vector<std::string> protocols;
  if (cli.protocol == "all") {
    protocols = consensus::protocol_names();
  } else if (consensus::ProtocolRegistry::instance().contains(cli.protocol)) {
    protocols.push_back(cli.protocol);
  } else {
    std::fprintf(stderr, "unknown protocol '%s'\n", cli.protocol.c_str());
    usage(argv[0]);
    return 2;
  }

  // Resolve the run list: either the contiguous --seed/--seeds range, or an
  // explicit seed file (e.g. a saved --failures-out / --corpus-out file).
  std::vector<PlannedRun> planned;
  if (!cli.seed_file.empty()) {
    if (!load_seed_file(cli, protocols, &planned)) return 2;
  } else if (cli.evolve == 0) {
    for (const auto& protocol : protocols) {
      for (int k = 0; k < cli.seeds; ++k) {
        planned.push_back(planned_seed_run(
            cli, protocol, cli.seed + static_cast<uint64_t>(k)));
      }
    }
  }

  if (cli.evolve > 0) return run_evolution(cli, protocols, planned);

  struct CorpusEntry {
    uint64_t score = 0;
    PlannedRun run;
  };
  std::vector<CorpusEntry> corpus;

  std::FILE* failures_file = nullptr;
  if (!cli.failures_out.empty()) {
    failures_file = std::fopen(cli.failures_out.c_str(), "w");
    if (failures_file == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", cli.failures_out.c_str());
      return 2;
    }
  }

  // praft-lint: allow(D2 wall-clock is reporting-only; never in trajectories)
  const auto wall_start = std::chrono::steady_clock::now();
  int failures = 0;
  uint64_t runs = 0;
  for (const PlannedRun& pr : planned) {
    const chaos::RunResult r = chaos::run_one(run_options_of(cli, pr));
    ++runs;
    if (cli.verbose) {
      std::printf(
          "%s protocol=%s seed=%llu log=%lld client_ops=%llu snapshots=%llu "
          "restarts=%llu leader_changes=%llu revocations=%llu fp=%016llx\n",
          r.ok ? "ok  " : "FAIL", r.protocol.c_str(),
          static_cast<unsigned long long>(r.seed),
          static_cast<long long>(r.log_length),
          static_cast<unsigned long long>(r.client_ops),
          static_cast<unsigned long long>(r.snapshot_installs),
          static_cast<unsigned long long>(r.restarts),
          static_cast<unsigned long long>(r.leader_changes),
          static_cast<unsigned long long>(r.revocations),
          static_cast<unsigned long long>(r.trace_fingerprint));
    }
    bool deterministic = true;
    if (cli.verify_determinism) {
      // The cheap runtime backstop for what praft_lint's D1/D2 rules guard
      // statically: the same (protocol, seed, options) must reproduce the
      // exact observation stream. Any divergence — unordered-container
      // iteration leaking into emission, a stray wall-clock read — shows up
      // as a coverage-counter or trace-fingerprint mismatch on the rerun.
      const chaos::RunResult r2 = chaos::run_one(run_options_of(cli, pr));
      ++runs;
      deterministic = r2.trace_fingerprint == r.trace_fingerprint &&
                      r2.ok == r.ok && r2.log_length == r.log_length &&
                      r2.client_ops == r.client_ops &&
                      r2.snapshot_installs == r.snapshot_installs &&
                      r2.restarts == r.restarts &&
                      r2.leader_changes == r.leader_changes &&
                      r2.revocations == r.revocations &&
                      r2.pipeline_rollbacks == r.pipeline_rollbacks;
      if (!deterministic) {
        std::printf(
            "NONDETERMINISTIC protocol=%s seed=%llu: fp=%016llx/%016llx "
            "log=%lld/%lld client_ops=%llu/%llu leader_changes=%llu/%llu\n",
            r.protocol.c_str(), static_cast<unsigned long long>(r.seed),
            static_cast<unsigned long long>(r.trace_fingerprint),
            static_cast<unsigned long long>(r2.trace_fingerprint),
            static_cast<long long>(r.log_length),
            static_cast<long long>(r2.log_length),
            static_cast<unsigned long long>(r.client_ops),
            static_cast<unsigned long long>(r2.client_ops),
            static_cast<unsigned long long>(r.leader_changes),
            static_cast<unsigned long long>(r2.leader_changes));
      }
    }
    if (!cli.corpus_out.empty() && r.ok && deterministic) {
      corpus.push_back(CorpusEntry{chaos::coverage_score(r), pr});
    }
    if (!r.ok || !deterministic) {
      ++failures;
      if (!r.ok) print_failure(r);
      if (failures_file != nullptr) {
        // Flags ride along so --seed-file replays the exact configuration
        // the run failed under.
        write_entry(failures_file, pr,
                    !r.ok ? "repro: " + r.repro
                          : "NONDETERMINISTIC: divergent rerun");
        std::fflush(failures_file);
      }
      if (cli.stop_on_failure) break;
    }
  }
  if (failures_file != nullptr) std::fclose(failures_file);
  if (!cli.corpus_out.empty()) {
    // Persist the top-coverage runs in the --seed-file format so a later
    // batch — or the --evolve mutator — replays exactly these runs. Dedupe
    // first: a seed file that repeats an entry must not waste elite slots.
    std::set<std::string> seen;
    std::vector<CorpusEntry> unique;
    for (CorpusEntry& ce : corpus) {
      if (seen.insert(dedup_key(ce.run)).second) {
        unique.push_back(std::move(ce));
      }
    }
    corpus = std::move(unique);
    std::stable_sort(corpus.begin(), corpus.end(),
                     [](const CorpusEntry& a, const CorpusEntry& b) {
                       return a.score > b.score;
                     });
    if (corpus.size() > cli.corpus_size) corpus.resize(cli.corpus_size);
    std::FILE* cf = std::fopen(cli.corpus_out.c_str(), "w");
    if (cf == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", cli.corpus_out.c_str());
      return 2;
    }
    std::fprintf(cf, "# chaos corpus: top-%zu coverage runs of this batch\n",
                 corpus.size());
    for (const CorpusEntry& ce : corpus) {
      char comment[32];
      std::snprintf(comment, sizeof(comment), "cov=%llu",
                    static_cast<unsigned long long>(ce.score));
      write_entry(cf, ce.run, comment);
    }
    std::fclose(cf);
    std::printf("corpus: wrote top %zu runs to %s\n", corpus.size(),
                cli.corpus_out.c_str());
  }
  const double elapsed =
      // praft-lint: allow(D2 wall-clock is reporting-only; not in trajectories)
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  // Count the protocols actually run (a seed file may name a different set
  // than the --protocol selection).
  std::vector<std::string> ran;
  for (const PlannedRun& pr : planned) {
    if (std::find(ran.begin(), ran.end(), pr.protocol) == ran.end()) {
      ran.push_back(pr.protocol);
    }
  }
  std::printf("chaos: %llu runs (%zu protocol(s)) in %.1fs, %d failure(s)\n",
              static_cast<unsigned long long>(runs), ran.size(), elapsed,
              failures);
  return failures > 99 ? 99 : failures;
}
