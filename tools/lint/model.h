#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace praft::lint {

/// One source file handed to the analyzer. `path` is repo-relative with
/// forward slashes ("src/raft/node.cpp") — every scope decision (which rules
/// apply, sibling wire.cpp lookup, include resolution) keys off it.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One rule violation. Rendered as "file:line: [RULE] message".
struct Finding {
  std::string file;
  int line = 1;
  std::string rule;     // "D1", "D2", "W1", "C1", "P1"
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// A parsed file plus everything rules need: tokens, comments, local
/// #include "..." targets, and suppression directives.
struct FileModel {
  std::string path;
  LexResult lex;
  std::vector<std::string> includes;        // as written inside the quotes
  /// rule -> lines carrying `praft-lint: allow(RULE ...)`. A suppression on
  /// line L mutes findings of that rule on L and L+1 (same line, or the
  /// comment-on-its-own-line-above form).
  std::map<std::string, std::set<int>> allows;
};

/// The whole analysis input: parsed files plus the include graph over them.
/// Quoted includes resolve against the repo include roots (src/, tools/) and
/// the including file's own directory; system/<> includes are ignored.
class Project {
 public:
  explicit Project(std::vector<SourceFile> files);

  [[nodiscard]] const std::vector<FileModel>& files() const { return files_; }

  /// Indices of `files()[i]`'s transitive quoted-include closure, including
  /// i itself. Only includes that resolve to a file in the project count.
  [[nodiscard]] const std::vector<size_t>& closure(size_t i) const {
    return closures_[i];
  }

  /// Index of the file with exactly this path, or npos.
  [[nodiscard]] size_t index_of(const std::string& path) const;

  static constexpr size_t npos = static_cast<size_t>(-1);

 private:
  std::vector<FileModel> files_;
  std::vector<std::vector<size_t>> closures_;  // computed in ctor
};

/// True when `f` carries an allow(rule) directive covering `line`.
[[nodiscard]] bool is_suppressed(const FileModel& f, const std::string& rule,
                                 int line);

/// Directory part of a repo-relative path ("src/raft/node.cpp" -> "src/raft",
/// "README.md" -> "").
[[nodiscard]] std::string dir_of(const std::string& path);

/// True when `path` is under directory `dir` ("src/raft" matches
/// "src/raft/node.cpp" but not "src/raftstar/node.cpp").
[[nodiscard]] bool in_dir(const std::string& path, const std::string& dir);

}  // namespace praft::lint
