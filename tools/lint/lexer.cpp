#include "lint/lexer.h"

#include <cctype>

namespace praft::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuation, longest first. `::` matters most: rules
/// distinguish `obj.member` / `ns::member` chains and a split `:` `:` would
/// make every qualified name look like a range-for colon.
const char* kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", ".*",
};

}  // namespace

LexResult lex(const std::string& source) {
  LexResult out;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;

  const auto advance = [&](size_t k) {
    for (size_t j = 0; j < k && i < n; ++j, ++i) {
      if (source[i] == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = source[i];
    // Line continuation: splice (keeps line counting exact).
    if (c == '\\' && i + 1 < n &&
        (source[i + 1] == '\n' ||
         (source[i + 1] == '\r' && i + 2 < n && source[i + 2] == '\n'))) {
      advance(source[i + 1] == '\r' ? 3 : 2);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comments -> out-of-band.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const int start_line = line;
      advance(2);
      std::string text;
      while (i < n && source[i] != '\n') {
        text += source[i];
        advance(1);
      }
      out.comments.push_back(Comment{std::move(text), start_line});
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const int start_line = line;
      advance(2);
      std::string text;
      while (i < n && !(source[i] == '*' && i + 1 < n && source[i + 1] == '/')) {
        text += source[i];
        advance(1);
      }
      advance(2);  // closing */
      out.comments.push_back(Comment{std::move(text), start_line});
      continue;
    }
    // Raw strings: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && source[j] != '(' && delim.size() < 16) {
        delim += source[j];
        ++j;
      }
      if (j < n && source[j] == '(') {
        const int start_line = line;
        const std::string close = ")" + delim + "\"";
        advance(j + 1 - i);
        std::string text;
        while (i < n && source.compare(i, close.size(), close) != 0) {
          text += source[i];
          advance(1);
        }
        advance(close.size());
        out.tokens.push_back(Token{Tok::kString, std::move(text), start_line});
        continue;
      }
      // 'R' not starting a raw string: fall through as identifier.
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      advance(1);
      std::string text;
      while (i < n && source[i] != quote) {
        if (source[i] == '\\' && i + 1 < n) {
          text += source[i];
          advance(1);
        }
        text += source[i];
        advance(1);
      }
      advance(1);  // closing quote
      out.tokens.push_back(Token{quote == '"' ? Tok::kString : Tok::kChar,
                                 std::move(text), start_line});
      continue;
    }
    if (ident_start(c)) {
      const int start_line = line;
      std::string text;
      while (i < n && ident_char(source[i])) {
        text += source[i];
        advance(1);
      }
      out.tokens.push_back(Token{Tok::kIdent, std::move(text), start_line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      const int start_line = line;
      std::string text;
      // pp-number: digits, idents, dots, and exponent signs.
      while (i < n &&
             (ident_char(source[i]) || source[i] == '.' ||
              ((source[i] == '+' || source[i] == '-') && !text.empty() &&
               (text.back() == 'e' || text.back() == 'E' ||
                text.back() == 'p' || text.back() == 'P')))) {
        text += source[i];
        advance(1);
      }
      out.tokens.push_back(Token{Tok::kNumber, std::move(text), start_line});
      continue;
    }
    // Punctuation: longest known multi-char first, else single char.
    bool matched = false;
    for (const char* p : kPuncts) {
      const size_t len = std::char_traits<char>::length(p);
      if (source.compare(i, len, p) == 0) {
        out.tokens.push_back(Token{Tok::kPunct, p, line});
        advance(len);
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back(Token{Tok::kPunct, std::string(1, c), line});
      advance(1);
    }
  }
  return out;
}

}  // namespace praft::lint
