#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint/model.h"

namespace praft::lint {

/// The contract praft_lint enforces, one rule per unwritten assumption the
/// repo's determinism / wire / durability claims rest on:
///
///   D1  range-for or begin()-iterator loops over unordered_map /
///       unordered_set values in src/ and tools/ — iteration order is
///       implementation-defined, and order leaking into message emission or
///       RNG consumption silently breaks seed-replay determinism.
///   D2  banned nondeterminism sources outside common/rng.h:
///       {system,steady,high_resolution}_clock::now, time()/clock()/
///       gettimeofday/clock_gettime, rand/srand/random_device/mt19937 —
///       trajectories must be pure functions of the seed.
///   W1  wire completeness: every `using Message = std::variant<...>`
///       alternative in a directory with a sibling wire.cpp must have an
///       encode overload (put(WireWriter&, const A&)), a decode function
///       (A get_*(WireReader&)), a decode switch case for its opcode, and
///       an operator== (round-trip verification needs it).
///   C1  assert( / bare abort( in src/ — invariants must go through
///       PRAFT_CHECK / PRAFT_CHECK_MSG (common/check.h) so the simulator
///       and tests observe them as CheckFailure instead of a process kill.
///   P1  durability-barrier bypass: in src/{raft,raftstar,paxos,mencius},
///       every outgoing message must route through the Persister seam
///       (persister_.send / send_unsynced); a raw env/host send skips the
///       fsync barrier its payload may depend on.
///
/// Suppress a finding with `// praft-lint: allow(RULE reason)` on the same
/// line or the line above.
///
/// Returns findings sorted by (file, line, rule), suppressions applied.
[[nodiscard]] std::vector<Finding> run_rules(const Project& p);

/// Same, restricted to a subset of rule names (empty set = all).
[[nodiscard]] std::vector<Finding> run_rules(const Project& p,
                                             const std::set<std::string>& only);

}  // namespace praft::lint
