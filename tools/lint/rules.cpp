#include "lint/rules.h"

#include <algorithm>
#include <cstddef>
#include <cstdlib>

namespace praft::lint {

namespace {

using Toks = std::vector<Token>;

bool is_ident(const Toks& t, size_t i, const char* text) {
  return i < t.size() && t[i].kind == Tok::kIdent && t[i].text == text;
}
bool is_punct(const Toks& t, size_t i, const char* text) {
  return i < t.size() && t[i].kind == Tok::kPunct && t[i].text == text;
}

void emit(std::vector<Finding>* out, const FileModel& f, int line,
          const char* rule, std::string message) {
  if (is_suppressed(f, rule, line)) return;
  out->push_back(Finding{f.path, line, rule, std::move(message)});
}

// ---------------------------------------------------------------------------
// D1 — iteration over unordered containers.
//
// Three passes: (a) per-file `using ALIAS = ..unordered_..` aliases, (b)
// per-file declared names of unordered type (direct or via a closure-visible
// alias), (c) per-file detection of range-for / begin() over a
// closure-visible unordered name. Closure visibility is what lets
// `for (auto& kv : pending_)` in a .cpp convict a member declared unordered
// in the included header.
// ---------------------------------------------------------------------------

/// Skips a balanced template-argument list. `i` indexes the `<` token;
/// returns the index just past the matching `>`, or npos when the list never
/// closes sanely (a comparison operator misparse — `;`/`{` inside aborts).
size_t skip_angles(const Toks& t, size_t i) {
  int depth = 0;
  const size_t limit = std::min(t.size(), i + 400);
  for (; i < limit; ++i) {
    if (t[i].kind != Tok::kPunct) continue;
    if (t[i].text == "<") ++depth;
    else if (t[i].text == "<<") depth += 2;
    else if (t[i].text == ">") --depth;
    else if (t[i].text == ">>") depth -= 2;
    else if (t[i].text == ";" || t[i].text == "{") return Project::npos;
    if (depth <= 0) return i + 1;
  }
  return Project::npos;
}

/// `using NAME = ... unordered_map|unordered_set ... ;` -> NAME.
std::set<std::string> collect_aliases(const Toks& t) {
  std::set<std::string> out;
  for (size_t i = 0; i + 3 < t.size(); ++i) {
    if (!is_ident(t, i, "using") || t[i + 1].kind != Tok::kIdent ||
        !is_punct(t, i + 2, "=")) {
      continue;
    }
    for (size_t j = i + 3; j < t.size(); ++j) {
      if (is_punct(t, j, ";")) break;
      if (is_ident(t, j, "unordered_map") || is_ident(t, j, "unordered_set")) {
        out.insert(t[i + 1].text);
        break;
      }
    }
  }
  return out;
}

/// Names declared with unordered type in this file: either
/// `unordered_map<...> name` / `unordered_set<...> name` or
/// `ALIAS name` for a visible alias. Declarator may carry const/&/*;
/// `name(` is a function returning the container, not a declaration.
std::set<std::string> collect_unordered_decls(
    const Toks& t, const std::set<std::string>& visible_aliases) {
  std::set<std::string> out;
  const auto declared_name_at = [&](size_t j) -> std::string {
    while (is_ident(t, j, "const") || is_punct(t, j, "&") ||
           is_punct(t, j, "*")) {
      ++j;
    }
    if (j + 1 >= t.size() || t[j].kind != Tok::kIdent) return {};
    const std::string& next = t[j + 1].text;
    if (t[j + 1].kind == Tok::kPunct &&
        (next == ";" || next == "=" || next == "{" || next == "," ||
         next == ")")) {
      return t[j].text;
    }
    return {};
  };
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    if (t[i].text == "unordered_map" || t[i].text == "unordered_set") {
      if (!is_punct(t, i + 1, "<")) continue;
      const size_t past = skip_angles(t, i + 1);
      if (past == Project::npos) continue;
      if (std::string name = declared_name_at(past); !name.empty()) {
        out.insert(std::move(name));
      }
    } else if (visible_aliases.count(t[i].text) > 0 &&
               !(i > 0 && is_ident(t, i - 1, "using"))) {
      if (std::string name = declared_name_at(i + 1); !name.empty()) {
        out.insert(std::move(name));
      }
    }
  }
  return out;
}

void rule_d1(const Project& p, std::vector<Finding>* out) {
  const auto& files = p.files();
  std::vector<std::set<std::string>> aliases(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    aliases[i] = collect_aliases(files[i].lex.tokens);
  }
  std::vector<std::set<std::string>> decls(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    std::set<std::string> visible_aliases;
    for (const size_t j : p.closure(i)) {
      visible_aliases.insert(aliases[j].begin(), aliases[j].end());
    }
    decls[i] = collect_unordered_decls(files[i].lex.tokens, visible_aliases);
  }
  for (size_t i = 0; i < files.size(); ++i) {
    std::set<std::string> visible;
    for (const size_t j : p.closure(i)) {
      visible.insert(decls[j].begin(), decls[j].end());
    }
    if (visible.empty()) continue;
    const Toks& t = files[i].lex.tokens;
    for (size_t k = 0; k + 2 < t.size(); ++k) {
      // for (... : expr): convict when expr is a member/name chain whose
      // final identifier is a visible unordered container.
      if (is_ident(t, k, "for") && is_punct(t, k + 1, "(")) {
        int depth = 1;
        size_t colon = 0;
        size_t close = 0;
        for (size_t j = k + 2; j < t.size() && depth > 0; ++j) {
          if (t[j].kind != Tok::kPunct) continue;
          if (t[j].text == "(") ++depth;
          else if (t[j].text == ")") {
            if (--depth == 0) close = j;
          } else if (t[j].text == ":" && depth == 1 && colon == 0) {
            colon = j;
          }
        }
        if (colon == 0 || close <= colon + 1) continue;
        const Token& last = t[close - 1];
        if (last.kind == Tok::kIdent && visible.count(last.text) > 0) {
          emit(out, files[i], last.line, "D1",
               "range-for over unordered container '" + last.text +
                   "': iteration order is implementation-defined and breaks "
                   "seed-replay determinism; use an ordered container or "
                   "sort a snapshot first");
        }
      }
      // x.begin() / x->cbegin() / x.rbegin(): an explicit ordered walk.
      if (t[k].kind == Tok::kIdent && visible.count(t[k].text) > 0 &&
          (is_punct(t, k + 1, ".") || is_punct(t, k + 1, "->")) &&
          k + 3 < t.size() && t[k + 2].kind == Tok::kIdent &&
          (t[k + 2].text == "begin" || t[k + 2].text == "cbegin" ||
           t[k + 2].text == "rbegin" || t[k + 2].text == "crbegin") &&
          is_punct(t, k + 3, "(")) {
        emit(out, files[i], t[k].line, "D1",
             "iterator over unordered container '" + t[k].text +
                 "': iteration order is implementation-defined and breaks "
                 "seed-replay determinism; use an ordered container or sort "
                 "a snapshot first");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// D2 — nondeterminism sources outside common/rng.h.
// ---------------------------------------------------------------------------

const std::set<std::string>& d2_clocks() {
  static const std::set<std::string> s{"system_clock", "steady_clock",
                                       "high_resolution_clock"};
  return s;
}
const std::set<std::string>& d2_random_types() {
  static const std::set<std::string> s{
      "random_device", "mt19937",      "mt19937_64", "default_random_engine",
      "minstd_rand",   "minstd_rand0", "knuth_b"};
  return s;
}
const std::set<std::string>& d2_calls() {
  static const std::set<std::string> s{
      "rand",  "srand",        "rand_r",       "drand48",  "lrand48",
      "mrand48", "time",       "gettimeofday", "clock_gettime",
      "localtime", "gmtime",   "localtime_r",  "gmtime_r"};
  return s;
}

/// Distinguishes `time(nullptr)` (a call — convict) from `uint64_t time(...)`
/// (a declaration — skip). The token before the name decides: a
/// non-keyword identifier means a return type; `.`/`->` means a member of
/// some other class; `X::` for X != std means a qualified definition.
bool looks_like_call(const Toks& t, size_t i) {
  if (i == 0) return true;
  const Token& prev = t[i - 1];
  if (prev.kind == Tok::kPunct) {
    if (prev.text == "." || prev.text == "->") return false;
    if (prev.text == "::") {
      return i >= 2 && is_ident(t, i - 2, "std");
    }
    return true;
  }
  if (prev.kind == Tok::kIdent) {
    static const std::set<std::string> call_context{
        "return", "co_return", "co_yield", "co_await", "throw", "else", "do"};
    return call_context.count(prev.text) > 0;
  }
  return true;
}

void rule_d2(const Project& p, std::vector<Finding>* out) {
  for (const FileModel& f : p.files()) {
    if (f.path == "src/common/rng.h") continue;  // the one sanctioned source
    const Toks& t = f.lex.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent) continue;
      const std::string& name = t[i].text;
      if (d2_clocks().count(name) > 0 && is_punct(t, i + 1, "::") &&
          is_ident(t, i + 2, "now")) {
        emit(out, f, t[i].line, "D2",
             name +
                 "::now() is wall-clock nondeterminism; trajectories must be "
                 "pure functions of the seed (use sim time / common/rng.h)");
      } else if (d2_random_types().count(name) > 0) {
        emit(out, f, t[i].line, "D2",
             "std::" + name +
                 " is a banned randomness source; all randomness must come "
                 "from the seeded praft::Rng (common/rng.h)");
      } else if (d2_calls().count(name) > 0 && is_punct(t, i + 1, "(") &&
                 looks_like_call(t, i)) {
        emit(out, f, t[i].line, "D2",
             name +
                 "() is a banned nondeterminism source; derive values from "
                 "the seeded praft::Rng (common/rng.h) or sim time");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// W1 — wire completeness per protocol directory.
// ---------------------------------------------------------------------------

struct VariantDecl {
  std::vector<std::string> alternatives;  // in declared (opcode) order
  size_t header = 0;                      // file index of the declaring header
  int line = 1;                           // line of the `using Message` token
};

/// Parses `using Message = std::variant<A, B, ...>` from a header's tokens.
/// Each alternative's name is the last identifier of its top-level segment,
/// so qualified names (`kv::Get`) resolve to the unqualified tail.
bool find_message_variant(const Toks& t, VariantDecl* out) {
  for (size_t i = 0; i + 6 < t.size(); ++i) {
    if (!(is_ident(t, i, "using") && is_ident(t, i + 1, "Message") &&
          is_punct(t, i + 2, "=") && is_ident(t, i + 3, "std") &&
          is_punct(t, i + 4, "::") && is_ident(t, i + 5, "variant") &&
          is_punct(t, i + 6, "<"))) {
      continue;
    }
    out->line = t[i].line;
    out->alternatives.clear();
    int depth = 1;
    std::string last_ident;
    for (size_t j = i + 7; j < t.size() && depth > 0; ++j) {
      if (t[j].kind == Tok::kIdent) {
        last_ident = t[j].text;
        continue;
      }
      if (t[j].kind != Tok::kPunct) continue;
      if (t[j].text == "<") ++depth;
      else if (t[j].text == "<<") depth += 2;
      else if (t[j].text == ">") --depth;
      else if (t[j].text == ">>") depth -= 2;
      else if (t[j].text == "," && depth == 1) {
        if (!last_ident.empty()) out->alternatives.push_back(last_ident);
        last_ident.clear();
      }
    }
    if (!last_ident.empty()) out->alternatives.push_back(last_ident);
    return !out->alternatives.empty();
  }
  return false;
}

/// `void put(WireWriter& w, const A& m)` somewhere in the codec.
bool has_put_overload(const Toks& t, const std::string& a) {
  for (size_t i = 0; i + 8 < t.size(); ++i) {
    if (is_ident(t, i, "put") && is_punct(t, i + 1, "(") &&
        is_ident(t, i + 2, "WireWriter") && is_punct(t, i + 3, "&") &&
        t[i + 4].kind == Tok::kIdent && is_punct(t, i + 5, ",") &&
        is_ident(t, i + 6, "const") && is_ident(t, i + 7, a.c_str()) &&
        is_punct(t, i + 8, "&")) {
      return true;
    }
  }
  return false;
}

/// `A get_*(WireReader& r)` somewhere in the codec.
bool has_get_function(const Toks& t, const std::string& a) {
  for (size_t i = 0; i + 3 < t.size(); ++i) {
    if (is_ident(t, i, a.c_str()) && t[i + 1].kind == Tok::kIdent &&
        t[i + 1].text.compare(0, 3, "get") == 0 && is_punct(t, i + 2, "(") &&
        is_ident(t, i + 3, "WireReader")) {
      return true;
    }
  }
  return false;
}

/// All integral `case K:` labels in the codec's decode switch.
std::set<int> collect_case_labels(const Toks& t) {
  std::set<int> out;
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (is_ident(t, i, "case") && t[i + 1].kind == Tok::kNumber &&
        is_punct(t, i + 2, ":")) {
      out.insert(std::atoi(t[i + 1].text.c_str()));
    }
  }
  return out;
}

/// `operator==(const A&` in any of the directory's headers (defaulted friend
/// or free function both match).
bool has_equality(const std::vector<const FileModel*>& headers,
                  const std::string& a) {
  for (const FileModel* h : headers) {
    const Toks& t = h->lex.tokens;
    for (size_t i = 0; i + 4 < t.size(); ++i) {
      if (is_ident(t, i, "operator") && is_punct(t, i + 1, "==") &&
          is_punct(t, i + 2, "(") && is_ident(t, i + 3, "const") &&
          is_ident(t, i + 4, a.c_str())) {
        return true;
      }
    }
  }
  return false;
}

/// Line of `struct A` in the directory's headers; 0 if not found.
int struct_line(const std::vector<const FileModel*>& headers,
                const std::string& a, const FileModel** where) {
  for (const FileModel* h : headers) {
    const Toks& t = h->lex.tokens;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if (is_ident(t, i, "struct") && is_ident(t, i + 1, a.c_str())) {
        *where = h;
        return t[i].line;
      }
    }
  }
  return 0;
}

void rule_w1(const Project& p, std::vector<Finding>* out) {
  const auto& files = p.files();
  for (size_t wi = 0; wi < files.size(); ++wi) {
    const std::string& wpath = files[wi].path;
    if (wpath.size() < 9 ||
        wpath.compare(wpath.size() - 9, 9, "/wire.cpp") != 0) {
      continue;
    }
    const std::string dir = dir_of(wpath);
    std::vector<const FileModel*> headers;
    for (const FileModel& f : files) {
      if (dir_of(f.path) == dir && f.path.size() > 2 &&
          f.path.compare(f.path.size() - 2, 2, ".h") == 0) {
        headers.push_back(&f);
      }
    }
    VariantDecl decl;
    const FileModel* decl_header = nullptr;
    for (const FileModel* h : headers) {
      if (find_message_variant(h->lex.tokens, &decl)) {
        decl_header = h;
        break;
      }
    }
    if (decl_header == nullptr) continue;  // directory has no Message contract

    const Toks& wt = files[wi].lex.tokens;
    const std::set<int> cases = collect_case_labels(wt);
    for (size_t k = 0; k < decl.alternatives.size(); ++k) {
      const std::string& a = decl.alternatives[k];
      if (!has_put_overload(wt, a)) {
        emit(out, *decl_header, decl.line, "W1",
             "variant alternative '" + a + "' has no put(WireWriter&, const " +
                 a + "&) encoder in " + wpath);
      }
      if (!has_get_function(wt, a)) {
        emit(out, *decl_header, decl.line, "W1",
             "variant alternative '" + a + "' has no " + a +
                 " get_*(WireReader&) decoder in " + wpath);
      }
      if (cases.count(static_cast<int>(k)) == 0) {
        emit(out, *decl_header, decl.line, "W1",
             "decode switch in " + wpath + " has no case " +
                 std::to_string(k) + " (alternative '" + a + "')");
      }
      if (!has_equality(headers, a)) {
        const FileModel* where = decl_header;
        const int line = struct_line(headers, a, &where);
        emit(out, *where, line > 0 ? line : decl.line, "W1",
             "message '" + a +
                 "' lacks operator==; wire round-trip verification "
                 "requires equality");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// C1 — assert()/abort() in src/.
// ---------------------------------------------------------------------------

void rule_c1(const Project& p, std::vector<Finding>* out) {
  for (const FileModel& f : p.files()) {
    if (f.path.compare(0, 4, "src/") != 0) continue;
    const Toks& t = f.lex.tokens;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent || !is_punct(t, i + 1, "(")) continue;
      const bool member =
          i > 0 && (is_punct(t, i - 1, ".") || is_punct(t, i - 1, "->"));
      if (t[i].text == "assert" && !member) {
        emit(out, f, t[i].line, "C1",
             "assert() vanishes under NDEBUG and kills the process under "
             "the simulator; use PRAFT_CHECK / PRAFT_CHECK_MSG "
             "(common/check.h)");
      } else if (t[i].text == "abort" && !member) {
        // std::abort( convicts; Foo::abort( is someone's method.
        if (i > 0 && is_punct(t, i - 1, "::") &&
            !(i >= 2 && is_ident(t, i - 2, "std"))) {
          continue;
        }
        emit(out, f, t[i].line, "C1",
             "abort() kills the process before invariant state is "
             "reported; use PRAFT_CHECK / PRAFT_CHECK_MSG "
             "(common/check.h)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// P1 — durability-barrier bypass in protocol code.
// ---------------------------------------------------------------------------

void rule_p1(const Project& p, std::vector<Finding>* out) {
  static const char* kProtocolDirs[] = {"src/raft", "src/raftstar",
                                        "src/paxos", "src/mencius"};
  for (const FileModel& f : p.files()) {
    bool in_scope = false;
    for (const char* d : kProtocolDirs) in_scope |= in_dir(f.path, d);
    if (!in_scope) continue;
    const Toks& t = f.lex.tokens;
    for (size_t i = 2; i + 1 < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent ||
          (t[i].text != "send" && t[i].text != "send_unsynced") ||
          !is_punct(t, i + 1, "(")) {
        continue;
      }
      if (!is_punct(t, i - 1, ".") && !is_punct(t, i - 1, "->")) continue;
      const Token& recv = t[i - 2];
      if (recv.kind == Tok::kIdent && recv.text == "persister_") continue;
      const std::string shown =
          recv.kind == Tok::kIdent ? recv.text : std::string("<expr>");
      emit(out, f, t[i].line, "P1",
           "raw " + shown + "." + t[i].text +
               "() bypasses the Persister durability seam; protocol sends "
               "must go through persister_.send / persister_.send_unsynced "
               "so payloads never outrun their fsync barrier");
    }
  }
}

}  // namespace

std::vector<Finding> run_rules(const Project& p) {
  return run_rules(p, {});
}

std::vector<Finding> run_rules(const Project& p,
                               const std::set<std::string>& only) {
  const auto enabled = [&](const char* r) {
    return only.empty() || only.count(r) > 0;
  };
  std::vector<Finding> out;
  if (enabled("D1")) rule_d1(p, &out);
  if (enabled("D2")) rule_d2(p, &out);
  if (enabled("W1")) rule_w1(p, &out);
  if (enabled("C1")) rule_c1(p, &out);
  if (enabled("P1")) rule_p1(p, &out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return out;
}

}  // namespace praft::lint
