#include "lint/model.h"

#include <algorithm>

namespace praft::lint {

namespace {

/// Extracts quoted-include targets and suppression directives from a lexed
/// file. Includes are token triples `#` `include` "target"; suppressions are
/// comments containing `praft-lint: allow(RULE ...)`.
void scan_directives(FileModel* f) {
  const auto& toks = f->lex.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind == Tok::kPunct && toks[i].text == "#" &&
        toks[i + 1].kind == Tok::kIdent && toks[i + 1].text == "include" &&
        toks[i + 2].kind == Tok::kString) {
      f->includes.push_back(toks[i + 2].text);
    }
  }
  for (const Comment& c : f->lex.comments) {
    size_t pos = 0;
    while ((pos = c.text.find("praft-lint:", pos)) != std::string::npos) {
      size_t open = c.text.find("allow(", pos);
      if (open == std::string::npos) break;
      open += 6;
      std::string rule;
      while (open < c.text.size() && c.text[open] != ')' &&
             c.text[open] != ' ' && c.text[open] != '\t') {
        rule += c.text[open++];
      }
      if (!rule.empty()) {
        // Multi-line /* */ comments: the directive covers the comment's
        // START line and the next — keep directives at the point they guard.
        f->allows[rule].insert(c.line);
      }
      pos = open;
    }
  }
}

/// Resolves one quoted include against the project: the including file's own
/// directory first (local style), then the repo include roots.
size_t resolve_include(const Project& p, const std::string& from_dir,
                       const std::string& inc) {
  if (!from_dir.empty()) {
    if (size_t i = p.index_of(from_dir + "/" + inc); i != Project::npos) {
      return i;
    }
  }
  for (const char* root : {"src/", "tools/", "tests/"}) {
    if (size_t i = p.index_of(root + inc); i != Project::npos) return i;
  }
  return Project::npos;
}

}  // namespace

Project::Project(std::vector<SourceFile> files) {
  files_.reserve(files.size());
  for (SourceFile& sf : files) {
    FileModel fm;
    fm.path = std::move(sf.path);
    fm.lex = lex(sf.content);
    scan_directives(&fm);
    files_.push_back(std::move(fm));
  }
  // Direct include edges, then transitive closure per file (the graph is
  // tiny — a few hundred nodes — so a per-file DFS is plenty).
  std::vector<std::vector<size_t>> edges(files_.size());
  for (size_t i = 0; i < files_.size(); ++i) {
    const std::string dir = dir_of(files_[i].path);
    for (const std::string& inc : files_[i].includes) {
      const size_t j = resolve_include(*this, dir, inc);
      if (j != npos && j != i) edges[i].push_back(j);
    }
  }
  closures_.resize(files_.size());
  for (size_t i = 0; i < files_.size(); ++i) {
    std::vector<bool> seen(files_.size(), false);
    std::vector<size_t> stack{i};
    seen[i] = true;
    while (!stack.empty()) {
      const size_t u = stack.back();
      stack.pop_back();
      closures_[i].push_back(u);
      for (const size_t v : edges[u]) {
        if (!seen[v]) {
          seen[v] = true;
          stack.push_back(v);
        }
      }
    }
    std::sort(closures_[i].begin(), closures_[i].end());
  }
}

size_t Project::index_of(const std::string& path) const {
  for (size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].path == path) return i;
  }
  return npos;
}

bool is_suppressed(const FileModel& f, const std::string& rule, int line) {
  const auto it = f.allows.find(rule);
  if (it == f.allows.end()) return false;
  return it->second.count(line) > 0 || it->second.count(line - 1) > 0;
}

std::string dir_of(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

bool in_dir(const std::string& path, const std::string& dir) {
  return path.size() > dir.size() + 1 &&
         path.compare(0, dir.size(), dir) == 0 && path[dir.size()] == '/';
}

}  // namespace praft::lint
