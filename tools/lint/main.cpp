// praft_lint — the repo's contract linter. Tokenizer-based (no libclang, no
// dependencies beyond the standard library): walks src/ and tools/, builds an
// include-closure model, and enforces the determinism (D1, D2), wire
// completeness (W1), check-discipline (C1), and durability-seam (P1) rules
// documented in lint/rules.h.
//
// Usage:
//   praft_lint [--root DIR] [--rules R1,R2,...] [--list-rules]
//
//   --root DIR     repository root to scan (default: .). The tool scans
//                  DIR/src and DIR/tools and reports DIR-relative paths.
//   --rules LIST   comma-separated subset of rules to run (default: all).
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error.
//
// Suppress a single finding with a trailing or preceding-line comment:
//   // praft-lint: allow(D1 emission order proven seed-stable by fp test)

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/model.h"
#include "lint/rules.h"

namespace fs = std::filesystem;

namespace {

const char* kRuleDocs[][2] = {
    {"D1", "iteration over unordered containers (order-dependent behavior)"},
    {"D2", "wall clocks / libc rand / std::random_device outside common/rng.h"},
    {"W1", "std::variant message alternative missing encode/decode/operator=="},
    {"C1", "assert()/abort() instead of PRAFT_CHECK (common/check.h)"},
    {"P1", "protocol send bypassing the Persister durability seam"},
};

bool read_file(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

/// DIR-relative path with forward slashes, the form every rule keys off.
std::string rel_path(const fs::path& root, const fs::path& p) {
  return fs::relative(p, root).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::set<std::string> only;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--rules" && i + 1 < argc) {
      std::stringstream ss(argv[++i]);
      for (std::string r; std::getline(ss, r, ',');) only.insert(r);
    } else if (arg.rfind("--rules=", 0) == 0) {
      std::stringstream ss(arg.substr(8));
      for (std::string r; std::getline(ss, r, ',');) only.insert(r);
    } else if (arg == "--list-rules") {
      for (const auto& d : kRuleDocs) std::printf("%s  %s\n", d[0], d[1]);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: praft_lint [--root DIR] [--rules R1,R2,...] "
          "[--list-rules]\n");
      return 0;
    } else {
      std::fprintf(stderr, "praft_lint: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  const fs::path root_path(root);
  std::vector<praft::lint::SourceFile> sources;
  for (const char* sub : {"src", "tools"}) {
    const fs::path base = root_path / sub;
    if (!fs::exists(base)) continue;
    for (const auto& e : fs::recursive_directory_iterator(base)) {
      if (!e.is_regular_file() || !lintable(e.path())) continue;
      praft::lint::SourceFile sf;
      sf.path = rel_path(root_path, e.path());
      if (!read_file(e.path(), &sf.content)) {
        std::fprintf(stderr, "praft_lint: cannot read %s\n",
                     sf.path.c_str());
        return 2;
      }
      sources.push_back(std::move(sf));
    }
  }
  if (sources.empty()) {
    std::fprintf(stderr, "praft_lint: nothing to lint under %s/{src,tools}\n",
                 root.c_str());
    return 2;
  }
  // Deterministic input order (directory iteration order is OS-dependent).
  std::sort(sources.begin(), sources.end(),
            [](const auto& a, const auto& b) { return a.path < b.path; });

  const praft::lint::Project project(std::move(sources));
  const std::vector<praft::lint::Finding> findings =
      praft::lint::run_rules(project, only);
  for (const auto& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (findings.empty()) {
    std::fprintf(stderr, "praft_lint: %zu files clean\n",
                 project.files().size());
    return 0;
  }
  std::fprintf(stderr, "praft_lint: %zu finding(s) across %zu files\n",
               findings.size(), project.files().size());
  return 1;
}
