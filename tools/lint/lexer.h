#pragma once

#include <string>
#include <vector>

namespace praft::lint {

/// Token kinds praft_lint distinguishes. The rules operate on identifier /
/// punctuation sequences, so keywords stay plain identifiers and all
/// literals collapse to one token each.
enum class Tok {
  kIdent,    // identifiers and keywords (for, const, unordered_map, ...)
  kNumber,   // integer / float literals, any base, with suffixes
  kString,   // "..." and R"(...)" (text excludes quotes/delimiters)
  kChar,     // '...'
  kPunct,    // operators and punctuation; :: << >> -> lex as ONE token
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  int line = 1;
};

/// A comment, captured out-of-band: rules never see comments in the token
/// stream, but suppression directives (`// praft-lint: allow(RULE reason)`)
/// live in them.
struct Comment {
  std::string text;  // without the // or /* */ markers
  int line = 1;      // line the comment STARTS on
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes one C++ source file. Handles // and /* */ comments, raw
/// strings, character/string escapes, line continuations, and preprocessor
/// lines (tokenized like ordinary code — rules that care match the leading
/// '#'). Never fails: malformed input degrades to punctuation tokens.
[[nodiscard]] LexResult lex(const std::string& source);

}  // namespace praft::lint
