// Quickstart: bring up a 5-region cluster in the simulator running ANY of
// the registered consensus protocols — selected by name at runtime through
// the consensus::ProtocolRegistry — run a client workload, and inspect the
// replicated state.
//
//   build/examples/quickstart [raft|raftstar|multipaxos|mencius]
#include <cstdio>
#include <string>

#include "consensus/registry.h"
#include "harness/cluster.h"
#include "harness/log_server.h"

using namespace praft;

int main(int argc, char** argv) {
  const std::string protocol = argc > 1 ? argv[1] : "raftstar";
  if (!consensus::ProtocolRegistry::instance().contains(protocol)) {
    std::printf("unknown protocol \"%s\"; registered:", protocol.c_str());
    for (const auto& name : consensus::protocol_names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 1;
  }

  // 1. A cluster over the paper's 5-region AWS latency matrix.
  harness::ClusterConfig cfg;
  cfg.num_replicas = 5;
  cfg.seed = 42;
  harness::Cluster cluster(cfg);

  // 2. One replica per region, protocol picked at runtime by name.
  std::printf("protocol: %s\n", protocol.c_str());
  cluster.build_replicas(protocol);

  // 3. Elect the Oregon replica (leaderless protocols like Mencius skip
  //    this: every replica owns its residue class) and attach closed-loop
  //    clients everywhere.
  if (!cluster.server(0).leaderless()) {
    const int leader = cluster.establish_leader(0);
    std::printf("leader elected: replica %d (%s)\n", leader,
                cluster.net().latency().site_name(leader).c_str());
  } else {
    cluster.run_for(msec(500));  // let status beats flow
  }

  kv::WorkloadConfig wl;
  wl.read_fraction = 0.5;
  cluster.metrics().set_window(sec(2), sec(10));
  cluster.add_clients(/*per_region=*/10, wl, cluster.sim().now());

  // 4. Run 10 simulated seconds, then let in-flight traffic quiesce.
  cluster.run_until(sec(10));
  cluster.stop_clients();
  cluster.run_for(sec(2));
  std::printf("completed ops: %lld  (%.0f ops/s)\n",
              static_cast<long long>(cluster.metrics().completed()),
              cluster.metrics().throughput_ops());
  for (SiteId s = 0; s < 5; ++s) {
    const Histogram& reads = cluster.metrics().reads(s);
    if (reads.count() == 0) continue;
    std::printf("  %-8s read p50 %6.1f ms   p99 %6.1f ms\n",
                cluster.net().latency().site_name(s).c_str(),
                to_ms(reads.percentile(50)), to_ms(reads.percentile(99)));
  }
  std::printf("replica stores applied: %llu ops each, fingerprints %s\n",
              static_cast<unsigned long long>(
                  cluster.server(0).store().applied_count()),
              [&] {
                const uint64_t fp = cluster.server(0).store().fingerprint();
                for (int i = 1; i < 5; ++i) {
                  if (cluster.server(i).store().fingerprint() != fp) {
                    return "DIVERGED (bug!)";
                  }
                }
                return "all equal";
              }());
  return 0;
}
