// Raft*-PQL in action: a geo-replicated KV store where every region serves
// strongly-consistent reads locally under quorum leases (case study 1).
//
//   build/examples/geo_local_reads
#include <cstdio>

#include "harness/cluster.h"
#include "pql/raftstar_pql.h"

using namespace praft;

int main() {
  harness::ClusterConfig cfg;
  cfg.seed = 7;
  harness::Cluster cluster(cfg);
  cluster.build_replicas([&](harness::NodeHost& host,
                             const consensus::Group& group)
                             -> std::unique_ptr<harness::ReplicaServer> {
    return std::make_unique<pql::RaftStarPqlServer>(host, group, cfg.costs);
  });
  cluster.establish_leader(0);
  cluster.run_for(sec(2));  // leases propagate

  kv::WorkloadConfig wl;
  wl.read_fraction = 0.9;
  wl.conflict_rate = 0.05;
  cluster.metrics().set_window(sec(4), sec(14));
  cluster.add_clients(20, wl, cluster.sim().now());
  cluster.run_until(sec(14));

  std::printf("Raft*-PQL geo KV store — read latency by region:\n");
  for (SiteId s = 0; s < 5; ++s) {
    const Histogram& reads = cluster.metrics().reads(s);
    std::printf("  %-8s p50 %7.1f ms   p90 %7.1f ms   p99 %7.1f ms (n=%lld)\n",
                cluster.net().latency().site_name(s).c_str(),
                to_ms(reads.percentile(50)), to_ms(reads.percentile(90)),
                to_ms(reads.percentile(99)),
                static_cast<long long>(reads.count()));
  }
  std::printf("\nEvery region reads at local latency; the p99 tail is reads\n"
              "of contended keys waiting for in-flight writes to commit.\n");
  return 0;
}
