// Failure drill: kill the Raft* leader mid-run, watch a new leader take
// over, bring the old one back, and verify no committed data was lost.
//
//   build/examples/fault_tolerance
#include <cstdio>

#include "harness/cluster.h"
#include "harness/log_server.h"

using namespace praft;

int main() {
  harness::ClusterConfig cfg;
  cfg.seed = 99;
  harness::Cluster cluster(cfg);
  cluster.build_replicas([&](harness::NodeHost& host,
                             const consensus::Group& group)
                             -> std::unique_ptr<harness::ReplicaServer> {
    return std::make_unique<harness::RaftStarServer>(host, group, cfg.costs);
  });
  const int leader = cluster.establish_leader(0);
  std::printf("t=%.1fs initial leader: replica %d\n",
              static_cast<double>(cluster.sim().now()) / 1e6, leader);

  kv::WorkloadConfig wl;
  wl.read_fraction = 0.5;
  cluster.metrics().set_window(0, kTimeMax);
  cluster.add_clients(5, wl, cluster.sim().now());
  cluster.run_for(sec(5));
  const int64_t before = cluster.metrics().completed();
  std::printf("t=%.1fs committed %lld ops; crashing the leader for 10 s...\n",
              static_cast<double>(cluster.sim().now()) / 1e6,
              static_cast<long long>(before));

  const Time t = cluster.sim().now();
  cluster.net().faults().crash(cluster.server(leader).id(), t, t + sec(10));
  cluster.run_for(sec(5));
  const int new_leader = cluster.leader_replica();
  std::printf("t=%.1fs new leader: replica %d (completed: %lld)\n",
              static_cast<double>(cluster.sim().now()) / 1e6, new_leader,
              static_cast<long long>(cluster.metrics().completed()));

  cluster.run_for(sec(10));  // old leader rejoins and catches up
  cluster.stop_clients();
  cluster.run_for(sec(3));
  const uint64_t fp0 = cluster.server(0).store().fingerprint();
  bool all_equal = true;
  for (int i = 1; i < 5; ++i) {
    all_equal &= cluster.server(i).store().fingerprint() == fp0;
  }
  std::printf("t=%.1fs total committed: %lld; stores converged: %s\n",
              static_cast<double>(cluster.sim().now()) / 1e6,
              static_cast<long long>(cluster.metrics().completed()),
              all_equal ? "yes" : "NO (bug!)");
  return 0;
}
