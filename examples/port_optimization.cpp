// The paper's §4.3 method end-to-end on the Fig. 4 teaching example:
//   A  (key-value store)  +  Δ (size counter)  =  AΔ
//   B  (log, refines A)   --port-->               BΔ
// then machine-check the whole Fig. 5 diamond.
//
//   build/examples/port_optimization
#include <cstdio>

#include "core/port.h"
#include "spec/checker.h"
#include "spec/refinement.h"
#include "specs/kvlog.h"

using namespace praft;

int main() {
  auto bundle = specs::make_kvlog(2, 2);

  std::printf("A  = %s, actions:", bundle->a.name().c_str());
  for (const auto& a : bundle->a.actions()) std::printf(" %s", a.name.c_str());
  std::printf("\nB  = %s, actions:", bundle->b.name().c_str());
  for (const auto& a : bundle->b.actions()) std::printf(" %s", a.name.c_str());

  // Apply the delta to A, and PORT it to B through the refinement mapping.
  spec::Spec ad = core::apply_delta(bundle->a, bundle->delta);
  spec::Spec bd = core::port(bundle->b, bundle->f, bundle->corr, bundle->delta);
  std::printf("\nAΔ = %s\nBΔ = %s, variables:", ad.name().c_str(),
              bd.name().c_str());
  for (const auto& v : bd.vars()) std::printf(" %s", v.c_str());
  std::printf("\n\n");

  // Check every edge of the Fig. 5 diamond.
  std::printf("B  => A : %s\n",
              spec::RefinementChecker::check(bundle->b, bundle->a, bundle->f)
                  .summary().c_str());
  std::printf("AΔ => A : %s\n",
              spec::RefinementChecker::check(
                  ad, bundle->a, core::projection_mapping(ad, bundle->a))
                  .summary().c_str());
  std::printf("BΔ => B : %s\n",
              spec::RefinementChecker::check(
                  bd, bundle->b, core::projection_mapping(bd, bundle->b))
                  .summary().c_str());
  std::printf("BΔ => AΔ: %s\n",
              spec::RefinementChecker::check(
                  bd, ad, core::lifted_mapping(bundle->f, bd, ad, bundle->delta))
                  .summary().c_str());

  // The optimization's own invariant, checked on AΔ.
  std::printf("AΔ model check: %s\n",
              spec::ModelChecker::check(ad).summary().c_str());
  return 0;
}
