// Raft*-Mencius in action: every region is the default leader for its slice
// of the log, so no region forwards its writes anywhere (case study 2).
//
//   build/examples/load_balanced_log
#include <cstdio>

#include "harness/cluster.h"
#include "mencius/server.h"

using namespace praft;

int main() {
  harness::ClusterConfig cfg;
  cfg.seed = 11;
  harness::Cluster cluster(cfg);
  std::vector<mencius::MenciusServer*> servers;
  cluster.build_replicas([&](harness::NodeHost& host,
                             const consensus::Group& group)
                             -> std::unique_ptr<harness::ReplicaServer> {
    auto s = std::make_unique<mencius::MenciusServer>(host, group, cfg.costs);
    servers.push_back(s.get());
    return s;
  });
  cluster.run_for(msec(500));

  kv::WorkloadConfig wl;
  wl.read_fraction = 0.0;  // 100% puts, as in the paper's §5.2
  wl.conflict_rate = 0.0;
  cluster.metrics().set_window(sec(2), sec(12));
  cluster.add_clients(20, wl, cluster.sim().now());
  cluster.run_until(sec(12));

  std::printf("Raft*-Mencius — write latency by region (no forwarding):\n");
  for (SiteId s = 0; s < 5; ++s) {
    const Histogram& writes = cluster.metrics().writes(s);
    std::printf("  %-8s p50 %7.1f ms   p90 %7.1f ms (n=%lld)\n",
                cluster.net().latency().site_name(s).c_str(),
                to_ms(writes.percentile(50)), to_ms(writes.percentile(90)),
                static_cast<long long>(writes.count()));
  }
  int64_t skips = 0;
  for (auto* s : servers) skips += s->node().slots_skipped();
  std::printf("\nthroughput: %.0f ops/s;  slots skipped cluster-wide: %lld\n",
              cluster.metrics().throughput_ops(),
              static_cast<long long>(skips));
  std::printf("CPU busy per replica (balanced leader load):");
  for (int i = 0; i < 5; ++i) {
    std::printf(" %.1fs", static_cast<double>(
                              cluster.server(i).host().cpu_busy()) / 1e6);
  }
  std::printf("\n");
  return 0;
}
