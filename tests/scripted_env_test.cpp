#include <gtest/gtest.h>

#include <vector>

#include "scripted_env.h"

namespace praft::test {
namespace {

TEST(ScriptedEnvTest, EqualDeadlinesFireInInsertionOrder) {
  ScriptedEnv env;
  std::vector<int> fired;
  env.schedule(100, [&] { fired.push_back(0); });
  env.schedule(100, [&] { fired.push_back(1); });
  env.schedule(100, [&] { fired.push_back(2); });
  env.advance(100);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(env.now(), 100);
}

TEST(ScriptedEnvTest, TieBreakSurvivesInterleavedEarlierTimer) {
  // An earlier-deadline timer scheduled between two equal-deadline ones
  // must not perturb their relative order (the old first-lowest scan relied
  // on vector position; the seq tie-break makes the contract explicit).
  ScriptedEnv env;
  std::vector<int> fired;
  env.schedule(200, [&] { fired.push_back(0); });
  env.schedule(50, [&] { fired.push_back(9); });
  env.schedule(200, [&] { fired.push_back(1); });
  env.advance(300);
  EXPECT_EQ(fired, (std::vector<int>{9, 0, 1}));
}

TEST(ScriptedEnvTest, TimerScheduledWhileFiringJoinsTheTail) {
  // A timer created DURING a firing with the same deadline fires after all
  // previously scheduled same-deadline timers (insertion order), in the
  // same advance() call.
  ScriptedEnv env;
  std::vector<int> fired;
  env.schedule(100, [&] {
    fired.push_back(0);
    env.schedule(0, [&] { fired.push_back(2); });  // deadline 100, newest
  });
  env.schedule(100, [&] { fired.push_back(1); });
  env.advance(100);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
}

TEST(ScriptedEnvTest, AdvanceStopsAtTarget) {
  ScriptedEnv env;
  int fired = 0;
  env.schedule(100, [&] { ++fired; });
  env.schedule(101, [&] { ++fired; });
  env.advance(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(env.now(), 100);
  env.advance(1);
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace praft::test
