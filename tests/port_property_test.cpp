// Property sweeps over the §4.3 port at many scopes: for EVERY scope the
// Fig. 5 diamond must close. This is the porting method's regression net.
#include <gtest/gtest.h>

#include "core/port.h"
#include "spec/checker.h"
#include "spec/refinement.h"
#include "specs/kvlog.h"

namespace praft {
namespace {

struct Scope {
  int keys;
  int values;
};

class KvLogScopeTest : public ::testing::TestWithParam<Scope> {};

TEST_P(KvLogScopeTest, DiamondClosesAtEveryScope) {
  const Scope sc = GetParam();
  auto bundle = specs::make_kvlog(sc.keys, sc.values);
  spec::Spec ad = core::apply_delta(bundle->a, bundle->delta);
  spec::Spec bd =
      core::port(bundle->b, bundle->f, bundle->corr, bundle->delta);

  spec::CheckOptions mopt;
  mopt.max_states = 300'000;
  const auto ad_check = spec::ModelChecker::check(ad, mopt);
  EXPECT_TRUE(ad_check.ok) << ad_check.summary();

  spec::RefinementOptions ropt;
  ropt.max_states = 300'000;
  const auto b_a =
      spec::RefinementChecker::check(bundle->b, bundle->a, bundle->f, ropt);
  EXPECT_TRUE(b_a.ok) << "B=>A " << b_a.summary();
  const auto bd_b = spec::RefinementChecker::check(
      bd, bundle->b, core::projection_mapping(bd, bundle->b), ropt);
  EXPECT_TRUE(bd_b.ok) << "BΔ=>B " << bd_b.summary();
  const auto bd_ad = spec::RefinementChecker::check(
      bd, ad, core::lifted_mapping(bundle->f, bd, ad, bundle->delta), ropt);
  EXPECT_TRUE(bd_ad.ok) << "BΔ=>AΔ " << bd_ad.summary();

  // The ported spec preserves B's reachable-state pruning: BΔ is never
  // larger than B (extra guards only restrict).
  const auto b_states = spec::ModelChecker::check(bundle->b, mopt).states;
  const auto bd_states = spec::ModelChecker::check(bd, mopt).states;
  EXPECT_LE(bd_states, b_states * 2)  // size counter adds one dimension
      << "ported spec blew up unexpectedly";
}

INSTANTIATE_TEST_SUITE_P(
    Scopes, KvLogScopeTest,
    ::testing::Values(Scope{1, 1}, Scope{1, 2}, Scope{2, 1}, Scope{2, 2},
                      Scope{2, 3}, Scope{3, 1}, Scope{3, 2}, Scope{4, 1}),
    [](const ::testing::TestParamInfo<Scope>& info) {
      return "keys" + std::to_string(info.param.keys) + "_vals" +
             std::to_string(info.param.values);
    });

// Deltas composed of only-added actions (no modified ones) port too.
TEST(PortEdgeCaseTest, AddedOnlyDelta) {
  auto bundle = specs::make_kvlog(2, 2);
  core::OptimizationDelta d;
  d.name = "audit";
  d.new_vars.emplace_back("audits", spec::V(0));
  d.added.push_back(core::AddedAction{
      "Audit",
      {},
      [](const core::VarFn& av, const core::VarFn& dv,
         const std::vector<spec::Value>&)
          -> std::optional<core::DeltaUpdates> {
        (void)av;
        core::DeltaUpdates u;
        const int64_t n = dv("audits").as_int();
        if (n >= 3) return std::nullopt;  // bounded for checking
        u["audits"] = spec::V(n + 1);
        return u;
      }});
  spec::Spec ad = core::apply_delta(bundle->a, d);
  spec::Spec bd = core::port(bundle->b, bundle->f, bundle->corr, d);
  EXPECT_NE(bd.action("Audit"), nullptr);
  const auto res = spec::RefinementChecker::check(
      bd, ad, core::lifted_mapping(bundle->f, bd, ad, d));
  EXPECT_TRUE(res.ok) << res.summary();
}

// An empty delta is the identity port: BΔ == B modulo naming.
TEST(PortEdgeCaseTest, EmptyDeltaIsIdentity) {
  auto bundle = specs::make_kvlog(2, 2);
  core::OptimizationDelta d;
  d.name = "noop";
  spec::Spec bd = core::port(bundle->b, bundle->f, bundle->corr, d);
  EXPECT_EQ(bd.vars().size(), bundle->b.vars().size());
  const auto b_res = spec::ModelChecker::check(bundle->b);
  const auto bd_res = spec::ModelChecker::check(bd);
  EXPECT_EQ(b_res.states, bd_res.states);
  EXPECT_EQ(b_res.transitions, bd_res.transitions);
}

// A modified action whose clause always fails removes the action entirely.
TEST(PortEdgeCaseTest, AlwaysFalseClauseDisablesAction) {
  auto bundle = specs::make_kvlog(2, 2);
  core::OptimizationDelta d;
  d.name = "freeze";
  d.new_vars.emplace_back("unused", spec::V(0));
  core::ModifiedAction m;
  m.base = "Put";
  m.clause.apply = [](const core::VarFn&, const core::VarFn&,
                      const core::VarFn&, const std::vector<spec::Value>&)
      -> std::optional<core::DeltaUpdates> { return std::nullopt; };
  d.modified.push_back(std::move(m));
  spec::Spec bd = core::port(bundle->b, bundle->f, bundle->corr, d);
  // With Write disabled, only Read remains: exactly one reachable state.
  const auto res = spec::ModelChecker::check(bd);
  EXPECT_EQ(res.states, 1u);
}

}  // namespace
}  // namespace praft
