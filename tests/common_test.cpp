#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/types.h"

namespace praft {
namespace {

TEST(TypesTest, DurationHelpers) {
  EXPECT_EQ(usec(7), 7);
  EXPECT_EQ(msec(3), 3000);
  EXPECT_EQ(sec(2), 2'000'000);
  EXPECT_DOUBLE_EQ(to_ms(msec(250)), 250.0);
}

TEST(CheckTest, ThrowsOnFailure) {
  EXPECT_NO_THROW(PRAFT_CHECK(1 + 1 == 2));
  EXPECT_THROW(PRAFT_CHECK(false), CheckFailure);
  EXPECT_THROW(PRAFT_CHECK_MSG(false, "boom"), CheckFailure);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const int64_t v = r.range(10, 20);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng r(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SplitIndependence) {
  Rng a(5);
  Rng c = a.split();
  std::set<uint64_t> vals;
  for (int i = 0; i < 50; ++i) {
    vals.insert(a.next());
    vals.insert(c.next());
  }
  EXPECT_EQ(vals.size(), 100u);
}

TEST(HistogramTest, EmptyBehaviour) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.percentile(50), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.record(1234);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 1234);
  EXPECT_EQ(h.max(), 1234);
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 1234.0, 1234.0 * 0.04);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  Rng r(3);
  for (int i = 0; i < 10000; ++i) h.record(r.range(1, 1'000'000));
  const int64_t p50 = h.percentile(50);
  const int64_t p90 = h.percentile(90);
  const int64_t p99 = h.percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_NEAR(static_cast<double>(p50), 500'000.0, 50'000.0);
  EXPECT_NEAR(static_cast<double>(p99), 990'000.0, 50'000.0);
}

TEST(HistogramTest, RelativeErrorBounded) {
  Histogram h;
  for (int64_t v : {1, 10, 100, 1000, 10'000, 100'000, 1'000'000}) {
    h.clear();
    h.record(v);
    const auto p = static_cast<double>(h.percentile(50));
    EXPECT_NEAR(p, static_cast<double>(v), static_cast<double>(v) * 0.05 + 1);
  }
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_LT(a.percentile(40), 100);
  EXPECT_GT(a.percentile(60), 100);
}

TEST(HistogramTest, NegativeClampedToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1);
}

TEST(HistogramTest, MeanMatches) {
  Histogram h;
  h.record(100);
  h.record(300);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

}  // namespace
}  // namespace praft
