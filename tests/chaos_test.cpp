#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/invariants.h"
#include "chaos/runner.h"
#include "chaos/schedule_gen.h"
#include "consensus/registry.h"

namespace praft::chaos {
namespace {

TEST(ScheduleGenTest, DeterministicPerSeed) {
  const Schedule a = generate_schedule(42);
  const Schedule b = generate_schedule(42);
  EXPECT_EQ(a.describe(), b.describe());
  // Different seeds diverge (with overwhelming probability for this pair).
  const Schedule c = generate_schedule(43);
  EXPECT_NE(a.describe(), c.describe());
}

TEST(ScheduleGenTest, EventsRespectLimits) {
  ScheduleLimits lim;
  lim.faults_from = sec(2);
  lim.faults_until = sec(12);
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    const Schedule s = generate_schedule(seed, lim);
    EXPECT_GE(static_cast<int>(s.events.size()), lim.min_events);
    EXPECT_LE(static_cast<int>(s.events.size()), lim.max_events);
    for (const FaultEvent& e : s.events) {
      EXPECT_GE(e.from, lim.faults_from);
      EXPECT_LE(e.to, lim.faults_until);
      EXPECT_LT(e.from, e.to);
    }
    EXPECT_LE(s.drop_rate, lim.max_drop_rate);
    EXPECT_LE(s.duplicate_rate, lim.max_duplicate_rate);
    EXPECT_LE(s.reorder_rate, lim.max_reorder_rate);
  }
}

TEST(ChaosRunnerTest, AllProtocolsSurviveASeedBatch) {
  for (const std::string& protocol : consensus::protocol_names()) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      RunOptions opt;
      opt.protocol = protocol;
      opt.seed = seed;
      const RunResult r = run_one(opt);
      EXPECT_TRUE(r.ok) << protocol << " seed " << seed << ": "
                        << (r.violations.empty() ? "?" : r.violations[0]);
      EXPECT_GT(r.log_length, 0) << protocol << " seed " << seed
                                 << " made no progress";
      EXPECT_GT(r.client_ops, 0u);
    }
  }
}

TEST(ChaosRunnerTest, DeterministicReplay) {
  RunOptions opt;
  opt.protocol = "raft";
  opt.seed = 17;
  const RunResult a = run_one(opt);
  const RunResult b = run_one(opt);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.log_length, b.log_length);
  EXPECT_EQ(a.client_ops, b.client_ops);
  EXPECT_EQ(a.schedule, b.schedule);
}

TEST(ChaosRunnerTest, InjectedQuorumBugIsCaughtWithin50Seeds) {
  // The acceptance bar: a deliberate "commit on n/2 acks" bug must be
  // caught — with a reported seed and trace — within 50 seeds, for every
  // protocol in the registry.
  for (const std::string& protocol : consensus::protocol_names()) {
    bool caught = false;
    for (uint64_t seed = 1; seed <= 50 && !caught; ++seed) {
      RunOptions opt;
      opt.protocol = protocol;
      opt.seed = seed;
      opt.inject_quorum_bug = true;
      const RunResult r = run_one(opt);
      if (!r.ok) {
        caught = true;
        EXPECT_FALSE(r.violations.empty());
        EXPECT_FALSE(r.trace.empty());
        EXPECT_NE(r.repro.find("--inject-quorum-bug"), std::string::npos);
      }
    }
    EXPECT_TRUE(caught) << protocol
                        << ": quorum bug survived 50 fuzzing seeds";
  }
}

TEST(InvariantCheckerTest, FlagsDivergentCommandAtSameIndex) {
  InvariantChecker chk;
  kv::Command put;
  put.op = kv::Op::kPut;
  put.key = 1;
  put.value = 10;
  chk.on_apply(/*replica=*/0, 1, put);
  chk.on_apply(/*replica=*/1, 1, kv::noop_command());
  EXPECT_FALSE(chk.ok());
  ASSERT_FALSE(chk.violations().empty());
  EXPECT_NE(chk.violations()[0].find("agreement"), std::string::npos);
}

TEST(InvariantCheckerTest, FlagsNonContiguousApply) {
  InvariantChecker chk;
  chk.on_apply(0, 1, kv::noop_command());
  chk.on_apply(0, 3, kv::noop_command());  // hole: 2 skipped
  EXPECT_FALSE(chk.ok());
}

TEST(InvariantCheckerTest, FlagsCommitWatermarkRegression) {
  InvariantChecker chk;
  chk.on_watermark(0, /*commit=*/5, /*applied=*/5);
  chk.on_watermark(0, /*commit=*/3, /*applied=*/3);
  EXPECT_FALSE(chk.ok());
}

TEST(InvariantCheckerTest, CleanStreamPasses) {
  InvariantChecker chk;
  for (int r = 0; r < 3; ++r) {
    for (consensus::LogIndex i = 1; i <= 4; ++i) {
      kv::Command put;
      put.op = kv::Op::kPut;
      put.key = static_cast<uint64_t>(i);
      put.value = static_cast<uint64_t>(i) * 10;
      chk.on_apply(r, i, put);
      chk.on_watermark(r, i, i);
    }
  }
  EXPECT_TRUE(chk.ok());
  EXPECT_EQ(chk.max_applied(), 4);
}

}  // namespace
}  // namespace praft::chaos
