#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "harness/cost_model.h"
#include "harness/experiment.h"
#include "harness/log_server.h"
#include "test_util.h"

namespace praft {
namespace {

TEST(MetricsTest, WindowFiltersSamples) {
  harness::Metrics m(msec(100), msec(200));
  m.record(msec(50), 0, true, msec(1));    // before window
  m.record(msec(150), 0, true, msec(2));   // inside
  m.record(msec(250), 0, true, msec(3));   // after
  EXPECT_EQ(m.completed(), 1);
  EXPECT_EQ(m.reads(0).count(), 1);
}

TEST(MetricsTest, ThroughputUsesWindowSpan) {
  harness::Metrics m(0, sec(2));
  for (int i = 0; i < 100; ++i) m.record(msec(500), 0, false, msec(1));
  EXPECT_DOUBLE_EQ(m.throughput_ops(), 50.0);  // 100 ops over 2 s
}

TEST(MetricsTest, MergedHistogramsSpanSites) {
  harness::Metrics m(0, kTimeMax);
  m.record(1, 1, true, msec(10));
  m.record(1, 2, true, msec(20));
  m.record(1, 3, false, msec(30));
  const Histogram reads = m.merged_reads({1, 2, 3});
  EXPECT_EQ(reads.count(), 2);
  const Histogram writes = m.merged_writes({1, 2, 3});
  EXPECT_EQ(writes.count(), 1);
}

TEST(CostModelTest, SizeCostScalesLinearly) {
  harness::CostModel cm;
  EXPECT_EQ(cm.size_cost(0), 0);
  EXPECT_EQ(cm.size_cost(4096), cm.per_4kb);
  EXPECT_EQ(cm.size_cost(8192), 2 * cm.per_4kb);
}

TEST(NodeHostTest, CpuQueueDelaysProcessing) {
  sim::Simulator sim(3);
  sim::Network net(sim, test::lan_matrix());
  harness::NodeHost sender(sim, net, 0);
  harness::NodeHost receiver(sim, net, 0);

  struct CountingHandler : harness::PacketHandler {
    int handled = 0;
    Time last = 0;
    sim::Simulator* sim = nullptr;
    void handle(const net::Packet&) override {
      ++handled;
      last = sim->now();
    }
    [[nodiscard]] Duration cost_of(const net::Packet&) const override {
      return msec(10);  // expensive processing
    }
  } handler;
  handler.sim = &sim;
  receiver.attach(&handler);

  // Two messages arrive ~together; the second waits behind the first.
  net.send(sender.id(), receiver.id(), 1, 10);
  net.send(sender.id(), receiver.id(), 2, 10);
  sim.run_for(msec(100));
  EXPECT_EQ(handler.handled, 2);
  EXPECT_GE(handler.last, msec(20));  // ~arrival + 2 x 10 ms service
  EXPECT_GE(receiver.cpu_busy(), msec(20));
}

TEST(ClusterTest, DefaultSitesAssignRoundRobin) {
  harness::ClusterConfig cfg = test::lan_config(5);
  cfg.num_replicas = 5;
  harness::Cluster cluster(cfg);
  cluster.build_replicas(test::make_factory<harness::RaftProtocol>(
      test::fast_options<raft::Options>()));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(cluster.server(i).site(), i);
  }
  EXPECT_EQ(cluster.group_template().members.size(), 5u);
}

TEST(ClusterTest, EstablishLeaderRespectsPreference) {
  for (int preferred : {0, 2, 4}) {
    harness::Cluster cluster(test::lan_config(6));
    cluster.build_replicas(test::make_factory<harness::RaftProtocol>(
        test::fast_options<raft::Options>()));
    EXPECT_EQ(cluster.establish_leader(preferred), preferred);
  }
}

TEST(ClientTest, RetriesAfterTimeout) {
  // A cluster with a permanently-dead server: the client must keep retrying.
  harness::Cluster cluster(test::lan_config(7));
  cluster.build_replicas(test::make_factory<harness::RaftProtocol>(
      test::fast_options<raft::Options>()));
  cluster.net().faults().crash(cluster.server(0).id(), 0, sec(600));
  cluster.metrics().set_window(0, kTimeMax);
  kv::WorkloadConfig wl = test::small_workload();
  // Only site-0 clients, talking to the dead replica.
  kv::WorkloadGenerator gen(wl, 0, Rng(1));
  auto& host = cluster.make_host(0);
  harness::ClosedLoopClient::Options copt;
  copt.retry_timeout = sec(1);
  harness::Metrics metrics;
  harness::ClosedLoopClient client(host, cluster.server(0).id(),
                                   std::move(gen), metrics, copt);
  client.start();
  cluster.run_for(sec(5));
  EXPECT_GE(client.retries(), 3u);
  EXPECT_EQ(client.completed(), 0u);
}

// ---------------------------------------------------------------------------
// Experiment-runner smoke tests: every system of Figs. 9/10 boots, elects,
// commits and reports sane figures end-to-end (parameterized).
// ---------------------------------------------------------------------------

class ExperimentSmokeTest
    : public ::testing::TestWithParam<harness::SystemKind> {};

TEST_P(ExperimentSmokeTest, RunsAndCommits) {
  harness::ExperimentConfig cfg;
  cfg.system = GetParam();
  cfg.clients_per_region = 5;
  cfg.workload.read_fraction = 0.5;
  cfg.workload.conflict_rate = 0.05;
  cfg.run = sec(4);
  cfg.warmup = sec(2);
  cfg.cooldown = msec(500);
  cfg.seed = 777;
  const auto res = harness::run_experiment(cfg);
  EXPECT_GT(res.throughput_ops, 10.0)
      << harness::system_name(cfg.system);
  // Latency sanity: nothing below the intra-site RTT floor, nothing above
  // the client retry timeout.
  const auto check = [&](const harness::LatencySummary& s) {
    if (s.count == 0) return;
    EXPECT_GT(s.p50, 0);
    EXPECT_LT(s.p99, sec(5));
  };
  check(res.leader_reads);
  check(res.leader_writes);
  check(res.follower_reads);
  check(res.follower_writes);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, ExperimentSmokeTest,
    ::testing::Values(harness::SystemKind::kRaft, harness::SystemKind::kRaftStar,
                      harness::SystemKind::kPaxos,
                      harness::SystemKind::kRaftStarPql,
                      harness::SystemKind::kRaftStarLL,
                      harness::SystemKind::kRaftStarMencius),
    [](const ::testing::TestParamInfo<harness::SystemKind>& info) {
      std::string n = harness::system_name(info.param);
      for (char& c : n) {
        if (c == '*') c = 'S';
        if (c == '-') c = '_';
      }
      return n;
    });

// Latency ordering properties across systems (the Fig. 9 story in one test).
TEST(ExperimentPropertyTest, PqlReadsBeatRaftReads) {
  harness::ExperimentConfig cfg;
  cfg.clients_per_region = 10;
  cfg.workload.read_fraction = 1.0;
  cfg.workload.conflict_rate = 0.0;
  cfg.run = sec(5);
  cfg.warmup = sec(3);
  cfg.seed = 778;
  cfg.system = harness::SystemKind::kRaftStarPql;
  const auto pql = harness::run_experiment(cfg);
  cfg.system = harness::SystemKind::kRaft;
  const auto raft = harness::run_experiment(cfg);
  EXPECT_LT(pql.follower_reads.p50, msec(10));
  EXPECT_GT(raft.follower_reads.p50, msec(50));
}

TEST(ExperimentPropertyTest, MenciusAvoidsForwardingLatency) {
  harness::ExperimentConfig cfg;
  cfg.clients_per_region = 10;
  cfg.workload.read_fraction = 0.0;
  cfg.workload.conflict_rate = 0.0;
  cfg.run = sec(5);
  cfg.warmup = sec(3);
  cfg.seed = 779;
  cfg.system = harness::SystemKind::kRaftStarMencius;
  const auto mencius = harness::run_experiment(cfg);
  cfg.system = harness::SystemKind::kRaft;
  cfg.leader_replica = 4;  // Seoul: worst forwarding case
  const auto raft = harness::run_experiment(cfg);
  // Every Mencius region commits via its own nearest quorum; Raft-Seoul's
  // followers pay forwarding to the farthest leader.
  EXPECT_LT(mencius.follower_writes.p50, raft.follower_writes.p50);
}

}  // namespace
}  // namespace praft
