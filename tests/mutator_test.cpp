#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/mutator.h"
#include "chaos/runner.h"
#include "chaos/schedule_gen.h"
#include "common/rng.h"

namespace praft::chaos {
namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

void expect_events_in_bounds(const Schedule& s, const ScheduleLimits& lim,
                             const std::string& context) {
  for (const FaultEvent& e : s.events) {
    EXPECT_GE(e.from, lim.faults_from) << context << ": " << e.describe();
    EXPECT_LT(e.from, e.to) << context << ": " << e.describe();
    EXPECT_LE(e.to, lim.faults_until) << context << ": " << e.describe();
  }
}

// --- schedule generator property tests --------------------------------------

TEST(ScheduleGenPropertyTest, WindowBoundsHoldAcrossRandomizedLimits) {
  Rng meta(0xfeedface);
  for (int iter = 0; iter < 300; ++iter) {
    ScheduleLimits lim;
    lim.num_replicas = 2 + static_cast<int>(meta.below(5));
    lim.faults_from = msec(static_cast<int64_t>(meta.below(3000)));
    lim.faults_until =
        lim.faults_from + msec(1 + static_cast<int64_t>(meta.below(12000)));
    lim.min_events = 1 + static_cast<int>(meta.below(3));
    lim.max_events = lim.min_events + static_cast<int>(meta.below(5));
    lim.min_window = msec(10 + static_cast<int64_t>(meta.below(500)));
    lim.max_window =
        lim.min_window + msec(static_cast<int64_t>(meta.below(4000)));
    lim.add_minority_window = meta.chance(0.5);
    lim.crash_restart = meta.chance(0.5);
    lim.forced_crash_restarts = static_cast<int>(meta.below(4));
    const uint64_t seed = meta.next();

    const Schedule s = generate_schedule(seed, lim);
    expect_events_in_bounds(s, lim, "iter " + std::to_string(iter));
    // Pure function of (seed, limits).
    EXPECT_EQ(s.describe(), generate_schedule(seed, lim).describe());
  }
}

TEST(ScheduleGenPropertyTest, ForcedCrashPairsRespectTinyFaultWindows) {
  // Regression: the forced leader-crash event was pushed unguarded, so the
  // k-th pair (starting 3s deeper into the fault phase) emitted an inverted
  // window (`to < from`) whenever `faults_until` was small — leaking faults
  // into the documented fault-free re-convergence tail.
  ScheduleLimits lim;
  lim.faults_from = sec(2);
  lim.faults_until = sec(3);
  lim.crash_restart = true;
  lim.forced_crash_restarts = 3;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const Schedule s = generate_schedule(seed, lim);
    expect_events_in_bounds(s, lim, "seed " + std::to_string(seed));
  }
}

// --- serialization ----------------------------------------------------------

TEST(ScheduleTextTest, SerializeParseSerializeIsIdentity) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    ScheduleLimits lim;
    lim.crash_restart = (seed % 2) == 0;
    lim.forced_crash_restarts = static_cast<int>(seed % 3);
    const Schedule s = generate_schedule(seed, lim);
    const std::string text = serialize_schedule(s);

    const std::vector<std::string> lines = split_lines(text);
    size_t pos = 0;
    Schedule parsed;
    std::string header;
    std::string error;
    ASSERT_TRUE(parse_schedule(lines, &pos, &parsed, &header, &error))
        << error;
    EXPECT_EQ(pos, lines.size());
    EXPECT_TRUE(header.empty());
    EXPECT_EQ(serialize_schedule(parsed), text);
    EXPECT_EQ(parsed.describe(), s.describe());
  }
}

TEST(ScheduleTextTest, HeaderExtrasRoundTrip) {
  const Schedule s = generate_schedule(7);
  const std::string text = serialize_schedule(s, "mencius --restarts");
  size_t pos = 0;
  Schedule parsed;
  std::string header;
  std::string error;
  ASSERT_TRUE(parse_schedule(split_lines(text), &pos, &parsed, &header,
                             &error))
      << error;
  EXPECT_EQ(header, "mencius --restarts");
  EXPECT_EQ(serialize_schedule(parsed, header), text);
}

TEST(ScheduleTextTest, CommentsAndBlankLinesAreIgnored) {
  const Schedule s = generate_schedule(9);
  std::vector<std::string> lines = split_lines(serialize_schedule(s));
  lines.insert(lines.begin() + 1, "  # a comment");
  lines.insert(lines.begin() + 3, "");
  lines[lines.size() - 1] += "  # cov=42";
  size_t pos = 0;
  Schedule parsed;
  std::string header;
  std::string error;
  ASSERT_TRUE(parse_schedule(lines, &pos, &parsed, &header, &error)) << error;
  EXPECT_EQ(parsed.describe(), s.describe());
}

TEST(ScheduleTextTest, MalformedBlocksAreRejected) {
  Schedule out;
  std::string header;
  std::string error;
  const auto rejects = [&](std::vector<std::string> lines) {
    size_t pos = 0;
    const bool ok = parse_schedule(lines, &pos, &out, &header, &error);
    EXPECT_FALSE(ok);
    EXPECT_FALSE(error.empty());
  };
  rejects({"schedule {", "bogus_key 1",
           "event crash a=0 from=1000 to=2000", "}"});
  rejects({"schedule {", "seed notanumber",
           "event crash a=0 from=1000 to=2000", "}"});
  rejects({"schedule {", "event not_a_kind from=1000 to=2000", "}"});
  rejects({"schedule {", "event crash a=0 from=2000 to=1000", "}"});
  rejects({"schedule {", "event crash a=0 from=-5 to=1000", "}"});
  rejects({"schedule {", "event crash a=-2 from=1000 to=2000", "}"});
  // A near-INT64_MAX window would overflow the runner's deadline math into
  // an instant bogus green; times are capped at parse.
  rejects({"schedule {",
           "event drop_burst p=0.3 from=3000000 to=9223372036854775000",
           "}"});
  rejects({"schedule {", "seed 1"});   // never closed
  rejects({"schedule {", "}"});        // no events
  rejects({"notschedule {", "}"});
}

// --- mutation operators -----------------------------------------------------

TEST(MutatorTest, MutationsAreDeterministicAndStayInBounds) {
  ScheduleLimits lim;
  lim.crash_restart = true;
  const Schedule base = generate_schedule(7, lim);
  Rng a(99);
  Rng b(99);
  Schedule m1 = base;
  Schedule m2 = base;
  for (int i = 0; i < 300; ++i) {
    m1 = mutate_schedule(m1, a, lim);
    m2 = mutate_schedule(m2, b, lim);
    expect_events_in_bounds(m1, lim, "mutation " + std::to_string(i));
    ASSERT_GE(m1.events.size(), 1u);
    ASSERT_LE(m1.events.size(), 12u);
    EXPECT_GE(m1.drop_rate, 0.0);
    EXPECT_LE(m1.drop_rate, lim.max_drop_rate);
    EXPECT_LE(m1.duplicate_rate, lim.max_duplicate_rate);
    EXPECT_LE(m1.reorder_rate, lim.max_reorder_rate);
    EXPECT_GE(m1.workload.read_fraction, 0.0);
    EXPECT_LE(m1.workload.read_fraction, 1.0);
  }
  // Same RNG stream, same inputs => bit-identical mutants.
  EXPECT_EQ(serialize_schedule(m1), serialize_schedule(m2));
  // And the walk actually went somewhere.
  EXPECT_NE(serialize_schedule(m1), serialize_schedule(base));
}

TEST(MutatorTest, EveryOperatorPreservesTheWindowPostcondition) {
  ScheduleLimits lim;
  lim.crash_restart = true;
  const MutationOp ops[] = {
      MutationOp::kShiftWindow,     MutationOp::kStretchWindow,
      MutationOp::kSplitWindow,     MutationOp::kSwapKind,
      MutationOp::kRetargetReplica, MutationOp::kPerturbRates,
      MutationOp::kPerturbWorkload, MutationOp::kAddEvent,
      MutationOp::kDropEvent,       MutationOp::kReseed,
  };
  Rng rng(1234);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Schedule s = generate_schedule(seed, lim);
    for (const MutationOp op : ops) {
      for (int rep = 0; rep < 10; ++rep) {
        s = apply_mutation(s, op, rng, lim);
        expect_events_in_bounds(s, lim, "op " + std::to_string(
                                            static_cast<int>(op)));
        ASSERT_GE(s.events.size(), 1u);
      }
    }
  }
}

TEST(MutatorTest, SpliceMixesParentsWithinBounds) {
  ScheduleLimits lim;
  lim.crash_restart = true;
  const Schedule a = generate_schedule(1, lim);
  const Schedule b = generate_schedule(2, lim);
  Rng r1(5);
  Rng r2(5);
  for (int i = 0; i < 100; ++i) {
    const Schedule c1 = splice_schedules(a, b, r1, lim);
    const Schedule c2 = splice_schedules(a, b, r2, lim);
    EXPECT_EQ(serialize_schedule(c1), serialize_schedule(c2));
    expect_events_in_bounds(c1, lim, "splice " + std::to_string(i));
    ASSERT_GE(c1.events.size(), 1u);
    ASSERT_LE(c1.events.size(), 12u);
  }
}

// --- explicit-schedule runs -------------------------------------------------

TEST(ScheduleRunTest, ExplicitScheduleMatchesSeedExpansion) {
  RunOptions seed_opt;
  seed_opt.protocol = "raft";
  seed_opt.seed = 5;
  const RunResult by_seed = run_one(seed_opt);

  RunOptions sched_opt = seed_opt;
  sched_opt.schedule = schedule_of(seed_opt);
  const RunResult by_schedule = run_one(sched_opt);

  EXPECT_EQ(by_seed.ok, by_schedule.ok);
  EXPECT_EQ(by_seed.schedule, by_schedule.schedule);
  EXPECT_EQ(by_seed.log_length, by_schedule.log_length);
  EXPECT_EQ(by_seed.client_ops, by_schedule.client_ops);
  EXPECT_EQ(by_seed.leader_changes, by_schedule.leader_changes);
  EXPECT_EQ(coverage_score(by_seed), coverage_score(by_schedule));
}

TEST(ScheduleRunTest, TextRoundTrippedScheduleReplaysIdentically) {
  RunOptions opt;
  opt.protocol = "multipaxos";
  opt.seed = 11;
  opt.crash_restarts = true;
  const Schedule original = schedule_of(opt);

  size_t pos = 0;
  Schedule parsed;
  std::string header;
  std::string error;
  ASSERT_TRUE(parse_schedule(split_lines(serialize_schedule(original)), &pos,
                             &parsed, &header, &error))
      << error;

  RunOptions a = opt;
  a.schedule = original;
  RunOptions b = opt;
  b.schedule = parsed;
  const RunResult ra = run_one(a);
  const RunResult rb = run_one(b);
  EXPECT_EQ(ra.ok, rb.ok);
  EXPECT_EQ(ra.log_length, rb.log_length);
  EXPECT_EQ(ra.client_ops, rb.client_ops);
  EXPECT_EQ(coverage_score(ra), coverage_score(rb));
}

// --- evolution --------------------------------------------------------------

TEST(EvolveTest, DeterministicAndBeatsRandomBaselineOnEqualBudget) {
  EvolveOptions eopt;
  eopt.generations = 4;
  eopt.population = 8;
  eopt.elite = 2;
  eopt.rng_seed = 5;
  eopt.protocols = {"raft"};
  eopt.base.protocol = "raft";
  eopt.base.crash_restarts = true;

  const EvolveStats evolved = evolve(eopt, {});
  EXPECT_EQ(evolved.runs, 8u + 4u * 6u);
  EXPECT_TRUE(evolved.failures.empty())
      << evolved.failures.front().violations.front();
  ASSERT_FALSE(evolved.population.empty());

  // Deterministic: the whole loop is a pure function of (options, seeds).
  const EvolveStats again = evolve(eopt, {});
  EXPECT_EQ(evolved.runs, again.runs);
  EXPECT_EQ(evolved.mean_score, again.mean_score);
  ASSERT_EQ(evolved.population.size(), again.population.size());
  for (size_t i = 0; i < evolved.population.size(); ++i) {
    EXPECT_EQ(serialize_schedule(evolved.population[i].schedule),
              serialize_schedule(again.population[i].schedule));
  }

  // Equal-budget baseline: the same number of pure random-seed runs, keeping
  // its top-`population` scores (exactly what --corpus-out would persist).
  std::vector<uint64_t> baseline;
  for (uint64_t seed = 1; seed <= evolved.runs; ++seed) {
    RunOptions opt = eopt.base;
    opt.seed = seed;
    const RunResult r = run_one(opt);
    if (r.ok) baseline.push_back(coverage_score(r));
  }
  std::sort(baseline.begin(), baseline.end(), std::greater<>());
  const size_t top = std::min<size_t>(baseline.size(),
                                      static_cast<size_t>(eopt.population));
  ASSERT_GT(top, 0u);
  const double baseline_mean =
      static_cast<double>(
          std::accumulate(baseline.begin(),
                          baseline.begin() + static_cast<ptrdiff_t>(top),
                          uint64_t{0})) /
      static_cast<double>(top);

  EXPECT_GE(evolved.mean_score, baseline_mean)
      << "evolved elite population should cover at least as much as the "
         "best-of-random baseline on the same run budget";
}

TEST(EvolveTest, SeededCorpusEntersTheInitialPopulation) {
  EvolveOptions eopt;
  eopt.generations = 1;
  eopt.population = 4;
  eopt.elite = 1;
  eopt.rng_seed = 3;
  eopt.protocols = {"raft"};
  eopt.base.protocol = "raft";

  EvolveCandidate seed_cand;
  seed_cand.protocol = "raft";
  RunOptions seed_opt = eopt.base;
  seed_opt.seed = 42;
  seed_cand.schedule = schedule_of(seed_opt);

  const EvolveStats stats = evolve(eopt, {seed_cand});
  EXPECT_EQ(stats.runs, 4u + 3u);
  // The seeded schedule ran and is eligible for the archive; with only a
  // handful of candidates it should appear unless strictly outscored by
  // every other run.
  ASSERT_FALSE(stats.population.empty());
}

}  // namespace
}  // namespace praft::chaos
