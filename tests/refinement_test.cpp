// The paper's headline formal results, machine-checked at bounded scope:
//   E9  — Raft* refines MultiPaxos under the Fig. 3 mapping (§3, Appendix C);
//   E10 — the ported Raft*-PQL (B.4) refines both Raft* and Paxos-PQL (B.3);
//   E11 — the ported Coordinated Raft* (B.6) refines both Raft* and
//         Coordinated Paxos (B.5)  — the Fig. 5 diamond, twice.
#include <gtest/gtest.h>

#include "core/port.h"
#include "spec/checker.h"
#include "spec/refinement.h"
#include "specs/deltas.h"
#include "specs/raftstar_spec.h"

namespace praft {
namespace {

using spec::CheckOptions;
using spec::CheckResult;
using spec::ModelChecker;
using spec::RefinementChecker;
using spec::RefinementOptions;

specs::ConsensusScope small_scope() {
  specs::ConsensusScope sc;
  sc.acceptors = 2;
  sc.ballots = 2;
  sc.indexes = 1;
  return sc;
}

// ---------------------------------------------------------------------------
// Base specs hold their own invariants.
// ---------------------------------------------------------------------------

TEST(MultiPaxosSpecTest, InvariantsHoldAtSmallScope) {
  auto mp = specs::make_multipaxos_spec(small_scope());
  CheckOptions opt;
  opt.max_states = 400'000;
  const CheckResult res = ModelChecker::check(*mp, opt);
  EXPECT_TRUE(res.ok) << res.summary();
  EXPECT_GT(res.states, 50u);
}

TEST(MultiPaxosSpecTest, SomeValueGetsChosen) {
  // Sanity: the spec is not vacuous — a chosen value is reachable.
  auto mp = specs::make_multipaxos_spec(small_scope());
  bool reachable = false;
  mp->add_invariant(spec::Invariant{
      "NothingEverChosen",  // deliberately falsifiable
      [&reachable](const spec::Spec& sp, const spec::State& s) {
        specs::ConsensusScope sc = small_scope();
        for (int b = 1; b <= sc.ballots; ++b) {
          if (specs::detail::chosen_at(sp, s, sc, 0, b, spec::V(1))) {
            reachable = true;
            return false;
          }
        }
        return true;
      }});
  const CheckResult res = ModelChecker::check(*mp);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(reachable);
  EXPECT_FALSE(res.trace.empty());
}

TEST(RaftStarSpecTest, InvariantsHoldAtSmallScope) {
  auto bundle = specs::make_raftstar_bundle(small_scope());
  CheckOptions opt;
  opt.max_states = 400'000;
  const CheckResult res = ModelChecker::check(*bundle->raftstar, opt);
  EXPECT_TRUE(res.ok) << res.summary();
  EXPECT_GT(res.states, 50u);
}

// ---------------------------------------------------------------------------
// E9: Raft* => MultiPaxos (the paper's central claim, §3).
// ---------------------------------------------------------------------------

TEST(RaftStarRefinementTest, RaftStarRefinesMultiPaxos) {
  auto bundle = specs::make_raftstar_bundle(small_scope());
  RefinementOptions opt;
  opt.max_states = 400'000;
  opt.max_a_steps = 4;
  const auto res = RefinementChecker::check(*bundle->raftstar, *bundle->paxos,
                                            bundle->f, opt);
  EXPECT_TRUE(res.ok) << res.summary();
  EXPECT_GT(res.transitions, 100u);
}

// ---------------------------------------------------------------------------
// E10: port PQL across the mapping; check the Fig. 5 diamond.
// ---------------------------------------------------------------------------

class PqlPortTest : public ::testing::Test {
 protected:
  PqlPortTest() {
    scope_ = small_scope();
    scope_.values = specs::pql_values();
    bundle_ = specs::make_raftstar_bundle(scope_);
    delta_ = specs::make_pql_delta(scope_);
    ad_ = core::apply_delta(*bundle_->paxos, delta_);             // PQL (B.3)
    bd_ = core::port(*bundle_->raftstar, bundle_->f, bundle_->corr,
                     delta_);                                     // RQL (B.4)
  }

  specs::ConsensusScope scope_;
  std::unique_ptr<specs::RaftStarBundle> bundle_;
  core::OptimizationDelta delta_;
  spec::Spec ad_;
  spec::Spec bd_;
  // Bounded exploration: lease/timer dimensions blow the space up; partial
  // coverage is still a real check of tens of thousands of transitions.
  static constexpr size_t kBudget = 60'000;
};

TEST_F(PqlPortTest, PqlOnPaxosHoldsLeaseInv) {
  CheckOptions opt;
  opt.max_states = kBudget;
  const CheckResult res = ModelChecker::check(ad_, opt);
  EXPECT_TRUE(res.ok) << res.summary();
}

TEST_F(PqlPortTest, GeneratedRqlHasPqlStructure) {
  // The generated spec (Fig. 13 / B.4) has the Δ variables and actions.
  EXPECT_TRUE(bd_.has_var("leases"));
  EXPECT_TRUE(bd_.has_var("applyIndex"));
  EXPECT_TRUE(bd_.has_var("timer"));
  EXPECT_NE(bd_.action("GrantLease"), nullptr);
  EXPECT_NE(bd_.action("ReadAtLocal"), nullptr);
  EXPECT_NE(bd_.action("Apply"), nullptr);
  // And the Raft* actions survived.
  EXPECT_NE(bd_.action("ProposeEntries"), nullptr);
  EXPECT_NE(bd_.action("AcceptEntries"), nullptr);
}

TEST_F(PqlPortTest, RqlRefinesRaftStar) {
  const auto proj = core::projection_mapping(bd_, *bundle_->raftstar);
  RefinementOptions opt;
  opt.max_states = kBudget;
  const auto res =
      RefinementChecker::check(bd_, *bundle_->raftstar, proj, opt);
  EXPECT_TRUE(res.ok) << res.summary();
}

TEST_F(PqlPortTest, RqlRefinesPql) {
  const auto lifted = core::lifted_mapping(bundle_->f, bd_, ad_, delta_);
  RefinementOptions opt;
  opt.max_states = kBudget;
  const auto res = RefinementChecker::check(bd_, ad_, lifted, opt);
  EXPECT_TRUE(res.ok) << res.summary();
}

// ---------------------------------------------------------------------------
// E11: port Mencius (coordinated Paxos) the same way.
// ---------------------------------------------------------------------------

class MenciusPortTest : public ::testing::Test {
 protected:
  MenciusPortTest() {
    scope_ = small_scope();
    scope_.values = specs::mencius_values();
    bundle_ = specs::make_raftstar_bundle(scope_);
    delta_ = specs::make_mencius_delta(scope_);
    ad_ = core::apply_delta(*bundle_->paxos, delta_);  // CoorPaxos (B.5)
    bd_ = core::port(*bundle_->raftstar, bundle_->f, bundle_->corr,
                     delta_);                          // CoorRaft (B.6)
  }

  specs::ConsensusScope scope_;
  std::unique_ptr<specs::RaftStarBundle> bundle_;
  core::OptimizationDelta delta_;
  spec::Spec ad_;
  spec::Spec bd_;
  static constexpr size_t kBudget = 60'000;
};

TEST_F(MenciusPortTest, CoorPaxosHoldsSkipInvariants) {
  CheckOptions opt;
  opt.max_states = kBudget;
  const CheckResult res = ModelChecker::check(ad_, opt);
  EXPECT_TRUE(res.ok) << res.summary();
}

TEST_F(MenciusPortTest, GeneratedCoorRaftHasMenciusStructure) {
  EXPECT_TRUE(bd_.has_var("skipTags"));
  EXPECT_TRUE(bd_.has_var("executable"));
  EXPECT_NE(bd_.action("AcceptEntries"), nullptr);
}

TEST_F(MenciusPortTest, CoorRaftRefinesRaftStar) {
  const auto proj = core::projection_mapping(bd_, *bundle_->raftstar);
  RefinementOptions opt;
  opt.max_states = kBudget;
  const auto res =
      RefinementChecker::check(bd_, *bundle_->raftstar, proj, opt);
  EXPECT_TRUE(res.ok) << res.summary();
}

TEST_F(MenciusPortTest, CoorRaftRefinesCoorPaxos) {
  const auto lifted = core::lifted_mapping(bundle_->f, bd_, ad_, delta_);
  RefinementOptions opt;
  opt.max_states = kBudget;
  const auto res = RefinementChecker::check(bd_, ad_, lifted, opt);
  EXPECT_TRUE(res.ok) << res.summary();
}

TEST_F(MenciusPortTest, CoorRaftInvariantsHold) {
  // Run the Mencius invariants directly on the GENERATED spec by adding
  // them (they reference Δ variables, which exist in BΔ; chosen_at reads
  // "votes", which Raft* shares with Paxos by name).
  spec::Spec bd = core::port(*bundle_->raftstar, bundle_->f, bundle_->corr,
                             delta_);
  for (const auto& inv : delta_.new_invariants) bd.add_invariant(inv);
  CheckOptions opt;
  opt.max_states = kBudget;
  const CheckResult res = ModelChecker::check(bd, opt);
  EXPECT_TRUE(res.ok) << res.summary();
}

}  // namespace
}  // namespace praft
