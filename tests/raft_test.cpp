#include <gtest/gtest.h>

#include "raft/node.h"
#include "scripted_env.h"
#include "test_util.h"

namespace praft {
namespace {

using harness::RaftProtocol;
using test::ApplyRecord;
using test::ScriptedEnv;

// ---------------------------------------------------------------------------
// Unit tests driving RaftNode directly through a scripted Env.
// ---------------------------------------------------------------------------

consensus::Group group_of(NodeId self, std::initializer_list<NodeId> members) {
  consensus::Group g;
  g.self = self;
  g.members = members;
  return g;
}

raft::Options unit_options() {
  raft::Options o;
  o.election_timeout_min = msec(150);
  o.election_timeout_max = msec(300);
  o.heartbeat_interval = msec(50);
  o.batch_delay = 0;
  return o;
}

net::Packet packet(NodeId from, NodeId to, raft::Message m) {
  return net::Packet{from, to, raft::wire_size(m), std::move(m)};
}

TEST(RaftUnitTest, CandidateBroadcastsRequestVote) {
  ScriptedEnv env;
  raft::RaftNode n(group_of(0, {0, 1, 2}), env, unit_options());
  n.start();
  n.force_election();
  EXPECT_EQ(n.role(), raft::Role::kCandidate);
  EXPECT_EQ(n.current_term(), 1);
  EXPECT_EQ(env.outbox.size(), 2u);
  const auto* rv = std::get_if<raft::RequestVote>(
      std::any_cast<raft::Message>(&env.outbox[0].payload));
  ASSERT_NE(rv, nullptr);
  EXPECT_EQ(rv->term, 1);
  EXPECT_EQ(rv->candidate, 0);
}

TEST(RaftUnitTest, VoterGrantsOncePerTerm) {
  ScriptedEnv env;
  raft::RaftNode n(group_of(1, {0, 1, 2}), env, unit_options());
  n.start();
  n.on_packet(packet(0, 1, raft::RequestVote{1, 0, 0, 0}));
  auto sent = env.take_for(0);
  ASSERT_EQ(sent.size(), 1u);
  const auto* r1 = std::get_if<raft::VoteReply>(
      std::any_cast<raft::Message>(&sent[0].payload));
  ASSERT_NE(r1, nullptr);
  EXPECT_TRUE(r1->granted);

  // Same term, different candidate: denied.
  n.on_packet(packet(2, 1, raft::RequestVote{1, 2, 0, 0}));
  sent = env.take_for(2);
  ASSERT_EQ(sent.size(), 1u);
  const auto* r2 = std::get_if<raft::VoteReply>(
      std::any_cast<raft::Message>(&sent[0].payload));
  ASSERT_NE(r2, nullptr);
  EXPECT_FALSE(r2->granted);
}

TEST(RaftUnitTest, VoterRejectsStaleLog) {
  ScriptedEnv env;
  raft::RaftNode n(group_of(1, {0, 1, 2}), env, unit_options());
  n.start();
  // Give the voter a log entry at term 2 via an append from leader 2.
  raft::AppendEntries ae;
  ae.term = 2;
  ae.leader = 2;
  ae.prev_index = 0;
  ae.prev_term = 0;
  ae.entries = {raft::Entry{2, kv::noop_command()}};
  ae.commit = 0;
  n.on_packet(packet(2, 1, raft::Message{ae}));
  env.clear();
  // Candidate with an empty log at a higher term: log is out of date.
  n.on_packet(packet(0, 1, raft::RequestVote{3, 0, 0, 0}));
  auto sent = env.take_for(0);
  ASSERT_EQ(sent.size(), 1u);
  const auto* r = std::get_if<raft::VoteReply>(
      std::any_cast<raft::Message>(&sent[0].payload));
  ASSERT_NE(r, nullptr);
  EXPECT_FALSE(r->granted);
  // But a candidate with the same last entry and equal length is fine.
  n.on_packet(packet(2, 1, raft::RequestVote{3, 2, 1, 2}));
  sent = env.take_for(2);
  const auto* r2 = std::get_if<raft::VoteReply>(
      std::any_cast<raft::Message>(&sent.back().payload));
  ASSERT_NE(r2, nullptr);
  EXPECT_TRUE(r2->granted);
}

TEST(RaftUnitTest, FollowerErasesConflictingSuffix) {
  // The Raft behaviour the paper singles out in §3: a follower with a longer
  // log erases its extra entries to match the leader.
  ScriptedEnv env;
  raft::RaftNode n(group_of(1, {0, 1, 2}), env, unit_options());
  n.start();
  // Old leader 2 (term 1) appends three entries.
  raft::AppendEntries ae;
  ae.term = 1;
  ae.leader = 2;
  ae.prev_index = 0;
  ae.prev_term = 0;
  kv::Command c1{kv::Op::kPut, 1, 11, 8, 9, 1};
  kv::Command c2{kv::Op::kPut, 2, 22, 8, 9, 2};
  kv::Command c3{kv::Op::kPut, 3, 33, 8, 9, 3};
  ae.entries = {raft::Entry{1, c1}, raft::Entry{1, c2}, raft::Entry{1, c3}};
  n.on_packet(packet(2, 1, raft::Message{ae}));
  EXPECT_EQ(n.last_index(), 3);
  env.clear();
  // New leader 0 (term 2) has only c1 plus its own entry at index 2.
  raft::AppendEntries ae2;
  ae2.term = 2;
  ae2.leader = 0;
  ae2.prev_index = 1;
  ae2.prev_term = 1;
  kv::Command cx{kv::Op::kPut, 9, 99, 8, 7, 1};
  ae2.entries = {raft::Entry{2, cx}};
  n.on_packet(packet(0, 1, raft::Message{ae2}));
  EXPECT_EQ(n.last_index(), 2);  // the conflicting suffix (c3) is erased
  EXPECT_EQ(n.entry_at(2).term, 2);
  EXPECT_TRUE(n.entry_at(2).cmd == cx);
}

TEST(RaftUnitTest, FollowerRejectsMismatchedPrev) {
  ScriptedEnv env;
  raft::RaftNode n(group_of(1, {0, 1, 2}), env, unit_options());
  n.start();
  raft::AppendEntries ae;
  ae.term = 1;
  ae.leader = 0;
  ae.prev_index = 5;  // hole: follower's log is empty
  ae.prev_term = 1;
  n.on_packet(packet(0, 1, raft::Message{ae}));
  auto sent = env.take_for(0);
  ASSERT_EQ(sent.size(), 1u);
  const auto* r = std::get_if<raft::AppendReply>(
      std::any_cast<raft::Message>(&sent[0].payload));
  ASSERT_NE(r, nullptr);
  EXPECT_FALSE(r->ok);
  EXPECT_EQ(r->conflict_hint, 1);
}

TEST(RaftUnitTest, SubmitOnlyAtLeader) {
  ScriptedEnv env;
  raft::RaftNode n(group_of(0, {0, 1, 2}), env, unit_options());
  n.start();
  EXPECT_EQ(n.submit(kv::noop_command()), -1);
}

TEST(RaftUnitTest, SingleNodeGroupSelfCommits) {
  ScriptedEnv env;
  raft::RaftNode n(group_of(0, {0}), env, unit_options());
  std::vector<consensus::LogIndex> applied;
  n.set_apply([&](consensus::LogIndex i, const kv::Command&) {
    applied.push_back(i);
  });
  n.start();
  n.force_election();
  EXPECT_TRUE(n.is_leader());
  n.submit(kv::Command{kv::Op::kPut, 1, 1, 8, 0, 1});
  env.advance(msec(10));
  EXPECT_GE(n.commit_index(), 2);  // no-op + our entry
  EXPECT_EQ(applied.size(), 2u);
}

TEST(RaftUnitTest, LeaderStepsDownOnHigherTerm) {
  ScriptedEnv env;
  raft::RaftNode n(group_of(0, {0}), env, unit_options());
  n.start();
  n.force_election();
  EXPECT_TRUE(n.is_leader());
  n.on_packet(packet(1, 0, raft::Message{raft::AppendEntries{
                               99, 1, 0, 0, {}, 0}}));
  EXPECT_FALSE(n.is_leader());
  EXPECT_EQ(n.current_term(), 99);
}

// ---------------------------------------------------------------------------
// Cluster-level tests over the simulated network.
// ---------------------------------------------------------------------------

TEST(RaftClusterTest, ElectsPreferredLeader) {
  harness::Cluster cluster(test::lan_config(1));
  cluster.build_replicas(
      test::make_factory<RaftProtocol>(test::fast_options<raft::Options>()));
  EXPECT_EQ(cluster.establish_leader(2), 2);
  EXPECT_TRUE(cluster.server(2).is_leader());
}

TEST(RaftClusterTest, SomeLeaderEmergesWithoutForcing) {
  harness::Cluster cluster(test::lan_config(2));
  cluster.build_replicas(
      test::make_factory<RaftProtocol>(test::fast_options<raft::Options>()));
  cluster.run_for(sec(5));
  EXPECT_GE(cluster.leader_replica(), 0);
}

TEST(RaftClusterTest, ClientsCompleteOps) {
  harness::Cluster cluster(test::lan_config(3));
  cluster.build_replicas(
      test::make_factory<RaftProtocol>(test::fast_options<raft::Options>()));
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.metrics().set_window(0, kTimeMax);
  cluster.add_clients(2, test::small_workload(), cluster.sim().now());
  cluster.run_for(sec(5));
  EXPECT_GT(cluster.metrics().completed(), 500);
}

TEST(RaftClusterTest, FollowerClientsAreForwarded) {
  harness::Cluster cluster(test::lan_config(4));
  cluster.build_replicas(
      test::make_factory<RaftProtocol>(test::fast_options<raft::Options>()));
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.metrics().set_window(0, kTimeMax);
  // Clients exist at every site; sites 1..4 talk to follower replicas.
  cluster.add_clients(1, test::small_workload(), cluster.sim().now());
  cluster.run_for(sec(5));
  for (SiteId s = 1; s < 5; ++s) {
    EXPECT_GT(cluster.metrics().reads(s).count() +
                  cluster.metrics().writes(s).count(),
              0)
        << "site " << s;
  }
}

TEST(RaftClusterTest, ReplicasConvergeAfterQuiescence) {
  harness::Cluster cluster(test::lan_config(5));
  cluster.build_replicas(
      test::make_factory<RaftProtocol>(test::fast_options<raft::Options>()));
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.add_clients(2, test::small_workload(), cluster.sim().now());
  cluster.run_for(sec(5));
  cluster.stop_clients();
  cluster.run_for(sec(2));
  EXPECT_TRUE(test::stores_converged(cluster));
  EXPECT_GT(cluster.server(0).store().applied_count(), 0u);
}

TEST(RaftClusterTest, FailoverPreservesAgreement) {
  auto record = std::make_shared<ApplyRecord>();
  harness::Cluster cluster(test::lan_config(6));
  cluster.build_replicas(test::make_factory<RaftProtocol>(
      test::fast_options<raft::Options>(), record));
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.add_clients(2, test::small_workload(), cluster.sim().now());
  cluster.run_for(sec(2));
  // Kill the leader for 5 seconds; a new leader must take over.
  const Time crash_at = cluster.sim().now();
  cluster.net().faults().crash(cluster.server(0).id(), crash_at,
                               crash_at + sec(5));
  cluster.run_for(sec(3));
  const int new_leader = cluster.leader_replica();
  EXPECT_GE(new_leader, 1);
  const int64_t before = cluster.metrics().completed();
  cluster.metrics().set_window(0, kTimeMax);
  cluster.run_for(sec(4));  // old leader rejoins at crash_at + 5 s
  cluster.stop_clients();
  cluster.run_for(sec(3));
  EXPECT_GT(cluster.metrics().completed(), before);
  EXPECT_FALSE(record->violation);
  EXPECT_TRUE(test::stores_converged(cluster));
}

TEST(RaftClusterTest, MinorityPartitionDoesNotBlock) {
  harness::Cluster cluster(test::lan_config(7));
  cluster.build_replicas(
      test::make_factory<RaftProtocol>(test::fast_options<raft::Options>()));
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.metrics().set_window(0, kTimeMax);
  cluster.add_clients(1, test::small_workload(), cluster.sim().now());
  // Isolate two followers (a minority).
  const Time t = cluster.sim().now();
  cluster.net().faults().isolate(cluster.server(3).id(), t, t + sec(4));
  cluster.net().faults().isolate(cluster.server(4).id(), t, t + sec(4));
  cluster.run_for(sec(4));
  EXPECT_GT(cluster.metrics().completed(), 100);
}

TEST(RaftClusterTest, MajorityCrashBlocksThenRecovers) {
  harness::Cluster cluster(test::lan_config(8));
  cluster.build_replicas(
      test::make_factory<RaftProtocol>(test::fast_options<raft::Options>()));
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.metrics().set_window(0, kTimeMax);
  cluster.add_clients(1, test::small_workload(), cluster.sim().now());
  cluster.run_for(sec(1));
  const Time t = cluster.sim().now();
  for (int i = 2; i < 5; ++i) {
    cluster.net().faults().crash(cluster.server(i).id(), t, t + sec(4));
  }
  cluster.run_for(sec(3));
  const int64_t during = cluster.metrics().completed();
  cluster.run_for(msec(900));  // still inside the outage window
  // Commits require a majority: nothing (or nearly nothing in-flight)
  // completes deep into the outage.
  cluster.run_for(sec(1));  // nodes back at t+4s
  cluster.run_for(sec(4));
  EXPECT_GT(cluster.metrics().completed(), during + 100);
}

TEST(RaftClusterTest, WanReadsPayQuorumLatency) {
  // Baseline premise of Fig. 9a: Raft reads go through the log, so even
  // leader-site clients pay a WAN quorum round trip.
  harness::Cluster cluster(test::wan_config(9));
  cluster.build_replicas(
      test::make_factory<RaftProtocol>(test::wan_options<raft::Options>()));
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.metrics().set_window(0, kTimeMax);
  kv::WorkloadConfig wl = test::small_workload();
  wl.read_fraction = 1.0;
  cluster.add_clients(1, wl, cluster.sim().now());
  cluster.run_for(sec(10));
  const Histogram reads = cluster.metrics().merged_reads({0});
  ASSERT_GT(reads.count(), 0);
  // Oregon leader's quorum RTT is ~65-69 ms; local reads would be ~1 ms.
  EXPECT_GT(reads.percentile(50), msec(30));
}

}  // namespace
}  // namespace praft
