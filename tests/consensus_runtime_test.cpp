// Tests for the shared consensus runtime layer: epoch-guarded timers,
// batching, sparse-log gap/watermark behaviour, and the runtime protocol
// registry that instantiates all four protocols by name.
#include <gtest/gtest.h>

#include "common/check.h"
#include "consensus/applier.h"
#include "consensus/batcher.h"
#include "consensus/log.h"
#include "consensus/registry.h"
#include "consensus/timer.h"
#include "scripted_env.h"

namespace praft {
namespace {

using test::ScriptedEnv;

// ---------------------------------------------------------------------------
// ElectionTimer: epoch guards, quiet-period checks, gating.
// ---------------------------------------------------------------------------

TEST(ElectionTimerTest, FiresAfterQuietPeriod) {
  ScriptedEnv env;
  consensus::ElectionTimer timer(env, msec(100), msec(100));
  int expirations = 0;
  timer.set_handler([&](bool expired) {
    if (expired) ++expirations;
  });
  timer.start();
  env.advance(msec(99));
  EXPECT_EQ(expirations, 0);
  env.advance(msec(2));
  EXPECT_EQ(expirations, 1);
}

TEST(ElectionTimerTest, TouchDefersExpiry) {
  ScriptedEnv env;
  consensus::ElectionTimer timer(env, msec(100), msec(100));
  int expirations = 0;
  int firings = 0;
  timer.set_handler([&](bool expired) {
    ++firings;
    if (expired) ++expirations;
  });
  timer.start();
  env.advance(msec(60));
  timer.touch();  // leader activity 60ms in
  env.advance(msec(50));
  // The timer fired at t=100 but only 50ms had passed since the touch.
  EXPECT_EQ(firings, 1);
  EXPECT_EQ(expirations, 0);
  // No further activity: the rearmed timer expires at t=200.
  env.advance(msec(100));
  EXPECT_EQ(expirations, 1);
}

TEST(ElectionTimerTest, StaleTimerNeverFiresAfterReset) {
  ScriptedEnv env;
  consensus::ElectionTimer timer(env, msec(100), msec(100));
  int firings = 0;
  timer.set_handler([&](bool) { ++firings; });
  timer.start();
  env.advance(msec(50));
  timer.reset();  // the t=100 callback is now stale
  env.advance(msec(60));
  // t=110: the original callback came due but its epoch is dead; the reset
  // chain fires at t=150.
  EXPECT_EQ(firings, 0);
  env.advance(msec(45));
  EXPECT_EQ(firings, 1);
}

TEST(ElectionTimerTest, CancelStopsTheChain) {
  ScriptedEnv env;
  consensus::ElectionTimer timer(env, msec(100), msec(100));
  int firings = 0;
  timer.set_handler([&](bool) { ++firings; });
  timer.start();
  timer.cancel();
  env.advance(sec(10));
  EXPECT_EQ(firings, 0);
}

TEST(ElectionTimerTest, GateSuppressesExpiryButChainContinues) {
  ScriptedEnv env;
  consensus::ElectionTimer timer(env, msec(100), msec(100));
  bool leader = true;  // gate: only non-leaders expire
  int expirations = 0;
  timer.set_gate([&] { return !leader; });
  timer.set_handler([&](bool expired) {
    if (expired) ++expirations;
  });
  timer.start();
  env.advance(msec(500));
  EXPECT_EQ(expirations, 0);  // suppressed while leading
  leader = false;
  env.advance(msec(200));
  EXPECT_GE(expirations, 1);  // the chain was still alive
}

TEST(PeriodicTimerTest, GateFalseKillsChainAndStartRestartsIt) {
  ScriptedEnv env;
  consensus::PeriodicTimer timer(env);
  bool active = true;
  int ticks = 0;
  timer.set_gate([&] { return active; });
  timer.set_handler([&] { ++ticks; });
  timer.start(msec(10));
  env.advance(msec(35));
  EXPECT_EQ(ticks, 3);
  active = false;
  env.advance(msec(50));
  EXPECT_EQ(ticks, 3);  // chain died at the first gated firing
  active = true;
  env.advance(msec(50));
  EXPECT_EQ(ticks, 3);  // dead chains do not resurrect on their own
  timer.start(msec(10));
  env.advance(msec(25));
  EXPECT_EQ(ticks, 5);
}

// ---------------------------------------------------------------------------
// Batcher: coalescing within the delay window.
// ---------------------------------------------------------------------------

TEST(BatcherTest, CoalescesPokesWithinWindow) {
  ScriptedEnv env;
  int flushes = 0;
  consensus::Batcher batcher(env, msec(5), [&] { ++flushes; });
  batcher.poke();
  batcher.poke();
  batcher.poke();
  EXPECT_TRUE(batcher.pending());
  env.advance(msec(5));
  EXPECT_EQ(flushes, 1);
  EXPECT_FALSE(batcher.pending());
  batcher.poke();
  env.advance(msec(5));
  EXPECT_EQ(flushes, 2);
}

// ---------------------------------------------------------------------------
// Logs and the apply watermark.
// ---------------------------------------------------------------------------

struct TestEntry {
  int term = 0;
  kv::Command cmd;
};

TEST(ContiguousLogTest, SentinelAndBoundsChecks) {
  consensus::ContiguousLog<TestEntry> log;
  EXPECT_EQ(log.last_index(), 0);
  EXPECT_EQ(log.at(0).term, 0);  // sentinel
  log.append(TestEntry{3, kv::noop_command()});
  EXPECT_EQ(log.last_index(), 1);
  EXPECT_EQ(log.at(1).term, 3);
  EXPECT_THROW((void)log.at(2), CheckFailure);
  EXPECT_THROW((void)log.at(-1), CheckFailure);
  log.truncate_after(0);
  EXPECT_EQ(log.last_index(), 0);
  EXPECT_THROW(log.truncate_after(1), CheckFailure);
}

struct TestSlot {
  bool chosen = false;
  kv::Command cmd;
};

TEST(SparseLogTest, GapsPauseTheWatermarkAndRepairResumesIt) {
  consensus::SparseLog<TestSlot> log;
  consensus::Applier applier;
  std::vector<consensus::LogIndex> applied;
  applier.set_apply([&](consensus::LogIndex i, const kv::Command&) {
    applied.push_back(i);
  });
  auto get = [&](consensus::LogIndex i) -> const kv::Command* {
    const TestSlot* s = log.find(i);
    return (s != nullptr && s->chosen) ? &s->cmd : nullptr;
  };

  // Instances decided out of order: 1 and 3 chosen, 2 missing.
  log.materialize(1) = TestSlot{true, kv::noop_command()};
  log.materialize(3) = TestSlot{true, kv::noop_command()};
  applier.commit_to(3, get);
  EXPECT_EQ(applier.commit_index(), 3);  // watermark holds past the gap
  EXPECT_EQ(applier.applied(), 1);       // delivery paused at the gap
  ASSERT_EQ(applied.size(), 1u);

  // Repair the gap: delivery resumes in order, exactly once per index.
  log.materialize(2) = TestSlot{true, kv::noop_command()};
  applier.commit_to(3, get);
  EXPECT_EQ(applier.applied(), 3);
  ASSERT_EQ(applied.size(), 3u);
  EXPECT_EQ(applied[0], 1);
  EXPECT_EQ(applied[1], 2);
  EXPECT_EQ(applied[2], 3);

  // Re-raising an old watermark re-delivers nothing.
  applier.commit_to(2, get);
  EXPECT_EQ(applier.commit_index(), 3);
  EXPECT_EQ(applied.size(), 3u);
}

TEST(ApplierTest, UnboundedDrainForZeroBasedSlots) {
  // Mencius-style: 0-based slot space, per-slot decisions, no commit index.
  consensus::SparseLog<TestSlot> log;
  consensus::Applier applier(/*start=*/-1);
  int applies = 0;
  applier.set_apply([&](consensus::LogIndex, const kv::Command&) {
    ++applies;
  });
  auto get = [&](consensus::LogIndex i) -> const kv::Command* {
    const TestSlot* s = log.find(i);
    return (s != nullptr && s->chosen) ? &s->cmd : nullptr;
  };
  EXPECT_EQ(applier.next_index(), 0);
  log.materialize(0) = TestSlot{true, kv::noop_command()};
  log.materialize(1) = TestSlot{true, kv::noop_command()};
  log.materialize(3) = TestSlot{true, kv::noop_command()};
  applier.drain(get);
  EXPECT_EQ(applies, 2);
  EXPECT_EQ(applier.next_index(), 2);
  log.materialize(2) = TestSlot{true, kv::noop_command()};
  applier.drain(get);
  EXPECT_EQ(applies, 4);
  EXPECT_EQ(applier.next_index(), 4);
}

// ---------------------------------------------------------------------------
// Protocol registry: all four protocols constructible by name.
// ---------------------------------------------------------------------------

consensus::Group group_of(NodeId self, std::initializer_list<NodeId> members) {
  consensus::Group g;
  g.self = self;
  g.members = members;
  return g;
}

TEST(RegistryTest, ListsTheFourBuiltinProtocols) {
  auto& reg = consensus::ProtocolRegistry::instance();
  EXPECT_TRUE(reg.contains("raft"));
  EXPECT_TRUE(reg.contains("raftstar"));
  EXPECT_TRUE(reg.contains("multipaxos"));
  EXPECT_TRUE(reg.contains("mencius"));
  EXPECT_FALSE(reg.contains("viewstamped-replication"));
  EXPECT_GE(consensus::protocol_names().size(), 4u);
}

TEST(RegistryTest, UnknownProtocolNameIsAnError) {
  ScriptedEnv env;
  EXPECT_THROW(
      consensus::make_node("nonexistent", group_of(0, {0, 1, 2}), env),
      CheckFailure);
}

TEST(RegistryTest, InstantiatesAllFourProtocolsByName) {
  for (const char* name : {"raft", "raftstar", "multipaxos", "mencius"}) {
    SCOPED_TRACE(name);
    ScriptedEnv env;
    consensus::TimingOptions timing;
    timing.election_timeout_min = msec(150);
    timing.election_timeout_max = msec(300);
    timing.heartbeat_interval = msec(50);
    timing.batch_delay = 0;
    auto node =
        consensus::make_node(name, group_of(0, {0, 1, 2}), env, timing);
    ASSERT_NE(node, nullptr);
    node->set_apply([](consensus::LogIndex, const kv::Command&) {});
    node->start();
    EXPECT_EQ(node->id(), 0);
    const bool leaderless = std::string(name) == "mencius";
    if (leaderless) {
      // Every Mencius replica leads its own residue class: submissions are
      // always accepted.
      EXPECT_TRUE(node->is_leader());
      EXPECT_GE(node->submit(kv::noop_command()), 0);
    } else {
      // Freshly started leader-based nodes cannot accept submissions yet.
      EXPECT_FALSE(node->is_leader());
      EXPECT_EQ(node->submit(kv::noop_command()), -1);
      // A leadership attempt talks to the peers.
      node->force_election();
      EXPECT_FALSE(env.outbox.empty());
    }
  }
}

TEST(RegistryTest, SingleNodeGroupCommitsThroughTheIface) {
  // End-to-end through NodeIface: a single-node raft group elects itself,
  // accepts a submission, and applies it.
  ScriptedEnv env;
  consensus::TimingOptions timing;
  timing.election_timeout_min = msec(50);
  timing.election_timeout_max = msec(100);
  timing.heartbeat_interval = msec(20);
  timing.batch_delay = 0;
  auto node = consensus::make_node("raft", group_of(7, {7}), env, timing);
  int applies = 0;
  node->set_apply([&](consensus::LogIndex, const kv::Command&) { ++applies; });
  node->start();
  node->force_election();
  ASSERT_TRUE(node->is_leader());
  EXPECT_GE(node->submit(kv::noop_command()), 0);
  env.advance(msec(5));  // batch flush
  EXPECT_GE(applies, 1);
  EXPECT_GE(node->commit_index(), 1);
}

}  // namespace
}  // namespace praft
