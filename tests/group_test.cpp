#include <gtest/gtest.h>

#include "common/check.h"
#include "consensus/group.h"
#include "consensus/types.h"

namespace praft::consensus {
namespace {

Group make_group(NodeId self, std::initializer_list<NodeId> members) {
  Group g;
  g.self = self;
  g.members = members;
  return g;
}

TEST(GroupTest, QuorumArithmetic) {
  EXPECT_EQ(make_group(0, {0}).majority(), 1);
  EXPECT_EQ(make_group(0, {0, 1, 2}).majority(), 2);
  EXPECT_EQ(make_group(0, {0, 1, 2, 3, 4}).majority(), 3);
  EXPECT_EQ(make_group(0, {0, 1, 2, 3, 4}).f(), 2);
  EXPECT_EQ(make_group(0, {0, 1, 2, 3, 4, 5, 6}).f(), 3);
}

TEST(GroupTest, RankAndMembership) {
  const Group g = make_group(11, {10, 11, 12});
  EXPECT_TRUE(g.contains(10));
  EXPECT_FALSE(g.contains(99));
  EXPECT_EQ(g.rank_of(10), 0);
  EXPECT_EQ(g.rank_of(12), 2);
  EXPECT_THROW(g.rank_of(99), CheckFailure);
}

TEST(GroupTest, ValidateRejectsNonMemberSelf) {
  Group g = make_group(99, {0, 1, 2});
  EXPECT_THROW(g.validate(), CheckFailure);
  Group empty;
  empty.self = 0;
  EXPECT_THROW(empty.validate(), CheckFailure);
}

TEST(QuorumTrackerTest, DedupesAcks) {
  QuorumTracker t(2);
  EXPECT_TRUE(t.add(1));
  EXPECT_FALSE(t.add(1));  // duplicate
  EXPECT_FALSE(t.reached());
  EXPECT_TRUE(t.add(2));
  EXPECT_TRUE(t.reached());
  EXPECT_EQ(t.count(), 2);
}

TEST(QuorumTrackerTest, ZeroNeededIsImmediatelyReached) {
  QuorumTracker t(0);
  EXPECT_TRUE(t.reached());
}

TEST(BallotTest, LexicographicOrder) {
  EXPECT_LT((Ballot{1, 5}), (Ballot{2, 0}));
  EXPECT_LT((Ballot{2, 0}), (Ballot{2, 1}));
  EXPECT_EQ((Ballot{3, 3}), (Ballot{3, 3}));
  EXPECT_FALSE(Ballot{}.valid());
  EXPECT_TRUE((Ballot{0, 0}).valid());
}

TEST(WireTest, EntryBytesTrackCommandSize) {
  kv::Command small{kv::Op::kPut, 1, 1, 8, 0, 1};
  kv::Command big{kv::Op::kPut, 1, 1, 4096, 0, 1};
  EXPECT_LT(wire::entry_bytes(small), wire::entry_bytes(big));
  EXPECT_EQ(wire::entry_bytes(big) - wire::entry_bytes(small), 4096u - 8u);
}

}  // namespace
}  // namespace praft::consensus
