#include <gtest/gtest.h>

#include <any>
#include <cstdlib>
#include <vector>

#include "chaos/runner.h"
#include "common/check.h"
#include "common/rng.h"
#include "consensus/batcher.h"
#include "consensus/timing.h"
#include "harness/wire.h"
#include "kv/command.h"
#include "lease/manager.h"
#include "lease/wire.h"
#include "mencius/wire.h"
#include "net/buffer_pool.h"
#include "net/wire.h"
#include "paxos/wire.h"
#include "raft/node.h"
#include "raft/wire.h"
#include "raftstar/wire.h"
#include "scripted_env.h"

namespace praft {
namespace {

// ---------------------------------------------------------------------------
// Randomized message generators. Every field is drawn from the full domain
// the protocols use (negative sentinels included) so the round-trip property
// exercises sign handling, empty and non-empty vectors, and the value_size
// payload skip.
// ---------------------------------------------------------------------------

kv::Command rand_cmd(Rng& r) {
  kv::Command c;
  c.op = static_cast<kv::Op>(r.below(3));
  c.key = r.next();
  c.value = r.next();
  c.value_size = static_cast<uint32_t>(r.below(4097));
  c.client = static_cast<NodeId>(r.range(-1, 64));
  c.seq = r.next();
  return c;
}

std::vector<kv::Command> rand_cmds(Rng& r, size_t max_n = 4) {
  std::vector<kv::Command> out(r.below(max_n + 1));
  for (auto& c : out) c = rand_cmd(r);
  return out;
}

consensus::Snapshot rand_snap(Rng& r) {
  consensus::Snapshot s;
  s.last_index = r.range(0, 1 << 20);
  s.last_term = r.range(0, 1 << 10);
  s.state.applied_count = r.next();
  s.state.cells.resize(r.below(4));
  for (auto& cell : s.state.cells) {
    cell = kv::StoreImage::Cell{r.next(), r.next(), r.next()};
  }
  return s;
}

consensus::Ballot rand_ballot(Rng& r) {
  return consensus::Ballot{r.range(-1, 1 << 20),
                           static_cast<NodeId>(r.range(-1, 64))};
}

NodeId rand_node(Rng& r) { return static_cast<NodeId>(r.range(-1, 64)); }

// ---------------------------------------------------------------------------
// The tentpole property, checked three ways for every message m:
//   1. encode(m).size() == wire_size(m)  (the cost model bills exact bytes)
//   2. decode(encode(m)) == m            (the frame is lossless)
//   3. the registry round-trip through std::any agrees with (2)
// ---------------------------------------------------------------------------

template <typename Msg, typename Enc, typename Dec>
void expect_roundtrip(const Msg& m, Enc enc, Dec dec, net::BufferPool& pool) {
  const size_t claimed = wire_size(m);
  const net::Frame f = enc(m, pool);
  ASSERT_EQ(f.size(), claimed) << "encoded size != wire_size";
  const Msg back = dec(net::view(f));
  EXPECT_TRUE(m == back) << "decode(encode(m)) != m";

  const net::Codec* codec = net::codec_registry().find(std::any(m));
  ASSERT_NE(codec, nullptr);
  const net::Frame rf = codec->encode(std::any(m), pool);
  ASSERT_EQ(rf.size(), claimed);
  EXPECT_TRUE(codec->equals(std::any(m), codec->decode(net::view(rf))));
}

TEST(WireRoundTrip, Raft) {
  using namespace praft::raft;
  Rng r(101);
  net::BufferPool pool;
  for (int it = 0; it < 50; ++it) {
    auto e = [&] { return Entry{r.range(0, 999), rand_cmd(r)}; };
    std::vector<Entry> entries(r.below(4));
    for (auto& x : entries) x = e();
    const Message msgs[] = {
        Message{RequestVote{r.range(0, 999), rand_node(r), r.range(0, 999),
                            r.range(0, 999)}},
        Message{VoteReply{r.range(0, 999), rand_node(r), r.chance(0.5)}},
        Message{AppendEntries{r.range(0, 999), rand_node(r), r.range(0, 999),
                              r.range(0, 999), entries, r.range(0, 999)}},
        Message{AppendReply{r.range(0, 999), rand_node(r), r.chance(0.5),
                            r.range(0, 999), r.range(0, 999)}},
        Message{InstallSnapshot{r.range(0, 999), rand_node(r), rand_snap(r)}},
        Message{InstallSnapshotReply{r.range(0, 999), rand_node(r),
                                     r.range(0, 999)}},
    };
    for (const Message& m : msgs) expect_roundtrip(m, &encode, &decode, pool);
  }
}

TEST(WireRoundTrip, RaftStar) {
  using namespace praft::raftstar;
  Rng r(202);
  net::BufferPool pool;
  for (int it = 0; it < 50; ++it) {
    std::vector<Entry> entries(r.below(4));
    for (auto& x : entries) x = Entry{r.range(0, 999), rand_cmd(r)};
    VoteReply vr;
    vr.term = r.range(0, 999);
    vr.voter = rand_node(r);
    vr.granted = r.chance(0.5);
    vr.log_bal = r.range(-1, 999);
    vr.extra_from = r.range(0, 999);
    vr.extras = entries;
    vr.has_snap = r.chance(0.5);
    if (vr.has_snap) vr.snap = rand_snap(r);
    AppendReply ar;
    ar.term = r.range(0, 999);
    ar.follower = rand_node(r);
    ar.ok = r.chance(0.5);
    ar.match_index = r.range(0, 999);
    ar.follower_last = r.range(0, 999);
    ar.conflict_hint = r.range(0, 999);
    ar.piggyback_ids.resize(r.below(4));
    for (auto& id : ar.piggyback_ids) id = rand_node(r);
    const Message msgs[] = {
        Message{RequestVote{r.range(0, 999), rand_node(r), r.range(0, 999),
                            r.range(0, 999)}},
        Message{vr},
        Message{AppendEntries{r.range(0, 999), rand_node(r), r.range(0, 999),
                              r.range(0, 999), entries, r.range(0, 999)}},
        Message{ar},
        Message{InstallSnapshot{r.range(0, 999), rand_node(r), rand_snap(r)}},
        Message{InstallSnapshotReply{r.range(0, 999), rand_node(r),
                                     r.range(0, 999)}},
    };
    for (const Message& m : msgs) expect_roundtrip(m, &encode, &decode, pool);
  }
}

TEST(WireRoundTrip, Paxos) {
  using namespace praft::paxos;
  Rng r(303);
  net::BufferPool pool;
  for (int it = 0; it < 50; ++it) {
    PrepareOk pok;
    pok.bal = rand_ballot(r);
    pok.sender = rand_node(r);
    pok.accepted.resize(r.below(4));
    for (auto& a : pok.accepted) {
      a = AcceptedVal{r.range(0, 999), rand_ballot(r), rand_cmd(r)};
    }
    pok.has_snap = r.chance(0.5);
    if (pok.has_snap) pok.snap = rand_snap(r);
    const Message msgs[] = {
        Message{Prepare{rand_ballot(r), rand_node(r), r.range(1, 999)}},
        Message{pok},
        Message{AcceptBatch{rand_ballot(r), rand_node(r), r.range(0, 999),
                            rand_cmds(r), r.range(0, 999)}},
        Message{AcceptOkBatch{rand_ballot(r), rand_node(r), r.range(0, 999),
                              r.range(0, 999)}},
        Message{Reject{rand_ballot(r), rand_node(r)}},
        Message{Heartbeat{rand_ballot(r), rand_node(r), r.range(0, 999)}},
        Message{LearnRequest{rand_node(r), r.range(0, 999), r.range(0, 999)}},
        Message{LearnValues{rand_node(r), r.range(0, 999), rand_cmds(r)}},
        Message{SnapshotTransfer{rand_node(r), rand_snap(r)}},
    };
    for (const Message& m : msgs) expect_roundtrip(m, &encode, &decode, pool);
  }
}

TEST(WireRoundTrip, Mencius) {
  using namespace praft::mencius;
  Rng r(404);
  net::BufferPool pool;
  for (int it = 0; it < 50; ++it) {
    auto items = [&] {
      std::vector<OwnItem> out(r.below(4));
      for (auto& x : out) x = OwnItem{r.range(0, 999), rand_cmd(r)};
      return out;
    };
    auto indexes = [&] {
      std::vector<consensus::LogIndex> out(r.below(4));
      for (auto& x : out) x = r.range(0, 999);
      return out;
    };
    LearnVals lv;
    lv.from = rand_node(r);
    lv.slots.resize(r.below(4));
    for (auto& s : lv.slots) {
      s = SlotInfo{r.range(0, 999), r.chance(0.5), rand_cmd(r)};
    }
    RevPrepareOk rpo;
    rpo.from = rand_node(r);
    rpo.bal = rand_ballot(r);
    rpo.accepted.resize(r.below(4));
    for (auto& a : rpo.accepted) {
      a = RevAccepted{r.range(0, 999), rand_ballot(r), r.chance(0.5),
                      r.chance(0.5), rand_cmd(r)};
    }
    const Message msgs[] = {
        Message{AcceptOwn{rand_node(r), items(), r.range(0, 999),
                          r.range(-1, 999)}},
        Message{AcceptOwnOk{rand_node(r), indexes()}},
        Message{AcceptOwnRej{rand_node(r), indexes(), r.range(0, 999)}},
        Message{SkipRange{rand_node(r), r.range(0, 999), r.range(0, 999)}},
        Message{StatusBeat{rand_node(r), r.range(0, 999), r.range(0, 999),
                           r.range(-1, 999)}},
        Message{LearnReq{rand_node(r), r.range(0, 999), r.range(0, 999)}},
        Message{lv},
        Message{RevPrepare{rand_node(r), rand_ballot(r), rand_node(r),
                           r.range(0, 999), r.range(0, 999)}},
        Message{rpo},
        Message{RevAccept{rand_node(r), rand_ballot(r), items()}},
        Message{RevAcceptOk{rand_node(r), rand_ballot(r), indexes()}},
        Message{SnapshotXfer{rand_node(r), rand_snap(r)}},
    };
    for (const Message& m : msgs) expect_roundtrip(m, &encode, &decode, pool);
  }
}

TEST(WireRoundTrip, HarnessAndLease) {
  Rng r(505);
  net::BufferPool pool;
  for (int it = 0; it < 50; ++it) {
    const harness::Message hmsgs[] = {
        harness::Message{harness::ClientRequest{rand_cmd(r)}},
        harness::Message{harness::ClientReply{r.next(), r.next(),
                                              r.chance(0.5), rand_node(r)}},
        harness::Message{harness::Forward{rand_cmd(r), rand_node(r)}},
        harness::Message{harness::ForwardReply{rand_cmd(r), r.next(),
                                               r.chance(0.5)}},
    };
    for (const auto& m : hmsgs) {
      expect_roundtrip(m, &harness::encode, &harness::decode, pool);
    }
    const lease::Message lmsgs[] = {
        lease::Message{lease::Grant{rand_node(r), rand_node(r),
                                    r.range(0, 1 << 30)}},
        lease::Message{lease::GrantAck{rand_node(r), r.range(0, 1 << 30)}},
    };
    for (const auto& m : lmsgs) {
      expect_roundtrip(m, &lease::encode, &lease::decode, pool);
    }
  }
}

// kv::Command::operator== deliberately ignores value_size (two puts with the
// same token are the same op for agreement checking), so the lossless-frame
// property above cannot see a value_size corruption. Check it explicitly:
// the modeled payload size must survive the round trip — it is what the
// byte-accurate cost model bills for.
TEST(WireRoundTrip, ValueSizeSurvivesExactly) {
  net::BufferPool pool;
  for (uint32_t vs : {0u, 8u, 100u, 4096u}) {
    kv::Command c;
    c.op = kv::Op::kPut;
    c.key = 7;
    c.value = 9;
    c.value_size = vs;
    c.client = 3;
    c.seq = 11;
    const harness::Message m{harness::ClientRequest{c}};
    const net::Frame f = harness::encode(m, pool);
    EXPECT_EQ(f.size(), harness::wire_size(m));
    const auto back = harness::decode(net::view(f));
    const auto& req = std::get<harness::ClientRequest>(back);
    EXPECT_EQ(req.cmd.value_size, vs);
  }
}

TEST(WireRegistry, EveryFamilyInstalled) {
  auto& reg = net::codec_registry();
  for (net::Family fam :
       {net::Family::kRaft, net::Family::kRaftStar, net::Family::kMultiPaxos,
        net::Family::kMencius, net::Family::kHarness, net::Family::kLease}) {
    EXPECT_NE(reg.find(fam), nullptr)
        << "family " << static_cast<int>(fam) << " missing";
  }
  EXPECT_EQ(reg.find(std::any(42)), nullptr);  // foreign payloads: no codec
}

TEST(WireFrame, HeaderFieldsAreFixedOffset) {
  net::BufferPool pool;
  const raft::Message m{raft::VoteReply{5, 2, true}};
  const net::Frame f = raft::encode(m, pool);
  EXPECT_EQ(net::frame_family(net::view(f)), net::Family::kRaft);
  EXPECT_EQ(net::frame_opcode(net::view(f)), 1);  // variant alternative index
  // Total length is patched into the header at finish().
  const uint8_t* d = f.data();
  const uint32_t len = static_cast<uint32_t>(d[net::kOffLength]) |
                       (static_cast<uint32_t>(d[net::kOffLength + 1]) << 8) |
                       (static_cast<uint32_t>(d[net::kOffLength + 2]) << 16) |
                       (static_cast<uint32_t>(d[net::kOffLength + 3]) << 24);
  EXPECT_EQ(len, f.size());
}

// ---------------------------------------------------------------------------
// Buffer pool units: reuse, growth, exhaustion, reset.
// ---------------------------------------------------------------------------

TEST(BufferPool, SteadyStateReusesWithoutSlabAllocs) {
  net::BufferPool pool(/*frames=*/8, /*frame_capacity=*/256);
  for (int i = 0; i < 1000; ++i) {
    net::Frame f = pool.acquire(100);
    ASSERT_GE(f.capacity(), 100u);
  }  // each frame returns to the freelist at scope exit
  const net::PoolStats st = pool.stats();
  EXPECT_EQ(st.slab_allocs, 0u) << "steady state must not allocate";
  EXPECT_EQ(st.acquires, 1000u);
  EXPECT_EQ(st.reuses, 1000u);
  EXPECT_EQ(st.outstanding, 0u);
  EXPECT_EQ(st.high_water, 1u);
}

TEST(BufferPool, ExhaustionGrowsAndKeepsFramesStable) {
  net::BufferPool pool(/*frames=*/2, /*frame_capacity=*/64);
  std::vector<net::Frame> held;
  for (int i = 0; i < 10; ++i) held.push_back(pool.acquire(32));
  const net::PoolStats st = pool.stats();
  EXPECT_EQ(st.outstanding, 10u);
  EXPECT_EQ(st.high_water, 10u);
  EXPECT_EQ(st.slab_allocs, 8u);  // 2 preallocated + 8 grown on demand
  for (auto& f : held) {
    ASSERT_NE(f.data(), nullptr);
    f.data()[0] = 0xAB;  // every slab stays writable while held
  }
  held.clear();
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.free_frames(), 10u);  // grown slabs join the freelist
}

TEST(BufferPool, OversizedRequestGrowsSlab) {
  net::BufferPool pool(/*frames=*/2, /*frame_capacity=*/64);
  {
    net::Frame f = pool.acquire(5000);  // bigger than frame_capacity
    EXPECT_GE(f.capacity(), 5000u);
  }
  EXPECT_GE(pool.stats().slab_grows, 1u);
  // The grown slab is reused at its grown capacity: no second grow.
  const uint64_t grows = pool.stats().slab_grows;
  { net::Frame f = pool.acquire(5000); }
  EXPECT_EQ(pool.stats().slab_grows, grows);
}

TEST(BufferPool, ResetRestoresPreallocationAndClearsStats) {
  net::BufferPool pool(/*frames=*/4, /*frame_capacity=*/64);
  { net::Frame f = pool.acquire(32); }
  pool.reset();
  const net::PoolStats st = pool.stats();
  EXPECT_EQ(st.acquires, 0u);
  EXPECT_EQ(st.reuses, 0u);
  EXPECT_EQ(st.outstanding, 0u);
  EXPECT_EQ(pool.free_frames(), 4u);
}

TEST(BufferPool, ResetWithOutstandingFramesIsAnError) {
  net::BufferPool pool(/*frames=*/2, /*frame_capacity=*/64);
  net::Frame f = pool.acquire(32);
  EXPECT_THROW(pool.reset(), CheckFailure);
}

// ---------------------------------------------------------------------------
// Batcher: byte-budget expedite, adaptive delay, and the epoch/cancel guard.
// ---------------------------------------------------------------------------

consensus::TimingOptions batch_opt() {
  consensus::TimingOptions o;
  o.batch_delay = msec(5);
  o.batch_flush_bytes = 1000;
  return o;
}

TEST(Batcher, FlushesOnceAfterDelay) {
  test::ScriptedEnv env;
  int flushes = 0;
  consensus::Batcher b(env, batch_opt(), [&] { ++flushes; });
  b.add_pending(10);
  b.add_pending(10);  // second submit rides the same armed flush
  EXPECT_EQ(b.pending_bytes(), 20u);
  env.advance(msec(4));
  EXPECT_EQ(flushes, 0);
  env.advance(msec(2));
  EXPECT_EQ(flushes, 1);
  EXPECT_EQ(b.pending_bytes(), 0u);
  EXPECT_EQ(b.inflight_bytes(), 20u);
}

TEST(Batcher, ByteBudgetExpeditesFlush) {
  test::ScriptedEnv env;
  int flushes = 0;
  consensus::Batcher b(env, batch_opt(), [&] { ++flushes; });
  b.add_pending(400);
  b.add_pending(700);  // crosses batch_flush_bytes=1000: expedite to now
  env.advance(0);
  EXPECT_EQ(flushes, 1);
  EXPECT_EQ(b.expedited_flushes(), 1u);
  // The abandoned delay timer fires later but its epoch is stale: no double
  // flush, and nothing pending gets lost.
  env.advance(msec(10));
  EXPECT_EQ(flushes, 1);
}

TEST(Batcher, CancelInvalidatesArmedFlush) {
  test::ScriptedEnv env;
  int flushes = 0;
  consensus::Batcher b(env, batch_opt(), [&] { ++flushes; });
  b.add_pending(10);
  b.cancel();  // deposed leader / crashed node
  env.advance(msec(50));
  EXPECT_EQ(flushes, 0);
  EXPECT_EQ(b.pending_bytes(), 0u);
  // The batcher is reusable after a cancel (re-elected leader).
  b.add_pending(10);
  env.advance(msec(10));
  EXPECT_EQ(flushes, 1);
}

TEST(Batcher, AdaptiveDelayAimd) {
  test::ScriptedEnv env;
  consensus::TimingOptions o = batch_opt();
  o.batch_adaptive = true;
  o.batch_delay_min = 0;
  o.batch_delay_max = msec(8);
  o.batch_inflight_window = 100;
  int flushes = 0;
  consensus::Batcher b(env, o, [&] { ++flushes; });
  const Duration d0 = b.delay();
  // Flush far more than the in-flight window with no acks: delay doubles.
  b.add_pending(900);
  env.advance(msec(10));
  EXPECT_EQ(flushes, 1);
  EXPECT_GT(b.delay(), d0);
  EXPECT_LE(b.delay(), o.batch_delay_max);
  // Draining the pipe decays the delay additively toward the floor.
  const Duration congested = b.delay();
  b.note_acked(900);
  EXPECT_LT(b.delay(), congested);
  EXPECT_GE(b.delay(), o.batch_delay_min);
  // note_acked clamps: over-reporting (snapshot jumps) cannot wedge it.
  b.note_acked(1 << 30);
  EXPECT_EQ(b.inflight_bytes(), 0u);
}

// Regression for the deposed-leader race: a Raft leader arms a batched
// flush, is deposed before the delay elapses, and the stale flush must not
// replicate against the new term's state.
TEST(Batcher, DeposedRaftLeaderFlushIsInert) {
  test::ScriptedEnv env;
  raft::Options opt;
  opt.election_timeout_min = msec(150);
  opt.election_timeout_max = msec(300);
  opt.heartbeat_interval = msec(40);
  opt.batch_delay = msec(5);
  consensus::Group g;
  g.self = 0;
  g.members = {0, 1, 2};
  raft::RaftNode node(g, env, opt);
  node.start();
  env.advance(msec(400));  // election timeout: candidate at some term t
  ASSERT_EQ(node.role(), raft::Role::kCandidate);
  const consensus::Term t = node.current_term();
  node.on_packet(net::Packet{
      1, 0, 0, std::any(raft::Message{raft::VoteReply{t, 1, true}})});
  ASSERT_TRUE(node.is_leader());
  ASSERT_GE(node.submit(kv::Command{kv::Op::kPut, 1, 2, 8, 3, 4}), 0);
  env.clear();
  // Higher-term append deposes the leader while its flush is still armed.
  raft::AppendEntries ae;
  ae.term = t + 1;
  ae.leader = 2;
  ae.prev_index = 0;
  ae.prev_term = 0;
  ae.commit = 0;
  node.on_packet(net::Packet{2, 0, 0, std::any(raft::Message{ae})});
  ASSERT_FALSE(node.is_leader());
  env.clear();
  env.advance(msec(20));  // past the armed batch_delay
  for (const auto& sent : env.outbox) {
    const auto* m = std::any_cast<raft::Message>(&sent.payload);
    ASSERT_TRUE(m == nullptr ||
                !std::holds_alternative<raft::AppendEntries>(*m))
        << "stale flush replicated after deposition";
  }
}

// ---------------------------------------------------------------------------
// End-to-end: a chaos run with PRAFT_WIRE_VERIFY on round-trips every frame
// the simulated network carries and cross-checks it against the original
// struct. Any drift between wire_size(), encode(), and decode() aborts.
// ---------------------------------------------------------------------------

TEST(WireVerify, ChaosSmokeAllProtocols) {
  const bool prev = net::wire_verify_enabled();
  net::set_wire_verify(true);
  for (const char* protocol : {"raft", "raftstar", "multipaxos", "mencius"}) {
    chaos::RunOptions opt;
    opt.protocol = protocol;
    opt.seed = 3;
    const chaos::RunResult res = chaos::run_one(opt);
    EXPECT_TRUE(res.ok) << protocol << ": "
                        << (res.violations.empty() ? "?" : res.violations[0]);
    EXPECT_GT(res.client_ops, 0u);
  }
  net::set_wire_verify(prev);
}

}  // namespace
}  // namespace praft
