#include <gtest/gtest.h>

#include "paxos/node.h"
#include "scripted_env.h"
#include "test_util.h"

namespace praft {
namespace {

using harness::PaxosProtocol;
using test::ApplyRecord;
using test::ScriptedEnv;

consensus::Group group_of(NodeId self, std::initializer_list<NodeId> members) {
  consensus::Group g;
  g.self = self;
  g.members = members;
  return g;
}

paxos::Options unit_options() {
  paxos::Options o;
  o.election_timeout_min = msec(150);
  o.election_timeout_max = msec(300);
  o.heartbeat_interval = msec(50);
  o.batch_delay = 0;
  return o;
}

net::Packet packet(NodeId from, NodeId to, paxos::Message m) {
  return net::Packet{from, to, paxos::wire_size(m), std::move(m)};
}

TEST(PaxosUnitTest, BallotOrdering) {
  consensus::Ballot a{1, 0}, b{1, 1}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_FALSE(consensus::Ballot{}.valid());
  EXPECT_TRUE(a.valid());
}

TEST(PaxosUnitTest, PrepareHigherBallotPromotes) {
  ScriptedEnv env;
  paxos::PaxosNode n(group_of(1, {0, 1, 2}), env, unit_options());
  n.start();
  n.on_packet(packet(0, 1,
                     paxos::Message{paxos::Prepare{{5, 0}, 0, 1}}));
  auto sent = env.take_for(0);
  ASSERT_EQ(sent.size(), 1u);
  const auto* ok = std::get_if<paxos::PrepareOk>(
      std::any_cast<paxos::Message>(&sent[0].payload));
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->bal, (consensus::Ballot{5, 0}));
  EXPECT_EQ(n.ballot(), (consensus::Ballot{5, 0}));
}

TEST(PaxosUnitTest, PrepareLowerBallotRejected) {
  ScriptedEnv env;
  paxos::PaxosNode n(group_of(1, {0, 1, 2}), env, unit_options());
  n.start();
  n.on_packet(packet(0, 1, paxos::Message{paxos::Prepare{{5, 0}, 0, 1}}));
  env.clear();
  n.on_packet(packet(2, 1, paxos::Message{paxos::Prepare{{3, 2}, 2, 1}}));
  auto sent = env.take_for(2);
  ASSERT_EQ(sent.size(), 1u);
  const auto* rej = std::get_if<paxos::Reject>(
      std::any_cast<paxos::Message>(&sent[0].payload));
  ASSERT_NE(rej, nullptr);
  EXPECT_EQ(rej->bal, (consensus::Ballot{5, 0}));
}

TEST(PaxosUnitTest, PrepareOkCarriesAcceptedValues) {
  ScriptedEnv env;
  paxos::PaxosNode n(group_of(1, {0, 1, 2}), env, unit_options());
  n.start();
  // Accept a value at instance 1 from proposer 2 (ballot (1,2)).
  kv::Command c{kv::Op::kPut, 3, 33, 8, 9, 1};
  paxos::AcceptBatch ab{{1, 2}, 2, 1, {c}, 0};
  n.on_packet(packet(2, 1, paxos::Message{ab}));
  env.clear();
  // A later prepare must see it.
  n.on_packet(packet(0, 1, paxos::Message{paxos::Prepare{{5, 0}, 0, 1}}));
  auto sent = env.take_for(0);
  ASSERT_EQ(sent.size(), 1u);
  const auto* ok = std::get_if<paxos::PrepareOk>(
      std::any_cast<paxos::Message>(&sent[0].payload));
  ASSERT_NE(ok, nullptr);
  ASSERT_EQ(ok->accepted.size(), 1u);
  EXPECT_EQ(ok->accepted[0].index, 1);
  EXPECT_TRUE(ok->accepted[0].cmd == c);
  EXPECT_EQ(ok->accepted[0].bal, (consensus::Ballot{1, 2}));
}

TEST(PaxosUnitTest, NewLeaderReproposesSafeValue) {
  // The MultiPaxos safety core: a value accepted at a lower ballot must be
  // re-proposed (never replaced) by a higher-ballot leader.
  ScriptedEnv env;
  paxos::PaxosNode n(group_of(0, {0, 1, 2}), env, unit_options());
  n.start();
  n.force_election();  // ballot (1,0), prepare sent to 1 and 2
  env.clear();
  kv::Command c{kv::Op::kPut, 3, 33, 8, 9, 1};
  paxos::PrepareOk ok;
  ok.bal = {1, 0};
  ok.sender = 1;
  ok.accepted = {paxos::AcceptedVal{1, {0, 2}, c}};
  n.on_packet(packet(1, 0, paxos::Message{ok}));
  ASSERT_TRUE(n.is_leader());
  // The leader must have proposed c at instance 1.
  bool found = false;
  for (const auto& s : env.outbox) {
    const auto* m = std::any_cast<paxos::Message>(&s.payload);
    if (m == nullptr) continue;
    if (const auto* ab = std::get_if<paxos::AcceptBatch>(m)) {
      if (ab->start == 1 && !ab->cmds.empty() && ab->cmds[0] == c) found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(n.value_at(1) != nullptr && *n.value_at(1) == c, true);
}

TEST(PaxosUnitTest, AcceptorTracksHighestBallot) {
  ScriptedEnv env;
  paxos::PaxosNode n(group_of(1, {0, 1, 2}), env, unit_options());
  n.start();
  kv::Command c1{kv::Op::kPut, 1, 1, 8, 9, 1};
  kv::Command c2{kv::Op::kPut, 1, 2, 8, 9, 2};
  n.on_packet(packet(0, 1, paxos::Message{paxos::AcceptBatch{{2, 0}, 0, 1, {c1}, 0}}));
  env.clear();
  // A lower-ballot accept for the same instance is rejected.
  n.on_packet(packet(2, 1, paxos::Message{paxos::AcceptBatch{{1, 2}, 2, 1, {c2}, 0}}));
  auto sent = env.take_for(2);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_NE(std::get_if<paxos::Reject>(
                std::any_cast<paxos::Message>(&sent[0].payload)),
            nullptr);
  ASSERT_NE(n.value_at(1), nullptr);
  EXPECT_TRUE(*n.value_at(1) == c1);
  // A higher-ballot accept overwrites (never erases) the value.
  n.on_packet(packet(2, 1, paxos::Message{paxos::AcceptBatch{{9, 2}, 2, 1, {c2}, 0}}));
  ASSERT_NE(n.value_at(1), nullptr);
  EXPECT_TRUE(*n.value_at(1) == c2);
}

TEST(PaxosUnitTest, OutOfOrderChosenExecutesInOrder) {
  ScriptedEnv env;
  paxos::PaxosNode n(group_of(0, {0, 1, 2}), env, unit_options());
  std::vector<consensus::LogIndex> applied;
  n.set_apply([&](consensus::LogIndex i, const kv::Command&) {
    applied.push_back(i);
  });
  n.start();
  n.force_election();
  paxos::PrepareOk pok;
  pok.bal = {1, 0};
  pok.sender = 1;
  n.on_packet(packet(1, 0, paxos::Message{pok}));
  ASSERT_TRUE(n.is_leader());
  // Two instances in flight; instance 2's ack arrives first.
  n.submit(kv::Command{kv::Op::kPut, 1, 1, 8, 0, 1});
  n.submit(kv::Command{kv::Op::kPut, 2, 2, 8, 0, 2});
  env.advance(msec(5));  // flush
  n.on_packet(packet(1, 0, paxos::Message{paxos::AcceptOkBatch{{1, 0}, 1, 2, 1}}));
  EXPECT_TRUE(n.chosen_at(2));
  EXPECT_TRUE(applied.empty());  // instance 1 not chosen yet: no execution
  n.on_packet(packet(2, 0, paxos::Message{paxos::AcceptOkBatch{{1, 0}, 2, 1, 1}}));
  EXPECT_TRUE(n.chosen_at(1));
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[0], 1);
  EXPECT_EQ(applied[1], 2);
}

TEST(PaxosClusterTest, ElectsAndCommits) {
  harness::Cluster cluster(test::lan_config(21));
  cluster.build_replicas(
      test::make_factory<PaxosProtocol>(test::fast_options<paxos::Options>()));
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.metrics().set_window(0, kTimeMax);
  cluster.add_clients(2, test::small_workload(), cluster.sim().now());
  cluster.run_for(sec(5));
  EXPECT_GT(cluster.metrics().completed(), 500);
}

TEST(PaxosClusterTest, FailoverPreservesAgreement) {
  auto record = std::make_shared<ApplyRecord>();
  harness::Cluster cluster(test::lan_config(22));
  cluster.build_replicas(test::make_factory<PaxosProtocol>(
      test::fast_options<paxos::Options>(), record));
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.add_clients(2, test::small_workload(), cluster.sim().now());
  cluster.run_for(sec(2));
  const Time crash_at = cluster.sim().now();
  cluster.net().faults().crash(cluster.server(0).id(), crash_at,
                               crash_at + sec(5));
  cluster.run_for(sec(3));
  EXPECT_GE(cluster.leader_replica(), 1);
  cluster.run_for(sec(4));
  cluster.stop_clients();
  cluster.run_for(sec(3));
  EXPECT_FALSE(record->violation);
  EXPECT_TRUE(test::stores_converged(cluster));
}

TEST(PaxosClusterTest, ConvergesUnderMessageLoss) {
  auto record = std::make_shared<ApplyRecord>();
  harness::Cluster cluster(test::lan_config(23));
  cluster.build_replicas(test::make_factory<PaxosProtocol>(
      test::fast_options<paxos::Options>(), record));
  cluster.net().faults().set_drop_rate(0.05);
  ASSERT_GE(cluster.establish_leader(0), 0);
  cluster.add_clients(1, test::small_workload(), cluster.sim().now());
  cluster.run_for(sec(6));
  cluster.net().faults().set_drop_rate(0.0);
  cluster.stop_clients();
  cluster.run_for(sec(4));
  EXPECT_FALSE(record->violation);
  EXPECT_TRUE(test::stores_converged(cluster));
}

}  // namespace
}  // namespace praft
