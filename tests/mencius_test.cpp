#include <gtest/gtest.h>

#include "mencius/node.h"
#include "mencius/server.h"
#include "scripted_env.h"
#include "test_util.h"

namespace praft {
namespace {

using test::ApplyRecord;

consensus::Group group_of(NodeId self, std::initializer_list<NodeId> members) {
  consensus::Group g;
  g.self = self;
  g.members = members;
  return g;
}

mencius::Options unit_options() {
  mencius::Options o;
  o.batch_delay = 0;
  o.heartbeat_interval = msec(50);
  o.revoke_timeout = msec(600);
  o.learn_after = msec(100);
  return o;
}

// ---------------------------------------------------------------------------
// Unit tests on MenciusNode.
// ---------------------------------------------------------------------------

TEST(MenciusUnitTest, OwnSlotsAreResidueClass) {
  test::ScriptedEnv env;
  mencius::MenciusNode n(group_of(11, {10, 11, 12}), env, unit_options());
  n.start();
  EXPECT_EQ(n.rank(), 1);
  EXPECT_EQ(n.submit(kv::Command{kv::Op::kPut, 1, 1, 8, 0, 1}), 1);
  EXPECT_EQ(n.submit(kv::Command{kv::Op::kPut, 2, 2, 8, 0, 2}), 4);
  EXPECT_EQ(n.submit(kv::Command{kv::Op::kPut, 3, 3, 8, 0, 3}), 7);
  EXPECT_EQ(n.owner_of(4), 11);
  EXPECT_EQ(n.owner_of(5), 12);
}

TEST(MenciusUnitTest, SeeingOthersSlotsSkipsOwnTurns) {
  test::ScriptedEnv env;
  mencius::MenciusNode n(group_of(10, {10, 11, 12}), env, unit_options());
  n.start();
  // Owner 11 proposes at slot 7 (its third turn); we should cede slots 0, 3
  // and 6 and broadcast the skip.
  mencius::AcceptOwn ao;
  ao.owner = 11;
  ao.items = {mencius::OwnItem{7, kv::Command{kv::Op::kPut, 5, 5, 8, 9, 1}}};
  n.on_packet(net::Packet{11, 10, 64, mencius::Message{ao}});
  EXPECT_EQ(n.slots_skipped(), 3);
  EXPECT_EQ(n.next_own(), 9);
  env.advance(msec(5));  // flush
  bool skip_seen = false;
  for (const auto& s : env.outbox) {
    const auto* m = std::any_cast<mencius::Message>(&s.payload);
    if (m == nullptr) continue;
    if (const auto* sr = std::get_if<mencius::SkipRange>(m)) {
      skip_seen = true;
      EXPECT_EQ(sr->lo, 0);
      EXPECT_EQ(sr->hi, 7);
    }
  }
  EXPECT_TRUE(skip_seen);
}

TEST(MenciusUnitTest, QuorumAcksDecideOwnSlot) {
  test::ScriptedEnv env;
  mencius::MenciusNode n(group_of(10, {10, 11, 12}), env, unit_options());
  std::vector<kv::Command> acked;
  n.set_acked([&](const kv::Command& c) { acked.push_back(c); });
  std::vector<consensus::LogIndex> applied;
  n.set_apply([&](consensus::LogIndex i, const kv::Command&) {
    applied.push_back(i);
  });
  n.start();
  const kv::Command c{kv::Op::kPut, 1, 1, 8, 0, 1};
  ASSERT_EQ(n.submit(c), 0);
  mencius::AcceptOwnOk ok;
  ok.acceptor = 11;
  ok.indexes = {0};
  n.on_packet(net::Packet{11, 10, 48, mencius::Message{ok}});
  // Majority (self + 11) reached: decided; slot 0 has no predecessors so it
  // executes AND acks.
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0], 0);
  ASSERT_EQ(acked.size(), 1u);
  EXPECT_TRUE(acked[0] == c);
}

TEST(MenciusUnitTest, CommutativeOpAckedBeforeExecution) {
  test::ScriptedEnv env;
  mencius::MenciusNode n(group_of(11, {10, 11, 12}), env, unit_options());
  std::vector<kv::Command> acked;
  n.set_acked([&](const kv::Command& c) { acked.push_back(c); });
  std::vector<consensus::LogIndex> applied;
  n.set_apply([&](consensus::LogIndex i, const kv::Command&) {
    applied.push_back(i);
  });
  n.start();
  // Owner 10's slot 0 holds a DIFFERENT key, not yet decided (no watermark).
  mencius::AcceptOwn ao;
  ao.owner = 10;
  ao.items = {mencius::OwnItem{0, kv::Command{kv::Op::kPut, 77, 1, 8, 9, 1}}};
  n.on_packet(net::Packet{10, 11, 64, mencius::Message{ao}});
  // Our op on key 5 lands at slot 1.
  const kv::Command mine{kv::Op::kPut, 5, 2, 8, 0, 1};
  ASSERT_EQ(n.submit(mine), 1);
  mencius::AcceptOwnOk ok;
  ok.acceptor = 12;
  ok.indexes = {1};
  n.on_packet(net::Packet{12, 11, 48, mencius::Message{ok}});
  // Slot 0 is valued-but-undecided: cannot execute slot 1, but the keys
  // commute, so the client is acked early (the Mencius optimization).
  EXPECT_TRUE(applied.empty());
  ASSERT_EQ(acked.size(), 1u);
  EXPECT_TRUE(acked[0] == mine);
}

TEST(MenciusUnitTest, ConflictingOpWaitsForExecution) {
  test::ScriptedEnv env;
  mencius::MenciusNode n(group_of(11, {10, 11, 12}), env, unit_options());
  std::vector<kv::Command> acked;
  n.set_acked([&](const kv::Command& c) { acked.push_back(c); });
  n.start();
  // Owner 10's slot 0 holds the SAME key (undecided).
  mencius::AcceptOwn ao;
  ao.owner = 10;
  ao.items = {mencius::OwnItem{0, kv::Command{kv::Op::kPut, 5, 1, 8, 9, 1}}};
  n.on_packet(net::Packet{10, 11, 64, mencius::Message{ao}});
  const kv::Command mine{kv::Op::kPut, 5, 2, 8, 0, 1};
  ASSERT_EQ(n.submit(mine), 1);
  mencius::AcceptOwnOk ok;
  ok.acceptor = 12;
  ok.indexes = {1};
  n.on_packet(net::Packet{12, 11, 48, mencius::Message{ok}});
  EXPECT_TRUE(acked.empty());  // conflicting: must wait for slot 0
  // Slot 0 decides via owner 10's watermark; now both execute and ack fires.
  mencius::StatusBeat sb;
  sb.from = 10;
  sb.next_own = 3;
  sb.decided_floor = 3;
  sb.rev_floor = -1;
  n.on_packet(net::Packet{10, 11, 40, mencius::Message{sb}});
  ASSERT_EQ(acked.size(), 1u);
  EXPECT_TRUE(acked[0] == mine);
}

TEST(MenciusUnitTest, SkipRangeDecidesForeignSlots) {
  test::ScriptedEnv env;
  mencius::MenciusNode n(group_of(11, {10, 11, 12}), env, unit_options());
  std::vector<consensus::LogIndex> applied;
  n.set_apply([&](consensus::LogIndex i, const kv::Command&) {
    applied.push_back(i);
  });
  n.start();
  // Skips from owners 10 and 12 covering their slots below 3, plus our own
  // proposal at slot 1 — the full prefix becomes executable.
  const kv::Command mine{kv::Op::kPut, 5, 2, 8, 0, 1};
  n.submit(mine);
  mencius::AcceptOwnOk ok;
  ok.acceptor = 10;
  ok.indexes = {1};
  n.on_packet(net::Packet{10, 11, 48, mencius::Message{ok}});
  n.on_packet(net::Packet{10, 11, 40,
                          mencius::Message{mencius::SkipRange{10, 0, 3}}});
  n.on_packet(net::Packet{12, 11, 40,
                          mencius::Message{mencius::SkipRange{12, 0, 3}}});
  ASSERT_EQ(applied.size(), 3u);  // slots 0,1,2
}

// ---------------------------------------------------------------------------
// Cluster-level tests.
// ---------------------------------------------------------------------------

harness::Cluster::ServerFactory mencius_factory(
    mencius::Options opt, std::shared_ptr<ApplyRecord> record = nullptr) {
  return [opt, record](harness::NodeHost& host, const consensus::Group& g)
             -> std::unique_ptr<harness::ReplicaServer> {
    harness::CostModel costs;
    costs.enabled = false;
    auto s = std::make_unique<mencius::MenciusServer>(host, g, costs, opt);
    if (record) {
      s->set_apply_probe(
          [record](NodeId n, consensus::LogIndex i, const kv::Command& c) {
            record->observe(n, i, c);
          });
    }
    return s;
  };
}

mencius::Options lan_mencius_options() {
  mencius::Options o;
  o.batch_delay = msec(1);
  o.heartbeat_interval = msec(40);
  o.revoke_timeout = msec(800);
  o.learn_after = msec(150);
  return o;
}

TEST(MenciusClusterTest, AllRegionsCommitWithoutForwarding) {
  auto record = std::make_shared<ApplyRecord>();
  harness::Cluster cluster(test::lan_config(41));
  cluster.build_replicas(mencius_factory(lan_mencius_options(), record));
  cluster.metrics().set_window(0, kTimeMax);
  kv::WorkloadConfig wl;
  wl.read_fraction = 0.0;
  wl.conflict_rate = 0.0;
  cluster.add_clients(2, wl, msec(100));
  cluster.run_for(sec(5));
  EXPECT_GT(cluster.metrics().completed(), 500);
  for (SiteId s = 0; s < 5; ++s) {
    EXPECT_GT(cluster.metrics().writes(s).count(), 0) << "site " << s;
  }
  EXPECT_FALSE(record->violation);
}

TEST(MenciusClusterTest, ReplicasConverge) {
  harness::Cluster cluster(test::lan_config(42));
  cluster.build_replicas(mencius_factory(lan_mencius_options()));
  kv::WorkloadConfig wl = test::small_workload();
  cluster.add_clients(2, wl, msec(100));
  cluster.run_for(sec(5));
  cluster.stop_clients();
  cluster.run_for(sec(3));
  EXPECT_TRUE(test::stores_converged(cluster));
  EXPECT_GT(cluster.server(0).store().applied_count(), 0u);
}

TEST(MenciusClusterTest, IdleRegionsSkipTheirTurns) {
  harness::Cluster cluster(test::lan_config(43));
  std::vector<mencius::MenciusServer*> servers;
  auto factory = [&servers](harness::NodeHost& host, const consensus::Group& g)
      -> std::unique_ptr<harness::ReplicaServer> {
    harness::CostModel costs;
    costs.enabled = false;
    auto s = std::make_unique<mencius::MenciusServer>(host, g, costs,
                                                      lan_mencius_options());
    servers.push_back(s.get());
    return s;
  };
  cluster.build_replicas(factory);
  // Only region 0 has clients; all other owners must skip constantly.
  auto& host = cluster.make_host(0);
  test::OneShotClient client(host);
  cluster.run_for(msec(200));
  for (int i = 0; i < 50; ++i) {
    client.send(cluster.server(0).id(),
                kv::Command{kv::Op::kPut, static_cast<uint64_t>(i), 1, 8, 0, 0});
    cluster.run_for(msec(100));
    ASSERT_FALSE(client.waiting()) << "op " << i;
  }
  int64_t total_skips = 0;
  for (auto* s : servers) total_skips += s->node().slots_skipped();
  EXPECT_GT(total_skips, 100);
  cluster.run_for(sec(2));
  EXPECT_TRUE(test::stores_converged(cluster));
}

TEST(MenciusClusterTest, CrashedOwnerIsRevokedAndSystemProceeds) {
  auto record = std::make_shared<ApplyRecord>();
  harness::Cluster cluster(test::lan_config(44));
  cluster.build_replicas(mencius_factory(lan_mencius_options(), record));
  cluster.metrics().set_window(0, kTimeMax);
  kv::WorkloadConfig wl;
  wl.read_fraction = 0.0;
  wl.conflict_rate = 0.0;
  cluster.add_clients(1, wl, msec(100));
  cluster.run_for(sec(2));
  // Kill replica 3 permanently; its in-flight slots must be revoked.
  const Time t = cluster.sim().now();
  cluster.net().faults().crash(cluster.server(3).id(), t, t + sec(600));
  cluster.run_for(sec(1));
  const int64_t during = cluster.metrics().completed();
  cluster.run_for(sec(6));  // revoke_timeout passes; progress resumes
  EXPECT_GT(cluster.metrics().completed(), during + 100);
  EXPECT_FALSE(record->violation);
  // The four live replicas converge (dead one is excluded).
  const uint64_t fp = cluster.server(0).store().fingerprint();
  cluster.stop_clients();
  cluster.run_for(sec(3));
  for (int i : {1, 2, 4}) {
    EXPECT_EQ(cluster.server(i).store().fingerprint(),
              cluster.server(0).store().fingerprint())
        << "replica " << i;
  }
  (void)fp;
}

TEST(MenciusClusterTest, BrokenHandPortStallsSkippingOwners) {
  // Ablation A2 (§A.4): the hand-port that misses the AppendEntries/propose
  // side of the Phase2b delta never marks its OWN skips executable. Owners
  // that skip (the idle regions) stall their local execution, while the busy
  // owner — whose slots were really proposed — keeps applying. The correct
  // port keeps every store in lock-step.
  for (const bool correct : {true, false}) {
    mencius::Options opt = lan_mencius_options();
    opt.decide_own_skips = correct;
    harness::Cluster cluster(test::lan_config(45));
    cluster.build_replicas(mencius_factory(opt));
    test::OneShotClient client(cluster.make_host(1));
    cluster.run_for(msec(200));
    for (int i = 0; i < 10; ++i) {
      client.send(cluster.server(1).id(),
                  kv::Command{kv::Op::kPut, static_cast<uint64_t>(i), 1, 8, 0, 0});
      cluster.run_for(msec(300));
      ASSERT_FALSE(client.waiting()) << "op " << i;
    }
    cluster.run_for(sec(2));
    const auto applied_busy = cluster.server(1).store().applied_count();
    const auto applied_idle = cluster.server(0).store().applied_count();
    if (correct) {
      EXPECT_EQ(applied_idle, applied_busy) << "correct port keeps pace";
    } else {
      EXPECT_LT(applied_idle, applied_busy) << "broken port stalls skipper";
    }
  }
}

}  // namespace
}  // namespace praft
