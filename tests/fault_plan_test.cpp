#include <gtest/gtest.h>

#include <any>
#include <vector>

#include "net/packet.h"
#include "sim/faults.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace praft::sim {
namespace {

// ---------------------------------------------------------------------------
// Window boundary semantics: every window is [from, to) — active at the
// first instant, inactive at the last.
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, CrashWindowBoundaryInstants) {
  FaultPlan plan;
  plan.crash(2, 100, 200);
  EXPECT_FALSE(plan.is_down(2, 99));
  EXPECT_TRUE(plan.is_down(2, 100));   // t == from: down
  EXPECT_TRUE(plan.is_down(2, 199));
  EXPECT_FALSE(plan.is_down(2, 200));  // t == to: back up
  EXPECT_FALSE(plan.is_down(1, 150));  // other nodes unaffected
}

TEST(FaultPlanTest, PartitionWindowBoundaryInstants) {
  FaultPlan plan;
  plan.partition_pair(0, 1, 100, 200);
  EXPECT_FALSE(plan.is_blocked(0, 1, 99));
  EXPECT_TRUE(plan.is_blocked(0, 1, 100));
  EXPECT_TRUE(plan.is_blocked(1, 0, 150));  // bidirectional
  EXPECT_FALSE(plan.is_blocked(0, 1, 200));
}

TEST(FaultPlanTest, OverlappingPartitionsUnion) {
  // Two windows on the same pair act as their union, including the overlap
  // and each window's exclusive tail.
  FaultPlan plan;
  plan.partition_pair(0, 1, 100, 300);
  plan.partition_pair(0, 1, 200, 400);
  EXPECT_TRUE(plan.is_blocked(0, 1, 150));
  EXPECT_TRUE(plan.is_blocked(0, 1, 250));  // overlap
  EXPECT_TRUE(plan.is_blocked(0, 1, 350));
  EXPECT_FALSE(plan.is_blocked(0, 1, 400));
}

TEST(FaultPlanTest, CrashDuringPartition) {
  // A crash window inside a partition window: both predicates hold
  // independently, and the partition outlives the crash.
  FaultPlan plan;
  plan.partition_pair(0, 1, 100, 500);
  plan.crash(0, 200, 300);
  EXPECT_TRUE(plan.is_blocked(0, 1, 250));
  EXPECT_TRUE(plan.is_down(0, 250));
  EXPECT_FALSE(plan.is_down(0, 350));        // recovered...
  EXPECT_TRUE(plan.is_blocked(0, 1, 350));   // ...but still partitioned
}

TEST(FaultPlanTest, IsolateVsPartitionPair) {
  // isolate(n) blocks n against EVERY peer; partition_pair only the named
  // pair. Both may be active at once; healing one leaves the other.
  FaultPlan plan;
  plan.isolate(0, 100, 200);
  plan.partition_pair(0, 3, 100, 300);
  EXPECT_TRUE(plan.is_blocked(0, 1, 150));   // via isolate
  EXPECT_TRUE(plan.is_blocked(0, 3, 150));   // via both
  EXPECT_FALSE(plan.is_blocked(1, 2, 150));  // bystanders unaffected
  // Isolation over, pair partition still active:
  EXPECT_FALSE(plan.is_blocked(0, 1, 250));
  EXPECT_TRUE(plan.is_blocked(0, 3, 250));
  EXPECT_FALSE(plan.is_blocked(0, 3, 300));
}

// ---------------------------------------------------------------------------
// Drop bursts and the duplication/reordering knobs.
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, DropBurstWindowsTakeMaxOverBase) {
  FaultPlan plan;
  plan.set_drop_rate(0.01);
  plan.drop_burst(0.5, 100, 200);
  plan.drop_burst(0.3, 150, 400);
  EXPECT_DOUBLE_EQ(plan.drop_rate_at(50), 0.01);    // base only
  EXPECT_DOUBLE_EQ(plan.drop_rate_at(100), 0.5);    // t == from
  EXPECT_DOUBLE_EQ(plan.drop_rate_at(175), 0.5);    // overlap: max, not sum
  EXPECT_DOUBLE_EQ(plan.drop_rate_at(200), 0.3);    // first burst over
  EXPECT_DOUBLE_EQ(plan.drop_rate_at(400), 0.01);   // all over
}

TEST(FaultPlanTest, ChaosKnobsDefaultOff) {
  const FaultPlan plan;
  EXPECT_DOUBLE_EQ(plan.drop_rate(), 0.0);
  EXPECT_DOUBLE_EQ(plan.duplicate_rate(), 0.0);
  EXPECT_DOUBLE_EQ(plan.reorder_rate(), 0.0);
  EXPECT_DOUBLE_EQ(plan.drop_rate_at(12345), 0.0);
}

// ---------------------------------------------------------------------------
// Network-level behavior of the new knobs.
// ---------------------------------------------------------------------------

struct TestNet {
  explicit TestNet(uint64_t seed = 1)
      : sim(seed), net(sim, LatencyMatrix(1, msec(10))) {
    a = net.add_node(0, [this](net::Packet&& p) {
      received.push_back(std::any_cast<int>(p.payload));
    });
    b = net.add_node(0, [](net::Packet&&) {});
  }
  Simulator sim;
  Network net;
  NodeId a, b;
  std::vector<int> received;
};

TEST(NetworkChaosTest, DuplicationDeliversTwiceFifoOtherwiseIntact) {
  TestNet w;
  w.net.faults().set_duplicate_rate(1.0);  // every message duplicated
  w.net.send(w.b, w.a, 7, 8);
  w.sim.run_until(sec(1));
  ASSERT_EQ(w.received.size(), 2u);
  EXPECT_EQ(w.received[0], 7);
  EXPECT_EQ(w.received[1], 7);
  EXPECT_EQ(w.net.messages_delivered(), 2u);
}

TEST(NetworkChaosTest, ReorderingAllowsOvertaking) {
  // With reordering on, some later-sent message eventually beats an
  // earlier-sent one on the same link — impossible under the FIFO clamp.
  TestNet w(7);
  w.net.faults().set_reorder_rate(0.5);
  bool overtaken = false;
  for (int round = 0; round < 200 && !overtaken; ++round) {
    w.received.clear();
    w.net.send(w.b, w.a, 0, 8);
    w.net.send(w.b, w.a, 1, 8);
    w.sim.run_for(sec(1));
    ASSERT_EQ(w.received.size(), 2u);
    overtaken = (w.received[0] == 1);
  }
  EXPECT_TRUE(overtaken);
}

TEST(NetworkChaosTest, FifoPreservedWhenKnobsOff) {
  TestNet w(7);
  for (int round = 0; round < 50; ++round) {
    w.received.clear();
    w.net.send(w.b, w.a, 0, 8);
    w.net.send(w.b, w.a, 1, 8);
    w.sim.run_for(sec(1));
    ASSERT_EQ(w.received.size(), 2u);
    EXPECT_EQ(w.received[0], 0);
    EXPECT_EQ(w.received[1], 1);
  }
}

TEST(NetworkChaosTest, DropBurstWindowDropsThenHeals) {
  TestNet w;
  w.net.faults().drop_burst(1.0, 0, sec(1));  // everything dropped early on
  w.net.send(w.b, w.a, 1, 8);
  w.sim.run_until(sec(2));
  EXPECT_TRUE(w.received.empty());
  w.net.send(w.b, w.a, 2, 8);  // after the burst: delivered
  w.sim.run_until(sec(3));
  ASSERT_EQ(w.received.size(), 1u);
  EXPECT_EQ(w.received[0], 2);
}

}  // namespace
}  // namespace praft::sim
