// Replication pipelining (PR 8): unit tests for the shared per-peer
// in-flight window (consensus::PeerPipeline), the MultiPaxos heartbeat
// byte-reduction it buys, per-protocol convergence with a full window under
// dropped / duplicated / reordered traffic, and the stale-ack-after-
// step-down regression mirroring wire_test's deposed-leader flush test.
#include <gtest/gtest.h>

#include "consensus/batcher.h"
#include "consensus/pipeline.h"
#include "harness/protocols.h"
#include "paxos/node.h"
#include "raft/node.h"
#include "scripted_env.h"
#include "test_util.h"

namespace praft {
namespace {

consensus::TimingOptions pipe_opts(size_t window_bytes, size_t max_batches) {
  consensus::TimingOptions o;
  o.pipeline = true;
  o.pipeline_inflight_bytes = window_bytes;
  o.pipeline_max_batches = max_batches;
  o.pipeline_retransmit_timeout = msec(600);
  return o;
}

// ---------------------------------------------------------------------------
// PeerPipeline unit behaviour.
// ---------------------------------------------------------------------------

TEST(PeerPipeline, WindowGatesByBytesAndBatches) {
  consensus::PeerPipeline p(pipe_opts(1000, 3));
  EXPECT_TRUE(p.can_send(1));
  p.on_send(1, 1, 10, 400, 0);
  EXPECT_TRUE(p.can_send(1));  // 400 < 1000, 1 < 3 batches
  p.on_send(1, 11, 20, 400, 0);
  EXPECT_TRUE(p.can_send(1));
  p.on_send(1, 21, 30, 400, 0);
  EXPECT_FALSE(p.can_send(1));  // 1200 >= 1000
  EXPECT_EQ(p.outstanding_batches(1), 3u);
  EXPECT_EQ(p.inflight_bytes(1), 1200u);
  // Independent peers have independent windows.
  EXPECT_TRUE(p.can_send(2));
}

TEST(PeerPipeline, MaxBatchesGatesEvenWhenBytesFit) {
  consensus::PeerPipeline p(pipe_opts(1 << 20, 2));
  p.on_send(1, 1, 1, 10, 0);
  p.on_send(1, 2, 2, 10, 0);
  EXPECT_FALSE(p.can_send(1));
}

TEST(PeerPipeline, CumulativeAckRetiresPrefixAndGrowsWindow) {
  consensus::PeerPipeline p(pipe_opts(1600, 16));
  p.on_send(1, 1, 10, 400, 0);
  p.on_send(1, 11, 20, 400, 0);
  p.on_send(1, 21, 30, 400, 0);
  // Ack covering the first two batches (cumulative at hi=20).
  p.on_ack(1, 20);
  EXPECT_EQ(p.outstanding_batches(1), 1u);
  EXPECT_EQ(p.inflight_bytes(1), 400u);
  // Additive increase is capped at the configured maximum.
  EXPECT_LE(p.window(1), 1600u);
  // Ack for the rest empties the channel exactly.
  p.on_ack(1, 30);
  EXPECT_EQ(p.outstanding_batches(1), 0u);
  EXPECT_EQ(p.inflight_bytes(1), 0u);
  EXPECT_EQ(p.acks(), 2);  // one per retiring ack event
}

TEST(PeerPipeline, DuplicateAndStaleAcksAreInert) {
  consensus::PeerPipeline p(pipe_opts(1000, 16));
  p.on_send(1, 1, 10, 300, 0);
  p.on_ack(1, 10);
  const size_t w = p.window(1);
  // Duplicate ack, ack below anything outstanding, ack for unknown peer.
  p.on_ack(1, 10);
  p.on_ack(1, 5);
  p.on_ack(7, 100);
  EXPECT_EQ(p.outstanding_batches(1), 0u);
  EXPECT_EQ(p.window(1), w);
  EXPECT_EQ(p.rollbacks(), 0);
}

TEST(PeerPipeline, ReorderedAckStillRetiresByCumulativeKey) {
  consensus::PeerPipeline p(pipe_opts(10000, 16));
  p.on_send(1, 1, 10, 100, 0);
  p.on_send(1, 11, 20, 100, 0);
  // The ack for the *second* batch arrives first (network reordering):
  // cumulative semantics retire both.
  p.on_ack(1, 20);
  EXPECT_EQ(p.outstanding_batches(1), 0u);
  // The first batch's ack then arrives late — nothing to do.
  p.on_ack(1, 10);
  EXPECT_EQ(p.outstanding_batches(1), 0u);
  EXPECT_EQ(p.rollbacks(), 0);
}

TEST(PeerPipeline, RejectClearsHalvesAndCounts) {
  consensus::PeerPipeline p(pipe_opts(1024, 16));
  p.on_send(1, 1, 10, 600, 0);
  p.on_send(1, 11, 20, 300, 0);
  p.on_reject(1);
  EXPECT_EQ(p.outstanding_batches(1), 0u);
  EXPECT_EQ(p.inflight_bytes(1), 0u);
  EXPECT_EQ(p.window(1), 512u);
  EXPECT_EQ(p.rollbacks(), 1);
  // Repeated trouble floors at window_max / 16, never zero.
  for (int i = 0; i < 10; ++i) p.on_reject(1);
  EXPECT_EQ(p.window(1), 64u);
  EXPECT_TRUE(p.can_send(1));  // an empty channel may always send
}

TEST(PeerPipeline, RetransmitDueAfterTimeoutAndLossReturnsOldestLo) {
  consensus::PeerPipeline p(pipe_opts(10000, 16));
  p.on_send(1, 5, 10, 100, /*now=*/0);
  p.on_send(1, 11, 20, 100, msec(100));
  EXPECT_FALSE(p.retransmit_due(1, msec(500)));
  EXPECT_TRUE(p.retransmit_due(1, msec(600)));
  const auto lo = p.on_loss(1);
  EXPECT_EQ(lo, 5);
  EXPECT_EQ(p.outstanding_batches(1), 0u);
  EXPECT_EQ(p.rollbacks(), 1);
  // Nothing outstanding: no further probe, and on_loss reports nothing.
  EXPECT_FALSE(p.retransmit_due(1, msec(5000)));
  EXPECT_EQ(p.on_loss(1), -1);
}

TEST(PeerPipeline, StopAndWaitModeAllowsOneBatch) {
  consensus::TimingOptions o = pipe_opts(1 << 20, 16);
  o.pipeline = false;
  consensus::PeerPipeline p(o);
  EXPECT_TRUE(p.can_send(1));
  p.on_send(1, 1, 64, 100, 0);
  EXPECT_FALSE(p.can_send(1));  // window/batch budget ignored: strict 1
  p.on_ack(1, 64);
  EXPECT_TRUE(p.can_send(1));
}

TEST(PeerPipeline, ResetAllMakesLateAcksInert) {
  // Unit-level stale-ack mirror: a leadership change resets the pipeline;
  // acks from the old regime must neither retire nor grow anything.
  consensus::PeerPipeline p(pipe_opts(1000, 16));
  p.on_send(1, 1, 10, 400, 0);
  p.on_send(2, 1, 10, 400, 0);
  p.reset_all();
  EXPECT_EQ(p.outstanding_batches(1), 0u);
  p.on_ack(1, 10);  // stale ack after the reset
  p.on_ack(2, 10);
  EXPECT_EQ(p.outstanding_batches(1), 0u);
  EXPECT_EQ(p.outstanding_batches(2), 0u);
  EXPECT_EQ(p.window(1), 1000u);  // back to the configured start
}

// ---------------------------------------------------------------------------
// RTT-adaptive retransmit timeout (Jacobson/Karels per peer).
// ---------------------------------------------------------------------------

TEST(PeerPipeline, RtoDefaultsToFixedTimeoutBeforeAnySample) {
  consensus::PeerPipeline p(pipe_opts(10000, 16));
  EXPECT_EQ(p.rto(1), msec(600));
  EXPECT_EQ(p.srtt(1), 0);
}

TEST(PeerPipeline, FirstRttSampleSeedsSrttAndRaisesRtoAboveFloor) {
  consensus::PeerPipeline p(pipe_opts(10000, 16));
  p.on_send(1, 1, 10, 100, /*now=*/0);
  p.on_ack(1, 10, /*now=*/msec(300));
  // First sample R: srtt = R, rttvar = R/2, RTO = srtt + 4*rttvar = 3R.
  EXPECT_EQ(p.srtt(1), msec(300));
  EXPECT_EQ(p.rto(1), msec(900));
  // Peers learn independently.
  EXPECT_EQ(p.rto(2), msec(600));
}

TEST(PeerPipeline, FastNetworkKeepsFixedTimeoutAsFloor) {
  // LAN-scale samples must NOT shrink the RTO below the configured fixed
  // timeout: chaos timing (drop-heavy WAN schedules) relies on 600 ms as a
  // floor, so adaptation can only ever lengthen patience.
  consensus::PeerPipeline p(pipe_opts(10000, 16));
  for (int i = 0; i < 20; ++i) {
    const Time t = msec(10 * i);
    p.on_send(1, 1 + i, 1 + i, 100, t);
    p.on_ack(1, 1 + i, t + msec(1));
  }
  EXPECT_EQ(p.srtt(1), msec(1));
  EXPECT_EQ(p.rto(1), msec(600));
}

TEST(PeerPipeline, RetransmitDueUsesAdaptiveRto) {
  consensus::PeerPipeline p(pipe_opts(10000, 16));
  p.on_send(1, 1, 10, 100, /*now=*/0);
  p.on_ack(1, 10, msec(300));  // srtt 300 ms -> RTO 900 ms
  p.on_send(1, 11, 20, 100, msec(300));
  EXPECT_FALSE(p.retransmit_due(1, msec(300) + msec(899)));
  EXPECT_TRUE(p.retransmit_due(1, msec(300) + msec(900)));
}

TEST(PeerPipeline, AdaptiveRtoCanBeDisabled) {
  consensus::TimingOptions o = pipe_opts(10000, 16);
  o.pipeline_rto_adaptive = false;
  consensus::PeerPipeline p(o);
  p.on_send(1, 1, 10, 100, /*now=*/0);
  p.on_ack(1, 10, msec(300));
  EXPECT_EQ(p.rto(1), msec(600));  // fixed timeout, as before PR 9
}

TEST(PeerPipeline, SteadyRttConvergesAndVarianceDecays) {
  consensus::PeerPipeline p(pipe_opts(1 << 20, 64));
  // Repeated identical 250 ms samples: srtt pins to 250 ms and rttvar
  // decays geometrically, so RTO falls from 3R toward the srtt + small-var
  // regime (still >= the 600 ms floor).
  Time now = 0;
  for (int i = 0; i < 40; ++i) {
    p.on_send(1, 1 + i, 1 + i, 100, now);
    now += msec(250);
    p.on_ack(1, 1 + i, now);
  }
  EXPECT_EQ(p.srtt(1), msec(250));
  EXPECT_LT(p.rto(1), msec(750));   // rttvar decayed well below R/2
  EXPECT_GE(p.rto(1), msec(600));   // never below the fixed floor
}

TEST(PeerPipeline, PostLossAcksAreNeverSampled) {
  // Karn's rule falls out of the outstanding-set design: on_loss clears the
  // peer's channel, so an ack for retransmitted data retires nothing and
  // must not poison srtt with an ambiguous measurement.
  consensus::PeerPipeline p(pipe_opts(10000, 16));
  p.on_send(1, 1, 10, 100, /*now=*/0);
  EXPECT_EQ(p.on_loss(1), 1);
  p.on_ack(1, 10, sec(5));  // late ack from the original transmission
  EXPECT_EQ(p.srtt(1), 0);  // no sample was taken
  EXPECT_EQ(p.rto(1), msec(600));
}

// ---------------------------------------------------------------------------
// Batcher backpressure: pending + in-flight bytes stay bounded.
// ---------------------------------------------------------------------------

consensus::TimingOptions backpressure_opt(size_t cap) {
  consensus::TimingOptions o;
  o.batch_delay = msec(5);
  o.batch_backpressure_bytes = cap;
  return o;
}

TEST(Batcher, BackpressureBoundsPendingPlusInflight) {
  test::ScriptedEnv env;
  consensus::Batcher b(env, backpressure_opt(1000), [] {});
  // The submit discipline every protocol node follows: consult can_accept()
  // before add_pending. The queued + unacked total then never exceeds the
  // cap, no matter how fast clients push.
  size_t accepted = 0;
  for (int i = 0; i < 100; ++i) {
    if (!b.can_accept()) break;
    b.add_pending(300);
    ++accepted;
    EXPECT_LE(b.pending_bytes() + b.inflight_bytes(), 1000u + 300u);
  }
  EXPECT_EQ(accepted, 4u);  // 4 * 300 = 1200 >= 1000 gates the 5th
  EXPECT_FALSE(b.can_accept());

  env.advance(msec(5));  // flush: pending becomes in-flight, still capped
  EXPECT_EQ(b.pending_bytes(), 0u);
  EXPECT_EQ(b.inflight_bytes(), 1200u);
  EXPECT_FALSE(b.can_accept());

  b.note_acked(300);  // progress frees budget
  EXPECT_TRUE(b.can_accept());
}

TEST(Batcher, BackpressureDisabledByZeroCap) {
  test::ScriptedEnv env;
  consensus::Batcher b(env, backpressure_opt(0), [] {});
  b.add_pending(1 << 30);
  EXPECT_TRUE(b.can_accept());
}

TEST(Batcher, CancelReleasesBackpressureForNextReign) {
  test::ScriptedEnv env;
  consensus::Batcher b(env, backpressure_opt(1000), [] {});
  b.add_pending(600);
  env.advance(msec(5));
  b.add_pending(600);
  EXPECT_FALSE(b.can_accept());  // 600 in flight + 600 pending
  // Step-down: the old reign's accounting dies with its flushes. A stale
  // in-flight count must not wedge the next leadership's submissions.
  b.cancel();
  EXPECT_EQ(b.inflight_bytes(), 0u);
  EXPECT_TRUE(b.can_accept());
}

// ---------------------------------------------------------------------------
// Raft: a deposed leader's pipeline state must not act on stale acks.
// Mirrors wire_test's DeposedRaftLeaderFlushIsInert at the replication
// layer: the follower's AppendReply lands after the step-down.
// ---------------------------------------------------------------------------

TEST(Pipeline, StaleAckAfterStepDownIsInert) {
  test::ScriptedEnv env;
  raft::Options opt = test::fast_options<raft::Options>();
  opt.batch_delay = 0;
  consensus::Group g;
  g.self = 0;
  g.members = {0, 1, 2};
  raft::RaftNode node(g, env, opt);
  node.start();
  env.advance(msec(400));
  ASSERT_EQ(node.role(), raft::Role::kCandidate);
  const consensus::Term t = node.current_term();
  node.on_packet(net::Packet{
      1, 0, 0, std::any(raft::Message{raft::VoteReply{t, 1, true}})});
  ASSERT_TRUE(node.is_leader());
  ASSERT_GE(node.submit(kv::Command{kv::Op::kPut, 1, 2, 8, 3, 4}), 0);
  env.advance(msec(2));  // flush: entry 1 now in flight to both peers
  env.clear();

  // Higher-term append deposes the leader with the entry still in flight.
  raft::AppendEntries ae;
  ae.term = t + 1;
  ae.leader = 2;
  node.on_packet(net::Packet{2, 0, 0, std::any(raft::Message{ae})});
  ASSERT_FALSE(node.is_leader());
  EXPECT_EQ(node.pipeline_rollbacks(), 0);

  // The old regime's ack finally arrives, then time passes the retransmit
  // timeout. Neither may produce an AppendEntries or a loss rollback.
  node.on_packet(net::Packet{
      1, 0, 0, std::any(raft::Message{raft::AppendReply{t, 1, true, 1, 0}})});
  env.clear();
  env.advance(msec(700));  // past pipeline_retransmit_timeout
  EXPECT_EQ(node.pipeline_rollbacks(), 0);
  for (const auto& sent : env.outbox) {
    const auto* m = std::any_cast<raft::Message>(&sent.payload);
    ASSERT_TRUE(m == nullptr ||
                !std::holds_alternative<raft::AppendEntries>(*m))
        << "deposed leader replicated off a stale ack";
  }
}

// ---------------------------------------------------------------------------
// MultiPaxos satellite bugfix: the leader no longer rebroadcasts every
// unchosen instance to every peer on every heartbeat tick. With a majority
// partitioned away, the windowed retransmit path must move an order of
// magnitude fewer bytes than the old blanket resend; once healed and
// converged, the steady state is heartbeat-only.
// ---------------------------------------------------------------------------

TEST(Pipeline, PaxosHeartbeatNoBlanketResend) {
  auto record = std::make_shared<test::ApplyRecord>();
  harness::Cluster cluster(test::lan_config(81));
  paxos::Options opt = test::fast_options<paxos::Options>();
  cluster.build_replicas(
      test::make_factory<harness::PaxosProtocol>(opt, record));
  ASSERT_EQ(cluster.establish_leader(0), 0);
  auto& leader = static_cast<harness::PaxosServer&>(cluster.server(0)).node();

  // Healthy phase: 50 commands replicate and choose normally.
  for (int i = 0; i < 50; ++i) {
    ASSERT_GE(leader.submit(kv::Command{kv::Op::kPut, 10u + i, 1u + i, 8, 9,
                                        100u + i}),
              0);
  }
  cluster.run_for(sec(2));
  ASSERT_GE(leader.commit_index(), 50);

  // Converged steady state: heartbeats only. 2 s at 40 ms x 4 peers of
  // small Heartbeat frames is a few KB; the old code rebroadcast every
  // not-yet-globally-known instance here and any resend blows the bound.
  const uint64_t bytes0 = cluster.net().bytes_sent();
  cluster.run_for(sec(2));
  const uint64_t idle = cluster.net().bytes_sent() - bytes0;
  EXPECT_LT(idle, 25'000u) << "idle leader is resending instances";

  // Stall phase: cut the leader off from a majority and propose 50 more.
  // They stay unchosen — under the old code a full rebroadcast to every
  // peer at every 40 ms heartbeat tick; now a windowed offer per peer plus
  // a timed retransmit probe every 600 ms.
  const Time cut_from = cluster.sim().now();
  for (int i = 1; i <= 3; ++i) {
    cluster.net().faults().isolate(cluster.server(i).id(), cut_from,
                                   cut_from + sec(3));
  }
  cluster.run_for(msec(50));
  for (int i = 0; i < 50; ++i) {
    ASSERT_GE(leader.submit(kv::Command{kv::Op::kPut, 60u + i, 1u + i, 8, 9,
                                        200u + i}),
              0);
  }
  const uint64_t bytes1 = cluster.net().bytes_sent();
  cluster.run_for(sec(2));
  const uint64_t stalled = cluster.net().bytes_sent() - bytes1;
  // Old blanket resend: ~50 ticks x 4 peers x 50 commands (~2 KB per
  // rebroadcast batch) ~= 400 KB in this window. Windowed: well under a
  // quarter of that.
  EXPECT_LT(stalled, 100'000u) << "heartbeat-tick blanket resend is back";
  EXPECT_GT(leader.pipeline_rollbacks(), 0);  // loss probes did fire

  // Heal. The isolated majority has been running elections, so leadership
  // must be re-established; node 0's own accepted tail makes its next reign
  // re-propose the stalled instances and choose them.
  cluster.run_for(sec(2));
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.run_for(sec(4));
  EXPECT_TRUE(test::stores_converged(cluster));
  EXPECT_FALSE(record->violation);
  EXPECT_GE(leader.commit_index(), 100);
}

// ---------------------------------------------------------------------------
// Per-protocol convergence with the window full of in-flight batches while
// the network drops, duplicates and reorders traffic, then heals.
// ---------------------------------------------------------------------------

class PipelineFaults : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineFaults, ConvergesThroughDropDupReorder) {
  auto record = std::make_shared<test::ApplyRecord>();
  harness::Cluster cluster(test::lan_config(82));
  consensus::TimingOptions timing =
      test::fast_options<consensus::TimingOptions>();
  // Small window + small batches: the fault window catches many in-flight
  // batches, not one giant one.
  timing.max_entries_per_batch = 8;
  timing.pipeline_inflight_bytes = 4096;
  cluster.build_replicas(GetParam(), timing);
  cluster.install_apply_probe(
      [record](NodeId n, consensus::LogIndex i, const kv::Command& c) {
        record->observe(n, i, c);
      });
  if (!cluster.server(0).leaderless()) {
    ASSERT_GE(cluster.establish_leader(0), 0);
  } else {
    cluster.run_for(msec(500));
  }

  auto& faults = cluster.net().faults();
  faults.set_drop_rate(0.10);
  faults.set_duplicate_rate(0.30);
  faults.set_reorder_rate(0.30);
  cluster.add_clients(3, test::small_workload(), cluster.sim().now());
  cluster.run_for(sec(6));

  faults.set_drop_rate(0.0);
  faults.set_duplicate_rate(0.0);
  faults.set_reorder_rate(0.0);
  cluster.run_for(sec(2));
  cluster.stop_clients();
  cluster.run_for(sec(4));

  EXPECT_FALSE(record->violation) << GetParam() << ": divergent applies";
  EXPECT_GT(record->observations, 0);
  EXPECT_TRUE(test::stores_converged(cluster)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PipelineFaults,
                         ::testing::Values("raft", "raftstar", "multipaxos",
                                           "mencius"));

}  // namespace
}  // namespace praft
