#include <gtest/gtest.h>

#include "kv/command.h"
#include "kv/store.h"
#include "kv/workload.h"

namespace praft::kv {
namespace {

TEST(CommandTest, WireBytesIncludeValueOnlyForPuts) {
  Command get{Op::kGet, 7, 0, 4096, 1, 1};
  Command put{Op::kPut, 7, 9, 4096, 1, 2};
  // Exact encoded field bytes (see Command::wire_bytes and net/field_codec):
  // op u8 + key u64 + value u64 + value_size u32 + client i32 + seq u64.
  constexpr size_t kFields = 1 + 8 + 8 + 4 + 4 + 8;
  EXPECT_EQ(get.wire_bytes(), kFields);
  EXPECT_EQ(put.wire_bytes(), kFields + 4096u);
}

TEST(StoreTest, PutThenGet) {
  KvStore s;
  s.apply(Command{Op::kPut, 1, 42, 8, 0, 1});
  const auto r = s.apply(Command{Op::kGet, 1, 0, 8, 0, 2});
  EXPECT_EQ(r.value, 42u);
  EXPECT_EQ(s.read_local(1), 42u);
}

TEST(StoreTest, GetMissingReturnsZero) {
  KvStore s;
  EXPECT_EQ(s.apply(Command{Op::kGet, 99, 0, 8, 0, 1}).value, 0u);
  EXPECT_EQ(s.read_local(99), 0u);
}

TEST(StoreTest, OverwriteBumpsVersion) {
  KvStore s;
  EXPECT_EQ(s.apply(Command{Op::kPut, 5, 1, 8, 0, 1}).version, 1u);
  EXPECT_EQ(s.apply(Command{Op::kPut, 5, 2, 8, 0, 2}).version, 2u);
  EXPECT_EQ(s.read_local(5), 2u);
}

TEST(StoreTest, NoopDoesNothingButCounts) {
  KvStore s;
  s.apply(noop_command());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.applied_count(), 1u);
}

TEST(StoreTest, FingerprintDetectsDivergence) {
  KvStore a, b;
  a.apply(Command{Op::kPut, 1, 10, 8, 0, 1});
  b.apply(Command{Op::kPut, 1, 10, 8, 0, 1});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.apply(Command{Op::kPut, 2, 20, 8, 0, 2});
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(StoreTest, FingerprintOrderInsensitive) {
  KvStore a, b;
  a.apply(Command{Op::kPut, 1, 10, 8, 0, 1});
  a.apply(Command{Op::kPut, 2, 20, 8, 0, 2});
  b.apply(Command{Op::kPut, 2, 20, 8, 0, 2});
  b.apply(Command{Op::kPut, 1, 10, 8, 0, 1});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(WorkloadTest, ReadFractionRespected) {
  WorkloadConfig cfg;
  cfg.read_fraction = 0.9;
  cfg.conflict_rate = 0.0;
  WorkloadGenerator gen(cfg, 0, Rng(1));
  int reads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) reads += gen.next(1, static_cast<uint64_t>(i)).is_read();
  EXPECT_NEAR(static_cast<double>(reads) / n, 0.9, 0.02);
}

TEST(WorkloadTest, ConflictRateHitsHotKey) {
  WorkloadConfig cfg;
  cfg.conflict_rate = 0.25;
  WorkloadGenerator gen(cfg, 0, Rng(2));
  int hot = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hot += (gen.next(1, static_cast<uint64_t>(i)).key == 0);
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.25, 0.02);
}

TEST(WorkloadTest, PartitionsAreDisjoint) {
  WorkloadConfig cfg;
  cfg.conflict_rate = 0.0;
  cfg.num_partitions = 5;
  cfg.num_records = 100'000;
  WorkloadGenerator g0(cfg, 0, Rng(3));
  WorkloadGenerator g4(cfg, 4, Rng(4));
  for (int i = 0; i < 5000; ++i) {
    const uint64_t k0 = g0.next(1, static_cast<uint64_t>(i)).key;
    const uint64_t k4 = g4.next(2, static_cast<uint64_t>(i)).key;
    EXPECT_GE(k0, 1u);
    EXPECT_LT(k0, 20'001u);
    EXPECT_GE(k4, 80'001u);
    EXPECT_LT(k4, 100'001u);
  }
}

TEST(WorkloadTest, ValueSizePropagates) {
  WorkloadConfig cfg;
  cfg.value_size = 4096;
  cfg.read_fraction = 0.0;
  WorkloadGenerator gen(cfg, 0, Rng(5));
  const Command c = gen.next(1, 1);
  EXPECT_EQ(c.value_size, 4096u);
  EXPECT_TRUE(c.is_write());
}

TEST(WorkloadTest, SeqAndClientStamped) {
  WorkloadConfig cfg;
  WorkloadGenerator gen(cfg, 0, Rng(6));
  const Command c = gen.next(42, 17);
  EXPECT_EQ(c.client, 42);
  EXPECT_EQ(c.seq, 17u);
}

}  // namespace
}  // namespace praft::kv
