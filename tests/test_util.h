#pragma once

#include <map>
#include <memory>

#include "common/types.h"
#include "harness/cluster.h"
#include "harness/log_server.h"

namespace praft::test {

/// Records every (index, command) applied by any replica and flags the
/// moment two replicas disagree about one index — the core agreement
/// (safety) property of every protocol in the repo.
struct ApplyRecord {
  std::map<consensus::LogIndex, kv::Command> chosen;
  int64_t observations = 0;
  bool violation = false;

  void observe(NodeId, consensus::LogIndex i, const kv::Command& c) {
    ++observations;
    auto it = chosen.find(i);
    if (it == chosen.end()) {
      chosen.emplace(i, c);
    } else if (!(it->second == c)) {
      violation = true;
    }
  }
};

/// LAN-speed protocol options: tests run in milliseconds of simulated time.
template <typename Opt>
Opt fast_options() {
  Opt o;
  o.election_timeout_min = msec(150);
  o.election_timeout_max = msec(300);
  o.heartbeat_interval = msec(40);
  o.batch_delay = msec(1);
  return o;
}

/// WAN-speed options matching the aws5 latency matrix (max RTT 292 ms).
template <typename Opt>
Opt wan_options() {
  Opt o;
  o.election_timeout_min = msec(1200);
  o.election_timeout_max = msec(2400);
  o.heartbeat_interval = msec(150);
  o.batch_delay = msec(1);
  return o;
}

/// Uniform low-latency matrix for fast protocol tests.
inline sim::LatencyMatrix lan_matrix() {
  sim::LatencyMatrix m(5, msec(10));
  m.set_jitter(0.05);
  return m;
}

inline harness::ClusterConfig lan_config(uint64_t seed) {
  harness::ClusterConfig cfg;
  cfg.seed = seed;
  cfg.latency = lan_matrix();
  cfg.costs.enabled = false;
  return cfg;
}

inline harness::ClusterConfig wan_config(uint64_t seed) {
  harness::ClusterConfig cfg;
  cfg.seed = seed;
  cfg.costs.enabled = false;
  return cfg;
}

template <typename P>
harness::Cluster::ServerFactory make_factory(
    typename P::Options opt, std::shared_ptr<ApplyRecord> record = nullptr) {
  return [opt, record](harness::NodeHost& host, const consensus::Group& g) {
    harness::CostModel costs;
    costs.enabled = false;
    auto server = std::make_unique<harness::TypedLogServer<P>>(host, g, costs, opt);
    if (record) {
      server->set_apply_probe(
          [record](NodeId n, consensus::LogIndex i, const kv::Command& c) {
            record->observe(n, i, c);
          });
    }
    return server;
  };
}

/// Applied-state fingerprints of all replicas are equal.
inline bool stores_converged(harness::Cluster& cluster) {
  const uint64_t fp = cluster.server(0).store().fingerprint();
  for (int i = 1; i < cluster.num_replicas(); ++i) {
    if (cluster.server(i).store().fingerprint() != fp) return false;
  }
  return true;
}

inline kv::WorkloadConfig small_workload() {
  kv::WorkloadConfig wl;
  wl.read_fraction = 0.5;
  wl.conflict_rate = 0.1;
  wl.num_records = 1000;
  return wl;
}

/// Sends one command at a time and captures the reply (for scripted
/// sequential scenarios where the closed-loop workload is too coarse).
class OneShotClient : public harness::PacketHandler {
 public:
  explicit OneShotClient(harness::NodeHost& host) : host_(host) {
    host_.attach(this);
  }

  void send(NodeId server, kv::Command cmd) {
    cmd.client = host_.id();
    cmd.seq = ++seq_;
    waiting_ = true;
    harness::ClientRequest req{cmd};
    host_.send(server, harness::Message{req}, harness::wire_size(req));
  }

  void handle(const net::Packet& p) override {
    const auto* m = net::payload_as<harness::Message>(p);
    if (m == nullptr) return;
    const auto* r = std::get_if<harness::ClientReply>(m);
    if (r == nullptr || r->seq != seq_) return;
    waiting_ = false;
    value_ = r->value;
    ++replies_;
  }

  [[nodiscard]] bool waiting() const { return waiting_; }
  [[nodiscard]] uint64_t value() const { return value_; }
  [[nodiscard]] int replies() const { return replies_; }

 private:
  harness::NodeHost& host_;
  uint64_t seq_ = 0;
  bool waiting_ = false;
  uint64_t value_ = 0;
  int replies_ = 0;
};

}  // namespace praft::test
