// praft_lint rule tests: each rule is demonstrated by a seeded fixture — the
// violation must be convicted at the right file:line, the inline suppression
// must mute it, and the clean variant must produce zero findings. The
// wire-completeness tests additionally prove that removing any single codec
// piece (encode overload, decode function, decode case, operator==) makes W1
// fail — the property CI relies on.
//
// The real-tree run (praft_lint over src/ and tools/) is the separate
// `lint_repo` ctest leg registered in CMakeLists.txt.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/model.h"
#include "lint/rules.h"

namespace praft::lint {
namespace {

Project make_project(std::vector<SourceFile> files) {
  return Project(std::move(files));
}

std::vector<Finding> lint_one(const std::string& path,
                              const std::string& content,
                              const std::string& rule) {
  return run_rules(make_project({{path, content}}), {rule});
}

bool has_finding(const std::vector<Finding>& fs, const std::string& file,
                 int line, const std::string& rule) {
  for (const Finding& f : fs) {
    if (f.file == file && f.line == line && f.rule == rule) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// D1 — unordered iteration.
// ---------------------------------------------------------------------------

TEST(LintD1, ConvictsRangeForOverUnorderedMember) {
  const std::string src =
      "#include <unordered_map>\n"                        // 1
      "struct S {\n"                                      // 2
      "  void emit() {\n"                                 // 3
      "    for (const auto& [k, v] : peers_) { use(v); }\n"  // 4  <- here
      "  }\n"                                             // 5
      "  std::unordered_map<int, int> peers_;\n"          // 6
      "};\n";
  const auto fs = lint_one("src/x/a.h", src, "D1");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has_finding(fs, "src/x/a.h", 4, "D1"));
}

TEST(LintD1, ConvictsAcrossIncludeClosure) {
  // Member declared unordered in the header; iterated in the .cpp. The
  // include closure is what carries the declaration to the use site.
  const std::string hdr =
      "#include <unordered_map>\n"
      "struct S { std::unordered_map<int, int> index_; };\n";
  const std::string cpp =
      "#include \"x/a.h\"\n"                     // 1
      "void f(S& s) {\n"                         // 2
      "  for (auto& kv : s.index_) { use(kv); }\n"  // 3  <- here
      "}\n";
  const auto fs = run_rules(
      make_project({{"src/x/a.h", hdr}, {"src/x/a.cpp", cpp}}), {"D1"});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has_finding(fs, "src/x/a.cpp", 3, "D1"));
}

TEST(LintD1, ConvictsBeginIteratorWalk) {
  const std::string src =
      "#include <unordered_map>\n"                       // 1
      "struct S {\n"                                     // 2
      "  std::unordered_map<int, int> pending_;\n"       // 3
      "  void drop() {\n"                                // 4
      "    for (auto it = pending_.begin(); it != pending_.end();) {\n"  // 5
      "      it = pending_.erase(it);\n"                 // 6
      "    }\n"
      "  }\n"
      "};\n";
  const auto fs = lint_one("src/x/a.h", src, "D1");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has_finding(fs, "src/x/a.h", 5, "D1"));
}

TEST(LintD1, ConvictsThroughTypeAlias) {
  const std::string src =
      "#include <unordered_map>\n"                          // 1
      "using PendingMap = std::unordered_map<int, int>;\n"  // 2
      "struct S {\n"                                        // 3
      "  PendingMap pending_;\n"                            // 4
      "  void walk() {\n"                                   // 5
      "    for (auto& kv : pending_) { use(kv); }\n"        // 6  <- here
      "  }\n"
      "};\n";
  const auto fs = lint_one("src/x/a.h", src, "D1");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has_finding(fs, "src/x/a.h", 6, "D1"));
}

TEST(LintD1, SuppressionOnPrecedingLineIsHonored) {
  const std::string src =
      "#include <unordered_map>\n"
      "struct S {\n"
      "  std::unordered_map<int, int> peers_;\n"
      "  void emit() {\n"
      "    // praft-lint: allow(D1 XOR fold is order-insensitive)\n"
      "    for (const auto& [k, v] : peers_) { use(v); }\n"
      "  }\n"
      "};\n";
  EXPECT_TRUE(lint_one("src/x/a.h", src, "D1").empty());
}

TEST(LintD1, OrderedContainersAreClean) {
  const std::string src =
      "#include <map>\n"
      "struct S {\n"
      "  std::map<int, int> peers_;\n"
      "  void emit() {\n"
      "    for (const auto& [k, v] : peers_) { use(v); }\n"
      "    for (auto it = peers_.begin(); it != peers_.end(); ++it) {}\n"
      "  }\n"
      "};\n";
  EXPECT_TRUE(lint_one("src/x/a.h", src, "D1").empty());
}

TEST(LintD1, LookupWithoutIterationIsClean) {
  const std::string src =
      "#include <unordered_map>\n"
      "struct S {\n"
      "  std::unordered_map<int, int> index_;\n"
      "  int get(int k) const {\n"
      "    auto it = index_.find(k);\n"
      "    return it == index_.end() ? 0 : it->second;\n"
      "  }\n"
      "};\n";
  EXPECT_TRUE(lint_one("src/x/a.h", src, "D1").empty());
}

// ---------------------------------------------------------------------------
// D2 — nondeterminism sources.
// ---------------------------------------------------------------------------

TEST(LintD2, ConvictsSteadyClockNow) {
  const std::string src =
      "#include <chrono>\n"                                        // 1
      "long f() {\n"                                               // 2
      "  auto t = std::chrono::steady_clock::now();\n"             // 3
      "  return t.time_since_epoch().count();\n"
      "}\n";
  const auto fs = lint_one("src/x/a.cpp", src, "D2");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has_finding(fs, "src/x/a.cpp", 3, "D2"));
}

TEST(LintD2, ConvictsLibcRandAndTimeCalls) {
  const std::string src =
      "#include <cstdlib>\n"            // 1
      "int f() {\n"                     // 2
      "  int a = rand();\n"             // 3  <- rand
      "  return a + time(nullptr);\n"   // 4  <- time
      "}\n";
  const auto fs = lint_one("src/x/a.cpp", src, "D2");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_TRUE(has_finding(fs, "src/x/a.cpp", 3, "D2"));
  EXPECT_TRUE(has_finding(fs, "src/x/a.cpp", 4, "D2"));
}

TEST(LintD2, ConvictsRandomDevice) {
  const std::string src =
      "#include <random>\n"                 // 1
      "unsigned f() {\n"                    // 2
      "  std::random_device rd;\n"          // 3  <- here
      "  return rd();\n"
      "}\n";
  const auto fs = lint_one("src/x/a.cpp", src, "D2");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has_finding(fs, "src/x/a.cpp", 3, "D2"));
}

TEST(LintD2, DeclarationNamedTimeIsNotACall) {
  // `uint64_t time(...)` declares a function; only call-position uses of the
  // banned names convict.
  const std::string src =
      "struct Env {\n"
      "  virtual uint64_t time() const = 0;\n"
      "};\n";
  EXPECT_TRUE(lint_one("src/x/a.h", src, "D2").empty());
}

TEST(LintD2, MemberNamedClockIsNotACall) {
  const std::string src =
      "long f(Env& env) { return env.clock(); }\n";
  EXPECT_TRUE(lint_one("src/x/a.cpp", src, "D2").empty());
}

TEST(LintD2, RngHeaderIsExempt) {
  const std::string src =
      "#include <random>\n"
      "unsigned seed_entropy() { std::random_device rd; return rd(); }\n";
  EXPECT_TRUE(lint_one("src/common/rng.h", src, "D2").empty());
}

TEST(LintD2, SuppressionIsHonored) {
  const std::string src =
      "#include <chrono>\n"
      "// praft-lint: allow(D2 wall-clock reporting only)\n"
      "auto t0 = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_one("src/x/a.cpp", src, "D2").empty());
}

// ---------------------------------------------------------------------------
// W1 — wire completeness. One canonical fixture, then each codec piece is
// removed in turn and the removal must convict.
// ---------------------------------------------------------------------------

const char kMessagesH[] =
    "#include <variant>\n"                                        // 1
    "struct Ping {\n"                                             // 2
    "  int x = 0;\n"                                              // 3
    "  friend bool operator==(const Ping&, const Ping&) = default;\n"
    "};\n"                                                        // 5
    "struct Pong {\n"                                             // 6
    "  int y = 0;\n"                                              // 7
    "  friend bool operator==(const Pong&, const Pong&) = default;\n"
    "};\n"                                                        // 9
    "using Message = std::variant<Ping, Pong>;\n";                // 10

const char kWireCpp[] =
    "#include \"x/messages.h\"\n"
    "void put(WireWriter& w, const Ping& m) { w.put_u64(m.x); }\n"
    "void put(WireWriter& w, const Pong& m) { w.put_u64(m.y); }\n"
    "Ping get_ping(WireReader& r) { return {r.get_u64()}; }\n"
    "Pong get_pong(WireReader& r) { return {r.get_u64()}; }\n"
    "Message decode(WireReader& r, int tag) {\n"
    "  Message m;\n"
    "  switch (tag) {\n"
    "    case 0: m = get_ping(r); break;\n"
    "    case 1: m = get_pong(r); break;\n"
    "  }\n"
    "  return m;\n"
    "}\n";

std::vector<Finding> lint_wire(const std::string& hdr,
                               const std::string& wire) {
  return run_rules(
      make_project({{"src/x/messages.h", hdr}, {"src/x/wire.cpp", wire}}),
      {"W1"});
}

std::string drop_line(const std::string& s, const std::string& needle) {
  std::string out;
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t eol = s.find('\n', pos);
    const std::string line = s.substr(pos, eol - pos);
    if (line.find(needle) == std::string::npos) out += line + "\n";
    pos = eol == std::string::npos ? s.size() : eol + 1;
  }
  return out;
}

TEST(LintW1, CompleteCodecIsClean) {
  EXPECT_TRUE(lint_wire(kMessagesH, kWireCpp).empty());
}

TEST(LintW1, MissingEncoderConvicts) {
  const auto fs =
      lint_wire(kMessagesH, drop_line(kWireCpp, "const Pong& m"));
  ASSERT_EQ(fs.size(), 1u);
  // Anchored at the header's `using Message` contract line.
  EXPECT_TRUE(has_finding(fs, "src/x/messages.h", 10, "W1"));
  EXPECT_NE(fs[0].message.find("Pong"), std::string::npos);
  EXPECT_NE(fs[0].message.find("put("), std::string::npos);
}

TEST(LintW1, MissingDecoderConvicts) {
  // Dropping get_ping also drops `case 0`'s call — remove only the decoder
  // function line; the case label remains, so exactly one finding.
  std::string wire = drop_line(kWireCpp, "Ping get_ping(WireReader& r)");
  const auto fs = lint_wire(kMessagesH, wire);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has_finding(fs, "src/x/messages.h", 10, "W1"));
  EXPECT_NE(fs[0].message.find("get_*"), std::string::npos);
}

TEST(LintW1, MissingDecodeCaseConvicts) {
  const auto fs = lint_wire(kMessagesH, drop_line(kWireCpp, "case 1:"));
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has_finding(fs, "src/x/messages.h", 10, "W1"));
  EXPECT_NE(fs[0].message.find("case 1"), std::string::npos);
  EXPECT_NE(fs[0].message.find("Pong"), std::string::npos);
}

TEST(LintW1, MissingEqualityConvictsAtStructLine) {
  const auto fs = lint_wire(
      drop_line(kMessagesH, "operator==(const Pong&"), kWireCpp);
  ASSERT_EQ(fs.size(), 1u);
  // Anchored at `struct Pong` (line 6 after the drop: operator== line was
  // line 8, everything above it keeps its number).
  EXPECT_TRUE(has_finding(fs, "src/x/messages.h", 6, "W1"));
  EXPECT_NE(fs[0].message.find("operator=="), std::string::npos);
}

TEST(LintW1, DirectoryWithoutMessageVariantIsIgnored) {
  const auto fs = run_rules(
      make_project({{"src/x/helpers.h", "struct H { int z; };\n"},
                    {"src/x/wire.cpp", "void unrelated() {}\n"}}),
      {"W1"});
  EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// C1 — assert/abort discipline.
// ---------------------------------------------------------------------------

TEST(LintC1, ConvictsAssertAndAbort) {
  const std::string src =
      "#include <cassert>\n"            // 1
      "void f(int x) {\n"               // 2
      "  assert(x > 0);\n"              // 3  <- assert
      "  if (x > 9) std::abort();\n"    // 4  <- abort
      "}\n";
  const auto fs = lint_one("src/x/a.cpp", src, "C1");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_TRUE(has_finding(fs, "src/x/a.cpp", 3, "C1"));
  EXPECT_TRUE(has_finding(fs, "src/x/a.cpp", 4, "C1"));
}

TEST(LintC1, StaticAssertAndPraftCheckAreClean) {
  const std::string src =
      "#include \"common/check.h\"\n"
      "static_assert(sizeof(int) == 4);\n"
      "void f(int x) { PRAFT_CHECK(x > 0); }\n";
  EXPECT_TRUE(lint_one("src/x/a.cpp", src, "C1").empty());
}

TEST(LintC1, OnlySrcIsInScope) {
  const std::string src = "void f(int x) { assert(x > 0); }\n";
  EXPECT_TRUE(lint_one("tools/helper.cpp", src, "C1").empty());
  EXPECT_FALSE(lint_one("src/x/a.cpp", src, "C1").empty());
}

// ---------------------------------------------------------------------------
// P1 — Persister durability seam.
// ---------------------------------------------------------------------------

TEST(LintP1, ConvictsRawEnvSendInProtocolDir) {
  const std::string src =
      "void Node::reply(int to, Payload p) {\n"  // 1
      "  env_.send(to, p);\n"                    // 2  <- here
      "}\n";
  const auto fs = lint_one("src/raft/node.cpp", src, "P1");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has_finding(fs, "src/raft/node.cpp", 2, "P1"));
}

TEST(LintP1, PersisterSendIsTheSanctionedSeam) {
  const std::string src =
      "void Node::reply(int to, Payload p) {\n"
      "  persister_.send(to, p);\n"
      "  persister_.send_unsynced(to, p);\n"
      "}\n";
  EXPECT_TRUE(lint_one("src/raft/node.cpp", src, "P1").empty());
}

TEST(LintP1, NonProtocolDirsAreOutOfScope) {
  const std::string src = "void f(Env& e, Payload p) { e.send(3, p); }\n";
  EXPECT_TRUE(lint_one("src/storage/persister.h", src, "P1").empty());
  EXPECT_TRUE(lint_one("src/harness/host.cpp", src, "P1").empty());
  EXPECT_FALSE(lint_one("src/mencius/node.cpp", src, "P1").empty());
}

// ---------------------------------------------------------------------------
// Suppression mechanics shared by all rules.
// ---------------------------------------------------------------------------

TEST(LintSuppress, SameLineTrailingCommentWorks) {
  const std::string src =
      "void f(int x) { assert(x); }  "
      "// praft-lint: allow(C1 fixture)\n";
  EXPECT_TRUE(lint_one("src/x/a.cpp", src, "C1").empty());
}

TEST(LintSuppress, WrongRuleDoesNotSuppress) {
  const std::string src =
      "// praft-lint: allow(D1 wrong rule)\n"
      "void f(int x) { assert(x); }\n";
  EXPECT_FALSE(lint_one("src/x/a.cpp", src, "C1").empty());
}

TEST(LintSuppress, SuppressionDoesNotLeakPastNextLine) {
  const std::string src =
      "// praft-lint: allow(C1 covers lines 1-2 only)\n"  // 1
      "void f(int x) {\n"                                 // 2
      "  assert(x);\n"                                    // 3  <- not covered
      "}\n";
  const auto fs = lint_one("src/x/a.cpp", src, "C1");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(has_finding(fs, "src/x/a.cpp", 3, "C1"));
}

}  // namespace
}  // namespace praft::lint
