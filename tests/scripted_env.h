#pragma once

#include <any>
#include <deque>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "consensus/env.h"
#include "net/packet.h"

namespace praft::test {

/// A hand-cranked Env for unit-testing protocol nodes without a network:
/// sent messages accumulate in `outbox`, timers fire only when the test
/// advances time. Deterministic and fully inspectable.
class ScriptedEnv final : public consensus::Env {
 public:
  struct Sent {
    NodeId to;
    std::any payload;
    size_t bytes;
  };

  explicit ScriptedEnv(uint64_t seed = 1) : rng_(seed) {}

  [[nodiscard]] Time now() const override { return now_; }

  void send(NodeId to, std::any payload, size_t bytes) override {
    outbox.push_back(Sent{to, std::move(payload), bytes});
  }

  void schedule(Duration delay, std::function<void()> fn) override {
    timers_.push_back({now_ + delay, next_timer_seq_++, std::move(fn)});
  }

  uint64_t random() override { return rng_.next(); }

  /// Advances the clock, firing due timers ordered by (deadline, creation):
  /// equal deadlines fire in the order they were scheduled — including
  /// timers created by a firing timer — matching sim::EventQueue's FIFO
  /// tie-break so unit-level runs replay like full-simulator runs.
  void advance(Duration d) {
    const Time target = now_ + d;
    while (true) {
      size_t best = timers_.size();
      for (size_t i = 0; i < timers_.size(); ++i) {
        if (timers_[i].at > target) continue;
        if (best == timers_.size() || timers_[i].at < timers_[best].at ||
            (timers_[i].at == timers_[best].at &&
             timers_[i].seq < timers_[best].seq)) {
          best = i;
        }
      }
      if (best == timers_.size()) break;
      auto t = std::move(timers_[best]);
      timers_.erase(timers_.begin() + static_cast<long>(best));
      now_ = t.at;
      t.fn();
    }
    now_ = target;
  }

  /// Messages sent to `to`, drained from the outbox.
  std::vector<Sent> take_for(NodeId to) {
    std::vector<Sent> out;
    std::vector<Sent> keep;
    for (auto& s : outbox) {
      if (s.to == to) {
        out.push_back(std::move(s));
      } else {
        keep.push_back(std::move(s));
      }
    }
    outbox = std::move(keep);
    return out;
  }

  void clear() { outbox.clear(); }

  std::vector<Sent> outbox;

 private:
  struct Timer {
    Time at;
    uint64_t seq;  // insertion order: the explicit tie-break for equal `at`
    std::function<void()> fn;
  };
  Time now_ = 0;
  Rng rng_;
  uint64_t next_timer_seq_ = 0;
  std::vector<Timer> timers_;
};

/// Delivers every pending message between a set of nodes until quiescence.
/// `deliver(from, to, payload)` is supplied by the test.
template <typename DeliverFn>
void pump(std::vector<ScriptedEnv*> envs, std::vector<NodeId> ids,
          DeliverFn deliver, int max_rounds = 100) {
  for (int round = 0; round < max_rounds; ++round) {
    bool any = false;
    for (size_t i = 0; i < envs.size(); ++i) {
      auto pending = std::move(envs[i]->outbox);
      envs[i]->outbox.clear();
      for (auto& msg : pending) {
        for (size_t j = 0; j < ids.size(); ++j) {
          if (ids[j] == msg.to) {
            deliver(ids[i], ids[j], msg.payload, msg.bytes);
            any = true;
          }
        }
      }
    }
    if (!any) return;
  }
}

}  // namespace praft::test
