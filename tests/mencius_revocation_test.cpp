// Unit tests for the Mencius revocation path (coordinated-Paxos phase 1/2 at
// ballots > 0, paper §A.3): a live replica takes over a crashed owner's
// slots, re-proposing any value it finds and no-op'ing the rest.
#include <gtest/gtest.h>

#include "mencius/node.h"
#include "scripted_env.h"

namespace praft {
namespace {

using test::ScriptedEnv;

consensus::Group group_of(NodeId self, std::initializer_list<NodeId> members) {
  consensus::Group g;
  g.self = self;
  g.members = members;
  return g;
}

mencius::Options revoke_options() {
  mencius::Options o;
  o.batch_delay = 0;
  o.heartbeat_interval = msec(50);
  o.revoke_timeout = msec(300);
  o.learn_after = msec(100);
  return o;
}

template <typename M>
const M* find_sent(ScriptedEnv& env, NodeId to) {
  for (const auto& s : env.outbox) {
    if (s.to != to) continue;
    const auto* msg = std::any_cast<mencius::Message>(&s.payload);
    if (msg == nullptr) continue;
    if (const M* m = std::get_if<M>(msg)) return m;
  }
  return nullptr;
}

net::Packet packet(NodeId from, NodeId to, mencius::Message m) {
  return net::Packet{from, to, mencius::wire_size(m), std::move(m)};
}

class RevocationFixture : public ::testing::Test {
 protected:
  RevocationFixture()
      : n11_(group_of(11, {10, 11, 12}), env11_, revoke_options()),
        n12_(group_of(12, {10, 11, 12}), env12_, revoke_options()) {
    n11_.set_apply([this](consensus::LogIndex i, const kv::Command& c) {
      applied11_.emplace_back(i, c);
    });
    n11_.start();
    n12_.start();
  }

  /// Starves node 11 until its maintenance loop starts a revocation of
  /// owner 10's slots, then returns the captured RevPrepare.
  const mencius::RevPrepare* starve_until_revocation() {
    env11_.advance(msec(400));  // > revoke_timeout with no word from 10
    return find_sent<mencius::RevPrepare>(env11_, 12);
  }

  ScriptedEnv env11_, env12_;
  mencius::MenciusNode n11_, n12_;
  std::vector<std::pair<consensus::LogIndex, kv::Command>> applied11_;
};

TEST_F(RevocationFixture, SilentOwnerWithValueGetsValueRecovered) {
  // Owner 10 proposed a real value for slot 0 to node 11 only, then died:
  // the revocation must recover THAT value, not a no-op (Paxos safety).
  const kv::Command v{kv::Op::kPut, 5, 55, 8, 9, 1};
  mencius::AcceptOwn ao;
  ao.owner = 10;
  ao.items = {mencius::OwnItem{0, v}};
  n11_.on_packet(packet(10, 11, mencius::Message{ao}));
  env11_.clear();

  const auto* prep = starve_until_revocation();
  ASSERT_NE(prep, nullptr);
  EXPECT_EQ(prep->owner, 10);
  EXPECT_EQ(prep->lo, 0);
  EXPECT_GT(prep->bal.round, 0);
  EXPECT_EQ(n11_.revocations_started(), 1);

  // Node 12 (knows nothing about slot 0) promises.
  n12_.on_packet(packet(11, 12, mencius::Message{*prep}));
  const auto* pok = find_sent<mencius::RevPrepareOk>(env12_, 11);
  ASSERT_NE(pok, nullptr);
  EXPECT_TRUE(pok->accepted.empty());
  env11_.clear();
  n11_.on_packet(packet(12, 11, mencius::Message{*pok}));

  // Majority of promises (self + 12): phase 2 re-proposes 11's value.
  const auto* acc = find_sent<mencius::RevAccept>(env11_, 12);
  ASSERT_NE(acc, nullptr);
  ASSERT_FALSE(acc->items.empty());
  EXPECT_TRUE(acc->items[0].cmd == v);

  // 12 accepts; its ack completes the quorum and 11 decides + executes v.
  env12_.clear();
  n12_.on_packet(packet(11, 12, mencius::Message{*acc}));
  const auto* aok = find_sent<mencius::RevAcceptOk>(env12_, 11);
  ASSERT_NE(aok, nullptr);
  n11_.on_packet(packet(12, 11, mencius::Message{*aok}));
  ASSERT_FALSE(applied11_.empty());
  EXPECT_EQ(applied11_[0].first, 0);
  EXPECT_TRUE(applied11_[0].second == v);
}

TEST_F(RevocationFixture, SilentOwnerWithNothingGetsNoops) {
  // Node 11 proposes its own slot 1 and commits it; slot 0 (owner 10) stays
  // empty and blocks execution until it is revoked to a no-op.
  const kv::Command mine{kv::Op::kPut, 7, 77, 8, 0, 1};
  ASSERT_EQ(n11_.submit(mine), 1);
  mencius::AcceptOwnOk ok;
  ok.acceptor = 12;
  ok.indexes = {1};
  n11_.on_packet(packet(12, 11, mencius::Message{ok}));
  EXPECT_TRUE(applied11_.empty());  // blocked by slot 0
  env11_.clear();

  const auto* prep = starve_until_revocation();
  ASSERT_NE(prep, nullptr);
  n12_.on_packet(packet(11, 12, mencius::Message{*prep}));
  const auto* pok = find_sent<mencius::RevPrepareOk>(env12_, 11);
  ASSERT_NE(pok, nullptr);
  env11_.clear();
  n11_.on_packet(packet(12, 11, mencius::Message{*pok}));
  const auto* acc = find_sent<mencius::RevAccept>(env11_, 12);
  ASSERT_NE(acc, nullptr);
  ASSERT_FALSE(acc->items.empty());
  EXPECT_TRUE(acc->items[0].cmd.is_noop());  // nothing to recover: skip
  env12_.clear();
  n12_.on_packet(packet(11, 12, mencius::Message{*acc}));
  const auto* aok = find_sent<mencius::RevAcceptOk>(env12_, 11);
  ASSERT_NE(aok, nullptr);
  n11_.on_packet(packet(12, 11, mencius::Message{*aok}));

  // Slot 0 decided no-op; our own slot 1 now executes.
  ASSERT_EQ(applied11_.size(), 2u);
  EXPECT_TRUE(applied11_[0].second.is_noop());
  EXPECT_TRUE(applied11_[1].second == mine);
}

TEST_F(RevocationFixture, StaleRevokerIsIgnored) {
  // A promise at a higher ballot blocks older revocations.
  mencius::RevPrepare high;
  high.from = 12;
  high.bal = consensus::Ballot{10, 12};
  high.owner = 10;
  high.lo = 0;
  high.hi = 3;
  n11_.on_packet(packet(12, 11, mencius::Message{high}));
  env11_.clear();
  mencius::RevPrepare low = high;
  low.from = 12;
  low.bal = consensus::Ballot{5, 12};
  n11_.on_packet(packet(12, 11, mencius::Message{low}));
  // No promise reply for the stale ballot.
  EXPECT_EQ(find_sent<mencius::RevPrepareOk>(env11_, 12), nullptr);
}

TEST_F(RevocationFixture, RevokedOwnerJumpsPastItsSlots) {
  // An owner whose ballot-0 proposal is rejected re-proposes the value on a
  // fresh slot past the revoked range.
  ScriptedEnv env10;
  mencius::MenciusNode n10(group_of(10, {10, 11, 12}), env10,
                           revoke_options());
  std::vector<kv::Command> acked;
  n10.set_acked([&](const kv::Command& c) { acked.push_back(c); });
  n10.start();
  const kv::Command v{kv::Op::kPut, 3, 33, 8, 2, 1};
  ASSERT_EQ(n10.submit(v), 0);
  mencius::AcceptOwnRej rej;
  rej.acceptor = 11;
  rej.indexes = {0};
  rej.jump_past = 3;
  n10.on_packet(packet(11, 10, mencius::Message{rej}));
  EXPECT_GT(n10.next_own(), 3);  // jumped past the revoked range
  EXPECT_TRUE(acked.empty());    // client not acked twice / prematurely
}

}  // namespace
}  // namespace praft
