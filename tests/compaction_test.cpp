// Log compaction + snapshot state transfer, across layers: the storage
// primitives (ContiguousLog compacted prefix, SparseLog checkpoint floor,
// Applier snapshot hooks), the per-protocol catch-up paths (InstallSnapshot
// for Raft/Raft*, commit-floor snapshot learning for MultiPaxos/Mencius),
// and the chaos invariants that must hold across snapshot installs.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "chaos/runner.h"
#include "common/check.h"
#include "consensus/applier.h"
#include "consensus/log.h"
#include "consensus/registry.h"
#include "harness/cluster.h"
#include "harness/log_server.h"
#include "kv/store.h"

namespace praft {
namespace {

using consensus::LogIndex;

consensus::NodeIface& iface(harness::Cluster& cluster, int i) {
  return dynamic_cast<harness::LogServer&>(cluster.server(i)).node_iface();
}

// ---------------------------------------------------------------------------
// ContiguousLog: compacted prefix semantics.
// ---------------------------------------------------------------------------

struct TestEntry {
  consensus::Term term = 0;
  int value = 0;
};

TEST(ContiguousLogCompactionTest, CompactToMovesBaseAndKeepsSuffix) {
  consensus::ContiguousLog<TestEntry> log;
  for (int i = 1; i <= 10; ++i) log.append(TestEntry{i, i * 100});
  EXPECT_EQ(log.base_index(), 0);
  EXPECT_EQ(log.last_index(), 10);
  EXPECT_EQ(log.resident_entries(), 10u);

  log.compact_to(6);
  EXPECT_EQ(log.base_index(), 6);
  EXPECT_EQ(log.first_index(), 7);
  EXPECT_EQ(log.last_index(), 10);
  EXPECT_EQ(log.resident_entries(), 4u);
  // The entry at the base became the sentinel: its term still answers
  // prev-checks at the snapshot boundary.
  EXPECT_EQ(log.at(6).term, 6);
  EXPECT_EQ(log.at(7).value, 700);
  EXPECT_EQ(log.at(10).value, 1000);
  // Reads into the compacted prefix are protocol bugs.
  EXPECT_THROW(log.at(5), CheckFailure);
}

TEST(ContiguousLogCompactionTest, CompactToSameBaseIsANoOp) {
  consensus::ContiguousLog<TestEntry> log;
  log.append(TestEntry{1, 1});
  log.compact_to(1);
  log.compact_to(1);
  EXPECT_EQ(log.base_index(), 1);
  EXPECT_EQ(log.resident_entries(), 0u);
}

TEST(ContiguousLogCompactionTest, TruncateAfterInteractsWithCompactedPrefix) {
  consensus::ContiguousLog<TestEntry> log;
  for (int i = 1; i <= 10; ++i) log.append(TestEntry{i, i});
  log.compact_to(5);
  // Truncating above the base erases the suffix.
  log.truncate_after(7);
  EXPECT_EQ(log.last_index(), 7);
  // Truncating down TO the base keeps just the sentinel.
  log.truncate_after(5);
  EXPECT_EQ(log.last_index(), 5);
  EXPECT_EQ(log.resident_entries(), 0u);
  // Truncating INTO the compacted prefix is impossible: those entries are a
  // committed, snapshotted prefix.
  EXPECT_THROW(log.truncate_after(4), CheckFailure);
  // Appends continue above the sentinel.
  log.append(TestEntry{9, 99});
  EXPECT_EQ(log.last_index(), 6);
  EXPECT_EQ(log.at(6).value, 99);
}

TEST(ContiguousLogCompactionTest, ResetToRestartsAtSnapshotBoundary) {
  consensus::ContiguousLog<TestEntry> log;
  for (int i = 1; i <= 3; ++i) log.append(TestEntry{1, i});
  log.reset_to(42, TestEntry{7, 0});
  EXPECT_EQ(log.base_index(), 42);
  EXPECT_EQ(log.last_index(), 42);
  EXPECT_EQ(log.at(42).term, 7);
  log.append(TestEntry{8, 1});
  EXPECT_EQ(log.last_index(), 43);
}

// ---------------------------------------------------------------------------
// SparseLog: checkpoint floor.
// ---------------------------------------------------------------------------

TEST(SparseLogFloorTest, SetFloorPrunesAndRunsCleanup) {
  consensus::SparseLog<int> log;
  for (LogIndex i = 0; i <= 9; ++i) log.materialize(i) = static_cast<int>(i);
  int cleaned = 0;
  log.set_floor(4, [&](LogIndex, const int&) { ++cleaned; });
  EXPECT_EQ(cleaned, 5);  // slots 0..4
  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.floor(), 4);
  EXPECT_EQ(log.find(4), nullptr);
  ASSERT_NE(log.find(5), nullptr);
  // The floor is monotone: lowering it is a no-op.
  log.set_floor(2);
  EXPECT_EQ(log.floor(), 4);
}

TEST(SparseLogFloorTest, MaterializeBelowFloorIsABug) {
  consensus::SparseLog<int> log;
  log.set_floor(10);
  EXPECT_THROW((void)log.materialize(10), CheckFailure);
  EXPECT_THROW((void)log.materialize(3), CheckFailure);
  log.materialize(11) = 1;  // first slot above the floor is fine
  EXPECT_EQ(log.size(), 1u);
}

// ---------------------------------------------------------------------------
// Applier: snapshot hooks.
// ---------------------------------------------------------------------------

TEST(ApplierSnapshotTest, InstallJumpsWatermarksAndRestoresState) {
  consensus::Applier applier;
  kv::KvStore store;
  applier.set_state_hooks([&store] { return store.image(); },
                          [&store](const kv::StoreImage& img,
                                   consensus::LogIndex) { store.restore(img); });

  kv::KvStore donor;
  kv::Command put;
  put.op = kv::Op::kPut;
  put.key = 5;
  put.value = 123;
  donor.apply(put);

  consensus::Snapshot snap;
  snap.last_index = 40;
  snap.state = donor.image();
  EXPECT_TRUE(applier.install_snapshot(snap));
  EXPECT_EQ(applier.applied(), 40);
  EXPECT_EQ(applier.commit_index(), 40);
  EXPECT_EQ(store.fingerprint(), donor.fingerprint());
  // Stale snapshots are rejected (no backward jumps, no duplicate applies).
  consensus::Snapshot stale;
  stale.last_index = 39;
  stale.state = donor.image();
  EXPECT_FALSE(applier.install_snapshot(stale));
  EXPECT_EQ(applier.applied(), 40);
}

TEST(ApplierSnapshotTest, DrainResumesContiguouslyAfterInstall) {
  consensus::Applier applier;
  kv::KvStore store;
  applier.set_state_hooks([&store] { return store.image(); },
                          [&store](const kv::StoreImage& img,
                                   consensus::LogIndex) { store.restore(img); });
  std::vector<consensus::LogIndex> applied;
  applier.set_apply([&](consensus::LogIndex i, const kv::Command&) {
    applied.push_back(i);
  });

  consensus::Snapshot snap;
  snap.last_index = 10;
  EXPECT_TRUE(applier.install_snapshot(snap));

  const kv::Command noop = kv::noop_command();
  applier.commit_to(12, [&](consensus::LogIndex) { return &noop; });
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[0], 11);  // exactly-once: resumes right after the jump
  EXPECT_EQ(applied[1], 12);
}

// ---------------------------------------------------------------------------
// CompactionTrigger: the shared size/interval policy evaluation.
// ---------------------------------------------------------------------------

TEST(CompactionTriggerTest, SizeIntervalAndForceLegs) {
  consensus::TimingOptions opt;
  consensus::CompactionTrigger trig;

  // Disabled policy: only force fires, and never with nothing to compact.
  EXPECT_FALSE(trig.due(opt, 100, msec(0), /*force=*/false));
  EXPECT_TRUE(trig.due(opt, 100, msec(0), /*force=*/true));
  EXPECT_FALSE(trig.due(opt, 0, msec(0), /*force=*/true));

  // Size leg: strictly above the cap.
  opt.compaction_log_cap = 10;
  EXPECT_FALSE(trig.due(opt, 10, msec(0), false));
  EXPECT_TRUE(trig.due(opt, 11, msec(0), false));

  // Interval leg: fires once an interval has elapsed since the last
  // compaction (node start counts as time zero).
  opt.compaction_log_cap = 0;
  opt.compaction_interval = msec(500);
  EXPECT_FALSE(trig.due(opt, 1, msec(0), false));
  EXPECT_FALSE(trig.due(opt, 1, msec(499), false));
  EXPECT_TRUE(trig.due(opt, 1, msec(500), false));
  trig.fired(msec(500));
  EXPECT_FALSE(trig.due(opt, 1, msec(999), false));
  EXPECT_TRUE(trig.due(opt, 1, msec(1000), false));
}

TEST(CompactionTriggerTest, IntervalOnlyPolicyCompactsUnderLightLoad) {
  // A cap would never fire here (the log stays tiny); the interval leg must
  // still advance the compaction floor on every replica — including IDLE
  // ones after traffic stops, where no apply advance re-evaluates the
  // trigger (heartbeat/maintenance ticks carry it instead).
  for (const std::string protocol : consensus::protocol_names()) {
    harness::ClusterConfig cfg;
    cfg.num_replicas = 3;
    cfg.seed = 13;
    harness::Cluster cluster(cfg);
    consensus::TimingOptions timing;
    timing.election_timeout_min = msec(300);
    timing.election_timeout_max = msec(600);
    timing.heartbeat_interval = msec(60);
    timing.compaction_interval = sec(1);
    cluster.build_replicas(protocol, timing);
    if (!cluster.server(0).leaderless()) {
      cluster.establish_leader(0, sec(10));
    } else {
      cluster.run_for(msec(500));
    }
    kv::WorkloadConfig wl;
    wl.read_fraction = 0.0;
    cluster.add_clients(1, wl, cluster.sim().now());
    cluster.run_for(sec(6));
    cluster.stop_clients();
    // Idle tail: several intervals with no new applies anywhere.
    cluster.run_for(sec(4));
    for (int i = 0; i < cluster.num_replicas(); ++i) {
      EXPECT_GT(iface(cluster, i).applied_index(), 0)
          << protocol << " replica " << i;
      EXPECT_GT(iface(cluster, i).compaction_floor(), 0)
          << protocol << " replica " << i;
      EXPECT_EQ(iface(cluster, i).compactable_entries(), 0u)
          << protocol << " replica " << i
          << " kept an applied tail uncompacted while idle";
    }
  }
}

// ---------------------------------------------------------------------------
// Registry ergonomics: unknown names list what IS registered.
// ---------------------------------------------------------------------------

TEST(RegistryErrorTest, UnknownProtocolListsRegisteredNames) {
  harness::ClusterConfig cfg;
  cfg.num_replicas = 3;
  harness::Cluster cluster(cfg);
  try {
    cluster.build_replicas("raftt");
    FAIL() << "expected a CheckFailure for the unknown protocol";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("raftt"), std::string::npos) << what;
    EXPECT_NE(what.find("registered protocols"), std::string::npos) << what;
    EXPECT_NE(what.find("multipaxos"), std::string::npos) << what;
    EXPECT_NE(what.find("mencius"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// End-to-end per-protocol: a crashed replica catches up via snapshot
// transfer instead of full log replay, and the cluster converges.
// ---------------------------------------------------------------------------

struct CatchUp {
  bool caught_up = false;
  int64_t snapshots = 0;
  size_t max_resident = 0;
  bool stores_converged = false;
  consensus::LogIndex log_len = 0;
};

CatchUp run_catchup(const std::string& protocol, size_t cap,
                    Duration crash_for = sec(8)) {
  harness::ClusterConfig cfg;
  cfg.num_replicas = 5;
  cfg.seed = 99;
  harness::Cluster cluster(cfg);

  consensus::TimingOptions timing;
  timing.election_timeout_min = msec(300);
  timing.election_timeout_max = msec(600);
  timing.heartbeat_interval = msec(60);
  timing.compaction_log_cap = cap;
  cluster.build_replicas(protocol, timing);

  if (!cluster.server(0).leaderless()) {
    cluster.establish_leader(0, sec(10));
  } else {
    cluster.run_for(msec(500));
  }

  const int victim = 2;
  const Time down_from = cluster.sim().now() + sec(1);
  const Time down_to = down_from + crash_for;
  cluster.net().faults().crash(cluster.server(victim).id(), down_from,
                               down_to);

  kv::WorkloadConfig wl;
  wl.read_fraction = 0.5;
  wl.value_size = 8;
  cluster.add_clients(4, wl, cluster.sim().now());

  CatchUp out;
  while (cluster.sim().now() < down_to) {
    cluster.run_for(msec(100));
    for (int i = 0; i < cluster.num_replicas(); ++i) {
      out.max_resident =
          std::max(out.max_resident, iface(cluster, i).resident_log_entries());
    }
  }
  consensus::LogIndex target = 0;
  for (int i = 0; i < cluster.num_replicas(); ++i) {
    if (i == victim) continue;
    target = std::max(target, iface(cluster, i).applied_index());
  }
  out.log_len = target;

  const Time deadline = down_to + sec(30);
  while (iface(cluster, victim).applied_index() < target &&
         cluster.sim().now() < deadline) {
    cluster.run_for(msec(50));
  }
  out.caught_up = iface(cluster, victim).applied_index() >= target;
  out.snapshots = iface(cluster, victim).snapshots_installed();

  cluster.stop_clients();
  cluster.run_for(sec(5));
  out.stores_converged = true;
  consensus::LogIndex max_applied = 0;
  for (int i = 0; i < cluster.num_replicas(); ++i) {
    max_applied = std::max(max_applied, iface(cluster, i).applied_index());
  }
  for (int i = 1; i < cluster.num_replicas(); ++i) {
    if (iface(cluster, i).applied_index() != max_applied ||
        cluster.server(i).store().fingerprint() !=
            cluster.server(0).store().fingerprint()) {
      out.stores_converged = false;
    }
  }
  return out;
}

class SnapshotCatchUpTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SnapshotCatchUpTest, LaggardCatchesUpViaSnapshotAndConverges) {
  const CatchUp r = run_catchup(GetParam(), /*cap=*/128);
  EXPECT_TRUE(r.caught_up) << GetParam() << " never reached the live "
                           << "replicas' applied watermark " << r.log_len;
  EXPECT_GE(r.snapshots, 1) << GetParam()
                            << " caught up by log replay, not state transfer";
  EXPECT_TRUE(r.stores_converged) << GetParam();
  // Bounded memory: no replica's resident log grew anywhere near the
  // uncompacted log length (cap + un-appliable in-flight tail only).
  EXPECT_LT(r.max_resident, static_cast<size_t>(r.log_len))
      << GetParam() << " kept the whole log resident";
}

TEST_P(SnapshotCatchUpTest, WithoutCompactionCatchUpIsFullReplay) {
  const CatchUp r = run_catchup(GetParam(), /*cap=*/0);
  EXPECT_TRUE(r.caught_up) << GetParam();
  EXPECT_EQ(r.snapshots, 0) << GetParam()
                            << " shipped a snapshot with compaction off";
  EXPECT_TRUE(r.stores_converged) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SnapshotCatchUpTest,
                         ::testing::Values("raft", "raftstar", "multipaxos",
                                           "mencius"));

// ---------------------------------------------------------------------------
// Edge: a forced snapshot exactly at the commit floor, then more traffic.
// ---------------------------------------------------------------------------

TEST(CompactionEdgeTest, SnapshotExactlyAtCommitFloor) {
  for (const std::string protocol : consensus::protocol_names()) {
    harness::ClusterConfig cfg;
    cfg.num_replicas = 3;
    cfg.seed = 7;
    harness::Cluster cluster(cfg);
    consensus::TimingOptions timing;
    timing.election_timeout_min = msec(300);
    timing.election_timeout_max = msec(600);
    timing.heartbeat_interval = msec(60);
    cluster.build_replicas(protocol, timing);
    if (!cluster.server(0).leaderless()) {
      cluster.establish_leader(0, sec(10));
    } else {
      cluster.run_for(msec(500));
    }
    kv::WorkloadConfig wl;
    wl.read_fraction = 0.0;
    cluster.add_clients(2, wl, cluster.sim().now());
    cluster.run_for(sec(2));

    // Force a checkpoint on every replica with the commit floor fully
    // applied (quiesce first), i.e. the snapshot lands exactly at the
    // commit floor, then resume traffic across the boundary.
    cluster.stop_clients();
    cluster.run_for(sec(2));
    for (int i = 0; i < cluster.num_replicas(); ++i) {
      auto& node = iface(cluster, i);
      node.compact();
      EXPECT_EQ(node.compaction_floor(), node.applied_index())
          << protocol << " replica " << i;
      EXPECT_EQ(node.compactable_entries(), 0u) << protocol;
    }
    cluster.add_clients(2, wl, cluster.sim().now());
    cluster.run_for(sec(3));
    cluster.stop_clients();
    cluster.run_for(sec(3));

    consensus::LogIndex max_applied = 0;
    for (int i = 0; i < cluster.num_replicas(); ++i) {
      max_applied = std::max(max_applied, iface(cluster, i).applied_index());
    }
    for (int i = 0; i < cluster.num_replicas(); ++i) {
      EXPECT_EQ(iface(cluster, i).applied_index(), max_applied)
          << protocol << " replica " << i << " stalled after the checkpoint";
      EXPECT_EQ(cluster.server(i).store().fingerprint(),
                cluster.server(0).store().fingerprint())
          << protocol << " replica " << i;
    }
    // Progress actually crossed the snapshot boundary.
    EXPECT_GT(max_applied, iface(cluster, 0).compaction_floor()) << protocol;
    EXPECT_GT(iface(cluster, 0).compaction_floor(), 0) << protocol;
  }
}

// ---------------------------------------------------------------------------
// Edge: the snapshot-bearing traffic races a partition (the install arrives
// while the laggard is still cut off from part of the cluster).
// ---------------------------------------------------------------------------

TEST(CompactionEdgeTest, InstallDuringPartition) {
  for (const std::string protocol : consensus::protocol_names()) {
    harness::ClusterConfig cfg;
    cfg.num_replicas = 5;
    cfg.seed = 21;
    harness::Cluster cluster(cfg);
    consensus::TimingOptions timing;
    timing.election_timeout_min = msec(300);
    timing.election_timeout_max = msec(600);
    timing.heartbeat_interval = msec(60);
    timing.compaction_log_cap = 96;
    cluster.build_replicas(protocol, timing);
    if (!cluster.server(0).leaderless()) {
      cluster.establish_leader(0, sec(10));
    } else {
      cluster.run_for(msec(500));
    }

    // The laggard is first isolated completely, then — while snapshots may
    // already be in flight towards it — stays partitioned from two more
    // replicas for another stretch: the install must work with only a
    // partial view of the cluster.
    const int victim = 2;
    const NodeId vid = cluster.server(victim).id();
    const Time t0 = cluster.sim().now() + sec(1);
    auto& faults = cluster.net().faults();
    faults.isolate(vid, t0, t0 + sec(6));
    faults.partition_pair(vid, cluster.server(3).id(), t0, t0 + sec(10));
    faults.partition_pair(vid, cluster.server(4).id(), t0, t0 + sec(10));

    kv::WorkloadConfig wl;
    wl.read_fraction = 0.5;
    cluster.add_clients(4, wl, cluster.sim().now());
    cluster.run_until(t0 + sec(12));
    cluster.stop_clients();
    cluster.run_for(sec(8));

    consensus::LogIndex max_applied = 0;
    for (int i = 0; i < cluster.num_replicas(); ++i) {
      max_applied = std::max(max_applied, iface(cluster, i).applied_index());
    }
    for (int i = 0; i < cluster.num_replicas(); ++i) {
      EXPECT_EQ(iface(cluster, i).applied_index(), max_applied)
          << protocol << " replica " << i << " stalled";
      EXPECT_EQ(cluster.server(i).store().fingerprint(),
                cluster.server(0).store().fingerprint())
          << protocol << " replica " << i << " diverged";
    }
  }
}

// ---------------------------------------------------------------------------
// Chaos: the full seeded fault schedules with aggressive compaction, all
// protocols — every invariant (agreement, exactly-once apply across
// installs, linearizability, snapshot soundness, bounded memory,
// convergence) stays green.
// ---------------------------------------------------------------------------

TEST(CompactionChaosTest, AggressiveCompactionSurvivesASeedBatch) {
  uint64_t installs = 0;
  for (const std::string& protocol : consensus::protocol_names()) {
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      chaos::RunOptions opt;
      opt.protocol = protocol;
      opt.seed = seed;
      opt.compaction_log_cap = 48;
      const chaos::RunResult r = chaos::run_one(opt);
      EXPECT_TRUE(r.ok) << protocol << " seed " << seed << ": "
                        << (r.violations.empty() ? "?" : r.violations[0]);
      EXPECT_GT(r.log_length, 0);
      installs += r.snapshot_installs;
    }
  }
  // The batch actually exercised snapshot catch-up somewhere.
  EXPECT_GT(installs, 0u);
}

}  // namespace
}  // namespace praft
