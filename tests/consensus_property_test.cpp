// Property-style sweeps (TEST_P) over protocols, seeds and fault schedules:
// for every execution the agreement, prefix-consistency and convergence
// invariants must hold. These are the runtime analogues of the TLA+
// invariants in the paper's Appendix B (OneValuePerBallot / LogMatchingInv /
// LeaderCompletenessInv).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "test_util.h"

namespace praft {
namespace {

using test::ApplyRecord;

enum class Proto { kRaft, kRaftStar, kPaxos };

std::string proto_name(Proto p) {
  switch (p) {
    case Proto::kRaft: return "Raft";
    case Proto::kRaftStar: return "RaftStar";
    case Proto::kPaxos: return "Paxos";
  }
  return "?";
}

harness::Cluster::ServerFactory factory_for(
    Proto p, std::shared_ptr<ApplyRecord> record) {
  switch (p) {
    case Proto::kRaft:
      return test::make_factory<harness::RaftProtocol>(
          test::fast_options<raft::Options>(), record);
    case Proto::kRaftStar:
      return test::make_factory<harness::RaftStarProtocol>(
          test::fast_options<raftstar::Options>(), record);
    case Proto::kPaxos:
      return test::make_factory<harness::PaxosProtocol>(
          test::fast_options<paxos::Options>(), record);
  }
  return {};
}

struct ChaosCase {
  Proto proto;
  uint64_t seed;
  double drop_rate;
  bool crash_leader;
  bool partition_minority;
};

class ChaosTest : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosTest, AgreementAndConvergence) {
  const ChaosCase& c = GetParam();
  auto record = std::make_shared<ApplyRecord>();
  harness::Cluster cluster(test::lan_config(c.seed));
  cluster.build_replicas(factory_for(c.proto, record));
  cluster.net().faults().set_drop_rate(c.drop_rate);
  ASSERT_GE(cluster.establish_leader(static_cast<int>(c.seed % 5)), 0);
  cluster.metrics().set_window(0, kTimeMax);
  cluster.add_clients(1, test::small_workload(), cluster.sim().now());
  cluster.run_for(sec(2));

  if (c.crash_leader) {
    const int leader = cluster.leader_replica();
    if (leader >= 0) {
      const Time t = cluster.sim().now();
      cluster.net().faults().crash(cluster.server(leader).id(), t, t + sec(3));
    }
  }
  if (c.partition_minority) {
    const Time t = cluster.sim().now();
    cluster.net().faults().isolate(cluster.server(1).id(), t + sec(1),
                                   t + sec(4));
    cluster.net().faults().isolate(cluster.server(2).id(), t + sec(2),
                                   t + sec(5));
  }
  cluster.run_for(sec(8));

  // Heal everything and let the system quiesce.
  cluster.net().faults().set_drop_rate(0.0);
  cluster.stop_clients();
  cluster.run_for(sec(6));

  EXPECT_FALSE(record->violation)
      << proto_name(c.proto) << " violated agreement (seed " << c.seed << ")";
  EXPECT_GT(record->observations, 0);
  EXPECT_TRUE(test::stores_converged(cluster))
      << proto_name(c.proto) << " diverged (seed " << c.seed << ")";
  EXPECT_GT(cluster.metrics().completed(), 0);
}

std::vector<ChaosCase> chaos_cases() {
  std::vector<ChaosCase> cases;
  int i = 0;
  for (Proto p : {Proto::kRaft, Proto::kRaftStar, Proto::kPaxos}) {
    for (uint64_t seed : {101ull, 202ull, 303ull}) {
      ChaosCase c;
      c.proto = p;
      c.seed = seed + static_cast<uint64_t>(i);
      c.drop_rate = (seed % 2 == 0) ? 0.03 : 0.0;
      c.crash_leader = (i % 2 == 0);
      c.partition_minority = (i % 3 == 0);
      cases.push_back(c);
      ++i;
    }
  }
  // A few harsher mixes.
  cases.push_back({Proto::kRaft, 777, 0.08, true, true});
  cases.push_back({Proto::kRaftStar, 888, 0.08, true, true});
  cases.push_back({Proto::kPaxos, 999, 0.08, true, true});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChaosTest, ::testing::ValuesIn(chaos_cases()),
    [](const ::testing::TestParamInfo<ChaosCase>& info) {
      const auto& c = info.param;
      return proto_name(c.proto) + "_seed" + std::to_string(c.seed) + "_drop" +
             std::to_string(static_cast<int>(c.drop_rate * 100)) +
             (c.crash_leader ? "_crash" : "") +
             (c.partition_minority ? "_part" : "");
    });

}  // namespace
}  // namespace praft
