#include <gtest/gtest.h>

#include "raftstar/node.h"
#include "scripted_env.h"
#include "test_util.h"

namespace praft {
namespace {

using harness::RaftStarProtocol;
using test::ApplyRecord;
using test::ScriptedEnv;

consensus::Group group_of(NodeId self, std::initializer_list<NodeId> members) {
  consensus::Group g;
  g.self = self;
  g.members = members;
  return g;
}

raftstar::Options unit_options() {
  raftstar::Options o;
  o.election_timeout_min = msec(150);
  o.election_timeout_max = msec(300);
  o.heartbeat_interval = msec(50);
  o.batch_delay = 0;
  return o;
}

net::Packet packet(NodeId from, NodeId to, raftstar::Message m) {
  return net::Packet{from, to, raftstar::wire_size(m), std::move(m)};
}

raftstar::AppendEntries make_append(consensus::Term term, NodeId leader,
                                    consensus::LogIndex prev,
                                    consensus::Term prev_term,
                                    std::vector<raftstar::Entry> ents,
                                    consensus::LogIndex commit = 0) {
  raftstar::AppendEntries ae;
  ae.term = term;
  ae.leader = leader;
  ae.prev_index = prev;
  ae.prev_term = prev_term;
  ae.entries = std::move(ents);
  ae.commit = commit;
  return ae;
}

// ---------------------------------------------------------------------------
// Raft* difference #1: vote replies carry the voter's extra entries and the
// candidate extends its log with safe values (paper Fig. 2a).
// ---------------------------------------------------------------------------
TEST(RaftStarUnitTest, VoteReplyCarriesExtraEntries) {
  ScriptedEnv env;
  raftstar::RaftStarNode n(group_of(1, {0, 1, 2}), env, unit_options());
  n.start();
  // Voter accepts two entries at term 1 from leader 2.
  kv::Command c1{kv::Op::kPut, 1, 11, 8, 9, 1};
  kv::Command c2{kv::Op::kPut, 2, 22, 8, 9, 2};
  n.on_packet(packet(2, 1,
                     raftstar::Message{make_append(
                         1, 2, 0, 0,
                         {raftstar::Entry{1, c1}, raftstar::Entry{1, c2}})}));
  EXPECT_EQ(n.last_index(), 2);
  EXPECT_EQ(n.log_bal(), 1);
  env.clear();
  // Candidate 0 at term 2 whose log is EMPTY but whose last term ties ours?
  // No: our last term is 1 > candidate's 0, so it must be rejected.
  n.on_packet(packet(0, 1, raftstar::Message{raftstar::RequestVote{2, 0, 0, 0}}));
  auto sent = env.take_for(0);
  ASSERT_EQ(sent.size(), 1u);
  {
    const auto* r = std::get_if<raftstar::VoteReply>(
        std::any_cast<raftstar::Message>(&sent[0].payload));
    ASSERT_NE(r, nullptr);
    EXPECT_FALSE(r->granted);
  }
  // Candidate 2 at term 3 with the same last term (1) but a SHORTER log
  // (last_index 1 < our 2): Raft would reject; Raft* also rejects by the
  // up-to-date rule... candidate must be at least as long on equal terms.
  n.on_packet(packet(2, 1, raftstar::Message{raftstar::RequestVote{3, 2, 1, 1}}));
  sent = env.take_for(2);
  ASSERT_EQ(sent.size(), 1u);
  {
    const auto* r = std::get_if<raftstar::VoteReply>(
        std::any_cast<raftstar::Message>(&sent[0].payload));
    ASSERT_NE(r, nullptr);
    EXPECT_FALSE(r->granted);
  }
  // Candidate 0 at term 6 with a HIGHER last term (2 > our creation term 1)
  // but a SHORTER log: granted, and the reply must carry our extra entry
  // (index 2) for safe-value selection. A term-5 append first re-stamps our
  // log ballot to 5 while the entries keep creation term 1.
  n.on_packet(packet(2, 1,
                     raftstar::Message{make_append(
                         5, 2, 0, 0,
                         {raftstar::Entry{1, c1}, raftstar::Entry{1, c2}})}));
  env.clear();
  n.on_packet(packet(0, 1, raftstar::Message{raftstar::RequestVote{6, 0, 1, 2}}));
  sent = env.take_for(0);
  ASSERT_EQ(sent.size(), 1u);
  const auto* r = std::get_if<raftstar::VoteReply>(
      std::any_cast<raftstar::Message>(&sent[0].payload));
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->granted);
  EXPECT_EQ(r->extra_from, 2);
  ASSERT_EQ(r->extras.size(), 1u);
  EXPECT_TRUE(r->extras[0].cmd == c2);
  EXPECT_EQ(r->log_bal, 5);  // re-stamped by the term-5 append
}

TEST(RaftStarUnitTest, LeaderAdoptsSafeValuesFromExtras) {
  ScriptedEnv env;
  raftstar::RaftStarNode n(group_of(0, {0, 1, 2}), env, unit_options());
  n.start();
  n.force_election();
  ASSERT_EQ(n.current_term(), 1);
  // Voter 1 grants with one extra entry at index 1 (ballot 0 log).
  kv::Command c1{kv::Op::kPut, 7, 77, 8, 9, 1};
  raftstar::VoteReply vr;
  vr.term = 1;
  vr.voter = 1;
  vr.granted = true;
  vr.log_bal = 0;
  vr.extra_from = 1;
  vr.extras = {raftstar::Entry{0, c1}};
  n.on_packet(packet(1, 0, raftstar::Message{vr}));
  ASSERT_TRUE(n.is_leader());
  // The leader extended its log with the safe value, re-stamped at term 1.
  ASSERT_EQ(n.last_index(), 1);
  EXPECT_TRUE(n.entry_at(1).cmd == c1);
  EXPECT_EQ(n.entry_at(1).term, 1);
  EXPECT_EQ(n.log_bal(), 1);
}

TEST(RaftStarUnitTest, LeaderPrefersHighestBallotExtra) {
  ScriptedEnv env;
  // Group of 5: candidate needs 2 more votes, letting us send two different
  // extras and check the higher-ballot one wins.
  raftstar::RaftStarNode n(group_of(0, {0, 1, 2, 3, 4}), env, unit_options());
  n.start();
  n.force_election();
  kv::Command low{kv::Op::kPut, 1, 1, 8, 9, 1};
  kv::Command high{kv::Op::kPut, 2, 2, 8, 9, 2};
  raftstar::VoteReply v1;
  v1.term = 1;
  v1.voter = 1;
  v1.granted = true;
  v1.log_bal = 3;
  v1.extra_from = 1;
  v1.extras = {raftstar::Entry{0, low}};
  raftstar::VoteReply v2 = v1;
  v2.voter = 2;
  v2.log_bal = 7;
  v2.extras = {raftstar::Entry{0, high}};
  n.on_packet(packet(1, 0, raftstar::Message{v1}));
  n.on_packet(packet(2, 0, raftstar::Message{v2}));
  ASSERT_TRUE(n.is_leader());
  ASSERT_EQ(n.last_index(), 1);
  EXPECT_TRUE(n.entry_at(1).cmd == high);  // ballot 7 beats ballot 3
}

// ---------------------------------------------------------------------------
// Raft* difference #2: a follower REJECTS appends whose coverage is shorter
// than its log — it never erases (paper §3, Appendix B.2 AcceptEntries).
// ---------------------------------------------------------------------------
TEST(RaftStarUnitTest, FollowerRejectsShortCoverage) {
  ScriptedEnv env;
  raftstar::RaftStarNode n(group_of(1, {0, 1, 2}), env, unit_options());
  n.start();
  kv::Command c1{kv::Op::kPut, 1, 11, 8, 9, 1};
  kv::Command c2{kv::Op::kPut, 2, 22, 8, 9, 2};
  kv::Command c3{kv::Op::kPut, 3, 33, 8, 9, 3};
  n.on_packet(packet(
      2, 1,
      raftstar::Message{make_append(1, 2, 0, 0,
                                    {raftstar::Entry{1, c1},
                                     raftstar::Entry{1, c2},
                                     raftstar::Entry{1, c3}})}));
  ASSERT_EQ(n.last_index(), 3);
  env.clear();
  // New leader at term 2 sends coverage only up to index 2: REJECTED, and
  // the follower's log is untouched (contrast with RaftUnitTest
  // FollowerErasesConflictingSuffix).
  kv::Command cx{kv::Op::kPut, 9, 99, 8, 7, 1};
  n.on_packet(packet(0, 1,
                     raftstar::Message{make_append(
                         2, 0, 1, 1, {raftstar::Entry{2, cx}})}));
  EXPECT_EQ(n.last_index(), 3);
  EXPECT_TRUE(n.entry_at(3).cmd == c3);
  auto sent = env.take_for(0);
  ASSERT_EQ(sent.size(), 1u);
  const auto* r = std::get_if<raftstar::AppendReply>(
      std::any_cast<raftstar::Message>(&sent[0].payload));
  ASSERT_NE(r, nullptr);
  EXPECT_FALSE(r->ok);
  EXPECT_EQ(r->follower_last, 3);
  EXPECT_EQ(r->conflict_hint, 0);  // prev matched; coverage was short
  // Full-coverage replacement at term 2 is accepted and overwrites.
  n.on_packet(packet(0, 1,
                     raftstar::Message{make_append(
                         2, 0, 1, 1,
                         {raftstar::Entry{2, cx}, raftstar::Entry{2, cx}})}));
  EXPECT_EQ(n.last_index(), 3);
  EXPECT_TRUE(n.entry_at(2).cmd == cx);
  EXPECT_TRUE(n.entry_at(3).cmd == cx);
}

TEST(RaftStarUnitTest, LeaderExtendsWithNoopsWhenFollowerLonger) {
  ScriptedEnv env;
  raftstar::RaftStarNode n(group_of(0, {0, 1, 2}), env, unit_options());
  n.start();
  n.force_election();
  raftstar::VoteReply vr;
  vr.term = 1;
  vr.voter = 1;
  vr.granted = true;
  vr.log_bal = 0;
  n.on_packet(packet(1, 0, raftstar::Message{vr}));
  ASSERT_TRUE(n.is_leader());
  ASSERT_EQ(n.last_index(), 0);
  env.clear();
  // Follower 2 reports a longer log (it was not in the vote quorum).
  raftstar::AppendReply rej;
  rej.term = 1;
  rej.follower = 2;
  rej.ok = false;
  rej.follower_last = 4;
  rej.conflict_hint = 0;
  n.on_packet(packet(2, 0, raftstar::Message{rej}));
  EXPECT_EQ(n.last_index(), 4);  // extended with no-ops to cover
  for (consensus::LogIndex i = 1; i <= 4; ++i) {
    EXPECT_TRUE(n.entry_at(i).cmd.is_noop());
  }
  // And it resent an append covering the follower's whole log.
  auto sent = env.take_for(2);
  ASSERT_FALSE(sent.empty());
  const auto* ae = std::get_if<raftstar::AppendEntries>(
      std::any_cast<raftstar::Message>(&sent.back().payload));
  ASSERT_NE(ae, nullptr);
  EXPECT_EQ(ae->prev_index + static_cast<consensus::LogIndex>(
                                  ae->entries.size()),
            4);
}

// ---------------------------------------------------------------------------
// Raft* difference #3: ballots are overwritten on every accepted append, so
// commit needs no §5.4.2 restriction.
// ---------------------------------------------------------------------------
TEST(RaftStarUnitTest, BallotOverwrittenOnAppend) {
  ScriptedEnv env;
  raftstar::RaftStarNode n(group_of(1, {0, 1, 2}), env, unit_options());
  n.start();
  kv::Command c1{kv::Op::kPut, 1, 11, 8, 9, 1};
  n.on_packet(packet(2, 1,
                     raftstar::Message{make_append(
                         1, 2, 0, 0, {raftstar::Entry{1, c1}})}));
  EXPECT_EQ(n.log_bal(), 1);
  // A heartbeat-like append at term 5 covering the log re-stamps ballots
  // even though the entry's creation term stays 1.
  n.on_packet(packet(0, 1, raftstar::Message{make_append(5, 0, 1, 1, {})}));
  EXPECT_EQ(n.log_bal(), 5);
  EXPECT_EQ(n.entry_at(1).term, 1);
}

TEST(RaftStarUnitTest, CommitsPriorTermEntryWithoutNoop) {
  // A new Raft* leader commits inherited entries directly by counting —
  // no term-start no-op entry is appended (unlike RaftNode::become_leader).
  ScriptedEnv env;
  raftstar::RaftStarNode n(group_of(0, {0, 1, 2}), env, unit_options());
  std::vector<consensus::LogIndex> applied;
  n.set_apply([&](consensus::LogIndex i, const kv::Command&) {
    applied.push_back(i);
  });
  n.start();
  n.force_election();
  kv::Command c1{kv::Op::kPut, 7, 77, 8, 9, 1};
  raftstar::VoteReply vr;
  vr.term = 1;
  vr.voter = 1;
  vr.granted = true;
  vr.log_bal = 0;
  vr.extra_from = 1;
  vr.extras = {raftstar::Entry{0, c1}};
  n.on_packet(packet(1, 0, raftstar::Message{vr}));
  ASSERT_TRUE(n.is_leader());
  EXPECT_EQ(n.last_index(), 1);  // no extra no-op entry
  // One follower acks coverage of index 1 => majority (2/3) => commit.
  raftstar::AppendReply ok;
  ok.term = 1;
  ok.follower = 1;
  ok.ok = true;
  ok.match_index = 1;
  ok.follower_last = 1;
  n.on_packet(packet(1, 0, raftstar::Message{ok}));
  EXPECT_EQ(n.commit_index(), 1);
  EXPECT_EQ(applied.size(), 1u);
}

TEST(RaftStarUnitTest, CommitGateBlocksAndRetries) {
  ScriptedEnv env;
  raftstar::RaftStarNode n(group_of(0, {0, 1, 2}), env, unit_options());
  n.start();
  n.force_election();
  raftstar::VoteReply vr;
  vr.term = 1;
  vr.voter = 1;
  vr.granted = true;
  vr.log_bal = 0;
  n.on_packet(packet(1, 0, raftstar::Message{vr}));
  ASSERT_TRUE(n.is_leader());
  bool allow = false;
  n.set_commit_gate([&](consensus::LogIndex) { return allow; });
  n.submit(kv::Command{kv::Op::kPut, 1, 1, 8, 0, 1});
  env.advance(msec(5));
  raftstar::AppendReply ok;
  ok.term = 1;
  ok.follower = 1;
  ok.ok = true;
  ok.match_index = 1;
  ok.follower_last = 1;
  n.on_packet(packet(1, 0, raftstar::Message{ok}));
  EXPECT_EQ(n.commit_index(), 0);  // gated (PQL semantics)
  allow = true;
  n.retry_commit();
  EXPECT_EQ(n.commit_index(), 1);
}

// ---------------------------------------------------------------------------
// Cluster-level behaviour mirrors Raft's.
// ---------------------------------------------------------------------------

TEST(RaftStarClusterTest, ElectsAndCommits) {
  harness::Cluster cluster(test::lan_config(11));
  cluster.build_replicas(test::make_factory<RaftStarProtocol>(
      test::fast_options<raftstar::Options>()));
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.metrics().set_window(0, kTimeMax);
  cluster.add_clients(2, test::small_workload(), cluster.sim().now());
  cluster.run_for(sec(5));
  EXPECT_GT(cluster.metrics().completed(), 500);
}

TEST(RaftStarClusterTest, FailoverPreservesAgreement) {
  auto record = std::make_shared<ApplyRecord>();
  harness::Cluster cluster(test::lan_config(12));
  cluster.build_replicas(test::make_factory<RaftStarProtocol>(
      test::fast_options<raftstar::Options>(), record));
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.add_clients(2, test::small_workload(), cluster.sim().now());
  cluster.run_for(sec(2));
  const Time crash_at = cluster.sim().now();
  cluster.net().faults().crash(cluster.server(0).id(), crash_at,
                               crash_at + sec(5));
  cluster.run_for(sec(3));
  EXPECT_GE(cluster.leader_replica(), 1);
  cluster.run_for(sec(4));
  cluster.stop_clients();
  cluster.run_for(sec(3));
  EXPECT_FALSE(record->violation);
  EXPECT_TRUE(test::stores_converged(cluster));
}

TEST(RaftStarClusterTest, ConvergesUnderMessageLoss) {
  auto record = std::make_shared<ApplyRecord>();
  harness::Cluster cluster(test::lan_config(13));
  cluster.build_replicas(test::make_factory<RaftStarProtocol>(
      test::fast_options<raftstar::Options>(), record));
  cluster.net().faults().set_drop_rate(0.05);
  ASSERT_GE(cluster.establish_leader(0), 0);
  cluster.add_clients(1, test::small_workload(), cluster.sim().now());
  cluster.run_for(sec(6));
  cluster.net().faults().set_drop_rate(0.0);
  cluster.stop_clients();
  cluster.run_for(sec(4));
  EXPECT_FALSE(record->violation);
  EXPECT_TRUE(test::stores_converged(cluster));
}

}  // namespace
}  // namespace praft
