// Durable hard state + write-ahead log with crash-restart recovery.
//
// Three layers under test:
//  * storage::DurableStore / storage::Persister in isolation (staging is
//    volatile until the fsync commits; snapshots truncate the WAL; sends
//    gate on the durability barrier; group commit coalesces syncs);
//  * per-protocol crash-restart through the harness (hard state persisted
//    before the dependent message leaves; recovery rebuilds the same state;
//    replay stays bounded by the snapshot floor);
//  * the chaos checker's recovery invariants end to end, including the
//    deliberate skip-fsync-before-vote-reply bug being convicted.
#include <gtest/gtest.h>

#include "chaos/runner.h"
#include "consensus/group.h"
#include "harness/cluster.h"
#include "harness/log_server.h"
#include "kv/workload.h"
#include "raft/node.h"
#include "scripted_env.h"
#include "storage/persister.h"
#include "storage/wal.h"

using namespace praft;

namespace {

storage::WalRecord record_at(consensus::LogIndex i, consensus::Term term) {
  storage::WalRecord r;
  r.index = i;
  r.term = term;
  r.has_value = true;
  r.cmd = kv::noop_command();
  return r;
}

consensus::Group group_of(NodeId self, std::vector<NodeId> members) {
  consensus::Group g;
  g.self = self;
  g.members = std::move(members);
  return g;
}

}  // namespace

// ---------------------------------------------------------------------------
// DurableStore: the write-ahead discipline itself.
// ---------------------------------------------------------------------------

TEST(DurableStoreTest, StagedWritesAreVolatileUntilCommitted) {
  storage::DurableStore store;
  consensus::HardState hs;
  hs.term = 7;
  hs.vote = 2;
  store.stage_hard_state(hs);
  store.stage_record(record_at(1, 7));
  EXPECT_TRUE(store.dirty());
  EXPECT_FALSE(store.has_state());
  EXPECT_EQ(store.image().records.size(), 0u);

  store.commit_through(store.staged_seq());
  EXPECT_FALSE(store.dirty());
  EXPECT_TRUE(store.has_state());
  const storage::DurableImage img = store.image();
  EXPECT_EQ(img.hard.term, 7);
  EXPECT_EQ(img.hard.vote, 2);
  ASSERT_EQ(img.records.size(), 1u);
  EXPECT_EQ(img.records[0].index, 1);
}

TEST(DurableStoreTest, DropUnsyncedModelsAPowerCut) {
  storage::DurableStore store;
  consensus::HardState hs;
  hs.term = 3;
  store.stage_hard_state(hs);
  store.commit_through(store.staged_seq());

  hs.term = 9;  // staged but never synced: a crash must forget it
  store.stage_hard_state(hs);
  store.stage_record(record_at(1, 9));
  store.drop_unsynced();
  EXPECT_FALSE(store.dirty());
  EXPECT_EQ(store.image().hard.term, 3);
  EXPECT_EQ(store.image().records.size(), 0u);
}

TEST(DurableStoreTest, RecordsCoalescePerIndexAndTruncate) {
  storage::DurableStore store;
  for (consensus::LogIndex i = 1; i <= 5; ++i) {
    store.stage_record(record_at(i, 1));
  }
  store.stage_record(record_at(3, 2));  // re-accept overwrites, not appends
  store.commit_through(store.staged_seq());
  EXPECT_EQ(store.wal_records(), 5u);
  EXPECT_EQ(store.wal_tail(), 5);

  store.stage_truncate_after(2);  // conflict-suffix erasure
  store.commit_through(store.staged_seq());
  EXPECT_EQ(store.wal_records(), 2u);
  EXPECT_EQ(store.wal_tail(), 2);
}

TEST(DurableStoreTest, SnapshotSubstitutesForTheWalPrefix) {
  storage::DurableStore store;
  for (consensus::LogIndex i = 1; i <= 8; ++i) {
    store.stage_record(record_at(i, 1));
  }
  consensus::Snapshot snap;
  snap.last_index = 6;
  store.stage_snapshot(snap);
  store.commit_through(store.staged_seq());
  EXPECT_EQ(store.snapshot_floor(), 6);
  EXPECT_EQ(store.wal_records(), 2u);  // only 7, 8 left to replay
  const storage::DurableImage img = store.image();
  ASSERT_EQ(img.records.size(), 2u);
  EXPECT_EQ(img.records.front().index, 7);
  // Records staged later but covered by the snapshot stay dead.
  store.stage_record(record_at(4, 1));
  store.commit_through(store.staged_seq());
  EXPECT_EQ(store.wal_records(), 2u);
}

// ---------------------------------------------------------------------------
// Persister: fsync barriers and group commit.
// ---------------------------------------------------------------------------

TEST(PersisterTest, SendsWaitForTheCoveringFsync) {
  test::ScriptedEnv env;
  storage::DurableStore store;
  storage::Persister p(env, &store, /*fsync=*/msec(2), /*batch=*/msec(1),
                       [] { return consensus::HardState{}; });
  p.record(record_at(1, 1));
  p.send(7, std::string("hello"), 16);
  EXPECT_TRUE(env.outbox.empty());  // gated: the record is not durable yet
  EXPECT_TRUE(store.dirty());
  env.advance(msec(10));
  EXPECT_EQ(env.outbox.size(), 1u);  // released by the completed fsync
  EXPECT_FALSE(store.dirty());
  EXPECT_EQ(store.wal_records(), 1u);
}

TEST(PersisterTest, BarrierRunsAfterDurabilityAndGroupCommitCoalesces) {
  test::ScriptedEnv env;
  storage::DurableStore store;
  storage::Persister p(env, &store, /*fsync=*/msec(2), /*batch=*/msec(1),
                       [] { return consensus::HardState{}; });
  int fired = 0;
  for (int k = 1; k <= 5; ++k) {
    p.record(record_at(k, 1));
    p.barrier([&fired] { ++fired; });
  }
  EXPECT_EQ(fired, 0);
  env.advance(msec(10));
  EXPECT_EQ(fired, 5);
  // One group-commit window covered all five demands.
  EXPECT_EQ(store.syncs(), 1u);
  EXPECT_EQ(store.wal_records(), 5u);
}

TEST(PersisterTest, UnsyncedSendSkipsTheBarrier) {
  test::ScriptedEnv env;
  storage::DurableStore store;
  storage::Persister p(env, &store, /*fsync=*/msec(2), /*batch=*/msec(1),
                       [] { return consensus::HardState{}; });
  p.record(record_at(1, 1));
  p.send_unsynced(7, std::string("leak"), 16);
  EXPECT_EQ(env.outbox.size(), 1u);  // left before the record hit disk
  EXPECT_TRUE(store.dirty());        // ... and nothing armed a sync
}

TEST(PersisterTest, ZeroCostStorageIsSynchronous) {
  test::ScriptedEnv env;
  storage::DurableStore store;
  storage::Persister p(env, &store, /*fsync=*/0, /*batch=*/0,
                       [] { return consensus::HardState{}; });
  p.record(record_at(1, 1));
  EXPECT_FALSE(store.dirty());  // committed inline
  p.send(7, std::string("now"), 16);
  EXPECT_EQ(env.outbox.size(), 1u);  // never deferred
  bool ran = false;
  p.barrier([&ran] { ran = true; });
  EXPECT_TRUE(ran);
}

// ---------------------------------------------------------------------------
// Protocol-level write-ahead discipline (scripted, no simulator).
// ---------------------------------------------------------------------------

TEST(RaftDurabilityTest, VoteIsOnDiskBeforeTheReplyLeaves) {
  test::ScriptedEnv env;
  storage::DurableStore store;
  raft::Options opt;
  opt.fsync_duration = msec(2);
  opt.sync_batch_delay = msec(1);
  raft::RaftNode node(group_of(0, {0, 1, 2}), env, opt, &store);
  node.start();

  raft::RequestVote rv{/*term=*/5, /*candidate=*/1, 0, 0};
  node.on_packet(net::Packet{1, 0, 64, raft::Message{rv}});
  // The vote is granted in memory immediately...
  EXPECT_EQ(node.current_term(), 5);
  // ...but the reply must NOT leave before the fsync barrier clears, and
  // the durable image must already hold the vote when it does.
  EXPECT_TRUE(env.take_for(1).empty());
  env.advance(msec(10));
  const auto sent = env.take_for(1);
  ASSERT_EQ(sent.size(), 1u);
  const auto* msg = std::any_cast<raft::Message>(&sent[0].payload);
  ASSERT_NE(msg, nullptr);
  const auto* reply = std::get_if<raft::VoteReply>(msg);
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->granted);
  EXPECT_EQ(store.hard_state().term, 5);
  EXPECT_EQ(store.hard_state().vote, 1);
}

TEST(RaftDurabilityTest, SkipVoteFsyncBugLeaksTheReply) {
  test::ScriptedEnv env;
  storage::DurableStore store;
  raft::Options opt;
  opt.fsync_duration = msec(2);
  opt.sync_batch_delay = msec(1);
  opt.unsafe_skip_vote_fsync = true;
  raft::RaftNode node(group_of(0, {0, 1, 2}), env, opt, &store);
  node.start();

  raft::RequestVote rv{/*term=*/5, /*candidate=*/1, 0, 0};
  node.on_packet(net::Packet{1, 0, 64, raft::Message{rv}});
  // The buggy node replies immediately, while its durable vote is stale —
  // exactly the window the chaos checker's regression invariant convicts.
  ASSERT_EQ(env.take_for(1).size(), 1u);
  EXPECT_EQ(store.hard_state().term, 0);
}

TEST(RaftDurabilityTest, RecoverRebuildsTermVoteAndLog) {
  test::ScriptedEnv env;
  storage::DurableStore store;
  {
    raft::Options opt;  // zero-cost storage: everything durable synchronously
    raft::RaftNode node(group_of(0, {0}), env, opt, &store);
    node.start();
    node.force_election();  // single-node group: leader immediately
    ASSERT_TRUE(node.is_leader());
    kv::Command cmd;
    cmd.op = kv::Op::kPut;
    cmd.key = 11;
    cmd.value = 42;
    ASSERT_GE(node.submit(cmd), 0);
    env.advance(msec(50));
  }
  // Crash: the node object is gone; rebuild purely from the durable image.
  test::ScriptedEnv env2;
  raft::RaftNode revived(group_of(0, {0}), env2, raft::Options{}, &store);
  const storage::RecoveryStats stats = revived.recover(store.image());
  EXPECT_TRUE(stats.recovered);
  EXPECT_EQ(revived.current_term(), 1);
  EXPECT_EQ(revived.last_index(), 2);  // leader no-op + the put
  EXPECT_EQ(revived.entry_at(2).cmd.key, 11u);
  EXPECT_LE(stats.replayed,
            static_cast<size_t>(stats.wal_tail - stats.snapshot_floor));
}

// ---------------------------------------------------------------------------
// Full-harness crash-restart, every protocol.
// ---------------------------------------------------------------------------

namespace {

consensus::TimingOptions lan_durable_timing() {
  consensus::TimingOptions t;
  t.election_timeout_min = msec(300);
  t.election_timeout_max = msec(600);
  t.heartbeat_interval = msec(60);
  t.fsync_duration = msec(1);
  t.sync_batch_delay = msec(1);
  return t;
}

harness::LogServer& log_server(harness::Cluster& cluster, int i) {
  auto* ls = dynamic_cast<harness::LogServer*>(&cluster.server(i));
  EXPECT_NE(ls, nullptr);
  return *ls;
}

void run_traffic(harness::Cluster& cluster, Duration d) {
  kv::WorkloadConfig wl;
  wl.read_fraction = 0.5;
  wl.num_records = 64;
  cluster.add_clients(1, wl, cluster.sim().now());
  cluster.run_for(d);
  cluster.stop_clients();
  cluster.run_for(sec(3));  // drain + re-converge
}

}  // namespace

TEST(CrashRestartTest, RecoveryRebuildsIdenticalStateAllProtocols) {
  for (const std::string protocol :
       {"raft", "raftstar", "multipaxos", "mencius"}) {
    SCOPED_TRACE(protocol);
    harness::ClusterConfig cfg;
    cfg.num_replicas = 3;
    cfg.seed = 99;
    harness::Cluster cluster(cfg);
    cluster.build_replicas(protocol, lan_durable_timing());
    int victim = 2;
    if (!cluster.server(0).leaderless()) {
      const int leader = cluster.establish_leader(0, sec(20));
      ASSERT_GE(leader, 0);
      victim = (leader + 1) % cluster.num_replicas();
    } else {
      cluster.run_for(msec(500));
    }
    run_traffic(cluster, sec(4));

    auto& before = log_server(cluster, victim).node_iface();
    const consensus::HardState hs_before = before.hard_state();
    const consensus::LogIndex applied_before = before.applied_index();
    ASSERT_GT(applied_before, 0);
    const uint64_t fp_before =
        cluster.server(victim).store().fingerprint();

    cluster.restart_replica(victim);
    auto& ls = log_server(cluster, victim);
    // Hard state survives exactly (the quiesced cluster had synced it all).
    EXPECT_EQ(ls.node_iface().hard_state(), hs_before);
    const storage::RecoveryStats& stats = ls.recovery();
    EXPECT_TRUE(stats.recovered);
    EXPECT_LE(stats.replayed,
              static_cast<size_t>(
                  std::max<consensus::LogIndex>(0, stats.wal_tail -
                                                       stats.snapshot_floor)));
    // After rejoining, the replica re-converges to the exact same store.
    cluster.run_for(sec(5));
    EXPECT_GE(log_server(cluster, victim).node_iface().applied_index(),
              applied_before)
        << protocol;
    EXPECT_EQ(cluster.server(victim).store().fingerprint(), fp_before);
  }
}

TEST(CrashRestartTest, DurableHardStateTracksInMemoryAtQuiesce) {
  for (const std::string protocol :
       {"raft", "raftstar", "multipaxos", "mencius"}) {
    SCOPED_TRACE(protocol);
    harness::ClusterConfig cfg;
    cfg.num_replicas = 3;
    cfg.seed = 7;
    harness::Cluster cluster(cfg);
    cluster.build_replicas(protocol, lan_durable_timing());
    if (!cluster.server(0).leaderless()) {
      ASSERT_GE(cluster.establish_leader(1, sec(20)), 0);
    } else {
      cluster.run_for(msec(500));
    }
    run_traffic(cluster, sec(3));
    for (int i = 0; i < cluster.num_replicas(); ++i) {
      // Every hard-state change was followed by a dependent message, and
      // every message waited for its fsync: at quiesce, disk == memory.
      EXPECT_EQ(cluster.store_of(i).hard_state().term,
                log_server(cluster, i).node_iface().hard_state().term)
          << protocol << " replica " << i;
    }
  }
}

TEST(CrashRestartTest, ChaosBatchWithRestartsAllProtocols) {
  for (const std::string protocol :
       {"raft", "raftstar", "multipaxos", "mencius"}) {
    for (uint64_t seed = 1; seed <= 25; ++seed) {
      chaos::RunOptions opt;
      opt.protocol = protocol;
      opt.seed = seed;
      opt.crash_restarts = true;
      const chaos::RunResult r = chaos::run_one(opt);
      ASSERT_TRUE(r.ok) << protocol << " seed " << seed << ": "
                        << (r.violations.empty() ? "?" : r.violations[0]);
    }
  }
}

TEST(CrashRestartTest, ChaosRestartsComposeWithCompaction) {
  for (const std::string protocol :
       {"raft", "raftstar", "multipaxos", "mencius"}) {
    for (uint64_t seed = 1; seed <= 15; ++seed) {
      chaos::RunOptions opt;
      opt.protocol = protocol;
      opt.seed = seed;
      opt.crash_restarts = true;
      opt.compaction_log_cap = 64;  // snapshots bound recovery replay
      const chaos::RunResult r = chaos::run_one(opt);
      ASSERT_TRUE(r.ok) << protocol << " seed " << seed << ": "
                        << (r.violations.empty() ? "?" : r.violations[0]);
    }
  }
}

TEST(CrashRestartTest, MissingVoteFsyncConvictedWithin50Seeds) {
  // The acceptance bar for the whole durability layer: the classic
  // skip-fsync-before-vote-reply bug must be caught fast for every protocol
  // whose phase-1 vote/promise reply carries it.
  for (const std::string protocol : {"raft", "raftstar", "multipaxos"}) {
    SCOPED_TRACE(protocol);
    bool caught = false;
    for (uint64_t seed = 1; seed <= 50 && !caught; ++seed) {
      chaos::RunOptions opt;
      opt.protocol = protocol;
      opt.seed = seed;
      opt.inject_persistence_bug = true;
      const chaos::RunResult r = chaos::run_one(opt);
      caught = !r.ok;
    }
    EXPECT_TRUE(caught) << protocol
                        << ": persistence bug survived 50 seeded runs";
  }
}

TEST(CrashRestartTest, MenciusMissingFsyncConvicted) {
  // Mencius's literal vote (RevPrepareOk) is rare and its constant traffic
  // narrows the unsynced window, so its conviction budget is larger; the
  // injected bug also leaks the Phase2b ack (see mencius/node.cpp).
  bool caught = false;
  for (uint64_t seed = 1; seed <= 150 && !caught; ++seed) {
    chaos::RunOptions opt;
    opt.protocol = "mencius";
    opt.seed = seed;
    opt.inject_persistence_bug = true;
    const chaos::RunResult r = chaos::run_one(opt);
    caught = !r.ok;
  }
  EXPECT_TRUE(caught) << "mencius: persistence bug survived 150 seeded runs";
}
