#include <gtest/gtest.h>

#include "lease/manager.h"
#include "pql/leader_lease.h"
#include "pql/raftstar_pql.h"
#include "scripted_env.h"
#include "test_util.h"

namespace praft {
namespace {

using test::OneShotClient;

// ---------------------------------------------------------------------------
// LeaseManager unit tests.
// ---------------------------------------------------------------------------

consensus::Group group_of(NodeId self, std::initializer_list<NodeId> members) {
  consensus::Group g;
  g.self = self;
  g.members = members;
  return g;
}

TEST(LeaseManagerTest, SelfLeaseAlwaysValid) {
  test::ScriptedEnv env;
  lease::LeaseManager lm(group_of(0, {0, 1, 2}), env);
  EXPECT_EQ(lm.valid_leases(0), 1);
  EXPECT_FALSE(lm.quorum_lease_active(0));
}

TEST(LeaseManagerTest, QuorumLeaseFromGrants) {
  test::ScriptedEnv env;
  lease::LeaseManager lm(group_of(0, {0, 1, 2}), env);
  lm.on_grant(lease::Grant{1, 0, sec(2)});
  EXPECT_TRUE(lm.quorum_lease_active(sec(1)));   // self + node 1 = 2 >= f+1
  EXPECT_FALSE(lm.quorum_lease_active(sec(3)));  // expired
}

TEST(LeaseManagerTest, GrantRoundRenewsAndReportsHolders) {
  test::ScriptedEnv env;
  lease::LeaseManager lm(group_of(0, {0, 1, 2}), env);
  lm.start();
  EXPECT_EQ(env.outbox.size(), 2u);  // grants to peers 1 and 2
  auto holders = lm.granted_holders(msec(100));
  EXPECT_EQ(holders.size(), 2u);
  // Renewal happens on the interval timer.
  env.clear();
  env.advance(msec(600));
  EXPECT_GE(env.outbox.size(), 2u);
}

TEST(LeaseManagerTest, SilentHolderDropsOut) {
  test::ScriptedEnv env;
  lease::Options opt;
  opt.duration = msec(500);
  opt.renew_interval = msec(100);
  lease::LeaseManager lm(group_of(0, {0, 1, 2}), env, opt);
  lm.start();
  // Node 1 acks once; node 2 never acks.
  lm.on_grant_ack(lease::GrantAck{1, 0}, 1);
  env.advance(sec(2));
  lm.on_grant_ack(lease::GrantAck{1, 0}, 1);
  env.advance(msec(100));
  auto holders = lm.granted_holders(env.now());
  ASSERT_EQ(holders.size(), 1u);  // only the responsive node keeps its lease
  EXPECT_EQ(holders[0], 1);
}

TEST(LeaseManagerTest, PartialGrantSet) {
  test::ScriptedEnv env;
  lease::Options opt;
  opt.grant_to = {2};
  lease::LeaseManager lm(group_of(0, {0, 1, 2}), env, opt);
  lm.start();
  ASSERT_EQ(env.outbox.size(), 1u);
  EXPECT_EQ(env.outbox[0].to, 2);
}

// ---------------------------------------------------------------------------
// Raft*-PQL cluster behaviour (the Fig. 9 mechanisms).
// ---------------------------------------------------------------------------

harness::Cluster::ServerFactory pql_factory(
    raftstar::Options opt, pql::PqlOptions popt = {},
    bool model_cpu = false) {
  return [opt, popt, model_cpu](harness::NodeHost& host,
                                const consensus::Group& g) {
    harness::CostModel costs;
    costs.enabled = model_cpu;
    return std::make_unique<pql::RaftStarPqlServer>(host, g, costs, opt, popt);
  };
}

raftstar::Options wan_rs_options() {
  return test::wan_options<raftstar::Options>();
}

TEST(PqlClusterTest, FollowerReadsAreLocal) {
  harness::Cluster cluster(test::wan_config(31));
  cluster.build_replicas(pql_factory(wan_rs_options()));
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.run_for(sec(2));  // leases propagate
  cluster.metrics().set_window(0, kTimeMax);
  kv::WorkloadConfig wl;
  wl.read_fraction = 1.0;
  wl.conflict_rate = 0.0;
  cluster.add_clients(1, wl, cluster.sim().now());
  cluster.run_for(sec(10));
  // Reads at follower sites must be served locally: ~0.5 ms RTT, far below
  // any WAN quorum round trip.
  for (SiteId s = 1; s < 5; ++s) {
    const Histogram& h = cluster.metrics().reads(s);
    ASSERT_GT(h.count(), 0) << "site " << s;
    EXPECT_LT(h.percentile(50), msec(10)) << "site " << s;
  }
}

TEST(PqlClusterTest, WritesWaitForAllLeaseHolders) {
  // Fig. 9b: PQL write latency exceeds plain Raft*'s because commit waits
  // for every lease holder, not just the fastest majority.
  harness::Cluster plain(test::wan_config(32));
  plain.build_replicas(test::make_factory<harness::RaftStarProtocol>(
      wan_rs_options()));
  ASSERT_EQ(plain.establish_leader(0), 0);
  plain.metrics().set_window(0, kTimeMax);
  kv::WorkloadConfig wl;
  wl.read_fraction = 0.0;
  wl.conflict_rate = 0.0;
  plain.add_clients(1, wl, plain.sim().now());
  plain.run_for(sec(10));
  const int64_t plain_p50 = plain.metrics().writes(0).percentile(50);

  harness::Cluster pql(test::wan_config(32));
  pql.build_replicas(pql_factory(wan_rs_options()));
  ASSERT_EQ(pql.establish_leader(0), 0);
  pql.run_for(sec(2));
  pql.metrics().set_window(0, kTimeMax);
  pql.add_clients(1, wl, pql.sim().now());
  pql.run_for(sec(10));
  const int64_t pql_p50 = pql.metrics().writes(0).percentile(50);

  // Plain Raft* commits at the nearest quorum (~Ohio/Canada RTT ≈ 69 ms);
  // PQL waits for Ireland/Seoul too (RTT ≥ 126 ms).
  EXPECT_GT(plain_p50, msec(30));
  EXPECT_GT(pql_p50, plain_p50 + msec(30));
}

TEST(PqlClusterTest, ConflictingReadWaitsForCommit) {
  harness::Cluster cluster(test::wan_config(33));
  cluster.build_replicas(pql_factory(wan_rs_options()));
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.run_for(sec(2));
  // A write to key 7 is in flight to Seoul's log; Seoul must not serve a
  // local read of key 7 until that write commits.
  auto& wclient = cluster.make_host(0);
  OneShotClient writer(wclient);
  auto& rclient = cluster.make_host(4);
  OneShotClient reader(rclient);
  writer.send(cluster.server(0).id(), kv::Command{kv::Op::kPut, 7, 99, 8, 0, 0});
  cluster.run_for(sec(2));
  ASSERT_FALSE(writer.waiting());
  reader.send(cluster.server(4).id(), kv::Command{kv::Op::kGet, 7, 0, 8, 0, 0});
  cluster.run_for(sec(2));
  ASSERT_FALSE(reader.waiting());
  EXPECT_EQ(reader.value(), 99u);
}

TEST(PqlClusterTest, LeaseLossFallsBackToLogReads) {
  harness::Cluster cluster(test::wan_config(34));
  std::vector<pql::RaftStarPqlServer*> servers;
  auto factory = [&servers](harness::NodeHost& host,
                            const consensus::Group& g)
      -> std::unique_ptr<harness::ReplicaServer> {
    harness::CostModel costs;
    costs.enabled = false;
    auto s = std::make_unique<pql::RaftStarPqlServer>(host, g, costs,
                                                      wan_rs_options());
    servers.push_back(s.get());
    return s;
  };
  cluster.build_replicas(factory);
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.run_for(sec(2));
  // Stop four replicas from granting: every holder loses its quorum lease
  // (it can hold at most self + 1 < 3 valid leases).
  for (int i = 0; i < 4; ++i) servers[static_cast<size_t>(i)]->leases().stop_granting();
  cluster.run_for(sec(3));  // leases expire
  cluster.metrics().set_window(0, kTimeMax);
  kv::WorkloadConfig wl;
  wl.read_fraction = 1.0;
  cluster.add_clients(1, wl, cluster.sim().now());
  cluster.run_for(sec(8));
  // Reads still complete, but through the log: WAN latency at followers.
  const Histogram reads = cluster.metrics().merged_reads({1, 2, 3, 4});
  ASSERT_GT(reads.count(), 0);
  EXPECT_GT(reads.percentile(50), msec(30));
}

TEST(PqlClusterTest, CrashedHolderStallsWritesOnlyUntilExpiry) {
  harness::Cluster cluster(test::wan_config(35));
  cluster.build_replicas(pql_factory(wan_rs_options()));
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.run_for(sec(2));
  cluster.metrics().set_window(0, kTimeMax);
  kv::WorkloadConfig wl;
  wl.read_fraction = 0.0;
  cluster.add_clients(1, wl, cluster.sim().now());
  cluster.run_for(sec(2));
  const Time t = cluster.sim().now();
  cluster.net().faults().crash(cluster.server(4).id(), t, t + sec(60));
  cluster.run_for(sec(10));
  const int64_t after_crash = cluster.metrics().completed();
  cluster.run_for(sec(5));
  // Writes resumed once the dead holder's leases lapsed (~2.5 s).
  EXPECT_GT(cluster.metrics().completed(), after_crash + 5);
}

// ---------------------------------------------------------------------------
// Ablation A1 — the §A.2 hand-port bug: forgetting the leader's own grants.
// ---------------------------------------------------------------------------

class PqlAblationTest : public ::testing::TestWithParam<bool> {};

TEST_P(PqlAblationTest, LeaderGrantsDecideReadFreshness) {
  const bool include_leader_grants = GetParam();
  // Lease topology where ONLY the leader's grant set forces waiting for
  // Seoul: Oregon (leader), Ireland and Seoul grant to Seoul; Ohio/Canada —
  // the fast quorum — grant nothing, so their appendOK piggybacks are empty.
  pql::PqlOptions popt;
  popt.include_leader_grants = include_leader_grants;
  harness::Cluster cluster(test::wan_config(36));
  const NodeId seoul_id = 4;  // replica ids equal 0..4 by construction
  auto factory = [popt, seoul_id](harness::NodeHost& host,
                                  const consensus::Group& g)
      -> std::unique_ptr<harness::ReplicaServer> {
    harness::CostModel costs;
    costs.enabled = false;
    pql::PqlOptions p = popt;
    const bool grants_to_seoul =
        g.self == 0 || g.self == 2 || g.self == seoul_id;
    p.lease.grant_to = grants_to_seoul ? std::vector<NodeId>{seoul_id}
                                       : std::vector<NodeId>{kNoNode};
    return std::make_unique<pql::RaftStarPqlServer>(
        host, g, costs, test::wan_options<raftstar::Options>(), p);
  };
  cluster.build_replicas(factory);
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.run_for(sec(2));  // Seoul now holds a quorum lease (ORE+IRE+self)

  // Cut the leader->Seoul link so the write's append cannot reach Seoul.
  const Time t = cluster.sim().now();
  cluster.net().faults().partition_pair(0, seoul_id, t, t + sec(1));

  auto& whost = cluster.make_host(0);
  OneShotClient writer(whost);
  writer.send(cluster.server(0).id(), kv::Command{kv::Op::kPut, 7, 55, 8, 0, 0});
  cluster.run_for(msec(400));  // quorum {ORE,OHI,CAN} acked long ago

  auto& rhost = cluster.make_host(4);
  OneShotClient reader(rhost);
  reader.send(cluster.server(4).id(), kv::Command{kv::Op::kGet, 7, 0, 8, 0, 0});
  cluster.run_for(msec(200));

  if (include_leader_grants) {
    // Correct port: the write is still blocked on Seoul's appendOK, so the
    // value is not yet committed — and Seoul's local read (whatever it
    // returns) cannot observe a committed-then-lost value. The write must
    // still be pending.
    EXPECT_TRUE(writer.waiting());
    cluster.run_for(sec(3));  // partition heals; everything completes
    EXPECT_FALSE(writer.waiting());
  } else {
    // Buggy port: the write "committed" without Seoul, yet Seoul holds a
    // quorum lease and serves a stale local read — a linearizability
    // violation a client can observe.
    EXPECT_FALSE(writer.waiting());
    ASSERT_FALSE(reader.waiting());
    EXPECT_EQ(reader.value(), 0u) << "stale read proves the hand-port bug";
  }
}

INSTANTIATE_TEST_SUITE_P(BothPorts, PqlAblationTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "automated_port_correct"
                                             : "handworked_port_buggy";
                         });

// ---------------------------------------------------------------------------
// Leader Lease baseline.
// ---------------------------------------------------------------------------

TEST(LeaderLeaseTest, OnlyLeaderReadsLocally) {
  harness::Cluster cluster(test::wan_config(37));
  auto factory = [](harness::NodeHost& host, const consensus::Group& g)
      -> std::unique_ptr<harness::ReplicaServer> {
    harness::CostModel costs;
    costs.enabled = false;
    return std::make_unique<pql::LeaderLeaseServer>(
        host, g, costs, test::wan_options<raftstar::Options>());
  };
  cluster.build_replicas(factory);
  ASSERT_EQ(cluster.establish_leader(0), 0);
  cluster.run_for(sec(2));
  cluster.metrics().set_window(0, kTimeMax);
  kv::WorkloadConfig wl;
  wl.read_fraction = 1.0;
  wl.conflict_rate = 0.0;
  cluster.add_clients(1, wl, cluster.sim().now());
  cluster.run_for(sec(10));
  // Leader site: ~local. Follower sites: one WAN hop to the leader & back.
  EXPECT_LT(cluster.metrics().reads(0).percentile(50), msec(10));
  const Histogram follower = cluster.metrics().merged_reads({1, 2, 3, 4});
  ASSERT_GT(follower.count(), 0);
  EXPECT_GT(follower.percentile(50), msec(20));
}

}  // namespace
}  // namespace praft
