#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "chaos/invariants.h"
#include "consensus/timing.h"
#include "kv/workload.h"
#include "shard/experiment.h"
#include "shard/router.h"
#include "shard/shard_invariants.h"
#include "shard/shard_map.h"
#include "shard/sharded_cluster.h"

namespace praft {
namespace {

consensus::TimingOptions fast_timing() {
  consensus::TimingOptions t;
  t.election_timeout_min = msec(150);
  t.election_timeout_max = msec(300);
  t.heartbeat_interval = msec(40);
  t.batch_delay = msec(1);
  return t;
}

shard::ShardedClusterConfig small_config(int groups, int machines,
                                         int replicas) {
  shard::ShardedClusterConfig cfg;
  cfg.num_groups = groups;
  cfg.num_machines = machines;
  cfg.replicas_per_group = replicas;
  cfg.timing = fast_timing();
  cfg.latency = sim::LatencyMatrix(machines, msec(1));
  cfg.costs.enabled = false;
  cfg.seed = 7;
  return cfg;
}

chaos::GroupView view_of(shard::ShardedCluster& cluster, int g) {
  chaos::GroupView v;
  v.num_replicas = cluster.replicas_per_group();
  v.replica_up = [&cluster, g](int j) { return cluster.replica_up(g, j); };
  v.server = [&cluster, g](int j) -> harness::ReplicaServer& {
    return cluster.server(g, j);
  };
  return v;
}

/// Wires one full InvariantChecker into group `g` (the same probes the
/// sharded chaos runner installs).
void attach_group(shard::ShardedCluster& cluster, int g,
                  chaos::InvariantChecker& chk) {
  cluster.install_apply_probe(
      g, [&chk](NodeId r, consensus::LogIndex i, const kv::Command& c) {
        chk.on_apply(r, i, c);
      });
  cluster.install_watermark_probe(
      g, [&chk](NodeId r, consensus::LogIndex commit,
                consensus::LogIndex applied) {
        chk.on_watermark(r, commit, applied);
      });
  cluster.set_restart_probe(
      g, [&chk](NodeId r, const consensus::HardState& hs,
                const storage::RecoveryStats& stats,
                consensus::LogIndex applied) {
        chk.on_restart(r, hs, stats, applied);
      });
}

TEST(ShardMapTest, DeterministicAcrossInstances) {
  shard::ShardMap a(8), b(8);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(a.owner_of(k), b.owner_of(k));
    EXPECT_GE(a.owner_of(k), 0);
    EXPECT_LT(a.owner_of(k), 8);
  }
}

TEST(ShardMapTest, BalancesKeysWithinTwoX) {
  // 10k sequential keys (the workload's key shape) must spread evenly:
  // max/min group load within 2x, no empty group.
  for (int groups : {2, 4, 8, 16}) {
    shard::ShardMap map(groups);
    std::vector<int> load(static_cast<size_t>(groups), 0);
    for (uint64_t k = 1; k <= 10'000; ++k) {
      ++load[static_cast<size_t>(map.owner_of(k))];
    }
    int lo = load[0], hi = load[0];
    for (int l : load) {
      lo = std::min(lo, l);
      hi = std::max(hi, l);
    }
    EXPECT_GT(lo, 0) << groups << " groups";
    EXPECT_LE(hi, 2 * lo) << groups << " groups: max " << hi << " min " << lo;
  }
}

TEST(ShardRouterTest, RoutesEveryKeyToOwningGroupTarget) {
  shard::ShardMap map(4);
  shard::ShardRouter router(map);
  for (int g = 0; g < 4; ++g) {
    router.set_target(g, static_cast<NodeId>(100 + g));
  }
  for (uint64_t k = 0; k < 5000; ++k) {
    const int owner = map.owner_of(k);
    EXPECT_EQ(router.group_of(k), owner);
    EXPECT_EQ(router.target_of(k), static_cast<NodeId>(100 + owner));
  }
}

TEST(ShardedClusterTest, SpreadPlacementLandsLeadersOnDistinctMachines) {
  auto cfg = small_config(4, 5, 5);
  shard::ShardedCluster cluster(std::move(cfg));
  cluster.build();
  ASSERT_EQ(cluster.establish_leaders(), 4);
  std::set<int> leader_machines;
  for (int g = 0; g < 4; ++g) {
    // Under spread placement the preferred leader (member 0) wins its
    // group's first election, and consecutive groups' leaders land on
    // consecutive machines.
    EXPECT_EQ(cluster.leader_of(g), 0) << "group " << g;
    EXPECT_EQ(cluster.preferred_leader_machine(g), g % 5);
    leader_machines.insert(cluster.preferred_leader_machine(g));
  }
  EXPECT_EQ(leader_machines.size(), 4u);  // all distinct while N <= M
}

TEST(ShardedClusterTest, CoLocatedPlacementPilesLeadersOnMachineZero) {
  auto cfg = small_config(4, 5, 5);
  cfg.spread_leaders = false;
  shard::ShardedCluster cluster(std::move(cfg));
  cluster.build();
  for (int g = 0; g < 4; ++g) {
    EXPECT_EQ(cluster.preferred_leader_machine(g), 0);
  }
}

TEST(ShardedClusterTest, EveryOpLandsInItsOwningGroup) {
  // End-to-end routing property: run a real sharded workload and let the
  // cross-group checker watch every apply on every replica of every group.
  auto cfg = small_config(3, 5, 5);
  shard::ShardedCluster cluster(std::move(cfg));
  cluster.build();

  shard::CrossGroupChecker xchk(cluster.map());
  std::vector<int64_t> group_applies(3, 0);
  for (int g = 0; g < 3; ++g) {
    cluster.install_apply_probe(
        g, [&xchk, &group_applies, g](NodeId r, consensus::LogIndex i,
                                      const kv::Command& c) {
          xchk.on_apply(g, r, i, c);
          if (!c.is_noop()) ++group_applies[static_cast<size_t>(g)];
        });
  }
  ASSERT_EQ(cluster.establish_leaders(), 3);

  kv::WorkloadConfig wl;
  wl.read_fraction = 0.5;
  cluster.add_clients(4, wl, cluster.sim().now());
  cluster.run_for(sec(3));
  cluster.stop_clients();
  cluster.run_for(sec(1));

  EXPECT_TRUE(xchk.ok()) << (xchk.violations().empty()
                                 ? ""
                                 : xchk.violations().front());
  for (int g = 0; g < 3; ++g) {
    // The hash map spreads every machine's key partition over all groups,
    // so each group must have seen real traffic.
    EXPECT_GT(group_applies[static_cast<size_t>(g)], 0) << "group " << g;
  }
}

TEST(ShardedClusterTest, GroupFaultsAreInvisibleToOtherGroups) {
  // Machine 0 hosts ONLY group 0 here (4 machines, 3-way groups, stride 1:
  // group 0 -> {0,1,2}, group 1 -> {1,2,3}), so a machine-0 crash is a
  // group-0-only fault. Group 1's checker must see a clean, restart-free
  // run while group 0 absorbs a real crash-restart.
  auto cfg = small_config(2, 4, 3);
  cfg.timing.fsync_duration = msec(1);
  shard::ShardedCluster cluster(std::move(cfg));
  cluster.build();
  ASSERT_EQ(cluster.member_machine(0, 0), 0);
  for (int j = 0; j < 3; ++j) {
    ASSERT_NE(cluster.member_machine(1, j), 0);
  }

  chaos::InvariantChecker chk0, chk1;
  attach_group(cluster, 0, chk0);
  attach_group(cluster, 1, chk1);
  ASSERT_EQ(cluster.establish_leaders(), 2);

  kv::WorkloadConfig wl;
  cluster.add_clients(3, wl, cluster.sim().now());
  cluster.run_for(sec(1));
  cluster.sim().at(cluster.sim().now() + msec(500),
                   [&cluster] { cluster.crash_machine(0); });
  cluster.sim().at(cluster.sim().now() + sec(2),
                   [&cluster] { cluster.restart_machine(0); });
  cluster.run_for(sec(4));
  cluster.stop_clients();
  cluster.run_for(sec(5));

  chk0.finalize(view_of(cluster, 0));
  chk1.finalize(view_of(cluster, 1));
  EXPECT_TRUE(chk0.ok()) << (chk0.violations().empty()
                                 ? ""
                                 : chk0.violations().front());
  EXPECT_TRUE(chk1.ok()) << (chk1.violations().empty()
                                 ? ""
                                 : chk1.violations().front());
  EXPECT_EQ(chk0.restarts(), 1u);  // group 0 lived through the crash
  EXPECT_EQ(chk1.restarts(), 0u);  // group 1 never noticed
  EXPECT_EQ(cluster.restarts(), 1);
}

TEST(ShardedClusterTest, MixedProtocolGroupsConvergeTogether) {
  // One deployment, four groups, four different protocols — the registry
  // seam the sharded harness is built on. Every group must elect (or, for
  // Mencius, coordinate) independently and converge on its own agreed log.
  auto cfg = small_config(4, 5, 5);
  cfg.protocols = {"raft", "multipaxos", "raftstar", "mencius"};
  shard::ShardedCluster cluster(std::move(cfg));
  cluster.build();
  EXPECT_EQ(cluster.protocol_of(0), "raft");
  EXPECT_EQ(cluster.protocol_of(3), "mencius");

  std::vector<std::unique_ptr<chaos::InvariantChecker>> chks;
  for (int g = 0; g < 4; ++g) {
    chks.push_back(std::make_unique<chaos::InvariantChecker>());
    attach_group(cluster, g, *chks.back());
  }
  cluster.install_reply_probe([&chks](int g, const kv::Command& cmd,
                                      uint64_t value, bool ok, Time, Time) {
    chks[static_cast<size_t>(g)]->on_reply(cmd, value, ok);
  });
  ASSERT_EQ(cluster.establish_leaders(), 4);

  kv::WorkloadConfig wl;
  wl.read_fraction = 0.5;
  cluster.add_clients(3, wl, cluster.sim().now());
  cluster.run_for(sec(3));
  cluster.stop_clients();
  cluster.run_for(sec(3));

  for (int g = 0; g < 4; ++g) {
    chks[static_cast<size_t>(g)]->finalize(view_of(cluster, g));
    EXPECT_TRUE(chks[static_cast<size_t>(g)]->ok())
        << cluster.protocol_of(g) << ": "
        << (chks[static_cast<size_t>(g)]->violations().empty()
                ? ""
                : chks[static_cast<size_t>(g)]->violations().front());
    EXPECT_GT(chks[static_cast<size_t>(g)]->client_ops(), 0u)
        << cluster.protocol_of(g);
  }
}

}  // namespace
}  // namespace praft
