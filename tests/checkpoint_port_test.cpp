// The paper's §2.2 motivating example, end to end: port the checkpoint
// optimization from MultiPaxos to Raft*. The ported Checkpoint action reads
// "the last applied instance id" through the refinement mapping, where it
// automatically becomes "the last applied log index".
#include <gtest/gtest.h>

#include "core/port.h"
#include "spec/checker.h"
#include "spec/refinement.h"
#include "specs/deltas.h"
#include "specs/raftstar_spec.h"

namespace praft {
namespace {

class CheckpointPortTest : public ::testing::Test {
 protected:
  CheckpointPortTest() {
    scope_.acceptors = 2;
    scope_.ballots = 2;
    scope_.indexes = 1;
    bundle_ = specs::make_raftstar_bundle(scope_);
    delta_ = specs::make_checkpoint_delta(scope_);
    ad_ = core::apply_delta(*bundle_->paxos, delta_);
    bd_ = core::port(*bundle_->raftstar, bundle_->f, bundle_->corr, delta_);
  }

  specs::ConsensusScope scope_;
  std::unique_ptr<specs::RaftStarBundle> bundle_;
  core::OptimizationDelta delta_;
  spec::Spec ad_;
  spec::Spec bd_;
};

TEST_F(CheckpointPortTest, CheckpointOnPaxosHoldsInvariant) {
  spec::CheckOptions opt;
  opt.max_states = 200'000;
  const auto res = spec::ModelChecker::check(ad_, opt);
  EXPECT_TRUE(res.ok) << res.summary();
  EXPECT_TRUE(res.complete);
}

TEST_F(CheckpointPortTest, PortedSpecHasCheckpointAction) {
  EXPECT_TRUE(bd_.has_var("checkpoint"));
  EXPECT_NE(bd_.action("Checkpoint"), nullptr);
}

TEST_F(CheckpointPortTest, CheckpointedRaftStarHoldsInvariant) {
  // The §2.2 claim: the ported rule is correct "without considering the
  // precise semantics" — checked by running the invariant (which reads the
  // MAPPED chosen-ness) on the generated spec.
  spec::Spec bd = core::port(*bundle_->raftstar, bundle_->f, bundle_->corr,
                             delta_);
  for (const auto& inv : delta_.new_invariants) bd.add_invariant(inv);
  spec::CheckOptions opt;
  opt.max_states = 200'000;
  const auto res = spec::ModelChecker::check(bd, opt);
  EXPECT_TRUE(res.ok) << res.summary();
}

TEST_F(CheckpointPortTest, DiamondCloses) {
  spec::RefinementOptions opt;
  opt.max_states = 150'000;
  const auto bd_b = spec::RefinementChecker::check(
      bd_, *bundle_->raftstar, core::projection_mapping(bd_, *bundle_->raftstar),
      opt);
  EXPECT_TRUE(bd_b.ok) << bd_b.summary();
  const auto bd_ad = spec::RefinementChecker::check(
      bd_, ad_, core::lifted_mapping(bundle_->f, bd_, ad_, delta_), opt);
  EXPECT_TRUE(bd_ad.ok) << bd_ad.summary();
}

TEST_F(CheckpointPortTest, CheckpointActuallyFires) {
  // Non-vacuity: some reachable BΔ state has a checkpoint taken.
  spec::Spec bd = core::port(*bundle_->raftstar, bundle_->f, bundle_->corr,
                             delta_);
  bool fired = false;
  bd.add_invariant(spec::Invariant{
      "NeverCheckpoints",  // deliberately falsifiable
      [&fired](const spec::Spec& sp, const spec::State& s) {
        for (const auto& c : sp.get(s, "checkpoint").as_tuple()) {
          if (c.as_int() >= 0) {
            fired = true;
            return false;
          }
        }
        return true;
      }});
  const auto res = spec::ModelChecker::check(bd);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(fired);
  EXPECT_FALSE(res.trace.empty());
}

}  // namespace
}  // namespace praft
