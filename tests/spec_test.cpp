#include <gtest/gtest.h>

#include "common/check.h"
#include "core/port.h"
#include "spec/checker.h"
#include "spec/refinement.h"
#include "spec/value.h"
#include "specs/kvlog.h"

namespace praft {
namespace {

using spec::CheckOptions;
using spec::CheckResult;
using spec::ModelChecker;
using spec::RefinementChecker;
using spec::V;
using spec::Value;
using spec::VT;

// ---------------------------------------------------------------------------
// Value semantics.
// ---------------------------------------------------------------------------

TEST(ValueTest, ScalarBasics) {
  EXPECT_TRUE(Value::none().is_none());
  EXPECT_EQ(V(7).as_int(), 7);
  EXPECT_TRUE(V(true).as_bool());
  EXPECT_EQ(V("x").as_string(), "x");
  EXPECT_FALSE(V(1) == V(2));
  EXPECT_TRUE(V(1) == V(1));
}

TEST(ValueTest, SetsAreCanonical) {
  const Value s1 = Value::set({V(3), V(1), V(2), V(1)});
  const Value s2 = Value::set({V(1), V(2), V(3)});
  EXPECT_TRUE(s1 == s2);
  EXPECT_EQ(s1.hash(), s2.hash());
  EXPECT_EQ(s1.size(), 3u);
  EXPECT_TRUE(s1.contains(V(2)));
  EXPECT_FALSE(s1.contains(V(9)));
}

TEST(ValueTest, WithAddedIsPersistent) {
  const Value s = Value::set({V(1)});
  const Value s2 = s.with_added(V(2));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s2.size(), 2u);
  EXPECT_TRUE(s2.with_added(V(2)) == s2);  // idempotent
}

TEST(ValueTest, TupleUpdate) {
  const Value t = VT(V(1), V(2), V(3));
  const Value t2 = t.with_at(1, V(9));
  EXPECT_EQ(t.at(1).as_int(), 2);
  EXPECT_EQ(t2.at(1).as_int(), 9);
  EXPECT_NE(t.hash(), t2.hash());
}

TEST(ValueTest, MapOperations) {
  Value m = Value::map({});
  m = m.with_put(V("a"), V(1));
  m = m.with_put(V("b"), V(2));
  m = m.with_put(V("a"), V(3));
  EXPECT_EQ(m.get(V("a")).as_int(), 3);
  EXPECT_EQ(m.get(V("b")).as_int(), 2);
  EXPECT_TRUE(m.get(V("zzz")).is_none());
  EXPECT_EQ(m.size(), 2u);
}

TEST(ValueTest, OrderingIsTotal) {
  std::vector<Value> vals = {Value::none(), V(false), V(0), V("a"),
                             VT(V(1)),      Value::set({V(1)})};
  for (size_t i = 0; i < vals.size(); ++i) {
    for (size_t j = 0; j < vals.size(); ++j) {
      const bool lt = vals[i] < vals[j];
      const bool gt = vals[j] < vals[i];
      const bool eq = vals[i] == vals[j];
      EXPECT_EQ(static_cast<int>(lt) + static_cast<int>(gt) +
                    static_cast<int>(eq),
                1);
    }
  }
}

TEST(ValueTest, ToStringReadable) {
  EXPECT_EQ(VT(V(1), V("x")).to_string(), "<<1, \"x\">>");
  EXPECT_EQ(Value::set({V(2), V(1)}).to_string(), "{1, 2}");
}

// ---------------------------------------------------------------------------
// Model checker on the Fig. 4 example.
// ---------------------------------------------------------------------------

TEST(ModelCheckerTest, ExploresKvStoreCompletely) {
  auto bundle = specs::make_kvlog(2, 2);
  const CheckResult res = ModelChecker::check(bundle->a);
  EXPECT_TRUE(res.ok);
  EXPECT_TRUE(res.complete);
  // table: 3 options per key (none,1,2)^2 x output: 3 = 27, minus the two
  // unreachable "output bound but table fully empty" states (no deletes).
  EXPECT_EQ(res.states, 25u);
}

TEST(ModelCheckerTest, LogHasFewerStatesThanKv) {
  // The contiguity guard prunes sparse logs.
  auto bundle = specs::make_kvlog(2, 2);
  const CheckResult a = ModelChecker::check(bundle->a);
  const CheckResult b = ModelChecker::check(bundle->b);
  EXPECT_TRUE(b.ok);
  EXPECT_TRUE(b.complete);
  EXPECT_LT(b.states, a.states);
}

TEST(ModelCheckerTest, FindsViolationWithTrace) {
  // A deliberately wrong invariant produces a counterexample trace.
  auto bundle = specs::make_kvlog(1, 1);
  bundle->a.add_invariant(spec::Invariant{
      "TableNeverBound",
      [](const spec::Spec& sp, const spec::State& s) {
        return sp.get(s, "table").at(0).is_none();
      }});
  const CheckResult res = ModelChecker::check(bundle->a);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.failure, "TableNeverBound");
  ASSERT_FALSE(res.trace.empty());
  EXPECT_NE(res.trace.back().find("Put"), std::string::npos);
}

TEST(ModelCheckerTest, BudgetBoundsExploration) {
  auto bundle = specs::make_kvlog(2, 2);
  CheckOptions opt;
  opt.max_states = 5;
  const CheckResult res = ModelChecker::check(bundle->a, opt);
  EXPECT_TRUE(res.ok);
  EXPECT_FALSE(res.complete);
  EXPECT_LE(res.states, 6u);
}

// ---------------------------------------------------------------------------
// Refinement: B (log) refines A (kv store) — Fig. 4a/4b.
// ---------------------------------------------------------------------------

TEST(RefinementTest, LogRefinesKvStore) {
  auto bundle = specs::make_kvlog(2, 2);
  const auto res = RefinementChecker::check(bundle->b, bundle->a, bundle->f);
  EXPECT_TRUE(res.ok) << res.summary();
  EXPECT_TRUE(res.complete);
  EXPECT_GT(res.transitions, 0u);
}

TEST(RefinementTest, BrokenMappingIsRejected) {
  auto bundle = specs::make_kvlog(2, 2);
  spec::RefinementMapping wrong = bundle->f;
  wrong.map_state = [](const spec::Spec& bs, const spec::State& s) {
    // Swap the variables: output becomes the table. Nonsense on purpose.
    return spec::State{VT(bs.get(s, "output"), bs.get(s, "output")),
                       bs.get(s, "output")};
  };
  const auto res = RefinementChecker::check(bundle->b, bundle->a, wrong);
  EXPECT_FALSE(res.ok);
}

// ---------------------------------------------------------------------------
// The §4.3 port on the Fig. 4 example: the full Fig. 5 diamond.
// ---------------------------------------------------------------------------

class KvLogPortTest : public ::testing::Test {
 protected:
  KvLogPortTest()
      : bundle_(specs::make_kvlog(2, 2)),
        ad_(core::apply_delta(bundle_->a, bundle_->delta)),
        bd_(core::port(bundle_->b, bundle_->f, bundle_->corr, bundle_->delta)) {}

  std::unique_ptr<specs::KvLogBundle> bundle_;
  spec::Spec ad_;  // AΔ — Fig. 4c
  spec::Spec bd_;  // BΔ — Fig. 4d, generated mechanically
};

TEST_F(KvLogPortTest, DeltaSpecHoldsItsInvariant) {
  const CheckResult res = ModelChecker::check(ad_);
  EXPECT_TRUE(res.ok) << res.summary();  // size == #bound keys
  EXPECT_TRUE(res.complete);
}

TEST_F(KvLogPortTest, PortedSpecHasDeltaVariable) {
  EXPECT_TRUE(bd_.has_var("size"));
  EXPECT_TRUE(bd_.has_var("logs"));
  EXPECT_EQ(bd_.init().size(), 1u);
}

TEST_F(KvLogPortTest, AdRefinesA) {
  // §4.2: a non-mutating optimization refines the base protocol under the
  // projection that drops the new variables.
  const auto proj = core::projection_mapping(ad_, bundle_->a);
  const auto res = RefinementChecker::check(ad_, bundle_->a, proj);
  EXPECT_TRUE(res.ok) << res.summary();
}

TEST_F(KvLogPortTest, BdRefinesB) {
  const auto proj = core::projection_mapping(bd_, bundle_->b);
  const auto res = RefinementChecker::check(bd_, bundle_->b, proj);
  EXPECT_TRUE(res.ok) << res.summary();
  EXPECT_TRUE(res.complete);
}

TEST_F(KvLogPortTest, BdRefinesAd) {
  const auto lifted =
      core::lifted_mapping(bundle_->f, bd_, ad_, bundle_->delta);
  const auto res = RefinementChecker::check(bd_, ad_, lifted);
  EXPECT_TRUE(res.ok) << res.summary();
  EXPECT_TRUE(res.complete);
}

TEST_F(KvLogPortTest, PortedGuardMatchesFig4d) {
  // In BΔ, Write(i, v) must be disabled once logs[i] is bound (the ported
  // "table[k] = {}" clause) and must bump size when enabled.
  const spec::State s0 = bd_.init()[0];
  auto succs = bd_.successors(s0);
  int64_t size_after_write = -1;
  for (const auto& [ai, next] : succs) {
    if (ai.action == "Write") {
      size_after_write = bd_.get(next, "size").as_int();
      // A second write to the same slot must now be disabled.
      const auto* write = bd_.action("Write");
      ASSERT_NE(write, nullptr);
      auto again = write->step(bd_, next, ai.params);
      EXPECT_FALSE(again.has_value());
    }
  }
  EXPECT_EQ(size_after_write, 1);
}

TEST_F(KvLogPortTest, EngineRejectsMutatingDelta) {
  // A delta whose clause writes an A-variable must be rejected (§4.2).
  core::OptimizationDelta bad;
  bad.name = "mutating";
  bad.new_vars.emplace_back("junk", V(0));
  core::ModifiedAction m;
  m.base = "Put";
  m.clause.apply = [](const core::VarFn&, const core::VarFn&,
                      const core::VarFn&, const std::vector<Value>&)
      -> std::optional<core::DeltaUpdates> {
    core::DeltaUpdates u;
    u["output"] = V(666);  // writes an A variable!
    return u;
  };
  bad.modified.push_back(std::move(m));
  spec::Spec abad = core::apply_delta(bundle_->a, bad);
  const spec::State s0 = abad.init()[0];
  const auto* put = abad.action("Put");
  ASSERT_NE(put, nullptr);
  EXPECT_THROW(put->step(abad, s0, {V(0), V(1)}), praft::CheckFailure);
}

}  // namespace
}  // namespace praft
