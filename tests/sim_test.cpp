#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/packet.h"
#include "sim/event_queue.h"
#include "sim/faults.h"
#include "sim/latency.h"
#include "sim/network.h"
#include "sim/resources.h"
#include "sim/simulator.h"

namespace praft::sim {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule_at(30, [&] { fired.push_back(3); });
  q.schedule_at(10, [&] { fired.push_back(1); });
  q.schedule_at(20, [&] { fired.push_back(2); });
  q.run_all();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(100, [&fired, i] { fired.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelSuppresses) {
  EventQueue q;
  int count = 0;
  const EventId id = q.schedule_at(10, [&] { ++count; });
  q.schedule_at(20, [&] { ++count; });
  q.cancel(id);
  q.run_all();
  EXPECT_EQ(count, 1);
}

TEST(EventQueueTest, RunUntilAdvancesClock) {
  EventQueue q;
  int count = 0;
  q.schedule_at(50, [&] { ++count; });
  q.schedule_at(150, [&] { ++count; });
  q.run_until(100);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(q.now(), 100);
  q.run_until(200);
  EXPECT_EQ(count, 2);
}

TEST(EventQueueTest, EventsScheduledDuringRunFire) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_at(q.now() + 10, recurse);
  };
  q.schedule_at(0, recurse);
  q.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), 40);
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue q;
  q.schedule_at(100, [] {});
  q.run_all();
  bool ran = false;
  q.schedule_at(5, [&] { ran = true; });  // in the past
  q.run_all();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), 100);
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  Simulator s(1);
  Time seen = -1;
  s.after(msec(5), [&] { seen = s.now(); });
  s.run_for(msec(10));
  EXPECT_EQ(seen, msec(5));
}

TEST(SerialResourceTest, QueuesWork) {
  SerialResource r;
  EXPECT_EQ(r.enqueue(0, 10), 10);
  EXPECT_EQ(r.enqueue(0, 10), 20);   // queued behind the first
  EXPECT_EQ(r.enqueue(100, 5), 105); // idle gap, starts at arrival
  EXPECT_EQ(r.busy_time(), 25);
}

TEST(EgressLinkTest, BandwidthDelay) {
  // 8 Mbps = 1 byte/us.
  EgressLink link(EgressLink::mbps_to_bytes_per_us(8.0));
  EXPECT_EQ(link.enqueue(0, 1000), 1000);
  EXPECT_EQ(link.enqueue(0, 1000), 2000);
}

TEST(EgressLinkTest, UnlimitedIsInstant) {
  EgressLink link;
  EXPECT_EQ(link.enqueue(42, 1 << 20), 42);
}

TEST(LatencyMatrixTest, Aws5MatchesPaperSpread) {
  const LatencyMatrix m = LatencyMatrix::aws5();
  EXPECT_EQ(m.num_sites(), 5);
  Duration lo = kTimeMax, hi = 0;
  for (SiteId a = 0; a < 5; ++a) {
    for (SiteId b = a + 1; b < 5; ++b) {
      lo = std::min(lo, m.rtt(a, b));
      hi = std::max(hi, m.rtt(a, b));
    }
  }
  EXPECT_EQ(lo, msec(25));   // Ohio–Canada
  EXPECT_EQ(hi, msec(292));  // Ireland–Seoul (the paper's extreme)
  EXPECT_EQ(m.site_name(LatencyMatrix::kOregon), "Oregon");
}

TEST(LatencyMatrixTest, OregonNearestQuorumIsOhioCanada) {
  // §5.2: "the quorum of Oregon, Ohio and Canada are closest to each other".
  const LatencyMatrix m = LatencyMatrix::aws5();
  const Duration to_ohio = m.rtt(LatencyMatrix::kOregon, LatencyMatrix::kOhio);
  const Duration to_canada =
      m.rtt(LatencyMatrix::kOregon, LatencyMatrix::kCanada);
  const Duration to_ireland =
      m.rtt(LatencyMatrix::kOregon, LatencyMatrix::kIreland);
  const Duration to_seoul =
      m.rtt(LatencyMatrix::kOregon, LatencyMatrix::kSeoul);
  EXPECT_LT(std::max(to_ohio, to_canada), std::min(to_ireland, to_seoul));
}

TEST(LatencyMatrixTest, JitterBounded) {
  LatencyMatrix m = LatencyMatrix::aws5();
  m.set_jitter(0.05);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Duration d = m.one_way(0, 4, rng);
    EXPECT_GE(d, msec(126) / 2 * 95 / 100);
    EXPECT_LE(d, msec(126) / 2 * 105 / 100);
  }
}

TEST(FaultPlanTest, CrashWindows) {
  FaultPlan f;
  f.crash(3, msec(10), msec(20));
  EXPECT_FALSE(f.is_down(3, msec(5)));
  EXPECT_TRUE(f.is_down(3, msec(15)));
  EXPECT_FALSE(f.is_down(3, msec(20)));
  EXPECT_FALSE(f.is_down(2, msec(15)));
}

TEST(FaultPlanTest, PartitionPairsAndIsolation) {
  FaultPlan f;
  f.partition_pair(0, 1, 0, msec(10));
  f.isolate(2, msec(5), msec(15));
  EXPECT_TRUE(f.is_blocked(0, 1, msec(1)));
  EXPECT_TRUE(f.is_blocked(1, 0, msec(1)));
  EXPECT_FALSE(f.is_blocked(0, 1, msec(10)));
  EXPECT_TRUE(f.is_blocked(2, 4, msec(6)));
  EXPECT_TRUE(f.is_blocked(4, 2, msec(6)));
  EXPECT_FALSE(f.is_blocked(0, 3, msec(6)));
}

class NetworkFixture : public ::testing::Test {
 protected:
  NetworkFixture() : sim_(7), net_(sim_, LatencyMatrix::aws5()) {}

  NodeId add(SiteId site, double egress = 0.0) {
    const auto idx = received_.size();
    received_.emplace_back();
    return net_.add_node(site,
                         [this, idx](net::Packet&& p) {
                           received_[idx].push_back(std::move(p));
                         },
                         egress);
  }

  Simulator sim_;
  Network net_;
  std::vector<std::vector<net::Packet>> received_;
};

TEST_F(NetworkFixture, DeliversAfterOneWayLatency) {
  const NodeId a = add(LatencyMatrix::kOregon);
  const NodeId b = add(LatencyMatrix::kSeoul);
  net_.send(a, b, std::string("hi"), 100);
  sim_.run_for(msec(50));
  EXPECT_TRUE(received_[1].empty());  // 126/2 = 63 ms one way
  sim_.run_for(msec(30));
  ASSERT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(*net::payload_as<std::string>(received_[1][0]), "hi");
  EXPECT_EQ(received_[1][0].from, a);
}

TEST_F(NetworkFixture, IntraSiteIsFast) {
  const NodeId a = add(0);
  const NodeId b = add(0);
  net_.send(a, b, 1, 10);
  sim_.run_for(msec(2));
  EXPECT_EQ(received_[1].size(), 1u);
}

TEST_F(NetworkFixture, CrashedNodeNeitherSendsNorReceives) {
  const NodeId a = add(0);
  const NodeId b = add(1);
  net_.faults().crash(b, 0, sec(1));
  net_.send(a, b, 1, 10);
  sim_.run_for(msec(500));
  EXPECT_TRUE(received_[1].empty());
  net_.faults().crash(a, sec(1), sec(2));
  sim_.run_until(sec(1) + msec(1));
  net_.send(a, b, 2, 10);
  sim_.run_for(msec(500));
  EXPECT_TRUE(received_[1].empty());
}

TEST_F(NetworkFixture, CrashInFlightDropsDelivery) {
  const NodeId a = add(LatencyMatrix::kOregon);
  const NodeId b = add(LatencyMatrix::kSeoul);
  net_.send(a, b, 1, 10);           // arrives ~63 ms
  net_.faults().crash(b, msec(10), msec(200));
  sim_.run_for(msec(150));
  EXPECT_TRUE(received_[1].empty());
}

TEST_F(NetworkFixture, PartitionBlocksBothWays) {
  const NodeId a = add(0);
  const NodeId b = add(1);
  net_.faults().partition_pair(a, b, 0, sec(1));
  net_.send(a, b, 1, 10);
  net_.send(b, a, 2, 10);
  sim_.run_for(msec(500));
  EXPECT_TRUE(received_[0].empty());
  EXPECT_TRUE(received_[1].empty());
  sim_.run_until(sec(1) + msec(1));
  net_.send(a, b, 3, 10);
  sim_.run_for(msec(100));
  EXPECT_EQ(received_[1].size(), 1u);
}

TEST_F(NetworkFixture, DropRateLosesRoughlyThatFraction) {
  const NodeId a = add(0);
  const NodeId b = add(0);
  net_.faults().set_drop_rate(0.5);
  for (int i = 0; i < 1000; ++i) net_.send(a, b, i, 10);
  sim_.run_for(msec(100));
  EXPECT_GT(received_[1].size(), 350u);
  EXPECT_LT(received_[1].size(), 650u);
}

TEST_F(NetworkFixture, EgressBandwidthSerializesLargeSends) {
  // 1 byte/us egress: 10 x 1000-byte messages take ~10 ms to drain.
  const NodeId a = add(0, 1.0);
  const NodeId b = add(0);
  for (int i = 0; i < 10; ++i) net_.send(a, b, i, 1000);
  sim_.run_for(msec(3));
  EXPECT_LT(received_[1].size(), 4u);
  sim_.run_for(msec(12));
  EXPECT_EQ(received_[1].size(), 10u);
}

TEST_F(NetworkFixture, LinksAreFifoDespiteJitter) {
  // TCP semantics: a (src, dst) stream never reorders, however the jitter
  // lands. Raft*'s no-erase append rule depends on this (DESIGN.md §5).
  const NodeId a = add(LatencyMatrix::kOregon);
  const NodeId b = add(LatencyMatrix::kSeoul);
  for (int i = 0; i < 200; ++i) net_.send(a, b, i, 10);
  sim_.run_for(msec(200));
  ASSERT_EQ(received_[1].size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(*net::payload_as<int>(received_[1][static_cast<size_t>(i)]), i);
  }
}

TEST_F(NetworkFixture, FifoIsPerLinkNotGlobal) {
  // Traffic on different links may interleave arbitrarily.
  const NodeId a = add(LatencyMatrix::kOregon);
  const NodeId b = add(LatencyMatrix::kOhio);
  const NodeId c = add(LatencyMatrix::kOhio);
  net_.send(a, c, 1, 10);
  net_.send(b, c, 2, 10);  // much closer: arrives first
  sim_.run_for(msec(100));
  ASSERT_EQ(received_[2].size(), 2u);
  EXPECT_EQ(*net::payload_as<int>(received_[2][0]), 2);
}

TEST_F(NetworkFixture, CountersTrack) {
  const NodeId a = add(0);
  const NodeId b = add(0);
  net_.send(a, b, 1, 128);
  sim_.run_for(msec(10));
  EXPECT_EQ(net_.messages_sent(), 1u);
  EXPECT_EQ(net_.messages_delivered(), 1u);
  EXPECT_EQ(net_.bytes_sent(), 128u);
}

}  // namespace
}  // namespace praft::sim
