#pragma once

#include <cstdio>
#include <string>

#include "harness/experiment.h"

namespace praft::bench {

inline void print_header(const std::string& title, const std::string& paper) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper.c_str());
  std::printf("==============================================================\n");
}

inline void print_latency_row(const char* system, const char* cls,
                              const harness::LatencySummary& s) {
  std::printf("%-14s %-10s  p50 %9.1f ms   p90 %9.1f ms   p99 %9.1f ms   (n=%lld)\n",
              system, cls, to_ms(s.p50), to_ms(s.p90), to_ms(s.p99),
              static_cast<long long>(s.count));
}

/// The Fig. 9 default workload: YCSB-like, 90% reads, 5% conflicts (§5.1).
inline kv::WorkloadConfig fig9_workload() {
  kv::WorkloadConfig wl;
  wl.read_fraction = 0.9;
  wl.conflict_rate = 0.05;
  wl.num_records = 100'000;
  wl.value_size = 8;
  return wl;
}

/// The Fig. 10 workload: 100% puts (§5.2).
inline kv::WorkloadConfig fig10_workload(uint32_t value_size,
                                         double conflict_rate) {
  kv::WorkloadConfig wl;
  wl.read_fraction = 0.0;
  wl.conflict_rate = conflict_rate;
  wl.num_records = 100'000;
  wl.value_size = value_size;
  return wl;
}

}  // namespace praft::bench
