#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace praft::bench {

/// Machine-readable benchmark output. Every fig binary accepts
/// `--json=<path>` (or bare `--json` for the default `BENCH_<name>.json`)
/// and then mirrors each printed figure as one JSON row — per-system
/// p50/p90/p99 latencies and throughputs — so perf trajectories can be
/// tracked across commits without scraping stdout.
///
/// File shape (schema_version 2 adds the seed + version stamp so bench
/// trajectories stay comparable across PRs — a row from an old file can be
/// rejected or migrated instead of silently compared):
///   {"bench": "fig9a", "schema_version": 2, "seed": 90001, "rows": [
///     {"system": "Raft", "class": "Leader", "metric": "latency",
///      "p50_ms": 69.1, "p90_ms": 71.0, "p99_ms": 75.2, "count": 123},
///     {"system": "Raft", "label": "clients=50", "metric": "throughput",
///      "ops_per_sec": 41230.0}]}
class JsonEmitter {
 public:
  /// `default_path`: pass non-empty to emit even without a --json flag
  /// (the catch-up bench always writes its BENCH_*.json).
  JsonEmitter(std::string bench, int argc, char** argv,
              std::string default_path = "")
      : bench_(std::move(bench)), path_(std::move(default_path)) {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--json=", 7) == 0) {
        path_ = a + 7;
      } else if (std::strcmp(a, "--json") == 0) {
        path_ = "BENCH_" + bench_ + ".json";
      }
    }
  }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Stamps the emitted file with the simulation seed that produced it.
  void set_seed(uint64_t seed) {
    seed_ = seed;
    has_seed_ = true;
  }

  void add_latency(const std::string& system, const std::string& cls,
                   const harness::LatencySummary& s) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"system\": \"%s\", \"class\": \"%s\", "
                  "\"metric\": \"latency\", \"p50_ms\": %.3f, "
                  "\"p90_ms\": %.3f, \"p99_ms\": %.3f, \"count\": %lld}",
                  system.c_str(), cls.c_str(), to_ms(s.p50), to_ms(s.p90),
                  to_ms(s.p99), static_cast<long long>(s.count));
    rows_.push_back(buf);
  }

  void add_throughput(const std::string& system, const std::string& label,
                      double ops_per_sec) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"system\": \"%s\", \"label\": \"%s\", "
                  "\"metric\": \"throughput\", \"ops_per_sec\": %.1f}",
                  system.c_str(), label.c_str(), ops_per_sec);
    rows_.push_back(buf);
  }

  /// Free-form scalar (the catch-up bench reports latencies, resident log
  /// sizes and snapshot counts through this).
  void add_value(const std::string& system, const std::string& label,
                 const std::string& metric, double value) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"system\": \"%s\", \"label\": \"%s\", "
                  "\"metric\": \"%s\", \"value\": %.3f}",
                  system.c_str(), label.c_str(), metric.c_str(), value);
    rows_.push_back(buf);
  }

  /// Writes the collected rows. Returns false (with a message on stderr)
  /// when the path cannot be opened; no-op without --json.
  bool write() const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"schema_version\": %d",
                 bench_.c_str(), kSchemaVersion);
    if (has_seed_) {
      std::fprintf(f, ", \"seed\": %llu",
                   static_cast<unsigned long long>(seed_));
    }
    std::fprintf(f, ", \"rows\": [");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s%s", i == 0 ? "\n  " : ",\n  ", rows_[i].c_str());
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path_.c_str(), rows_.size());
    return true;
  }

 private:
  /// Bump when the row shape or header changes incompatibly. v2: header
  /// gained schema_version + seed.
  static constexpr int kSchemaVersion = 2;

  std::string bench_;
  std::string path_;
  std::vector<std::string> rows_;
  uint64_t seed_ = 0;
  bool has_seed_ = false;
};

inline void print_header(const std::string& title, const std::string& paper) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper.c_str());
  std::printf("==============================================================\n");
}

inline void print_latency_row(const char* system, const char* cls,
                              const harness::LatencySummary& s) {
  std::printf("%-14s %-10s  p50 %9.1f ms   p90 %9.1f ms   p99 %9.1f ms   (n=%lld)\n",
              system, cls, to_ms(s.p50), to_ms(s.p90), to_ms(s.p99),
              static_cast<long long>(s.count));
}

/// The Fig. 9 default workload: YCSB-like, 90% reads, 5% conflicts (§5.1).
inline kv::WorkloadConfig fig9_workload() {
  kv::WorkloadConfig wl;
  wl.read_fraction = 0.9;
  wl.conflict_rate = 0.05;
  wl.num_records = 100'000;
  wl.value_size = 8;
  return wl;
}

/// The Fig. 10 workload: 100% puts (§5.2).
inline kv::WorkloadConfig fig10_workload(uint32_t value_size,
                                         double conflict_rate) {
  kv::WorkloadConfig wl;
  wl.read_fraction = 0.0;
  wl.conflict_rate = conflict_rate;
  wl.num_records = 100'000;
  wl.value_size = value_size;
  return wl;
}

}  // namespace praft::bench
