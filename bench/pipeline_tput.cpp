// Replication-pipelining benchmark: end-to-end write throughput and client
// latency for all four protocols, with the per-peer in-flight window
// (consensus::PeerPipeline) on vs off, swept across a flat all-pairs RTT
// from LAN to intercontinental. Emits BENCH_pipeline.json.
//
// Both modes run with the same small append batch (64 entries) so the
// unpipelined baseline is a genuine stop-and-wait: one batch per peer per
// RTT. Pipelining should win by roughly RTT / service-time once the RTT —
// not the leader's CPU — is the bottleneck; at LAN scale the two must tie
// (both CPU-capped), which is the no-regression guard.
#include <cstdio>

#include "bench_util.h"

using namespace praft;

namespace {

constexpr uint64_t kSeed = 90020;

struct Point {
  Duration rtt;
  const char* tag;
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonEmitter json("pipeline", argc, argv, "BENCH_pipeline.json");
  json.set_seed(kSeed);
  bench::print_header("Replication pipelining throughput",
                      "per-peer in-flight window on/off x RTT sweep (PR 8)");

  const Point points[] = {
      {msec(1) / 2, "rtt0.5ms"},
      {msec(25), "rtt25ms"},
      {msec(50), "rtt50ms"},
      {msec(150), "rtt150ms"},
  };
  const char* protocols[] = {"raft", "raftstar", "multipaxos", "mencius"};

  // ops/s by [protocol][point][pipelined] for the speedup summary.
  double tput[4][4][2] = {};

  for (int pi = 0; pi < 4; ++pi) {
    for (int ri = 0; ri < 4; ++ri) {
      for (int pipe = 0; pipe <= 1; ++pipe) {
        harness::ExperimentConfig cfg;
        cfg.protocol = protocols[pi];
        cfg.flat_rtt = points[ri].rtt;
        cfg.workload = bench::fig10_workload(/*value_size=*/8,
                                             /*conflict_rate=*/0.0);
        cfg.clients_per_region = 80;
        cfg.run = sec(3);
        cfg.warmup = sec(1);
        cfg.seed = kSeed;
        // Same bounded batch both modes: off == stop-and-wait per peer.
        cfg.timing.max_entries_per_batch = 64;
        cfg.timing.pipeline = (pipe == 1);
        const auto res = harness::run_experiment(cfg);
        tput[pi][ri][pipe] = res.throughput_ops;

        char label[64];
        std::snprintf(label, sizeof(label), "%s-%s", points[ri].tag,
                      pipe ? "pipelined" : "stopwait");
        json.add_throughput(protocols[pi], label, res.throughput_ops);
        char cls[80];
        std::snprintf(cls, sizeof(cls), "%s-writes", label);
        json.add_latency(protocols[pi], cls, res.leader_writes);
        std::printf("%-12s %-9s %-9s %10.0f ops/s   write p50 %7.1f ms  "
                    "p99 %7.1f ms\n",
                    protocols[pi], points[ri].tag,
                    pipe ? "pipelined" : "stopwait", res.throughput_ops,
                    res.leader_writes.p50 / 1000.0,
                    res.leader_writes.p99 / 1000.0);
      }
    }
  }

  // Speedup summary: pipelined / stop-and-wait per protocol per RTT. The
  // acceptance bar is >= 2x at 50 ms for the leader-based protocols and no
  // LAN regression (ratio ~1 at 0.5 ms is expected — both CPU-capped).
  std::printf("\nspeedup (pipelined / stop-and-wait):\n");
  for (int pi = 0; pi < 4; ++pi) {
    std::printf("  %-12s", protocols[pi]);
    for (int ri = 0; ri < 4; ++ri) {
      const double base = tput[pi][ri][0];
      const double ratio = base > 0 ? tput[pi][ri][1] / base : 0;
      json.add_value(protocols[pi], points[ri].tag, "pipeline_speedup",
                     ratio);
      std::printf("  %s %5.2fx", points[ri].tag, ratio);
    }
    std::printf("\n");
  }

  return json.write() ? 0 : 1;
}
