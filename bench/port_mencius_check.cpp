// E11: the automated Mencius port (the paper's second case study):
// CoorPaxos = MultiPaxos + Delta (B.5), CoorRaft = port(...) (B.6), plus the
// Fig. 5 diamond and the skip-safety invariants on the GENERATED spec.
#include <cstdio>

#include "bench_util.h"
#include "core/port.h"
#include "spec/refinement.h"
#include "specs/deltas.h"
#include "specs/raftstar_spec.h"

using namespace praft;

int main() {
  bench::print_header("§4.3 port of Mencius -> Raft*-Mencius (CoorRaft)",
                      "Wang et al., PODC'19, §A.3-A.4, Appendix B.5/B.6");
  specs::ConsensusScope sc;
  sc.acceptors = 3;  // richer default-leader structure than n=2
  sc.ballots = 2;
  sc.indexes = 1;
  sc.values = specs::mencius_values();
  auto bundle = specs::make_raftstar_bundle(sc);
  auto delta = specs::make_mencius_delta(sc);
  spec::Spec ad = core::apply_delta(*bundle->paxos, delta);
  spec::Spec bd = core::port(*bundle->raftstar, bundle->f, bundle->corr, delta);

  std::printf("generated spec: %s\n  variables:", bd.name().c_str());
  for (const auto& v : bd.vars()) std::printf(" %s", v.c_str());
  std::printf("\n\n");

  spec::CheckOptions mopt;
  mopt.max_states = 60'000;
  std::printf("CoorPaxos (AΔ) invariants incl. NoSkippedValueChosen:\n  %s\n",
              spec::ModelChecker::check(ad, mopt).summary().c_str());

  spec::Spec bd_inv = core::port(*bundle->raftstar, bundle->f, bundle->corr,
                                 delta);
  for (const auto& inv : delta.new_invariants) bd_inv.add_invariant(inv);
  std::printf("CoorRaft (BΔ) skip-safety invariants:\n  %s\n",
              spec::ModelChecker::check(bd_inv, mopt).summary().c_str());

  spec::RefinementOptions ropt;
  ropt.max_states = 60'000;
  const auto proj = core::projection_mapping(bd, *bundle->raftstar);
  std::printf("CoorRaft => Raft* (correctness w.r.t. B):\n  %s\n",
              spec::RefinementChecker::check(bd, *bundle->raftstar, proj, ropt)
                  .summary().c_str());
  const auto lifted = core::lifted_mapping(bundle->f, bd, ad, delta);
  std::printf("CoorRaft => CoorPaxos (optimization preserved):\n  %s\n",
              spec::RefinementChecker::check(bd, ad, lifted, ropt)
                  .summary().c_str());
  return 0;
}
