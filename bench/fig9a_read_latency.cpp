// Figure 9(a): read latency at the leader site vs follower sites for
// Raft*-PQL, Raft*-LL, Raft and Raft* (50 clients/region, 90% reads, 5%
// conflicts). Expected shape: PQL serves reads locally EVERYWHERE (~1 ms);
// LL only at the leader; Raft/Raft* pay a WAN quorum round trip everywhere,
// and follower clients additionally pay the forwarding hop.
#include "bench_util.h"

using namespace praft;

namespace {
constexpr uint64_t kSeed = 90001;
}  // namespace
using harness::ExperimentConfig;
using harness::SystemKind;

int main(int argc, char** argv) {
  bench::JsonEmitter json("fig9a", argc, argv);
  json.set_seed(kSeed);
  bench::print_header("Fig 9a — Read latency (leader vs followers)",
                      "Wang et al., PODC'19, Figure 9(a)");
  const SystemKind systems[] = {SystemKind::kRaftStarPql, SystemKind::kRaftStarLL,
                                SystemKind::kRaft, SystemKind::kRaftStar};
  for (SystemKind sys : systems) {
    ExperimentConfig cfg;
    cfg.system = sys;
    cfg.workload = bench::fig9_workload();
    cfg.clients_per_region = 50;
    cfg.leader_replica = 0;  // Oregon
    cfg.run = sec(8);
    cfg.warmup = sec(3);  // leases + steady state
    cfg.seed = kSeed;
    const auto res = harness::run_experiment(cfg);
    bench::print_latency_row(harness::system_name(sys), "Leader",
                             res.leader_reads);
    bench::print_latency_row(harness::system_name(sys), "Followers",
                             res.follower_reads);
    json.add_latency(harness::system_name(sys), "Leader", res.leader_reads);
    json.add_latency(harness::system_name(sys), "Followers",
                     res.follower_reads);
  }
  return json.write() ? 0 : 1;
}
