// Figure 9(c): peak throughput vs read percentage (50/90/99%). Expected
// shape: Raft, Raft* and LL plateau at the leader's CPU capacity; Raft*-PQL
// scales with the read fraction because every replica serves reads locally
// (paper: 1.6x at 90%, 1.9x at 99%).
#include "bench_util.h"

using namespace praft;

namespace {
constexpr uint64_t kSeed = 90003;
}  // namespace
using harness::ExperimentConfig;
using harness::SystemKind;

int main(int argc, char** argv) {
  bench::JsonEmitter json("fig9c", argc, argv);
  json.set_seed(kSeed);
  bench::print_header("Fig 9c — Peak throughput vs read percentage",
                      "Wang et al., PODC'19, Figure 9(c)");
  const SystemKind systems[] = {SystemKind::kRaft, SystemKind::kRaftStar,
                                SystemKind::kRaftStarLL,
                                SystemKind::kRaftStarPql};
  const double read_pcts[] = {0.50, 0.90, 0.99};
  std::printf("%-14s %8s %14s\n", "system", "read%", "tput (ops/s)");
  double raft_tput[3] = {0, 0, 0};
  for (SystemKind sys : systems) {
    int col = 0;
    for (double rp : read_pcts) {
      ExperimentConfig cfg;
      cfg.system = sys;
      cfg.workload = bench::fig9_workload();
      cfg.workload.read_fraction = rp;
      cfg.clients_per_region = 1200;  // enough to saturate the leader CPU
      cfg.leader_replica = 0;
      cfg.run = sec(4);
      cfg.warmup = sec(3);
      cfg.seed = kSeed;
      const auto res = harness::run_experiment(cfg);
      if (sys == SystemKind::kRaft) raft_tput[col] = res.throughput_ops;
      char label[32];
      std::snprintf(label, sizeof(label), "reads=%.0f%%", rp * 100);
      json.add_throughput(harness::system_name(sys), label,
                          res.throughput_ops);
      std::printf("%-14s %7.0f%% %14.0f", harness::system_name(sys), rp * 100,
                  res.throughput_ops);
      if (sys == SystemKind::kRaftStarPql && raft_tput[col] > 0) {
        std::printf("   (%.2fx Raft)", res.throughput_ops / raft_tput[col]);
      }
      std::printf("\n");
      ++col;
    }
  }
  return json.write() ? 0 : 1;
}
