// Figure 9(b): write latency. Expected shape: Raft*-PQL writes are a bit
// SLOWER than everyone else's — commit must wait for every lease holder to
// acknowledge, not just the fastest majority (§5.1).
#include "bench_util.h"

using namespace praft;

namespace {
constexpr uint64_t kSeed = 90002;
}  // namespace
using harness::ExperimentConfig;
using harness::SystemKind;

int main(int argc, char** argv) {
  bench::JsonEmitter json("fig9b", argc, argv);
  json.set_seed(kSeed);
  bench::print_header("Fig 9b — Write latency (leader vs followers)",
                      "Wang et al., PODC'19, Figure 9(b)");
  const SystemKind systems[] = {SystemKind::kRaftStarPql, SystemKind::kRaftStarLL,
                                SystemKind::kRaft, SystemKind::kRaftStar};
  for (SystemKind sys : systems) {
    ExperimentConfig cfg;
    cfg.system = sys;
    cfg.workload = bench::fig9_workload();
    cfg.clients_per_region = 50;
    cfg.leader_replica = 0;
    cfg.run = sec(8);
    cfg.warmup = sec(3);
    cfg.seed = kSeed;
    const auto res = harness::run_experiment(cfg);
    bench::print_latency_row(harness::system_name(sys), "Leader",
                             res.leader_writes);
    bench::print_latency_row(harness::system_name(sys), "Followers",
                             res.follower_writes);
    json.add_latency(harness::system_name(sys), "Leader", res.leader_writes);
    json.add_latency(harness::system_name(sys), "Followers",
                     res.follower_writes);
  }
  return json.write() ? 0 : 1;
}
