// Wire-format benchmark: codec cost per message (ns/encode, ns/decode),
// pool allocation behaviour on a warm hot path, and end-to-end replicated
// throughput under the byte-accurate cost model. Emits BENCH_wire.json by
// default so codec regressions show up in perf trajectories like the fig
// benches do.
#include <chrono>

#include "bench_util.h"
#include "net/buffer_pool.h"
#include "net/wire.h"
#include "raft/wire.h"

using namespace praft;

namespace {

constexpr uint64_t kSeed = 90010;

raft::Message make_append(int entries) {
  raft::AppendEntries ae;
  ae.term = 7;
  ae.leader = 0;
  ae.prev_index = 41;
  ae.prev_term = 6;
  ae.commit = 40;
  for (int i = 0; i < entries; ++i) {
    ae.entries.push_back(raft::Entry{7, kv::Command{kv::Op::kPut, 100 + i,
                                                    200 + i, 8, 3, 50 + i}});
  }
  return raft::Message{ae};
}

double ns_per_op(int iters, const std::function<void()>& op) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) op();
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         iters;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonEmitter json("wire", argc, argv, "BENCH_wire.json");
  json.set_seed(kSeed);
  bench::print_header("Wire codec + pooled hot path throughput",
                      "praft flat wire format (PR 6)");

  // --- Codec cost: ns per encode / decode, small and batched appends. ---
  net::BufferPool pool;
  constexpr int kIters = 200'000;
  for (int entries : {0, 1, 8}) {
    const raft::Message m = make_append(entries);
    {  // warm the pool so the loop measures steady state, not slab allocs
      net::Frame f = raft::encode(m, pool);
    }
    const double enc = ns_per_op(kIters, [&] {
      net::Frame f = raft::encode(m, pool);
      (void)f;
    });
    const net::Frame f = raft::encode(m, pool);
    const double dec = ns_per_op(kIters, [&] {
      raft::Message back = raft::decode(net::view(f));
      (void)back;
    });
    char label[48];
    std::snprintf(label, sizeof(label), "AppendEntries[%d]", entries);
    json.add_value("codec", label, "ns_per_encode", enc);
    json.add_value("codec", label, "ns_per_decode", dec);
    std::printf("%-20s encode %8.1f ns   decode %8.1f ns   (%zu bytes)\n",
                label, enc, dec, f.size());
  }

  // --- Pool behaviour: slab allocations on a warm 1k-append burst. ---
  {
    const net::PoolStats before = pool.stats();
    const raft::Message m = make_append(4);
    for (int i = 0; i < 1000; ++i) {
      net::Frame f = raft::encode(m, pool);
    }
    const net::PoolStats after = pool.stats();
    const auto allocs = after.slab_allocs - before.slab_allocs;
    json.add_value("pool", "warm-1k-appends", "slab_allocs",
                   static_cast<double>(allocs));
    json.add_value("pool", "warm-1k-appends", "reuses",
                   static_cast<double>(after.reuses - before.reuses));
    std::printf("warm 1k appends: %llu slab allocs, %llu freelist reuses\n",
                static_cast<unsigned long long>(allocs),
                static_cast<unsigned long long>(after.reuses - before.reuses));
  }

  // --- End-to-end: replicated write throughput per protocol, byte-accurate
  // cost model, every frame encoded through the pooled codec path. ---
  for (const char* protocol : {"raft", "raftstar", "multipaxos", "mencius"}) {
    harness::ExperimentConfig cfg;
    cfg.protocol = protocol;
    cfg.workload = bench::fig10_workload(/*value_size=*/8,
                                         /*conflict_rate=*/0.0);
    cfg.clients_per_region = 200;
    cfg.run = sec(4);
    cfg.warmup = sec(2);
    cfg.seed = kSeed;
    const auto res = harness::run_experiment(cfg);
    json.add_throughput(protocol, "writes-8B", res.throughput_ops);
    std::printf("%-12s end-to-end %10.0f ops/s\n", protocol,
                res.throughput_ops);
  }

  return json.write() ? 0 : 1;
}
