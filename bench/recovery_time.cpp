// Crash-restart recovery latency across all four protocols: how long does a
// replica that REALLY lost its volatile state (node object destroyed,
// rebuilt purely from its durable store) take to become a useful replica
// again — and what do snapshots and group commit buy?
//
//   * snapshots off  -> recovery replays the whole durable WAL;
//   * snapshots on   -> recovery restores the newest checkpoint and replays
//                       only the suffix (bounded by the compaction cap);
//   * group commit   -> fsyncs coalesce across the sync_batch_delay window,
//                       which is where fsync discipline stops dominating
//                       steady-state cost (Marandi et al., "The Performance
//                       of Paxos in the Cloud").
//
// Writes BENCH_recovery.json (schema_version 2, seeded) with one row group
// per (protocol, config): recovery_ms, replayed_entries, fsyncs during the
// load phase, and the applied index at crash time for scale.
#include <cstdio>

#include "bench_util.h"
#include "consensus/registry.h"
#include "harness/cluster.h"
#include "harness/log_server.h"

using namespace praft;

namespace {

constexpr uint64_t kSeed = 4242;

struct Config {
  const char* label;
  size_t compaction_cap;  // 0 = snapshots off
  Duration sync_batch;    // 0 = one fsync per persist demand
};

struct Outcome {
  double recovery_ms = -1.0;
  size_t replayed = 0;
  int64_t snapshot_floor = -1;
  uint64_t fsyncs = 0;
  int64_t applied_at_crash = 0;
  bool caught_up = false;
};

consensus::NodeIface& iface(harness::Cluster& cluster, int i) {
  auto* ls = dynamic_cast<harness::LogServer*>(&cluster.server(i));
  PRAFT_CHECK(ls != nullptr);
  return ls->node_iface();
}

Outcome run_one(const std::string& protocol, const Config& cfg) {
  harness::ClusterConfig cc;
  cc.num_replicas = 5;
  cc.seed = kSeed;
  harness::Cluster cluster(cc);

  consensus::TimingOptions timing;
  timing.election_timeout_min = msec(300);
  timing.election_timeout_max = msec(600);
  timing.heartbeat_interval = msec(60);
  timing.fsync_duration = msec(2);
  timing.sync_batch_delay = cfg.sync_batch;
  timing.compaction_log_cap = cfg.compaction_cap;
  cluster.build_replicas(protocol, timing);

  int victim = 3;
  if (!cluster.server(0).leaderless()) {
    const int leader = cluster.establish_leader(0, sec(20));
    PRAFT_CHECK(leader >= 0);
    victim = (leader + 2) % cluster.num_replicas();
  } else {
    cluster.run_for(msec(500));
  }

  // Load phase: build up a real log (and, with a cap, real checkpoints).
  kv::WorkloadConfig wl;
  wl.read_fraction = 0.5;
  wl.num_records = 512;
  wl.value_size = 8;
  cluster.add_clients(/*per_region=*/2, wl, cluster.sim().now());
  cluster.run_for(sec(8));

  Outcome out;
  out.fsyncs = cluster.store_of(victim).syncs();
  out.applied_at_crash = iface(cluster, victim).applied_index();
  cluster.crash_replica(victim);
  // The cluster keeps serving while the replica is down; the restarted node
  // must recover AND catch up on what it missed.
  cluster.run_for(sec(2));

  consensus::LogIndex target = 0;
  for (int i = 0; i < cluster.num_replicas(); ++i) {
    if (!cluster.replica_up(i)) continue;
    target = std::max(target, cluster.server(i).commit_index());
  }
  const Time t0 = cluster.sim().now();
  cluster.restart_replica(victim);
  auto* ls = dynamic_cast<harness::LogServer*>(&cluster.server(victim));
  PRAFT_CHECK(ls != nullptr);
  out.replayed = ls->recovery().replayed;
  out.snapshot_floor = ls->recovery().snapshot_floor;
  const Time limit = t0 + sec(30);
  while (cluster.sim().now() < limit) {
    cluster.run_for(msec(10));
    if (iface(cluster, victim).applied_index() >= target) {
      out.caught_up = true;
      break;
    }
  }
  out.recovery_ms =
      static_cast<double>(cluster.sim().now() - t0) / 1000.0;
  cluster.stop_clients();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonEmitter json("recovery", argc, argv, "BENCH_recovery.json");
  json.set_seed(kSeed);
  bench::print_header(
      "Crash-restart recovery: snapshots and group commit, all protocols",
      "durable hard state + WAL layer (Howard & Mortier's persistent-state "
      "footprints; Marandi et al.'s fsync discipline)");

  const Config configs[] = {
      {"wal-only/per-op-fsync", 0, 0},
      {"wal-only/group-commit", 0, msec(1)},
      {"snapshots/per-op-fsync", 128, 0},
      {"snapshots/group-commit", 128, msec(1)},
  };
  std::printf("%-11s %-24s %12s %10s %8s %10s\n", "protocol", "config",
              "recovery_ms", "replayed", "fsyncs", "caught_up");
  for (const auto& protocol : consensus::protocol_names()) {
    for (const Config& cfg : configs) {
      const Outcome out = run_one(protocol, cfg);
      std::printf("%-11s %-24s %12.1f %10zu %8llu %10s\n", protocol.c_str(),
                  cfg.label, out.recovery_ms, out.replayed,
                  static_cast<unsigned long long>(out.fsyncs),
                  out.caught_up ? "yes" : "NO");
      json.add_value(protocol, cfg.label, "recovery_ms", out.recovery_ms);
      json.add_value(protocol, cfg.label, "replayed_entries",
                     static_cast<double>(out.replayed));
      json.add_value(protocol, cfg.label, "snapshot_floor",
                     static_cast<double>(out.snapshot_floor));
      json.add_value(protocol, cfg.label, "load_phase_fsyncs",
                     static_cast<double>(out.fsyncs));
      json.add_value(protocol, cfg.label, "applied_at_crash",
                     static_cast<double>(out.applied_at_crash));
      json.add_value(protocol, cfg.label, "caught_up",
                     out.caught_up ? 1.0 : 0.0);
    }
  }
  return json.write() ? 0 : 1;
}
