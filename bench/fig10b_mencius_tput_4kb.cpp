// Figure 10(b): throughput vs client count, 4-KiB requests (network-bound).
// Expected shape: Raft saturates the leader's NIC egress; Raft-Oregon beats
// Raft-Seoul (~+30%, better uplink); Raft*-Mencius uses every replica's
// egress and beats Raft-Oregon (~+70% in the paper).
#include "bench_util.h"

using namespace praft;

namespace {
constexpr uint64_t kSeedBase = 100002;
}  // namespace
using harness::ExperimentConfig;
using harness::SystemKind;

namespace {
double run_one(SystemKind sys, int clients, double conflict, int leader) {
  ExperimentConfig cfg;
  cfg.system = sys;
  cfg.workload = bench::fig10_workload(4096, conflict);
  cfg.clients_per_region = clients;
  cfg.leader_replica = leader;
  cfg.model_bandwidth = true;
  cfg.run = sec(4);
  cfg.warmup = sec(2);
  // Stamped into the JSON header as the file base; each run offsets
  // by its client count.
  cfg.seed = kSeedBase + static_cast<uint64_t>(clients);
  return harness::run_experiment(cfg).throughput_ops;
}
}  // namespace

int main(int argc, char** argv) {
  bench::JsonEmitter json("fig10b", argc, argv);
  json.set_seed(kSeedBase);
  bench::print_header(
      "Fig 10b — Throughput vs clients/region, 4 KiB (network-bound)",
      "Wang et al., PODC'19, Figure 10(b)");
  std::printf("%-16s", "clients/region");
  for (int c : {25, 50, 100, 200, 400}) std::printf("%10d", c);
  std::printf("\n");
  struct Config {
    const char* name;
    SystemKind sys;
    double conflict;
    int leader;
  };
  const Config configs[] = {
      {"Raft*-M-100%", SystemKind::kRaftStarMencius, 1.0, 0},
      {"Raft*-M-0%", SystemKind::kRaftStarMencius, 0.0, 0},
      {"Raft-Oregon", SystemKind::kRaft, 0.0, 0},
      {"Raft*-Oregon", SystemKind::kRaftStar, 0.0, 0},
      {"Raft-Seoul", SystemKind::kRaft, 0.0, 4},
  };
  for (const Config& c : configs) {
    std::printf("%-16s", c.name);
    for (int clients : {25, 50, 100, 200, 400}) {
      const double tput = run_one(c.sys, clients, c.conflict, c.leader);
      char label[32];
      std::snprintf(label, sizeof(label), "clients=%d", clients);
      json.add_throughput(c.name, label, tput);
      std::printf("%10.0f", tput);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return json.write() ? 0 : 1;
}
