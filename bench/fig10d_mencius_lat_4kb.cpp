// Figure 10(d): latency with 50 clients/region, 4-KiB requests, bandwidth
// modeled. Same shape as 10(c) shifted up by serialization delays.
#include "bench_util.h"

using namespace praft;

namespace {
constexpr uint64_t kSeedBase = 100401;
}  // namespace
using harness::ExperimentConfig;
using harness::SystemKind;

namespace {
void run_one(bench::JsonEmitter& json, const char* name, SystemKind sys,
             double conflict, int leader, uint64_t seed) {
  ExperimentConfig cfg;
  cfg.system = sys;
  cfg.workload = bench::fig10_workload(4096, conflict);
  cfg.clients_per_region = 50;
  cfg.leader_replica = leader;
  cfg.model_bandwidth = true;
  cfg.run = sec(8);
  cfg.warmup = sec(3);
  cfg.seed = seed;
  const auto res = harness::run_experiment(cfg);
  bench::print_latency_row(name, "Leader", res.leader_writes);
  bench::print_latency_row(name, "Followers", res.follower_writes);
  json.add_latency(name, "Leader", res.leader_writes);
  json.add_latency(name, "Followers", res.follower_writes);
}
}  // namespace

int main(int argc, char** argv) {
  bench::JsonEmitter json("fig10d", argc, argv);
  json.set_seed(kSeedBase);
  bench::print_header("Fig 10d — Latency, 4 KiB requests (50 clients/region)",
                      "Wang et al., PODC'19, Figure 10(d)");
  run_one(json, "Raft-Oregon", SystemKind::kRaft, 0.0, 0, kSeedBase + 0);
  run_one(json, "Raft*-Oregon", SystemKind::kRaftStar, 0.0, 0, kSeedBase + 1);
  run_one(json, "Raft-Seoul", SystemKind::kRaft, 0.0, 4, kSeedBase + 2);
  run_one(json, "Raft*-M-0%", SystemKind::kRaftStarMencius, 0.0, 0, kSeedBase + 3);
  run_one(json, "Raft*-M-100%", SystemKind::kRaftStarMencius, 1.0, 0, kSeedBase + 4);
  std::printf("('Leader' = the Oregon site for the Mencius rows.)\n");
  return json.write() ? 0 : 1;
}
