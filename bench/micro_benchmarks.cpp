// Micro-benchmarks (google-benchmark) for the hot paths underneath the
// experiment harness: the event queue, the histogram, protocol log appends
// and spec successor enumeration.
#include <benchmark/benchmark.h>

#include "common/histogram.h"
#include "common/rng.h"
#include "raftstar/node.h"
#include "sim/event_queue.h"
#include "specs/kvlog.h"

// NOTE: this TU intentionally avoids gtest; the ScriptedEnv equivalent below
// is minimal and local.
namespace {

using namespace praft;

class NullEnv final : public consensus::Env {
 public:
  [[nodiscard]] Time now() const override { return now_; }
  void send(NodeId, std::any, size_t) override { ++sent_; }
  void schedule(Duration, std::function<void()>) override {}
  uint64_t random() override { return rng_.next(); }
  Time now_ = 0;
  uint64_t sent_ = 0;
  Rng rng_{1};
};

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      q.schedule_at(i, [&fired] { ++fired; });
    }
    q.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(7);
  for (auto _ : state) {
    h.record(static_cast<int64_t>(rng.below(1'000'000)));
  }
  benchmark::DoNotOptimize(h.percentile(99));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_RaftStarLeaderSubmit(benchmark::State& state) {
  NullEnv env;
  consensus::Group g;
  g.self = 0;
  g.members = {0};
  raftstar::Options opt;
  opt.batch_delay = 0;
  raftstar::RaftStarNode node(g, env, opt);
  node.start();
  node.force_election();
  kv::Command cmd{kv::Op::kPut, 1, 2, 8, 3, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.submit(cmd));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RaftStarLeaderSubmit);

void BM_SpecSuccessors(benchmark::State& state) {
  auto bundle = specs::make_kvlog(3, 3);
  const spec::State s0 = bundle->a.init()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(bundle->a.successors(s0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpecSuccessors);

void BM_ValueHashCanonical(benchmark::State& state) {
  spec::Value::Set s;
  for (int i = 0; i < 64; ++i) {
    s.push_back(spec::VT(spec::V(i), spec::V(i * 3)));
  }
  const spec::Value v = spec::Value::set(std::move(s));
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.hash());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ValueHashCanonical);

}  // namespace

BENCHMARK_MAIN();
