// Micro-benchmarks (google-benchmark) for the hot paths underneath the
// experiment harness: the event queue, the histogram, protocol log appends,
// spec successor enumeration, and the wire codec / buffer pool.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "common/histogram.h"
#include "common/rng.h"
#include "net/buffer_pool.h"
#include "net/wire.h"
#include "raft/wire.h"
#include "raftstar/node.h"
#include "sim/event_queue.h"
#include "specs/kvlog.h"

// Global allocation counter: the zero-alloc benches assert the steady-state
// encode path performs no heap allocations at all, not just "few".
namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// NOTE: this TU intentionally avoids gtest; the ScriptedEnv equivalent below
// is minimal and local.
namespace {

using namespace praft;

class NullEnv final : public consensus::Env {
 public:
  [[nodiscard]] Time now() const override { return now_; }
  void send(NodeId, std::any, size_t) override { ++sent_; }
  void schedule(Duration, std::function<void()>) override {}
  uint64_t random() override { return rng_.next(); }
  Time now_ = 0;
  uint64_t sent_ = 0;
  Rng rng_{1};
};

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      q.schedule_at(i, [&fired] { ++fired; });
    }
    q.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(7);
  for (auto _ : state) {
    h.record(static_cast<int64_t>(rng.below(1'000'000)));
  }
  benchmark::DoNotOptimize(h.percentile(99));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_RaftStarLeaderSubmit(benchmark::State& state) {
  NullEnv env;
  consensus::Group g;
  g.self = 0;
  g.members = {0};
  raftstar::Options opt;
  opt.batch_delay = 0;
  raftstar::RaftStarNode node(g, env, opt);
  node.start();
  node.force_election();
  kv::Command cmd{kv::Op::kPut, 1, 2, 8, 3, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.submit(cmd));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RaftStarLeaderSubmit);

void BM_SpecSuccessors(benchmark::State& state) {
  auto bundle = specs::make_kvlog(3, 3);
  const spec::State s0 = bundle->a.init()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(bundle->a.successors(s0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpecSuccessors);

void BM_ValueHashCanonical(benchmark::State& state) {
  spec::Value::Set s;
  for (int i = 0; i < 64; ++i) {
    s.push_back(spec::VT(spec::V(i), spec::V(i * 3)));
  }
  const spec::Value v = spec::Value::set(std::move(s));
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.hash());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ValueHashCanonical);

raft::Message make_append(int entries) {
  raft::AppendEntries ae;
  ae.term = 7;
  ae.leader = 0;
  ae.prev_index = 41;
  ae.prev_term = 6;
  ae.commit = 40;
  for (int i = 0; i < entries; ++i) {
    ae.entries.push_back(raft::Entry{7, kv::Command{kv::Op::kPut, 100 + i,
                                                    200 + i, 8, 3, 50 + i}});
  }
  return raft::Message{ae};
}

void BM_WireEncodeAppend(benchmark::State& state) {
  net::BufferPool pool;
  const raft::Message m = make_append(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    net::Frame f = raft::encode(m, pool);
    benchmark::DoNotOptimize(f.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireEncodeAppend)->Arg(0)->Arg(1)->Arg(8);

void BM_WireDecodeAppend(benchmark::State& state) {
  net::BufferPool pool;
  const net::Frame f =
      raft::encode(make_append(static_cast<int>(state.range(0))), pool);
  for (auto _ : state) {
    raft::Message back = raft::decode(net::view(f));
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireDecodeAppend)->Arg(0)->Arg(1)->Arg(8);

void BM_PoolAcquireRelease(benchmark::State& state) {
  net::BufferPool pool;
  for (auto _ : state) {
    net::Frame f = pool.acquire(256);
    benchmark::DoNotOptimize(f.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolAcquireRelease);

/// The zero-alloc claim, asserted: after one warm-up encode (which may take
/// slabs from the preallocated freelist), 1000 encode+release cycles on the
/// steady-state append path must not touch the global heap. Decode allocates
/// by design (it materialises a Message); the hot send path never decodes —
/// only PRAFT_WIRE_VERIFY does.
void BM_WireEncodeZeroAlloc(benchmark::State& state) {
  net::BufferPool pool;
  const raft::Message m = make_append(8);
  { net::Frame warm = raft::encode(m, pool); }
  for (auto _ : state) {
    const uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
      net::Frame f = raft::encode(m, pool);
      benchmark::DoNotOptimize(f.data());
    }
    const uint64_t delta =
        g_allocs.load(std::memory_order_relaxed) - before;
    if (delta != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu heap allocations on warm encode path\n",
                   static_cast<unsigned long long>(delta));
      std::abort();
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_WireEncodeZeroAlloc);

}  // namespace

BENCHMARK_MAIN();
