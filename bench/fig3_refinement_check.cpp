// Figure 3 / Appendix C: the Raft* -> MultiPaxos refinement mapping, checked
// by bounded explicit-state exploration (every reachable Raft* transition
// must map to a MultiPaxos step sequence or a stutter).
#include <cstdio>

#include "bench_util.h"
#include "spec/refinement.h"
#include "specs/raftstar_spec.h"

using namespace praft;

namespace {
void check_scope(int acceptors, int ballots, size_t budget) {
  specs::ConsensusScope sc;
  sc.acceptors = acceptors;
  sc.ballots = ballots;
  sc.indexes = 1;
  auto bundle = specs::make_raftstar_bundle(sc);

  spec::CheckOptions mopt;
  mopt.max_states = budget;
  const auto mp = spec::ModelChecker::check(*bundle->paxos, mopt);
  const auto rs = spec::ModelChecker::check(*bundle->raftstar, mopt);
  std::printf("scope n=%d ballots=%d:\n", acceptors, ballots);
  std::printf("  MultiPaxos invariants: %s\n", mp.summary().c_str());
  std::printf("  Raft*      invariants: %s\n", rs.summary().c_str());

  spec::RefinementOptions ropt;
  ropt.max_states = budget;
  ropt.max_a_steps = 4;
  const auto ref = spec::RefinementChecker::check(
      *bundle->raftstar, *bundle->paxos, bundle->f, ropt);
  std::printf("  Raft* => MultiPaxos:   %s\n\n", ref.summary().c_str());
}
}  // namespace

int main() {
  bench::print_header("Fig 3 — Raft* refines MultiPaxos (machine-checked)",
                      "Wang et al., PODC'19, Figure 3 + Appendix C");
  std::printf(
      "variable mapping          function mapping\n"
      "  currentTerm -> ballot     RequestVote    -> Phase1a\n"
      "  isLeader    -> phase1Succ ReceiveVote    -> Phase1b\n"
      "  entry.bal   -> inst.bal   BecomeLeader   -> Phase1Succeed(+2a/2b)\n"
      "  entry.val   -> inst.val   AppendEntries  -> Phase2a+Phase2b\n"
      "  (im/ex)append-> accept    ReceiveAppend  -> Phase2b\n"
      "  appendOK    -> acceptOK   LeaderLearn    -> Learn\n\n");
  check_scope(2, 2, 200'000);
  check_scope(3, 2, 60'000);
  return 0;
}
