// E10: the automated PQL port (the paper's first case study). Builds
// PQL = MultiPaxos + Delta (Appendix B.3), mechanically generates
// RQL = port(Raft*, f, Fig.3-correspondence, Delta) (Appendix B.4), and
// checks the full Fig. 5 diamond by bounded refinement exploration.
#include <cstdio>

#include "bench_util.h"
#include "core/port.h"
#include "spec/refinement.h"
#include "specs/deltas.h"
#include "specs/raftstar_spec.h"

using namespace praft;

int main() {
  bench::print_header("§4.3 port of Paxos Quorum Lease -> Raft*-PQL",
                      "Wang et al., PODC'19, §A.1-A.2, Appendix B.3/B.4");
  specs::ConsensusScope sc;
  sc.acceptors = 2;
  sc.ballots = 2;
  sc.indexes = 1;
  sc.values = specs::pql_values();
  auto bundle = specs::make_raftstar_bundle(sc);
  auto delta = specs::make_pql_delta(sc);
  spec::Spec ad = core::apply_delta(*bundle->paxos, delta);
  spec::Spec bd = core::port(*bundle->raftstar, bundle->f, bundle->corr, delta);

  std::printf("generated spec: %s\n  variables:", bd.name().c_str());
  for (const auto& v : bd.vars()) std::printf(" %s", v.c_str());
  std::printf("\n  actions:");
  for (const auto& a : bd.actions()) std::printf(" %s", a.name.c_str());
  std::printf("\n\n");

  spec::CheckOptions mopt;
  mopt.max_states = 60'000;
  std::printf("PQL (AΔ) invariants incl. LeaseInv:\n  %s\n",
              spec::ModelChecker::check(ad, mopt).summary().c_str());

  spec::RefinementOptions ropt;
  ropt.max_states = 60'000;
  const auto proj = core::projection_mapping(bd, *bundle->raftstar);
  std::printf("RQL => Raft* (correctness w.r.t. B):\n  %s\n",
              spec::RefinementChecker::check(bd, *bundle->raftstar, proj, ropt)
                  .summary().c_str());
  const auto lifted = core::lifted_mapping(bundle->f, bd, ad, delta);
  std::printf("RQL => PQL (optimization preserved):\n  %s\n",
              spec::RefinementChecker::check(bd, ad, lifted, ropt)
                  .summary().c_str());
  return 0;
}
