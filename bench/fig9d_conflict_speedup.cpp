// Figure 9(d): throughput speedup of Raft*-PQL over Raft* as a function of
// the conflict rate (0%..50%, 90% reads). Expected shape: the speedup grows
// as conflicts shrink — conflict-free reads return immediately instead of
// waiting for concurrent writes to commit.
#include "bench_util.h"

using namespace praft;

namespace {
constexpr uint64_t kSeed = 90004;
}  // namespace
using harness::ExperimentConfig;
using harness::SystemKind;

namespace {
double run_one(harness::SystemKind sys, double conflict) {
  ExperimentConfig cfg;
  cfg.system = sys;
  cfg.workload = bench::fig9_workload();
  cfg.workload.conflict_rate = conflict;
  cfg.clients_per_region = 400;
  cfg.leader_replica = 0;
  cfg.run = sec(4);
  cfg.warmup = sec(3);
  cfg.seed = kSeed;
  return harness::run_experiment(cfg).throughput_ops;
}
}  // namespace

int main(int argc, char** argv) {
  bench::JsonEmitter json("fig9d", argc, argv);
  json.set_seed(kSeed);
  bench::print_header("Fig 9d — Raft*-PQL speedup over Raft* vs conflict rate",
                      "Wang et al., PODC'19, Figure 9(d)");
  std::printf("%8s %16s %16s %10s\n", "conflict", "Raft*-PQL", "Raft*",
              "speedup");
  for (double conflict : {0.50, 0.40, 0.30, 0.20, 0.10, 0.0}) {
    const double pql = run_one(SystemKind::kRaftStarPql, conflict);
    const double rs = run_one(SystemKind::kRaftStar, conflict);
    char label[32];
    std::snprintf(label, sizeof(label), "conflict=%.0f%%", conflict * 100);
    json.add_throughput("Raft*-PQL", label, pql);
    json.add_throughput("Raft*", label, rs);
    std::printf("%7.0f%% %16.0f %16.0f %9.0f%%\n", conflict * 100, pql, rs,
                (pql / rs - 1.0) * 100.0);
  }
  return json.write() ? 0 : 1;
}
