// Multi-group scale-out benchmark (PR 9): aggregate write throughput of a
// hash-sharded KV over N independent consensus groups sharing 15 machines
// (5-way replication, stride placement), swept across group counts, for
// raft and multipaxos — plus the leader-placement ablation at 8 groups:
// Mencius-style spread (group g's leader on machine g mod 15) vs co-located
// (every group's leader piled onto machine 0). Emits BENCH_shard_scaling.json.
//
// The single-group row runs the same protocol stack, cost model, timing and
// workload as BENCH_pipeline's LAN point, so it must land within noise of
// that committed baseline (~44k ops/s: one leader's CPU). Scale-out comes
// from adding LEADERS, not replicas: with leaders spread, aggregate
// throughput grows until every machine's serial CPU saturates (~3.5x at 8
// groups on this topology); with leaders co-located it stays pinned at one
// machine's capacity, which is the whole argument for placement.
#include <cstdio>

#include "bench_util.h"
#include "shard/experiment.h"

using namespace praft;

namespace {

constexpr uint64_t kSeed = 90030;
constexpr int kMachines = 15;
constexpr int kReplicasPerGroup = 5;

shard::ShardExperimentConfig base_config(const char* protocol, int groups,
                                         bool spread) {
  shard::ShardExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.num_groups = groups;
  cfg.num_machines = kMachines;
  cfg.replicas_per_group = kReplicasPerGroup;
  cfg.spread_leaders = spread;
  cfg.flat_rtt = msec(1) / 2;  // LAN, same as the pipeline bench's 0.5 ms
  cfg.workload = bench::fig10_workload(/*value_size=*/8, /*conflict_rate=*/0.0);
  cfg.clients_per_machine = 80;
  cfg.run = sec(3);
  cfg.warmup = sec(1);
  cfg.cooldown = sec(1);
  cfg.seed = kSeed;
  // Same bounded append batch as the committed single-group baseline.
  cfg.timing.max_entries_per_batch = 64;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonEmitter json("shard_scaling", argc, argv,
                          "BENCH_shard_scaling.json");
  json.set_seed(kSeed);
  bench::print_header(
      "Sharded KV scale-out throughput",
      "N consensus groups x 15 machines, spread vs co-located leaders (PR 9)");

  const int group_counts[] = {1, 2, 4, 8, 16};
  const char* protocols[] = {"raft", "multipaxos"};
  double tput[2][5] = {};  // [protocol][group point], spread placement

  for (int pi = 0; pi < 2; ++pi) {
    for (int gi = 0; gi < 5; ++gi) {
      const auto cfg =
          base_config(protocols[pi], group_counts[gi], /*spread=*/true);
      const auto res = shard::run_shard_experiment(cfg);
      tput[pi][gi] = res.throughput_ops;

      char label[48];
      std::snprintf(label, sizeof(label), "groups=%d-spread",
                    group_counts[gi]);
      json.add_throughput(protocols[pi], label, res.throughput_ops);
      char cls[64];
      std::snprintf(cls, sizeof(cls), "%s-writes", label);
      json.add_latency(protocols[pi], cls, res.writes);
      std::printf("%-12s %2d group(s) spread     %10.0f ops/s   "
                  "write p50 %7.1f ms  p99 %7.1f ms\n",
                  protocols[pi], group_counts[gi], res.throughput_ops,
                  res.writes.p50 / 1000.0, res.writes.p99 / 1000.0);
    }
  }

  // Placement ablation at 8 groups: all preferred leaders on machine 0.
  std::printf("\nLeader-placement ablation (8 groups):\n");
  double colocated[2] = {};
  for (int pi = 0; pi < 2; ++pi) {
    const auto cfg = base_config(protocols[pi], 8, /*spread=*/false);
    const auto res = shard::run_shard_experiment(cfg);
    colocated[pi] = res.throughput_ops;
    json.add_throughput(protocols[pi], "groups=8-colocated",
                        res.throughput_ops);
    json.add_latency(protocols[pi], "groups=8-colocated-writes", res.writes);
    std::printf("%-12s  8 group(s) colocated  %10.0f ops/s   "
                "write p50 %7.1f ms  p99 %7.1f ms\n",
                protocols[pi], res.throughput_ops, res.writes.p50 / 1000.0,
                res.writes.p99 / 1000.0);
  }

  // Scale-out summary: the acceptance gates are >= 3x aggregate throughput
  // at 8 groups vs 1 group, and spread beating co-located.
  std::printf("\nScale-out summary:\n");
  bool pass = true;
  for (int pi = 0; pi < 2; ++pi) {
    const double scale8 = tput[pi][3] / tput[pi][0];
    const double ablation = tput[pi][3] / colocated[pi];
    json.add_value(protocols[pi], "8v1", "speedup", scale8);
    json.add_value(protocols[pi], "spread-vs-colocated", "speedup", ablation);
    const bool ok = scale8 >= 3.0 && ablation > 1.0;
    pass = pass && ok;
    std::printf("%-12s 8-group speedup %.2fx (gate >= 3x)   "
                "spread/colocated %.2fx (gate > 1x)   %s\n",
                protocols[pi], scale8, ablation, ok ? "PASS" : "FAIL");
  }

  if (!json.write()) return 1;
  return pass ? 0 : 1;
}
