// Figure 10(c): latency with 50 clients/region, 8-byte requests. Expected
// shape: Raft-Oregon's leader-site clients see the lowest latency (nearest
// quorum ~69 ms RTT); Raft*-M-100% pays for total ordering (a server must
// learn every earlier slot's decision before executing); Raft*-M-0% only
// waits for other owners' append/skip messages but is still bounded by the
// farthest replica (Seoul).
#include "bench_util.h"

using namespace praft;

namespace {
constexpr uint64_t kSeedBase = 100301;
}  // namespace
using harness::ExperimentConfig;
using harness::SystemKind;

namespace {
void run_one(bench::JsonEmitter& json, const char* name, SystemKind sys,
             double conflict, int leader, uint32_t vsize, bool bandwidth,
             uint64_t seed) {
  ExperimentConfig cfg;
  cfg.system = sys;
  cfg.workload = bench::fig10_workload(vsize, conflict);
  cfg.clients_per_region = 50;
  cfg.leader_replica = leader;
  cfg.model_bandwidth = bandwidth;
  cfg.run = sec(8);
  cfg.warmup = sec(3);
  cfg.seed = seed;
  const auto res = harness::run_experiment(cfg);
  bench::print_latency_row(name, "Leader", res.leader_writes);
  bench::print_latency_row(name, "Followers", res.follower_writes);
  json.add_latency(name, "Leader", res.leader_writes);
  json.add_latency(name, "Followers", res.follower_writes);
}
}  // namespace

int main(int argc, char** argv) {
  bench::JsonEmitter json("fig10c", argc, argv);
  json.set_seed(kSeedBase);
  bench::print_header("Fig 10c — Latency, 8 B requests (50 clients/region)",
                      "Wang et al., PODC'19, Figure 10(c)");
  run_one(json, "Raft-Oregon", SystemKind::kRaft, 0.0, 0, 8, false, kSeedBase + 0);
  run_one(json, "Raft*-Oregon", SystemKind::kRaftStar, 0.0, 0, 8, false,
          kSeedBase + 1);
  run_one(json, "Raft-Seoul", SystemKind::kRaft, 0.0, 4, 8, false, kSeedBase + 2);
  run_one(json, "Raft*-M-0%", SystemKind::kRaftStarMencius, 0.0, 0, 8, false,
          kSeedBase + 3);
  run_one(json, "Raft*-M-100%", SystemKind::kRaftStarMencius, 1.0, 0, 8, false,
          kSeedBase + 4);
  std::printf("('Leader' = the Oregon site for the Mencius rows.)\n");
  return json.write() ? 0 : 1;
}
