// Catch-up latency + resident log size, with and without checkpoint-driven
// compaction, for all four protocols. One replica is crashed for 8 s while
// clients keep writing; on revival it must reach the live replicas' applied
// watermark. With compaction enabled the leaders' logs stay under the cap
// and the laggard catches up via snapshot state transfer; without it every
// replica retains the whole log and the laggard replays it entry by entry.
// Always writes BENCH_catchup_snapshot.json (override with --json=<path>).
#include <algorithm>

#include "bench_util.h"
#include "harness/cluster.h"
#include "harness/log_server.h"

using namespace praft;

namespace {

constexpr size_t kCap = 256;  // compaction cap (entries) for the "on" runs

struct Outcome {
  double catchup_ms = 0;
  size_t max_resident = 0;   // largest in-memory log across replicas, run-wide
  int64_t snapshots = 0;     // snapshot installs on the revived replica
  int64_t log_len = 0;       // applied watermark the laggard had to reach
  bool caught_up = false;
};

consensus::NodeIface& iface(harness::Cluster& cluster, int i) {
  return dynamic_cast<harness::LogServer&>(cluster.server(i)).node_iface();
}

Outcome run_one(const std::string& protocol, size_t compaction_cap) {
  harness::ClusterConfig cfg;
  cfg.num_replicas = 5;
  cfg.seed = 777;
  harness::Cluster cluster(cfg);

  consensus::TimingOptions timing;
  timing.election_timeout_min = msec(300);
  timing.election_timeout_max = msec(600);
  timing.heartbeat_interval = msec(60);
  timing.compaction_log_cap = compaction_cap;
  cluster.build_replicas(protocol, timing);

  if (!cluster.server(0).leaderless()) {
    cluster.establish_leader(0, sec(10));
  } else {
    cluster.run_for(msec(500));
  }

  const int victim = 2;
  const Time down_from = cluster.sim().now() + sec(1);
  const Time down_to = down_from + sec(8);
  cluster.net().faults().crash(cluster.server(victim).id(), down_from, down_to);

  kv::WorkloadConfig wl;
  wl.read_fraction = 0.5;
  wl.value_size = 8;
  wl.num_records = 100'000;
  cluster.add_clients(4, wl, cluster.sim().now());

  Outcome out;
  const auto sample = [&] {
    for (int i = 0; i < cluster.num_replicas(); ++i) {
      out.max_resident =
          std::max(out.max_resident, iface(cluster, i).resident_log_entries());
    }
  };

  while (cluster.sim().now() < down_to) {
    cluster.run_for(msec(100));
    sample();
  }

  // Revival instant: the laggard must reach what the live replicas applied.
  consensus::LogIndex target = 0;
  for (int i = 0; i < cluster.num_replicas(); ++i) {
    if (i == victim) continue;
    target = std::max(target, iface(cluster, i).applied_index());
  }
  out.log_len = target;

  const Time deadline = down_to + sec(30);
  while (iface(cluster, victim).applied_index() < target &&
         cluster.sim().now() < deadline) {
    cluster.run_for(msec(10));
    sample();
  }
  out.catchup_ms = to_ms(cluster.sim().now() - down_to);
  out.caught_up = iface(cluster, victim).applied_index() >= target;
  out.snapshots = iface(cluster, victim).snapshots_installed();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonEmitter json("catchup_snapshot", argc, argv,
                          "BENCH_catchup_snapshot.json");
  json.set_seed(777);
  bench::print_header(
      "Catch-up after an 8 s crash: snapshot transfer vs log replay",
      "runtime port of the paper's §2.2 Checkpoint optimization");
  std::printf("%-12s %-11s %12s %14s %10s %10s %9s\n", "protocol",
              "compaction", "catchup(ms)", "max resident", "snapshots",
              "log len", "caught up");
  bool all_caught_up = true;
  for (const char* protocol :
       {"raft", "raftstar", "multipaxos", "mencius"}) {
    for (const size_t cap : {size_t{0}, kCap}) {
      const Outcome o = run_one(protocol, cap);
      char label[32];
      std::snprintf(label, sizeof(label),
                    cap == 0 ? "off" : "cap=%zu", cap);
      std::printf("%-12s %-11s %12.1f %14zu %10lld %10lld %9s\n", protocol,
                  label, o.catchup_ms, o.max_resident,
                  static_cast<long long>(o.snapshots),
                  static_cast<long long>(o.log_len),
                  o.caught_up ? "yes" : "NO");
      json.add_value(protocol, label, "catchup_ms", o.catchup_ms);
      json.add_value(protocol, label, "max_resident_entries",
                     static_cast<double>(o.max_resident));
      json.add_value(protocol, label, "snapshot_installs",
                     static_cast<double>(o.snapshots));
      json.add_value(protocol, label, "log_len",
                     static_cast<double>(o.log_len));
      json.add_value(protocol, label, "caught_up", o.caught_up ? 1.0 : 0.0);
      all_caught_up &= o.caught_up;
      std::fflush(stdout);
    }
  }
  // A replica that misses the deadline is a failed run, not a slow figure:
  // trajectory tooling must see a red exit, not a plausible 30 s number.
  return (json.write() && all_caught_up) ? 0 : 1;
}
