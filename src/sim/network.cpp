#include "sim/network.h"

#include <utility>

#include "common/check.h"

namespace praft::sim {

Network::Network(Simulator& sim, LatencyMatrix latency)
    : sim_(sim), latency_(std::move(latency)) {}

Network::~Network() { sim_.queue().clear(); }

NodeId Network::add_node(SiteId site, net::DeliverFn deliver,
                         double egress_bytes_per_us) {
  PRAFT_CHECK(site >= 0 && site < latency_.num_sites());
  PRAFT_CHECK(deliver != nullptr);
  nodes_.push_back(Node{site, std::move(deliver),
                        EgressLink(egress_bytes_per_us), true});
  return static_cast<NodeId>(nodes_.size() - 1);
}

SiteId Network::site_of(NodeId n) const {
  PRAFT_CHECK(n >= 0 && n < num_nodes());
  return nodes_[static_cast<size_t>(n)].site;
}

void Network::set_node_up(NodeId n, bool up) {
  PRAFT_CHECK(n >= 0 && n < num_nodes());
  nodes_[static_cast<size_t>(n)].up = up;
}

bool Network::node_up(NodeId n) const {
  PRAFT_CHECK(n >= 0 && n < num_nodes());
  return nodes_[static_cast<size_t>(n)].up;
}

Duration Network::egress_busy(NodeId n) const {
  PRAFT_CHECK(n >= 0 && n < num_nodes());
  return nodes_[static_cast<size_t>(n)].egress.busy_time();
}

bool Network::usable(NodeId n, Time t) const {
  if (n < 0 || n >= num_nodes()) return false;
  const auto& node = nodes_[static_cast<size_t>(n)];
  return node.up && !faults_.is_down(n, t);
}

void Network::send(NodeId from, NodeId to, std::any payload, size_t bytes) {
  const Time now = sim_.now();

  // Encode through the flat codec when the payload type has one (every
  // protocol message does). The encoded size is authoritative for all
  // bandwidth/CPU accounting; encoding consumes no RNG, so trajectories stay
  // seed-deterministic. PRAFT_WIRE_VERIFY additionally round-trips the frame
  // back through decode() and compares with the original struct.
  net::Frame frame;
  if (const net::Codec* codec = net::codec_registry().find(payload)) {
    frame = codec->encode(payload, pool_);
    PRAFT_CHECK_MSG(frame.size() == bytes,
                    "claimed wire_size != encoded frame size");
    if (net::wire_verify_enabled()) {
      const std::any back = codec->decode(net::view(frame));
      PRAFT_CHECK_MSG(codec->equals(payload, back),
                      "wire round-trip diverged from the original message");
    }
    bytes = frame.size();
  }

  ++messages_sent_;
  bytes_sent_ += bytes;
  if (!usable(from, now) || to < 0 || to >= num_nodes()) return;
  if (faults_.is_blocked(from, to, now)) return;
  const double drop = faults_.drop_rate_at(now);
  if (drop > 0.0 && sim_.rng().chance(drop)) return;

  auto& src = nodes_[static_cast<size_t>(from)];
  const Time departure = src.egress.enqueue(now, bytes);
  const Duration flight = latency_.one_way(src.site, site_of(to), sim_.rng());
  Time arrival = departure + flight;
  // A reordered message skips the FIFO clamp below and may overtake earlier
  // traffic on its link. The knobs guard every extra RNG draw so the default
  // (all rates 0) consumes exactly the same stream as before they existed.
  const bool reordered = faults_.reorder_rate() > 0.0 &&
                         sim_.rng().chance(faults_.reorder_rate());
  if (!reordered) {
    // FIFO per link: protocols in the paper's testbed ran over TCP streams.
    const uint64_t link = (static_cast<uint64_t>(static_cast<uint32_t>(from))
                           << 32) |
                          static_cast<uint32_t>(to);
    Time& last = last_arrival_[link];
    if (arrival <= last) arrival = last + 1;
    last = arrival;
  }

  // A duplicated message is delivered twice: the copy models a spurious
  // retransmission — independent latency draw, no FIFO coupling. The copy
  // carries no frame (the original owns the pooled slab).
  if (faults_.duplicate_rate() > 0.0 &&
      sim_.rng().chance(faults_.duplicate_rate())) {
    const Duration extra = latency_.one_way(src.site, site_of(to), sim_.rng());
    schedule_delivery(from, to, std::any(payload), bytes, net::Frame{},
                      departure + extra);
  }

  schedule_delivery(from, to, std::move(payload), bytes, std::move(frame),
                    arrival);
}

void Network::schedule_delivery(NodeId from, NodeId to, std::any payload,
                                size_t bytes, net::Frame frame, Time arrival) {
  // Payload and frame are moved into the scheduled closure; delivery
  // re-checks that the destination is alive *at arrival time* (it may crash
  // in flight). A dropped delivery destroys the closure and the frame's slab
  // returns to the pool.
  sim_.at(arrival, [this, from, to, bytes, p = std::move(payload),
                    f = std::move(frame)]() mutable {
    if (!usable(to, sim_.now())) return;
    if (faults_.is_blocked(from, to, sim_.now())) return;
    ++messages_delivered_;
    nodes_[static_cast<size_t>(to)].deliver(
        net::Packet{from, to, bytes, std::move(p), std::move(f)});
  });
}

}  // namespace praft::sim
