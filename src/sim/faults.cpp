#include "sim/faults.h"

// Header-only; this TU anchors the library target.
namespace praft::sim {}
