#pragma once

#include <algorithm>
#include <vector>

#include "common/types.h"

namespace praft::sim {

/// Declarative fault schedule applied by the Network: probabilistic message
/// drops (uniform and windowed bursts), timed bidirectional partitions,
/// timed node crashes, and probabilistic duplication/reordering. All faults
/// are part of the deterministic plan — randomized ones draw from the
/// simulation's seeded RNG — so failure tests are reproducible.
class FaultPlan {
 public:
  /// Uniform probability that any WAN message is lost.
  void set_drop_rate(double p) { drop_rate_ = p; }
  [[nodiscard]] double drop_rate() const { return drop_rate_; }

  /// Raises the drop probability to (at least) `p` during [from, to).
  /// Overlapping bursts take the maximum, never accumulate past 1.
  void drop_burst(double p, Time from, Time to) {
    drop_bursts_.push_back({p, from, to});
  }

  /// Effective drop probability at instant `t`: the base rate or the
  /// strongest active burst, whichever is larger.
  [[nodiscard]] double drop_rate_at(Time t) const {
    double p = drop_rate_;
    for (const auto& b : drop_bursts_) {
      if (t >= b.from && t < b.to) p = std::max(p, b.p);
    }
    return p;
  }

  /// Probability that a delivered message is delivered a second time (the
  /// copy takes an independent latency draw and ignores FIFO ordering, like
  /// a spurious retransmission). Default 0: off.
  void set_duplicate_rate(double p) { duplicate_rate_ = p; }
  [[nodiscard]] double duplicate_rate() const { return duplicate_rate_; }

  /// Probability that a message skips the per-link FIFO clamp and may
  /// overtake earlier traffic on the same link (UDP-like reordering).
  /// Default 0: off, preserving the TCP stream semantics benches assume.
  void set_reorder_rate(double p) { reorder_rate_ = p; }
  [[nodiscard]] double reorder_rate() const { return reorder_rate_; }

  /// Blocks traffic in both directions between `a` and `b` during [from, to).
  void partition_pair(NodeId a, NodeId b, Time from, Time to) {
    partitions_.push_back({a, b, from, to});
  }

  /// Isolates `n` from every other node during [from, to).
  void isolate(NodeId n, Time from, Time to) {
    partitions_.push_back({n, kNoNode, from, to});
  }

  /// Node `n` is crashed (neither sends nor receives) during [from, to).
  void crash(NodeId n, Time from, Time to) { crashes_.push_back({n, from, to}); }

  [[nodiscard]] bool is_down(NodeId n, Time t) const {
    for (const auto& c : crashes_) {
      if (c.node == n && t >= c.from && t < c.to) return true;
    }
    return false;
  }

  [[nodiscard]] bool is_blocked(NodeId a, NodeId b, Time t) const {
    for (const auto& p : partitions_) {
      if (t < p.from || t >= p.to) continue;
      const bool pair_match = (p.b != kNoNode) &&
          ((p.a == a && p.b == b) || (p.a == b && p.b == a));
      const bool isolate_match = (p.b == kNoNode) && (p.a == a || p.a == b);
      if (pair_match || isolate_match) return true;
    }
    return false;
  }

 private:
  struct Partition {
    NodeId a;
    NodeId b;  // kNoNode => `a` isolated from everyone
    Time from;
    Time to;
  };
  struct Crash {
    NodeId node;
    Time from;
    Time to;
  };
  struct DropBurst {
    double p;
    Time from;
    Time to;
  };

  double drop_rate_ = 0.0;
  double duplicate_rate_ = 0.0;
  double reorder_rate_ = 0.0;
  std::vector<Partition> partitions_;
  std::vector<Crash> crashes_;
  std::vector<DropBurst> drop_bursts_;
};

}  // namespace praft::sim
