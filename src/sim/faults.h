#pragma once

#include <vector>

#include "common/types.h"

namespace praft::sim {

/// Declarative fault schedule applied by the Network: probabilistic message
/// drops, timed bidirectional partitions, and timed node crashes. All faults
/// are part of the deterministic plan so failure tests are reproducible.
class FaultPlan {
 public:
  /// Uniform probability that any WAN message is lost.
  void set_drop_rate(double p) { drop_rate_ = p; }
  [[nodiscard]] double drop_rate() const { return drop_rate_; }

  /// Blocks traffic in both directions between `a` and `b` during [from, to).
  void partition_pair(NodeId a, NodeId b, Time from, Time to) {
    partitions_.push_back({a, b, from, to});
  }

  /// Isolates `n` from every other node during [from, to).
  void isolate(NodeId n, Time from, Time to) {
    partitions_.push_back({n, kNoNode, from, to});
  }

  /// Node `n` is crashed (neither sends nor receives) during [from, to).
  void crash(NodeId n, Time from, Time to) { crashes_.push_back({n, from, to}); }

  [[nodiscard]] bool is_down(NodeId n, Time t) const {
    for (const auto& c : crashes_) {
      if (c.node == n && t >= c.from && t < c.to) return true;
    }
    return false;
  }

  [[nodiscard]] bool is_blocked(NodeId a, NodeId b, Time t) const {
    for (const auto& p : partitions_) {
      if (t < p.from || t >= p.to) continue;
      const bool pair_match = (p.b != kNoNode) &&
          ((p.a == a && p.b == b) || (p.a == b && p.b == a));
      const bool isolate_match = (p.b == kNoNode) && (p.a == a || p.a == b);
      if (pair_match || isolate_match) return true;
    }
    return false;
  }

 private:
  struct Partition {
    NodeId a;
    NodeId b;  // kNoNode => `a` isolated from everyone
    Time from;
    Time to;
  };
  struct Crash {
    NodeId node;
    Time from;
    Time to;
  };

  double drop_rate_ = 0.0;
  std::vector<Partition> partitions_;
  std::vector<Crash> crashes_;
};

}  // namespace praft::sim
