#include "sim/resources.h"

// Header-only; this TU anchors the library target.
namespace praft::sim {}
