#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/packet.h"
#include "net/wire.h"
#include "sim/faults.h"
#include "sim/latency.h"
#include "sim/resources.h"
#include "sim/simulator.h"

namespace praft::sim {

/// Geo-distributed message network. Each registered node lives at a site and
/// optionally has a finite-egress NIC. send() models:
///   departure = egress-queue(bytes)          (bandwidth)
///   arrival   = departure + one_way(site_a, site_b)  (latency + jitter)
/// subject to the FaultPlan (drops, partitions, crashes).
class Network {
 public:
  Network(Simulator& sim, LatencyMatrix latency);

  /// Drops the simulator's pending events: in-flight delivery closures own
  /// pooled frames, and owners (Cluster, chaos worlds) declare the
  /// Simulator before the Network, so without this the queue would outlive
  /// the pool while still holding its slabs.
  ~Network();

  /// Registers a node; returns its id (dense, starting at 0).
  NodeId add_node(SiteId site, net::DeliverFn deliver,
                  double egress_bytes_per_us = 0.0);

  /// Sends `payload` from `from` to `to`. When the payload type has a codec
  /// registered (every protocol message does), it is encoded into a pooled
  /// flat frame and `bytes` must equal the encoded size — bandwidth is
  /// charged from real encoded bytes. Payload types without a codec (raw
  /// test payloads) fall back to the claimed `bytes`. Self-sends are
  /// delivered after the local RTT/2 (loopback still hops the event queue,
  /// never reenters the sender synchronously).
  void send(NodeId from, NodeId to, std::any payload, size_t bytes);

  FaultPlan& faults() { return faults_; }
  [[nodiscard]] const FaultPlan& faults() const { return faults_; }
  [[nodiscard]] const LatencyMatrix& latency() const { return latency_; }
  [[nodiscard]] SiteId site_of(NodeId n) const;
  [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Manual up/down control (in addition to the FaultPlan windows).
  void set_node_up(NodeId n, bool up);
  [[nodiscard]] bool node_up(NodeId n) const;

  [[nodiscard]] uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] uint64_t messages_delivered() const { return messages_delivered_; }
  [[nodiscard]] uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] Duration egress_busy(NodeId n) const;
  [[nodiscard]] const net::PoolStats& pool_stats() const {
    return pool_.stats();
  }
  [[nodiscard]] net::BufferPool& pool() { return pool_; }

 private:
  struct Node {
    SiteId site;
    net::DeliverFn deliver;
    EgressLink egress;
    bool up = true;
  };

  [[nodiscard]] bool usable(NodeId n, Time t) const;
  void schedule_delivery(NodeId from, NodeId to, std::any payload,
                         size_t bytes, net::Frame frame, Time arrival);

  Simulator& sim_;
  LatencyMatrix latency_;
  FaultPlan faults_;
  net::BufferPool pool_;
  std::vector<Node> nodes_;
  // Per-link FIFO ordering (TCP semantics): jitter may stretch but never
  // reorder a (src, dst) stream. Key = src * 2^32 + dst.
  std::unordered_map<uint64_t, Time> last_arrival_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace praft::sim
