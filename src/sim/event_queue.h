#pragma once

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/function.h"
#include "common/types.h"

namespace praft::sim {

using EventId = uint64_t;
inline constexpr EventId kNoEvent = 0;

/// Deterministic discrete-event queue. Events at equal timestamps fire in
/// scheduling order (FIFO by sequence number), which keeps whole simulations
/// reproducible for a given seed.
class EventQueue {
 public:
  /// Schedules `fn` to run at absolute time `at` (clamped to now()).
  /// Callables may be move-only (e.g. deliveries owning a pooled wire frame).
  EventId schedule_at(Time at, UniqueFunction<void()> fn);

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(EventId id);

  /// Runs the earliest pending event. Returns false when the queue is empty.
  bool step();

  /// Runs all events with timestamp <= `t`, then advances the clock to `t`.
  void run_until(Time t);

  /// Runs until the queue drains or `max_events` have fired.
  void run_all(uint64_t max_events = UINT64_MAX);

  /// Drops every pending event without running it; their closures (and any
  /// pooled frames they own) are destroyed. Used at world teardown so
  /// in-flight deliveries release their frames before the pool dies.
  void clear();

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] size_t pending() const { return heap_.size() - cancelled_.size(); }
  [[nodiscard]] uint64_t events_fired() const { return fired_; }

 private:
  struct Event {
    Time at;
    EventId id;
    UniqueFunction<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  Time now_ = 0;
  EventId next_id_ = 1;
  uint64_t fired_ = 0;
};

}  // namespace praft::sim
