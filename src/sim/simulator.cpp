#include "sim/simulator.h"

// Simulator is header-only today; this TU anchors the library target.
namespace praft::sim {}
