#pragma once

#include "common/rng.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace praft::sim {

/// Bundles the event queue with the root RNG. Every component of a simulated
/// world (network, nodes, clients) is driven from one Simulator so that a
/// (seed, configuration) pair fully determines the execution.
class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return queue_.now(); }
  EventQueue& queue() { return queue_; }
  Rng& rng() { return rng_; }

  EventId after(Duration delay, UniqueFunction<void()> fn) {
    return queue_.schedule_at(now() + delay, std::move(fn));
  }
  EventId at(Time t, UniqueFunction<void()> fn) {
    return queue_.schedule_at(t, std::move(fn));
  }
  void cancel(EventId id) { queue_.cancel(id); }

  void run_until(Time t) { queue_.run_until(t); }
  void run_for(Duration d) { queue_.run_until(now() + d); }
  void run_all(uint64_t max_events = UINT64_MAX) { queue_.run_all(max_events); }

 private:
  EventQueue queue_;
  Rng rng_;
};

}  // namespace praft::sim
