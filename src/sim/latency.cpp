#include "sim/latency.h"

#include "common/check.h"

namespace praft::sim {

LatencyMatrix::LatencyMatrix(int num_sites, Duration default_rtt)
    : num_sites_(num_sites),
      rtt_(static_cast<size_t>(num_sites) * static_cast<size_t>(num_sites),
           default_rtt),
      names_(static_cast<size_t>(num_sites)) {
  PRAFT_CHECK(num_sites > 0);
  for (int i = 0; i < num_sites; ++i) {
    names_[static_cast<size_t>(i)] = "site" + std::to_string(i);
  }
}

void LatencyMatrix::set_rtt(SiteId a, SiteId b, Duration rtt) {
  PRAFT_CHECK(a >= 0 && a < num_sites_ && b >= 0 && b < num_sites_);
  rtt_[static_cast<size_t>(a) * static_cast<size_t>(num_sites_) +
       static_cast<size_t>(b)] = rtt;
  rtt_[static_cast<size_t>(b) * static_cast<size_t>(num_sites_) +
       static_cast<size_t>(a)] = rtt;
}

Duration LatencyMatrix::rtt(SiteId a, SiteId b) const {
  if (a == b) return local_rtt_;
  return rtt_[static_cast<size_t>(a) * static_cast<size_t>(num_sites_) +
              static_cast<size_t>(b)];
}

Duration LatencyMatrix::one_way(SiteId a, SiteId b, Rng& rng) const {
  const Duration half = rtt(a, b) / 2;
  if (jitter_ <= 0.0) return half;
  const double j = 1.0 + jitter_ * (2.0 * rng.uniform() - 1.0);
  return static_cast<Duration>(static_cast<double>(half) * j);
}

void LatencyMatrix::set_site_name(SiteId s, std::string name) {
  PRAFT_CHECK(s >= 0 && s < num_sites_);
  names_[static_cast<size_t>(s)] = std::move(name);
}

const std::string& LatencyMatrix::site_name(SiteId s) const {
  PRAFT_CHECK(s >= 0 && s < num_sites_);
  return names_[static_cast<size_t>(s)];
}

LatencyMatrix LatencyMatrix::aws5() {
  LatencyMatrix m(5, msec(100));
  m.set_site_name(kOregon, "Oregon");
  m.set_site_name(kOhio, "Ohio");
  m.set_site_name(kIreland, "Ireland");
  m.set_site_name(kCanada, "Canada");
  m.set_site_name(kSeoul, "Seoul");
  // RTTs in ms, chosen to match the paper's stated 25–292 ms spread and the
  // qualitative facts in §5.2 (Oregon's nearest quorum = {ORE, OHI, CAN};
  // Seoul is farthest from everything; Ireland–Seoul is the 292 ms extreme).
  m.set_rtt(kOregon, kOhio, msec(69));
  m.set_rtt(kOregon, kIreland, msec(130));
  m.set_rtt(kOregon, kCanada, msec(65));
  m.set_rtt(kOregon, kSeoul, msec(126));
  m.set_rtt(kOhio, kIreland, msec(75));
  m.set_rtt(kOhio, kCanada, msec(25));
  m.set_rtt(kOhio, kSeoul, msec(175));
  m.set_rtt(kIreland, kCanada, msec(70));
  m.set_rtt(kIreland, kSeoul, msec(292));
  m.set_rtt(kCanada, kSeoul, msec(170));
  return m;
}

}  // namespace praft::sim
