#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace praft::sim {

EventId EventQueue::schedule_at(Time at, UniqueFunction<void()> fn) {
  PRAFT_CHECK(fn != nullptr);
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  heap_.push(Event{at, id, std::move(fn)});
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id != kNoEvent) cancelled_.insert(id);
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    // priority_queue::top() is const; the function object is moved out via
    // const_cast which is safe because we pop immediately afterwards.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    PRAFT_CHECK(ev.at >= now_);
    now_ = ev.at;
    ++fired_;
    ev.fn();
    return true;
  }
  return false;
}

void EventQueue::run_until(Time t) {
  while (!heap_.empty() && heap_.top().at <= t) {
    if (!step()) break;
  }
  if (now_ < t) now_ = t;
}

void EventQueue::run_all(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && step()) ++n;
}

void EventQueue::clear() {
  heap_ = decltype(heap_){};
  cancelled_.clear();
}

}  // namespace praft::sim
