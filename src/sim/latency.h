#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace praft::sim {

/// Site-to-site round-trip-time matrix with optional jitter. One-way delays
/// are sampled as RTT/2 * (1 ± jitter). Intra-site traffic uses `local_rtt`.
class LatencyMatrix {
 public:
  LatencyMatrix(int num_sites, Duration default_rtt);

  void set_rtt(SiteId a, SiteId b, Duration rtt);  // symmetric
  void set_local_rtt(Duration rtt) { local_rtt_ = rtt; }
  void set_jitter(double fraction) { jitter_ = fraction; }
  void set_site_name(SiteId s, std::string name);

  [[nodiscard]] Duration rtt(SiteId a, SiteId b) const;
  [[nodiscard]] Duration one_way(SiteId a, SiteId b, Rng& rng) const;
  [[nodiscard]] int num_sites() const { return num_sites_; }
  [[nodiscard]] const std::string& site_name(SiteId s) const;

  /// The paper's 5-region AWS testbed (§5): Oregon, Ohio, Ireland, Canada,
  /// Seoul. RTTs range 25–292 ms; Oregon's nearest quorum is {ORE, OHI, CAN}.
  static LatencyMatrix aws5();

  static constexpr SiteId kOregon = 0;
  static constexpr SiteId kOhio = 1;
  static constexpr SiteId kIreland = 2;
  static constexpr SiteId kCanada = 3;
  static constexpr SiteId kSeoul = 4;

 private:
  int num_sites_;
  Duration local_rtt_ = msec(1) / 2;  // 0.5 ms intra-site RTT
  double jitter_ = 0.05;
  std::vector<Duration> rtt_;  // row-major num_sites x num_sites
  std::vector<std::string> names_;
};

}  // namespace praft::sim
