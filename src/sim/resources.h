#pragma once

#include <cstddef>

#include "common/types.h"

namespace praft::sim {

/// A serial FIFO resource (NIC egress or CPU core). Work enqueued at time t
/// with service duration d completes at max(next_free, t) + d. This is the
/// mechanism by which peak-throughput experiments saturate: once arrivals
/// outpace the service rate, completion times (and thus latencies) grow.
class SerialResource {
 public:
  /// Enqueues work; returns its completion time.
  Time enqueue(Time now, Duration service) {
    if (next_free_ < now) next_free_ = now;
    next_free_ += service;
    busy_ += service;
    return next_free_;
  }

  /// Earliest time new work could start.
  [[nodiscard]] Time next_free() const { return next_free_; }

  /// Total busy time accumulated (for utilization reports).
  [[nodiscard]] Duration busy_time() const { return busy_; }

  /// Queueing backlog at `now` (0 when idle).
  [[nodiscard]] Duration backlog(Time now) const {
    return next_free_ > now ? next_free_ - now : 0;
  }

  void reset() { next_free_ = 0; busy_ = 0; }

 private:
  Time next_free_ = 0;
  Duration busy_ = 0;
};

/// Egress NIC modeled as a SerialResource whose service time is bytes/rate.
class EgressLink {
 public:
  /// rate in bytes per microsecond; <= 0 means unlimited.
  explicit EgressLink(double bytes_per_us = 0.0) : rate_(bytes_per_us) {}

  static double mbps_to_bytes_per_us(double mbps) {
    return mbps * 1e6 / 8.0 / 1e6;  // bits/s -> bytes/us
  }

  Time enqueue(Time now, size_t bytes) {
    if (rate_ <= 0.0) return now;
    const auto service =
        static_cast<Duration>(static_cast<double>(bytes) / rate_);
    return q_.enqueue(now, service);
  }

  [[nodiscard]] Duration busy_time() const { return q_.busy_time(); }
  [[nodiscard]] Duration backlog(Time now) const { return q_.backlog(now); }
  [[nodiscard]] bool limited() const { return rate_ > 0.0; }

 private:
  double rate_;
  SerialResource q_;
};

}  // namespace praft::sim
