#pragma once

#include <any>
#include <deque>
#include <functional>
#include <utility>

#include "consensus/env.h"
#include "consensus/types.h"
#include "storage/wal.h"

namespace praft::storage {

/// Per-node durability front end: the one place the write-ahead discipline
/// "persist hard state BEFORE the message that depends on it leaves the
/// node" is enforced. Protocols stage writes through it and route every
/// outgoing message through send(); a message queues behind the staged
/// writes it depends on and is released only when the covering fsync
/// completes. barrier() is the same gate for local actions (a leader may
/// count ITSELF toward a commit quorum only once its own log entries are
/// durable).
///
/// Group commit: syncs are coalesced — one modeled fsync (charged to the
/// store's sim::SerialResource disk) covers every write staged during the
/// `sync_batch_delay` window, reusing the runtime Batcher's scheduling
/// discipline (one pending flush, armed on first demand). This is the knob
/// the recovery bench flips: per-message fsyncs vs batched group commit.
///
/// Two degenerate modes keep the rest of the repo simple:
///  * no store (nullptr): a diskless node — sends go straight out, barriers
///    run inline. Unit tests that never crash-restart use this.
///  * zero-cost storage (fsync_duration == 0 and sync_batch_delay == 0):
///    every staged write commits synchronously, so sends never defer and
///    event trajectories are identical to the diskless mode — but the store
///    still holds a complete durable image, so crash-restart works.
class Persister {
 public:
  using HardStateFn = std::function<consensus::HardState()>;

  Persister(consensus::Env& env, DurableStore* store, Duration fsync_duration,
            Duration sync_batch_delay, HardStateFn hard_state)
      : env_(env),
        store_(store),
        fsync_(fsync_duration),
        delay_(sync_batch_delay),
        hard_state_(std::move(hard_state)) {}

  [[nodiscard]] bool enabled() const { return store_ != nullptr; }
  [[nodiscard]] bool synchronous() const {
    return store_ == nullptr || (fsync_ == 0 && delay_ == 0);
  }
  [[nodiscard]] DurableStore* store() { return store_; }

  /// Observes the hard state each released message depended on (installed by
  /// the chaos checker through NodeIface::set_hard_state_probe).
  void set_probe(consensus::HardStateProbe probe) {
    probe_ = std::move(probe);
  }

  // -- Staging (no-ops without a store) -------------------------------------
  void hard_state() {
    if (store_ == nullptr) return;
    store_->stage_hard_state(hard_state_());
    maybe_commit_now();
  }
  void record(WalRecord r) {
    if (store_ == nullptr) return;
    store_->stage_record(std::move(r));
    maybe_commit_now();
  }
  void truncate_after(consensus::LogIndex last_kept) {
    if (store_ == nullptr) return;
    store_->stage_truncate_after(last_kept);
    maybe_commit_now();
  }
  void snapshot(const consensus::Snapshot& snap) {
    if (store_ == nullptr) return;
    store_->stage_snapshot(snap);
    maybe_commit_now();
  }

  /// Sends `payload` once every write staged so far is durable. The hard
  /// state the message depends on is captured NOW; the probe sees it when
  /// the message actually leaves.
  void send(NodeId to, std::any payload, size_t bytes) {
    const consensus::HardState hs = hard_state_();
    if (clean()) {
      if (probe_) probe_(hs);
      env_.send(to, std::move(payload), bytes);
      return;
    }
    waiters_.push_back(Waiter{store_->staged_seq(), to, std::move(payload),
                              bytes, hs, nullptr});
    arm();
  }

  /// Runs `fn` once every write staged so far is durable.
  void barrier(std::function<void()> fn) {
    if (clean()) {
      fn();
      return;
    }
    waiters_.push_back(Waiter{store_->staged_seq(), kNoNode, {}, 0,
                              consensus::HardState{}, std::move(fn)});
    arm();
  }

  /// TEST-ONLY unsafe path (TimingOptions::unsafe_skip_vote_fsync): sends
  /// immediately WITHOUT waiting for the staged hard state to reach disk —
  /// the classic missing-fsync-before-vote-reply bug. The probe still
  /// records the state the message depended on, which is how the chaos
  /// checker convicts a later crash of regressing externally-visible state.
  void send_unsynced(NodeId to, std::any payload, size_t bytes) {
    if (probe_) probe_(hard_state_());
    env_.send(to, std::move(payload), bytes);
  }

 private:
  struct Waiter {
    uint64_t seq = 0;
    NodeId to = kNoNode;
    std::any payload;
    size_t bytes = 0;
    consensus::HardState hs;
    std::function<void()> fn;  // barrier waiters; null for sends
  };

  [[nodiscard]] bool clean() const {
    return store_ == nullptr || (!store_->dirty() && waiters_.empty());
  }

  /// Zero-cost mode: fsync completes instantly, so commit inline and keep
  /// trajectories identical to a diskless run.
  void maybe_commit_now() {
    if (fsync_ == 0 && delay_ == 0) {
      store_->commit_through(store_->staged_seq());
      store_->note_sync();
    }
  }

  void arm() {
    if (sync_pending_) return;
    sync_pending_ = true;
    env_.schedule(delay_, [this] { begin_sync(); });
  }

  void begin_sync() {
    const uint64_t seq = store_->staged_seq();
    const Time done = store_->disk().enqueue(env_.now(), fsync_);
    env_.schedule(done - env_.now(), [this, seq] {
      store_->commit_through(seq);
      store_->note_sync();
      release(seq);
      sync_pending_ = false;
      if (store_->dirty() || !waiters_.empty()) arm();
    });
  }

  void release(uint64_t seq) {
    while (!waiters_.empty() && waiters_.front().seq <= seq) {
      Waiter w = std::move(waiters_.front());
      waiters_.pop_front();
      if (w.fn) {
        w.fn();
      } else {
        if (probe_) probe_(w.hs);
        env_.send(w.to, std::move(w.payload), w.bytes);
      }
    }
  }

  consensus::Env& env_;
  DurableStore* store_;
  Duration fsync_;
  Duration delay_;
  HardStateFn hard_state_;
  consensus::HardStateProbe probe_;
  std::deque<Waiter> waiters_;
  bool sync_pending_ = false;
};

}  // namespace praft::storage
