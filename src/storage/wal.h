#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <variant>
#include <vector>

#include "consensus/snapshot.h"
#include "consensus/types.h"
#include "sim/resources.h"

namespace praft::storage {

/// One durable per-position record in the write-ahead log: the union of what
/// the four protocols must persist about a log position before a message
/// depending on it leaves the node. Raft/Raft* use (term, cmd); MultiPaxos
/// uses the accepted (ballot, cmd) plus the chosen flag; Mencius additionally
/// persists the per-slot revocation promise. One record per position — a
/// re-accept at a higher ballot OVERWRITES the record (the WAL coalesces at
/// fsync granularity), which is what bounds recovery replay to the live
/// positions above the snapshot floor rather than the raw write history.
struct WalRecord {
  consensus::LogIndex index = 0;
  consensus::Term term = 0;       // entry term / accepted ballot round
  NodeId vnode = kNoNode;         // accepted ballot owner (ballot protocols)
  consensus::Term promised = -1;  // per-slot revocation promise (Mencius)
  NodeId pnode = kNoNode;
  bool decided = false;           // chosen/decided (Paxos-family finality)
  bool has_value = false;
  kv::Command cmd;

  /// Modeled on-disk size (fsync cost accounting + bench reporting).
  [[nodiscard]] size_t wire_bytes() const {
    return 40 + (has_value ? cmd.wire_bytes() : 0);
  }
};

/// Everything a restarted node gets back from stable storage: the last
/// synced hard state, the newest durable snapshot, and the WAL suffix above
/// the snapshot floor (ascending index). NodeIface::recover rebuilds the
/// node's in-memory state from exactly this — nothing else survives.
struct DurableImage {
  consensus::HardState hard;
  consensus::Snapshot snap;
  std::vector<WalRecord> records;
};

/// What a recovery did, for invariant checking and bench reporting: replay
/// work must stay bounded by (wal tail − snapshot floor), which is the whole
/// point of snapshotting through the WAL.
struct RecoveryStats {
  bool recovered = false;
  size_t replayed = 0;                       // WAL records replayed
  consensus::LogIndex snapshot_floor = -1;   // durable snapshot coverage
  consensus::LogIndex wal_tail = -1;         // highest durable record index
};

/// Deterministic, simulation-backed stable storage for one replica: a hard
/// state file plus a write-ahead log with snapshot-based truncation. The
/// store OUTLIVES the node object (the harness Cluster owns it), which is
/// what makes real crash-restart testable: Cluster::restart_replica destroys
/// the node and rebuilds it purely from image().
///
/// Write model (write-ahead discipline made explicit):
///  * stage_*() buffers a mutation. Staged mutations are VOLATILE — a crash
///    (drop_unsynced) discards them.
///  * commit_through(seq) applies every mutation staged at or before `seq`
///    to the durable state, in staging order. The storage::Persister calls
///    it when a modeled fsync completes; protocols never call it directly.
///
/// fsync cost is charged through the per-store sim::SerialResource disk —
/// concurrent syncs queue, which is exactly how fsync discipline comes to
/// dominate throughput (Marandi et al.), and what the group-commit path in
/// the Persister exists to amortize.
class DurableStore {
 public:
  /// Sequence number of the most recently staged mutation (0 = none yet).
  [[nodiscard]] uint64_t staged_seq() const { return staged_seq_; }
  /// Sequence number of the most recently committed mutation.
  [[nodiscard]] uint64_t synced_seq() const { return synced_seq_; }
  [[nodiscard]] bool dirty() const { return staged_seq_ > synced_seq_; }

  void stage_hard_state(const consensus::HardState& hs);
  void stage_record(WalRecord r);
  /// Durably drops every record with index > last_kept (Raft conflict-suffix
  /// erasure, snapshot-install log resets).
  void stage_truncate_after(consensus::LogIndex last_kept);
  /// Durably adopts `snap` and lets the WAL drop every record at or below
  /// its coverage — the snapshot substitutes for replaying them.
  void stage_snapshot(consensus::Snapshot snap);

  /// Makes every mutation staged at or before `seq` durable.
  void commit_through(uint64_t seq);
  /// Crash semantics: staged-but-unsynced mutations are lost.
  void drop_unsynced();

  /// True once anything was ever synced (a restart should recover() only
  /// when there is durable state to recover from).
  [[nodiscard]] bool has_state() const { return any_synced_; }
  [[nodiscard]] DurableImage image() const;

  [[nodiscard]] const consensus::HardState& hard_state() const {
    return hard_;
  }
  [[nodiscard]] const consensus::Snapshot& snapshot() const { return snap_; }
  [[nodiscard]] consensus::LogIndex snapshot_floor() const {
    return snap_.valid() ? snap_.last_index : -1;
  }
  /// Highest durable record index, or the snapshot floor when the WAL is
  /// empty (the recovery replay bound's upper end).
  [[nodiscard]] consensus::LogIndex wal_tail() const {
    return records_.empty() ? snapshot_floor() : records_.rbegin()->first;
  }
  [[nodiscard]] size_t wal_records() const { return records_.size(); }

  /// The modeled disk this store syncs through (queueing = fsync backlog).
  [[nodiscard]] sim::SerialResource& disk() { return disk_; }

  // Lifetime counters for bench/diagnostics.
  [[nodiscard]] uint64_t syncs() const { return syncs_; }
  [[nodiscard]] uint64_t bytes_synced() const { return bytes_synced_; }
  /// Counts one completed fsync batch (called by the Persister).
  void note_sync() { ++syncs_; }

 private:
  struct Truncate {
    consensus::LogIndex last_kept;
  };
  using StagedOp =
      std::variant<consensus::HardState, WalRecord, Truncate,
                   consensus::Snapshot>;

  void apply(const StagedOp& op);

  // Durable state.
  consensus::HardState hard_;
  consensus::Snapshot snap_;
  std::map<consensus::LogIndex, WalRecord> records_;
  bool any_synced_ = false;

  // Staged (volatile) mutations, in staging order. base_seq_ is the sequence
  // number of the mutation before staged_.front().
  std::vector<StagedOp> staged_;
  uint64_t base_seq_ = 0;
  uint64_t staged_seq_ = 0;
  uint64_t synced_seq_ = 0;

  sim::SerialResource disk_;
  uint64_t syncs_ = 0;
  uint64_t bytes_synced_ = 0;
};

}  // namespace praft::storage
