#include "storage/wal.h"

#include "common/check.h"

namespace praft::storage {

void DurableStore::stage_hard_state(const consensus::HardState& hs) {
  staged_.emplace_back(hs);
  ++staged_seq_;
}

void DurableStore::stage_record(WalRecord r) {
  staged_.emplace_back(std::move(r));
  ++staged_seq_;
}

void DurableStore::stage_truncate_after(consensus::LogIndex last_kept) {
  staged_.emplace_back(Truncate{last_kept});
  ++staged_seq_;
}

void DurableStore::stage_snapshot(consensus::Snapshot snap) {
  staged_.emplace_back(std::move(snap));
  ++staged_seq_;
}

void DurableStore::apply(const StagedOp& op) {
  if (const auto* hs = std::get_if<consensus::HardState>(&op)) {
    hard_ = *hs;
    bytes_synced_ += 40;
    return;
  }
  if (const auto* rec = std::get_if<WalRecord>(&op)) {
    bytes_synced_ += rec->wire_bytes();
    if (rec->index <= snapshot_floor()) return;  // already inside the snapshot
    records_[rec->index] = *rec;
    return;
  }
  if (const auto* tr = std::get_if<Truncate>(&op)) {
    records_.erase(records_.upper_bound(tr->last_kept), records_.end());
    bytes_synced_ += 16;
    return;
  }
  const auto& snap = std::get<consensus::Snapshot>(op);
  bytes_synced_ += snap.wire_bytes();
  if (!snap.valid() || snap.last_index <= snapshot_floor()) return;
  snap_ = snap;
  // The snapshot substitutes for replaying everything it covers.
  records_.erase(records_.begin(), records_.upper_bound(snap.last_index));
}

void DurableStore::commit_through(uint64_t seq) {
  PRAFT_CHECK(seq <= staged_seq_);
  while (synced_seq_ < seq) {
    const size_t k = static_cast<size_t>(synced_seq_ - base_seq_);
    PRAFT_CHECK(k < staged_.size());
    apply(staged_[k]);
    ++synced_seq_;
    any_synced_ = true;
  }
  // Drop the committed prefix of the staging buffer.
  const size_t committed = static_cast<size_t>(synced_seq_ - base_seq_);
  if (committed > 0) {
    staged_.erase(staged_.begin(),
                  staged_.begin() + static_cast<ptrdiff_t>(committed));
    base_seq_ = synced_seq_;
  }
}

void DurableStore::drop_unsynced() {
  staged_.clear();
  staged_seq_ = synced_seq_;
  base_seq_ = synced_seq_;
}

DurableImage DurableStore::image() const {
  DurableImage img;
  img.hard = hard_;
  img.snap = snap_;
  img.records.reserve(records_.size());
  for (const auto& [idx, rec] : records_) img.records.push_back(rec);
  return img;
}

}  // namespace praft::storage
