#pragma once

#include <list>
#include <map>
#include <set>
#include <unordered_map>

#include "harness/log_server.h"
#include "lease/manager.h"

namespace praft::pql {

struct PqlOptions {
  lease::Options lease;
  /// Ablation A1 — the paper's "handworked bug" (§A.2): a hand-port that
  /// collects holder sets only from the f follower appendOKs and forgets the
  /// holders granted by the leader itself. The automated port includes them
  /// because f+1 Paxos acceptOKs map to f appendOKs plus the leader's
  /// implicit one. Set false to reproduce the bug.
  bool include_leader_grants = true;
  /// How often the leader re-evaluates the commit gate (leases expire
  /// asynchronously to append traffic).
  Duration gate_retry = msec(50);
};

/// Raft*-PQL (paper Fig. 13): Raft* plus the ported Paxos Quorum Lease
/// optimization, built exclusively from non-mutating hooks on RaftStarNode —
/// the runtime embodiment of §4.2's non-mutating optimization class:
///  * LocalRead:    lease-holding replicas serve reads locally once every
///                  log entry that writes the key is committed.
///  * Phase2b/appendOK: repliers piggyback the holders of leases THEY granted.
///  * LeaderLearn:  commit waits for appendOKs from every holder in
///                  (piggybacked holder sets ∪ leader's own grants).
class RaftStarPqlServer : public harness::RaftStarServer {
 public:
  RaftStarPqlServer(harness::NodeHost& host, consensus::Group group,
                    harness::CostModel costs, raftstar::Options opt = {},
                    PqlOptions popt = {});

  void start() override;

  [[nodiscard]] const lease::LeaseManager& leases() const { return leases_; }
  lease::LeaseManager& leases() { return leases_; }
  [[nodiscard]] int64_t local_reads_served() const { return local_reads_; }

  /// PQL replicas serve reads locally, so a client request costs the full
  /// request-handling time at EVERY replica (not the cheap forward relay).
  [[nodiscard]] Duration cost_of(const net::Packet& p) const override {
    if (!costs_.enabled) return 0;
    if (const auto* hm = net::payload_as<harness::Message>(p)) {
      if (std::holds_alternative<harness::ClientRequest>(*hm)) {
        return costs_.client_request;
      }
    }
    return harness::RaftStarServer::cost_of(p);
  }

 protected:
  bool handle_other(const net::Packet& p) override;
  bool try_serve_read(const kv::Command& cmd, NodeId reply_to,
                      bool via_forward, NodeId origin) override;
  void on_applied_hook(consensus::LogIndex idx,
                       const kv::Command& cmd) override;

 private:
  struct FollowerAck {
    consensus::LogIndex match = 0;
    std::vector<NodeId> holders;  // leases granted BY that follower
  };
  struct PendingRead {
    kv::Command cmd;
    NodeId origin;
    consensus::LogIndex need;
  };

  [[nodiscard]] consensus::LogIndex last_write_index(uint64_t key) const {
    auto it = last_write_.find(key);
    return it == last_write_.end() ? 0 : it->second;
  }
  bool commit_allowed(consensus::LogIndex i) const;
  void serve_read_now(const kv::Command& cmd, NodeId origin);
  void drain_pending_reads();
  void arm_gate_retry();

  PqlOptions popt_;
  lease::LeaseManager leases_;
  std::unordered_map<uint64_t, consensus::LogIndex> last_write_;
  // Ordered: commit_allowed walks the acks to build the holder set, and the
  // walk order must be seed-stable (lint rule D1).
  std::map<NodeId, FollowerAck> follower_acks_;
  std::list<PendingRead> pending_reads_;
  int64_t local_reads_ = 0;
  uint64_t gate_epoch_ = 0;
};

}  // namespace praft::pql
