#include "pql/raftstar_pql.h"

namespace praft::pql {

RaftStarPqlServer::RaftStarPqlServer(harness::NodeHost& host,
                                     consensus::Group group,
                                     harness::CostModel costs,
                                     raftstar::Options opt, PqlOptions popt)
    : harness::RaftStarServer(host, group, costs, opt), popt_(popt),
      leases_(group, host, popt.lease) {
  // Non-mutating hooks (§4.2): all PQL state lives in this adapter.
  node().set_entry_observer(
      [this](consensus::LogIndex i, const raftstar::Entry& e) {
        if (e.cmd.is_write()) last_write_[e.cmd.key] = i;
      });
  node().set_reply_decorator(
      [this] { return leases_.granted_holders(host_.now()); });
  node().set_append_reply_observer(
      [this](NodeId follower, consensus::LogIndex match,
             const std::vector<NodeId>& holders) {
        auto& ack = follower_acks_[follower];
        ack.match = std::max(ack.match, match);
        ack.holders = holders;
      });
  node().set_commit_gate(
      [this](consensus::LogIndex i) { return commit_allowed(i); });
}

void RaftStarPqlServer::start() {
  harness::RaftStarServer::start();
  leases_.start();
  arm_gate_retry();
}

void RaftStarPqlServer::arm_gate_retry() {
  // Leases expire on the clock, not on message arrival: re-run LeaderLearn
  // periodically so commits blocked on a dead holder unblock at expiry.
  const uint64_t epoch = ++gate_epoch_;
  host_.schedule(popt_.gate_retry, [this, epoch] {
    if (epoch != gate_epoch_) return;
    if (node().is_leader()) node().retry_commit();
    arm_gate_retry();
  });
}

bool RaftStarPqlServer::handle_other(const net::Packet& p) {
  if (const auto* lm = net::payload_as<lease::Message>(p)) {
    leases_.on_message(*lm);
    return true;
  }
  return false;
}

bool RaftStarPqlServer::commit_allowed(consensus::LogIndex i) const {
  // LeaderLearn (Fig. 13): holderSet = holders piggybacked by the followers
  // that acknowledged index i ∪ holders granted by the leader itself.
  const Time now = host_.now();
  std::set<NodeId> holder_set;
  if (popt_.include_leader_grants) {
    for (NodeId h : leases_.granted_holders(now)) holder_set.insert(h);
  }
  for (const auto& [follower, ack] : follower_acks_) {
    if (ack.match < i) continue;
    for (NodeId h : ack.holders) holder_set.insert(h);
  }
  for (NodeId h : holder_set) {
    if (h == id()) continue;  // the leader's own appendOK is implicit
    auto it = follower_acks_.find(h);
    if (it == follower_acks_.end() || it->second.match < i) return false;
  }
  return true;
}

bool RaftStarPqlServer::try_serve_read(const kv::Command& cmd, NodeId,
                                       bool, NodeId origin) {
  // LocalRead (Fig. 13): quorum lease + every write to the key committed.
  if (!leases_.quorum_lease_active(host_.now())) return false;
  const consensus::LogIndex need = last_write_index(cmd.key);
  if (need <= node().commit_index()) {
    serve_read_now(cmd, origin);
  } else {
    pending_reads_.push_back(PendingRead{cmd, origin, need});
  }
  return true;
}

void RaftStarPqlServer::serve_read_now(const kv::Command& cmd, NodeId origin) {
  ++local_reads_;
  const uint64_t value = store_.read_local(cmd.key);
  if (origin != kNoNode && origin != id()) {
    harness::ForwardReply fr{cmd, value, true};
    host_.send(origin, harness::Message{fr}, harness::wire_size(fr));
  } else {
    reply_to_client(cmd.client, cmd.seq, value, true);
  }
}

void RaftStarPqlServer::on_applied_hook(consensus::LogIndex,
                                        const kv::Command&) {
  drain_pending_reads();
}

void RaftStarPqlServer::drain_pending_reads() {
  const Time now = host_.now();
  for (auto it = pending_reads_.begin(); it != pending_reads_.end();) {
    if (it->need > node().commit_index()) {
      ++it;
      continue;
    }
    if (leases_.quorum_lease_active(now)) {
      serve_read_now(it->cmd, it->origin);
    } else {
      // The lease lapsed while we waited: fall back to the log path.
      submit_or_forward(it->cmd, it->origin);
    }
    it = pending_reads_.erase(it);
  }
}

}  // namespace praft::pql
