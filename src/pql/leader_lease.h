#pragma once

#include "harness/log_server.h"
#include "lease/manager.h"

namespace praft::pql {

/// Leader Lease (LL) baseline from §5.1: the leader holds the lease alone,
/// so only the leader may answer reads from its local copy; follower-site
/// clients still pay a WAN round trip to forward the read. Writes take the
/// unmodified Raft* path (no holder gating — only the leader reads locally,
/// and it observes every commit first).
class LeaderLeaseServer : public harness::RaftStarServer {
 public:
  LeaderLeaseServer(harness::NodeHost& host, consensus::Group group,
                    harness::CostModel costs, raftstar::Options opt = {},
                    lease::Options lopt = {})
      : harness::RaftStarServer(host, group, costs, opt),
        leases_(group, host, lopt) {}

  void start() override {
    harness::RaftStarServer::start();
    leases_.start();
  }

  [[nodiscard]] int64_t local_reads_served() const { return local_reads_; }

 protected:
  bool handle_other(const net::Packet& p) override {
    if (const auto* lm = net::payload_as<lease::Message>(p)) {
      leases_.on_message(*lm);
      return true;
    }
    return false;
  }

  bool try_serve_read(const kv::Command& cmd, NodeId, bool,
                      NodeId origin) override {
    if (!node().is_leader() || !leases_.quorum_lease_active(host_.now())) {
      return false;  // followers forward; an unleased leader uses the log
    }
    ++local_reads_;
    const uint64_t value = store_.read_local(cmd.key);
    if (origin != kNoNode && origin != id()) {
      harness::ForwardReply fr{cmd, value, true};
      host_.send(origin, harness::Message{fr}, harness::wire_size(fr));
    } else {
      reply_to_client(cmd.client, cmd.seq, value, true);
    }
    return true;
  }

 private:
  lease::LeaseManager leases_;
  int64_t local_reads_ = 0;
};

}  // namespace praft::pql
