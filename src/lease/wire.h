#pragma once

#include "lease/manager.h"
#include "net/wire.h"

namespace praft::lease {

/// Flat-frame codec for the PQL lease message family (net/wire.h layout,
/// Family::kLease, opcode = variant alternative index). encode() produces
/// exactly wire_size(m) bytes and decode() inverts it.
net::Frame encode(const Message& m, net::BufferPool& pool);
Message decode(net::FrameView f);

}  // namespace praft::lease
