#pragma once

#include <variant>
#include <vector>

#include "consensus/env.h"
#include "consensus/group.h"
#include "consensus/types.h"
#include "net/packet.h"

namespace praft::lease {

/// Paxos Quorum Lease parameters (§5.1 uses the PQL paper's defaults:
/// 2 s duration, renewed every 0.5 s).
struct Options {
  Duration duration = sec(2);
  Duration renew_interval = msec(500);
  /// Peers this replica grants leases to; empty = everyone (the paper's
  /// default "any replica can read locally" configuration). Tests use
  /// partial grant sets to reproduce the §A.2 hand-port bug.
  std::vector<NodeId> grant_to;
};

/// Lease grant message: `grantor` grants `holder` a lease valid until
/// `expiry`. The simulation has a common time base, matching the global-timer
/// abstraction the paper's own TLA+ spec uses (Appendix B.3); a production
/// port would subtract a clock-drift guard from `expiry`.
struct Grant {
  NodeId grantor = kNoNode;
  NodeId holder = kNoNode;
  Time expiry = 0;

  friend bool operator==(const Grant&, const Grant&) = default;
};

/// Holder's acknowledgement; a grantor stops renewing to silent holders so a
/// crashed holder drops out of everyone's holder set after one duration —
/// bounding how long PQL writes can stall on a dead lease holder.
struct GrantAck {
  NodeId holder = kNoNode;
  Time expiry = 0;  // echo of the acked grant

  friend bool operator==(const GrantAck&, const GrantAck&) = default;
};

using Message = std::variant<Grant, GrantAck>;

// Exact encoded frame sizes (see lease/wire.cpp for the field layout).
inline size_t wire_size(const Grant&) {
  return consensus::wire::kFrame + 4 + 4 + 8;
}
inline size_t wire_size(const GrantAck&) {
  return consensus::wire::kFrame + 4 + 8;
}
inline size_t wire_size(const Message& m) {
  return std::visit([](const auto& x) { return wire_size(x); }, m);
}

/// Tracks leases this replica GRANTS to every peer (renewed on a timer) and
/// leases it HOLDS from peers. PQL's quorum-lease predicate (paper Fig. 11
/// line 9 / Fig. 13 line 3): a replica may read locally iff it holds valid
/// leases from >= f+1 replicas including itself.
class LeaseManager {
 public:
  LeaseManager(consensus::Group group, consensus::Env& env, Options opt = {});

  /// Starts the periodic grant/renew loop (every replica grants to all).
  void start();

  /// Feeds a lease message delivered from the network.
  void on_message(const Message& m);
  void on_grant(const Grant& g);
  void on_grant_ack(const GrantAck& a, NodeId from);

  /// Number of valid leases held (self-lease always counts).
  [[nodiscard]] int valid_leases(Time now) const;

  /// PQL quorum-lease predicate: validLeasesNum >= f + 1.
  [[nodiscard]] bool quorum_lease_active(Time now) const {
    return valid_leases(now) >= group_.majority();
  }

  /// Replicas this node has granted (still-unexpired) leases to, i.e. the
  /// holders it must notify before committing (attached to appendOK per
  /// Fig. 13; self excluded — a commit never waits on the leader itself).
  [[nodiscard]] std::vector<NodeId> granted_holders(Time now) const;

  /// Pauses granting (used in tests to force lease expiry).
  void stop_granting() { granting_ = false; }
  void resume_granting();

 private:
  void grant_round();
  void arm_timer();

  consensus::Group group_;
  consensus::Env& env_;
  Options opt_;
  std::vector<Time> held_expiry_;     // by member rank; our own always valid
  std::vector<Time> granted_expiry_;  // by member rank
  std::vector<Time> last_ack_;        // last GrantAck seen, by member rank
  bool granting_ = true;
  bool started_ = false;
  uint64_t timer_epoch_ = 0;
};

}  // namespace praft::lease
