#include "lease/manager.h"

namespace praft::lease {

LeaseManager::LeaseManager(consensus::Group group, consensus::Env& env,
                           Options opt)
    : group_(std::move(group)), env_(env), opt_(opt),
      held_expiry_(static_cast<size_t>(group_.n()), 0),
      granted_expiry_(static_cast<size_t>(group_.n()), 0),
      last_ack_(static_cast<size_t>(group_.n()), 0) {
  group_.validate();
}

void LeaseManager::start() {
  if (started_) return;
  started_ = true;
  // Grace period: treat everyone as responsive for one duration from start.
  for (auto& t : last_ack_) t = env_.now();
  grant_round();
  arm_timer();
}

void LeaseManager::resume_granting() {
  granting_ = true;
  grant_round();
}

void LeaseManager::arm_timer() {
  const uint64_t epoch = ++timer_epoch_;
  env_.schedule(opt_.renew_interval, [this, epoch] {
    if (epoch != timer_epoch_) return;
    if (granting_) grant_round();
    arm_timer();
  });
}

void LeaseManager::grant_round() {
  const Time now = env_.now();
  const Time expiry = now + opt_.duration;
  for (NodeId peer : group_.members) {
    const auto rank = static_cast<size_t>(group_.rank_of(peer));
    if (peer == group_.self) {
      granted_expiry_[rank] = expiry;
      held_expiry_[rank] = expiry;  // self-grant is local
      continue;
    }
    if (!opt_.grant_to.empty()) {
      bool listed = false;
      for (NodeId g : opt_.grant_to) listed |= (g == peer);
      if (!listed) continue;
    }
    // Do not renew to holders that have gone silent for a full duration:
    // their lease runs out and writes stop waiting for them (PQL liveness).
    const bool responsive = now - last_ack_[rank] <= opt_.duration;
    if (!responsive && granted_expiry_[rank] <= now) continue;
    if (responsive) granted_expiry_[rank] = expiry;
    Grant g{group_.self, peer, granted_expiry_[rank]};
    env_.send(peer, Message{g}, wire_size(g));
  }
}

void LeaseManager::on_message(const Message& m) {
  if (const auto* g = std::get_if<Grant>(&m)) {
    on_grant(*g);
  } else if (const auto* a = std::get_if<GrantAck>(&m)) {
    on_grant_ack(*a, a->holder);
  }
}

void LeaseManager::on_grant(const Grant& g) {
  if (!group_.contains(g.grantor)) return;
  const auto rank = static_cast<size_t>(group_.rank_of(g.grantor));
  if (g.expiry > held_expiry_[rank]) held_expiry_[rank] = g.expiry;
  GrantAck ack{group_.self, g.expiry};
  env_.send(g.grantor, Message{ack}, wire_size(ack));
}

void LeaseManager::on_grant_ack(const GrantAck& a, NodeId from) {
  if (!group_.contains(from)) return;
  (void)a;
  last_ack_[static_cast<size_t>(group_.rank_of(from))] = env_.now();
}

int LeaseManager::valid_leases(Time now) const {
  int count = 0;
  for (size_t r = 0; r < held_expiry_.size(); ++r) {
    if (group_.members[r] == group_.self || held_expiry_[r] > now) ++count;
  }
  return count;
}

std::vector<NodeId> LeaseManager::granted_holders(Time now) const {
  std::vector<NodeId> holders;
  for (size_t r = 0; r < granted_expiry_.size(); ++r) {
    if (group_.members[r] == group_.self) continue;
    if (granted_expiry_[r] > now) holders.push_back(group_.members[r]);
  }
  return holders;
}

}  // namespace praft::lease
