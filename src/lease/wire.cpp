#include "lease/wire.h"

#include "net/field_codec.h"

namespace praft::lease {

namespace {

using net::WireReader;
using net::WireWriter;

static_assert(std::variant_size_v<Message> == 2,
              "new lease message: add a codec below and bump this count");

void put(WireWriter& w, const Grant& m) {
  w.i32(m.grantor);
  w.i32(m.holder);
  w.i64(m.expiry);
}
Grant get_grant(WireReader& r) {
  Grant m;
  m.grantor = r.i32();
  m.holder = r.i32();
  m.expiry = r.i64();
  return m;
}

void put(WireWriter& w, const GrantAck& m) {
  w.i32(m.holder);
  w.i64(m.expiry);
}
GrantAck get_grant_ack(WireReader& r) {
  GrantAck m;
  m.holder = r.i32();
  m.expiry = r.i64();
  return m;
}

}  // namespace

net::Frame encode(const Message& m, net::BufferPool& pool) {
  const size_t total = wire_size(m);
  net::Frame f = pool.acquire(total);
  WireWriter w(f);
  w.header(net::Family::kLease, static_cast<uint8_t>(m.index()));
  std::visit([&w](const auto& x) { put(w, x); }, m);
  w.finish();
  PRAFT_CHECK_MSG(f.size() == total, "lease codec/wire_size drift");
  return f;
}

Message decode(net::FrameView f) {
  WireReader r(f);
  const auto h = r.header();
  PRAFT_CHECK(h.family == net::Family::kLease);
  Message m;
  switch (h.opcode) {
    case 0: m = get_grant(r); break;
    case 1: m = get_grant_ack(r); break;
    default: PRAFT_CHECK_MSG(false, "bad lease opcode");
  }
  r.finish();
  return m;
}

}  // namespace praft::lease
