#include "net/wire.h"

#include <cstdlib>
#include <cstring>

namespace praft::net {

void CodecRegistry::add(std::type_index type, Codec codec) {
  const uint8_t fam = static_cast<uint8_t>(codec.family);
  auto [it, inserted] = by_type_.emplace(type, std::move(codec));
  PRAFT_CHECK_MSG(inserted, "duplicate codec for payload type");
  auto [fit, finserted] = by_family_.emplace(fam, &it->second);
  PRAFT_CHECK_MSG(finserted, "duplicate codec for family byte");
}

CodecRegistry& codec_registry() {
  static CodecRegistry* reg = [] {
    auto* r = new CodecRegistry();
    install_builtin_codecs(*r);
    return r;
  }();
  return *reg;
}

namespace {

bool env_flag_default() {
#ifdef PRAFT_WIRE_VERIFY_DEFAULT
  bool on = true;
#else
  bool on = false;
#endif
  if (const char* v = std::getenv("PRAFT_WIRE_VERIFY")) {
    on = std::strcmp(v, "1") == 0 || std::strcmp(v, "ON") == 0 ||
         std::strcmp(v, "on") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "yes") == 0;
  }
  return on;
}

bool& verify_flag() {
  static bool on = env_flag_default();
  return on;
}

}  // namespace

bool wire_verify_enabled() { return verify_flag(); }
void set_wire_verify(bool on) { verify_flag() = on; }

}  // namespace praft::net
