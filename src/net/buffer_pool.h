#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"

namespace praft::net {

class BufferPool;

/// RAII handle to one pooled byte buffer. Move-only: a Frame travels with the
/// Packet that owns it and returns its slab to the pool's freelist on
/// destruction, so steady-state encode/send/deliver cycles reuse the same
/// memory instead of allocating. A default-constructed Frame is null
/// (valid() == false) — duplicate deliveries and legacy paths carry one.
class Frame {
 public:
  Frame() = default;
  Frame(Frame&& o) noexcept
      : pool_(std::exchange(o.pool_, nullptr)),
        slab_(std::exchange(o.slab_, nullptr)),
        size_(std::exchange(o.size_, 0)) {}
  Frame& operator=(Frame&& o) noexcept {
    if (this != &o) {
      release();
      pool_ = std::exchange(o.pool_, nullptr);
      slab_ = std::exchange(o.slab_, nullptr);
      size_ = std::exchange(o.size_, 0);
    }
    return *this;
  }
  Frame(const Frame&) = delete;
  Frame& operator=(const Frame&) = delete;
  ~Frame() { release(); }

  [[nodiscard]] bool valid() const { return slab_ != nullptr; }
  [[nodiscard]] uint8_t* data() { return slab_->data(); }
  [[nodiscard]] const uint8_t* data() const { return slab_->data(); }
  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] size_t capacity() const {
    return slab_ == nullptr ? 0 : slab_->size();
  }

  /// Sets the number of meaningful bytes (the encoded frame length).
  void set_size(size_t n) {
    PRAFT_CHECK(slab_ != nullptr && n <= slab_->size());
    size_ = n;
  }

  /// Returns the slab to the pool early; the Frame becomes null.
  void release();

 private:
  friend class BufferPool;
  Frame(BufferPool* pool, std::vector<uint8_t>* slab)
      : pool_(pool), slab_(slab) {}

  BufferPool* pool_ = nullptr;
  std::vector<uint8_t>* slab_ = nullptr;
  size_t size_ = 0;
};

struct PoolStats {
  size_t preallocated = 0;   // slabs created eagerly at construction
  uint64_t acquires = 0;     // total acquire() calls
  uint64_t reuses = 0;       // acquires served from the freelist
  uint64_t slab_allocs = 0;  // slabs heap-allocated because the freelist ran dry
  uint64_t slab_grows = 0;   // slab capacity bumps for oversize frames
  size_t outstanding = 0;    // frames currently held by callers
  size_t high_water = 0;     // max outstanding ever observed
};

/// Preallocated frame pool with freelist reuse. acquire() hands out a slab of
/// at least the requested capacity; once warm (every slab grown to the
/// workload's largest frame, freelist deep enough for peak in-flight count)
/// the encode path performs zero heap allocations — asserted by the
/// micro-benchmarks with a global allocation counter.
class BufferPool {
 public:
  explicit BufferPool(size_t frames = 64, size_t frame_capacity = 4096)
      : init_frames_(frames), frame_capacity_(frame_capacity) {
    preallocate();
  }
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool() {
    // Outliving Frames would return slabs to a dead pool; catch that in debug.
    PRAFT_CHECK(stats_.outstanding == 0);
  }

  [[nodiscard]] Frame acquire(size_t capacity) {
    ++stats_.acquires;
    std::vector<uint8_t>* slab = nullptr;
    if (!free_.empty()) {
      slab = free_.back();
      free_.pop_back();
      ++stats_.reuses;
    } else {
      slabs_.push_back(std::make_unique<std::vector<uint8_t>>(
          std::max(capacity, frame_capacity_)));
      slab = slabs_.back().get();
      ++stats_.slab_allocs;
    }
    if (slab->size() < capacity) {
      slab->resize(capacity);
      ++stats_.slab_grows;
    }
    ++stats_.outstanding;
    stats_.high_water = std::max(stats_.high_water, stats_.outstanding);
    return Frame(this, slab);
  }

  /// Drops every slab and re-preallocates the initial configuration. Only
  /// legal when no Frames are outstanding.
  void reset() {
    PRAFT_CHECK(stats_.outstanding == 0);
    free_.clear();
    slabs_.clear();
    stats_ = PoolStats{};
    preallocate();
  }

  [[nodiscard]] const PoolStats& stats() const { return stats_; }
  [[nodiscard]] size_t free_frames() const { return free_.size(); }
  [[nodiscard]] size_t total_slabs() const { return slabs_.size(); }

 private:
  friend class Frame;
  void put_back(std::vector<uint8_t>* slab) {
    PRAFT_CHECK(stats_.outstanding > 0);
    --stats_.outstanding;
    free_.push_back(slab);
  }

  void preallocate() {
    stats_.preallocated = init_frames_;
    slabs_.reserve(init_frames_);
    free_.reserve(init_frames_);
    for (size_t i = 0; i < init_frames_; ++i) {
      slabs_.push_back(
          std::make_unique<std::vector<uint8_t>>(frame_capacity_));
      free_.push_back(slabs_.back().get());
    }
  }

  size_t init_frames_;
  size_t frame_capacity_;
  std::vector<std::unique_ptr<std::vector<uint8_t>>> slabs_;  // stable addrs
  std::vector<std::vector<uint8_t>*> free_;
  PoolStats stats_;
};

inline void Frame::release() {
  if (pool_ != nullptr) pool_->put_back(slab_);
  pool_ = nullptr;
  slab_ = nullptr;
  size_ = 0;
}

}  // namespace praft::net
