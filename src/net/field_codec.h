#pragma once

#include "consensus/snapshot.h"
#include "consensus/types.h"
#include "kv/command.h"
#include "kv/store.h"
#include "net/wire.h"

namespace praft::net {

/// Field-level put/get pairs shared by every protocol codec. Each pair is the
/// byte-exact realization of the corresponding wire_bytes()/wire::k* size —
/// encode() asserts the totals line up on every message.

inline void put_cmd(WireWriter& w, const kv::Command& c) {
  w.u8(static_cast<uint8_t>(c.op));
  w.u64(c.key);
  w.u64(c.value);
  w.u32(c.value_size);
  w.i32(c.client);
  w.u64(c.seq);
  // Writes carry value_size opaque payload bytes (the modeled value): the
  // region is accounted but never materialized.
  if (c.op == kv::Op::kPut) w.skip(c.value_size);
}

inline kv::Command get_cmd(WireReader& r) {
  kv::Command c;
  c.op = static_cast<kv::Op>(r.u8());
  c.key = r.u64();
  c.value = r.u64();
  c.value_size = r.u32();
  c.client = r.i32();
  c.seq = r.u64();
  if (c.op == kv::Op::kPut) r.skip(c.value_size);
  return c;
}

inline void put_ballot(WireWriter& w, const consensus::Ballot& b) {
  w.i64(b.round);
  w.i32(b.node);
}

inline consensus::Ballot get_ballot(WireReader& r) {
  consensus::Ballot b;
  b.round = r.i64();
  b.node = r.i32();
  return b;
}

inline void put_image(WireWriter& w, const kv::StoreImage& img) {
  w.u64(img.applied_count);
  w.u32(static_cast<uint32_t>(img.cells.size()));
  for (const auto& cell : img.cells) {
    w.u64(cell.key);
    w.u64(cell.value);
    w.u64(cell.version);
  }
}

inline kv::StoreImage get_image(WireReader& r) {
  kv::StoreImage img;
  img.applied_count = r.u64();
  const uint32_t n = r.u32();
  img.cells.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    kv::StoreImage::Cell cell;
    cell.key = r.u64();
    cell.value = r.u64();
    cell.version = r.u64();
    img.cells.push_back(cell);
  }
  return img;
}

inline void put_snapshot(WireWriter& w, const consensus::Snapshot& s) {
  w.i64(s.last_index);
  w.i64(s.last_term);
  put_image(w, s.state);
}

inline consensus::Snapshot get_snapshot(WireReader& r) {
  consensus::Snapshot s;
  s.last_index = r.i64();
  s.last_term = r.i64();
  s.state = get_image(r);
  return s;
}

}  // namespace praft::net
