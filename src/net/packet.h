#pragma once

#include <any>
#include <cstddef>
#include <functional>
#include <utility>

#include "common/types.h"

namespace praft::net {

/// A message in flight. The payload is type-erased so one network stack can
/// carry every protocol's message set; `bytes` is the modeled wire size used
/// for bandwidth accounting (the in-memory payload is never serialized).
struct Packet {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  size_t bytes = 0;
  std::any payload;
};

/// Delivery callback a node registers with the network.
using DeliverFn = std::function<void(Packet&&)>;

/// Convenience: extract a concrete message type from a packet payload.
/// Returns nullptr when the payload holds a different type.
template <typename M>
const M* payload_as(const Packet& p) {
  return std::any_cast<M>(&p.payload);
}

}  // namespace praft::net
