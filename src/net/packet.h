#pragma once

#include <any>
#include <cstddef>
#include <functional>
#include <utility>

#include "common/types.h"
#include "net/buffer_pool.h"

namespace praft::net {

/// A message in flight. The payload is type-erased so one network stack can
/// carry every protocol's message set; `bytes` is the exact encoded wire
/// size used for bandwidth/CPU accounting. `wire` is the pooled flat frame
/// the codec produced (see net/wire.h) — null on paths that bypass the
/// network codec (hand-built test packets, duplicate deliveries); its slab
/// returns to the pool when the packet dies, which makes Packet move-only.
struct Packet {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  size_t bytes = 0;
  std::any payload;
  Frame wire;
};

/// Delivery callback a node registers with the network.
using DeliverFn = std::function<void(Packet&&)>;

/// Convenience: extract a concrete message type from a packet payload.
/// Returns nullptr when the payload holds a different type.
template <typename M>
const M* payload_as(const Packet& p) {
  return std::any_cast<M>(&p.payload);
}

}  // namespace praft::net
