#pragma once

#include <any>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <typeindex>
#include <unordered_map>

#include "common/check.h"
#include "net/buffer_pool.h"

namespace praft::net {

/// Flat wire format. Every message travels as one little-endian frame with a
/// fixed-offset header (the Vincinator/xlane packet idiom: opcode at a known
/// offset, payload fields at fixed offsets, counted arrays after):
///
///   off 0  u8   family   (protocol family, net::Family)
///   off 1  u8   opcode   (variant alternative index within the family)
///   off 2  u16  flags    (reserved, zero)
///   off 4  u32  length   (total frame bytes, header included)
///   off 8  ...  payload  (fixed fields, then u32-counted arrays)
///
/// Application values are *modeled*: a kPut command's value_size payload
/// region is accounted (cursor skip) but never materialized, so frames stay
/// small while sizes stay byte-accurate.
inline constexpr size_t kFrameHeader = 8;
inline constexpr size_t kOffFamily = 0;
inline constexpr size_t kOffOpcode = 1;
inline constexpr size_t kOffFlags = 2;
inline constexpr size_t kOffLength = 4;

enum class Family : uint8_t {
  kNone = 0,
  kRaft = 1,
  kRaftStar = 2,
  kMultiPaxos = 3,
  kMencius = 4,
  kHarness = 5,
  kLease = 6,
};

/// Non-owning view of an encoded frame (what decode() consumes).
struct FrameView {
  const uint8_t* data = nullptr;
  size_t size = 0;
};

inline FrameView view(const Frame& f) { return FrameView{f.data(), f.size()}; }

/// Sequential little-endian writer over a pooled Frame. encode() computes
/// wire_size(m) up front and acquires exactly that capacity, so writes are
/// bounds-checked against a known-sufficient slab and finish() asserts the
/// cursor landed exactly on the predicted size — any codec/size drift fails
/// loudly at the first encode, not in a benchmark three layers up.
class WireWriter {
 public:
  explicit WireWriter(Frame& f) : f_(f) {}

  void header(Family fam, uint8_t opcode) {
    u8(static_cast<uint8_t>(fam));
    u8(opcode);
    u16(0);  // flags
    u32(0);  // length, patched by finish()
  }

  void u8(uint8_t v) { put(&v, 1); }
  void u16(uint16_t v) {
    uint8_t b[2] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8)};
    put(b, 2);
  }
  void u32(uint32_t v) {
    uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
    put(b, 4);
  }
  void u64(uint64_t v) {
    uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
    put(b, 8);
  }
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Advances the cursor over `n` modeled payload bytes without touching
  /// them (the region is opaque on the wire; receivers skip it too).
  void skip(size_t n) {
    PRAFT_CHECK(pos_ + n <= f_.capacity());
    pos_ += n;
  }

  [[nodiscard]] size_t pos() const { return pos_; }

  /// Patches the length field and stamps the frame's final size.
  void finish() {
    uint8_t* p = f_.data() + kOffLength;
    const auto len = static_cast<uint32_t>(pos_);
    for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(len >> (8 * i));
    f_.set_size(pos_);
  }

 private:
  void put(const uint8_t* p, size_t n) {
    PRAFT_CHECK(pos_ + n <= f_.capacity());
    uint8_t* dst = f_.data() + pos_;
    for (size_t i = 0; i < n; ++i) dst[i] = p[i];
    pos_ += n;
  }

  Frame& f_;
  size_t pos_ = 0;
};

/// Sequential little-endian reader; every read is bounds-checked against the
/// frame, so a truncated or corrupt frame throws instead of reading garbage.
class WireReader {
 public:
  explicit WireReader(FrameView f) : f_(f) {}

  struct Header {
    Family family;
    uint8_t opcode;
    uint16_t flags;
    uint32_t length;
  };

  Header header() {
    Header h;
    h.family = static_cast<Family>(u8());
    h.opcode = u8();
    h.flags = u16();
    h.length = u32();
    PRAFT_CHECK_MSG(h.length == f_.size, "frame length field mismatch");
    return h;
  }

  uint8_t u8() {
    need(1);
    return f_.data[pos_++];
  }
  uint16_t u16() {
    need(2);
    uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v = static_cast<uint16_t>(v | (static_cast<uint16_t>(f_.data[pos_ + i]) << (8 * i)));
    pos_ += 2;
    return v;
  }
  uint32_t u32() {
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(f_.data[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }
  uint64_t u64() {
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(f_.data[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  bool boolean() { return u8() != 0; }
  void skip(size_t n) {
    need(n);
    pos_ += n;
  }

  [[nodiscard]] size_t pos() const { return pos_; }
  [[nodiscard]] size_t remaining() const { return f_.size - pos_; }

  /// Asserts the frame was fully consumed — catches codecs that read short.
  void finish() const { PRAFT_CHECK_MSG(pos_ == f_.size, "trailing bytes"); }

 private:
  void need(size_t n) const {
    PRAFT_CHECK_MSG(pos_ + n <= f_.size, "frame truncated");
  }

  FrameView f_;
  size_t pos_ = 0;
};

/// Peeks the family/opcode bytes of an encoded frame.
inline Family frame_family(FrameView f) {
  PRAFT_CHECK(f.size >= kFrameHeader);
  return static_cast<Family>(f.data[kOffFamily]);
}
inline uint8_t frame_opcode(FrameView f) {
  PRAFT_CHECK(f.size >= kFrameHeader);
  return f.data[kOffOpcode];
}

/// Type-erased codec for one message family (one std::variant type).
struct Codec {
  Family family = Family::kNone;
  std::function<Frame(const std::any&, BufferPool&)> encode;
  std::function<std::any(FrameView)> decode;
  std::function<bool(const std::any&, const std::any&)> equals;
};

/// Maps payload types (std::type_index of the variant) and family bytes to
/// codecs. The network looks up by payload type on send and asserts
/// byte-exactness; PRAFT_WIRE_VERIFY additionally decodes the frame back and
/// compares against the original struct.
class CodecRegistry {
 public:
  void add(std::type_index type, Codec codec);

  [[nodiscard]] const Codec* find(const std::any& payload) const {
    auto it = by_type_.find(std::type_index(payload.type()));
    return it == by_type_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Codec* find(Family family) const {
    auto it = by_family_.find(static_cast<uint8_t>(family));
    return it == by_family_.end() ? nullptr : it->second;
  }

 private:
  std::unordered_map<std::type_index, Codec> by_type_;
  std::unordered_map<uint8_t, const Codec*> by_family_;
};

/// Registers a variant message type M with free functions
///   Frame encode(const M&, BufferPool&)   and   M decode(FrameView).
template <typename M>
void register_codec(CodecRegistry& reg, Family family,
                    Frame (*enc)(const M&, BufferPool&),
                    M (*dec)(FrameView)) {
  Codec c;
  c.family = family;
  c.encode = [enc](const std::any& p, BufferPool& pool) {
    const M* m = std::any_cast<M>(&p);
    PRAFT_CHECK(m != nullptr);
    return enc(*m, pool);
  };
  c.decode = [dec](FrameView f) { return std::any(dec(f)); };
  c.equals = [](const std::any& a, const std::any& b) {
    const M* ma = std::any_cast<M>(&a);
    const M* mb = std::any_cast<M>(&b);
    return ma != nullptr && mb != nullptr && *ma == *mb;
  };
  reg.add(std::type_index(typeid(M)), std::move(c));
}

/// Process-wide registry with every built-in protocol family installed
/// (raft, raft*, multipaxos, mencius, harness, lease).
CodecRegistry& codec_registry();

/// Installs the built-in family codecs; defined in builtin_codecs.cpp so a
/// static praft library cannot drop the registrations.
void install_builtin_codecs(CodecRegistry& reg);

/// PRAFT_WIRE_VERIFY: when on, every Network send round-trips
/// encode→decode and compares against the original struct. Initialized from
/// the PRAFT_WIRE_VERIFY environment variable (1/ON/true/yes) or the
/// compile-time default (-DPRAFT_WIRE_VERIFY cmake option).
bool wire_verify_enabled();
void set_wire_verify(bool on);

}  // namespace praft::net
