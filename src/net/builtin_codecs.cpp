#include "harness/wire.h"
#include "lease/wire.h"
#include "mencius/wire.h"
#include "net/wire.h"
#include "paxos/wire.h"
#include "raft/wire.h"
#include "raftstar/wire.h"

namespace praft::net {

// Explicit installation (mirroring consensus::register_builtin_protocols)
// instead of static registrar objects: a static praft library would silently
// drop unreferenced registrar TUs at link time.
void install_builtin_codecs(CodecRegistry& reg) {
  register_codec<raft::Message>(reg, Family::kRaft, &raft::encode,
                                &raft::decode);
  register_codec<raftstar::Message>(reg, Family::kRaftStar, &raftstar::encode,
                                    &raftstar::decode);
  register_codec<paxos::Message>(reg, Family::kMultiPaxos, &paxos::encode,
                                 &paxos::decode);
  register_codec<mencius::Message>(reg, Family::kMencius, &mencius::encode,
                                   &mencius::decode);
  register_codec<harness::Message>(reg, Family::kHarness, &harness::encode,
                                   &harness::decode);
  register_codec<lease::Message>(reg, Family::kLease, &lease::encode,
                                 &lease::decode);
}

}  // namespace praft::net
