#include "paxos/wire.h"

#include "net/field_codec.h"

namespace praft::paxos {

namespace {

using net::WireReader;
using net::WireWriter;

static_assert(std::variant_size_v<Message> == 9,
              "new MultiPaxos message: add a codec below and bump this count");

void put_cmds(WireWriter& w, const std::vector<kv::Command>& cmds) {
  w.u32(static_cast<uint32_t>(cmds.size()));
  for (const auto& c : cmds) net::put_cmd(w, c);
}

std::vector<kv::Command> get_cmds(WireReader& r) {
  const uint32_t n = r.u32();
  std::vector<kv::Command> cmds;
  cmds.reserve(n);
  for (uint32_t i = 0; i < n; ++i) cmds.push_back(net::get_cmd(r));
  return cmds;
}

void put(WireWriter& w, const Prepare& m) {
  net::put_ballot(w, m.bal);
  w.i32(m.sender);
  w.i64(m.from_index);
}
Prepare get_prepare(WireReader& r) {
  Prepare m;
  m.bal = net::get_ballot(r);
  m.sender = r.i32();
  m.from_index = r.i64();
  return m;
}

void put(WireWriter& w, const PrepareOk& m) {
  net::put_ballot(w, m.bal);
  w.i32(m.sender);
  w.boolean(m.has_snap);
  w.u32(static_cast<uint32_t>(m.accepted.size()));
  for (const auto& a : m.accepted) {
    w.i64(a.index);
    net::put_ballot(w, a.bal);
    net::put_cmd(w, a.cmd);
  }
  if (m.has_snap) net::put_snapshot(w, m.snap);
}
PrepareOk get_prepare_ok(WireReader& r) {
  PrepareOk m;
  m.bal = net::get_ballot(r);
  m.sender = r.i32();
  m.has_snap = r.boolean();
  const uint32_t n = r.u32();
  m.accepted.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    AcceptedVal a;
    a.index = r.i64();
    a.bal = net::get_ballot(r);
    a.cmd = net::get_cmd(r);
    m.accepted.push_back(std::move(a));
  }
  if (m.has_snap) m.snap = net::get_snapshot(r);
  return m;
}

void put(WireWriter& w, const AcceptBatch& m) {
  net::put_ballot(w, m.bal);
  w.i32(m.sender);
  w.i64(m.start);
  w.i64(m.commit_floor);
  put_cmds(w, m.cmds);
}
AcceptBatch get_accept_batch(WireReader& r) {
  AcceptBatch m;
  m.bal = net::get_ballot(r);
  m.sender = r.i32();
  m.start = r.i64();
  m.commit_floor = r.i64();
  m.cmds = get_cmds(r);
  return m;
}

void put(WireWriter& w, const AcceptOkBatch& m) {
  net::put_ballot(w, m.bal);
  w.i32(m.sender);
  w.i64(m.start);
  w.i64(m.count);
}
AcceptOkBatch get_accept_ok_batch(WireReader& r) {
  AcceptOkBatch m;
  m.bal = net::get_ballot(r);
  m.sender = r.i32();
  m.start = r.i64();
  m.count = r.i64();
  return m;
}

void put(WireWriter& w, const Reject& m) {
  net::put_ballot(w, m.bal);
  w.i32(m.sender);
}
Reject get_reject(WireReader& r) {
  Reject m;
  m.bal = net::get_ballot(r);
  m.sender = r.i32();
  return m;
}

void put(WireWriter& w, const Heartbeat& m) {
  net::put_ballot(w, m.bal);
  w.i32(m.sender);
  w.i64(m.commit_floor);
}
Heartbeat get_heartbeat(WireReader& r) {
  Heartbeat m;
  m.bal = net::get_ballot(r);
  m.sender = r.i32();
  m.commit_floor = r.i64();
  return m;
}

void put(WireWriter& w, const LearnRequest& m) {
  w.i32(m.sender);
  w.i64(m.from);
  w.i64(m.to);
}
LearnRequest get_learn_request(WireReader& r) {
  LearnRequest m;
  m.sender = r.i32();
  m.from = r.i64();
  m.to = r.i64();
  return m;
}

void put(WireWriter& w, const LearnValues& m) {
  w.i32(m.sender);
  w.i64(m.start);
  put_cmds(w, m.cmds);
}
LearnValues get_learn_values(WireReader& r) {
  LearnValues m;
  m.sender = r.i32();
  m.start = r.i64();
  m.cmds = get_cmds(r);
  return m;
}

void put(WireWriter& w, const SnapshotTransfer& m) {
  w.i32(m.sender);
  net::put_snapshot(w, m.snap);
}
SnapshotTransfer get_snapshot_transfer(WireReader& r) {
  SnapshotTransfer m;
  m.sender = r.i32();
  m.snap = net::get_snapshot(r);
  return m;
}

}  // namespace

net::Frame encode(const Message& m, net::BufferPool& pool) {
  const size_t total = wire_size(m);
  net::Frame f = pool.acquire(total);
  WireWriter w(f);
  w.header(net::Family::kMultiPaxos, static_cast<uint8_t>(m.index()));
  std::visit([&w](const auto& x) { put(w, x); }, m);
  w.finish();
  PRAFT_CHECK_MSG(f.size() == total, "paxos codec/wire_size drift");
  return f;
}

Message decode(net::FrameView f) {
  WireReader r(f);
  const auto h = r.header();
  PRAFT_CHECK(h.family == net::Family::kMultiPaxos);
  Message m;
  switch (h.opcode) {
    case 0: m = get_prepare(r); break;
    case 1: m = get_prepare_ok(r); break;
    case 2: m = get_accept_batch(r); break;
    case 3: m = get_accept_ok_batch(r); break;
    case 4: m = get_reject(r); break;
    case 5: m = get_heartbeat(r); break;
    case 6: m = get_learn_request(r); break;
    case 7: m = get_learn_values(r); break;
    case 8: m = get_snapshot_transfer(r); break;
    default: PRAFT_CHECK_MSG(false, "bad paxos opcode");
  }
  r.finish();
  return m;
}

}  // namespace praft::paxos
