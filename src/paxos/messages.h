#pragma once

#include <variant>
#include <vector>

#include "consensus/snapshot.h"
#include "consensus/types.h"
#include "kv/command.h"

namespace praft::paxos {

using consensus::Ballot;
using consensus::LogIndex;

/// One accepted (ballot, value) pair for an instance, shipped in PrepareOk.
struct AcceptedVal {
  LogIndex index = 0;
  Ballot bal;
  kv::Command cmd;
};

/// Phase1a (Fig. 1): sent by a would-be leader with a fresh ballot.
struct Prepare {
  Ballot bal;
  NodeId sender = kNoNode;
  LogIndex from_index = 1;  // smallest unchosen instance id
};

/// Phase1b reply: accepted values for all instances >= from_index.
struct PrepareOk {
  Ballot bal;
  NodeId sender = kNoNode;
  std::vector<AcceptedVal> accepted;
  /// Compaction: when the Prepare's from_index reaches below this
  /// acceptor's checkpoint floor, the pruned instances cannot be reported
  /// as accepted values — the checkpoint itself is shipped instead, and the
  /// new leader installs it before re-proposing. Without this the leader
  /// would fill chosen-and-compacted instances with no-ops.
  bool has_snap = false;
  consensus::Snapshot snap;
};

/// Phase2a, batched: values for consecutive instances [start, start+n).
/// `commit_floor` piggybacks the leader's contiguous-chosen watermark.
struct AcceptBatch {
  Ballot bal;
  NodeId sender = kNoNode;
  LogIndex start = 0;
  std::vector<kv::Command> cmds;
  LogIndex commit_floor = 0;
};

/// Phase2b reply for a whole batch.
struct AcceptOkBatch {
  Ballot bal;
  NodeId sender = kNoNode;
  LogIndex start = 0;
  LogIndex count = 0;
};

/// Rejection of a Prepare or Accept because a higher ballot was promised.
struct Reject {
  Ballot bal;  // the higher ballot the receiver has seen
  NodeId sender = kNoNode;
};

/// Leader liveness + commit watermark when there is no traffic.
struct Heartbeat {
  Ballot bal;
  NodeId sender = kNoNode;
  LogIndex commit_floor = 0;
};

/// A learner asking the leader for values it missed (holes below the floor).
struct LearnRequest {
  NodeId sender = kNoNode;
  LogIndex from = 0;
  LogIndex to = 0;
};

/// Explicit Learn: chosen values for instances [start, start+cmds.size()).
struct LearnValues {
  NodeId sender = kNoNode;
  LogIndex start = 0;
  std::vector<kv::Command> cmds;
};

/// Commit-floor snapshot learning: the answer to a LearnRequest whose range
/// reaches below the teacher's checkpoint floor. The learner installs the
/// state image and resumes instance-by-instance repair above it — the
/// MultiPaxos face of Raft's InstallSnapshot, read through the paper's
/// refinement mapping.
struct SnapshotTransfer {
  NodeId sender = kNoNode;
  consensus::Snapshot snap;
};

using Message =
    std::variant<Prepare, PrepareOk, AcceptBatch, AcceptOkBatch, Reject,
                 Heartbeat, LearnRequest, LearnValues, SnapshotTransfer>;

inline size_t wire_size(const Prepare&) { return consensus::wire::kSmallMsg; }
inline size_t wire_size(const Reject&) { return consensus::wire::kSmallMsg; }
inline size_t wire_size(const Heartbeat&) { return consensus::wire::kSmallMsg; }
inline size_t wire_size(const LearnRequest&) { return consensus::wire::kSmallMsg; }
inline size_t wire_size(const AcceptOkBatch&) { return consensus::wire::kSmallMsg; }
inline size_t wire_size(const PrepareOk& m) {
  size_t b = consensus::wire::kMsgHeader;
  for (const auto& a : m.accepted) b += consensus::wire::entry_bytes(a.cmd) + 16;
  if (m.has_snap) b += m.snap.wire_bytes();
  return b;
}
inline size_t wire_size(const SnapshotTransfer& m) {
  return m.snap.wire_bytes();
}
inline size_t wire_size(const AcceptBatch& m) {
  size_t b = consensus::wire::kMsgHeader;
  for (const auto& c : m.cmds) b += consensus::wire::entry_bytes(c);
  return b;
}
inline size_t wire_size(const LearnValues& m) {
  size_t b = consensus::wire::kMsgHeader;
  for (const auto& c : m.cmds) b += consensus::wire::entry_bytes(c);
  return b;
}
inline size_t wire_size(const Message& m) {
  return std::visit([](const auto& x) { return wire_size(x); }, m);
}

}  // namespace praft::paxos
