#pragma once

#include <variant>
#include <vector>

#include "consensus/snapshot.h"
#include "consensus/types.h"
#include "kv/command.h"

namespace praft::paxos {

using consensus::Ballot;
using consensus::LogIndex;

/// One accepted (ballot, value) pair for an instance, shipped in PrepareOk.
struct AcceptedVal {
  LogIndex index = 0;
  Ballot bal;
  kv::Command cmd;

  friend bool operator==(const AcceptedVal&, const AcceptedVal&) = default;
};

/// Phase1a (Fig. 1): sent by a would-be leader with a fresh ballot.
struct Prepare {
  Ballot bal;
  NodeId sender = kNoNode;
  LogIndex from_index = 1;  // smallest unchosen instance id

  friend bool operator==(const Prepare&, const Prepare&) = default;
};

/// Phase1b reply: accepted values for all instances >= from_index.
struct PrepareOk {
  Ballot bal;
  NodeId sender = kNoNode;
  std::vector<AcceptedVal> accepted;
  /// Compaction: when the Prepare's from_index reaches below this
  /// acceptor's checkpoint floor, the pruned instances cannot be reported
  /// as accepted values — the checkpoint itself is shipped instead, and the
  /// new leader installs it before re-proposing. Without this the leader
  /// would fill chosen-and-compacted instances with no-ops.
  bool has_snap = false;
  consensus::Snapshot snap;

  friend bool operator==(const PrepareOk&, const PrepareOk&) = default;
};

/// Phase2a, batched: values for consecutive instances [start, start+n).
/// `commit_floor` piggybacks the leader's contiguous-chosen watermark.
struct AcceptBatch {
  Ballot bal;
  NodeId sender = kNoNode;
  LogIndex start = 0;
  std::vector<kv::Command> cmds;
  LogIndex commit_floor = 0;

  friend bool operator==(const AcceptBatch&, const AcceptBatch&) = default;
};

/// Phase2b reply for a whole batch.
struct AcceptOkBatch {
  Ballot bal;
  NodeId sender = kNoNode;
  LogIndex start = 0;
  LogIndex count = 0;

  friend bool operator==(const AcceptOkBatch&, const AcceptOkBatch&) = default;
};

/// Rejection of a Prepare or Accept because a higher ballot was promised.
struct Reject {
  Ballot bal;  // the higher ballot the receiver has seen
  NodeId sender = kNoNode;

  friend bool operator==(const Reject&, const Reject&) = default;
};

/// Leader liveness + commit watermark when there is no traffic.
struct Heartbeat {
  Ballot bal;
  NodeId sender = kNoNode;
  LogIndex commit_floor = 0;

  friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

/// A learner asking the leader for values it missed (holes below the floor).
struct LearnRequest {
  NodeId sender = kNoNode;
  LogIndex from = 0;
  LogIndex to = 0;

  friend bool operator==(const LearnRequest&, const LearnRequest&) = default;
};

/// Explicit Learn: chosen values for instances [start, start+cmds.size()).
struct LearnValues {
  NodeId sender = kNoNode;
  LogIndex start = 0;
  std::vector<kv::Command> cmds;

  friend bool operator==(const LearnValues&, const LearnValues&) = default;
};

/// Commit-floor snapshot learning: the answer to a LearnRequest whose range
/// reaches below the teacher's checkpoint floor. The learner installs the
/// state image and resumes instance-by-instance repair above it — the
/// MultiPaxos face of Raft's InstallSnapshot, read through the paper's
/// refinement mapping.
struct SnapshotTransfer {
  NodeId sender = kNoNode;
  consensus::Snapshot snap;

  friend bool operator==(const SnapshotTransfer&,
                         const SnapshotTransfer&) = default;
};

using Message =
    std::variant<Prepare, PrepareOk, AcceptBatch, AcceptOkBatch, Reject,
                 Heartbeat, LearnRequest, LearnValues, SnapshotTransfer>;

// Exact encoded frame sizes (see paxos/wire.cpp for the field layout).
namespace wire = consensus::wire;

inline size_t wire_size(const Prepare&) {
  return wire::kFrame + wire::kBallot + 4 + 8;
}
inline size_t wire_size(const Reject&) {
  return wire::kFrame + wire::kBallot + 4;
}
inline size_t wire_size(const Heartbeat&) {
  return wire::kFrame + wire::kBallot + 4 + 8;
}
inline size_t wire_size(const LearnRequest&) {
  return wire::kFrame + 4 + 8 + 8;
}
inline size_t wire_size(const AcceptOkBatch&) {
  return wire::kFrame + wire::kBallot + 4 + 8 + 8;
}
inline size_t wire_size(const PrepareOk& m) {
  size_t b = wire::kFrame + wire::kBallot + 4 + 1 + wire::kCount;
  // each accepted value: index i64 + ballot + the command
  for (const auto& a : m.accepted) b += 8 + wire::kBallot + a.cmd.wire_bytes();
  if (m.has_snap) b += m.snap.wire_bytes();
  return b;
}
inline size_t wire_size(const SnapshotTransfer& m) {
  return wire::kFrame + 4 + m.snap.wire_bytes();
}
inline size_t wire_size(const AcceptBatch& m) {
  size_t b = wire::kFrame + wire::kBallot + 4 + 8 + 8 + wire::kCount;
  for (const auto& c : m.cmds) b += c.wire_bytes();
  return b;
}
inline size_t wire_size(const LearnValues& m) {
  size_t b = wire::kFrame + 4 + 8 + wire::kCount;
  for (const auto& c : m.cmds) b += c.wire_bytes();
  return b;
}
inline size_t wire_size(const Message& m) {
  return std::visit([](const auto& x) { return wire_size(x); }, m);
}

}  // namespace praft::paxos
