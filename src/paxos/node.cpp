#include "paxos/node.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"

namespace praft::paxos {

PaxosNode::PaxosNode(consensus::Group group, consensus::Env& env, Options opt,
                     storage::DurableStore* store)
    : group_(std::move(group)),
      env_(env),
      opt_(opt),
      persister_(env, store, opt_.fsync_duration, opt_.sync_batch_delay,
                 [this] { return hard_state(); }),
      election_(env, opt_.election_timeout_min, opt_.election_timeout_max),
      heartbeat_(env),
      batcher_(env, opt_, [this] { flush_batch(); }),
      prepare_acks_(group_.majority()),
      pipe_(opt_) {
  group_.validate();
  ballot_ = Ballot{0, kNoNode};
  // Write-ahead mirroring: persist_inst() routes each instance's full
  // accepted/chosen state through this hook into one coalescing WAL record.
  instances_.set_persistence(
      [this](LogIndex i, const Instance& in) {
        storage::WalRecord r;
        r.index = i;
        r.term = in.bal.round;
        r.vnode = in.bal.node;
        r.decided = in.chosen;
        r.has_value = in.has;
        r.cmd = in.cmd;
        persister_.record(std::move(r));
      });
  instances_.set_floor(0);  // instances are 1-based; nothing pruned yet
  election_.set_gate([this] { return !is_leader(); });
  election_.set_handler([this](bool expired) {
    if (expired) {
      start_prepare();
    } else if (applier_.applied() < commit_floor()) {
      request_missing(commit_floor());  // re-ask for lost LearnValues
    }
  });
  heartbeat_.set_gate([this] { return is_leader(); });
  heartbeat_.set_handler([this] { heartbeat_tick(); });
}

void PaxosNode::start() { election_.start(); }

PaxosNode::Instance& PaxosNode::inst(LogIndex i) {
  PRAFT_CHECK(i >= 1);
  return instances_.materialize(i);
}

const PaxosNode::Instance* PaxosNode::inst_if(LogIndex i) const {
  return instances_.find(i);
}

bool PaxosNode::chosen_at(LogIndex i) const {
  if (i <= commit_floor()) return true;
  const Instance* in = inst_if(i);
  return in != nullptr && in->chosen;
}

const kv::Command* PaxosNode::value_at(LogIndex i) const {
  const Instance* in = inst_if(i);
  return (in != nullptr && in->has) ? &in->cmd : nullptr;
}

void PaxosNode::start_prepare() {
  // Phase1a: pick a ballot higher than anything seen, tagged with our id.
  ballot_ = Ballot{ballot_.round + 1, group_.self};
  phase1_succeeded_ = false;
  preparing_ = true;
  leader_ = kNoNode;
  prepare_acks_ = consensus::QuorumTracker(group_.majority());
  prepare_acks_.add(group_.self);
  safe_vals_.clear();
  // Self-promise: include our own accepted values.
  for (LogIndex i = commit_floor() + 1; i <= log_tail_; ++i) {
    if (const Instance* in = inst_if(i); in != nullptr && in->has) {
      safe_vals_[i] = AcceptedVal{i, in->bal, in->cmd};
    }
  }
  election_.touch();
  PRAFT_LOG(kDebug) << "paxos " << group_.self << " prepare ballot ("
                    << ballot_.round << "," << ballot_.node << ")";
  persister_.hard_state();  // our own Phase1a promise must survive a crash
  Prepare p{ballot_, group_.self, commit_floor() + 1};
  for (NodeId peer : group_.members) {
    if (peer == group_.self) continue;
    persister_.send(peer, Message{p}, wire_size(p));
  }
  if (prepare_acks_.reached()) finish_prepare();
}

void PaxosNode::on_prepare(const Prepare& m) {
  if (m.bal > ballot_) {
    abandon_leadership();
    ballot_ = m.bal;
    phase1_succeeded_ = false;
    preparing_ = false;
    leader_ = m.sender;
    persister_.hard_state();
    election_.touch();
    PrepareOk ok;
    ok.bal = ballot_;
    ok.sender = group_.self;
    // Compaction: instances at or below our checkpoint floor were chosen
    // and pruned — they cannot be reported as accepted values, so ship the
    // checkpoint itself. The candidate installs it before re-proposing,
    // which keeps it from filling chosen instances with no-ops.
    if (m.from_index <= instances_.floor() && snap_.valid()) {
      ok.has_snap = true;
      ok.snap = snap_;
    }
    for (LogIndex i = m.from_index; i <= log_tail_; ++i) {
      if (const Instance* in = inst_if(i); in != nullptr && in->has) {
        ok.accepted.push_back(AcceptedVal{i, in->bal, in->cmd});
      }
    }
    if (opt_.unsafe_skip_vote_fsync) {
      // TEST-ONLY injected bug: the promise leaves before it hits disk.
      persister_.send_unsynced(m.sender, Message{ok}, wire_size(ok));
    } else {
      persister_.send(m.sender, Message{ok}, wire_size(ok));
    }
  } else {
    Reject r{ballot_, group_.self};
    persister_.send(m.sender, Message{r}, wire_size(r));
  }
}

void PaxosNode::on_prepare_ok(const PrepareOk& m) {
  if (!preparing_ || m.bal != ballot_) return;
  if (!prepare_acks_.add(m.sender)) return;
  if (m.has_snap && applier_.install_snapshot(m.snap)) {
    ++snapshots_installed_;
    adopt_snapshot(m.snap);
  }
  for (const AcceptedVal& a : m.accepted) {
    auto it = safe_vals_.find(a.index);
    if (it == safe_vals_.end() || a.bal > it->second.bal) {
      safe_vals_[a.index] = a;
    }
  }
  if (prepare_acks_.reached()) finish_prepare();
}

void PaxosNode::finish_prepare() {
  preparing_ = false;
  phase1_succeeded_ = true;
  leader_ = group_.self;
  PRAFT_LOG(kInfo) << "paxos " << group_.self << " leader at ballot ("
                   << ballot_.round << "," << ballot_.node << ")";
  // Re-propose every safe value in the unchosen range; fill holes with
  // no-ops so execution can make progress (classic MultiPaxos recovery).
  LogIndex max_seen = commit_floor();
  if (!safe_vals_.empty()) max_seen = std::max(max_seen, safe_vals_.rbegin()->first);
  std::vector<kv::Command> cmds;
  for (LogIndex i = commit_floor() + 1; i <= max_seen; ++i) {
    auto it = safe_vals_.find(i);
    cmds.push_back(it != safe_vals_.end() ? it->second.cmd : kv::noop_command());
  }
  next_propose_ = max_seen + 1;
  // A fresh reign replicates from scratch: every peer's cursor restarts at
  // the first unchosen instance, and in-flight windows from any prior reign
  // are void (their acks carry the old ballot and would be ignored anyway).
  pipe_.reset_all();
  peer_next_.clear();
  for (NodeId peer : group_.members) {
    if (peer != group_.self) peer_next_[peer] = commit_floor() + 1;
  }
  if (!cmds.empty()) propose_range(commit_floor() + 1, cmds);
  safe_vals_.clear();
  heartbeat_.start(opt_.heartbeat_interval);
}

void PaxosNode::heartbeat_tick() {
  // Loss recovery is per peer and timeout-gated (consensus::PeerPipeline):
  // a peer whose oldest in-flight AcceptBatch outlived the retransmit
  // timeout gets its cursor rolled back to the lowest un-acked instance and
  // re-pumped from there. A steady-state tick — everything acked — sends
  // nothing but the Heartbeat itself (the old code rebroadcast every
  // unchosen instance to every peer each tick).
  Heartbeat hb{ballot_, group_.self, commit_floor()};
  for (NodeId peer : group_.members) {
    if (peer == group_.self) continue;
    if (pipe_.retransmit_due(peer, env_.now())) {
      const LogIndex lo = pipe_.on_loss(peer);
      if (lo >= 1) {
        auto it = peer_next_.find(peer);
        if (it != peer_next_.end()) it->second = std::min(it->second, lo);
      }
      pump_peer(peer);
    }
    persister_.send(peer, Message{hb}, wire_size(hb));
  }
  // Interval-leg compaction on an idle leader (apply advances stopped).
  maybe_compact(/*force=*/false);
}

LogIndex PaxosNode::submit(const kv::Command& cmd) {
  if (!is_leader()) return -1;
  // Backpressure: a full replication pipe refuses new submissions (temporary
  // -1, retried by the harness) instead of growing pending_ unboundedly.
  if (!batcher_.can_accept()) return -1;
  pending_.push_back(cmd);
  const LogIndex idx = next_propose_ + static_cast<LogIndex>(pending_.size()) - 1;
  batcher_.add_pending(cmd.wire_bytes());
  return idx;
}

void PaxosNode::abandon_leadership() {
  batcher_.cancel();
  pending_.clear();
  // Stale in-flight windows must not gate a future reign's replication.
  pipe_.reset_all();
  peer_next_.clear();
}

void PaxosNode::flush_batch() {
  if (!is_leader() || pending_.empty()) return;
  const LogIndex start = next_propose_;
  next_propose_ += static_cast<LogIndex>(pending_.size());
  std::vector<kv::Command> cmds;
  cmds.swap(pending_);
  propose_range(start, cmds);
}

void PaxosNode::add_ack(Instance& in, const Ballot& b, NodeId who) {
  if (in.acks_bal != b) {
    in.acks.clear();
    in.acks_bal = b;
  }
  for (NodeId n : in.acks) {
    if (n == who) return;
  }
  in.acks.push_back(who);
}

void PaxosNode::propose_range(LogIndex start,
                              const std::vector<kv::Command>& cmds) {
  // Phase2a. The proposer's implicit self-accept is DEFERRED to the fsync
  // barrier below: counting a volatile local accept toward the quorum would
  // let a value be "chosen" with only commit_quorum-1 durable copies.
  const Ballot bal = ballot_;
  for (size_t k = 0; k < cmds.size(); ++k) {
    const LogIndex i = start + static_cast<LogIndex>(k);
    Instance& in = inst(i);
    if (in.chosen) continue;  // retransmits may cover already-chosen slots
    in.bal = bal;
    in.cmd = cmds[k];
    in.has = true;
    in.proposed_at = env_.now();
    log_tail_ = std::max(log_tail_, i);
    persist_inst(i);
  }
  persister_.hard_state();  // log_tail_ moved
  // Ship per peer from each acceptor's own cursor (consensus::PeerPipeline):
  // a peer with window room gets the new range now — possibly alongside
  // older not-yet-shipped instances — while a saturated peer picks it up
  // when its acks reopen the window.
  for (NodeId peer : group_.members) {
    if (peer == group_.self) continue;
    auto it = peer_next_.find(peer);
    if (it == peer_next_.end()) {
      peer_next_[peer] = std::min(start, commit_floor() + 1);
    } else {
      it->second = std::min(it->second, start);
    }
    pump_peer(peer);
  }
  const LogIndex end = start + static_cast<LogIndex>(cmds.size()) - 1;
  persister_.barrier([this, start, end, bal] {
    for (LogIndex i = start; i <= end; ++i) {
      if (i <= instances_.floor()) continue;
      Instance* in = instances_.find(i);
      if (in == nullptr || in->chosen || !in->has || !(in->bal == bal)) {
        continue;
      }
      add_ack(*in, bal, group_.self);
      if (static_cast<int>(in->acks.size()) >=
          opt_.commit_quorum(group_.majority())) {
        mark_chosen(i);
      }
    }
  });
}

void PaxosNode::pump_peer(NodeId peer) {
  if (!is_leader()) return;
  LogIndex& next = peer_next_[peer];
  // Instances at or below our checkpoint floor were pruned; a peer that far
  // behind repairs via LearnRequest/SnapshotTransfer, not accepts.
  next = std::max(next, instances_.floor() + 1);
  while (pipe_.can_send(peer)) {
    std::vector<kv::Command> cmds;
    size_t payload = 0;
    LogIndex i = next;
    while (i <= log_tail_ && cmds.size() < opt_.max_entries_per_batch) {
      const Instance* in = inst_if(i);
      if (in == nullptr || !in->has) break;
      payload += in->cmd.wire_bytes();
      cmds.push_back(in->cmd);
      ++i;
      if (opt_.batch_flush_bytes > 0 && payload >= opt_.batch_flush_bytes) {
        break;
      }
    }
    if (cmds.empty()) return;  // caught up to the tail (or a hole)
    AcceptBatch ab{ballot_, group_.self, next, cmds, commit_floor()};
    const size_t bytes = wire_size(ab);
    persister_.send(peer, Message{ab}, bytes);
    pipe_.on_send(peer, next, i - 1, bytes, env_.now());
    next = i;
  }
}

void PaxosNode::on_accept(const AcceptBatch& m) {
  if (m.bal < ballot_) {
    Reject r{ballot_, group_.self};
    persister_.send(m.sender, Message{r}, wire_size(r));
    return;
  }
  if (m.bal > ballot_) {
    abandon_leadership();
    ballot_ = m.bal;
    phase1_succeeded_ = false;
    preparing_ = false;
  }
  leader_ = m.sender;
  election_.touch();
  for (size_t k = 0; k < m.cmds.size(); ++k) {
    const LogIndex i = m.start + static_cast<LogIndex>(k);
    // Pruned instances are chosen and inside our checkpoint: never
    // re-materialize them (acking below is still safe — any correct
    // higher-ballot proposal carries the chosen value).
    if (i <= instances_.floor()) continue;
    Instance& in = inst(i);
    if (in.chosen) continue;  // never regress a locally-known chosen value
    in.bal = m.bal;
    in.cmd = m.cmds[k];
    in.has = true;
    log_tail_ = std::max(log_tail_, i);
    persist_inst(i);
  }
  persister_.hard_state();
  if (m.commit_floor > commit_floor()) sync_to_floor(m.bal, m.commit_floor);
  if (!m.cmds.empty()) {
    // The ack is what the proposer counts toward the quorum: it leaves only
    // after the accepted values above are durable.
    AcceptOkBatch ok{m.bal, group_.self, m.start,
                     static_cast<LogIndex>(m.cmds.size())};
    persister_.send(m.sender, Message{ok}, wire_size(ok));
  }
}

void PaxosNode::on_accept_ok(const AcceptOkBatch& m) {
  if (!is_leader() || m.bal != ballot_) return;
  // Cumulative ack for the pipeline: the batch covering [start, start+count)
  // arrived and was durably accepted; reopen the window and refill it.
  pipe_.on_ack(m.sender, m.start + m.count - 1, env_.now());
  for (LogIndex k = 0; k < m.count; ++k) {
    const LogIndex i = m.start + k;
    if (i <= instances_.floor()) continue;  // chosen + compacted already
    Instance& in = inst(i);
    if (in.chosen || !in.has || in.bal != m.bal) continue;
    add_ack(in, m.bal, m.sender);
    if (static_cast<int>(in.acks.size()) >=
        opt_.commit_quorum(group_.majority())) {
      mark_chosen(i);
    }
  }
  pump_peer(m.sender);
}

void PaxosNode::mark_chosen(LogIndex i) {
  if (i <= instances_.floor()) return;  // chosen + compacted already
  Instance& in = inst(i);
  if (in.chosen) return;
  PRAFT_CHECK_MSG(in.has, "chosen instance without a value");
  in.chosen = true;
  // A chosen value is off the wire for the batching controller.
  if (is_leader()) batcher_.note_acked(in.cmd.wire_bytes());
  persist_inst(i);
  advance_floor();
}

void PaxosNode::advance_floor() {
  // Extend the contiguous chosen watermark, then execute the contiguous
  // LOCALLY-CHOSEN prefix in order. Instances below the floor whose local
  // value is stale (accepted at an older ballot than the one that chose)
  // are repaired via LearnValues before execution — the Applier pauses at
  // the gap without losing the watermark.
  LogIndex floor = commit_floor();
  while (true) {
    const Instance* in = inst_if(floor + 1);
    if (in == nullptr || !in->chosen) break;
    ++floor;
  }
  commit_to(floor);
}

void PaxosNode::commit_to(LogIndex floor) {
  applier_.commit_to(floor, [this](LogIndex i) -> const kv::Command* {
    const Instance* in = inst_if(i);
    return (in != nullptr && in->chosen) ? &in->cmd : nullptr;
  });
  maybe_compact(/*force=*/false);
}

void PaxosNode::maybe_compact(bool force) {
  if (recovering_ || !applier_.can_snapshot()) return;
  const LogIndex target = applier_.applied();
  const auto compactable = static_cast<size_t>(target - instances_.floor());
  if (!compaction_.due(opt_, compactable, env_.now(), force)) return;
  snap_.last_index = target;
  snap_.last_term = 0;  // ballot-numbered protocol: no prev-term checks
  snap_.state = applier_.capture_state();
  instances_.set_floor(target);
  persister_.snapshot(snap_);
  compaction_.fired(env_.now());
  PRAFT_LOG(kDebug) << "paxos " << group_.self
                    << " compacted instances to " << target;
}

void PaxosNode::adopt_snapshot(const consensus::Snapshot& snap) {
  // The Applier already restored the store and jumped the watermarks; align
  // the instance storage: everything the snapshot covers is chosen and
  // lives in the state image now.
  if (snap.last_index > snap_.last_index) snap_ = snap;
  persister_.snapshot(snap);
  instances_.set_floor(snap.last_index);
  log_tail_ = std::max(log_tail_, snap.last_index);
  persister_.hard_state();
  PRAFT_LOG(kInfo) << "paxos " << group_.self << " installed snapshot @"
                   << snap.last_index;
  advance_floor();
}

void PaxosNode::on_snapshot_transfer(const SnapshotTransfer& m) {
  if (!applier_.install_snapshot(m.snap)) return;
  ++snapshots_installed_;
  adopt_snapshot(m.snap);
  // Gaps may remain between the snapshot and the cluster's floor; resume
  // instance-by-instance repair above the jump.
  request_missing(commit_floor());
}

void PaxosNode::sync_to_floor(const Ballot& sender_bal, LogIndex floor) {
  for (LogIndex i = commit_floor() + 1; i <= floor; ++i) {
    Instance& in = inst(i);
    // The sender (ballot owner) proposes exactly one value per instance per
    // ballot, so a local value accepted at sender_bal IS the chosen value.
    if (!in.chosen && in.has && in.bal == sender_bal) {
      in.chosen = true;
      persist_inst(i);
    }
  }
  commit_to(floor);
  advance_floor();
  request_missing(floor);
}

void PaxosNode::request_missing(LogIndex upto) {
  LogIndex from = 0;
  for (LogIndex i = applier_.applied() + 1; i <= upto; ++i) {
    const Instance* in = inst_if(i);
    if (in == nullptr || !in->chosen) {
      from = i;
      break;
    }
  }
  if (from == 0) return;
  // Ask the leader; a node that IS the leader rotates through its peers
  // instead (it can win an election while still holding a hole below its
  // commit floor — Prepare only covers instances above the floor), and any
  // majority of them holds the chosen values.
  NodeId target = leader_;
  if (target == kNoNode || target == group_.self) {
    const auto n = static_cast<size_t>(group_.n());
    for (size_t k = 0; k < n; ++k) {
      target = group_.members[learn_rr_++ % n];
      if (target != group_.self) break;
    }
    if (target == group_.self) return;  // single-node group
  }
  LearnRequest lr{group_.self, from, upto};
  persister_.send(target, Message{lr}, wire_size(lr));
}

void PaxosNode::on_reject(const Reject& m) {
  if (m.bal > ballot_) {
    abandon_leadership();
    ballot_ = Ballot{m.bal.round, kNoNode};  // adopt the round; not a promise
    phase1_succeeded_ = false;
    preparing_ = false;
    persister_.hard_state();
    // Back off; the election timer retries Prepare with a higher round.
  }
}

void PaxosNode::on_heartbeat(const Heartbeat& m) {
  if (m.bal < ballot_) return;
  if (m.bal > ballot_) {
    abandon_leadership();
    ballot_ = m.bal;
    phase1_succeeded_ = false;
    preparing_ = false;
    persister_.hard_state();
  }
  leader_ = m.sender;
  election_.touch();
  if (m.commit_floor > commit_floor()) {
    sync_to_floor(m.bal, m.commit_floor);
  } else {
    // Already caught up: still give the interval-leg compaction its tick
    // (an idle follower otherwise never re-evaluates the trigger).
    maybe_compact(/*force=*/false);
  }
}

void PaxosNode::on_learn_request(const LearnRequest& m) {
  // A learner asking below our checkpoint floor wants instances we pruned:
  // ship the checkpoint instead of values (commit-floor snapshot learning —
  // the MultiPaxos face of InstallSnapshot).
  if (m.from <= instances_.floor() && snap_.valid()) {
    SnapshotTransfer st{group_.self, snap_};
    persister_.send(m.sender, Message{st}, wire_size(st));
    return;
  }
  LearnValues lv;
  lv.sender = group_.self;
  lv.start = m.from;
  for (LogIndex i = m.from; i <= std::min(m.to, commit_floor()); ++i) {
    const Instance* in = inst_if(i);
    if (in == nullptr || !in->chosen) break;
    lv.cmds.push_back(in->cmd);
  }
  if (!lv.cmds.empty()) persister_.send(m.sender, Message{lv}, wire_size(lv));
}

void PaxosNode::on_learn_values(const LearnValues& m) {
  // Values in a LearnValues are authoritative chosen values (served only
  // from below the sender's floor): they overwrite stale local accepts.
  for (size_t k = 0; k < m.cmds.size(); ++k) {
    const LogIndex i = m.start + static_cast<LogIndex>(k);
    if (i > commit_floor()) break;
    if (i <= instances_.floor()) continue;  // already inside our checkpoint
    Instance& in = inst(i);
    if (in.chosen) continue;
    in.cmd = m.cmds[k];
    in.has = true;
    in.chosen = true;
    log_tail_ = std::max(log_tail_, i);
    persist_inst(i);
  }
  persister_.hard_state();
  advance_floor();
}

storage::RecoveryStats PaxosNode::recover(const storage::DurableImage& img) {
  PRAFT_CHECK_MSG(log_tail_ == 0 && applier_.applied() == 0,
                  "recover() must run once, on a fresh node, before start()");
  recovering_ = true;
  ballot_ = Ballot{img.hard.term, img.hard.vote};
  log_tail_ = std::max<LogIndex>(0, img.hard.tail);
  storage::RecoveryStats stats;
  stats.recovered = true;
  if (img.snap.valid()) {
    applier_.install_snapshot(img.snap);
    instances_.set_floor(img.snap.last_index);
    snap_ = img.snap;
    stats.snapshot_floor = img.snap.last_index;
    log_tail_ = std::max(log_tail_, img.snap.last_index);
  }
  for (const storage::WalRecord& r : img.records) {
    Instance& in = instances_.materialize(r.index);
    in.bal = Ballot{r.term, r.vnode};
    in.cmd = r.cmd;
    in.has = r.has_value;
    in.chosen = r.decided;
    in.proposed_at = 0;  // immediately eligible for leader retransmission
    log_tail_ = std::max(log_tail_, r.index);
    ++stats.replayed;
    stats.wal_tail = std::max(stats.wal_tail, r.index);
  }
  stats.wal_tail = std::max(stats.wal_tail, stats.snapshot_floor);
  recovering_ = false;
  // Re-execute the contiguous chosen prefix (exactly the WAL-replay half of
  // recovery; the snapshot already covered everything below its floor).
  advance_floor();
  PRAFT_LOG(kInfo) << "paxos " << group_.self << " recovered: ballot ("
                   << ballot_.round << "," << ballot_.node << "), floor "
                   << commit_floor() << ", tail " << log_tail_;
  return stats;
}

void PaxosNode::on_packet(const net::Packet& p) {
  const auto* msg = net::payload_as<Message>(p);
  PRAFT_CHECK_MSG(msg != nullptr, "paxos node got foreign payload");
  std::visit(
      [this](const auto& m) {
        using M = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<M, Prepare>) {
          on_prepare(m);
        } else if constexpr (std::is_same_v<M, PrepareOk>) {
          on_prepare_ok(m);
        } else if constexpr (std::is_same_v<M, AcceptBatch>) {
          on_accept(m);
        } else if constexpr (std::is_same_v<M, AcceptOkBatch>) {
          on_accept_ok(m);
        } else if constexpr (std::is_same_v<M, Reject>) {
          on_reject(m);
        } else if constexpr (std::is_same_v<M, Heartbeat>) {
          on_heartbeat(m);
        } else if constexpr (std::is_same_v<M, LearnRequest>) {
          on_learn_request(m);
        } else if constexpr (std::is_same_v<M, LearnValues>) {
          on_learn_values(m);
        } else {
          on_snapshot_transfer(m);
        }
      },
      *msg);
}

}  // namespace praft::paxos
