#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "consensus/applier.h"
#include "consensus/batcher.h"
#include "consensus/env.h"
#include "consensus/group.h"
#include "consensus/log.h"
#include "consensus/node_iface.h"
#include "consensus/pipeline.h"
#include "consensus/timer.h"
#include "consensus/timing.h"
#include "consensus/types.h"
#include "net/packet.h"
#include "paxos/messages.h"
#include "storage/persister.h"

namespace praft::paxos {

struct Options : consensus::TimingOptions {};

/// MultiPaxos per the paper's Fig. 1 / Appendix B.1: a two-phase protocol
/// where the phase-1 of many instances is batched ("a server becomes leader")
/// and phase-2 runs one (batched) round trip per chosen value. Unlike Raft,
/// instances commit out of order; execution still applies the contiguous
/// chosen prefix in order. A proposer overwrites accepted (ballot, value)
/// pairs and never erases them — the behaviour Raft* restores (paper §3).
///
/// Sparse instance storage, the election timer, leader heartbeats, batching
/// and the chosen-floor apply watermark come from the shared consensus
/// runtime.
class PaxosNode : public consensus::NodeIface {
 public:
  /// `store` (nullable) is this node's stable storage: the promised ballot
  /// and every accepted (ballot, value) pair persist through it; PrepareOk /
  /// AcceptOk replies wait on the fsync barrier (storage::Persister).
  PaxosNode(consensus::Group group, consensus::Env& env, Options opt = {},
            storage::DurableStore* store = nullptr);

  void start() override;
  void on_packet(const net::Packet& p) override;

  /// Leader-only: assigns the command the next free instance. Returns the
  /// instance id, or -1 when not leader.
  LogIndex submit(const kv::Command& cmd) override;

  void set_apply(consensus::ApplyFn fn) override {
    applier_.set_apply(std::move(fn));
  }

  void set_watermark_probe(consensus::WatermarkProbe probe) override {
    applier_.set_probe(std::move(probe));
  }

  void set_state_hooks(consensus::StateCapture capture,
                       consensus::StateRestore restore) override {
    applier_.set_state_hooks(std::move(capture), std::move(restore));
  }

  /// Forces a checkpoint + instance pruning at the applied floor now.
  void compact() override { maybe_compact(/*force=*/true); }
  [[nodiscard]] LogIndex compaction_floor() const override {
    return instances_.floor();
  }
  [[nodiscard]] size_t compactable_entries() const override {
    return static_cast<size_t>(applier_.applied() - instances_.floor());
  }
  [[nodiscard]] size_t resident_log_entries() const override {
    return instances_.size();
  }
  [[nodiscard]] int64_t snapshots_installed() const override {
    return snapshots_installed_;
  }
  [[nodiscard]] int64_t pipeline_rollbacks() const override {
    return pipe_.rollbacks();
  }

  [[nodiscard]] bool is_leader() const override {
    return phase1_succeeded_ && ballot_.node == group_.self;
  }
  [[nodiscard]] NodeId leader_hint() const override { return leader_; }
  [[nodiscard]] Ballot ballot() const { return ballot_; }
  /// All instances <= this are chosen (contiguous watermark).
  [[nodiscard]] LogIndex commit_floor() const {
    return applier_.commit_index();
  }
  [[nodiscard]] LogIndex commit_index() const override {
    return commit_floor();
  }
  [[nodiscard]] LogIndex applied_index() const override {
    return applier_.applied();
  }

  /// MultiPaxos's hard state: the promise (ballot as term+vote) plus the
  /// accepted tail (monotone — acceptors never un-accept).
  [[nodiscard]] consensus::HardState hard_state() const override {
    return consensus::HardState{ballot_.round, ballot_.node, -1, 0, log_tail_};
  }
  void persist_hard_state() override { persister_.hard_state(); }
  void set_hard_state_probe(consensus::HardStateProbe probe) override {
    persister_.set_probe(std::move(probe));
  }
  storage::RecoveryStats recover(const storage::DurableImage& img) override;

  [[nodiscard]] NodeId id() const override { return group_.self; }
  [[nodiscard]] bool chosen_at(LogIndex i) const;
  [[nodiscard]] const kv::Command* value_at(LogIndex i) const;

  void force_election() override { start_prepare(); }

 private:
  struct Instance {
    Ballot bal;
    kv::Command cmd;
    bool has = false;
    bool chosen = false;
    Ballot acks_bal;
    std::vector<NodeId> acks;  // deduped acceptors (incl. self) at acks_bal
    Time proposed_at = 0;
  };

  void on_prepare(const Prepare& m);
  void on_prepare_ok(const PrepareOk& m);
  void on_accept(const AcceptBatch& m);
  void on_accept_ok(const AcceptOkBatch& m);
  void on_reject(const Reject& m);
  void on_heartbeat(const Heartbeat& m);
  void on_learn_request(const LearnRequest& m);
  void on_learn_values(const LearnValues& m);
  void on_snapshot_transfer(const SnapshotTransfer& m);

  void maybe_compact(bool force);
  /// Mirrors instance `i`'s accepted/chosen state into the write-ahead log.
  void persist_inst(LogIndex i) {
    if (!recovering_) instances_.persist(i);
  }
  /// Adopts `snap` as local state after an Applier install: prunes covered
  /// instances, raises the checkpoint floor, and resumes execution above.
  void adopt_snapshot(const consensus::Snapshot& snap);

  void start_prepare();
  void finish_prepare();
  void flush_batch();
  /// Leadership lost to a higher ballot: drop the unproposed client batch
  /// and invalidate every armed flush, so a stale closure cannot propose
  /// under a ballot we no longer own.
  void abandon_leadership();
  void propose_range(LogIndex start, const std::vector<kv::Command>& cmds);
  /// Streams AcceptBatches to `peer` from its send cursor until the peer is
  /// caught up to log_tail_ or its in-flight window closes.
  void pump_peer(NodeId peer);
  void heartbeat_tick();
  void mark_chosen(LogIndex i);
  void advance_floor();
  void commit_to(LogIndex floor);
  /// Adopts a (possibly newer) contiguous-chosen watermark from a sender at
  /// `sender_bal`: local values accepted at that same ballot are provably the
  /// chosen ones; anything else below the floor is fetched via LearnRequest.
  void sync_to_floor(const Ballot& sender_bal, LogIndex floor);
  void request_missing(LogIndex upto);
  static void add_ack(Instance& in, const Ballot& b, NodeId who);
  Instance& inst(LogIndex i);
  [[nodiscard]] const Instance* inst_if(LogIndex i) const;

  consensus::Group group_;
  consensus::Env& env_;
  Options opt_;

  Ballot ballot_;               // highest ballot seen (promise)
  bool phase1_succeeded_ = false;
  NodeId leader_ = kNoNode;
  consensus::SparseLog<Instance> instances_;  // sparse: holes are real
  LogIndex next_propose_ = 1;   // leader's next unused instance id
  LogIndex log_tail_ = 0;       // largest instance id with an accepted value

  // Durability plumbing: promise + accepted values stage through the
  // persister; replies and the proposer's self-accept wait on fsync.
  storage::Persister persister_;
  bool recovering_ = false;

  // Latest checkpoint: covers exactly the pruned instances (snap_.last_index
  // == instances_.floor() after the first compaction).
  consensus::Snapshot snap_;
  consensus::CompactionTrigger compaction_;
  int64_t snapshots_installed_ = 0;

  // Shared runtime machinery.
  consensus::ElectionTimer election_;
  consensus::PeriodicTimer heartbeat_;
  consensus::Batcher batcher_;
  consensus::Applier applier_;

  // Phase 1 (candidate) state.
  bool preparing_ = false;
  consensus::QuorumTracker prepare_acks_;
  std::map<LogIndex, AcceptedVal> safe_vals_;  // highest-ballot per index

  // Pending client batch (leader).
  std::vector<kv::Command> pending_;

  // Per-peer replication: a send cursor (next instance to ship to that
  // acceptor) plus the shared in-flight window. The cursor replaces the old
  // single broadcast point — peers advance independently, and loss recovery
  // is a per-peer cursor rollback (windowed retransmit) instead of the old
  // resend-every-unchosen-instance-per-heartbeat blanket rebroadcast.
  std::unordered_map<NodeId, LogIndex> peer_next_;
  consensus::PeerPipeline pipe_;

  // Round-robin cursor for sub-floor gap repair when we have no one above
  // us to ask (see request_missing).
  size_t learn_rr_ = 0;
};

}  // namespace praft::paxos
