#pragma once

#include <map>
#include <vector>

#include "consensus/env.h"
#include "consensus/group.h"
#include "consensus/types.h"
#include "net/packet.h"
#include "paxos/messages.h"

namespace praft::paxos {

struct Options {
  Duration election_timeout_min = msec(1200);
  Duration election_timeout_max = msec(2400);
  Duration heartbeat_interval = msec(150);
  Duration batch_delay = msec(1);
  /// Unchosen instances older than this are re-proposed on the heartbeat
  /// tick (loss recovery; Raft gets the same effect from nextIndex probes).
  Duration retransmit_age = msec(300);
};

/// MultiPaxos per the paper's Fig. 1 / Appendix B.1: a two-phase protocol
/// where the phase-1 of many instances is batched ("a server becomes leader")
/// and phase-2 runs one (batched) round trip per chosen value. Unlike Raft,
/// instances commit out of order; execution still applies the contiguous
/// chosen prefix in order. A proposer overwrites accepted (ballot, value)
/// pairs and never erases them — the behaviour Raft* restores (paper §3).
class PaxosNode {
 public:
  PaxosNode(consensus::Group group, consensus::Env& env, Options opt = {});

  void start();
  void on_packet(const net::Packet& p);

  /// Leader-only: assigns the command the next free instance. Returns the
  /// instance id, or -1 when not leader.
  LogIndex submit(const kv::Command& cmd);

  void set_apply(consensus::ApplyFn fn) { apply_ = std::move(fn); }

  [[nodiscard]] bool is_leader() const {
    return phase1_succeeded_ && ballot_.node == group_.self;
  }
  [[nodiscard]] NodeId leader_hint() const { return leader_; }
  [[nodiscard]] Ballot ballot() const { return ballot_; }
  /// All instances < this are chosen (contiguous watermark).
  [[nodiscard]] LogIndex commit_floor() const { return commit_floor_; }
  [[nodiscard]] LogIndex applied_index() const { return applied_; }
  [[nodiscard]] NodeId id() const { return group_.self; }
  [[nodiscard]] bool chosen_at(LogIndex i) const;
  [[nodiscard]] const kv::Command* value_at(LogIndex i) const;

  void force_election() { start_prepare(); }

 private:
  struct Instance {
    Ballot bal;
    kv::Command cmd;
    bool has = false;
    bool chosen = false;
    Ballot acks_bal;
    std::vector<NodeId> acks;  // deduped acceptors (incl. self) at acks_bal
    Time proposed_at = 0;
  };

  void on_prepare(const Prepare& m);
  void on_prepare_ok(const PrepareOk& m);
  void on_accept(const AcceptBatch& m);
  void on_accept_ok(const AcceptOkBatch& m);
  void on_reject(const Reject& m);
  void on_heartbeat(const Heartbeat& m);
  void on_learn_request(const LearnRequest& m);
  void on_learn_values(const LearnValues& m);

  void arm_election_timer();
  void arm_heartbeat(uint64_t epoch);
  void start_prepare();
  void finish_prepare();
  void schedule_flush();
  void flush_batch();
  void propose_range(LogIndex start, const std::vector<kv::Command>& cmds);
  void retransmit_unchosen();
  void mark_chosen(LogIndex i);
  void advance_floor();
  /// Adopts a (possibly newer) contiguous-chosen watermark from a sender at
  /// `sender_bal`: local values accepted at that same ballot are provably the
  /// chosen ones; anything else below the floor is fetched via LearnRequest.
  void sync_to_floor(const Ballot& sender_bal, LogIndex floor);
  void request_missing(LogIndex upto);
  static void add_ack(Instance& in, const Ballot& b, NodeId who);
  Instance& inst(LogIndex i);
  [[nodiscard]] const Instance* inst_if(LogIndex i) const;

  consensus::Group group_;
  consensus::Env& env_;
  Options opt_;

  Ballot ballot_;               // highest ballot seen (promise)
  bool phase1_succeeded_ = false;
  NodeId leader_ = kNoNode;
  std::map<LogIndex, Instance> instances_;  // sparse: holes are real in Paxos
  LogIndex commit_floor_ = 0;   // all instances <= floor are chosen
  LogIndex applied_ = 0;
  LogIndex next_propose_ = 1;   // leader's next unused instance id
  LogIndex log_tail_ = 0;       // largest instance id with an accepted value

  // Phase 1 (candidate) state.
  bool preparing_ = false;
  consensus::QuorumTracker prepare_acks_;
  std::map<LogIndex, AcceptedVal> safe_vals_;  // highest-ballot per index

  // Pending client batch (leader).
  std::vector<kv::Command> pending_;
  bool flush_scheduled_ = false;

  Time last_leader_seen_ = 0;
  uint64_t election_epoch_ = 0;
  uint64_t heartbeat_epoch_ = 0;

  consensus::ApplyFn apply_;
};

}  // namespace praft::paxos
