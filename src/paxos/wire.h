#pragma once

#include "net/wire.h"
#include "paxos/messages.h"

namespace praft::paxos {

/// Flat-frame codec for the MultiPaxos message family (net/wire.h layout,
/// Family::kMultiPaxos, opcode = variant alternative index). encode()
/// produces exactly wire_size(m) bytes and decode() inverts it.
net::Frame encode(const Message& m, net::BufferPool& pool);
Message decode(net::FrameView f);

}  // namespace praft::paxos
