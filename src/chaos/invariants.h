#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "consensus/types.h"
#include "kv/command.h"
#include "storage/wal.h"

namespace praft::harness {
class Cluster;
class ReplicaServer;
}

namespace praft::chaos {

/// A checker's view of ONE replica group, decoupled from what owns the
/// replicas. harness::Cluster is one group by construction; a sharded
/// deployment builds one view per group so the same end-of-run invariants
/// (convergence, linearizability, bounded memory) run per group unchanged.
struct GroupView {
  int num_replicas = 0;
  std::function<bool(int)> replica_up;                    // by member index
  std::function<harness::ReplicaServer&(int)> server;     // up members only
};

/// Streaming cross-protocol invariant checker. The paper's structural-
/// parallelism claim means every protocol in the repo must satisfy the same
/// trace properties; this class states them once, protocol-agnostically:
///
///  * agreement       — at most one command is ever applied per log position
///                      across all replicas (Election Safety / Log Matching
///                      made observable at the apply boundary);
///  * apply order     — each replica applies positions contiguously, exactly
///                      once (the Applier contract, re-checked end to end);
///  * watermarks      — per replica, the commit watermark never regresses
///                      and applied never overtakes commit — across crash
///                      windows too (committed-prefix durability);
///  * linearizability — every client-visible read returns the value of the
///                      latest write ordered before it in the agreed log
///                      (reads are logged, so the log IS the linearization
///                      order — the executable form of specs::kvlog's
///                      "table[k] = latest logs[k]" refinement mapping), and
///                      every acknowledged write survives in the agreed log;
///  * crash recovery  — a restarted replica's recovered hard state is never
///                      OLDER than the hard state any message it sent
///                      depended on (no term/ballot/vote regression — the
///                      observable form of "fsync before the reply leaves"),
///                      and recovery replays at most (wal tail − snapshot
///                      floor) entries (snapshots really bound replay);
///  * snapshots       — a snapshot install only jumps a replica FORWARD, and
///                      the installed store state equals replaying the
///                      agreed log prefix it claims to cover (exactly-once
///                      apply and linearizability hold ACROSS installs: the
///                      skipped positions were applied once, by the
///                      snapshot's provider);
///  * bounded memory  — with compaction enabled, no replica's applied-but-
///                      uncompacted log tail ever exceeds the configured cap
///                      (sampled between events, where the trigger has run);
///  * convergence     — once faults stop and the cluster quiesces, all
///                      replicas applied the same prefix and hold identical
///                      stores.
///
/// Violations are recorded (not thrown) together with a bounded recent-event
/// trace so a chaos runner can print seed + trace and keep scanning.
class InvariantChecker {
 public:
  explicit InvariantChecker(size_t trace_capacity = 48)
      : trace_capacity_(trace_capacity) {}

  /// Installs apply/watermark/reply probes on `cluster`. Call after
  /// build_replicas (clients may be added later; the reply probe sticks).
  void attach(harness::Cluster& cluster);

  /// Annotates the trace (fault activations, phase markers).
  void note(std::string event);

  // Streaming observation points (normally fed via attach()).
  void on_apply(NodeId replica, consensus::LogIndex idx,
                const kv::Command& cmd);
  void on_watermark(NodeId replica, consensus::LogIndex commit,
                    consensus::LogIndex applied);
  void on_reply(const kv::Command& cmd, uint64_t value, bool ok);
  void on_snapshot_install(NodeId replica, consensus::LogIndex idx,
                           uint64_t store_fp);
  /// Hard state a message depended on, at the moment it left `replica`.
  void on_sent_state(NodeId replica, const consensus::HardState& hs);
  /// A replica finished a crash-restart with `recovered` hard state, having
  /// replayed per `stats`; its applied index is now `applied`.
  void on_restart(NodeId replica, const consensus::HardState& recovered,
                  const storage::RecoveryStats& stats,
                  consensus::LogIndex applied);

  /// Arms the bounded-memory invariant: each sample asserts every replica's
  /// compactable (applied-but-uncompacted) entries stay at or below `cap`.
  void set_memory_cap(size_t cap) { memory_cap_ = cap; }
  /// Samples the bounded-memory invariant across `cluster` now (call from a
  /// simulator callback, between events — the compaction trigger runs
  /// synchronously with apply advances, so between events the cap holds).
  void sample_memory(harness::Cluster& cluster);
  void sample_memory(const GroupView& view);

  /// End-of-run checks: replica convergence and client-visible
  /// linearizability of the whole KV history against the agreed log.
  void finalize(harness::Cluster& cluster);
  void finalize(const GroupView& view);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::vector<std::string> trace() const {
    return {trace_.begin(), trace_.end()};
  }
  /// Highest log position any replica applied (run-size diagnostics).
  [[nodiscard]] consensus::LogIndex max_applied() const { return max_applied_; }
  [[nodiscard]] uint64_t client_ops() const { return replies_.size(); }
  /// Snapshot installs observed across the run (catch-up via state
  /// transfer rather than log replay).
  [[nodiscard]] uint64_t snapshot_installs() const { return installs_.size(); }
  /// Crash-restarts observed across the run.
  [[nodiscard]] uint64_t restarts() const { return restarts_; }
  /// Order-sensitive streaming fingerprint of everything this checker
  /// observed: every apply, watermark advance, reply, snapshot install,
  /// sent-state sample, restart, and trace annotation, mixed in arrival
  /// order. Two runs of the same (protocol, seed, options) must produce the
  /// SAME fingerprint — chaos_runner --verify-determinism runs each seed
  /// twice and convicts any divergence (the runtime backstop for what the
  /// praft_lint D1/D2 rules guard statically).
  [[nodiscard]] uint64_t fingerprint() const { return fingerprint_; }

 private:
  struct ReplicaState {
    bool seen = false;
    consensus::LogIndex last_applied = 0;
    consensus::LogIndex last_commit_wm = 0;
    bool wm_seen = false;
    // Max hard state any sent message depended on ((term, vote) merged
    // lexicographically — a Paxos ballot; floor/aux/tail as plain maxima).
    consensus::HardState sent;
    bool sent_seen = false;
  };
  struct Reply {
    kv::Command cmd;
    uint64_t value = 0;
    bool ok = true;
  };
  struct Install {
    NodeId replica = kNoNode;
    consensus::LogIndex idx = 0;
    uint64_t store_fp = 0;
  };

  void violation(std::string what);
  void record(std::string event);
  static std::string describe(const kv::Command& cmd);
  /// Folds one observation word into the streaming fingerprint.
  void mix(uint64_t x);

  size_t trace_capacity_;
  std::deque<std::string> trace_;
  std::vector<std::string> violations_;

  // Agreement: position -> first command applied there (by any replica).
  std::map<consensus::LogIndex, kv::Command> chosen_;
  std::unordered_map<NodeId, ReplicaState> replicas_;
  std::vector<Reply> replies_;
  std::vector<Install> installs_;
  uint64_t restarts_ = 0;
  uint64_t fingerprint_ = 0x9e3779b97f4a7c15ull;
  consensus::LogIndex max_applied_ = 0;
  size_t memory_cap_ = 0;  // 0 = bounded-memory invariant disarmed
};

}  // namespace praft::chaos
