#include "chaos/runner.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "chaos/invariants.h"
#include "common/check.h"
#include "harness/cluster.h"
#include "harness/log_server.h"
#include "shard/shard_invariants.h"
#include "shard/sharded_cluster.h"

namespace praft::chaos {

namespace {

/// Current leader replica, or a deterministic fallback when nobody leads at
/// this instant (leaderless protocols, mid-election windows).
int resolve_leader(harness::Cluster& cluster, Time at) {
  const int leader = cluster.leader_replica();
  if (leader >= 0) return leader;
  return static_cast<int>(static_cast<uint64_t>(at) %
                          static_cast<uint64_t>(cluster.num_replicas()));
}

/// Installs one fault event. Node-targeted windows go straight into the
/// FaultPlan; leader-targeted windows arm a simulator callback that resolves
/// the victim when the window opens (falling back to a seed-determined
/// replica when nobody leads at that instant).
void arm_event(const FaultEvent& e, harness::Cluster& cluster,
               InvariantChecker& chk) {
  auto& faults = cluster.net().faults();
  // Host-based id lookup: valid even while the replica is crash-destroyed
  // (cluster.server(r) would be null inside a kCrashRestart window).
  const auto replica_id = [&cluster](int r) { return cluster.replica_id(r); };
  switch (e.kind) {
    case FaultEvent::Kind::kDropBurst:
      faults.drop_burst(e.p, e.from, e.to);
      return;
    case FaultEvent::Kind::kPartitionPair:
      faults.partition_pair(replica_id(e.a), replica_id(e.b), e.from, e.to);
      return;
    case FaultEvent::Kind::kIsolate:
      faults.isolate(replica_id(e.a), e.from, e.to);
      return;
    case FaultEvent::Kind::kCrash:
      faults.crash(replica_id(e.a), e.from, e.to);
      return;
    case FaultEvent::Kind::kCrashRestart: {
      // Real crash-recover: the node object dies at `from` (unsynced durable
      // writes lost with it) and is rebuilt from its durable image at `to`.
      cluster.sim().at(e.from, [&cluster, &chk, e] {
        if (!cluster.replica_up(e.a)) return;  // overlapping window
        char buf[128];
        std::snprintf(buf, sizeof(buf), "crash (destroy) -> replica %d (%s)",
                      e.a, e.describe().c_str());
        chk.note(buf);
        cluster.crash_replica(e.a);
      });
      cluster.sim().at(e.to, [&cluster, e] {
        if (!cluster.replica_up(e.a)) cluster.restart_replica(e.a);
      });
      return;
    }
    case FaultEvent::Kind::kLeaderCrash:
    case FaultEvent::Kind::kLeaderIsolate: {
      const bool is_crash = e.kind == FaultEvent::Kind::kLeaderCrash;
      cluster.sim().at(e.from, [&cluster, &chk, e, is_crash] {
        const int victim = resolve_leader(cluster, e.from);
        const NodeId id = cluster.replica_id(victim);
        auto& plan = cluster.net().faults();
        if (is_crash) {
          plan.crash(id, e.from, e.to);
        } else {
          plan.isolate(id, e.from, e.to);
        }
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%s -> replica %d (%s)",
                      is_crash ? "leader_crash" : "leader_isolate", victim,
                      e.describe().c_str());
        chk.note(buf);
      });
      return;
    }
    case FaultEvent::Kind::kLeaderMinority: {
      cluster.sim().at(e.from, [&cluster, &chk, e] {
        const int victim = resolve_leader(cluster, e.from);
        const int n = cluster.num_replicas();
        const int kept = (victim + 1) % n;
        auto& plan = cluster.net().faults();
        for (int p = 0; p < n; ++p) {
          if (p == victim || p == kept) continue;
          plan.partition_pair(cluster.replica_id(victim),
                              cluster.replica_id(p), e.from, e.to);
        }
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "leader_minority -> replica %d penned with %d (%s)",
                      victim, kept, e.describe().c_str());
        chk.note(buf);
      });
      return;
    }
  }
}

// ---- Sharded chaos: machine-level faults over N groups. -------------------

/// Fault context into every group's trace: a machine fault concerns all of
/// them.
void note_all(std::vector<std::unique_ptr<InvariantChecker>>& chks,
              const std::string& event) {
  for (auto& chk : chks) chk->note(event);
}

/// Machine currently hosting the plurality of group leaders, or a
/// deterministic fallback when nobody leads at this instant.
int resolve_leader_machine(shard::ShardedCluster& cluster, Time at) {
  std::vector<int> votes(static_cast<size_t>(cluster.num_machines()), 0);
  for (int g = 0; g < cluster.num_groups(); ++g) {
    const int l = cluster.leader_of(g);
    if (l >= 0) ++votes[static_cast<size_t>(cluster.member_machine(g, l))];
  }
  int best = -1;
  for (int m = 0; m < cluster.num_machines(); ++m) {
    if (votes[static_cast<size_t>(m)] > 0 &&
        (best < 0 ||
         votes[static_cast<size_t>(m)] > votes[static_cast<size_t>(best)])) {
      best = m;
    }
  }
  if (best >= 0) return best;
  return static_cast<int>(static_cast<uint64_t>(at) %
                          static_cast<uint64_t>(cluster.num_machines()));
}

/// Machine-level arm_event: the schedule's replica indices name MACHINES,
/// and each window applies to every group replica the machine hosts — one
/// fault stresses several groups at once, which is the sharded failure mode
/// single-group chaos can't reach.
void arm_event_sharded(const FaultEvent& e, shard::ShardedCluster& cluster,
                       std::vector<std::unique_ptr<InvariantChecker>>& chks) {
  auto& faults = cluster.net().faults();
  switch (e.kind) {
    case FaultEvent::Kind::kDropBurst:
      faults.drop_burst(e.p, e.from, e.to);
      return;
    case FaultEvent::Kind::kPartitionPair:
      // Cut every cross-machine pair: co-located replicas of DIFFERENT
      // groups never talk anyway, and same-machine traffic is untouched.
      for (NodeId a : cluster.machine_node_ids(e.a)) {
        for (NodeId b : cluster.machine_node_ids(e.b)) {
          faults.partition_pair(a, b, e.from, e.to);
        }
      }
      return;
    case FaultEvent::Kind::kIsolate:
      for (NodeId id : cluster.machine_node_ids(e.a)) {
        faults.isolate(id, e.from, e.to);
      }
      return;
    case FaultEvent::Kind::kCrash:
      for (NodeId id : cluster.machine_node_ids(e.a)) {
        faults.crash(id, e.from, e.to);
      }
      return;
    case FaultEvent::Kind::kCrashRestart: {
      cluster.sim().at(e.from, [&cluster, &chks, e] {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "crash (destroy) -> machine %d (%s)",
                      e.a, e.describe().c_str());
        note_all(chks, buf);
        cluster.crash_machine(e.a);
      });
      cluster.sim().at(e.to, [&cluster, e] { cluster.restart_machine(e.a); });
      return;
    }
    case FaultEvent::Kind::kLeaderCrash:
    case FaultEvent::Kind::kLeaderIsolate: {
      const bool is_crash = e.kind == FaultEvent::Kind::kLeaderCrash;
      cluster.sim().at(e.from, [&cluster, &chks, e, is_crash] {
        const int victim = resolve_leader_machine(cluster, e.from);
        auto& plan = cluster.net().faults();
        for (NodeId id : cluster.machine_node_ids(victim)) {
          if (is_crash) {
            plan.crash(id, e.from, e.to);
          } else {
            plan.isolate(id, e.from, e.to);
          }
        }
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%s -> machine %d (%s)",
                      is_crash ? "leader_crash" : "leader_isolate", victim,
                      e.describe().c_str());
        note_all(chks, buf);
      });
      return;
    }
    case FaultEvent::Kind::kLeaderMinority: {
      cluster.sim().at(e.from, [&cluster, &chks, e] {
        const int victim = resolve_leader_machine(cluster, e.from);
        const int m = cluster.num_machines();
        const int kept = (victim + 1) % m;
        auto& plan = cluster.net().faults();
        for (int p = 0; p < m; ++p) {
          if (p == victim || p == kept) continue;
          for (NodeId a : cluster.machine_node_ids(victim)) {
            for (NodeId b : cluster.machine_node_ids(p)) {
              plan.partition_pair(a, b, e.from, e.to);
            }
          }
        }
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "leader_minority -> machine %d penned with %d (%s)",
                      victim, kept, e.describe().c_str());
        note_all(chks, buf);
      });
      return;
    }
  }
}

[[nodiscard]] GroupView view_of_group(shard::ShardedCluster& cluster, int g) {
  GroupView v;
  v.num_replicas = cluster.replicas_per_group();
  v.replica_up = [&cluster, g](int j) { return cluster.replica_up(g, j); };
  v.server = [&cluster, g](int j) -> harness::ReplicaServer& {
    return cluster.server(g, j);
  };
  return v;
}

/// The sharded twin of run_one: same schedule, same timing profiles, but
/// N independent groups over `num_replicas` machines (every machine hosts a
/// replica of every group), machine-level faults, per-group invariant
/// checkers and the cross-group routing invariant on top.
RunResult run_one_sharded(const RunOptions& opt, const Schedule& sched,
                          Time faults_end) {
  RunResult res;
  res.protocol = opt.protocol;
  res.seed = sched.seed;
  res.schedule = sched.describe();

  const bool durability_armed =
      opt.crash_restarts || opt.inject_persistence_bug;

  shard::ShardedClusterConfig cfg;
  cfg.num_groups = opt.groups;
  cfg.num_machines = opt.num_replicas;
  cfg.replicas_per_group = opt.num_replicas;  // every machine, every group
  cfg.spread_leaders = true;
  cfg.protocols = {opt.protocol};
  cfg.seed = sched.seed;

  consensus::TimingOptions timing;
  timing.election_timeout_min = msec(300);
  timing.election_timeout_max = msec(600);
  timing.heartbeat_interval = msec(60);
  if (opt.wan) {
    timing.election_timeout_min = msec(1200);
    timing.election_timeout_max = msec(2400);
    timing.heartbeat_interval = msec(150);
  }
  if (opt.inject_quorum_bug) {
    timing.unsafe_commit_quorum = opt.num_replicas / 2;
  }
  timing.compaction_log_cap = opt.compaction_log_cap;
  if (durability_armed) {
    timing.fsync_duration = opt.fsync;
    timing.sync_batch_delay = opt.sync_batch;
  }
  if (opt.inject_persistence_bug) timing.unsafe_skip_vote_fsync = true;
  cfg.timing = timing;

  shard::ShardedCluster cluster(std::move(cfg));
  cluster.build();

  // One full InvariantChecker per group — group logs are independent, so
  // agreement/watermark/linearizability state must not mix — plus the
  // cross-group checker watching the seams.
  std::vector<std::unique_ptr<InvariantChecker>> chks;
  shard::CrossGroupChecker xchk(cluster.map());
  for (int g = 0; g < cluster.num_groups(); ++g) {
    chks.push_back(std::make_unique<InvariantChecker>());
    InvariantChecker& chk = *chks.back();
    cluster.install_apply_probe(
        g, [&chk, &xchk, g](NodeId r, consensus::LogIndex i,
                            const kv::Command& c) {
          chk.on_apply(r, i, c);
          xchk.on_apply(g, r, i, c);
        });
    cluster.install_watermark_probe(
        g, [&chk](NodeId r, consensus::LogIndex commit,
                  consensus::LogIndex applied) {
          chk.on_watermark(r, commit, applied);
        });
    cluster.install_snapshot_probe(
        g, [&chk](NodeId r, consensus::LogIndex idx, uint64_t fp) {
          chk.on_snapshot_install(r, idx, fp);
        });
    cluster.install_hard_state_probe(
        g, [&chk](NodeId r, const consensus::HardState& hs) {
          chk.on_sent_state(r, hs);
        });
    cluster.set_restart_probe(
        g, [&chk](NodeId r, const consensus::HardState& recovered,
                  const storage::RecoveryStats& stats,
                  consensus::LogIndex applied) {
          chk.on_restart(r, recovered, stats, applied);
        });
  }
  // One reply probe observes every client; replies are checked against the
  // owning group's agreed log.
  cluster.install_reply_probe([&chks](int g, const kv::Command& cmd,
                                      uint64_t value, bool ok, Time, Time) {
    chks[static_cast<size_t>(g)]->on_reply(cmd, value, ok);
  });

  if (opt.compaction_log_cap > 0) {
    const Time end = faults_end + sec(1) + opt.quiesce;
    for (auto& chk : chks) chk->set_memory_cap(opt.compaction_log_cap);
    for (Time t = msec(500); t < end; t += msec(500)) {
      cluster.sim().at(t, [&cluster, &chks] {
        for (int g = 0; g < cluster.num_groups(); ++g) {
          chks[static_cast<size_t>(g)]->sample_memory(view_of_group(cluster, g));
        }
      });
    }
  }

  // Coverage: leadership handoffs summed across groups, sampled between
  // events.
  uint64_t leader_changes = 0;
  if (!cluster.server(0, 0).leaderless()) {
    auto last = std::make_shared<std::vector<int>>(
        static_cast<size_t>(cluster.num_groups()), -1);
    const Time end = faults_end + sec(1) + opt.quiesce;
    for (Time t = msec(100); t < end; t += msec(100)) {
      cluster.sim().at(t, [&cluster, &leader_changes, last] {
        for (int g = 0; g < cluster.num_groups(); ++g) {
          const int now_leader = cluster.leader_of(g);
          auto& prev = (*last)[static_cast<size_t>(g)];
          if (now_leader >= 0 && now_leader != prev) {
            if (prev >= 0) ++leader_changes;
            prev = now_leader;
          }
        }
      });
    }
  }

  auto& faults = cluster.net().faults();
  faults.set_drop_rate(sched.drop_rate);
  faults.set_duplicate_rate(sched.duplicate_rate);
  faults.set_reorder_rate(sched.reorder_rate);
  for (const FaultEvent& e : sched.events) arm_event_sharded(e, cluster, chks);

  // Warm-up: every group's preferred leader, in parallel, before the fault
  // windows open.
  if (!cluster.server(0, 0).leaderless()) {
    cluster.establish_leaders(sec(10));
  } else {
    cluster.run_for(msec(500));
  }
  cluster.add_clients(sched.clients_per_region, sched.workload,
                      cluster.sim().now());

  cluster.run_until(faults_end + sec(1));
  note_all(chks, "faults over; draining clients");
  cluster.stop_clients();
  cluster.run_for(opt.quiesce);

  res.ok = true;
  for (int g = 0; g < cluster.num_groups(); ++g) {
    InvariantChecker& chk = *chks[static_cast<size_t>(g)];
    chk.finalize(view_of_group(cluster, g));
    if (!chk.ok()) {
      res.ok = false;
      for (const std::string& v : chk.violations()) {
        res.violations.push_back("[group " + std::to_string(g) + "] " + v);
      }
      if (res.trace.empty()) res.trace = chk.trace();
    }
    res.log_length = std::max<int64_t>(res.log_length, chk.max_applied());
    res.client_ops += chk.client_ops();
    res.snapshot_installs += chk.snapshot_installs();
    res.restarts += chk.restarts();
    // Group-order fold: rotate so "group 0 saw X" differs from "group 1
    // saw X" even when per-group fingerprints collide pairwise.
    res.trace_fingerprint =
        (res.trace_fingerprint << 1 | res.trace_fingerprint >> 63) ^
        chk.fingerprint();
  }
  if (!xchk.ok()) {
    res.ok = false;
    for (const std::string& v : xchk.violations()) {
      res.violations.push_back("[cross-group] " + v);
    }
  }
  res.leader_changes = leader_changes;
  res.revocations = static_cast<uint64_t>(cluster.retired_revocations());
  res.pipeline_rollbacks =
      static_cast<uint64_t>(cluster.retired_pipeline_rollbacks());
  for (int g = 0; g < cluster.num_groups(); ++g) {
    for (int j = 0; j < cluster.replicas_per_group(); ++j) {
      if (!cluster.replica_up(g, j)) continue;
      auto* ls = dynamic_cast<harness::LogServer*>(&cluster.server(g, j));
      if (ls != nullptr) {
        res.revocations +=
            static_cast<uint64_t>(ls->node_iface().revocations_started());
        res.pipeline_rollbacks +=
            static_cast<uint64_t>(ls->node_iface().pipeline_rollbacks());
      }
    }
  }
  return res;
}

}  // namespace

ScheduleLimits effective_limits(const RunOptions& opt) {
  ScheduleLimits limits = opt.limits;
  limits.num_replicas = opt.num_replicas;
  if (opt.crash_restarts || opt.inject_persistence_bug) {
    limits.crash_restart = true;
  }
  if (opt.inject_persistence_bug) {
    // Guarantee election churn with a crash-restart landing inside it, so
    // the unsynced-vote window is exercised on every seed.
    limits.forced_crash_restarts = 2;
  }
  if (opt.inject_quorum_bug) {
    // Bug-hunting mode: guarantee the minority-pen scenario every seed so
    // the buggy n/2 commit both fires and gets overwritten. Still a pure
    // function of (seed, flags): the repro command carries the flag.
    limits.add_minority_window = true;
  }
  return limits;
}

Schedule schedule_of(const RunOptions& opt) {
  if (opt.schedule.has_value()) return *opt.schedule;
  return generate_schedule(opt.seed, effective_limits(opt));
}

uint64_t coverage_score(const RunResult& r) {
  return 3 * r.leader_changes + 5 * r.revocations +
         2 * r.snapshot_installs + 3 * r.restarts +
         2 * std::min<uint64_t>(r.pipeline_rollbacks, 10) +
         (r.log_length > 0 ? 1 : 0);
}

RunResult run_one(const RunOptions& opt) {
  RunResult res;
  res.protocol = opt.protocol;

  const ScheduleLimits limits = effective_limits(opt);
  const Schedule sched = schedule_of(opt);
  res.seed = sched.seed;
  res.schedule = sched.describe();
  // Run phases key off the end of the fault phase. An evolved (or
  // hand-edited) schedule may carry windows past the generator limits, so
  // the fault-free tail starts after the LAST window either way.
  Time faults_end = limits.faults_until;
  for (const FaultEvent& e : sched.events) {
    faults_end = std::max(faults_end, e.to);
  }
  if (opt.schedule.has_value()) {
    res.repro = "chaos_runner --seed-file=<corpus> replaying this run's "
                "schedule block (evolved schedules are not seed-expressible; "
                "--failures-out saves the block)";
  } else {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "chaos_runner --protocol=%s --seed=%llu%s",
                  opt.protocol.c_str(),
                  static_cast<unsigned long long>(opt.seed),
                  opt.inject_quorum_bug ? " --inject-quorum-bug" : "");
    res.repro = buf;
    if (opt.compaction_log_cap > 0) {
      std::snprintf(buf, sizeof(buf), " --compaction-cap=%zu",
                    opt.compaction_log_cap);
      res.repro += buf;
    }
    if (opt.crash_restarts) res.repro += " --restarts";
    if (opt.inject_persistence_bug) res.repro += " --inject-persistence-bug";
    if (opt.wan) res.repro += " --wan";
    if (opt.groups > 1) {
      std::snprintf(buf, sizeof(buf), " --groups=%d", opt.groups);
      res.repro += buf;
    }
  }
  if (opt.groups > 1) {
    RunResult sharded = run_one_sharded(opt, sched, faults_end);
    sharded.repro = res.repro;
    return sharded;
  }
  const bool durability_armed =
      opt.crash_restarts || opt.inject_persistence_bug;

  harness::ClusterConfig cfg;
  cfg.num_replicas = opt.num_replicas;
  cfg.seed = sched.seed;
  harness::Cluster cluster(cfg);

  // LAN-ish timing so one run fits in milliseconds of wall clock while the
  // schedule still spans many election timeouts and heartbeats.
  consensus::TimingOptions timing;
  timing.election_timeout_min = msec(300);
  timing.election_timeout_max = msec(600);
  timing.heartbeat_interval = msec(60);
  if (opt.wan) {
    // Paper-scale WAN timing over the (default) aws5 geo matrix: RTTs up to
    // 292 ms keep whole windows of batches in flight per peer, so drops,
    // reorders and restarts land mid-pipeline instead of between batches.
    timing.election_timeout_min = msec(1200);
    timing.election_timeout_max = msec(2400);
    timing.heartbeat_interval = msec(150);
  }
  if (opt.inject_quorum_bug) {
    // The classic quorum off-by-one: n/2 acks "commit" (2 of 5). A leader
    // on the minority side of a partition can then commit entries the next
    // leader never saw — exactly what the invariants must catch.
    timing.unsafe_commit_quorum = opt.num_replicas / 2;
  }
  timing.compaction_log_cap = opt.compaction_log_cap;
  if (durability_armed) {
    // Real fsync costs open a genuine staged-but-unsynced window; group
    // commit keeps the run fast the same way production systems do.
    timing.fsync_duration = opt.fsync;
    timing.sync_batch_delay = opt.sync_batch;
  }
  if (opt.inject_persistence_bug) timing.unsafe_skip_vote_fsync = true;
  cluster.build_replicas(opt.protocol, timing);

  InvariantChecker chk;
  chk.attach(cluster);
  if (opt.compaction_log_cap > 0) {
    // Bounded memory: sample each replica's compactable tail between events
    // throughout the run (the trigger runs synchronously on apply paths, so
    // the cap must hold whenever the simulator is between handlers).
    chk.set_memory_cap(opt.compaction_log_cap);
    const Time end = faults_end + sec(1) + opt.quiesce;
    for (Time t = msec(500); t < end; t += msec(500)) {
      cluster.sim().at(t, [&cluster, &chk] { chk.sample_memory(cluster); });
    }
  }

  // Coverage signal: count leadership handoffs by sampling between events.
  uint64_t leader_changes = 0;
  if (!cluster.server(0).leaderless()) {
    auto last_leader = std::make_shared<int>(-1);
    const Time end = faults_end + sec(1) + opt.quiesce;
    for (Time t = msec(100); t < end; t += msec(100)) {
      cluster.sim().at(t, [&cluster, &leader_changes, last_leader] {
        const int now_leader = cluster.leader_replica();
        if (now_leader >= 0 && now_leader != *last_leader) {
          if (*last_leader >= 0) ++leader_changes;
          *last_leader = now_leader;
        }
      });
    }
  }

  auto& faults = cluster.net().faults();
  faults.set_drop_rate(sched.drop_rate);
  faults.set_duplicate_rate(sched.duplicate_rate);
  faults.set_reorder_rate(sched.reorder_rate);
  for (const FaultEvent& e : sched.events) arm_event(e, cluster, chk);

  // Warm-up: a stable leader (when the protocol has one) before the fault
  // windows open, mirroring the paper's testbed runs.
  if (!cluster.server(0).leaderless()) {
    cluster.establish_leader(
        static_cast<int>(sched.seed % static_cast<uint64_t>(opt.num_replicas)),
        sec(10));
  } else {
    cluster.run_for(msec(500));
  }
  cluster.add_clients(sched.clients_per_region, sched.workload,
                      cluster.sim().now());

  // Chaos phase, then a fault-free tail: clients stop, replicas repair and
  // re-converge, invariants are finalized on the quiesced cluster.
  cluster.run_until(faults_end + sec(1));
  chk.note("faults over; draining clients");
  cluster.stop_clients();
  cluster.run_for(opt.quiesce);

  chk.finalize(cluster);
  res.ok = chk.ok();
  res.violations = chk.violations();
  res.trace = chk.trace();
  res.trace_fingerprint = chk.fingerprint();
  res.log_length = chk.max_applied();
  res.client_ops = chk.client_ops();
  res.snapshot_installs = chk.snapshot_installs();
  res.restarts = chk.restarts();
  res.leader_changes = leader_changes;
  res.revocations = static_cast<uint64_t>(cluster.retired_revocations());
  res.pipeline_rollbacks =
      static_cast<uint64_t>(cluster.retired_pipeline_rollbacks());
  for (int i = 0; i < cluster.num_replicas(); ++i) {
    if (!cluster.replica_up(i)) continue;
    auto* ls = dynamic_cast<harness::LogServer*>(&cluster.server(i));
    if (ls != nullptr) {
      res.revocations +=
          static_cast<uint64_t>(ls->node_iface().revocations_started());
      res.pipeline_rollbacks +=
          static_cast<uint64_t>(ls->node_iface().pipeline_rollbacks());
    }
  }
  return res;
}

}  // namespace praft::chaos
