#include "chaos/runner.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "chaos/invariants.h"
#include "common/check.h"
#include "harness/cluster.h"
#include "harness/log_server.h"

namespace praft::chaos {

namespace {

/// Current leader replica, or a deterministic fallback when nobody leads at
/// this instant (leaderless protocols, mid-election windows).
int resolve_leader(harness::Cluster& cluster, Time at) {
  const int leader = cluster.leader_replica();
  if (leader >= 0) return leader;
  return static_cast<int>(static_cast<uint64_t>(at) %
                          static_cast<uint64_t>(cluster.num_replicas()));
}

/// Installs one fault event. Node-targeted windows go straight into the
/// FaultPlan; leader-targeted windows arm a simulator callback that resolves
/// the victim when the window opens (falling back to a seed-determined
/// replica when nobody leads at that instant).
void arm_event(const FaultEvent& e, harness::Cluster& cluster,
               InvariantChecker& chk) {
  auto& faults = cluster.net().faults();
  // Host-based id lookup: valid even while the replica is crash-destroyed
  // (cluster.server(r) would be null inside a kCrashRestart window).
  const auto replica_id = [&cluster](int r) { return cluster.replica_id(r); };
  switch (e.kind) {
    case FaultEvent::Kind::kDropBurst:
      faults.drop_burst(e.p, e.from, e.to);
      return;
    case FaultEvent::Kind::kPartitionPair:
      faults.partition_pair(replica_id(e.a), replica_id(e.b), e.from, e.to);
      return;
    case FaultEvent::Kind::kIsolate:
      faults.isolate(replica_id(e.a), e.from, e.to);
      return;
    case FaultEvent::Kind::kCrash:
      faults.crash(replica_id(e.a), e.from, e.to);
      return;
    case FaultEvent::Kind::kCrashRestart: {
      // Real crash-recover: the node object dies at `from` (unsynced durable
      // writes lost with it) and is rebuilt from its durable image at `to`.
      cluster.sim().at(e.from, [&cluster, &chk, e] {
        if (!cluster.replica_up(e.a)) return;  // overlapping window
        char buf[128];
        std::snprintf(buf, sizeof(buf), "crash (destroy) -> replica %d (%s)",
                      e.a, e.describe().c_str());
        chk.note(buf);
        cluster.crash_replica(e.a);
      });
      cluster.sim().at(e.to, [&cluster, e] {
        if (!cluster.replica_up(e.a)) cluster.restart_replica(e.a);
      });
      return;
    }
    case FaultEvent::Kind::kLeaderCrash:
    case FaultEvent::Kind::kLeaderIsolate: {
      const bool is_crash = e.kind == FaultEvent::Kind::kLeaderCrash;
      cluster.sim().at(e.from, [&cluster, &chk, e, is_crash] {
        const int victim = resolve_leader(cluster, e.from);
        const NodeId id = cluster.replica_id(victim);
        auto& plan = cluster.net().faults();
        if (is_crash) {
          plan.crash(id, e.from, e.to);
        } else {
          plan.isolate(id, e.from, e.to);
        }
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%s -> replica %d (%s)",
                      is_crash ? "leader_crash" : "leader_isolate", victim,
                      e.describe().c_str());
        chk.note(buf);
      });
      return;
    }
    case FaultEvent::Kind::kLeaderMinority: {
      cluster.sim().at(e.from, [&cluster, &chk, e] {
        const int victim = resolve_leader(cluster, e.from);
        const int n = cluster.num_replicas();
        const int kept = (victim + 1) % n;
        auto& plan = cluster.net().faults();
        for (int p = 0; p < n; ++p) {
          if (p == victim || p == kept) continue;
          plan.partition_pair(cluster.replica_id(victim),
                              cluster.replica_id(p), e.from, e.to);
        }
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "leader_minority -> replica %d penned with %d (%s)",
                      victim, kept, e.describe().c_str());
        chk.note(buf);
      });
      return;
    }
  }
}

}  // namespace

ScheduleLimits effective_limits(const RunOptions& opt) {
  ScheduleLimits limits = opt.limits;
  limits.num_replicas = opt.num_replicas;
  if (opt.crash_restarts || opt.inject_persistence_bug) {
    limits.crash_restart = true;
  }
  if (opt.inject_persistence_bug) {
    // Guarantee election churn with a crash-restart landing inside it, so
    // the unsynced-vote window is exercised on every seed.
    limits.forced_crash_restarts = 2;
  }
  if (opt.inject_quorum_bug) {
    // Bug-hunting mode: guarantee the minority-pen scenario every seed so
    // the buggy n/2 commit both fires and gets overwritten. Still a pure
    // function of (seed, flags): the repro command carries the flag.
    limits.add_minority_window = true;
  }
  return limits;
}

Schedule schedule_of(const RunOptions& opt) {
  if (opt.schedule.has_value()) return *opt.schedule;
  return generate_schedule(opt.seed, effective_limits(opt));
}

uint64_t coverage_score(const RunResult& r) {
  return 3 * r.leader_changes + 5 * r.revocations +
         2 * r.snapshot_installs + 3 * r.restarts +
         2 * std::min<uint64_t>(r.pipeline_rollbacks, 10) +
         (r.log_length > 0 ? 1 : 0);
}

RunResult run_one(const RunOptions& opt) {
  RunResult res;
  res.protocol = opt.protocol;

  const ScheduleLimits limits = effective_limits(opt);
  const Schedule sched = schedule_of(opt);
  res.seed = sched.seed;
  res.schedule = sched.describe();
  // Run phases key off the end of the fault phase. An evolved (or
  // hand-edited) schedule may carry windows past the generator limits, so
  // the fault-free tail starts after the LAST window either way.
  Time faults_end = limits.faults_until;
  for (const FaultEvent& e : sched.events) {
    faults_end = std::max(faults_end, e.to);
  }
  if (opt.schedule.has_value()) {
    res.repro = "chaos_runner --seed-file=<corpus> replaying this run's "
                "schedule block (evolved schedules are not seed-expressible; "
                "--failures-out saves the block)";
  } else {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "chaos_runner --protocol=%s --seed=%llu%s",
                  opt.protocol.c_str(),
                  static_cast<unsigned long long>(opt.seed),
                  opt.inject_quorum_bug ? " --inject-quorum-bug" : "");
    res.repro = buf;
    if (opt.compaction_log_cap > 0) {
      std::snprintf(buf, sizeof(buf), " --compaction-cap=%zu",
                    opt.compaction_log_cap);
      res.repro += buf;
    }
    if (opt.crash_restarts) res.repro += " --restarts";
    if (opt.inject_persistence_bug) res.repro += " --inject-persistence-bug";
    if (opt.wan) res.repro += " --wan";
  }
  const bool durability_armed =
      opt.crash_restarts || opt.inject_persistence_bug;

  harness::ClusterConfig cfg;
  cfg.num_replicas = opt.num_replicas;
  cfg.seed = sched.seed;
  harness::Cluster cluster(cfg);

  // LAN-ish timing so one run fits in milliseconds of wall clock while the
  // schedule still spans many election timeouts and heartbeats.
  consensus::TimingOptions timing;
  timing.election_timeout_min = msec(300);
  timing.election_timeout_max = msec(600);
  timing.heartbeat_interval = msec(60);
  if (opt.wan) {
    // Paper-scale WAN timing over the (default) aws5 geo matrix: RTTs up to
    // 292 ms keep whole windows of batches in flight per peer, so drops,
    // reorders and restarts land mid-pipeline instead of between batches.
    timing.election_timeout_min = msec(1200);
    timing.election_timeout_max = msec(2400);
    timing.heartbeat_interval = msec(150);
  }
  if (opt.inject_quorum_bug) {
    // The classic quorum off-by-one: n/2 acks "commit" (2 of 5). A leader
    // on the minority side of a partition can then commit entries the next
    // leader never saw — exactly what the invariants must catch.
    timing.unsafe_commit_quorum = opt.num_replicas / 2;
  }
  timing.compaction_log_cap = opt.compaction_log_cap;
  if (durability_armed) {
    // Real fsync costs open a genuine staged-but-unsynced window; group
    // commit keeps the run fast the same way production systems do.
    timing.fsync_duration = opt.fsync;
    timing.sync_batch_delay = opt.sync_batch;
  }
  if (opt.inject_persistence_bug) timing.unsafe_skip_vote_fsync = true;
  cluster.build_replicas(opt.protocol, timing);

  InvariantChecker chk;
  chk.attach(cluster);
  if (opt.compaction_log_cap > 0) {
    // Bounded memory: sample each replica's compactable tail between events
    // throughout the run (the trigger runs synchronously on apply paths, so
    // the cap must hold whenever the simulator is between handlers).
    chk.set_memory_cap(opt.compaction_log_cap);
    const Time end = faults_end + sec(1) + opt.quiesce;
    for (Time t = msec(500); t < end; t += msec(500)) {
      cluster.sim().at(t, [&cluster, &chk] { chk.sample_memory(cluster); });
    }
  }

  // Coverage signal: count leadership handoffs by sampling between events.
  uint64_t leader_changes = 0;
  if (!cluster.server(0).leaderless()) {
    auto last_leader = std::make_shared<int>(-1);
    const Time end = faults_end + sec(1) + opt.quiesce;
    for (Time t = msec(100); t < end; t += msec(100)) {
      cluster.sim().at(t, [&cluster, &leader_changes, last_leader] {
        const int now_leader = cluster.leader_replica();
        if (now_leader >= 0 && now_leader != *last_leader) {
          if (*last_leader >= 0) ++leader_changes;
          *last_leader = now_leader;
        }
      });
    }
  }

  auto& faults = cluster.net().faults();
  faults.set_drop_rate(sched.drop_rate);
  faults.set_duplicate_rate(sched.duplicate_rate);
  faults.set_reorder_rate(sched.reorder_rate);
  for (const FaultEvent& e : sched.events) arm_event(e, cluster, chk);

  // Warm-up: a stable leader (when the protocol has one) before the fault
  // windows open, mirroring the paper's testbed runs.
  if (!cluster.server(0).leaderless()) {
    cluster.establish_leader(
        static_cast<int>(sched.seed % static_cast<uint64_t>(opt.num_replicas)),
        sec(10));
  } else {
    cluster.run_for(msec(500));
  }
  cluster.add_clients(sched.clients_per_region, sched.workload,
                      cluster.sim().now());

  // Chaos phase, then a fault-free tail: clients stop, replicas repair and
  // re-converge, invariants are finalized on the quiesced cluster.
  cluster.run_until(faults_end + sec(1));
  chk.note("faults over; draining clients");
  cluster.stop_clients();
  cluster.run_for(opt.quiesce);

  chk.finalize(cluster);
  res.ok = chk.ok();
  res.violations = chk.violations();
  res.trace = chk.trace();
  res.log_length = chk.max_applied();
  res.client_ops = chk.client_ops();
  res.snapshot_installs = chk.snapshot_installs();
  res.restarts = chk.restarts();
  res.leader_changes = leader_changes;
  res.revocations = static_cast<uint64_t>(cluster.retired_revocations());
  res.pipeline_rollbacks =
      static_cast<uint64_t>(cluster.retired_pipeline_rollbacks());
  for (int i = 0; i < cluster.num_replicas(); ++i) {
    if (!cluster.replica_up(i)) continue;
    auto* ls = dynamic_cast<harness::LogServer*>(&cluster.server(i));
    if (ls != nullptr) {
      res.revocations +=
          static_cast<uint64_t>(ls->node_iface().revocations_started());
      res.pipeline_rollbacks +=
          static_cast<uint64_t>(ls->node_iface().pipeline_rollbacks());
    }
  }
  return res;
}

}  // namespace praft::chaos
