#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chaos/schedule_gen.h"
#include "common/types.h"

namespace praft::chaos {

/// One chaos run: a protocol name, a seed, and the knobs the CLI exposes.
struct RunOptions {
  std::string protocol = "raft";   // any consensus::ProtocolRegistry name
  uint64_t seed = 1;
  int num_replicas = 5;
  /// Consensus groups. 1 runs the classic single-group cluster; > 1 runs a
  /// sharded deployment of `groups` independent groups over `num_replicas`
  /// machines (every machine hosts one replica of every group, so each fault
  /// window hits replicas serving several groups at once). Faults then
  /// target MACHINES: the schedule's replica indices are machine indices,
  /// and crash/partition/isolate windows apply to every co-located replica.
  /// Invariants run per group, plus the cross-group routing invariant.
  int groups = 1;
  /// Arms TimingOptions::unsafe_commit_quorum = n/2 (commit without a true
  /// majority) to prove the invariant checker catches real violations.
  bool inject_quorum_bug = false;
  /// When > 0, runs the cluster with checkpoint-driven log compaction
  /// (TimingOptions::compaction_log_cap) and arms the bounded-memory
  /// invariant at the same cap. Lagging replicas then catch up via snapshot
  /// transfer, and the checker verifies exactly-once apply, linearizability
  /// and snapshot soundness ACROSS installs.
  size_t compaction_log_cap = 0;
  /// Enables kCrashRestart faults: replicas are destroyed mid-run and
  /// rebuilt purely from their durable stores, with the recovery invariants
  /// (no hard-state regression, bounded replay) checked on every restart.
  /// Also arms real fsync costs (see fsync/sync_batch below) so there is a
  /// genuine unsynced window for crashes to bite.
  bool crash_restarts = false;
  /// Arms TimingOptions::unsafe_skip_vote_fsync (the vote reply leaves
  /// before its promise hits disk) plus guaranteed election-churn +
  /// crash-restart windows, to prove the checker convicts the classic
  /// missing-fsync bug. Implies crash_restarts.
  bool inject_persistence_bug = false;
  /// Modeled fsync cost / group-commit window used when crash_restarts or
  /// inject_persistence_bug is set (0/0 otherwise keeps trajectories
  /// bit-identical to the pre-durability harness).
  Duration fsync = msec(2);
  Duration sync_batch = msec(1);
  /// WAN mode: paper-scale election/heartbeat timing (1.2-2.4 s / 150 ms)
  /// over the aws5 geo matrix, so fault windows land while many batches are
  /// in flight per peer — the replication-pipelining stress profile. Off:
  /// the LAN-ish timing that keeps one run in milliseconds of wall clock.
  bool wan = false;
  ScheduleLimits limits;
  /// Fault-free tail after the last fault window: clients drain, replicas
  /// re-converge, then invariants are finalized.
  Duration quiesce = sec(10);
  /// When set, runs this exact schedule instead of expanding `seed` through
  /// generate_schedule — the evolved-corpus path, where a mutated schedule
  /// is no longer expressible as a seed. The schedule's own `seed` field
  /// seeds the cluster RNG (for seed-expanded runs the two are equal).
  std::optional<Schedule> schedule;
};

struct RunResult {
  bool ok = true;
  uint64_t seed = 0;
  std::string protocol;
  std::vector<std::string> violations;
  std::vector<std::string> trace;      // recent events before the violation
  std::string schedule;                // human-readable generated schedule
  std::string repro;                   // exact CLI command to replay this run
  int64_t log_length = 0;              // highest agreed index
  uint64_t client_ops = 0;             // completed client operations
  uint64_t snapshot_installs = 0;      // catch-ups served by state transfer
  uint64_t restarts = 0;               // crash-restarts performed
  uint64_t leader_changes = 0;         // leadership handoffs observed
  uint64_t revocations = 0;            // Mencius revocations started
  uint64_t pipeline_rollbacks = 0;     // in-flight window rollbacks
  /// Order-sensitive hash of every checker observation (applies, watermarks,
  /// replies, sent states, installs, restarts, trace notes; per-group
  /// fingerprints folded in group order for sharded runs). Equal options
  /// must yield an equal fingerprint — `chaos_runner --verify-determinism`
  /// runs every seed twice and convicts any divergence.
  uint64_t trace_fingerprint = 0;
};

/// The ScheduleLimits a RunOptions actually generates under: `opt.limits`
/// with the replica count folded in and the guaranteed-fault knobs implied
/// by the bug-injection / crash-restart flags armed.
[[nodiscard]] ScheduleLimits effective_limits(const RunOptions& opt);

/// The schedule `run_one(opt)` would execute: the explicit one when
/// `opt.schedule` is set, else the seed expanded under effective_limits.
[[nodiscard]] Schedule schedule_of(const RunOptions& opt);

/// Coverage score of a completed run: rare-path events dominate (leader
/// churn, Mencius revocations, snapshot transfers, crash-restarts) so
/// corpus persistence and schedule evolution both concentrate the fuzzer
/// on interesting interleavings.
[[nodiscard]] uint64_t coverage_score(const RunResult& r);

/// Builds a cluster for `opt.protocol`, generates the seed's fault schedule
/// and workload, runs it, and checks all trace invariants. Deterministic:
/// the same (protocol, seed, options) always yields the same result.
[[nodiscard]] RunResult run_one(const RunOptions& opt);

}  // namespace praft::chaos
