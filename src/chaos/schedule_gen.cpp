#include "chaos/schedule_gen.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "common/check.h"
#include "common/rng.h"

namespace praft::chaos {

const char* to_string(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kDropBurst: return "drop_burst";
    case FaultEvent::Kind::kPartitionPair: return "partition_pair";
    case FaultEvent::Kind::kIsolate: return "isolate";
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kLeaderCrash: return "leader_crash";
    case FaultEvent::Kind::kLeaderIsolate: return "leader_isolate";
    case FaultEvent::Kind::kLeaderMinority: return "leader_minority";
    case FaultEvent::Kind::kCrashRestart: return "crash_restart";
  }
  return "?";
}

bool kind_from_string(const std::string& name, FaultEvent::Kind* out) {
  static constexpr FaultEvent::Kind kAll[] = {
      FaultEvent::Kind::kDropBurst,      FaultEvent::Kind::kPartitionPair,
      FaultEvent::Kind::kIsolate,        FaultEvent::Kind::kCrash,
      FaultEvent::Kind::kLeaderCrash,    FaultEvent::Kind::kLeaderIsolate,
      FaultEvent::Kind::kLeaderMinority, FaultEvent::Kind::kCrashRestart,
  };
  for (const FaultEvent::Kind k : kAll) {
    if (name == to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

namespace {

std::string format(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace

std::string FaultEvent::describe() const {
  const double from_s = static_cast<double>(from) / 1e6;
  const double to_s = static_cast<double>(to) / 1e6;
  switch (kind) {
    case Kind::kDropBurst:
      return format("%s(p=%.2f, [%.2fs, %.2fs))", to_string(kind), p, from_s,
                    to_s);
    case Kind::kPartitionPair:
      return format("%s(%d <-> %d, [%.2fs, %.2fs))", to_string(kind), a, b,
                    from_s, to_s);
    case Kind::kIsolate:
    case Kind::kCrash:
    case Kind::kCrashRestart:
      return format("%s(%d, [%.2fs, %.2fs))", to_string(kind), a, from_s,
                    to_s);
    case Kind::kLeaderCrash:
    case Kind::kLeaderIsolate:
    case Kind::kLeaderMinority:
      return format("%s([%.2fs, %.2fs))", to_string(kind), from_s, to_s);
  }
  return "?";
}

std::string Schedule::describe() const {
  std::string out = format(
      "seed=%llu drop=%.3f dup=%.3f reorder=%.3f clients=%d reads=%.0f%%",
      static_cast<unsigned long long>(seed), drop_rate, duplicate_rate,
      reorder_rate, clients_per_region, workload.read_fraction * 100.0);
  for (const auto& e : events) {
    out += "\n  " + e.describe();
  }
  return out;
}

Schedule generate_schedule(uint64_t seed, const ScheduleLimits& limits) {
  PRAFT_CHECK(limits.num_replicas >= 2);
  PRAFT_CHECK(limits.faults_until > limits.faults_from);
  // Decorrelate from the cluster RNG (which is seeded with the same value);
  // the constant is arbitrary but fixed so schedules stay reproducible.
  Rng rng(seed ^ 0xc7a05e11a05c4edULL);
  Schedule s;
  s.seed = seed;

  // Whole-run network chaos: each knob is on in roughly half the schedules,
  // so clean-network and noisy-network behaviors both stay covered.
  if (rng.chance(0.5)) s.drop_rate = rng.uniform() * limits.max_drop_rate;
  if (rng.chance(0.5)) {
    s.duplicate_rate = rng.uniform() * limits.max_duplicate_rate;
  }
  if (rng.chance(0.5)) s.reorder_rate = rng.uniform() * limits.max_reorder_rate;

  // Client workload.
  s.clients_per_region = static_cast<int>(rng.range(1, 2));
  s.workload.read_fraction = 0.3 + rng.uniform() * 0.6;
  s.workload.conflict_rate = rng.uniform() * 0.2;
  s.workload.num_records = 64;  // small key space => frequent read/write races
  s.workload.value_size = 8;

  // Timed fault windows.
  const int n = limits.num_replicas;
  const int events = static_cast<int>(
      rng.range(limits.min_events, limits.max_events));
  for (int i = 0; i < events; ++i) {
    FaultEvent e;
    const Time span = limits.faults_until - limits.faults_from;
    e.from = limits.faults_from + static_cast<Time>(rng.below(
                 static_cast<uint64_t>(span)));
    const Duration window_span = limits.max_window - limits.min_window;
    const Duration window =
        limits.min_window +
        (window_span > 0
             ? static_cast<Duration>(
                   rng.below(static_cast<uint64_t>(window_span)))
             : 0);
    e.to = std::min<Time>(e.from + window, limits.faults_until);

    // Leader-targeted faults are the paper's interesting regime (leader
    // churn), so they get the biggest share; a crashed minority never
    // blocks a majority from making progress. With the durability layer
    // armed, two extra faces of the die destroy-and-recover a replica.
    const uint64_t die = rng.below(limits.crash_restart ? 12 : 10);
    if (die >= 10) {
      e.kind = FaultEvent::Kind::kCrashRestart;
      e.a = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
      // Short downtime: the interesting races are losing unsynced state and
      // rejoining mid-election, not sitting out the whole run.
      e.to = std::min<Time>(e.from + msec(100) +
                                static_cast<Duration>(rng.below(
                                    static_cast<uint64_t>(sec(2)))),
                            limits.faults_until);
    } else if (die < 3) {
      e.kind = FaultEvent::Kind::kLeaderIsolate;
    } else if (die < 5) {
      e.kind = FaultEvent::Kind::kLeaderCrash;
    } else if (die < 7) {
      e.kind = FaultEvent::Kind::kPartitionPair;
      e.a = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
      e.b = static_cast<int>(rng.below(static_cast<uint64_t>(n - 1)));
      if (e.b >= e.a) ++e.b;
    } else if (die < 8) {
      e.kind = FaultEvent::Kind::kIsolate;
      e.a = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
    } else if (die < 9) {
      e.kind = FaultEvent::Kind::kCrash;
      e.a = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
    } else {
      e.kind = FaultEvent::Kind::kDropBurst;
      e.p = 0.1 + rng.uniform() * (limits.max_burst_drop - 0.1);
    }
    s.events.push_back(e);
  }
  for (int k = 0; k < limits.forced_crash_restarts; ++k) {
    // A leader crash forces an election; a crash-restart lands on a random
    // replica while the vote traffic is in flight.
    FaultEvent lc;
    lc.kind = FaultEvent::Kind::kLeaderCrash;
    lc.from = limits.faults_from + sec(3) * k +
              static_cast<Duration>(rng.below(static_cast<uint64_t>(sec(1))));
    // Guard like the paired crash-restart below: the k-th pair starts 3s
    // deeper into the fault phase, so for small `faults_until` (or k >= 1)
    // the unclamped `from` can land past the window end — pushing that event
    // unguarded would emit an inverted window (`to < from`) that leaks faults
    // into the documented fault-free re-convergence tail.
    lc.from = std::min<Time>(lc.from, limits.faults_until);
    lc.to = std::min<Time>(lc.from + msec(800), limits.faults_until);
    if (lc.to > lc.from) s.events.push_back(lc);
    FaultEvent cr;
    cr.kind = FaultEvent::Kind::kCrashRestart;
    cr.a = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
    cr.from = lc.from + msec(100) +
              static_cast<Duration>(
                  rng.below(static_cast<uint64_t>(msec(1500))));
    cr.to = std::min<Time>(cr.from + msec(100) +
                               static_cast<Duration>(rng.below(
                                   static_cast<uint64_t>(msec(500)))),
                           limits.faults_until);
    if (cr.to > cr.from) s.events.push_back(cr);
  }
  if (limits.add_minority_window) {
    // Long enough for every protocol's repair machinery to fire inside the
    // window (Mencius revocation alone needs its 2.5s silence threshold
    // plus two WAN round trips before it overwrites the penned slots).
    FaultEvent e;
    e.kind = FaultEvent::Kind::kLeaderMinority;
    e.from = std::min<Time>(limits.faults_from + sec(1), limits.faults_until);
    e.to = std::min<Time>(e.from + sec(6), limits.faults_until);
    if (e.to > e.from) s.events.push_back(e);
  }
  // Postcondition: every emitted window sits strictly inside the fault
  // phase. The invariant checker finalizes on a quiesced cluster, so a
  // window leaking past `faults_until` (or an inverted one) would turn
  // re-convergence violations into false alarms — or mask real ones.
  for (const FaultEvent& e : s.events) {
    PRAFT_CHECK_MSG(limits.faults_from <= e.from && e.from < e.to &&
                        e.to <= limits.faults_until,
                    e.describe());
  }
  return s;
}

}  // namespace praft::chaos
