#include "chaos/invariants.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "harness/cluster.h"
#include "harness/log_server.h"
#include "kv/store.h"

namespace praft::chaos {

namespace {

/// Client-op identity: (client, seq) packed for hashing. Sequence numbers
/// are per-client counters, far below 2^40 in any bounded run.
uint64_t op_key(const kv::Command& cmd) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(cmd.client)) << 40) ^
         cmd.seq;
}

/// harness::Cluster as the one-group GroupView it is.
GroupView view_of(harness::Cluster& cluster) {
  GroupView v;
  v.num_replicas = cluster.num_replicas();
  v.replica_up = [&cluster](int i) { return cluster.replica_up(i); };
  v.server = [&cluster](int i) -> harness::ReplicaServer& {
    return cluster.server(i);
  };
  return v;
}

}  // namespace

std::string InvariantChecker::describe(const kv::Command& cmd) {
  char buf[96];
  if (cmd.is_noop()) {
    std::snprintf(buf, sizeof(buf), "noop");
  } else {
    std::snprintf(buf, sizeof(buf), "%s(k=%llu%s%llu, c=%d, s=%llu)",
                  cmd.is_read() ? "get" : "put",
                  static_cast<unsigned long long>(cmd.key),
                  cmd.is_read() ? ", #" : ", v=",
                  static_cast<unsigned long long>(cmd.value),
                  cmd.client, static_cast<unsigned long long>(cmd.seq));
  }
  return buf;
}

void InvariantChecker::attach(harness::Cluster& cluster) {
  cluster.install_apply_probe(
      [this](NodeId r, consensus::LogIndex i, const kv::Command& c) {
        on_apply(r, i, c);
      });
  cluster.install_watermark_probe(
      [this](NodeId r, consensus::LogIndex commit,
             consensus::LogIndex applied) { on_watermark(r, commit, applied); });
  cluster.install_reply_probe(
      [this](const kv::Command& cmd, uint64_t value, bool okay, Time, Time) {
        on_reply(cmd, value, okay);
      });
  cluster.install_snapshot_probe(
      [this](NodeId r, consensus::LogIndex idx, uint64_t fp) {
        on_snapshot_install(r, idx, fp);
      });
  cluster.install_hard_state_probe(
      [this](NodeId r, const consensus::HardState& hs) {
        on_sent_state(r, hs);
      });
  cluster.set_restart_probe(
      [this](NodeId r, const consensus::HardState& recovered,
             const storage::RecoveryStats& stats,
             consensus::LogIndex applied) {
        on_restart(r, recovered, stats, applied);
      });
}

void InvariantChecker::note(std::string event) { record(std::move(event)); }

void InvariantChecker::mix(uint64_t x) {
  // splitmix64 finalizer over (state ^ input): order-sensitive, so swapped
  // observations change the fingerprint even when the multiset is identical.
  uint64_t z = fingerprint_ ^ x;
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  fingerprint_ = z ^ (z >> 31);
}

void InvariantChecker::record(std::string event) {
  // Trace annotations (fault activations, phase markers) carry timing and
  // victim choices; fold them in so even apply-invisible divergence shows.
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : event) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  }
  mix(h);
  if (trace_.size() >= trace_capacity_) trace_.pop_front();
  trace_.push_back(std::move(event));
}

void InvariantChecker::violation(std::string what) {
  // Bound the damage report: one bad seed can violate at every index.
  if (violations_.size() < 8) violations_.push_back(what);
  record("VIOLATION: " + std::move(what));
}

void InvariantChecker::on_apply(NodeId replica, consensus::LogIndex idx,
                                const kv::Command& cmd) {
  ReplicaState& st = replicas_[replica];
  if (!st.seen) {
    st.seen = true;
    // First position is 1 for 1-based logs (Raft/Raft*/MultiPaxos) and 0
    // for Mencius' 0-based slot space.
    if (idx != 0 && idx != 1) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "replica %d first apply at index %lld (expected 0 or 1)",
                    replica, static_cast<long long>(idx));
      violation(buf);
    }
  } else if (idx != st.last_applied + 1) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "replica %d applied index %lld after %lld "
                  "(non-contiguous / duplicate apply)",
                  replica, static_cast<long long>(idx),
                  static_cast<long long>(st.last_applied));
    violation(buf);
  }
  st.last_applied = idx;
  if (idx > max_applied_) max_applied_ = idx;

  auto [it, inserted] = chosen_.try_emplace(idx, cmd);
  if (!inserted && !(it->second == cmd)) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "agreement broken at index %lld: replica %d applied %s but "
                  "%s was already applied there",
                  static_cast<long long>(idx), replica,
                  describe(cmd).c_str(), describe(it->second).c_str());
    violation(buf);
  }

  char buf[160];
  std::snprintf(buf, sizeof(buf), "apply r=%d idx=%lld %s", replica,
                static_cast<long long>(idx), describe(cmd).c_str());
  record(buf);
}

void InvariantChecker::on_watermark(NodeId replica, consensus::LogIndex commit,
                                    consensus::LogIndex applied) {
  ReplicaState& st = replicas_[replica];
  if (st.wm_seen && commit < st.last_commit_wm) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "replica %d commit watermark regressed: %lld -> %lld",
                  replica, static_cast<long long>(st.last_commit_wm),
                  static_cast<long long>(commit));
    violation(buf);
  }
  if (applied > commit) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "replica %d applied %lld past its commit watermark %lld",
                  replica, static_cast<long long>(applied),
                  static_cast<long long>(commit));
    violation(buf);
  }
  st.wm_seen = true;
  st.last_commit_wm = commit;
  mix(0x57u ^ (static_cast<uint64_t>(static_cast<uint32_t>(replica)) << 8) ^
      (static_cast<uint64_t>(commit) << 16) ^
      (static_cast<uint64_t>(applied) << 40));
}

void InvariantChecker::on_reply(const kv::Command& cmd, uint64_t value,
                                bool ok) {
  mix(0x52u ^ (op_key(cmd) << 8) ^ (value * 0x9e3779b97f4a7c15ull) ^
      (ok ? 2 : 1));
  replies_.push_back(Reply{cmd, value, ok});
}

void InvariantChecker::on_snapshot_install(NodeId replica,
                                           consensus::LogIndex idx,
                                           uint64_t store_fp) {
  ReplicaState& st = replicas_[replica];
  if (st.seen && idx <= st.last_applied) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "replica %d installed a snapshot @%lld at or below its "
                  "applied index %lld (backward jump / duplicate apply)",
                  replica, static_cast<long long>(idx),
                  static_cast<long long>(st.last_applied));
    violation(buf);
  }
  // The skipped positions were applied exactly once — by the snapshot's
  // provider; this replica resumes contiguously after the jump.
  st.seen = true;
  st.last_applied = std::max(st.last_applied, idx);
  if (idx > max_applied_) max_applied_ = idx;
  installs_.push_back(Install{replica, idx, store_fp});

  char buf[128];
  std::snprintf(buf, sizeof(buf), "snapshot install r=%d idx=%lld", replica,
                static_cast<long long>(idx));
  record(buf);
}

void InvariantChecker::on_sent_state(NodeId replica,
                                     const consensus::HardState& hs) {
  mix(0x53u ^ (static_cast<uint64_t>(static_cast<uint32_t>(replica)) << 8) ^
      (static_cast<uint64_t>(hs.term) << 16) ^
      (static_cast<uint64_t>(static_cast<uint32_t>(hs.vote)) << 32) ^
      (static_cast<uint64_t>(hs.floor + hs.aux + hs.tail) << 40));
  ReplicaState& st = replicas_[replica];
  if (!st.sent_seen) {
    st.sent = hs;
    st.sent_seen = true;
    return;
  }
  // (term, vote) is a ballot: merge lexicographically. The other fields are
  // independent monotone counters.
  if (hs.term > st.sent.term ||
      (hs.term == st.sent.term && hs.vote > st.sent.vote)) {
    st.sent.term = hs.term;
    st.sent.vote = hs.vote;
  }
  st.sent.floor = std::max(st.sent.floor, hs.floor);
  st.sent.aux = std::max(st.sent.aux, hs.aux);
  st.sent.tail = std::max(st.sent.tail, hs.tail);
}

void InvariantChecker::on_restart(NodeId replica,
                                  const consensus::HardState& recovered,
                                  const storage::RecoveryStats& stats,
                                  consensus::LogIndex applied) {
  ++restarts_;
  ReplicaState& st = replicas_[replica];
  {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "restart r=%d recovered term=%lld floor=%lld applied=%lld "
                  "(replayed %zu above snap %lld)",
                  replica, static_cast<long long>(recovered.term),
                  static_cast<long long>(recovered.floor),
                  static_cast<long long>(applied), stats.replayed,
                  static_cast<long long>(stats.snapshot_floor));
    record(buf);
  }
  if (st.sent_seen) {
    // No externally-visible hard state may be forgotten: every message this
    // replica ever sent waited (or should have waited) for the state it
    // depended on to reach disk.
    // (term, vote) is a ballot, ordered lexicographically — the same order
    // on_sent_state merges with. A same-term vote ADVANCE (MultiPaxos
    // adopting a higher same-round ballot) is legal; only a strictly
    // smaller recovered ballot (including vote lost to kNoNode) convicts.
    const bool ballot_regressed =
        recovered.term < st.sent.term ||
        (recovered.term == st.sent.term && recovered.vote < st.sent.vote);
    if (ballot_regressed || recovered.floor < st.sent.floor ||
        recovered.aux < st.sent.aux || recovered.tail < st.sent.tail) {
      char buf[256];
      std::snprintf(
          buf, sizeof(buf),
          "replica %d recovered hard state (term=%lld vote=%d floor=%lld "
          "aux=%lld tail=%lld) regresses what its sent messages depended on "
          "(term=%lld vote=%d floor=%lld aux=%lld tail=%lld) — missing "
          "fsync before send",
          replica, static_cast<long long>(recovered.term), recovered.vote,
          static_cast<long long>(recovered.floor),
          static_cast<long long>(recovered.aux),
          static_cast<long long>(recovered.tail),
          static_cast<long long>(st.sent.term), st.sent.vote,
          static_cast<long long>(st.sent.floor),
          static_cast<long long>(st.sent.aux),
          static_cast<long long>(st.sent.tail));
      violation(buf);
    }
  }
  // Snapshots must bound replay: recovery work is at most the WAL suffix.
  const auto bound = static_cast<size_t>(
      std::max<consensus::LogIndex>(0, stats.wal_tail - stats.snapshot_floor));
  if (stats.recovered && stats.replayed > bound) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "replica %d replayed %zu entries on recovery, over the "
                  "(wal tail %lld - snapshot floor %lld) bound",
                  replica, stats.replayed,
                  static_cast<long long>(stats.wal_tail),
                  static_cast<long long>(stats.snapshot_floor));
    violation(buf);
  }
  // The node restarts with a fresh incarnation: its applied prefix regressed
  // to the recovered position (re-applies get re-checked against the agreed
  // log through the apply probe), and its watermark baseline resets.
  st.seen = true;
  st.last_applied = applied;
  st.wm_seen = false;
  st.last_commit_wm = 0;
  // Hard state can only have moved forward through recovery's own replay —
  // keep the sent-state maximum as-is; the recovered state already passed
  // the regression check above.
}

void InvariantChecker::sample_memory(harness::Cluster& cluster) {
  sample_memory(view_of(cluster));
}

void InvariantChecker::sample_memory(const GroupView& view) {
  if (memory_cap_ == 0) return;
  for (int i = 0; i < view.num_replicas; ++i) {
    if (!view.replica_up(i)) continue;  // crashed, awaiting restart
    auto* ls = dynamic_cast<harness::LogServer*>(&view.server(i));
    if (ls == nullptr) continue;
    const size_t compactable = ls->node_iface().compactable_entries();
    if (compactable > memory_cap_) {
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "replica %d holds %zu applied-but-uncompacted entries, "
                    "over the compaction cap %zu (unbounded memory)",
                    i, compactable, memory_cap_);
      violation(buf);
    }
  }
}

void InvariantChecker::finalize(harness::Cluster& cluster) {
  finalize(view_of(cluster));
}

void InvariantChecker::finalize(const GroupView& view) {
  sample_memory(view);  // one last bounded-memory check on the quiesced world

  // ---- Replay the agreed log and derive the linearized KV history. -------
  // Reads are logged by every baseline in the repo, so the agreed log IS the
  // linearization order: the correct answer for a read is the latest write
  // to its key at a smaller index.
  std::unordered_map<uint64_t, uint64_t> model;          // key -> value token
  std::unordered_set<uint64_t> writes_in_log;            // op_key of puts
  std::unordered_map<uint64_t, std::vector<uint64_t>> expected_reads;
  // Snapshot soundness: the store state a replica installed must equal
  // replaying the agreed log prefix the snapshot claims to cover.
  std::vector<Install> installs = installs_;
  std::sort(installs.begin(), installs.end(),
            [](const Install& a, const Install& b) { return a.idx < b.idx; });
  size_t next_install = 0;
  kv::KvStore replay;
  consensus::LogIndex expect = -2;
  for (const auto& [idx, cmd] : chosen_) {
    if (expect == -2) {
      if (idx != 0 && idx != 1) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "agreed log starts at index %lld (expected 0 or 1)",
                      static_cast<long long>(idx));
        violation(buf);
      }
    } else if (idx != expect) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "hole in agreed log before index %lld",
                    static_cast<long long>(idx));
      violation(buf);
    }
    expect = idx + 1;
    if (cmd.is_write()) {
      model[cmd.key] = cmd.value;
      writes_in_log.insert(op_key(cmd));
    } else if (cmd.is_read()) {
      const auto it = model.find(cmd.key);
      expected_reads[op_key(cmd)].push_back(it == model.end() ? 0
                                                              : it->second);
    }
    replay.apply(cmd);
    for (; next_install < installs.size() && installs[next_install].idx == idx;
         ++next_install) {
      const Install& ins = installs[next_install];
      if (ins.store_fp != replay.fingerprint()) {
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "replica %d's installed snapshot @%lld does not match "
                      "a replay of the agreed log prefix",
                      ins.replica, static_cast<long long>(ins.idx));
        violation(buf);
      }
    }
  }
  for (; next_install < installs.size(); ++next_install) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "replica %d installed a snapshot @%lld outside the agreed "
                  "log (no replica ever applied that prefix)",
                  installs[next_install].replica,
                  static_cast<long long>(installs[next_install].idx));
    violation(buf);
  }

  // ---- Client-visible history must be explained by the agreed log. -------
  for (const Reply& r : replies_) {
    if (!r.ok) continue;
    if (r.cmd.is_write()) {
      if (writes_in_log.count(op_key(r.cmd)) == 0) {
        violation("acknowledged write " + describe(r.cmd) +
                  " is missing from the agreed log (durability loss)");
      }
    } else if (r.cmd.is_read()) {
      const auto it = expected_reads.find(op_key(r.cmd));
      bool matched = false;
      if (it != expected_reads.end()) {
        for (uint64_t v : it->second) matched |= (v == r.value);
      }
      if (!matched) {
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "non-linearizable read %s returned %llu, not the "
                      "latest agreed write to the key",
                      describe(r.cmd).c_str(),
                      static_cast<unsigned long long>(r.value));
        violation(buf);
      }
    }
  }

  // ---- Convergence: after the fault-free tail, everyone caught up. -------
  uint64_t fp0 = 0;
  bool have_fp0 = false;
  for (int i = 0; i < view.num_replicas; ++i) {
    if (!view.replica_up(i)) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "replica %d still down after quiesce (restart never ran)",
                    i);
      violation(buf);
      continue;
    }
    const auto& server = view.server(i);
    const auto st = replicas_.find(server.id());
    const consensus::LogIndex applied =
        st == replicas_.end() ? 0 : st->second.last_applied;
    if (applied < max_applied_) {
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "replica %d stalled: applied %lld of %lld after quiesce "
                    "(its committed prefix: %lld)",
                    i, static_cast<long long>(applied),
                    static_cast<long long>(max_applied_),
                    static_cast<long long>(server.commit_index()));
      violation(buf);
    }
    const uint64_t fp = server.store().fingerprint();
    if (!have_fp0) {
      fp0 = fp;
      have_fp0 = true;
    } else if (fp != fp0) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "replica %d store fingerprint diverges from replica 0", i);
      violation(buf);
    }
  }
}

}  // namespace praft::chaos
