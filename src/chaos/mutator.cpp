#include "chaos/mutator.h"

#include <algorithm>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "common/check.h"

namespace praft::chaos {

namespace {

/// Evolved schedules stay bounded: mutation can add events, but a run's
/// cost scales with its fault count, so coverage-per-run (the score) must
/// not be gamed by unbounded schedule growth.
constexpr size_t kMaxEvents = 12;

/// Upper bound on parsed event times (10 simulated minutes — far beyond
/// anything the generator or mutator emits). Without it a corrupted corpus
/// block can overflow the runner's `faults_end + sec(1)` deadline math into
/// a bogus instant green, or pre-register millions of sampler callbacks.
constexpr Time kMaxEventTime = sec(600);

std::string format(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

bool parse_u64_tok(const std::string& t, uint64_t* out) {
  if (t.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(t.c_str(), &end, 10);
  return end != t.c_str() && *end == '\0';
}

bool parse_i64_tok(const std::string& t, int64_t* out) {
  if (t.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(t.c_str(), &end, 10);
  return end != t.c_str() && *end == '\0';
}

bool parse_int_tok(const std::string& t, int* out) {
  int64_t wide = 0;
  if (!parse_i64_tok(t, &wide)) return false;
  if (wide < INT32_MIN || wide > INT32_MAX) return false;
  *out = static_cast<int>(wide);
  return true;
}

bool parse_double_tok(const std::string& t, double* out) {
  if (t.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(t.c_str(), &end);
  return end != t.c_str() && *end == '\0';
}

/// Re-establishes the generator postcondition after a mutation moved or
/// resized a window: length first (at least 50ms, at most the fault span),
/// then start, then end.
FaultEvent clamped(FaultEvent e, const ScheduleLimits& lim) {
  const Time span = lim.faults_until - lim.faults_from;  // > 0 by CHECK
  Duration len = e.to - e.from;
  len = std::max<Duration>(len, msec(50));
  len = std::min<Duration>(len, span);
  e.from = std::max(e.from, lim.faults_from);
  e.from = std::min<Time>(e.from, lim.faults_until - len);
  e.to = e.from + len;
  return e;
}

/// Draws a fresh random event inside the limits (the kAddEvent / kSwapKind
/// field source; structured like the generator's die but kind-uniform, so
/// mutation explores kinds the seed expansion under-samples).
FaultEvent random_event(Rng& rng, const ScheduleLimits& lim) {
  FaultEvent e;
  const int n = lim.num_replicas;
  const Time span = lim.faults_until - lim.faults_from;
  e.from = lim.faults_from +
           static_cast<Time>(rng.below(static_cast<uint64_t>(span)));
  e.to = e.from + msec(200) +
         static_cast<Duration>(rng.below(static_cast<uint64_t>(sec(3))));
  const uint64_t faces = lim.crash_restart ? 8 : 7;
  switch (rng.below(faces)) {
    case 0:
      e.kind = FaultEvent::Kind::kDropBurst;
      e.p = 0.1 + rng.uniform() * (lim.max_burst_drop - 0.1);
      break;
    case 1:
      e.kind = FaultEvent::Kind::kPartitionPair;
      e.a = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
      e.b = static_cast<int>(rng.below(static_cast<uint64_t>(n - 1)));
      if (e.b >= e.a) ++e.b;
      break;
    case 2:
      e.kind = FaultEvent::Kind::kIsolate;
      e.a = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
      break;
    case 3:
      e.kind = FaultEvent::Kind::kCrash;
      e.a = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
      break;
    case 4:
      e.kind = FaultEvent::Kind::kLeaderCrash;
      break;
    case 5:
      e.kind = FaultEvent::Kind::kLeaderIsolate;
      break;
    case 6:
      e.kind = FaultEvent::Kind::kLeaderMinority;
      break;
    default:
      e.kind = FaultEvent::Kind::kCrashRestart;
      e.a = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
      // Short downtime, like the generator: the interesting races are
      // losing unsynced state and rejoining mid-election.
      e.to = e.from + msec(100) +
             static_cast<Duration>(rng.below(static_cast<uint64_t>(sec(2))));
      break;
  }
  return clamped(e, lim);
}

size_t pick_index(Rng& rng, size_t size) {
  PRAFT_CHECK(size > 0);
  return static_cast<size_t>(rng.below(static_cast<uint64_t>(size)));
}

}  // namespace

std::string serialize_schedule(const Schedule& s,
                               const std::string& header_extra) {
  std::string out = "schedule ";
  if (!header_extra.empty()) {
    out += header_extra;
    out += ' ';
  }
  out += "{\n";
  out += format("  seed %llu\n", static_cast<unsigned long long>(s.seed));
  // %.17g round-trips any finite double exactly through strtod, and
  // re-printing the parsed value reproduces the same text — so
  // serialize -> parse -> serialize is the identity the corpus needs.
  out += format("  drop %.17g\n", s.drop_rate);
  out += format("  dup %.17g\n", s.duplicate_rate);
  out += format("  reorder %.17g\n", s.reorder_rate);
  out += format("  clients %d\n", s.clients_per_region);
  out += format("  read_fraction %.17g\n", s.workload.read_fraction);
  out += format("  conflict_rate %.17g\n", s.workload.conflict_rate);
  out += format("  num_records %llu\n",
                static_cast<unsigned long long>(s.workload.num_records));
  out += format("  value_size %u\n", s.workload.value_size);
  out += format("  partitions %d\n", s.workload.num_partitions);
  for (const FaultEvent& e : s.events) {
    out += format("  event %s a=%d b=%d p=%.17g from=%lld to=%lld\n",
                  to_string(e.kind), e.a, e.b, e.p,
                  static_cast<long long>(e.from),
                  static_cast<long long>(e.to));
  }
  out += "}\n";
  return out;
}

bool parse_schedule(const std::vector<std::string>& lines, size_t* pos,
                    Schedule* out, std::string* header_extra,
                    std::string* error) {
  const auto fail = [error](const std::string& msg) {
    *error = msg;
    return false;
  };
  const auto tokens_of = [](std::string line) {
    if (const size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::vector<std::string> toks;
    std::string t;
    while (ls >> t) toks.push_back(t);
    return toks;
  };

  if (*pos >= lines.size()) return fail("no schedule block at end of input");
  const std::vector<std::string> header = tokens_of(lines[*pos]);
  if (header.empty() || header.front() != "schedule" ||
      header.back() != "{") {
    return fail("schedule block must open with 'schedule [extras] {'");
  }
  header_extra->clear();
  for (size_t i = 1; i + 1 < header.size(); ++i) {
    if (!header_extra->empty()) *header_extra += ' ';
    *header_extra += header[i];
  }

  Schedule s;
  bool closed = false;
  for (++*pos; *pos < lines.size(); ++*pos) {
    const std::vector<std::string> toks = tokens_of(lines[*pos]);
    if (toks.empty()) continue;
    if (toks[0] == "}") {
      closed = true;
      ++*pos;
      break;
    }
    if (toks[0] == "event") {
      if (toks.size() < 2) return fail("event line without a kind");
      FaultEvent e;
      if (!kind_from_string(toks[1], &e.kind)) {
        return fail("unknown fault kind '" + toks[1] + "'");
      }
      for (size_t i = 2; i < toks.size(); ++i) {
        const size_t eq = toks[i].find('=');
        if (eq == std::string::npos) {
          return fail("malformed event field '" + toks[i] + "'");
        }
        const std::string key = toks[i].substr(0, eq);
        const std::string val = toks[i].substr(eq + 1);
        bool ok = false;
        if (key == "a") {
          ok = parse_int_tok(val, &e.a);
        } else if (key == "b") {
          ok = parse_int_tok(val, &e.b);
        } else if (key == "p") {
          ok = parse_double_tok(val, &e.p);
        } else if (key == "from") {
          ok = parse_i64_tok(val, &e.from);
        } else if (key == "to") {
          ok = parse_i64_tok(val, &e.to);
        } else {
          return fail("unknown event field '" + key + "'");
        }
        if (!ok) return fail("bad value in event field '" + toks[i] + "'");
      }
      if (e.from < 0 || e.to <= e.from || e.to > kMaxEventTime) {
        return fail("event '" + toks[1] +
                    "' has an invalid window (need 0 <= from < to <= " +
                    std::to_string(kMaxEventTime) + "us)");
      }
      if (e.a < -1 || e.b < -1) {
        return fail("event '" + toks[1] + "' has a negative replica index");
      }
      s.events.push_back(e);
      continue;
    }
    if (toks.size() != 2) {
      return fail("expected 'key value' in schedule block, got '" + toks[0] +
                  "'");
    }
    const std::string& key = toks[0];
    const std::string& val = toks[1];
    bool ok = false;
    if (key == "seed") {
      ok = parse_u64_tok(val, &s.seed);
    } else if (key == "drop") {
      ok = parse_double_tok(val, &s.drop_rate);
    } else if (key == "dup") {
      ok = parse_double_tok(val, &s.duplicate_rate);
    } else if (key == "reorder") {
      ok = parse_double_tok(val, &s.reorder_rate);
    } else if (key == "clients") {
      ok = parse_int_tok(val, &s.clients_per_region);
    } else if (key == "read_fraction") {
      ok = parse_double_tok(val, &s.workload.read_fraction);
    } else if (key == "conflict_rate") {
      ok = parse_double_tok(val, &s.workload.conflict_rate);
    } else if (key == "num_records") {
      ok = parse_u64_tok(val, &s.workload.num_records);
    } else if (key == "value_size") {
      uint64_t wide = 0;
      ok = parse_u64_tok(val, &wide) && wide <= UINT32_MAX;
      if (ok) s.workload.value_size = static_cast<uint32_t>(wide);
    } else if (key == "partitions") {
      ok = parse_int_tok(val, &s.workload.num_partitions);
    } else {
      return fail("unknown schedule key '" + key + "'");
    }
    if (!ok) return fail("bad value for schedule key '" + key + "'");
  }
  if (!closed) return fail("schedule block never closed with '}'");
  if (s.events.empty()) return fail("schedule block has no events");
  *out = s;
  return true;
}

Schedule apply_mutation(const Schedule& s, MutationOp op, Rng& rng,
                        const ScheduleLimits& limits) {
  PRAFT_CHECK(limits.faults_until > limits.faults_from);
  PRAFT_CHECK(limits.num_replicas >= 2);
  Schedule m = s;
  if (m.events.empty()) m.events.push_back(random_event(rng, limits));
  switch (op) {
    case MutationOp::kShiftWindow: {
      FaultEvent& e = m.events[pick_index(rng, m.events.size())];
      const Duration delta = static_cast<Duration>(rng.range(-sec(2), sec(2)));
      e.from += delta;
      e.to += delta;
      e = clamped(e, limits);
      break;
    }
    case MutationOp::kStretchWindow: {
      FaultEvent& e = m.events[pick_index(rng, m.events.size())];
      const double factor = 0.5 + 1.5 * rng.uniform();
      e.to = e.from + static_cast<Duration>(
                          static_cast<double>(e.to - e.from) * factor);
      e = clamped(e, limits);
      break;
    }
    case MutationOp::kSplitWindow: {
      const size_t i = pick_index(rng, m.events.size());
      const FaultEvent orig = m.events[i];
      const Duration len = orig.to - orig.from;
      const Time mid =
          orig.from + static_cast<Duration>(
                          static_cast<double>(len) *
                          (0.3 + 0.4 * rng.uniform()));
      FaultEvent first = orig;
      first.to = mid;
      FaultEvent second = orig;
      second.from = mid + msec(100);  // a gap: heal, then fault again
      if (m.events.size() >= kMaxEvents) {
        m.events[i] = clamped(first, limits);
      } else {
        m.events[i] = clamped(first, limits);
        m.events.insert(m.events.begin() + static_cast<ptrdiff_t>(i) + 1,
                        clamped(second, limits));
      }
      break;
    }
    case MutationOp::kSwapKind: {
      const size_t i = pick_index(rng, m.events.size());
      const FaultEvent fresh = random_event(rng, limits);
      FaultEvent& e = m.events[i];
      e.kind = fresh.kind;
      e.a = fresh.a;
      e.b = fresh.b;
      e.p = fresh.p;
      e = clamped(e, limits);
      break;
    }
    case MutationOp::kRetargetReplica: {
      // Only node-targeted events carry a victim; if this schedule has
      // none, perturb the rates instead (still deterministic).
      std::vector<size_t> targeted;
      for (size_t i = 0; i < m.events.size(); ++i) {
        if (m.events[i].a >= 0) targeted.push_back(i);
      }
      if (targeted.empty()) {
        return apply_mutation(m, MutationOp::kPerturbRates, rng, limits);
      }
      const int n = limits.num_replicas;
      FaultEvent& e = m.events[targeted[pick_index(rng, targeted.size())]];
      e.a = static_cast<int>(rng.below(static_cast<uint64_t>(n)));
      if (e.kind == FaultEvent::Kind::kPartitionPair) {
        e.b = static_cast<int>(rng.below(static_cast<uint64_t>(n - 1)));
        if (e.b >= e.a) ++e.b;
      }
      break;
    }
    case MutationOp::kPerturbRates: {
      if (rng.chance(0.5)) m.drop_rate = rng.uniform() * limits.max_drop_rate;
      if (rng.chance(0.5)) {
        m.duplicate_rate = rng.uniform() * limits.max_duplicate_rate;
      }
      if (rng.chance(0.5)) {
        m.reorder_rate = rng.uniform() * limits.max_reorder_rate;
      }
      break;
    }
    case MutationOp::kPerturbWorkload: {
      if (rng.chance(0.5)) {
        m.workload.read_fraction = 0.3 + rng.uniform() * 0.6;
      }
      if (rng.chance(0.5)) m.workload.conflict_rate = rng.uniform() * 0.2;
      if (rng.chance(0.3)) {
        m.clients_per_region = static_cast<int>(rng.range(1, 2));
      }
      break;
    }
    case MutationOp::kAddEvent: {
      if (m.events.size() >= kMaxEvents) {
        return apply_mutation(m, MutationOp::kDropEvent, rng, limits);
      }
      m.events.push_back(random_event(rng, limits));
      break;
    }
    case MutationOp::kDropEvent: {
      if (m.events.size() <= 1) {
        return apply_mutation(m, MutationOp::kShiftWindow, rng, limits);
      }
      m.events.erase(m.events.begin() +
                     static_cast<ptrdiff_t>(pick_index(rng, m.events.size())));
      break;
    }
    case MutationOp::kReseed: {
      m.seed = rng.next();
      break;
    }
  }
  return m;
}

Schedule mutate_schedule(const Schedule& s, Rng& rng,
                         const ScheduleLimits& limits) {
  // Weighted operator die: window surgery dominates (that is where rare
  // interleavings live), reseed stays rare (it jumps the whole timing
  // stream — diversity injection, not refinement).
  struct Face {
    MutationOp op;
    uint64_t weight;
  };
  static constexpr Face kFaces[] = {
      {MutationOp::kShiftWindow, 3},     {MutationOp::kStretchWindow, 2},
      {MutationOp::kSplitWindow, 2},     {MutationOp::kSwapKind, 2},
      {MutationOp::kRetargetReplica, 2}, {MutationOp::kPerturbRates, 2},
      {MutationOp::kPerturbWorkload, 1}, {MutationOp::kAddEvent, 2},
      {MutationOp::kDropEvent, 1},       {MutationOp::kReseed, 1},
  };
  uint64_t total = 0;
  for (const Face& f : kFaces) total += f.weight;
  Schedule m = s;
  const int ops = 1 + (rng.chance(0.3) ? 1 : 0);
  for (int k = 0; k < ops; ++k) {
    uint64_t roll = rng.below(total);
    for (const Face& f : kFaces) {
      if (roll < f.weight) {
        m = apply_mutation(m, f.op, rng, limits);
        break;
      }
      roll -= f.weight;
    }
  }
  return m;
}

Schedule splice_schedules(const Schedule& a, const Schedule& b, Rng& rng,
                          const ScheduleLimits& limits) {
  PRAFT_CHECK(limits.faults_until > limits.faults_from);
  Schedule child = a;
  if (rng.chance(0.5)) child.seed = b.seed;
  if (rng.chance(0.5)) child.drop_rate = b.drop_rate;
  if (rng.chance(0.5)) child.duplicate_rate = b.duplicate_rate;
  if (rng.chance(0.5)) child.reorder_rate = b.reorder_rate;
  if (rng.chance(0.5)) child.workload = b.workload;
  if (rng.chance(0.5)) child.clients_per_region = b.clients_per_region;
  child.events.clear();
  for (const FaultEvent& e : a.events) {
    if (rng.chance(0.6)) child.events.push_back(clamped(e, limits));
  }
  for (const FaultEvent& e : b.events) {
    if (rng.chance(0.4)) child.events.push_back(clamped(e, limits));
  }
  if (child.events.empty()) {
    const Schedule& donor = a.events.empty() ? b : a;
    if (donor.events.empty()) {
      child.events.push_back(random_event(rng, limits));
    } else {
      child.events.push_back(clamped(donor.events.front(), limits));
    }
  }
  if (child.events.size() > kMaxEvents) child.events.resize(kMaxEvents);
  // Events interleave chronologically in the simulator anyway; keep them
  // sorted by window start so spliced schedules read (and dedupe) sanely.
  std::stable_sort(child.events.begin(), child.events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.from < y.from;
                   });
  return child;
}

namespace {

std::string candidate_key(const EvolveCandidate& c) {
  return c.protocol + '\n' + serialize_schedule(c.schedule);
}

/// Top-k selection stratified by protocol: round-robin over each protocol's
/// own score-desc ranking (protocols ordered by their best candidate).
/// Raw coverage scores are not comparable across protocols — Mencius
/// revocations alone would monopolize a flat top-k under --protocol=all —
/// while the paper's parallelism claim is exactly that one protocol's rare
/// interleavings are worth keeping for the others. `archive` must already
/// be score-desc; returns up to k archive indices.
std::vector<size_t> select_population(
    const std::vector<EvolveCandidate>& archive, size_t k) {
  std::vector<std::string> order;  // protocols by best-candidate rank
  std::vector<std::vector<size_t>> groups;
  for (size_t i = 0; i < archive.size(); ++i) {
    size_t g = 0;
    while (g < order.size() && order[g] != archive[i].protocol) ++g;
    if (g == order.size()) {
      order.push_back(archive[i].protocol);
      groups.emplace_back();
    }
    groups[g].push_back(i);
  }
  std::vector<size_t> out;
  const size_t want = std::min(k, archive.size());
  for (size_t round = 0; out.size() < want; ++round) {
    for (size_t g = 0; g < groups.size() && out.size() < want; ++g) {
      if (round < groups[g].size()) out.push_back(groups[g][round]);
    }
  }
  return out;
}

double mean_of(const std::vector<EvolveCandidate>& archive,
               const std::vector<size_t>& picks) {
  if (picks.empty()) return 0.0;
  uint64_t sum = 0;
  for (const size_t i : picks) sum += archive[i].score;
  return static_cast<double>(sum) / static_cast<double>(picks.size());
}

}  // namespace

EvolveStats evolve(const EvolveOptions& opt,
                   std::vector<EvolveCandidate> seeds) {
  PRAFT_CHECK(opt.generations >= 1);
  PRAFT_CHECK(opt.population >= 2);
  PRAFT_CHECK(opt.elite >= 1 && opt.elite < opt.population);
  PRAFT_CHECK(!opt.protocols.empty());
  const size_t population = static_cast<size_t>(opt.population);
  const ScheduleLimits limits = effective_limits(opt.base);
  // Decorrelated from both the schedule-expansion RNG and the cluster RNG;
  // fixed so evolution is a pure function of (opt, seeds).
  Rng rng(opt.rng_seed ^ 0x5eedf00dcafe17ULL);

  EvolveStats stats;
  std::vector<EvolveCandidate> archive;  // score-desc, deduped
  std::set<std::string> seen;

  const auto evaluate = [&](EvolveCandidate cand) {
    RunOptions run = opt.base;
    run.protocol = cand.protocol;
    run.schedule = cand.schedule;
    run.seed = cand.schedule.seed;
    const RunResult r = run_one(run);
    ++stats.runs;
    if (!r.ok) {
      stats.failures.push_back(r);
      stats.failed_candidates.push_back(std::move(cand));
      return;
    }
    cand.score = coverage_score(r);
    if (seen.insert(candidate_key(cand)).second) {
      archive.push_back(std::move(cand));
    }
  };
  const auto resort = [&archive] {
    std::stable_sort(archive.begin(), archive.end(),
                     [](const EvolveCandidate& x, const EvolveCandidate& y) {
                       return x.score > y.score;
                     });
  };

  // Generation 0: the replayed corpus — ALL of it, a corpus bigger than the
  // population must not silently lose its tail — plus fresh random
  // schedules up to the population size.
  for (EvolveCandidate& seed : seeds) evaluate(std::move(seed));
  for (size_t i = seeds.size(); i < population; ++i) {
    EvolveCandidate cand;
    cand.protocol = opt.protocols[pick_index(rng, opt.protocols.size())];
    cand.schedule = generate_schedule(rng.next(), limits);
    evaluate(std::move(cand));
  }
  resort();
  stats.generation_mean.push_back(
      mean_of(archive, select_population(archive, population)));

  for (int gen = 1; gen <= opt.generations && !archive.empty(); ++gen) {
    const std::vector<size_t> elites =
        select_population(archive, static_cast<size_t>(opt.elite));
    const size_t offspring = population - static_cast<size_t>(opt.elite);
    for (size_t k = 0; k < offspring; ++k) {
      const size_t pi = elites[pick_index(rng, elites.size())];
      const EvolveCandidate& parent = archive[pi];
      EvolveCandidate child;
      child.protocol = parent.protocol;
      if (elites.size() >= 2 && rng.chance(0.3)) {
        size_t qi = pick_index(rng, elites.size() - 1);
        if (elites[qi] == pi) ++qi;
        child.schedule = splice_schedules(parent.schedule,
                                          archive[elites[qi]].schedule, rng,
                                          limits);
      } else {
        child.schedule = mutate_schedule(parent.schedule, rng, limits);
      }
      // Rare cross-protocol hop: the paper's parallelism claim says a rare
      // interleaving found under one protocol stresses the others too.
      if (opt.protocols.size() >= 2 && rng.chance(0.15)) {
        child.protocol = opt.protocols[pick_index(rng, opt.protocols.size())];
      }
      evaluate(std::move(child));
    }
    resort();
    stats.generation_mean.push_back(
        mean_of(archive, select_population(archive, population)));
  }

  std::vector<EvolveCandidate> final_pop;
  for (const size_t i : select_population(archive, population)) {
    final_pop.push_back(archive[i]);
  }
  std::stable_sort(final_pop.begin(), final_pop.end(),
                   [](const EvolveCandidate& x, const EvolveCandidate& y) {
                     return x.score > y.score;
                   });
  stats.population = std::move(final_pop);
  std::vector<size_t> all(stats.population.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  stats.mean_score = mean_of(stats.population, all);
  stats.best_score =
      stats.population.empty() ? 0 : stats.population.front().score;
  return stats;
}

}  // namespace praft::chaos
