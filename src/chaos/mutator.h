#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/runner.h"
#include "chaos/schedule_gen.h"
#include "common/rng.h"

namespace praft::chaos {

// ---------------------------------------------------------------------------
// Schedule <-> text. A mutated schedule is no longer expressible as a seed,
// so the corpus format grows "schedule { ... }" blocks alongside the bare
// "<protocol> <seed> [flags]" lines of the --seed-file format:
//
//   schedule raft --restarts {
//     seed 42
//     drop 0.0123...          # doubles print with %.17g and round-trip exactly
//     dup 0
//     reorder 0
//     clients 1
//     read_fraction 0.45...
//     conflict_rate 0.05...
//     num_records 64
//     value_size 8
//     partitions 1
//     event leader_crash a=-1 b=-1 p=0 from=2100000 to=2900000
//     event crash_restart a=3 b=-1 p=0 from=2400000 to=3100000
//   }
//
// Tokens between "schedule" and "{" (the header extras — protocol name and
// per-run flags in the corpus) are opaque to this layer; from/to are in
// simulated microseconds. serialize -> parse -> serialize is the identity.
// ---------------------------------------------------------------------------

/// Serializes `s` as one "schedule [header_extra] { ... }" block.
[[nodiscard]] std::string serialize_schedule(const Schedule& s,
                                             const std::string& header_extra =
                                                 "");

/// Parses one block from `lines` starting at `*pos` (which must index the
/// "schedule ... {" opener; '#' comments are stripped). On success advances
/// `*pos` past the closing "}", fills `*out` and `*header_extra`, and
/// returns true; on failure returns false with a message in `*error`.
[[nodiscard]] bool parse_schedule(const std::vector<std::string>& lines,
                                  size_t* pos, Schedule* out,
                                  std::string* header_extra,
                                  std::string* error);

// ---------------------------------------------------------------------------
// Mutation operators. Each is a pure function of (input schedules, the
// explicit RNG state, limits): evolved runs stay exactly as deterministic
// as seed-expanded ones. Every emitted event is re-clamped to the
// generator's postcondition (faults_from <= from < to <= faults_until).
// ---------------------------------------------------------------------------

enum class MutationOp {
  kShiftWindow,      // slide one fault window earlier/later
  kStretchWindow,    // scale one window's length by 0.5x-2x
  kSplitWindow,      // replace one window with two sub-windows + a gap
  kSwapKind,         // re-roll one event's fault kind (re-drawing fields)
  kRetargetReplica,  // re-draw the victim replica (and partition peer)
  kPerturbRates,     // jitter whole-run drop/dup/reorder rates
  kPerturbWorkload,  // jitter read fraction / conflict rate / client count
  kAddEvent,         // insert one fresh random event
  kDropEvent,        // remove one event (never below one)
  kReseed,           // re-draw the cluster RNG seed (timing-stream jump)
};

/// Applies one specific operator. Exposed for targeted tests; evolution
/// uses the weighted dispatcher below.
[[nodiscard]] Schedule apply_mutation(const Schedule& s, MutationOp op,
                                      Rng& rng, const ScheduleLimits& limits);

/// One mutation step: picks 1-2 weighted random operators and applies them.
[[nodiscard]] Schedule mutate_schedule(const Schedule& s, Rng& rng,
                                       const ScheduleLimits& limits);

/// Crossover: a child drawing its network/workload knobs from either parent
/// and splicing fault events from both.
[[nodiscard]] Schedule splice_schedules(const Schedule& a, const Schedule& b,
                                        Rng& rng,
                                        const ScheduleLimits& limits);

// ---------------------------------------------------------------------------
// Coverage-guided evolution: seed a population from random schedules (plus
// any replayed corpus), score each run with the harness's coverage counters,
// and keep/mutate the top scorers for N generations.
// ---------------------------------------------------------------------------

struct EvolveCandidate {
  std::string protocol;
  Schedule schedule;
  uint64_t score = 0;  // coverage_score of its run (filled by evolve)
};

struct EvolveOptions {
  int generations = 4;
  /// Candidates evaluated per generation (later generations = elites +
  /// their offspring). Generation 0 evaluates ALL corpus seeds, topped up
  /// with fresh random schedules to at least this size.
  int population = 16;
  /// Top-of-archive survivors bred each generation. Must be < population.
  int elite = 4;
  /// Seeds the evolution RNG (selection, operator choice, fresh schedules).
  uint64_t rng_seed = 1;
  /// Protocol pool for fresh random candidates (offspring mostly inherit
  /// their parent's protocol, with a small cross-protocol re-roll chance —
  /// the paper's parallelism means a rare interleaving found under one
  /// protocol is worth trying on the others).
  std::vector<std::string> protocols{"raft"};
  /// Flag/limit template every run executes under (protocol/seed/schedule
  /// fields are overridden per candidate).
  RunOptions base;
};

struct EvolveStats {
  uint64_t runs = 0;  // total run_one invocations (the comparison budget)
  /// Top-`population` candidates ever seen (the elite archive), score-desc,
  /// deduped by (protocol, serialized schedule). This is what --corpus-out
  /// persists.
  std::vector<EvolveCandidate> population;
  /// Mean/best coverage score of `population`.
  double mean_score = 0.0;
  uint64_t best_score = 0;
  /// Archive mean after each generation (index 0 = the random gen-0 batch),
  /// so callers can print the learning curve.
  std::vector<double> generation_mean;
  /// Invariant-violating runs encountered while evolving (an evolved
  /// schedule that breaks a protocol is a find, not a breeding candidate).
  /// `failed_candidates[i]` is the exact (protocol, schedule) that produced
  /// `failures[i]` — what --failures-out persists for replay.
  std::vector<RunResult> failures;
  std::vector<EvolveCandidate> failed_candidates;
};

/// Runs the evolution loop. Deterministic for fixed (opt, seeds).
[[nodiscard]] EvolveStats evolve(const EvolveOptions& opt,
                                 std::vector<EvolveCandidate> seeds);

}  // namespace praft::chaos
