#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "kv/workload.h"

namespace praft::chaos {

/// One randomized fault in a schedule. Node-targeted kinds carry concrete
/// replica indices decided at generation time; leader-targeted kinds resolve
/// their victim when the window opens (whoever leads the cluster right then),
/// which is still deterministic for a fixed seed.
struct FaultEvent {
  enum class Kind {
    kDropBurst,       // raise the message drop probability to `p`
    kPartitionPair,   // cut the link between replicas a and b
    kIsolate,         // cut replica a off from everyone
    kCrash,           // replica a neither sends nor receives
    kLeaderCrash,     // crash whoever leads at `from`
    kLeaderIsolate,   // isolate whoever leads at `from`
    kLeaderMinority,  // pen the leader in with exactly one peer: the other
                      // n-2 replicas form a majority and re-elect while the
                      // penned pair can still talk — the canonical scenario
                      // a "commit on n/2 acks" bug cannot survive
    kCrashRestart,    // destroy replica a's node object at `from` (volatile
                      // state gone, unsynced durable writes lost) and rebuild
                      // it from its durable image at `to` — the classic
                      // crash/recover failure mode, unreachable by kCrash's
                      // fail-silent window
  };

  Kind kind = Kind::kDropBurst;
  int a = -1;        // replica index (kPartitionPair/kIsolate/kCrash)
  int b = -1;        // replica index (kPartitionPair)
  double p = 0.0;    // drop probability (kDropBurst)
  Time from = 0;     // window [from, to)
  Time to = 0;

  [[nodiscard]] std::string describe() const;
};

/// Stable textual name of a fault kind (the corpus serialization format and
/// `describe()` both use it); `kind_from_string` is its inverse.
[[nodiscard]] const char* to_string(FaultEvent::Kind k);
[[nodiscard]] bool kind_from_string(const std::string& name,
                                    FaultEvent::Kind* out);

/// Everything one uint64 seed determines about a chaos run besides the
/// cluster itself: whole-run network chaos knobs, timed fault windows, and
/// the client workload.
struct Schedule {
  uint64_t seed = 0;
  double drop_rate = 0.0;        // whole-run background loss
  double duplicate_rate = 0.0;   // whole-run duplication
  double reorder_rate = 0.0;     // whole-run reordering
  std::vector<FaultEvent> events;
  kv::WorkloadConfig workload;
  int clients_per_region = 1;

  [[nodiscard]] std::string describe() const;
};

/// Bounds for schedule generation. Fault windows fall inside
/// [faults_from, faults_until); everything after `faults_until` is
/// fault-free so the cluster can re-converge before invariants are
/// finalized.
struct ScheduleLimits {
  int num_replicas = 5;
  Time faults_from = sec(2);
  Time faults_until = sec(12);
  int min_events = 2;
  int max_events = 6;
  Duration min_window = msec(300);
  Duration max_window = sec(4);
  double max_drop_rate = 0.03;
  // Duplication/reordering get triple the loss budget: they are exactly the
  // faults that unwind the replication pipeline's in-flight window (stale
  // and out-of-order acks), and the coverage score rewards schedules that
  // force those rollbacks.
  double max_duplicate_rate = 0.15;
  double max_reorder_rate = 0.15;
  double max_burst_drop = 0.5;
  /// Adds one guaranteed kLeaderMinority window early in the fault phase
  /// (the chaos runner sets this in bug-hunting mode so an injected quorum
  /// bug is exercised on every seed, not only when the dice cooperate).
  bool add_minority_window = false;
  /// Enables kCrashRestart events in the random mix (off by default so
  /// schedules generated before the durability layer stay bit-identical).
  bool crash_restart = false;
  /// Adds this many guaranteed (leader-crash, crash-restart) pairs: the
  /// leader crash forces an election, and a random replica crash-restarts
  /// mid-churn — prime territory for missing-fsync-before-vote bugs (the
  /// unsafe_skip_vote_fsync hunt arms this so every seed exercises it).
  int forced_crash_restarts = 0;
};

/// Expands `seed` into a full randomized schedule (pure function of
/// (seed, limits)). Postcondition: every emitted event satisfies
/// `faults_from <= from < to <= faults_until` — guaranteed-fault knobs that
/// would not fit the window (e.g. a forced crash-restart pair landing past
/// `faults_until`) are skipped rather than clamped into inverted windows.
[[nodiscard]] Schedule generate_schedule(uint64_t seed,
                                         const ScheduleLimits& limits = {});

}  // namespace praft::chaos
