#pragma once

#include <algorithm>
#include <functional>
#include <utility>

#include "common/check.h"
#include "consensus/log.h"
#include "consensus/types.h"
#include "storage/persister.h"
#include "storage/wal.h"

namespace praft::consensus {

/// Shared durability plumbing for contiguous-log protocols (Raft, Raft*) —
/// the glue between ContiguousLog's persistence hooks and the per-node
/// storage::Persister, kept in the runtime layer so each protocol's node.cpp
/// holds only its genuine delta:
///
///  * every log append/truncate is mirrored into the write-ahead log;
///  * durable_index() is the highest log index a completed fsync covers —
///    the ONLY prefix a leader may count itself for in commit quorums. A
///    truncation-generation guard keeps a barrier armed before a
///    conflict-suffix erasure from overstating coverage afterwards;
///  * replay() rebuilds the log from a DurableImage on crash recovery
///    (snapshot reset + contiguous WAL suffix), muting its own hooks so the
///    already-durable records are not re-staged.
///
/// `E` must be an aggregate of {Term term; kv::Command cmd} (both Raft
/// entry types are).
template <typename E>
class DurableLogMirror {
 public:
  DurableLogMirror(storage::Persister& persister, ContiguousLog<E>& log)
      : persister_(persister), log_(log) {
    log_.set_persistence(
        [this](LogIndex i, const E& e) {
          if (muted_) return;
          storage::WalRecord r;
          r.index = i;
          r.term = e.term;
          r.has_value = true;
          r.cmd = e.cmd;
          persister_.record(std::move(r));
        },
        [this](LogIndex last_kept) {
          if (muted_) return;
          persister_.truncate_after(last_kept);
          // Entries above last_kept are gone; any in-flight durability
          // barrier for them is obsolete (generation guard below).
          ++gen_;
          durable_index_ = std::min(durable_index_, last_kept);
          hwm_ = std::min(hwm_, last_kept);
        });
  }

  /// Arms a durability barrier for everything appended so far; when the
  /// covering fsync completes, durable_index() advances and `on_durable`
  /// runs (leaders re-count commit quorums there). Coalesces: at most one
  /// barrier per high-water mark.
  void note_appended(std::function<void()> on_durable) {
    const LogIndex target = log_.last_index();
    if (target <= hwm_) return;
    hwm_ = target;
    persister_.barrier(
        [this, target, gen = gen_, on_durable = std::move(on_durable)] {
          if (gen != gen_) return;  // truncated since; a fresh barrier covers
          durable_index_ = std::max(durable_index_, target);
          if (on_durable) on_durable();
        });
  }

  /// Highest log index covered by a completed fsync (== last_index() under
  /// diskless or zero-cost storage, where barriers clear inline).
  [[nodiscard]] LogIndex durable_index() const { return durable_index_; }

  /// Crash recovery: rebuilds the in-memory log from the durable image —
  /// the snapshot stands in for everything at or below its floor, the WAL
  /// suffix replays contiguously above it. The caller restores its hard
  /// state and installs img.snap into its Applier itself.
  storage::RecoveryStats replay(const storage::DurableImage& img) {
    PRAFT_CHECK_MSG(log_.last_index() == 0,
                    "WAL replay must run on a fresh log");
    muted_ = true;
    storage::RecoveryStats stats;
    stats.recovered = true;
    if (img.snap.valid()) {
      log_.reset_to(img.snap.last_index, E{img.snap.last_term, {}});
      stats.snapshot_floor = img.snap.last_index;
    }
    for (const storage::WalRecord& r : img.records) {
      PRAFT_CHECK_MSG(r.index == log_.last_index() + 1,
                      "WAL replay must be contiguous above the snapshot");
      log_.append(E{r.term, r.cmd});
      ++stats.replayed;
    }
    stats.wal_tail = std::max(stats.snapshot_floor, log_.last_index());
    // Everything just replayed IS the durable log.
    durable_index_ = log_.last_index();
    hwm_ = log_.last_index();
    muted_ = false;
    return stats;
  }

 private:
  storage::Persister& persister_;
  ContiguousLog<E>& log_;
  LogIndex durable_index_ = 0;
  LogIndex hwm_ = 0;     // highest index with a barrier armed
  uint64_t gen_ = 0;     // bumped on truncation; stale barriers no-op
  bool muted_ = false;   // replay() mutes its own re-staging
};

}  // namespace praft::consensus
