#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "consensus/env.h"
#include "consensus/timing.h"

namespace praft::consensus {

/// The `batch_delay` submission coalescer shared by every leader in the
/// repo: submissions within one delay window ride a single replication
/// message (etcd-style batching, cf. the paper's §5 testbed). poke() arms at
/// most one pending flush; the flush callback runs once after the delay with
/// everything that accumulated in the meantime.
///
/// The protocol keeps its own typed pending queue (Raft appends straight to
/// its log; Paxos queues commands; Mencius queues OwnItems + skip ranges) —
/// what is shared is the scheduling discipline, plus two byte-aware policies
/// fed by the exact wire sizes the flat codec gives us:
///
///  * Byte-budget flush (batch_flush_bytes): add_pending(bytes) accounts the
///    encoded size of queued submissions; when the pending batch crosses the
///    budget the flush is expedited to the next event-loop turn instead of
///    waiting out the delay.
///  * Adaptive delay (batch_adaptive, AIMD): flushed bytes count as
///    in-flight until the protocol reports progress via note_acked(); while
///    in-flight bytes exceed the window the effective delay doubles (up to
///    batch_delay_max — bigger, rarer batches under congestion), and it
///    decays additively toward batch_delay_min when the pipe drains.
///
/// Armed flushes are epoch-guarded: cancel() invalidates every scheduled
/// flush, so a leader deposed (or a node crashed and restarted) between
/// arming and firing cannot flush against stale state — Env timers cannot be
/// revoked, so the guard is the only thing standing between a stale closure
/// and a deposed leader's pending queue.
class Batcher {
 public:
  using FlushFn = std::function<void()>;

  Batcher(Env& env, Duration delay, FlushFn flush)
      : env_(env), flush_(std::move(flush)), cur_delay_(delay) {
    opt_.batch_delay = delay;
  }
  Batcher(Env& env, const TimingOptions& opt, FlushFn flush)
      : env_(env), opt_(opt), flush_(std::move(flush)),
        cur_delay_(opt.batch_delay) {}

  /// Schedules a flush after the batch delay unless one is already pending.
  void poke() {
    if (scheduled_) return;
    scheduled_ = true;
    arm(cur_delay_);
  }

  /// Accounts `bytes` of encoded wire size for a queued submission and
  /// arms/expedites the flush: past the byte budget the delay timer is
  /// abandoned (epoch bump) and the flush re-armed for the next event-loop
  /// turn.
  void add_pending(size_t bytes) {
    pending_bytes_ += bytes;
    const bool over = opt_.batch_flush_bytes > 0 &&
                      pending_bytes_ >= opt_.batch_flush_bytes;
    if (scheduled_) {
      if (over && !expedited_) {
        ++epoch_;  // orphan the armed delay timer
        expedited_ = true;
        ++expedited_count_;
        arm(0);
      }
      return;
    }
    scheduled_ = true;
    if (over) {
      expedited_ = true;
      ++expedited_count_;
      arm(0);
    } else {
      arm(cur_delay_);
    }
  }

  /// True when the leader may accept another submission: below the
  /// batch_backpressure_bytes cap on pending + in-flight bytes (or the cap
  /// is disabled). Protocols consult this before queueing a client command —
  /// a full pipe turns submit() into a temporary -1 (the same "not now"
  /// answer a non-leader gives), which the harness already retries, so a
  /// slow follower stalls clients instead of bloating leader memory.
  [[nodiscard]] bool can_accept() const {
    return opt_.batch_backpressure_bytes == 0 ||
           pending_bytes_ + inflight_bytes_ < opt_.batch_backpressure_bytes;
  }

  /// Invalidates every armed flush (deposed leader / crashed node): already
  /// scheduled closures become no-ops when they fire. In-flight accounting
  /// resets too — the reign whose flushes we were tracking is over, and a
  /// stale in-flight count must not wedge can_accept() for a later reign.
  void cancel() {
    ++epoch_;
    scheduled_ = false;
    expedited_ = false;
    pending_bytes_ = 0;
    inflight_bytes_ = 0;
  }

  /// Progress report from the protocol's commit/chosen/decide path: `bytes`
  /// of previously flushed data are no longer in flight. Clamped — losing
  /// count to a snapshot-covered range must not wedge the controller.
  void note_acked(size_t bytes) {
    inflight_bytes_ -= std::min(bytes, inflight_bytes_);
    if (opt_.batch_adaptive && inflight_bytes_ <= inflight_window()) {
      // Additive decrease toward the floor: the pipe is draining, so pay
      // less latency per batch.
      cur_delay_ = std::max(opt_.batch_delay_min, cur_delay_ - 1);
    }
  }

  [[nodiscard]] bool pending() const { return scheduled_; }
  [[nodiscard]] Duration delay() const { return cur_delay_; }
  [[nodiscard]] size_t pending_bytes() const { return pending_bytes_; }
  [[nodiscard]] size_t inflight_bytes() const { return inflight_bytes_; }
  [[nodiscard]] uint64_t flushes() const { return flush_count_; }
  [[nodiscard]] uint64_t expedited_flushes() const { return expedited_count_; }

 private:
  void arm(Duration delay) {
    const uint64_t epoch = epoch_;
    env_.schedule(delay, [this, epoch] {
      if (epoch != epoch_) return;  // cancelled or superseded by an expedite
      scheduled_ = false;
      expedited_ = false;
      const size_t batch = pending_bytes_;
      pending_bytes_ = 0;
      inflight_bytes_ += batch;
      ++flush_count_;
      adapt();
      flush_();
    });
  }

  void adapt() {
    if (!opt_.batch_adaptive) return;
    if (inflight_bytes_ > inflight_window()) {
      // Multiplicative increase of the delay under congestion: halve the
      // flush rate, double the batch.
      cur_delay_ = std::min(opt_.batch_delay_max,
                            std::max<Duration>(cur_delay_ * 2, 1));
    }
  }

  [[nodiscard]] size_t inflight_window() const {
    return opt_.batch_inflight_window > 0 ? opt_.batch_inflight_window
                                          : 4 * opt_.batch_flush_bytes;
  }

  Env& env_;
  TimingOptions opt_;
  FlushFn flush_;
  Duration cur_delay_;
  uint64_t epoch_ = 0;
  bool scheduled_ = false;
  bool expedited_ = false;
  size_t pending_bytes_ = 0;
  size_t inflight_bytes_ = 0;
  uint64_t flush_count_ = 0;
  uint64_t expedited_count_ = 0;
};

}  // namespace praft::consensus
