#pragma once

#include <functional>
#include <utility>

#include "consensus/env.h"

namespace praft::consensus {

/// The `batch_delay` submission coalescer shared by every leader in the
/// repo: submissions within one delay window ride a single replication
/// message (etcd-style batching, cf. the paper's §5 testbed). poke() arms at
/// most one pending flush; the flush callback runs once after the delay with
/// everything that accumulated in the meantime.
///
/// The protocol keeps its own typed pending queue (Raft appends straight to
/// its log; Paxos queues commands; Mencius queues OwnItems + skip ranges) —
/// what is shared is the scheduling discipline, so future pipelining or
/// adaptive-delay work lands in exactly one place.
class Batcher {
 public:
  using FlushFn = std::function<void()>;

  Batcher(Env& env, Duration delay, FlushFn flush)
      : env_(env), delay_(delay), flush_(std::move(flush)) {}

  /// Schedules a flush after the batch delay unless one is already pending.
  void poke() {
    if (scheduled_) return;
    scheduled_ = true;
    env_.schedule(delay_, [this] {
      scheduled_ = false;
      flush_();
    });
  }

  [[nodiscard]] bool pending() const { return scheduled_; }
  [[nodiscard]] Duration delay() const { return delay_; }

 private:
  Env& env_;
  Duration delay_;
  FlushFn flush_;
  bool scheduled_ = false;
};

}  // namespace praft::consensus
