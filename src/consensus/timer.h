#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "consensus/env.h"

namespace praft::consensus {

/// Epoch-guarded randomized leader-failure timer over Env::schedule — the
/// machinery all four protocols used to hand-roll (jitter + stale-timer
/// guards + quiet-period check).
///
/// The timer repeatedly arms itself with a fresh uniform timeout drawn from
/// [lo, hi]. When a timeout elapses it fires the handler with
/// `expired == true` iff the gate passes (e.g. "not currently leader") AND
/// no activity was recorded via touch() for at least the drawn timeout —
/// exactly the classic "have I heard from a leader lately" check. Every
/// firing (expired or not) reaches the handler, so protocols can hang
/// auxiliary periodic work off it (Paxos re-requests lost LearnValues).
///
/// Epoch semantics: reset()/start() invalidate every previously scheduled
/// callback; a stale timer whose epoch no longer matches is a no-op even if
/// the Env still fires it. This is what makes one-shot Env timers safe to
/// abandon rather than cancel.
class ElectionTimer {
 public:
  /// handler(expired): invoked on every timer firing.
  using Handler = std::function<void(bool expired)>;
  /// Expiry is suppressed (but the chain keeps ticking) while gate() is
  /// false. Defaults to always-true.
  using Gate = std::function<bool()>;

  ElectionTimer(Env& env, Duration lo, Duration hi) : env_(env), lo_(lo), hi_(hi) {}

  void set_handler(Handler h) { handler_ = std::move(h); }
  void set_gate(Gate g) { gate_ = std::move(g); }

  /// Arms the repeating chain. Supersedes any previously armed chain.
  void start() { reset(); }

  /// Bumps the epoch (stale timers never fire) and arms a fresh timeout.
  void reset() {
    ++epoch_;
    arm();
  }

  /// Stops the chain: pending callbacks become no-ops.
  void cancel() { ++epoch_; }

  /// Records leader activity (heartbeat seen, vote granted): defers expiry.
  void touch() { last_activity_ = env_.now(); }

  [[nodiscard]] Time last_activity() const { return last_activity_; }
  [[nodiscard]] uint64_t epoch() const { return epoch_; }

 private:
  void arm() {
    const uint64_t epoch = epoch_;
    const Duration timeout = env_.random_range(lo_, hi_);
    env_.schedule(timeout, [this, epoch, timeout] {
      if (epoch != epoch_) return;  // superseded
      const bool quiet = env_.now() - last_activity_ >= timeout;
      const bool expired = quiet && (!gate_ || gate_());
      if (handler_) handler_(expired);
      if (epoch != epoch_) return;  // handler reset/cancelled us
      arm();
    });
  }

  Env& env_;
  Duration lo_;
  Duration hi_;
  Handler handler_;
  Gate gate_;
  Time last_activity_ = 0;
  uint64_t epoch_ = 0;
};

/// Epoch-guarded repeating timer for leader heartbeats and maintenance
/// ticks. The chain dies silently when the gate turns false (the classic
/// "stop heartbeating after step-down" idiom) and is re-armed by the next
/// start().
class PeriodicTimer {
 public:
  using Handler = std::function<void()>;
  using Gate = std::function<bool()>;

  explicit PeriodicTimer(Env& env) : env_(env) {}

  void set_handler(Handler h) { handler_ = std::move(h); }
  /// The chain stops (without firing) the first time gate() is false.
  void set_gate(Gate g) { gate_ = std::move(g); }

  /// (Re)starts the chain at `interval`; supersedes any previous chain.
  void start(Duration interval) {
    interval_ = interval;
    ++epoch_;
    arm();
  }

  /// Stops the chain: pending callbacks become no-ops.
  void stop() { ++epoch_; }

  [[nodiscard]] uint64_t epoch() const { return epoch_; }

 private:
  void arm() {
    const uint64_t epoch = epoch_;
    env_.schedule(interval_, [this, epoch] {
      if (epoch != epoch_) return;  // superseded
      if (gate_ && !gate_()) return;  // chain dies (e.g. stepped down)
      if (handler_) handler_();
      if (epoch != epoch_) return;  // handler restarted/stopped us
      arm();
    });
  }

  Env& env_;
  Duration interval_ = 0;
  Handler handler_;
  Gate gate_;
  uint64_t epoch_ = 0;
};

}  // namespace praft::consensus
