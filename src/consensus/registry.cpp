#include "consensus/registry.h"

#include <map>

#include "common/check.h"

namespace praft::consensus {

struct ProtocolRegistry::Impl {
  std::map<std::string, NodeFactory> factories;
};

ProtocolRegistry::ProtocolRegistry() : impl_(std::make_shared<Impl>()) {
  detail::register_builtin_protocols(*this);
}

ProtocolRegistry& ProtocolRegistry::instance() {
  static ProtocolRegistry reg;
  return reg;
}

void ProtocolRegistry::add(const std::string& name, NodeFactory factory) {
  PRAFT_CHECK_MSG(!name.empty(), "protocol name must be non-empty");
  PRAFT_CHECK_MSG(factory != nullptr, "protocol factory must be callable");
  impl_->factories[name] = std::move(factory);
}

bool ProtocolRegistry::contains(const std::string& name) const {
  return impl_->factories.count(name) > 0;
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(impl_->factories.size());
  for (const auto& [name, factory] : impl_->factories) out.push_back(name);
  return out;
}

std::unique_ptr<NodeIface> ProtocolRegistry::make(
    const std::string& name, Group group, Env& env, const TimingOptions& timing,
    storage::DurableStore* store) const {
  auto it = impl_->factories.find(name);
  if (it == impl_->factories.end()) {
    // List what IS registered: "unknown protocol" alone sends the caller
    // grepping for the registration site instead of fixing the typo.
    std::string joined;
    for (const std::string& n : names()) {
      if (!joined.empty()) joined += ", ";
      joined += n;
    }
    PRAFT_CHECK_MSG(false, "unknown protocol \"" + name +
                               "\"; registered protocols: " + joined);
  }
  return it->second(std::move(group), env, timing, store);
}

std::unique_ptr<NodeIface> make_node(const std::string& name, Group group,
                                     Env& env, const TimingOptions& timing,
                                     storage::DurableStore* store) {
  return ProtocolRegistry::instance().make(name, std::move(group), env,
                                           timing, store);
}

std::vector<std::string> protocol_names() {
  return ProtocolRegistry::instance().names();
}

}  // namespace praft::consensus
