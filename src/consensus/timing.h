#pragma once

#include <cstddef>

#include "common/types.h"

namespace praft::consensus {

/// Timing knobs shared by every protocol in the repo — the paper's thesis is
/// that MultiPaxos, Raft, Raft* and Mencius are structurally parallel, and
/// their leader-failure detection / heartbeat / batching machinery is
/// literally the same code (this layer). Defaults are WAN-scale (the paper's
/// testbed spans 25–292 ms RTTs); unit tests shrink them.
///
/// Per-protocol Options structs inherit from this, so protocol code and
/// tests keep writing `opt.election_timeout_min = ...` while the definition
/// lives in exactly one place.
struct TimingOptions {
  /// Randomized leader-failure timeout window (Raft elections, Paxos
  /// Prepare retries). Mencius ignores these: every replica already leads
  /// its own residue class.
  Duration election_timeout_min = msec(1200);
  Duration election_timeout_max = msec(2400);
  /// Leader keep-alive tick (Raft/Raft* empty AppendEntries, Paxos
  /// Heartbeat, Mencius StatusBeat).
  Duration heartbeat_interval = msec(150);
  /// Leader batching delay (etcd-style): submissions within this window
  /// ride one replication message. 0 means flush on the next event-loop
  /// turn.
  Duration batch_delay = msec(1);
  /// Flush/packetization cap: no single replication message carries more
  /// than this many log entries.
  size_t max_entries_per_batch = 4096;
  /// Byte-budget flush threshold: when the pending batch reaches this many
  /// encoded wire bytes, the Batcher expedites the flush to the next
  /// event-loop turn instead of waiting out the delay — large values keep a
  /// 4 KB-value workload from hoarding megabytes behind a 1 ms timer.
  /// 0 disables the byte trigger.
  size_t batch_flush_bytes = 256 * 1024;
  /// Adaptive batching delay (AIMD on observed in-flight bytes): when on,
  /// the effective batch delay doubles (up to batch_delay_max) while more
  /// than batch_inflight_window bytes are un-acked, and decays additively
  /// toward batch_delay_min when the pipe drains. Off by default — the
  /// throughput benches opt in; fixed-delay trajectories stay untouched.
  bool batch_adaptive = false;
  Duration batch_delay_min = 0;
  Duration batch_delay_max = msec(8);
  /// In-flight byte window for the AIMD controller. 0 = 4 * batch_flush_bytes.
  size_t batch_inflight_window = 0;
  /// Leader-memory backpressure cap: when > 0, the Batcher stops accepting
  /// new submissions (can_accept() goes false, protocols return -1 from
  /// submit and the harness retries the client op later) once
  /// pending + in-flight bytes reach this bound — a slow or partitioned
  /// follower can stall the pipe, but it cannot bloat the leader's pending
  /// queue unboundedly. 0 disables the cap.
  size_t batch_backpressure_bytes = 8 * 1024 * 1024;
  /// Replication pipelining (consensus::PeerPipeline): when on, a leader
  /// keeps multiple replication batches in flight per peer — up to
  /// pipeline_max_batches batches and an AIMD-adapted byte window capped at
  /// pipeline_inflight_bytes — instead of one batch per ack round-trip.
  /// Off = stop-and-wait (at most one outstanding batch per peer), kept as
  /// the bench baseline.
  bool pipeline = true;
  size_t pipeline_inflight_bytes = 1024 * 1024;
  /// Bookkeeping bound on outstanding batches per peer, NOT the flow
  /// control — the byte window above is. Must stay above flush-rate x RTT
  /// (small adaptive flushes every ~1-10 ms over a 292 ms aws5 RTT put
  /// ~300 batches legitimately in flight); 16 here measurably throttled
  /// LAN-tier throughput before the byte window ever engaged.
  size_t pipeline_max_batches = 512;
  /// Loss-detection timeout: when a peer's oldest un-acked batch is older
  /// than this, the leader rolls its send cursor back and retransmits from
  /// the lowest in-flight position (windowed retransmit probe) instead of
  /// blanket per-tick resends. Default sits above the worst modeled WAN RTT
  /// (aws5 tops out at 292 ms) so healthy links never probe spuriously.
  Duration pipeline_retransmit_timeout = msec(600);
  /// RTT-adaptive loss detection (Jacobson/Karels): when on, each peer keeps
  /// a smoothed RTT + variance from ack round-trips and the effective
  /// retransmit timeout becomes max(pipeline_retransmit_timeout,
  /// srtt + 4 * rttvar) — the fixed value above stays as the floor (and the
  /// fallback before the first sample), so healthy links never probe earlier
  /// than today; links whose acks legitimately slow down (CPU saturation,
  /// long queues) stop probing spuriously.
  bool pipeline_rto_adaptive = true;
  /// Recovery-burst cap: loss-recovery retransmissions (Paxos re-proposes,
  /// Mencius StatusBeat retransmits) send at most this many entries per
  /// tick — deliberately smaller than the steady-state packetization cap so
  /// a healing partition does not flood the wire.
  size_t max_retransmit_entries = 512;
  /// Log compaction trigger (size leg): when > 0, a node checkpoints the
  /// state machine and discards the applied log prefix as soon as more than
  /// this many applied-but-uncompacted entries are resident. 0 disables
  /// size-triggered compaction. Requires snapshot state hooks (installed by
  /// the harness adapter); protocols check after every apply advance, so the
  /// retained applied prefix stays <= the cap between events.
  size_t compaction_log_cap = 0;
  /// Compaction trigger (interval leg): when > 0, also checkpoint whenever
  /// this much time has passed since the last compaction and anything is
  /// compactable — bounds staleness of the retained snapshot under light
  /// load, where the size trigger alone may never fire (the first firing
  /// comes one interval after node start, then one interval after each
  /// compaction). Checked on the same apply/heartbeat paths as the size
  /// leg. 0 disables.
  Duration compaction_interval = 0;
  /// Modeled fsync duration for the durable store (src/storage): every
  /// write a node makes to its hard state file / write-ahead log becomes
  /// durable only when a sync of this duration completes on the node's disk
  /// resource. 0 models free, instantaneous fsyncs — writes commit
  /// synchronously and event trajectories match a diskless run exactly
  /// (the tier-1 default), while the durable image still accumulates so
  /// crash-restart works.
  Duration fsync_duration = 0;
  /// Group-commit window: syncs demanded within this delay coalesce into one
  /// fsync (the storage::Persister reuses the Batcher's arm-once scheduling
  /// discipline). 0 = sync immediately on each demand. Only meaningful with
  /// fsync_duration > 0.
  Duration sync_batch_delay = 0;
  /// TEST-ONLY fault injection: skip the hard-state fsync barrier before the
  /// phase-1 "vote" reply (Raft/Raft* VoteReply, MultiPaxos PrepareOk,
  /// Mencius RevPrepareOk). The reply leaves the node while the promise it
  /// depends on is still volatile — the classic missing-fsync durability
  /// bug. The chaos checker must convict it within 50 seeds (crash-restart
  /// faults enabled). Never set this outside tests.
  bool unsafe_skip_vote_fsync = false;
  /// TEST-ONLY fault injection: when > 0, the *commit-counting* paths treat
  /// this many acknowledgements as a quorum instead of a true majority
  /// (elections and Prepare phases are untouched). n/2 on a 5-node group
  /// recreates the classic "commit without majority" bug; the chaos harness
  /// uses it to prove its invariant checker catches real violations.
  /// Never set this outside tests.
  int unsafe_commit_quorum = 0;

  /// Quorum used by commit counting: the injected unsafe value when set,
  /// otherwise `true_majority` (the group's real majority).
  [[nodiscard]] int commit_quorum(int true_majority) const {
    return unsafe_commit_quorum > 0 ? unsafe_commit_quorum : true_majority;
  }
};

/// Per-node evaluation state for the compaction policy above: one instance
/// per protocol node, consulted on every apply advance / maintenance tick so
/// all four protocols share the exact trigger semantics.
class CompactionTrigger {
 public:
  /// True when a compaction should run now. `compactable` is the node's
  /// applied-but-uncompacted entry count; `force` is the NodeIface::compact
  /// verb (still requires something to compact).
  [[nodiscard]] bool due(const TimingOptions& opt, size_t compactable,
                         Time now, bool force) const {
    if (compactable == 0) return false;
    if (force) return true;
    if (opt.compaction_log_cap > 0 && compactable > opt.compaction_log_cap) {
      return true;
    }
    return opt.compaction_interval > 0 &&
           now - last_ >= opt.compaction_interval;
  }

  void fired(Time now) { last_ = now; }

 private:
  Time last_ = 0;
};

}  // namespace praft::consensus
