#pragma once

#include <cstddef>

#include "common/types.h"

namespace praft::consensus {

/// Timing knobs shared by every protocol in the repo — the paper's thesis is
/// that MultiPaxos, Raft, Raft* and Mencius are structurally parallel, and
/// their leader-failure detection / heartbeat / batching machinery is
/// literally the same code (this layer). Defaults are WAN-scale (the paper's
/// testbed spans 25–292 ms RTTs); unit tests shrink them.
///
/// Per-protocol Options structs inherit from this, so protocol code and
/// tests keep writing `opt.election_timeout_min = ...` while the definition
/// lives in exactly one place.
struct TimingOptions {
  /// Randomized leader-failure timeout window (Raft elections, Paxos
  /// Prepare retries). Mencius ignores these: every replica already leads
  /// its own residue class.
  Duration election_timeout_min = msec(1200);
  Duration election_timeout_max = msec(2400);
  /// Leader keep-alive tick (Raft/Raft* empty AppendEntries, Paxos
  /// Heartbeat, Mencius StatusBeat).
  Duration heartbeat_interval = msec(150);
  /// Leader batching delay (etcd-style): submissions within this window
  /// ride one replication message. 0 means flush on the next event-loop
  /// turn.
  Duration batch_delay = msec(1);
  /// Flush/packetization cap: no single replication message carries more
  /// than this many log entries.
  size_t max_entries_per_batch = 4096;
  /// Recovery-burst cap: loss-recovery retransmissions (Paxos re-proposes,
  /// Mencius StatusBeat retransmits) send at most this many entries per
  /// tick — deliberately smaller than the steady-state packetization cap so
  /// a healing partition does not flood the wire.
  size_t max_retransmit_entries = 512;
  /// TEST-ONLY fault injection: when > 0, the *commit-counting* paths treat
  /// this many acknowledgements as a quorum instead of a true majority
  /// (elections and Prepare phases are untouched). n/2 on a 5-node group
  /// recreates the classic "commit without majority" bug; the chaos harness
  /// uses it to prove its invariant checker catches real violations.
  /// Never set this outside tests.
  int unsafe_commit_quorum = 0;

  /// Quorum used by commit counting: the injected unsafe value when set,
  /// otherwise `true_majority` (the group's real majority).
  [[nodiscard]] int commit_quorum(int true_majority) const {
    return unsafe_commit_quorum > 0 ? unsafe_commit_quorum : true_majority;
  }
};

}  // namespace praft::consensus
