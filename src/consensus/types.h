#pragma once

#include <compare>
#include <cstdint>
#include <functional>

#include "common/types.h"
#include "kv/command.h"

namespace praft::consensus {

/// Raft term / Paxos ballot round. Terms start at 0 (no leader yet).
using Term = int64_t;

/// Position in the replicated log. Valid entries start at index 1; index 0 is
/// the sentinel (term 0) so AppendEntries prev-checks need no special cases.
using LogIndex = int64_t;

/// Globally unique Paxos ballot: (round, proposer id), ordered
/// lexicographically — the classic construction for distinct proposals.
struct Ballot {
  Term round = -1;
  NodeId node = kNoNode;

  friend auto operator<=>(const Ballot&, const Ballot&) = default;
  [[nodiscard]] bool valid() const { return round >= 0; }
};

/// The protocol-agnostic shape of a node's *hard state* — the part of its
/// state that must survive a crash because some message it sent depended on
/// it (Raft §5: currentTerm/votedFor; Paxos: the promise). Each protocol maps
/// its own fields onto the five scalars; every field a protocol uses is
/// MONOTONE over any single execution, which is what lets the chaos checker
/// state crash-recovery safety generically: a recovered node's hard state may
/// never be older than the hard state any message it sent depended on.
///
///   field  | Raft       | Raft*      | MultiPaxos      | Mencius
///   -------+------------+------------+-----------------+--------------------
///   term   | currentTerm| currentTerm| promised round   | max promised round
///   vote   | votedFor   | votedFor   | promised node    | (unused)
///   floor  | (unused)   | (unused)   | (unused)         | next own slot
///   aux    | (unused)   | log ballot | (unused)         | revocation round
///   tail   | (unused)   | (unused)   | accepted tail    | own revoked floor
///
/// (term, vote) order lexicographically (a Paxos ballot); floor/aux/tail are
/// plain monotone counters. -1 / kNoNode mean "not tracked by this protocol".
struct HardState {
  Term term = 0;
  NodeId vote = kNoNode;
  LogIndex floor = -1;
  Term aux = 0;
  LogIndex tail = -1;

  friend bool operator==(const HardState&, const HardState&) = default;
};

/// Observes the hard state a message depended on, fired when the message
/// actually leaves the node (see storage::Persister). The chaos checker uses
/// it to assert recovered nodes never regress below externally-visible state.
using HardStateProbe = std::function<void(const HardState&)>;

/// Delivered exactly once per log position, in log order, once the position
/// is committed/chosen and all earlier positions have been delivered.
using ApplyFn = std::function<void(LogIndex, const kv::Command&)>;

/// Observes the Applier's (commit, applied) watermarks after every advance.
/// Installed by invariant checkers (src/chaos) to assert monotonicity from
/// outside the protocol.
using WatermarkProbe = std::function<void(LogIndex commit, LogIndex applied)>;

/// Exact wire sizes (bytes). Every wire_size() in the repo is the byte-exact
/// length of the flat frame the codec in net/wire.h + <proto>/wire.cpp
/// produces — `encode(m).size() == wire_size(m)` is a tested invariant, so
/// bandwidth/CPU cost accounting charges real encoded bytes, not estimates.
namespace wire {
inline constexpr size_t kFrame = 8;    // family/opcode/flags/length header
inline constexpr size_t kBallot = 12;  // round i64 + node i32
inline constexpr size_t kCount = 4;    // u32 array-length prefix
/// One log entry on the wire: slot-or-term i64 + the command.
inline size_t entry_bytes(const kv::Command& c) { return 8 + c.wire_bytes(); }
}  // namespace wire

}  // namespace praft::consensus
