#pragma once

#include <compare>
#include <cstdint>
#include <functional>

#include "common/types.h"
#include "kv/command.h"

namespace praft::consensus {

/// Raft term / Paxos ballot round. Terms start at 0 (no leader yet).
using Term = int64_t;

/// Position in the replicated log. Valid entries start at index 1; index 0 is
/// the sentinel (term 0) so AppendEntries prev-checks need no special cases.
using LogIndex = int64_t;

/// Globally unique Paxos ballot: (round, proposer id), ordered
/// lexicographically — the classic construction for distinct proposals.
struct Ballot {
  Term round = -1;
  NodeId node = kNoNode;

  friend auto operator<=>(const Ballot&, const Ballot&) = default;
  [[nodiscard]] bool valid() const { return round >= 0; }
};

/// Delivered exactly once per log position, in log order, once the position
/// is committed/chosen and all earlier positions have been delivered.
using ApplyFn = std::function<void(LogIndex, const kv::Command&)>;

/// Observes the Applier's (commit, applied) watermarks after every advance.
/// Installed by invariant checkers (src/chaos) to assert monotonicity from
/// outside the protocol.
using WatermarkProbe = std::function<void(LogIndex commit, LogIndex applied)>;

/// Modeled wire sizes (bytes) for bandwidth accounting.
namespace wire {
inline constexpr size_t kMsgHeader = 48;   // term/ballot/indexes/ids
inline constexpr size_t kSmallMsg = 40;    // votes, acks, heartbeats
inline size_t entry_bytes(const kv::Command& c) { return c.wire_bytes(); }
}  // namespace wire

}  // namespace praft::consensus
