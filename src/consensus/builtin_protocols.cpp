// Registers the four in-repo protocols with the runtime registry. This is
// the one deliberate upward dependency from the consensus runtime layer onto
// the protocol deltas: the registry machinery itself (registry.cpp) stays
// protocol-agnostic, and anything else can register additional protocols at
// static-init or run time via ProtocolRegistry::add.
#include "consensus/registry.h"
#include "mencius/node.h"
#include "paxos/node.h"
#include "raft/node.h"
#include "raftstar/node.h"

namespace praft::consensus::detail {

namespace {

/// Builds a protocol-specific Options struct (which inherits TimingOptions)
/// from the shared timing knobs, leaving protocol extras at their defaults.
template <typename Opt>
Opt options_from(const TimingOptions& timing) {
  Opt o;
  static_cast<TimingOptions&>(o) = timing;
  return o;
}

}  // namespace

void register_builtin_protocols(ProtocolRegistry& reg) {
  reg.add("raft", [](Group g, Env& env, const TimingOptions& t,
                     storage::DurableStore* store) {
    return std::make_unique<raft::RaftNode>(std::move(g), env,
                                            options_from<raft::Options>(t),
                                            store);
  });
  reg.add("raftstar", [](Group g, Env& env, const TimingOptions& t,
                         storage::DurableStore* store) {
    return std::make_unique<raftstar::RaftStarNode>(
        std::move(g), env, options_from<raftstar::Options>(t), store);
  });
  reg.add("multipaxos", [](Group g, Env& env, const TimingOptions& t,
                           storage::DurableStore* store) {
    return std::make_unique<paxos::PaxosNode>(std::move(g), env,
                                              options_from<paxos::Options>(t),
                                              store);
  });
  // Registry-selected Mencius runs behind the generic LogServer, which
  // replies at apply time only — the early-ack (commit + commutativity)
  // optimization and revocation-aware reply tracking need the dedicated
  // mencius::MenciusServer adapter (SystemKind::kRaftStarMencius). Safe and
  // convergent either way; measurement-grade numbers come from the latter.
  reg.add("mencius", [](Group g, Env& env, const TimingOptions& t,
                        storage::DurableStore* store) {
    return std::make_unique<mencius::MenciusNode>(
        std::move(g), env, options_from<mencius::Options>(t), store);
  });
}

}  // namespace praft::consensus::detail
