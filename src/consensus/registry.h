#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "consensus/env.h"
#include "consensus/group.h"
#include "consensus/node_iface.h"
#include "consensus/timing.h"

namespace praft::consensus {

/// Builds a protocol node for `group` talking through `env`, tuned by the
/// shared timing knobs and persisting through `store` (nullptr = diskless —
/// unit-test nodes that never crash-restart). Protocol-specific options
/// beyond TimingOptions keep their defaults; callers needing them construct
/// the concrete node type.
using NodeFactory = std::function<std::unique_ptr<NodeIface>(
    Group group, Env& env, const TimingOptions& timing,
    storage::DurableStore* store)>;

/// String-keyed protocol registry: the runtime seam that lets harness
/// servers, clusters and bench binaries select a protocol by name. Names are
/// lower-case ("raft", "raftstar", "multipaxos", "mencius"); the four
/// in-repo protocols are registered on first use, and later subsystems
/// (sharding, new ports) can add their own.
class ProtocolRegistry {
 public:
  static ProtocolRegistry& instance();

  /// Registers (or replaces) a factory under `name`.
  void add(const std::string& name, NodeFactory factory);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Instantiates `name`; PRAFT_CHECK-fails on unknown names.
  [[nodiscard]] std::unique_ptr<NodeIface> make(
      const std::string& name, Group group, Env& env,
      const TimingOptions& timing = {},
      storage::DurableStore* store = nullptr) const;

 private:
  ProtocolRegistry();
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Convenience wrappers over ProtocolRegistry::instance().
std::unique_ptr<NodeIface> make_node(const std::string& name, Group group,
                                     Env& env,
                                     const TimingOptions& timing = {},
                                     storage::DurableStore* store = nullptr);
std::vector<std::string> protocol_names();

namespace detail {
/// Defined in builtin_protocols.cpp; referenced by the registry constructor
/// so the linker always pulls the built-in registrations out of the static
/// library.
void register_builtin_protocols(ProtocolRegistry& reg);
}  // namespace detail

}  // namespace praft::consensus
