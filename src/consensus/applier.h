#pragma once

#include <utility>

#include "common/check.h"
#include "consensus/snapshot.h"
#include "consensus/types.h"

namespace praft::consensus {

/// Shared commit/apply watermark: guarantees the state machine sees every
/// position exactly once, in order, regardless of how the protocol decides
/// positions (contiguous commit index in Raft/Raft*, out-of-order chosen
/// instances behind a floor in MultiPaxos, per-slot decisions in Mencius).
///
/// The protocol supplies a `get(index) -> const kv::Command*` lookup; a null
/// return means "not locally available yet" and pauses delivery at the gap
/// without losing the commit watermark (Paxos replicas repair gaps via
/// LearnValues and drain later).
///
/// Re-entrancy: apply callbacks may feed back into the protocol (Mencius
/// re-proposes a lost command from inside its acked callback, which can land
/// back here). A nested drain is folded into the outer loop instead of
/// recursing.
class Applier {
 public:
  /// `start` is the inclusive index *before* the first real position:
  /// 0 for 1-based logs (Raft/Raft*/MultiPaxos), -1 for Mencius' 0-based
  /// slot space.
  explicit Applier(LogIndex start = 0) : commit_(start), applied_(start) {}

  void set_apply(ApplyFn fn) { apply_ = std::move(fn); }

  /// Invariant observation point: called with the (commit, applied)
  /// watermarks after every drain, including drains that delivered nothing.
  void set_probe(WatermarkProbe probe) { probe_ = std::move(probe); }

  /// Snapshot hooks (installed by the harness adapter owning the state
  /// machine): `capture` serializes the store at the current applied
  /// watermark, `restore` replaces it during a snapshot install. Protocols
  /// that never see these hooks simply cannot compact.
  void set_state_hooks(StateCapture capture, StateRestore restore) {
    capture_ = std::move(capture);
    restore_ = std::move(restore);
  }

  /// True once a capture hook is installed (compaction is possible).
  [[nodiscard]] bool can_snapshot() const { return capture_ != nullptr; }

  /// Serializes the state machine. Only meaningful at the applied watermark:
  /// the caller stamps the returned image with applied() as the snapshot's
  /// last_index.
  [[nodiscard]] kv::StoreImage capture_state() const {
    PRAFT_CHECK_MSG(capture_ != nullptr, "no snapshot capture hook installed");
    return capture_();
  }

  /// Installs `snap` if it is ahead of the applied watermark: restores the
  /// state machine and jumps both watermarks to snap.last_index (the skipped
  /// positions were applied by the snapshot's provider — exactly-once is
  /// preserved because this replica never applies them individually).
  /// Returns false (no-op) for stale snapshots.
  bool install_snapshot(const Snapshot& snap) {
    if (snap.last_index <= applied_) return false;
    PRAFT_CHECK_MSG(restore_ != nullptr, "no snapshot restore hook installed");
    restore_(snap.state, snap.last_index);
    applied_ = snap.last_index;
    if (commit_ < applied_) commit_ = applied_;
    if (probe_) probe_(commit_, applied_);
    return true;
  }

  /// Highest position known committed/chosen-contiguously (inclusive).
  [[nodiscard]] LogIndex commit_index() const { return commit_; }
  /// Highest position delivered to the state machine (inclusive).
  [[nodiscard]] LogIndex applied() const { return applied_; }
  /// First position NOT yet delivered (exclusive floor).
  [[nodiscard]] LogIndex next_index() const { return applied_ + 1; }

  /// Raises the commit watermark to `commit` (monotone: lower values are
  /// ignored) and delivers every available position up to it.
  template <typename Get>
  void commit_to(LogIndex commit, Get&& get) {
    if (commit > commit_) commit_ = commit;
    drain_bounded(std::forward<Get>(get), /*bounded=*/true);
  }

  /// Delivers every consecutively-available position, without a watermark
  /// bound (Mencius: decisions are per-slot, there is no global commit
  /// index). The commit watermark trails the applied one.
  template <typename Get>
  void drain(Get&& get) {
    drain_bounded(std::forward<Get>(get), /*bounded=*/false);
  }

 private:
  template <typename Get>
  void drain_bounded(Get&& get, bool bounded) {
    if (draining_) return;  // nested call: the outer loop picks it up
    draining_ = true;
    while (!bounded || applied_ < commit_) {
      const kv::Command* cmd = get(applied_ + 1);
      if (cmd == nullptr) break;  // gap: wait for repair
      ++applied_;
      if (commit_ < applied_) commit_ = applied_;
      if (apply_) apply_(applied_, *cmd);
    }
    PRAFT_CHECK(applied_ <= commit_);
    draining_ = false;
    if (probe_) probe_(commit_, applied_);
  }

  LogIndex commit_;
  LogIndex applied_;
  bool draining_ = false;
  ApplyFn apply_;
  WatermarkProbe probe_;
  StateCapture capture_;
  StateRestore restore_;
};

}  // namespace praft::consensus
