#pragma once

#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace praft::consensus {

/// Static membership of a consensus group (the paper never reconfigures).
struct Group {
  NodeId self = kNoNode;
  std::vector<NodeId> members;  // includes self

  [[nodiscard]] int n() const { return static_cast<int>(members.size()); }
  /// f in the paper's "f + 1" quorums: tolerated failures.
  [[nodiscard]] int f() const { return (n() - 1) / 2; }
  [[nodiscard]] int majority() const { return f() + 1; }

  [[nodiscard]] bool contains(NodeId id) const {
    for (NodeId m : members) {
      if (m == id) return true;
    }
    return false;
  }

  /// Index of `id` within members (used for Mencius round-robin ownership).
  [[nodiscard]] int rank_of(NodeId id) const {
    for (size_t i = 0; i < members.size(); ++i) {
      if (members[i] == id) return static_cast<int>(i);
    }
    PRAFT_CHECK_MSG(false, "node not in group");
    return -1;
  }

  void validate() const {
    PRAFT_CHECK(!members.empty());
    PRAFT_CHECK(contains(self));
  }
};

/// Tracks distinct acknowledgements toward a quorum.
class QuorumTracker {
 public:
  explicit QuorumTracker(int needed = 0) : needed_(needed) {}

  /// Returns true when this ack is new.
  bool add(NodeId id) {
    for (NodeId v : acks_) {
      if (v == id) return false;
    }
    acks_.push_back(id);
    return true;
  }

  [[nodiscard]] bool reached() const {
    return static_cast<int>(acks_.size()) >= needed_;
  }
  [[nodiscard]] int count() const { return static_cast<int>(acks_.size()); }
  [[nodiscard]] const std::vector<NodeId>& acks() const { return acks_; }

 private:
  int needed_;
  std::vector<NodeId> acks_;
};

}  // namespace praft::consensus
