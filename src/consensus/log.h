#pragma once

#include <map>
#include <vector>

#include "common/check.h"
#include "consensus/types.h"

namespace praft::consensus {

/// Contiguous replicated-log storage (Raft / Raft*): a dense array with the
/// index-0 sentinel entry, so AppendEntries prev-checks need no special
/// cases. All access is bounds-checked via PRAFT_CHECK — out-of-range
/// indexes are protocol bugs, never silent UB.
template <typename E>
class ContiguousLog {
 public:
  ContiguousLog() { entries_.emplace_back(); }  // index 0 sentinel

  [[nodiscard]] LogIndex last_index() const {
    return static_cast<LogIndex>(entries_.size()) - 1;
  }

  [[nodiscard]] const E& at(LogIndex i) const {
    PRAFT_CHECK(i >= 0 && i <= last_index());
    return entries_[static_cast<size_t>(i)];
  }

  [[nodiscard]] E& at(LogIndex i) {
    PRAFT_CHECK(i >= 0 && i <= last_index());
    return entries_[static_cast<size_t>(i)];
  }

  void append(E e) { entries_.push_back(std::move(e)); }

  /// Erases everything after `last_kept` (conflict-suffix erasure in Raft,
  /// full-suffix replacement in Raft*). Keeping the sentinel is mandatory.
  void truncate_after(LogIndex last_kept) {
    PRAFT_CHECK(last_kept >= 0 && last_kept <= last_index());
    entries_.resize(static_cast<size_t>(last_kept) + 1);
  }

 private:
  std::vector<E> entries_;
};

/// Sparse instance/slot storage (MultiPaxos / Mencius): holes are real in
/// Paxos-family protocols — instances commit out of order and execution
/// waits at the first gap. Slots materialize on first touch and may be
/// pruned once executed (Mencius).
template <typename S>
class SparseLog {
 public:
  using Map = std::map<LogIndex, S>;
  using iterator = typename Map::iterator;
  using const_iterator = typename Map::const_iterator;

  /// Materializes (default-constructs) the slot on first touch — unlike
  /// ContiguousLog::at, which is a bounds-checked read. The distinct name
  /// keeps a read-path caller from silently creating phantom slots.
  [[nodiscard]] S& materialize(LogIndex i) { return slots_[i]; }

  [[nodiscard]] const S* find(LogIndex i) const {
    auto it = slots_.find(i);
    return it == slots_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] S* find(LogIndex i) {
    auto it = slots_.find(i);
    return it == slots_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] iterator lookup(LogIndex i) { return slots_.find(i); }
  void erase(iterator it) { slots_.erase(it); }

  [[nodiscard]] bool empty() const { return slots_.empty(); }
  [[nodiscard]] size_t size() const { return slots_.size(); }
  [[nodiscard]] iterator begin() { return slots_.begin(); }
  [[nodiscard]] iterator end() { return slots_.end(); }
  [[nodiscard]] const_iterator begin() const { return slots_.begin(); }
  [[nodiscard]] const_iterator end() const { return slots_.end(); }

 private:
  Map slots_;
};

}  // namespace praft::consensus
