#pragma once

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "consensus/types.h"

namespace praft::consensus {

/// Contiguous replicated-log storage (Raft / Raft*): a dense array behind a
/// compactable prefix. `entries_[0]` is the *base sentinel* — the entry at
/// `base_index()`, which is index 0 (term 0) on a fresh log and the last
/// snapshot-covered entry after a compaction — so AppendEntries prev-checks
/// need no special cases at either boundary. All access is bounds-checked
/// via PRAFT_CHECK — out-of-range indexes (including reads into the
/// compacted prefix) are protocol bugs, never silent UB.
template <typename E>
class ContiguousLog {
 public:
  ContiguousLog() { entries_.emplace_back(); }  // index 0 sentinel

  /// Persistence hooks (src/storage): every mutation of the retained log is
  /// mirrored into the node's write-ahead log through these. `append` fires
  /// per appended entry, `truncate` per suffix erasure (both conflict
  /// erasure and snapshot-install resets), so the durable log can never be
  /// AHEAD of the in-memory one — the write-ahead ordering is: stage via
  /// hook, then gate the dependent message on the fsync (storage::Persister).
  using AppendHook = std::function<void(LogIndex, const E&)>;
  using TruncateHook = std::function<void(LogIndex last_kept)>;
  void set_persistence(AppendHook append, TruncateHook truncate) {
    on_append_ = std::move(append);
    on_truncate_ = std::move(truncate);
  }

  /// Index of the sentinel: everything at or below it lives only in the
  /// snapshot. 0 until the first compaction.
  [[nodiscard]] LogIndex base_index() const { return base_; }
  /// First readable real entry (base_index() + 1).
  [[nodiscard]] LogIndex first_index() const { return base_ + 1; }

  [[nodiscard]] LogIndex last_index() const {
    return base_ + static_cast<LogIndex>(entries_.size()) - 1;
  }

  /// Entries physically retained (excluding the sentinel) — what the
  /// bounded-memory invariant measures.
  [[nodiscard]] size_t resident_entries() const { return entries_.size() - 1; }

  [[nodiscard]] const E& at(LogIndex i) const {
    PRAFT_CHECK(i >= base_ && i <= last_index());
    return entries_[static_cast<size_t>(i - base_)];
  }

  [[nodiscard]] E& at(LogIndex i) {
    PRAFT_CHECK(i >= base_ && i <= last_index());
    return entries_[static_cast<size_t>(i - base_)];
  }

  void append(E e) {
    entries_.push_back(std::move(e));
    if (on_append_) on_append_(last_index(), entries_.back());
  }

  /// Erases everything after `last_kept` (conflict-suffix erasure in Raft,
  /// full-suffix replacement in Raft*). Keeping the sentinel is mandatory,
  /// and a compacted prefix can never be truncated into: entries at or
  /// below base_index() are part of a committed, snapshotted prefix.
  void truncate_after(LogIndex last_kept) {
    PRAFT_CHECK(last_kept >= base_ && last_kept <= last_index());
    if (last_kept == last_index()) return;
    entries_.resize(static_cast<size_t>(last_kept - base_) + 1);
    if (on_truncate_) on_truncate_(last_kept);
  }

  /// Discards entries up to and including `new_base` (which must be
  /// retained); the entry at `new_base` becomes the sentinel, so its term
  /// keeps answering prev-checks at the snapshot boundary. The caller is
  /// responsible for holding a snapshot covering [.., new_base] first.
  void compact_to(LogIndex new_base) {
    PRAFT_CHECK(new_base >= base_ && new_base <= last_index());
    if (new_base == base_) return;
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<ptrdiff_t>(new_base - base_));
    base_ = new_base;
  }

  /// Drops the whole log and restarts it at `base` with `sentinel` as the
  /// boundary entry (snapshot install where the local log conflicts with or
  /// falls short of the snapshot).
  void reset_to(LogIndex base, E sentinel) {
    PRAFT_CHECK(base >= 0);
    entries_.clear();
    entries_.push_back(std::move(sentinel));
    base_ = base;
    // Durably: anything beyond the new base conflicts with the snapshot
    // being installed (the caller persists the snapshot itself).
    if (on_truncate_) on_truncate_(base);
  }

 private:
  LogIndex base_ = 0;
  std::vector<E> entries_;
  AppendHook on_append_;
  TruncateHook on_truncate_;
};

/// Sparse instance/slot storage (MultiPaxos / Mencius): holes are real in
/// Paxos-family protocols — instances commit out of order and execution
/// waits at the first gap. Slots materialize on first touch and may be
/// pruned once executed (Mencius), or wholesale below a checkpoint floor
/// (compaction: slots at or below the floor live only in the snapshot).
template <typename S>
class SparseLog {
 public:
  using Map = std::map<LogIndex, S>;
  using iterator = typename Map::iterator;
  using const_iterator = typename Map::const_iterator;

  /// Persistence hook (src/storage): sparse protocols mutate slot fields in
  /// place, so the container cannot observe every change — instead the
  /// protocol calls persist(i) after each mutation block and the hook
  /// mirrors the slot's full durable state into the write-ahead log (one
  /// coalescing record per slot). Floor pruning needs no hook of its own:
  /// the caller durably stages the covering snapshot, which truncates the
  /// WAL prefix the pruned slots lived in.
  using UpdateHook = std::function<void(LogIndex, const S&)>;
  void set_persistence(UpdateHook update) { on_update_ = std::move(update); }

  /// Mirrors slot `i`'s current state through the update hook. No-op when
  /// the slot does not exist (e.g. already pruned) or no hook is installed.
  void persist(LogIndex i) {
    if (!on_update_) return;
    auto it = slots_.find(i);
    if (it != slots_.end()) on_update_(i, it->second);
  }

  /// Materializes (default-constructs) the slot on first touch — unlike
  /// ContiguousLog::at, which is a bounds-checked read. The distinct name
  /// keeps a read-path caller from silently creating phantom slots, and the
  /// floor check keeps one from resurrecting a compacted slot.
  [[nodiscard]] S& materialize(LogIndex i) {
    PRAFT_CHECK(i > floor_);
    return slots_[i];
  }

  [[nodiscard]] const S* find(LogIndex i) const {
    auto it = slots_.find(i);
    return it == slots_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] S* find(LogIndex i) {
    auto it = slots_.find(i);
    return it == slots_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] iterator lookup(LogIndex i) { return slots_.find(i); }
  void erase(iterator it) { slots_.erase(it); }

  /// Checkpoint floor: slots at or below it are pruned and may never be
  /// re-materialized (their decisions live in the snapshot). Monotone.
  [[nodiscard]] LogIndex floor() const { return floor_; }

  /// Raises the floor and prunes every slot at or below it. `cleanup` is
  /// invoked for each pruned (index, slot) before erasure — protocols
  /// release per-slot bookkeeping (Mencius commutativity counters) there.
  template <typename Cleanup>
  void set_floor(LogIndex new_floor, Cleanup&& cleanup) {
    if (new_floor <= floor_) return;
    floor_ = new_floor;
    auto it = slots_.begin();
    while (it != slots_.end() && it->first <= floor_) {
      cleanup(it->first, it->second);
      it = slots_.erase(it);
    }
  }

  void set_floor(LogIndex new_floor) {
    set_floor(new_floor, [](LogIndex, const S&) {});
  }

  [[nodiscard]] bool empty() const { return slots_.empty(); }
  [[nodiscard]] size_t size() const { return slots_.size(); }
  [[nodiscard]] iterator begin() { return slots_.begin(); }
  [[nodiscard]] iterator end() { return slots_.end(); }
  [[nodiscard]] const_iterator begin() const { return slots_.begin(); }
  [[nodiscard]] const_iterator end() const { return slots_.end(); }

 private:
  Map slots_;
  LogIndex floor_ = -1;  // below any real position (0-based Mencius included)
  UpdateHook on_update_;
};

}  // namespace praft::consensus
