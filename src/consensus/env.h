#pragma once

#include <any>
#include <cstddef>
#include <functional>

#include "common/types.h"

namespace praft::consensus {

/// The only door between a protocol node and the outside world. Protocol
/// implementations are sans-io: they never touch the simulator (or a real
/// socket) directly, which makes them unit-testable with scripted Envs and
/// reusable across the simulated and any future real transport.
class Env {
 public:
  virtual ~Env() = default;

  [[nodiscard]] virtual Time now() const = 0;

  /// Sends a protocol message of modeled wire size `bytes`.
  virtual void send(NodeId to, std::any payload, size_t bytes) = 0;

  /// One-shot timer. Protocols guard stale timers with epoch counters.
  virtual void schedule(Duration delay, std::function<void()> fn) = 0;

  /// Deterministic randomness (election jitter etc.).
  virtual uint64_t random() = 0;

  /// Uniform duration in [lo, hi].
  Duration random_range(Duration lo, Duration hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<Duration>(random() %
                                      static_cast<uint64_t>(hi - lo + 1));
  }
};

}  // namespace praft::consensus
