#pragma once

#include <functional>

#include "consensus/types.h"
#include "kv/store.h"

namespace praft::consensus {

/// A state-machine checkpoint covering the log prefix [.., last_index]: the
/// runtime realization of the paper's ported Checkpoint action. Every
/// protocol in the repo compacts its log against one of these and ships it
/// to lagging peers (InstallSnapshot in Raft/Raft*, commit-floor snapshot
/// learning in MultiPaxos/Mencius) — the same delta read through the
/// refinement mapping, mirroring tests/checkpoint_port_test.cpp at the
/// spec level.
struct Snapshot {
  /// Last log position whose effect is included in `state` (inclusive).
  /// -1 = no snapshot taken yet (0 is a real position in Mencius' 0-based
  /// slot space).
  LogIndex last_index = -1;
  /// Term of the entry at last_index (Raft-family prev-checks resume from
  /// the snapshot boundary; ballot-numbered protocols leave it 0).
  Term last_term = 0;
  kv::StoreImage state;

  [[nodiscard]] bool valid() const { return last_index >= 0; }
  /// Exact wire size when embedded in a catch-up message:
  /// last_index i64 + last_term i64 + the state image.
  [[nodiscard]] size_t wire_bytes() const { return 16 + state.wire_bytes(); }

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

/// Serializes the state machine at the CURRENT applied watermark. Installed
/// by the harness adapter that owns the kv::Store; protocols call it through
/// their Applier when the compaction policy fires.
using StateCapture = std::function<kv::StoreImage()>;

/// Replaces the state machine with a snapshot image whose coverage ends at
/// `last_index`. The adapter also drops reply bookkeeping the snapshot
/// superseded and notifies snapshot-install probes (chaos invariants).
using StateRestore =
    std::function<void(const kv::StoreImage& state, LogIndex last_index)>;

}  // namespace praft::consensus
