#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/types.h"
#include "consensus/timing.h"
#include "consensus/types.h"

namespace praft::consensus {

/// Per-peer replication flow control, shared by all four protocols — the
/// same portability argument as the Batcher: leader-driven replication is
/// structurally identical across the Paxos and Raft families (§2/§3 of the
/// paper), so "keep the bandwidth-delay product full" is written once here
/// and each protocol only maps its own message/ack vocabulary onto it.
///
/// The model: a leader sends a *batch* covering positions [lo, hi] and
/// `bytes` of wire payload to a peer; the batch stays outstanding until an
/// acknowledgement covering `hi` arrives (acks are cumulative — a Raft
/// AppendReply's match index, a Paxos AcceptOkBatch's end instance, a
/// Mencius AcceptOwnOk's highest slot). A new batch may be sent while older
/// ones are still in flight, as long as the peer's window has room:
///
///   - at most `pipeline_max_batches` batches outstanding, and
///   - at most `window` un-acked bytes outstanding, where `window` adapts
///     by AIMD between pipeline_inflight_bytes/16 and pipeline_inflight_bytes
///     (additive increase per ack, halve on reject/loss) — the same
///     controller discipline as the Batcher's adaptive delay.
///
/// An empty window always admits one batch regardless of its size, so a
/// single batch larger than the byte window cannot deadlock the channel.
/// With `pipeline` off the window admits exactly one outstanding batch
/// (stop-and-wait) — the pre-pipeline behavior, kept as the bench baseline.
///
/// Loss detection: when the oldest outstanding batch has waited longer than
/// the retransmit timeout, `retransmit_due` reports the peer; the protocol
/// calls `on_loss`, which clears the peer's outstanding set, halves the
/// window, and returns the lowest un-acked position — the retransmit probe
/// restarts from there. This replaces the blanket resend-everything-per-tick
/// loss recovery the protocols used before.
///
/// The timeout is RTT-adaptive (Jacobson/Karels, RFC 6298 shape): acks that
/// retire batches feed a per-peer smoothed RTT + variance, and the effective
/// timeout is max(pipeline_retransmit_timeout, srtt + 4 * rttvar). The
/// configured fixed value is a *floor*, never shortened — healthy links keep
/// today's probe behavior exactly, while a peer whose acks legitimately slow
/// down (saturated CPU, deep queues) stops tripping spurious probes and the
/// window-halvings they cause. Karn's ambiguity (an ack arriving after a
/// retransmission could match either copy) is tolerable here precisely
/// because samples can only ever *raise* the timeout above the floor: on_loss
/// clears the outstanding set, so post-retransmit acks for cleared batches
/// retire nothing and are never sampled.
///
/// Pure bookkeeping: no timers, no I/O, no protocol state. Protocols call
/// the hooks from their existing send/reply/tick paths.
class PeerPipeline {
 public:
  explicit PeerPipeline(const TimingOptions& opt)
      : pipeline_(opt.pipeline),
        max_batches_(opt.pipeline_max_batches),
        window_max_(opt.pipeline_inflight_bytes),
        window_min_(std::max<size_t>(1, opt.pipeline_inflight_bytes / 16)),
        retransmit_timeout_(opt.pipeline_retransmit_timeout),
        rto_adaptive_(opt.pipeline_rto_adaptive) {}

  /// True when `peer` has room for one more batch. Always true with nothing
  /// outstanding (progress guarantee).
  [[nodiscard]] bool can_send(NodeId peer) const {
    auto it = peers_.find(peer);
    if (it == peers_.end() || it->second.sent.empty()) return true;
    if (!pipeline_) return false;  // stop-and-wait baseline
    const Peer& p = it->second;
    return p.sent.size() < max_batches_ && p.inflight_bytes < p.window;
  }

  /// Records a batch covering positions [lo, hi] (`bytes` of wire payload)
  /// as outstanding toward `peer`. `hi` is the ack key: an ack covering a
  /// position >= hi retires the batch.
  void on_send(NodeId peer, LogIndex lo, LogIndex hi, size_t bytes, Time now) {
    Peer& p = touch(peer);
    p.sent.push_back(Sent{lo, hi, bytes, now});
    p.inflight_bytes += bytes;
    ++sends_;
  }

  /// Cumulative ack: retires every outstanding batch whose end position is
  /// <= `upto` and grows the window additively. Duplicate and stale acks
  /// (already-retired coverage) are no-ops. When `now` is supplied (>= 0) the
  /// youngest retired batch contributes an RTT sample to the peer's smoothed
  /// estimate — the youngest, not the oldest, because a cumulative ack may
  /// retire a whole run of batches at once and only the last one's
  /// send-to-ack span measures the current round-trip rather than queueing
  /// behind earlier batches.
  void on_ack(NodeId peer, LogIndex upto, Time now = -1) {
    auto it = peers_.find(peer);
    if (it == peers_.end()) return;
    Peer& p = it->second;
    bool retired = false;
    Time sent_at = -1;
    while (!p.sent.empty() && p.sent.front().hi <= upto) {
      p.inflight_bytes -= std::min(p.inflight_bytes, p.sent.front().bytes);
      sent_at = p.sent.front().at;
      p.sent.pop_front();
      retired = true;
    }
    if (p.sent.empty()) p.inflight_bytes = 0;
    if (retired) {
      ++acks_;
      p.window = std::min(window_max_, p.window + window_max_ / 8);
      if (now >= 0 && now >= sent_at) sample_rtt(p, now - sent_at);
    }
  }

  /// Rejection (e.g. a Raft conflict reply): the peer's log diverged, so
  /// everything we pipelined after the rejected batch is garbage too. Clears
  /// the outstanding set and halves the window; the caller rolls its send
  /// cursor back (Raft already does, via next_index_).
  void on_reject(NodeId peer) {
    auto it = peers_.find(peer);
    if (it == peers_.end()) return;
    clear_and_halve(it->second);
    ++rollbacks_;
  }

  /// True when `peer`'s oldest outstanding batch has waited past the
  /// (RTT-adaptive) retransmit timeout — the loss-detection probe trigger.
  [[nodiscard]] bool retransmit_due(NodeId peer, Time now) const {
    auto it = peers_.find(peer);
    if (it == peers_.end() || it->second.sent.empty()) return false;
    return now - it->second.sent.front().at >= rto_of(it->second);
  }

  /// Loss handling: clears the outstanding set, halves the window, and
  /// returns the lowest position that was in flight — the caller restarts
  /// replication from there (retransmit probe).
  LogIndex on_loss(NodeId peer) {
    auto it = peers_.find(peer);
    if (it == peers_.end() || it->second.sent.empty()) return -1;
    LogIndex lo = it->second.sent.front().lo;
    clear_and_halve(it->second);
    ++rollbacks_;
    return lo;
  }

  /// Forgets one peer / every peer (leadership change: stale in-flight
  /// batches from the old reign must not gate or satisfy the new one).
  void reset(NodeId peer) { peers_.erase(peer); }
  void reset_all() { peers_.clear(); }

  [[nodiscard]] size_t outstanding_batches(NodeId peer) const {
    auto it = peers_.find(peer);
    return it == peers_.end() ? 0 : it->second.sent.size();
  }
  [[nodiscard]] size_t inflight_bytes(NodeId peer) const {
    auto it = peers_.find(peer);
    return it == peers_.end() ? 0 : it->second.inflight_bytes;
  }
  [[nodiscard]] size_t window(NodeId peer) const {
    auto it = peers_.find(peer);
    return it == peers_.end() ? window_max_ : it->second.window;
  }
  /// Effective retransmit timeout for `peer`: the configured floor until the
  /// first RTT sample, max(floor, srtt + 4 * rttvar) after.
  [[nodiscard]] Duration rto(NodeId peer) const {
    auto it = peers_.find(peer);
    return it == peers_.end() ? retransmit_timeout_ : rto_of(it->second);
  }
  /// Smoothed RTT estimate for `peer` (0 before the first sample).
  [[nodiscard]] Duration srtt(NodeId peer) const {
    auto it = peers_.find(peer);
    return it == peers_.end() || !it->second.rtt_seen ? 0 : it->second.srtt;
  }

  /// Window rollbacks (rejects + loss probes) — a chaos coverage signal:
  /// schedules that force the pipeline to unwind explore the rare paths.
  [[nodiscard]] int64_t rollbacks() const { return rollbacks_; }
  [[nodiscard]] int64_t sends() const { return sends_; }
  [[nodiscard]] int64_t acks() const { return acks_; }

 private:
  struct Sent {
    LogIndex lo;   // first position covered
    LogIndex hi;   // last position covered (the ack key)
    size_t bytes;  // wire payload billed when it was sent
    Time at;       // send time (loss detection)
  };
  struct Peer {
    std::deque<Sent> sent;  // oldest first; acks retire from the front
    size_t inflight_bytes = 0;
    size_t window = 0;  // initialized to window_max_ by touch()
    // Jacobson/Karels RTT estimator state (microseconds, like all Time).
    Duration srtt = 0;
    Duration rttvar = 0;
    bool rtt_seen = false;
  };

  /// Peer state, created open (window starts at the max; AIMD shrinks it on
  /// trouble rather than slow-starting every reign from the floor).
  Peer& touch(NodeId peer) {
    auto [it, inserted] = peers_.try_emplace(peer);
    if (inserted) it->second.window = window_max_;
    return it->second;
  }

  void clear_and_halve(Peer& p) {
    p.sent.clear();
    p.inflight_bytes = 0;
    p.window = std::max(window_min_, p.window / 2);
  }

  /// RFC 6298 update: first sample seeds srtt = R, rttvar = R/2; after that
  /// rttvar = 3/4 rttvar + 1/4 |srtt - R| and srtt = 7/8 srtt + 1/8 R.
  /// The RTT estimate converges even while the timeout stays pinned at the
  /// configured floor — only samples larger than the floor move the
  /// effective timeout.
  static void sample_rtt(Peer& p, Duration r) {
    if (!p.rtt_seen) {
      p.srtt = r;
      p.rttvar = r / 2;
      p.rtt_seen = true;
      return;
    }
    const Duration err = p.srtt > r ? p.srtt - r : r - p.srtt;
    p.rttvar = (3 * p.rttvar + err) / 4;
    p.srtt = (7 * p.srtt + r) / 8;
  }

  [[nodiscard]] Duration rto_of(const Peer& p) const {
    if (!rto_adaptive_ || !p.rtt_seen) return retransmit_timeout_;
    return std::max(retransmit_timeout_, p.srtt + 4 * p.rttvar);
  }

  bool pipeline_;
  size_t max_batches_;
  size_t window_max_;
  size_t window_min_;
  Duration retransmit_timeout_;
  bool rto_adaptive_;
  std::unordered_map<NodeId, Peer> peers_;
  int64_t rollbacks_ = 0;
  int64_t sends_ = 0;
  int64_t acks_ = 0;
};

}  // namespace praft::consensus
