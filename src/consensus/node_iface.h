#pragma once

#include "consensus/types.h"
#include "net/packet.h"

namespace praft::consensus {

/// Runtime-polymorphic face of a consensus protocol node. This is the
/// paper's structural-parallelism claim made executable: every protocol in
/// the repo (Raft, Raft*, MultiPaxos, Mencius) drives the same replicated
/// state machine through the same six verbs, so harness servers, clusters
/// and bench binaries can pick a protocol by name at runtime (see
/// consensus/registry.h) instead of being stamped out per protocol type.
class NodeIface {
 public:
  virtual ~NodeIface() = default;

  /// Arms timers. Call exactly once after construction.
  virtual void start() = 0;

  /// Feeds a network packet whose payload holds this protocol's message.
  virtual void on_packet(const net::Packet& p) = 0;

  /// Proposes `cmd`. Returns the assigned log position, or -1 when this
  /// node cannot propose right now (not the leader).
  virtual LogIndex submit(const kv::Command& cmd) = 0;

  /// Registers the in-order apply callback (exactly once per position).
  virtual void set_apply(ApplyFn fn) = 0;

  /// Registers a watermark observer on the node's Applier: called with the
  /// (commit, applied) watermarks after every advance. Used by invariant
  /// checkers (src/chaos); default no-op for nodes without an Applier.
  virtual void set_watermark_probe(WatermarkProbe probe) { (void)probe; }

  [[nodiscard]] virtual bool is_leader() const = 0;
  [[nodiscard]] virtual NodeId leader_hint() const = 0;
  /// True for protocols with no single elected leader (Mencius: every
  /// replica owns a residue class). Harnesses use this instead of matching
  /// protocol names, so registry-added protocols inherit the right handling.
  [[nodiscard]] virtual bool leaderless() const { return false; }
  /// Highest position known committed/chosen-contiguously.
  [[nodiscard]] virtual LogIndex commit_index() const = 0;
  [[nodiscard]] virtual NodeId id() const = 0;

  /// Kicks off an immediate leadership attempt (no-op for leaderless
  /// protocols like Mencius, where every replica owns a residue class).
  virtual void force_election() {}
};

}  // namespace praft::consensus
