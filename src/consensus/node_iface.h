#pragma once

#include "consensus/snapshot.h"
#include "consensus/types.h"
#include "net/packet.h"
#include "storage/wal.h"

namespace praft::consensus {

/// Runtime-polymorphic face of a consensus protocol node. This is the
/// paper's structural-parallelism claim made executable: every protocol in
/// the repo (Raft, Raft*, MultiPaxos, Mencius) drives the same replicated
/// state machine through the same six verbs, so harness servers, clusters
/// and bench binaries can pick a protocol by name at runtime (see
/// consensus/registry.h) instead of being stamped out per protocol type.
class NodeIface {
 public:
  virtual ~NodeIface() = default;

  /// Arms timers. Call exactly once after construction.
  virtual void start() = 0;

  /// Feeds a network packet whose payload holds this protocol's message.
  virtual void on_packet(const net::Packet& p) = 0;

  /// Proposes `cmd`. Returns the assigned log position, or -1 when this
  /// node cannot propose right now (not the leader).
  virtual LogIndex submit(const kv::Command& cmd) = 0;

  /// Registers the in-order apply callback (exactly once per position).
  virtual void set_apply(ApplyFn fn) = 0;

  /// Registers a watermark observer on the node's Applier: called with the
  /// (commit, applied) watermarks after every advance. Used by invariant
  /// checkers (src/chaos); default no-op for nodes without an Applier.
  virtual void set_watermark_probe(WatermarkProbe probe) { (void)probe; }

  /// Installs the snapshot capture/restore hooks on the node's Applier (the
  /// harness adapter that owns the kv::Store calls this once). Without them
  /// the node cannot compact or install snapshots; default no-op for nodes
  /// without an Applier.
  virtual void set_state_hooks(StateCapture capture, StateRestore restore) {
    (void)capture;
    (void)restore;
  }

  /// Compaction verb: checkpoint the state machine at the applied watermark
  /// and discard the covered log prefix now, regardless of the
  /// TimingOptions size/interval policy. No-op when state hooks are absent
  /// or nothing is compactable.
  virtual void compact() {}

  /// Highest position discarded from in-memory log storage (snapshot
  /// coverage). 0 / -1 before the first compaction, protocol start
  /// dependent.
  [[nodiscard]] virtual LogIndex compaction_floor() const { return 0; }

  /// Applied-but-not-yet-compacted positions — what the compactor is
  /// allowed to reclaim. The bounded-memory invariant caps this.
  [[nodiscard]] virtual size_t compactable_entries() const { return 0; }

  /// Log/slot entries physically resident in memory (diagnostics + bench).
  [[nodiscard]] virtual size_t resident_log_entries() const { return 0; }

  /// Snapshots this node installed from peers (catch-up via state transfer
  /// instead of log replay).
  [[nodiscard]] virtual int64_t snapshots_installed() const { return 0; }

  /// The node's current in-memory hard state mapped onto the shared shape
  /// (see consensus::HardState for the per-protocol field table). Default:
  /// an all-defaults state (protocols without durable state).
  [[nodiscard]] virtual HardState hard_state() const { return {}; }

  /// Stages the current hard state into the node's durable store now (the
  /// next fsync barrier covers it). No-op for diskless nodes.
  virtual void persist_hard_state() {}

  /// Observes the hard state each outgoing message depended on, at the
  /// moment the message actually leaves the node (after its fsync barrier —
  /// or without one, for the injected persistence bug). Installed by the
  /// chaos checker; default no-op for diskless nodes.
  virtual void set_hard_state_probe(HardStateProbe probe) { (void)probe; }

  /// Rebuilds this node's protocol state purely from its durable image:
  /// hard state, newest snapshot (installed through the Applier's state
  /// hooks, which must already be set), and a WAL replay of everything above
  /// the snapshot floor. Called once, after set_apply/set_state_hooks and
  /// before start(). Default: diskless node, nothing to recover.
  virtual storage::RecoveryStats recover(const storage::DurableImage& img) {
    (void)img;
    return {};
  }

  /// Revocations this node started (Mencius; 0 elsewhere). A chaos coverage
  /// signal — schedules that trigger revocations explore the rare paths.
  [[nodiscard]] virtual int64_t revocations_started() const { return 0; }

  /// Replication-pipeline window rollbacks this node performed as leader
  /// (reject-driven unwinds + loss-detection retransmit probes; see
  /// consensus::PeerPipeline). A chaos coverage signal — schedules that
  /// force in-flight windows to unwind explore the pipeline's rare paths.
  [[nodiscard]] virtual int64_t pipeline_rollbacks() const { return 0; }

  [[nodiscard]] virtual bool is_leader() const = 0;
  [[nodiscard]] virtual NodeId leader_hint() const = 0;
  /// True for protocols with no single elected leader (Mencius: every
  /// replica owns a residue class). Harnesses use this instead of matching
  /// protocol names, so registry-added protocols inherit the right handling.
  [[nodiscard]] virtual bool leaderless() const { return false; }
  /// Highest position known committed/chosen-contiguously.
  [[nodiscard]] virtual LogIndex commit_index() const = 0;
  /// Highest position delivered to the state machine (== commit_index for
  /// gap-free protocols; MultiPaxos/Mencius may trail while repairing).
  [[nodiscard]] virtual LogIndex applied_index() const {
    return commit_index();
  }
  [[nodiscard]] virtual NodeId id() const = 0;

  /// Kicks off an immediate leadership attempt (no-op for leaderless
  /// protocols like Mencius, where every replica owns a residue class).
  virtual void force_election() {}
};

}  // namespace praft::consensus
