#pragma once

#include "mencius/messages.h"
#include "net/wire.h"

namespace praft::mencius {

/// Flat-frame codec for the Mencius message family (net/wire.h layout,
/// Family::kMencius, opcode = variant alternative index). encode() produces
/// exactly wire_size(m) bytes and decode() inverts it.
net::Frame encode(const Message& m, net::BufferPool& pool);
Message decode(net::FrameView f);

}  // namespace praft::mencius
