#include "mencius/node.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"

namespace praft::mencius {

namespace {
constexpr consensus::Term kDecidedBal = std::numeric_limits<consensus::Term>::max();
}

MenciusNode::MenciusNode(consensus::Group group, consensus::Env& env,
                         Options opt, storage::DurableStore* store)
    : group_(std::move(group)),
      env_(env),
      opt_(opt),
      persister_(env, store, opt_.fsync_duration, opt_.sync_batch_delay,
                 [this] { return hard_state(); }),
      status_(env),
      batcher_(env, opt_, [this] { flush(); }),
      applier_(/*start=*/-1),
      pipe_(opt_) {
  group_.validate();
  rank_ = group_.rank_of(group_.self);
  n_ = group_.n();
  next_own_ = rank_;
  for (NodeId m : group_.members) {
    owner_floor_[m] = 0;
    owner_rev_floor_[m] = -1;
    last_heard_[m] = 0;
  }
  // Write-ahead mirroring: persist_slot() routes a slot's full durable
  // state (value ballot, revocation promise, decided flag) through this hook
  // into one coalescing WAL record per slot.
  slots_.set_persistence(
      [this](LogIndex i, const Slot& sl) {
        storage::WalRecord r;
        r.index = i;
        r.term = sl.bal.round;
        r.vnode = sl.bal.node;
        r.promised = sl.promised.round;
        r.pnode = sl.promised.node;
        r.decided = sl.st == St::kDecided;
        r.has_value = sl.st != St::kEmpty;
        r.cmd = sl.cmd;
        persister_.record(std::move(r));
      });
  status_.set_handler([this] { maintenance(); });
  applier_.set_apply([this](LogIndex i, const kv::Command& cmd) {
    on_slot_applied(i, cmd);
  });
}

void MenciusNode::start() {
  last_progress_ = env_.now();
  status_.start(opt_.heartbeat_interval);
}

MenciusNode::Slot& MenciusNode::slot(LogIndex i) {
  PRAFT_CHECK(i >= 0);
  return slots_.materialize(i);
}

const MenciusNode::Slot* MenciusNode::slot_if(LogIndex i) const {
  return slots_.find(i);
}

const kv::Command* MenciusNode::decided_at(LogIndex i) const {
  const auto it = std::lower_bound(
      decided_history_.begin(), decided_history_.end(), i,
      [](const std::pair<LogIndex, kv::Command>& e, LogIndex key) {
        return e.first < key;
      });
  if (it == decided_history_.end() || it->first != i) return nullptr;
  return &it->second;
}

LogIndex MenciusNode::own_decided_floor() const {
  // Smallest own slot not known decided. Own slots below the apply floor
  // are decided by construction; walk the residue class from there.
  const LogIndex floor = afloor();
  LogIndex f = floor + ((rank_ - floor) % n_ + n_) % n_;
  while (true) {
    if (f >= next_own_) break;  // unused slots are undecided by definition
    const Slot* s = slot_if(f);
    if (s == nullptr || s->st != St::kDecided) break;
    f += n_;
  }
  return f;
}

// ---------------------------------------------------------------------------
// Proposing on own slots.
// ---------------------------------------------------------------------------

LogIndex MenciusNode::submit(const kv::Command& cmd) {
  // Backpressure: a full replication pipe refuses new submissions (temporary
  // -1, retried by the harness). A backpressured re-propose (the
  // on_accept_own_rej path) drops the command until the client retries —
  // the same outcome as losing the original Accept.
  if (!batcher_.can_accept()) return -1;
  // A revocation may have consumed own slots we never proposed on (it
  // sweeps the whole range, unused turns included) — without this skip a
  // fresh proposal would stomp a decided slot and resurrect it at ballot 0.
  while (next_own_ < afloor() ||
         (slots_.find(next_own_) != nullptr &&
          slots_.find(next_own_)->st != St::kEmpty)) {
    next_own_ += n_;
  }
  const LogIndex i = next_own_;
  next_own_ += n_;
  max_seen_ = std::max(max_seen_, i);
  Slot& s = slot(i);
  s.st = St::kValued;
  s.cmd = cmd;
  s.bal = Ballot{0, group_.self};
  s.acks.clear();  // self joins via the fsync barrier below
  s.proposed_at = env_.now();
  s.own_pending_ack = true;
  own_unacked_.push_back(i);
  slot_got_value(i, s);
  persist_slot(i);
  persister_.hard_state();  // next_own_ moved: never reuse this slot
  // The owner's implicit self-accept counts toward the ballot-0 quorum only
  // once the value is durable (same rule as the Paxos proposer).
  persister_.barrier([this, i] {
    Slot* sl = slots_.find(i);
    if (sl == nullptr || sl->st != St::kValued ||
        !(sl->bal == Ballot{0, group_.self})) {
      return;
    }
    bool dup = false;
    for (NodeId a : sl->acks) dup |= (a == group_.self);
    if (!dup) sl->acks.push_back(group_.self);
    if (static_cast<int>(sl->acks.size()) >=
        opt_.commit_quorum(group_.majority())) {
      decide(i, sl->cmd);
      advance_floors();
    }
  });
  pending_.push_back(OwnItem{i, cmd});
  // An OwnItem rides the next AcceptOwn as (index, command) — account its
  // exact encoded size toward the byte-budget flush.
  batcher_.add_pending(wire::entry_bytes(cmd));
  advance_floors();
  return i;
}

void MenciusNode::flush() {
  if (pending_.empty() && pending_skips_.empty()) return;
  for (NodeId peer : group_.members) {
    if (peer == group_.self) continue;
    PeerOut& out = outbox_[peer];
    for (const OwnItem& item : pending_) out.items.push_back(item);
    for (const auto& sk : pending_skips_) out.skips.push_back(sk);
    pump_peer(peer);
  }
  pending_.clear();
  pending_skips_.clear();
}

void MenciusNode::pump_peer(NodeId peer) {
  auto oit = outbox_.find(peer);
  if (oit == outbox_.end()) return;
  PeerOut& out = oit->second;
  // Skip announcements ride ahead of the window when it has room: they are
  // tiny, carry no ack, and unblock the colleague's view of our turns.
  if (pipe_.can_send(peer)) {
    for (const auto& [lo, hi] : out.skips) {
      const SkipRange sr{group_.self, lo, hi};
      persister_.send(peer, Message{sr}, wire_size(sr));
    }
    out.skips.clear();
  }
  while (!out.items.empty() && pipe_.can_send(peer)) {
    // Prune items already executed here: that peer no longer needs our
    // accept for them (it learns them via watermarks or LearnReq).
    while (!out.items.empty() && out.items.front().index < afloor()) {
      out.items.pop_front();
    }
    if (out.items.empty()) return;
    AcceptOwn ao;
    ao.owner = group_.self;
    size_t payload = 0;
    while (!out.items.empty() &&
           ao.items.size() < opt_.max_entries_per_batch) {
      payload += wire::entry_bytes(out.items.front().cmd);
      ao.items.push_back(std::move(out.items.front()));
      out.items.pop_front();
      if (opt_.batch_flush_bytes > 0 && payload >= opt_.batch_flush_bytes) {
        break;
      }
    }
    ao.decided_floor = own_decided_floor();
    ao.rev_floor = own_rev_floor_;
    const size_t bytes = wire_size(ao);
    persister_.send(peer, Message{ao}, bytes);
    pipe_.on_send(peer, ao.items.front().index, ao.items.back().index, bytes,
                  env_.now());
  }
}

void MenciusNode::broadcast(Message m) {
  const size_t bytes = wire_size(m);
  for (NodeId peer : group_.members) {
    if (peer == group_.self) continue;
    persister_.send(peer, m, bytes);
  }
}

void MenciusNode::skip_own_upto(LogIndex boundary) {
  if (next_own_ >= boundary) return;
  const LogIndex first = next_own_;
  LogIndex last = first;
  while (next_own_ < boundary) {
    const LogIndex i = next_own_;
    next_own_ += n_;
    max_seen_ = std::max(max_seen_, i);
    if (opt_.decide_own_skips) {
      decide(i, kv::noop_command());
    } else {
      // Ablation A2: the broken hand-port forgets the implicit Phase2b at
      // the proposer; the slot holds the no-op but is never decided here.
      // (A skip is not a proposal, so the retransmission path must not
      // resurrect it either — that is exactly what the hand-port lacks.)
      Slot& s = slot(i);
      if (s.st == St::kEmpty) {
        s.st = St::kValued;
        s.cmd = kv::noop_command();
        s.bal = Ballot{0, group_.self};
        s.proposed_at = kTimeMax / 2;
        persist_slot(i);
      }
    }
    ++slots_skipped_;
    last = i;
  }
  persister_.hard_state();  // next_own_ jumped past the skipped turns
  pending_skips_.emplace_back(first, last + 1);
  batcher_.add_pending(wire_size(SkipRange{group_.self, first, last + 1}));
}

// ---------------------------------------------------------------------------
// Slot state transitions.
// ---------------------------------------------------------------------------

void MenciusNode::slot_got_value(LogIndex /*i*/, Slot& s) {
  if (s.cmd.is_noop()) return;
  ++unapplied_ops_[s.cmd.key];
  if (s.cmd.is_write()) ++unapplied_writes_[s.cmd.key];
}

void MenciusNode::decide(LogIndex i, const kv::Command& cmd) {
  if (i < afloor()) return;
  Slot& s = slot(i);
  if (s.st == St::kDecided) return;
  if (s.st == St::kValued) {
    // A revocation may decide a different value than the one we hold.
    if (!(s.cmd == cmd)) {
      if (owner_of(i) == group_.self) {
        // Our own slot was revoked from under us. Publish that before the
        // decided floor can pass it: peers holding our stale ballot-0 value
        // would otherwise treat "below the owner's decided floor" as
        // authoritative and resurrect the dead value (the auto-decide rule
        // in note_owner_watermark skips the zone below rev_floor).
        own_rev_floor_ = std::max(own_rev_floor_, i);
        persister_.hard_state();
      }
      if (!s.cmd.is_noop()) {
        --unapplied_ops_[s.cmd.key];
        if (s.cmd.is_write()) --unapplied_writes_[s.cmd.key];
      }
      if (s.own_pending_ack) {
        // Our proposal lost its slot to a revoker's no-op: re-propose it on
        // a fresh own slot (the client sees one completion; the server
        // adapter keys replies on (client, seq)).
        const kv::Command lost = s.cmd;
        s.own_pending_ack = false;
        submit(lost);
      }
      s.cmd = cmd;
      if (!cmd.is_noop()) {
        ++unapplied_ops_[cmd.key];
        if (cmd.is_write()) ++unapplied_writes_[cmd.key];
      }
    }
  } else {
    s.cmd = cmd;
    slot_got_value(i, s);
  }
  s.st = St::kDecided;
  s.bal = Ballot{kDecidedBal, kNoNode};
  max_seen_ = std::max(max_seen_, i);
  // A decided own slot is off the wire for the batching controller.
  if (owner_of(i) == group_.self) {
    batcher_.note_acked(wire::entry_bytes(s.cmd));
  }
  persist_slot(i);
}

void MenciusNode::advance_floors() {
  if (advancing_) return;  // decide()->submit() can re-enter; outer finishes
  advancing_ = true;
  advance_floors_inner();
  advancing_ = false;
}

void MenciusNode::advance_floors_inner() {
  if (info_floor_ < afloor()) info_floor_ = afloor();
  while (true) {
    const Slot* s = slot_if(info_floor_);
    if (s == nullptr || s->st == St::kEmpty) break;
    ++info_floor_;
  }
  const LogIndex before = afloor();
  // Execute the contiguous decided prefix in slot order; the shared applier
  // guarantees exactly-once in-order delivery and pauses at the first
  // undecided slot.
  applier_.drain([this](LogIndex i) -> const kv::Command* {
    const Slot* s = slots_.find(i);
    return (s != nullptr && s->st == St::kDecided) ? &s->cmd : nullptr;
  });
  if (afloor() > before) last_progress_ = env_.now();
  if (info_floor_ < afloor()) info_floor_ = afloor();
  maybe_compact(/*force=*/false);
  try_ack_own();
}

size_t MenciusNode::history_above_floor() const {
  const LogIndex floor = snap_.valid() ? snap_.last_index : -1;
  const auto it = std::lower_bound(
      decided_history_.begin(), decided_history_.end(), floor + 1,
      [](const std::pair<LogIndex, kv::Command>& e, LogIndex key) {
        return e.first < key;
      });
  return static_cast<size_t>(decided_history_.end() - it);
}

void MenciusNode::maybe_compact(bool force) {
  if (recovering_ || !applier_.can_snapshot()) return;
  if (!compaction_.due(opt_, history_above_floor(), env_.now(), force)) {
    return;
  }
  // Checkpoint at the applied floor. Unlike the log-structured protocols,
  // Mencius prunes slots at apply time already; what compaction bounds is
  // the decided-value history retained for revocation prepares and learn
  // requests. Keep a warm tail (half the cap) so recent slots are still
  // answered cheaply; anything older is served as a snapshot.
  snap_.last_index = applier_.applied();
  snap_.last_term = 0;
  snap_.state = applier_.capture_state();
  // Under an interval-only policy (cap == 0) keep a fixed warm tail:
  // emptying the history entirely would turn every learn/revocation touch
  // of a recently executed slot into a full snapshot transfer.
  constexpr size_t kIntervalWarmTail = 1024;
  const size_t keep =
      opt_.compaction_log_cap > 0 ? opt_.compaction_log_cap / 2
                                  : kIntervalWarmTail;
  while (decided_history_.size() > keep) decided_history_.pop_front();
  persister_.snapshot(snap_);
  compaction_.fired(env_.now());
  PRAFT_LOG(kDebug) << "mencius " << group_.self << " checkpointed @"
                    << snap_.last_index;
}

void MenciusNode::send_snapshot(NodeId to) {
  if (!snap_.valid()) return;
  SnapshotXfer sx{group_.self, snap_};
  persister_.send(to, Message{sx}, wire_size(sx));
}

bool MenciusNode::revocation_done() const {
  const int orank = group_.rank_of(rev_.owner);
  LogIndex i = rev_.lo + (((orank - rev_.lo) % n_) + n_) % n_;
  for (; i < rev_.hi; i += n_) {
    if (i < afloor()) continue;
    const Slot* s = slot_if(i);
    if (s == nullptr || s->st != St::kDecided) return false;
  }
  return true;
}

void MenciusNode::on_snapshot_xfer(const SnapshotXfer& m) {
  last_heard_[m.from] = env_.now();
  if (!applier_.install_snapshot(m.snap)) return;
  ++snapshots_installed_;
  if (m.snap.last_index > snap_.last_index) snap_ = m.snap;
  persister_.snapshot(m.snap);
  // Our own slots below the jump may have been revoked while we were away;
  // publishing the conservative rev floor keeps peers from auto-deciding a
  // stale ballot-0 value of ours in that zone (explicit learns only).
  own_rev_floor_ = std::max(own_rev_floor_, m.snap.last_index);
  persister_.hard_state();
  // Prune every covered slot, releasing commutativity counters and dropping
  // un-acked own proposals (their slots were decided without us; the client
  // retries through the server adapter).
  slots_.set_floor(m.snap.last_index, [this](LogIndex, const Slot& s) {
    if (s.st != St::kEmpty && !s.cmd.is_noop()) {
      --unapplied_ops_[s.cmd.key];
      if (s.cmd.is_write()) --unapplied_writes_[s.cmd.key];
    }
  });
  max_seen_ = std::max(max_seen_, m.snap.last_index);
  while (next_own_ < afloor()) next_own_ += n_;
  if (info_floor_ < afloor()) info_floor_ = afloor();
  last_progress_ = env_.now();
  if (rev_.active && revocation_done()) rev_.active = false;
  PRAFT_LOG(kInfo) << "mencius " << group_.self << " installed snapshot @"
                   << m.snap.last_index;
  advance_floors();
}

void MenciusNode::on_slot_applied(LogIndex i, const kv::Command& cmd) {
  // Apply-time bookkeeping around the shared applier: release commutativity
  // counters, late-ack our own proposal, retain the decided value for
  // revocation prepares, then prune the slot.
  auto it = slots_.lookup(i);
  PRAFT_CHECK(it != slots_.end());
  Slot& s = it->second;
  if (!s.cmd.is_noop()) {
    --unapplied_ops_[s.cmd.key];
    if (s.cmd.is_write()) --unapplied_writes_[s.cmd.key];
  }
  if (s.own_pending_ack && acked_) acked_(s.cmd);
  if (apply_) apply_(i, cmd);
  decided_history_.emplace_back(i, cmd);
  if (decided_history_.size() > kHistoryCap) decided_history_.pop_front();
  slots_.erase(it);
}

bool MenciusNode::commutes_below(LogIndex /*i*/,
                                 const kv::Command& cmd) const {
  // Conservative: counts cover ALL unexecuted valued slots (including slots
  // above the probed one, which execute after it anyway) — false conflicts
  // only.
  if (cmd.is_noop()) return true;
  if (cmd.is_read()) {
    auto it = unapplied_writes_.find(cmd.key);
    return it == unapplied_writes_.end() || it->second == 0;
  }
  auto it = unapplied_ops_.find(cmd.key);
  const int others = (it == unapplied_ops_.end() ? 0 : it->second) - 1;
  return others <= 0;
}

void MenciusNode::try_ack_own() {
  if (!acked_) {
    own_unacked_.clear();
    return;
  }
  for (auto it = own_unacked_.begin(); it != own_unacked_.end();) {
    const LogIndex i = *it;
    if (i < afloor()) {
      // Acked at apply time (or already re-proposed); drop the tracker.
      it = own_unacked_.erase(it);
      continue;
    }
    Slot* s = slots_.find(i);
    if (s == nullptr) {
      it = own_unacked_.erase(it);
      continue;
    }
    if (!s->own_pending_ack) {
      it = own_unacked_.erase(it);
      continue;
    }
    // Early ack (the Mencius commutativity optimization, §5.2): our value is
    // committed on a majority AND every earlier unexecuted slot is known and
    // commutes with it.
    if (s->st == St::kDecided && info_floor_ >= i &&
        commutes_below(i, s->cmd)) {
      s->own_pending_ack = false;
      acked_(s->cmd);
      it = own_unacked_.erase(it);
      continue;
    }
    ++it;
  }
}

// ---------------------------------------------------------------------------
// Fast-path message handlers.
// ---------------------------------------------------------------------------

void MenciusNode::note_owner_watermark(NodeId owner, LogIndex decided_floor,
                                       LogIndex rev_floor) {
  owner_floor_[owner] = std::max(owner_floor_[owner], decided_floor);
  owner_rev_floor_[owner] = std::max(owner_rev_floor_[owner], rev_floor);
  if (owner == group_.self) return;
  // Auto-decide: a ballot-0 value from `owner` below its decided watermark
  // (and above its revocation floor) IS the decided value — the owner is the
  // only ballot-0 proposer of its slots.
  const int orank = group_.rank_of(owner);
  const LogIndex base = afloor();
  LogIndex i = base + ((orank - base) % n_ + n_) % n_;
  const LogIndex floor = owner_floor_[owner];
  const LogIndex rf = owner_rev_floor_[owner];
  for (; i < floor; i += n_) {
    if (i <= rf) continue;  // revoked zone: explicit decides only
    Slot* s = slots_.find(i);
    if (s == nullptr) continue;
    if (s->st == St::kValued && s->bal == Ballot{0, owner}) {
      decide(i, s->cmd);
    }
  }
}

void MenciusNode::on_accept_own(const AcceptOwn& m) {
  last_heard_[m.owner] = env_.now();
  AcceptOwnOk ok;
  ok.acceptor = group_.self;
  AcceptOwnRej rej;
  rej.acceptor = group_.self;
  LogIndex max_item = -1;
  for (const OwnItem& item : m.items) {
    max_seen_ = std::max(max_seen_, item.index);
    max_item = std::max(max_item, item.index);
    if (item.index < afloor()) {
      // Long since executed. Re-ack only when the decided value IS the
      // owner's value (benign retransmission). A revoked slot was decided
      // no-op: blindly re-acking would let an owner that missed the
      // revocation assemble a majority for a value everyone else skipped —
      // divergent state machines (found by the chaos harness). A slot aged
      // out of the retained history is treated the same as a mismatch:
      // acking a value we cannot confirm risks that divergence, while a
      // reject merely sends the owner through its learn/re-propose path.
      const kv::Command* decided = decided_at(item.index);
      if (decided != nullptr && *decided == item.cmd) {
        ok.indexes.push_back(item.index);
      } else {
        rej.indexes.push_back(item.index);
        rej.jump_past = std::max(rej.jump_past, owner_rev_floor_[m.owner]);
      }
      continue;
    }
    Slot& s = slot(item.index);
    if (s.promised > Ballot{0, m.owner}) {
      rej.indexes.push_back(item.index);
      rej.jump_past = std::max(rej.jump_past, owner_rev_floor_[m.owner]);
      continue;
    }
    if (s.st == St::kEmpty) {
      s.st = St::kValued;
      s.cmd = item.cmd;
      s.bal = Ballot{0, m.owner};
      slot_got_value(item.index, s);
      persist_slot(item.index);
    }
    ok.indexes.push_back(item.index);
  }
  // Seeing someone else's slot i means our unused turns below i are dead
  // weight for everyone: cede them (skip tags, paper §A.3).
  if (max_item >= 0) skip_own_upto(max_item);
  note_owner_watermark(m.owner, m.decided_floor, m.rev_floor);
  if (!ok.indexes.empty()) {
    // The ok is what the owner counts toward its ballot-0 quorum: it leaves
    // only after the accepted values above are durable.
    if (opt_.unsafe_skip_vote_fsync) {
      // TEST-ONLY injected bug: Mencius's Phase2b ack is its everyday vote
      // analog (RevPrepareOk, the literal vote, is too rare to convict the
      // bug within the seed budget) — let it leave before the accepted
      // values and the jumped own-slot cursor hit disk.
      persister_.send_unsynced(m.owner, Message{ok}, wire_size(ok));
    } else {
      persister_.send(m.owner, Message{ok}, wire_size(ok));
    }
  }
  if (!rej.indexes.empty()) {
    persister_.send(m.owner, Message{rej}, wire_size(rej));
  }
  advance_floors();
}

void MenciusNode::on_accept_own_ok(const AcceptOwnOk& m) {
  // Cumulative ack for this colleague's stream (indexes arrive in send
  // order, so the max covers every batch up to it); refill its window after
  // the tallies below.
  LogIndex acked = -1;
  for (LogIndex i : m.indexes) acked = std::max(acked, i);
  if (acked >= 0) pipe_.on_ack(m.acceptor, acked, env_.now());
  for (LogIndex i : m.indexes) {
    Slot* s = slots_.find(i);
    if (s == nullptr) continue;
    if (s->st != St::kValued || !(s->bal == Ballot{0, group_.self})) continue;
    bool dup = false;
    for (NodeId a : s->acks) dup |= (a == m.acceptor);
    if (dup) continue;
    s->acks.push_back(m.acceptor);
    if (static_cast<int>(s->acks.size()) >=
        opt_.commit_quorum(group_.majority())) {
      decide(i, s->cmd);  // committed on a majority at ballot 0
    }
  }
  pump_peer(m.acceptor);
  advance_floors();
}

void MenciusNode::on_accept_own_rej(const AcceptOwnRej& m) {
  // A rejection still answers the batch (the acceptor processed it): retire
  // it from the in-flight window — the slots' real decisions arrive via the
  // revoker/learn paths, not a retransmit.
  LogIndex answered = -1;
  for (LogIndex i : m.indexes) answered = std::max(answered, i);
  if (answered >= 0) pipe_.on_ack(m.acceptor, answered, env_.now());
  for (LogIndex i : m.indexes) {
    own_rev_floor_ = std::max(own_rev_floor_, i);
    Slot* s = slots_.find(i);
    if (s == nullptr) continue;
    if (s->st == St::kValued && s->own_pending_ack) {
      const kv::Command lost = s->cmd;
      s->own_pending_ack = false;
      submit(lost);  // re-propose on a fresh slot
    }
    // Stop retransmitting the dead ballot-0 proposal; the slot's real
    // decision (usually the revoker's no-op) arrives via RevAccept/
    // LearnVals, or the stall path in maintenance() asks for it.
    if (s->st == St::kValued && s->bal == Ballot{0, group_.self}) {
      s->bal = Ballot{};
      persist_slot(i);
    }
  }
  while (next_own_ <= m.jump_past) next_own_ += n_;
  persister_.hard_state();  // own_rev_floor_ / next_own_ moved
  pump_peer(m.acceptor);
  advance_floors();
}

void MenciusNode::on_skip_range(const SkipRange& m) {
  last_heard_[m.owner] = env_.now();
  const int orank = group_.rank_of(m.owner);
  LogIndex i = m.lo + (((orank - m.lo) % n_) + n_) % n_;
  for (; i < m.hi; i += n_) {
    if (i < afloor()) continue;
    decide(i, kv::noop_command());
  }
  max_seen_ = std::max(max_seen_, m.hi - 1);
  advance_floors();
}

void MenciusNode::on_status(const StatusBeat& m) {
  last_heard_[m.from] = env_.now();
  // A peer's slot consumption drags our unused turns forward even when we
  // never see its accepts directly (e.g. they raced past us).
  note_owner_watermark(m.from, m.decided_floor, m.rev_floor);
  // Slots below the peer's decided floor certainly exist, even if we missed
  // every accept for them (e.g. we were crashed): without this a replica
  // that slept through the tail of the log never notices it is stalled and
  // never asks to learn it.
  max_seen_ = std::max(max_seen_, m.decided_floor - 1);
  advance_floors();
}

void MenciusNode::on_learn_req(const LearnReq& m) {
  // Answer with every decided slot we know in the range, whether or not we
  // own it: a decision is final, so anyone who holds it may teach it. (An
  // owner whose slots were revoked while it was partitioned can only learn
  // the no-op decisions from non-owners — the revoker may be down.)
  LearnVals lv;
  lv.from = group_.self;
  bool aged_out = false;
  for (LogIndex i = m.lo; i < m.hi; ++i) {
    if (i < afloor()) {
      if (const kv::Command* cmd = decided_at(i)) {
        lv.slots.push_back(SlotInfo{i, cmd->is_noop(), *cmd});
      } else if (i <= snap_.last_index) {
        // Executed but aged out of the history: the checkpoint covers it.
        aged_out = true;
      }
      continue;
    }
    const Slot* s = slot_if(i);
    if (s != nullptr && s->st == St::kDecided) {
      lv.slots.push_back(SlotInfo{i, s->cmd.is_noop(), s->cmd});
    }
  }
  if (aged_out) send_snapshot(m.from);
  if (!lv.slots.empty()) persister_.send(m.from, Message{lv}, wire_size(lv));
}

void MenciusNode::on_learn_vals(const LearnVals& m) {
  for (const SlotInfo& si : m.slots) {
    decide(si.index, si.skipped ? kv::noop_command() : si.cmd);
  }
  advance_floors();
}

// ---------------------------------------------------------------------------
// Revocation (coordinated-Paxos phase 1/2 at ballots > 0, paper §A.3).
// ---------------------------------------------------------------------------

void MenciusNode::start_revocation(NodeId owner, LogIndex lo, LogIndex hi) {
  if (rev_.active || hi <= lo) return;
  ++revocations_;
  rev_ = Revocation{};
  rev_.active = true;
  rev_.bal = Ballot{++rev_round_, group_.self};
  rev_.owner = owner;
  rev_.lo = lo;
  rev_.hi = hi;
  rev_.promises = {group_.self};
  PRAFT_LOG(kInfo) << "mencius " << group_.self << " revokes slots of "
                   << owner << " in [" << lo << "," << hi << ")";
  // Self-promise, seeding with our own accepted values.
  const int orank = group_.rank_of(owner);
  LogIndex i = lo + (((orank - lo) % n_) + n_) % n_;
  for (; i < hi; i += n_) {
    if (i < afloor()) continue;
    Slot& s = slot(i);
    if (rev_.bal > s.promised) {
      s.promised = rev_.bal;
      persist_slot(i);
    }
    if (s.st != St::kEmpty) {
      rev_.best[i] = RevAccepted{i, s.bal, true, s.cmd.is_noop(), s.cmd};
    }
  }
  max_promised_round_ = std::max(max_promised_round_, rev_.bal.round);
  persister_.hard_state();  // rev_round_ bumped + our own promises
  broadcast(Message{RevPrepare{group_.self, rev_.bal, owner, lo, hi}});
}

void MenciusNode::on_rev_prepare(const RevPrepare& m) {
  RevPrepareOk ok;
  ok.from = group_.self;
  ok.bal = m.bal;
  const int orank = group_.rank_of(m.owner);
  LogIndex i = m.lo + (((orank - m.lo) % n_) + n_) % n_;
  for (; i < m.hi; i += n_) {
    if (i < afloor()) {
      // Already executed: report the decided value at the top ballot so the
      // revoker cannot choose anything else. If the decision aged out of
      // the retained history we must NOT promise at all — an ok that omits
      // an executed slot's value would let the revoker choose a no-op over
      // it (P2c violation). Teach the revoker with the checkpoint instead;
      // it is stalled far behind and installs its way past this range.
      if (const kv::Command* cmd = decided_at(i)) {
        ok.accepted.push_back(RevAccepted{i, Ballot{kDecidedBal, kNoNode},
                                          true, cmd->is_noop(), *cmd});
      } else if (i <= snap_.last_index) {
        send_snapshot(m.from);
        return;
      }
      continue;
    }
    Slot& s = slot(i);
    if (m.bal <= s.promised) return;  // stale revoker: ignore whole prepare
    s.promised = m.bal;
    persist_slot(i);
    if (s.st != St::kEmpty) {
      ok.accepted.push_back(RevAccepted{i, s.bal, true, s.cmd.is_noop(), s.cmd});
    }
  }
  max_promised_round_ = std::max(max_promised_round_, m.bal.round);
  persister_.hard_state();
  if (opt_.unsafe_skip_vote_fsync) {
    // TEST-ONLY injected bug: the promise leaves before it hits disk.
    persister_.send_unsynced(m.from, Message{ok}, wire_size(ok));
  } else {
    persister_.send(m.from, Message{ok}, wire_size(ok));
  }
}

void MenciusNode::on_rev_prepare_ok(const RevPrepareOk& m) {
  if (!rev_.active || rev_.phase2 || !(m.bal == rev_.bal)) return;
  bool dup = false;
  for (NodeId a : rev_.promises) dup |= (a == m.from);
  if (dup) return;
  rev_.promises.push_back(m.from);
  for (const RevAccepted& a : m.accepted) {
    auto it = rev_.best.find(a.index);
    if (it == rev_.best.end() || a.bal > it->second.bal) rev_.best[a.index] = a;
  }
  if (static_cast<int>(rev_.promises.size()) < group_.majority()) return;
  // Phase 2: re-propose safe values, no-op (skip) everywhere else.
  rev_.phase2 = true;
  RevAccept ra;
  ra.from = group_.self;
  ra.bal = rev_.bal;
  std::vector<LogIndex> self_accepted;
  const int orank = group_.rank_of(rev_.owner);
  LogIndex i = rev_.lo + (((orank - rev_.lo) % n_) + n_) % n_;
  for (; i < rev_.hi; i += n_) {
    auto it = rev_.best.find(i);
    const kv::Command cmd =
        (it != rev_.best.end() && it->second.has && !it->second.skipped)
            ? it->second.cmd
            : kv::noop_command();
    ra.items.push_back(OwnItem{i, cmd});
    if (i >= afloor()) {
      Slot& s = slot(i);
      // Self-accept (the ack joins the tally via the fsync barrier below).
      if (s.st != St::kDecided) {
        if (s.st == St::kValued && !(s.cmd == cmd)) {
          if (!s.cmd.is_noop()) {
            --unapplied_ops_[s.cmd.key];
            if (s.cmd.is_write()) --unapplied_writes_[s.cmd.key];
          }
          s.cmd = cmd;
          if (!cmd.is_noop()) {
            ++unapplied_ops_[cmd.key];
            if (cmd.is_write()) ++unapplied_writes_[cmd.key];
          }
        } else if (s.st == St::kEmpty) {
          s.cmd = cmd;
          slot_got_value(i, s);
        }
        s.st = St::kValued;
        s.bal = rev_.bal;
        persist_slot(i);
      }
      rev_.acks[i] = {};
      self_accepted.push_back(i);
    }
  }
  broadcast(Message{ra});
  persister_.barrier([this, bal = rev_.bal, self_accepted] {
    if (!rev_.active || !(rev_.bal == bal)) return;
    LearnVals lv;
    lv.from = group_.self;
    for (LogIndex k : self_accepted) note_rev_ack(bal, k, group_.self, lv);
    if (!lv.slots.empty()) broadcast(Message{lv});
    if (revocation_done()) rev_.active = false;
    advance_floors();
  });
  advance_floors();
}

void MenciusNode::on_rev_accept(const RevAccept& m) {
  RevAcceptOk ok;
  ok.from = group_.self;
  ok.bal = m.bal;
  bool aged_out = false;
  for (const OwnItem& item : m.items) {
    if (item.index < afloor()) {
      // Executed here. Ack only when the revoker's value IS the decided one
      // (same rule as on_accept_own's re-ack path): acking an unverifiable
      // value could hand a majority to a proposal that contradicts an
      // applied decision. An aged-out slot gets the checkpoint instead.
      const kv::Command* decided = decided_at(item.index);
      if (decided != nullptr && *decided == item.cmd) {
        ok.indexes.push_back(item.index);
      } else if (decided == nullptr && item.index <= snap_.last_index) {
        aged_out = true;
      }
      continue;
    }
    Slot& s = slot(item.index);
    if (m.bal < s.promised) continue;
    s.promised = m.bal;
    if (owner_of(item.index) == group_.self) {
      // One of our own slots is being revoked (every RevAccept ballot is
      // > 0). Record it before our decided floor passes the slot, so the
      // published rev_floor keeps peers from auto-deciding whatever stale
      // ballot-0 value of ours they still hold (see note_owner_watermark).
      own_rev_floor_ = std::max(own_rev_floor_, item.index);
    }
    if (s.st != St::kDecided) {
      if (s.st == St::kValued && !(s.cmd == item.cmd)) {
        if (!s.cmd.is_noop()) {
          --unapplied_ops_[s.cmd.key];
          if (s.cmd.is_write()) --unapplied_writes_[s.cmd.key];
        }
        if (s.own_pending_ack) {
          const kv::Command lost = s.cmd;
          s.own_pending_ack = false;
          submit(lost);
        }
        s.cmd = item.cmd;
        if (!item.cmd.is_noop()) {
          ++unapplied_ops_[item.cmd.key];
          if (item.cmd.is_write()) ++unapplied_writes_[item.cmd.key];
        }
      } else if (s.st == St::kEmpty) {
        s.cmd = item.cmd;
        slot_got_value(item.index, s);
      }
      s.st = St::kValued;
      s.bal = m.bal;
      persist_slot(item.index);
    } else {
      persist_slot(item.index);  // the raised promise must survive a crash
    }
    ok.indexes.push_back(item.index);
    max_seen_ = std::max(max_seen_, item.index);
  }
  max_promised_round_ = std::max(max_promised_round_, m.bal.round);
  persister_.hard_state();
  if (aged_out) send_snapshot(m.from);
  if (!ok.indexes.empty()) persister_.send(m.from, Message{ok}, wire_size(ok));
  advance_floors();
}

void MenciusNode::note_rev_ack(const consensus::Ballot& bal, LogIndex i,
                               NodeId who, LearnVals& lv) {
  if (!rev_.active || !(rev_.bal == bal)) return;
  auto ait = rev_.acks.find(i);
  if (ait == rev_.acks.end()) return;
  bool dup = false;
  for (NodeId a : ait->second) dup |= (a == who);
  if (dup) return;
  ait->second.push_back(who);
  if (static_cast<int>(ait->second.size()) == group_.majority()) {
    const Slot* s = slot_if(i);
    if (s != nullptr && i >= afloor()) {
      decide(i, s->cmd);
      lv.slots.push_back(SlotInfo{i, s->cmd.is_noop(),
                                  slot_if(i) != nullptr ? slot_if(i)->cmd
                                                        : kv::noop_command()});
    }
  }
}

void MenciusNode::on_rev_accept_ok(const RevAcceptOk& m) {
  if (!rev_.active || !(m.bal == rev_.bal)) return;
  LearnVals lv;
  lv.from = group_.self;
  for (LogIndex i : m.indexes) note_rev_ack(m.bal, i, m.from, lv);
  if (!lv.slots.empty()) broadcast(Message{lv});  // decide notice
  // Finished when every slot in range is decided locally.
  if (revocation_done()) rev_.active = false;
  advance_floors();
}

storage::RecoveryStats MenciusNode::recover(const storage::DurableImage& img) {
  PRAFT_CHECK_MSG(applier_.applied() == -1 && next_own_ == rank_,
                  "recover() must run once, on a fresh node, before start()");
  recovering_ = true;
  max_promised_round_ = img.hard.term;
  next_own_ = std::max(next_own_, img.hard.floor);
  rev_round_ = img.hard.aux;
  own_rev_floor_ = img.hard.tail;
  storage::RecoveryStats stats;
  stats.recovered = true;
  if (img.snap.valid()) {
    applier_.install_snapshot(img.snap);
    slots_.set_floor(img.snap.last_index);
    snap_ = img.snap;
    stats.snapshot_floor = img.snap.last_index;
    max_seen_ = std::max(max_seen_, img.snap.last_index);
    // Conservative, like on_snapshot_xfer: own slots at or below the floor
    // may have been revoked while we were down.
    own_rev_floor_ = std::max(own_rev_floor_, img.snap.last_index);
  }
  for (const storage::WalRecord& r : img.records) {
    if (r.index <= slots_.floor()) continue;
    if (!r.has_value && r.promised < 0) continue;  // nothing durable left
    Slot& sl = slots_.materialize(r.index);
    sl.promised = Ballot{r.promised, r.pnode};
    if (r.has_value) {
      sl.cmd = r.cmd;
      if (r.decided) {
        sl.st = St::kDecided;
        sl.bal = Ballot{kDecidedBal, kNoNode};
      } else {
        sl.st = St::kValued;
        sl.bal = Ballot{r.term, r.vnode};
        sl.proposed_at = 0;  // immediately eligible for retransmission
        if (sl.bal == Ballot{0, group_.self}) {
          sl.acks = {group_.self};  // our accept IS durable — it was replayed
        }
      }
      slot_got_value(r.index, sl);
    }
    max_seen_ = std::max(max_seen_, r.index);
    ++stats.replayed;
    stats.wal_tail = std::max(stats.wal_tail, r.index);
  }
  stats.wal_tail = std::max(stats.wal_tail, stats.snapshot_floor);
  while (next_own_ < afloor()) next_own_ += n_;
  if (info_floor_ < afloor()) info_floor_ = afloor();
  recovering_ = false;
  // Re-execute the contiguous decided prefix (rebuilds decided_history_ and
  // prunes executed slots, exactly like live operation).
  advance_floors();
  PRAFT_LOG(kInfo) << "mencius " << group_.self << " recovered: next_own "
                   << next_own_ << ", floor " << afloor() << " ("
                   << stats.replayed << " replayed)";
  return stats;
}

// ---------------------------------------------------------------------------
// Maintenance loop.
// ---------------------------------------------------------------------------

void MenciusNode::maintenance() {
  const Time now = env_.now();
  broadcast(Message{StatusBeat{group_.self, next_own_, own_decided_floor(),
                               own_rev_floor_}});

  // Windowed retransmit, per colleague (consensus::PeerPipeline). A peer
  // whose oldest in-flight batch outlived the loss-detection timeout gets
  // its window unwound and its stale undecided proposals re-offered from
  // the lowest lost slot; an idle channel re-offers stale proposals the
  // peer never acked (e.g. after our crash-restart, or a lost ack). Healthy
  // in-flight channels send nothing — the old code re-broadcast every stale
  // proposal to every peer each tick.
  for (NodeId peer : group_.members) {
    if (peer == group_.self) continue;
    pump_peer(peer);  // backlog first: the window may have reopened
    LogIndex from = 0;
    if (pipe_.retransmit_due(peer, now)) {
      from = pipe_.on_loss(peer);
    } else if (pipe_.outstanding_batches(peer) != 0) {
      continue;  // in flight and within the timeout: wait for acks
    }
    AcceptOwn retrans;
    retrans.owner = group_.self;
    const LogIndex base = afloor();
    for (LogIndex i = base + ((rank_ - base) % n_ + n_) % n_;
         i < next_own_ && retrans.items.size() < opt_.max_retransmit_entries;
         i += n_) {
      if (i < from) continue;
      const Slot* s = slot_if(i);
      if (s == nullptr || s->st != St::kValued ||
          !(s->bal == Ballot{0, group_.self})) {
        continue;
      }
      // proposed_at in the future is the A2 ablation's skip sentinel (a
      // skip is not a proposal — retransmission must not resurrect it);
      // fresh proposals are still covered by their in-flight tracking.
      if (s->proposed_at > now ||
          now - s->proposed_at < opt_.pipeline_retransmit_timeout) {
        continue;
      }
      bool acked = false;
      for (NodeId a : s->acks) acked |= (a == peer);
      if (acked) continue;
      retrans.items.push_back(OwnItem{i, s->cmd});
    }
    if (retrans.items.empty()) continue;
    retrans.decided_floor = own_decided_floor();
    retrans.rev_floor = own_rev_floor_;
    const size_t bytes = wire_size(retrans);
    persister_.send(peer, Message{retrans}, bytes);
    pipe_.on_send(peer, retrans.items.front().index,
                  retrans.items.back().index, bytes, now);
  }

  // Execution stalled on someone's slot?
  if (now - last_progress_ > opt_.learn_after && max_seen_ >= afloor()) {
    const NodeId blocker = owner_of(afloor());
    const LogIndex hi = std::min(max_seen_ + 1, afloor() + 256);
    if (blocker != group_.self) {
      const Message learn{LearnReq{group_.self, afloor(), hi}};
      persister_.send(blocker, learn, wire_size(learn));
      if (now - last_heard_[blocker] > opt_.revoke_timeout) {
        start_revocation(blocker, afloor(), max_seen_ + 1);
      }
    } else {
      // Stalled on our OWN slot: it was revoked while we were partitioned
      // and we missed the decision (we only learn no-op outcomes from
      // others). Any peer that executed past it can teach us.
      const Slot* s = slot_if(afloor());
      if (s == nullptr || s->st != St::kValued ||
          !(s->bal == Ballot{0, group_.self})) {
        broadcast(Message{LearnReq{group_.self, afloor(), hi}});
      }
    }
  }
  advance_floors();
}

// ---------------------------------------------------------------------------

void MenciusNode::on_packet(const net::Packet& p) {
  const auto* msg = net::payload_as<Message>(p);
  PRAFT_CHECK_MSG(msg != nullptr, "mencius node got foreign payload");
  std::visit(
      [this](const auto& m) {
        using M = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<M, AcceptOwn>) {
          on_accept_own(m);
        } else if constexpr (std::is_same_v<M, AcceptOwnOk>) {
          on_accept_own_ok(m);
        } else if constexpr (std::is_same_v<M, AcceptOwnRej>) {
          on_accept_own_rej(m);
        } else if constexpr (std::is_same_v<M, SkipRange>) {
          on_skip_range(m);
        } else if constexpr (std::is_same_v<M, StatusBeat>) {
          on_status(m);
        } else if constexpr (std::is_same_v<M, LearnReq>) {
          on_learn_req(m);
        } else if constexpr (std::is_same_v<M, LearnVals>) {
          on_learn_vals(m);
        } else if constexpr (std::is_same_v<M, RevPrepare>) {
          on_rev_prepare(m);
        } else if constexpr (std::is_same_v<M, RevPrepareOk>) {
          on_rev_prepare_ok(m);
        } else if constexpr (std::is_same_v<M, RevAccept>) {
          on_rev_accept(m);
        } else if constexpr (std::is_same_v<M, RevAcceptOk>) {
          on_rev_accept_ok(m);
        } else {
          on_snapshot_xfer(m);
        }
      },
      *msg);
}

}  // namespace praft::mencius
