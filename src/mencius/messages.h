#pragma once

#include <variant>
#include <vector>

#include "consensus/snapshot.h"
#include "consensus/types.h"
#include "kv/command.h"

namespace praft::mencius {

using consensus::Ballot;
using consensus::LogIndex;

/// One (slot, value) pair proposed by a default leader.
struct OwnItem {
  LogIndex index = 0;
  kv::Command cmd;

  friend bool operator==(const OwnItem&, const OwnItem&) = default;
};

/// Ballot-0 fast path (coordinated Paxos): the default leader of these slots
/// proposes values without a phase 1. `decided_floor` is the owner's
/// watermark: all its own slots below it are decided at ballot 0 (or were
/// self-skipped); `rev_floor` is the highest own slot it knows was revoked —
/// receivers never auto-decide at or below it (see node.h).
struct AcceptOwn {
  NodeId owner = kNoNode;
  std::vector<OwnItem> items;
  LogIndex decided_floor = 0;
  LogIndex rev_floor = -1;

  friend bool operator==(const AcceptOwn&, const AcceptOwn&) = default;
};

struct AcceptOwnOk {
  NodeId acceptor = kNoNode;
  std::vector<LogIndex> indexes;

  friend bool operator==(const AcceptOwnOk&, const AcceptOwnOk&) = default;
};

/// Rejection of ballot-0 proposals into revoked slots; `jump_past` tells the
/// revived owner where its usable slot space resumes.
struct AcceptOwnRej {
  NodeId acceptor = kNoNode;
  std::vector<LogIndex> indexes;
  LogIndex jump_past = 0;

  friend bool operator==(const AcceptOwnRej&, const AcceptOwnRej&) = default;
};

/// The owner skips its own slots in [lo, hi) — they are decided no-ops
/// immediately (a coordinated-Paxos leader proposing no-op needs no phase 2
/// quorum to be learnable; paper §A.3).
struct SkipRange {
  NodeId owner = kNoNode;
  LogIndex lo = 0;
  LogIndex hi = 0;

  friend bool operator==(const SkipRange&, const SkipRange&) = default;
};

/// Periodic liveness + watermark beacon (failure detector for revocation).
struct StatusBeat {
  NodeId from = kNoNode;
  LogIndex next_own = 0;
  LogIndex decided_floor = 0;
  LogIndex rev_floor = -1;

  friend bool operator==(const StatusBeat&, const StatusBeat&) = default;
};

/// Repair: ask `to`'s owner about the authoritative state of its slots.
struct LearnReq {
  NodeId from = kNoNode;
  LogIndex lo = 0;
  LogIndex hi = 0;  // exclusive

  friend bool operator==(const LearnReq&, const LearnReq&) = default;
};

struct SlotInfo {
  LogIndex index = 0;
  bool skipped = false;
  kv::Command cmd;

  friend bool operator==(const SlotInfo&, const SlotInfo&) = default;
};

/// Authoritative decided slots (from the owner, or from a revoker's decide
/// broadcast).
struct LearnVals {
  NodeId from = kNoNode;
  std::vector<SlotInfo> slots;

  friend bool operator==(const LearnVals&, const LearnVals&) = default;
};

// --- Revocation: classic Paxos phase 1/2 over a crashed owner's slots. ---

struct RevPrepare {
  NodeId from = kNoNode;
  Ballot bal;
  NodeId owner = kNoNode;  // whose slots are being revoked
  LogIndex lo = 0;
  LogIndex hi = 0;  // exclusive

  friend bool operator==(const RevPrepare&, const RevPrepare&) = default;
};

struct RevAccepted {
  LogIndex index = 0;
  Ballot bal;
  bool has = false;
  bool skipped = false;
  kv::Command cmd;

  friend bool operator==(const RevAccepted&, const RevAccepted&) = default;
};

struct RevPrepareOk {
  NodeId from = kNoNode;
  Ballot bal;
  std::vector<RevAccepted> accepted;

  friend bool operator==(const RevPrepareOk&, const RevPrepareOk&) = default;
};

struct RevAccept {
  NodeId from = kNoNode;
  Ballot bal;
  std::vector<OwnItem> items;  // no-op cmd == skip

  friend bool operator==(const RevAccept&, const RevAccept&) = default;
};

struct RevAcceptOk {
  NodeId from = kNoNode;
  Ballot bal;
  std::vector<LogIndex> indexes;

  friend bool operator==(const RevAcceptOk&, const RevAcceptOk&) = default;
};

/// Snapshot state transfer: the answer to a LearnReq (or a revocation
/// prepare) whose range reaches below the sender's retained decision
/// history. The stalled replica installs the state image and resumes slot
/// execution above it — the Mencius face of Raft's InstallSnapshot, read
/// through the refinement mapping like the rest of the port.
struct SnapshotXfer {
  NodeId from = kNoNode;
  consensus::Snapshot snap;

  friend bool operator==(const SnapshotXfer&, const SnapshotXfer&) = default;
};

using Message =
    std::variant<AcceptOwn, AcceptOwnOk, AcceptOwnRej, SkipRange, StatusBeat,
                 LearnReq, LearnVals, RevPrepare, RevPrepareOk, RevAccept,
                 RevAcceptOk, SnapshotXfer>;

// Exact encoded frame sizes (see mencius/wire.cpp for the field layout).
namespace wire = consensus::wire;

inline size_t wire_size(const AcceptOwn& m) {
  size_t b = wire::kFrame + 4 + 8 + 8 + wire::kCount;
  // each item: slot index i64 + the command (wire::entry_bytes)
  for (const auto& it : m.items) b += wire::entry_bytes(it.cmd);
  return b;
}
inline size_t wire_size(const AcceptOwnOk& m) {
  return wire::kFrame + 4 + wire::kCount + 8 * m.indexes.size();
}
inline size_t wire_size(const AcceptOwnRej& m) {
  return wire::kFrame + 4 + 8 + wire::kCount + 8 * m.indexes.size();
}
inline size_t wire_size(const SkipRange&) { return wire::kFrame + 4 + 8 + 8; }
inline size_t wire_size(const StatusBeat&) {
  return wire::kFrame + 4 + 8 + 8 + 8;
}
inline size_t wire_size(const LearnReq&) { return wire::kFrame + 4 + 8 + 8; }
inline size_t wire_size(const LearnVals& m) {
  size_t b = wire::kFrame + 4 + wire::kCount;
  // each slot: index i64 + skipped u8 + the command
  for (const auto& s : m.slots) b += 8 + 1 + s.cmd.wire_bytes();
  return b;
}
inline size_t wire_size(const RevPrepare&) {
  return wire::kFrame + 4 + wire::kBallot + 4 + 8 + 8;
}
inline size_t wire_size(const RevPrepareOk& m) {
  size_t b = wire::kFrame + 4 + wire::kBallot + wire::kCount;
  // each accepted: index i64 + ballot + has u8 + skipped u8 + the command
  for (const auto& a : m.accepted)
    b += 8 + wire::kBallot + 1 + 1 + a.cmd.wire_bytes();
  return b;
}
inline size_t wire_size(const RevAccept& m) {
  size_t b = wire::kFrame + 4 + wire::kBallot + wire::kCount;
  for (const auto& it : m.items) b += wire::entry_bytes(it.cmd);
  return b;
}
inline size_t wire_size(const RevAcceptOk& m) {
  return wire::kFrame + 4 + wire::kBallot + wire::kCount +
         8 * m.indexes.size();
}
inline size_t wire_size(const SnapshotXfer& m) {
  return wire::kFrame + 4 + m.snap.wire_bytes();
}
inline size_t wire_size(const Message& m) {
  return std::visit([](const auto& x) { return wire_size(x); }, m);
}

/// Log entries a message carries (for CPU cost accounting).
inline size_t entry_count(const Message& m) {
  if (const auto* a = std::get_if<AcceptOwn>(&m)) return a->items.size();
  if (const auto* l = std::get_if<LearnVals>(&m)) return l->slots.size();
  if (const auto* r = std::get_if<RevAccept>(&m)) return r->items.size();
  if (const auto* p = std::get_if<RevPrepareOk>(&m)) return p->accepted.size();
  return 0;
}

}  // namespace praft::mencius
