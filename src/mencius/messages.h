#pragma once

#include <variant>
#include <vector>

#include "consensus/snapshot.h"
#include "consensus/types.h"
#include "kv/command.h"

namespace praft::mencius {

using consensus::Ballot;
using consensus::LogIndex;

/// One (slot, value) pair proposed by a default leader.
struct OwnItem {
  LogIndex index = 0;
  kv::Command cmd;
};

/// Ballot-0 fast path (coordinated Paxos): the default leader of these slots
/// proposes values without a phase 1. `decided_floor` is the owner's
/// watermark: all its own slots below it are decided at ballot 0 (or were
/// self-skipped); `rev_floor` is the highest own slot it knows was revoked —
/// receivers never auto-decide at or below it (see node.h).
struct AcceptOwn {
  NodeId owner = kNoNode;
  std::vector<OwnItem> items;
  LogIndex decided_floor = 0;
  LogIndex rev_floor = -1;
};

struct AcceptOwnOk {
  NodeId acceptor = kNoNode;
  std::vector<LogIndex> indexes;
};

/// Rejection of ballot-0 proposals into revoked slots; `jump_past` tells the
/// revived owner where its usable slot space resumes.
struct AcceptOwnRej {
  NodeId acceptor = kNoNode;
  std::vector<LogIndex> indexes;
  LogIndex jump_past = 0;
};

/// The owner skips its own slots in [lo, hi) — they are decided no-ops
/// immediately (a coordinated-Paxos leader proposing no-op needs no phase 2
/// quorum to be learnable; paper §A.3).
struct SkipRange {
  NodeId owner = kNoNode;
  LogIndex lo = 0;
  LogIndex hi = 0;
};

/// Periodic liveness + watermark beacon (failure detector for revocation).
struct StatusBeat {
  NodeId from = kNoNode;
  LogIndex next_own = 0;
  LogIndex decided_floor = 0;
  LogIndex rev_floor = -1;
};

/// Repair: ask `to`'s owner about the authoritative state of its slots.
struct LearnReq {
  NodeId from = kNoNode;
  LogIndex lo = 0;
  LogIndex hi = 0;  // exclusive
};

struct SlotInfo {
  LogIndex index = 0;
  bool skipped = false;
  kv::Command cmd;
};

/// Authoritative decided slots (from the owner, or from a revoker's decide
/// broadcast).
struct LearnVals {
  NodeId from = kNoNode;
  std::vector<SlotInfo> slots;
};

// --- Revocation: classic Paxos phase 1/2 over a crashed owner's slots. ---

struct RevPrepare {
  NodeId from = kNoNode;
  Ballot bal;
  NodeId owner = kNoNode;  // whose slots are being revoked
  LogIndex lo = 0;
  LogIndex hi = 0;  // exclusive
};

struct RevAccepted {
  LogIndex index = 0;
  Ballot bal;
  bool has = false;
  bool skipped = false;
  kv::Command cmd;
};

struct RevPrepareOk {
  NodeId from = kNoNode;
  Ballot bal;
  std::vector<RevAccepted> accepted;
};

struct RevAccept {
  NodeId from = kNoNode;
  Ballot bal;
  std::vector<OwnItem> items;  // no-op cmd == skip
};

struct RevAcceptOk {
  NodeId from = kNoNode;
  Ballot bal;
  std::vector<LogIndex> indexes;
};

/// Snapshot state transfer: the answer to a LearnReq (or a revocation
/// prepare) whose range reaches below the sender's retained decision
/// history. The stalled replica installs the state image and resumes slot
/// execution above it — the Mencius face of Raft's InstallSnapshot, read
/// through the refinement mapping like the rest of the port.
struct SnapshotXfer {
  NodeId from = kNoNode;
  consensus::Snapshot snap;
};

using Message =
    std::variant<AcceptOwn, AcceptOwnOk, AcceptOwnRej, SkipRange, StatusBeat,
                 LearnReq, LearnVals, RevPrepare, RevPrepareOk, RevAccept,
                 RevAcceptOk, SnapshotXfer>;

inline size_t wire_size(const AcceptOwn& m) {
  size_t b = consensus::wire::kMsgHeader;
  for (const auto& it : m.items) b += 8 + consensus::wire::entry_bytes(it.cmd);
  return b;
}
inline size_t wire_size(const AcceptOwnOk& m) {
  return consensus::wire::kSmallMsg + 8 * m.indexes.size();
}
inline size_t wire_size(const AcceptOwnRej& m) {
  return consensus::wire::kSmallMsg + 8 * m.indexes.size();
}
inline size_t wire_size(const SkipRange&) { return consensus::wire::kSmallMsg; }
inline size_t wire_size(const StatusBeat&) { return consensus::wire::kSmallMsg; }
inline size_t wire_size(const LearnReq&) { return consensus::wire::kSmallMsg; }
inline size_t wire_size(const LearnVals& m) {
  size_t b = consensus::wire::kMsgHeader;
  for (const auto& s : m.slots) b += 9 + consensus::wire::entry_bytes(s.cmd);
  return b;
}
inline size_t wire_size(const RevPrepare&) { return consensus::wire::kSmallMsg; }
inline size_t wire_size(const RevPrepareOk& m) {
  size_t b = consensus::wire::kMsgHeader;
  for (const auto& a : m.accepted) b += 24 + consensus::wire::entry_bytes(a.cmd);
  return b;
}
inline size_t wire_size(const RevAccept& m) {
  size_t b = consensus::wire::kMsgHeader;
  for (const auto& it : m.items) b += 8 + consensus::wire::entry_bytes(it.cmd);
  return b;
}
inline size_t wire_size(const RevAcceptOk& m) {
  return consensus::wire::kSmallMsg + 8 * m.indexes.size();
}
inline size_t wire_size(const SnapshotXfer& m) { return m.snap.wire_bytes(); }
inline size_t wire_size(const Message& m) {
  return std::visit([](const auto& x) { return wire_size(x); }, m);
}

/// Log entries a message carries (for CPU cost accounting).
inline size_t entry_count(const Message& m) {
  if (const auto* a = std::get_if<AcceptOwn>(&m)) return a->items.size();
  if (const auto* l = std::get_if<LearnVals>(&m)) return l->slots.size();
  if (const auto* r = std::get_if<RevAccept>(&m)) return r->items.size();
  if (const auto* p = std::get_if<RevPrepareOk>(&m)) return p->accepted.size();
  return 0;
}

}  // namespace praft::mencius
