#include "mencius/wire.h"

#include "net/field_codec.h"

namespace praft::mencius {

namespace {

using net::WireReader;
using net::WireWriter;

static_assert(std::variant_size_v<Message> == 12,
              "new Mencius message: add a codec below and bump this count");

void put_items(WireWriter& w, const std::vector<OwnItem>& items) {
  w.u32(static_cast<uint32_t>(items.size()));
  for (const auto& it : items) {
    w.i64(it.index);
    net::put_cmd(w, it.cmd);
  }
}

std::vector<OwnItem> get_items(WireReader& r) {
  const uint32_t n = r.u32();
  std::vector<OwnItem> items;
  items.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    OwnItem it;
    it.index = r.i64();
    it.cmd = net::get_cmd(r);
    items.push_back(std::move(it));
  }
  return items;
}

void put_indexes(WireWriter& w, const std::vector<consensus::LogIndex>& v) {
  w.u32(static_cast<uint32_t>(v.size()));
  for (const auto i : v) w.i64(i);
}

std::vector<consensus::LogIndex> get_indexes(WireReader& r) {
  const uint32_t n = r.u32();
  std::vector<consensus::LogIndex> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; ++i) v.push_back(r.i64());
  return v;
}

void put(WireWriter& w, const AcceptOwn& m) {
  w.i32(m.owner);
  w.i64(m.decided_floor);
  w.i64(m.rev_floor);
  put_items(w, m.items);
}
AcceptOwn get_accept_own(WireReader& r) {
  AcceptOwn m;
  m.owner = r.i32();
  m.decided_floor = r.i64();
  m.rev_floor = r.i64();
  m.items = get_items(r);
  return m;
}

void put(WireWriter& w, const AcceptOwnOk& m) {
  w.i32(m.acceptor);
  put_indexes(w, m.indexes);
}
AcceptOwnOk get_accept_own_ok(WireReader& r) {
  AcceptOwnOk m;
  m.acceptor = r.i32();
  m.indexes = get_indexes(r);
  return m;
}

void put(WireWriter& w, const AcceptOwnRej& m) {
  w.i32(m.acceptor);
  w.i64(m.jump_past);
  put_indexes(w, m.indexes);
}
AcceptOwnRej get_accept_own_rej(WireReader& r) {
  AcceptOwnRej m;
  m.acceptor = r.i32();
  m.jump_past = r.i64();
  m.indexes = get_indexes(r);
  return m;
}

void put(WireWriter& w, const SkipRange& m) {
  w.i32(m.owner);
  w.i64(m.lo);
  w.i64(m.hi);
}
SkipRange get_skip_range(WireReader& r) {
  SkipRange m;
  m.owner = r.i32();
  m.lo = r.i64();
  m.hi = r.i64();
  return m;
}

void put(WireWriter& w, const StatusBeat& m) {
  w.i32(m.from);
  w.i64(m.next_own);
  w.i64(m.decided_floor);
  w.i64(m.rev_floor);
}
StatusBeat get_status_beat(WireReader& r) {
  StatusBeat m;
  m.from = r.i32();
  m.next_own = r.i64();
  m.decided_floor = r.i64();
  m.rev_floor = r.i64();
  return m;
}

void put(WireWriter& w, const LearnReq& m) {
  w.i32(m.from);
  w.i64(m.lo);
  w.i64(m.hi);
}
LearnReq get_learn_req(WireReader& r) {
  LearnReq m;
  m.from = r.i32();
  m.lo = r.i64();
  m.hi = r.i64();
  return m;
}

void put(WireWriter& w, const LearnVals& m) {
  w.i32(m.from);
  w.u32(static_cast<uint32_t>(m.slots.size()));
  for (const auto& s : m.slots) {
    w.i64(s.index);
    w.boolean(s.skipped);
    net::put_cmd(w, s.cmd);
  }
}
LearnVals get_learn_vals(WireReader& r) {
  LearnVals m;
  m.from = r.i32();
  const uint32_t n = r.u32();
  m.slots.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SlotInfo s;
    s.index = r.i64();
    s.skipped = r.boolean();
    s.cmd = net::get_cmd(r);
    m.slots.push_back(std::move(s));
  }
  return m;
}

void put(WireWriter& w, const RevPrepare& m) {
  w.i32(m.from);
  net::put_ballot(w, m.bal);
  w.i32(m.owner);
  w.i64(m.lo);
  w.i64(m.hi);
}
RevPrepare get_rev_prepare(WireReader& r) {
  RevPrepare m;
  m.from = r.i32();
  m.bal = net::get_ballot(r);
  m.owner = r.i32();
  m.lo = r.i64();
  m.hi = r.i64();
  return m;
}

void put(WireWriter& w, const RevPrepareOk& m) {
  w.i32(m.from);
  net::put_ballot(w, m.bal);
  w.u32(static_cast<uint32_t>(m.accepted.size()));
  for (const auto& a : m.accepted) {
    w.i64(a.index);
    net::put_ballot(w, a.bal);
    w.boolean(a.has);
    w.boolean(a.skipped);
    net::put_cmd(w, a.cmd);
  }
}
RevPrepareOk get_rev_prepare_ok(WireReader& r) {
  RevPrepareOk m;
  m.from = r.i32();
  m.bal = net::get_ballot(r);
  const uint32_t n = r.u32();
  m.accepted.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    RevAccepted a;
    a.index = r.i64();
    a.bal = net::get_ballot(r);
    a.has = r.boolean();
    a.skipped = r.boolean();
    a.cmd = net::get_cmd(r);
    m.accepted.push_back(std::move(a));
  }
  return m;
}

void put(WireWriter& w, const RevAccept& m) {
  w.i32(m.from);
  net::put_ballot(w, m.bal);
  put_items(w, m.items);
}
RevAccept get_rev_accept(WireReader& r) {
  RevAccept m;
  m.from = r.i32();
  m.bal = net::get_ballot(r);
  m.items = get_items(r);
  return m;
}

void put(WireWriter& w, const RevAcceptOk& m) {
  w.i32(m.from);
  net::put_ballot(w, m.bal);
  put_indexes(w, m.indexes);
}
RevAcceptOk get_rev_accept_ok(WireReader& r) {
  RevAcceptOk m;
  m.from = r.i32();
  m.bal = net::get_ballot(r);
  m.indexes = get_indexes(r);
  return m;
}

void put(WireWriter& w, const SnapshotXfer& m) {
  w.i32(m.from);
  net::put_snapshot(w, m.snap);
}
SnapshotXfer get_snapshot_xfer(WireReader& r) {
  SnapshotXfer m;
  m.from = r.i32();
  m.snap = net::get_snapshot(r);
  return m;
}

}  // namespace

net::Frame encode(const Message& m, net::BufferPool& pool) {
  const size_t total = wire_size(m);
  net::Frame f = pool.acquire(total);
  WireWriter w(f);
  w.header(net::Family::kMencius, static_cast<uint8_t>(m.index()));
  std::visit([&w](const auto& x) { put(w, x); }, m);
  w.finish();
  PRAFT_CHECK_MSG(f.size() == total, "mencius codec/wire_size drift");
  return f;
}

Message decode(net::FrameView f) {
  WireReader r(f);
  const auto h = r.header();
  PRAFT_CHECK(h.family == net::Family::kMencius);
  Message m;
  switch (h.opcode) {
    case 0: m = get_accept_own(r); break;
    case 1: m = get_accept_own_ok(r); break;
    case 2: m = get_accept_own_rej(r); break;
    case 3: m = get_skip_range(r); break;
    case 4: m = get_status_beat(r); break;
    case 5: m = get_learn_req(r); break;
    case 6: m = get_learn_vals(r); break;
    case 7: m = get_rev_prepare(r); break;
    case 8: m = get_rev_prepare_ok(r); break;
    case 9: m = get_rev_accept(r); break;
    case 10: m = get_rev_accept_ok(r); break;
    case 11: m = get_snapshot_xfer(r); break;
    default: PRAFT_CHECK_MSG(false, "bad mencius opcode");
  }
  r.finish();
  return m;
}

}  // namespace praft::mencius
