#pragma once

#include "harness/server.h"
#include "mencius/node.h"

namespace praft::mencius {

/// Replica adapter for Raft*-Mencius: every replica serves its own region's
/// clients directly (no forwarding — the point of the optimization, §A.3),
/// acknowledges an op the moment the node says it is safe (committed +
/// commutativity check), and applies the total order to the KV store.
class MenciusServer : public harness::ReplicaServer {
 public:
  MenciusServer(harness::NodeHost& host, consensus::Group group,
                harness::CostModel costs, Options opt = {})
      : harness::ReplicaServer(host, costs),
        node_(std::move(group), host, opt) {
    node_.set_apply([this](consensus::LogIndex i, const kv::Command& c) {
      on_apply(i, c);
    });
    node_.set_acked([this](const kv::Command& c) { on_acked(c); });
  }

  void start() override { node_.start(); }
  /// Every replica is the default leader of its own slots.
  [[nodiscard]] bool is_leader() const override { return true; }
  [[nodiscard]] NodeId leader_hint() const override { return id(); }
  [[nodiscard]] bool leaderless() const override { return true; }

  MenciusNode& node() { return node_; }

  void handle(const net::Packet& p) override {
    if (net::payload_as<Message>(p) != nullptr) {
      node_.on_packet(p);
      return;
    }
    if (const auto* hm = net::payload_as<harness::Message>(p)) {
      if (const auto* req = std::get_if<harness::ClientRequest>(hm)) {
        node_.submit(req->cmd);
      }
    }
  }

  [[nodiscard]] Duration cost_of(const net::Packet& p) const override {
    if (!costs_.enabled) return 0;
    if (const auto* hm = net::payload_as<harness::Message>(p)) {
      if (std::holds_alternative<harness::ClientRequest>(*hm)) {
        return costs_.client_request + costs_.size_cost(p.bytes);
      }
      return costs_.receive_cost(p.bytes);
    }
    if (const auto* pm = net::payload_as<Message>(p)) {
      const auto entries = static_cast<Duration>(entry_count(*pm));
      return costs_.message_base + entries * costs_.entry_follower +
             costs_.size_cost(p.bytes);
    }
    return costs_.receive_cost(p.bytes);
  }

  using ApplyProbe =
      std::function<void(NodeId, consensus::LogIndex, const kv::Command&)>;
  void set_apply_probe(ApplyProbe probe) { apply_probe_ = std::move(probe); }

 private:
  void on_acked(const kv::Command& cmd) {
    if (cmd.client == kNoNode) return;
    // An early-acked read is safe precisely because no conflicting write is
    // pending (the commute check), so the local copy is current.
    const uint64_t value = cmd.is_read() ? store_.read_local(cmd.key) : 0;
    reply_to_client(cmd.client, cmd.seq, value, true);
  }

  void on_apply(consensus::LogIndex idx, const kv::Command& cmd) {
    store_.apply(cmd);
    if (apply_probe_) apply_probe_(id(), idx, cmd);
  }

  MenciusNode node_;
  ApplyProbe apply_probe_;
};

}  // namespace praft::mencius
