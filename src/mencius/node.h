#pragma once

#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "consensus/applier.h"
#include "consensus/batcher.h"
#include "consensus/env.h"
#include "consensus/group.h"
#include "consensus/log.h"
#include "consensus/node_iface.h"
#include "consensus/pipeline.h"
#include "consensus/timer.h"
#include "consensus/timing.h"
#include "consensus/types.h"
#include "mencius/messages.h"
#include "net/packet.h"
#include "storage/persister.h"

namespace praft::mencius {

struct Options : consensus::TimingOptions {
  // The shared heartbeat_interval drives the StatusBeat/maintenance tick
  // (Mencius has no single leader, so the election timeouts are unused).
  /// Stale undecided slots of an unresponsive owner are revoked after this.
  /// (Own-proposal retransmission is timeout-gated per colleague by the
  /// shared pipeline — see TimingOptions::pipeline_retransmit_timeout.)
  Duration revoke_timeout = msec(2500);
  /// Ask an owner for authoritative slot state when a gap stalls execution
  /// longer than this.
  Duration learn_after = msec(500);
  /// Ablation A2 (paper §A.4): the correct port applies the Mencius Phase2b
  /// delta to EVERY Raft* action that implies Phase2b — including the
  /// owner's own propose path, which must mark its own skips executable
  /// immediately. A hand-port that only patched ReceiveAppend (false) leaves
  /// the owner's own skip slots undecided locally and stalls its execution.
  bool decide_own_skips = true;
};

/// Raft*-Mencius / Coordinated Raft* (paper §A.4, Appendix B.6): the slot
/// space is partitioned round-robin, every replica is the *default leader*
/// of its residue class and commits its own slots in one round trip from a
/// majority. Skip tags let idle replicas cede their turns instantly, and a
/// revocation path (classic phase 1/2 at ballots > 0) recovers the slots of
/// a crashed owner. Execution is in slot order; the commutativity
/// optimization acknowledges an op early when every earlier unexecuted slot
/// holds a command it commutes with (paper §5.2).
///
/// Safety of the decided-watermark fast path: an owner proposes at most one
/// value per own slot at ballot 0, so a replica holding a ballot-0 value for
/// slot i may treat it as decided once the owner's watermark passes i —
/// UNLESS the slot was revoked (decided at a ballot > 0, possibly with a
/// different value). Owners therefore publish `rev_floor`, and slots at or
/// below it decide only through explicit authoritative messages
/// (LearnVals / the revoker's decide broadcast).
///
/// Sparse slot storage, the maintenance tick, submission batching and the
/// in-order exactly-once apply watermark come from the shared consensus
/// runtime.
class MenciusNode : public consensus::NodeIface {
 public:
  /// `store` (nullable) is this node's stable storage: per-slot accepted
  /// values and revocation promises, the own-slot cursor and revocation
  /// floors persist through it; acks wait on the fsync barrier.
  MenciusNode(consensus::Group group, consensus::Env& env, Options opt = {},
              storage::DurableStore* store = nullptr);

  void start() override;
  void on_packet(const net::Packet& p) override;

  /// Callbacks:
  ///  apply(index, cmd)  — in slot order, exactly once per slot;
  ///  acked(cmd)         — the moment this node's OWN proposal may be
  ///                       acknowledged to the client (commit + commute
  ///                       check), possibly before it executes.
  void set_apply(consensus::ApplyFn fn) override { apply_ = std::move(fn); }
  using AckFn = std::function<void(const kv::Command&)>;
  void set_acked(AckFn fn) { acked_ = std::move(fn); }

  void set_watermark_probe(consensus::WatermarkProbe probe) override {
    applier_.set_probe(std::move(probe));
  }

  void set_state_hooks(consensus::StateCapture capture,
                       consensus::StateRestore restore) override {
    applier_.set_state_hooks(std::move(capture), std::move(restore));
  }

  /// Forces a checkpoint now (Mencius prunes slots at apply time; compaction
  /// here checkpoints the store and trims the retained decision history).
  void compact() override { maybe_compact(/*force=*/true); }
  [[nodiscard]] LogIndex compaction_floor() const override {
    return snap_.valid() ? snap_.last_index : -1;
  }
  [[nodiscard]] size_t compactable_entries() const override {
    return history_above_floor();
  }
  [[nodiscard]] size_t resident_log_entries() const override {
    return slots_.size() + decided_history_.size();
  }
  [[nodiscard]] int64_t snapshots_installed() const override {
    return snapshots_installed_;
  }
  [[nodiscard]] LogIndex applied_index() const override {
    return applier_.applied();
  }

  /// Mencius's hard state: the highest revocation ballot promised anywhere
  /// (term), the own-slot cursor (floor — an owner must never re-propose a
  /// different value on a slot it already used at ballot 0), the revocation
  /// round counter (aux) and the own revoked floor (tail).
  [[nodiscard]] consensus::HardState hard_state() const override {
    return consensus::HardState{max_promised_round_, kNoNode, next_own_,
                                rev_round_, own_rev_floor_};
  }
  void persist_hard_state() override { persister_.hard_state(); }
  void set_hard_state_probe(consensus::HardStateProbe probe) override {
    persister_.set_probe(std::move(probe));
  }
  storage::RecoveryStats recover(const storage::DurableImage& img) override;

  /// Proposes a command on this node's next own slot. Always succeeds
  /// (every replica is a leader for its residue class). Returns the slot.
  LogIndex submit(const kv::Command& cmd) override;

  /// Every replica is the default leader of its own residue class.
  [[nodiscard]] bool is_leader() const override { return true; }
  [[nodiscard]] NodeId leader_hint() const override { return group_.self; }
  [[nodiscard]] bool leaderless() const override { return true; }
  /// The contiguous executed prefix (Mencius has no global commit index;
  /// the watermark trails execution).
  [[nodiscard]] LogIndex commit_index() const override {
    return applier_.commit_index();
  }

  [[nodiscard]] NodeId id() const override { return group_.self; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] LogIndex applied_floor() const { return applier_.next_index(); }
  [[nodiscard]] LogIndex next_own() const { return next_own_; }
  [[nodiscard]] NodeId owner_of(LogIndex i) const {
    return group_.members[static_cast<size_t>(i) % group_.members.size()];
  }
  [[nodiscard]] int64_t slots_skipped() const { return slots_skipped_; }
  [[nodiscard]] int64_t revocations_started() const override {
    return revocations_;
  }
  [[nodiscard]] int64_t pipeline_rollbacks() const override {
    return pipe_.rollbacks();
  }

 private:
  enum class St : uint8_t {
    kEmpty = 0,
    kValued,    // holds a value accepted at `bal`, not known decided
    kDecided,   // final (skip => no-op command)
  };
  struct Slot {
    St st = St::kEmpty;
    kv::Command cmd;
    Ballot bal;        // ballot of the held value ({0, owner} = fast path)
    Ballot promised;   // revocation promise
    std::vector<NodeId> acks;   // proposer side (owner or revoker)
    Time proposed_at = 0;
    bool own_pending_ack = false;  // our proposal, client not yet acked
  };

  void on_accept_own(const AcceptOwn& m);
  void on_accept_own_ok(const AcceptOwnOk& m);
  void on_accept_own_rej(const AcceptOwnRej& m);
  void on_skip_range(const SkipRange& m);
  void on_status(const StatusBeat& m);
  void on_learn_req(const LearnReq& m);
  void on_learn_vals(const LearnVals& m);
  void on_rev_prepare(const RevPrepare& m);
  void on_rev_prepare_ok(const RevPrepareOk& m);
  void on_rev_accept(const RevAccept& m);
  void on_rev_accept_ok(const RevAcceptOk& m);
  void on_snapshot_xfer(const SnapshotXfer& m);

  void maybe_compact(bool force);
  /// Mirrors slot `i`'s full durable state into the write-ahead log.
  void persist_slot(LogIndex i) {
    if (!recovering_) slots_.persist(i);
  }
  /// One revocation phase-2 acknowledgement for slot `i` (remote, or self
  /// once the self-accept's fsync barrier clears); decides on majority and
  /// collects the decide notice into `lv`.
  void note_rev_ack(const consensus::Ballot& bal, LogIndex i, NodeId who,
                    LearnVals& lv);
  /// Decision-history entries above the checkpoint floor — what the next
  /// checkpoint would absorb (the bounded-memory invariant caps this).
  [[nodiscard]] size_t history_above_floor() const;
  /// Ships our checkpoint to `to` (stalled learner / stale revoker).
  void send_snapshot(NodeId to);
  /// True when every slot of the active revocation is settled locally.
  [[nodiscard]] bool revocation_done() const;

  void flush();
  /// Drains `peer`'s outbox through its in-flight window: queued skip
  /// announcements first (tiny, ack-less), then AcceptOwn batches while the
  /// window has room.
  void pump_peer(NodeId peer);
  void broadcast(Message m);
  void maintenance();  // retransmit, learn-requests, revocation triggers
  void note_owner_watermark(NodeId owner, LogIndex decided_floor,
                            LogIndex rev_floor);
  void skip_own_upto(LogIndex boundary);  // skip unused own slots < boundary
  void decide(LogIndex i, const kv::Command& cmd);
  void slot_got_value(LogIndex i, Slot& s);
  void advance_floors();
  void advance_floors_inner();
  void on_slot_applied(LogIndex i, const kv::Command& cmd);
  void try_ack_own();
  void start_revocation(NodeId owner, LogIndex lo, LogIndex hi);
  [[nodiscard]] bool commutes_below(LogIndex i, const kv::Command& cmd) const;
  Slot& slot(LogIndex i);
  [[nodiscard]] const Slot* slot_if(LogIndex i) const;
  /// Executed slot's decided command from the retained history (nullptr when
  /// the index predates the history window). O(log |history|): entries are
  /// appended in slot order.
  [[nodiscard]] const kv::Command* decided_at(LogIndex i) const;
  [[nodiscard]] LogIndex own_decided_floor() const;
  /// Exclusive execution floor: slots < afloor() are executed.
  [[nodiscard]] LogIndex afloor() const { return applier_.next_index(); }

  consensus::Group group_;
  consensus::Env& env_;
  Options opt_;
  storage::Persister persister_;
  int rank_;
  int n_;
  consensus::Term max_promised_round_ = 0;  // scalar over all slot promises
  bool recovering_ = false;

  consensus::SparseLog<Slot> slots_;  // sparse; pruned below the apply floor
  LogIndex info_floor_ = 0;          // slots < info_floor_ have st != kEmpty
  LogIndex next_own_ = 0;            // smallest unused own slot
  LogIndex max_seen_ = -1;           // largest slot index observed anywhere
  LogIndex own_rev_floor_ = -1;      // highest own slot known revoked

  // Shared runtime machinery. Mencius slots are 0-based, so the applier
  // starts at -1; the status/maintenance beat rides the heartbeat interval.
  consensus::PeriodicTimer status_;
  consensus::Batcher batcher_;
  consensus::Applier applier_;

  // Per-owner published watermarks.
  std::unordered_map<NodeId, LogIndex> owner_floor_;
  std::unordered_map<NodeId, LogIndex> owner_rev_floor_;
  std::unordered_map<NodeId, Time> last_heard_;

  // Commutativity bookkeeping over unexecuted-but-valued slots.
  std::unordered_map<uint64_t, int> unapplied_ops_;
  std::unordered_map<uint64_t, int> unapplied_writes_;

  // Pending own proposals not yet flushed.
  std::vector<OwnItem> pending_;
  std::vector<std::pair<LogIndex, LogIndex>> pending_skips_;

  // Per-colleague replication stream: flushed proposals/skips queue here and
  // drain through the shared in-flight window (consensus::PeerPipeline), so
  // a slow or partitioned colleague no longer stalls — or gets blanket
  // re-broadcasts of — everyone else's stream. Executed items are pruned
  // from the backlog (a peer that far behind learns via watermarks/LearnReq).
  struct PeerOut {
    std::deque<OwnItem> items;
    std::deque<std::pair<LogIndex, LogIndex>> skips;
  };
  std::unordered_map<NodeId, PeerOut> outbox_;
  consensus::PeerPipeline pipe_;

  // Own proposals whose clients have not been acknowledged yet.
  std::vector<LogIndex> own_unacked_;

  // Decided values retained after execution so revocation prepares can still
  // report them (bounded ring; see on_rev_prepare). Compaction trims it
  // against the checkpoint: aged-out ranges are served as snapshots.
  static constexpr size_t kHistoryCap = 65536;
  std::deque<std::pair<LogIndex, kv::Command>> decided_history_;

  // Latest checkpoint (covers all slots <= snap_.last_index).
  consensus::Snapshot snap_;
  consensus::CompactionTrigger compaction_;
  int64_t snapshots_installed_ = 0;

  // Active revocation this node is running (one at a time).
  struct Revocation {
    bool active = false;
    Ballot bal;
    NodeId owner = kNoNode;
    LogIndex lo = 0, hi = 0;
    std::vector<NodeId> promises;
    std::map<LogIndex, RevAccepted> best;  // highest-ballot accepted per slot
    std::map<LogIndex, std::vector<NodeId>> acks;  // phase-2 acks per slot
    bool phase2 = false;
  } rev_;
  consensus::Term rev_round_ = 0;  // ballot rounds used for revocations
  Time last_progress_ = 0;

  int64_t slots_skipped_ = 0;
  int64_t revocations_ = 0;
  bool advancing_ = false;

  consensus::ApplyFn apply_;
  AckFn acked_;
};

}  // namespace praft::mencius
