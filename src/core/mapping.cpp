// The porting engine lives in port.cpp; this TU anchors additional mapping
// helpers if they grow beyond header scope.
#include "core/port.h"

namespace praft::core {}
