#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "spec/refinement.h"
#include "spec/spec.h"

namespace praft::core {

/// Reads protocol variables BY NAME. Optimization deltas are written against
/// A's variable names only; the port re-binds those names through the
/// refinement mapping, which is the whole §4.3 trick.
using VarFn = std::function<spec::Value(const std::string&)>;

/// Variable updates an optimization step produces. The engine enforces the
/// §4.2 non-mutating restriction: only Δ-variables may appear here.
using DeltaUpdates = std::map<std::string, spec::Value>;

/// An added subaction (§4.2): reads A-vars and Δ-vars, never writes A-vars.
struct AddedAction {
  std::string name;
  std::vector<spec::Domain> domains;
  std::function<std::optional<DeltaUpdates>(const VarFn& avars,
                                            const VarFn& dvars,
                                            const std::vector<spec::Value>&)>
      step;
};

/// Extra conjunctive clauses attached to an existing A subaction (§4.2):
/// evaluated with the A-variables before and after the base step plus the
/// Δ-variables before; nullopt disables the whole (modified) subaction.
struct DeltaClause {
  std::function<std::optional<DeltaUpdates>(
      const VarFn& a_pre, const VarFn& a_post, const VarFn& d_pre,
      const std::vector<spec::Value>& params)>
      apply;
};

struct ModifiedAction {
  std::string base;  // the A subaction being modified
  DeltaClause clause;
};

/// A non-mutating optimization Δ over protocol A (§4.2): new variables with
/// initial values, added subactions, and modified subactions. Everything not
/// listed is an unchanged subaction.
struct OptimizationDelta {
  std::string name;
  std::vector<std::pair<std::string, spec::Value>> new_vars;
  std::vector<AddedAction> added;
  std::vector<ModifiedAction> modified;
  std::vector<spec::Invariant> new_invariants;  // checked on AΔ / BΔ

  [[nodiscard]] bool is_delta_var(const std::string& name) const;
};

/// AΔ = A + Δ. By construction AΔ refines A under the projection that drops
/// the Δ-variables (the §4.2 guarantee).
spec::Spec apply_delta(const spec::Spec& a, const OptimizationDelta& delta);

/// Fig. 3's function table: which B subactions imply each A subaction, with
/// the parameter mapping P_A = f_args(P_B) (§4.3).
struct Correspondence {
  struct Entry {
    std::string b_action;
    std::string a_action;
    /// Maps B-level params (with the B pre-state for context) to A params.
    /// Null = identity.
    std::function<std::vector<spec::Value>(const spec::Spec& b,
                                           const spec::State& pre,
                                           const std::vector<spec::Value>&)>
        map_params;
  };
  std::vector<Entry> entries;

  [[nodiscard]] std::vector<const Entry*> a_actions_of(
      const std::string& b_action) const;
};

/// BΔ = port(B, f, corr, Δ) — the automated §4.3 transformation:
///   Case 1 (added):    substitute Var_A reads with f(Var_B);
///   Case 2 (unchanged): keep every implying B subaction as-is;
///   Case 3 (modified): attach the translated clause to EVERY B subaction
///                      that implies the modified A subaction.
/// No PQL- or Mencius-specific logic lives here; case studies are pure data.
spec::Spec port(const spec::Spec& b, const spec::RefinementMapping& f,
                const Correspondence& corr, const OptimizationDelta& delta);

/// Fig. 5 helpers: BΔ ⇒ B by dropping Δ-vars; BΔ ⇒ AΔ by f on the B part
/// and identity on the Δ part.
spec::RefinementMapping projection_mapping(const spec::Spec& bd,
                                           const spec::Spec& b);
spec::RefinementMapping lifted_mapping(const spec::RefinementMapping& f,
                                       const spec::Spec& bd,
                                       const spec::Spec& ad,
                                       const OptimizationDelta& delta);

}  // namespace praft::core
