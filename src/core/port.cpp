#include "core/port.h"

#include "common/check.h"

namespace praft::core {

using spec::Action;
using spec::RefinementMapping;
using spec::Spec;
using spec::State;
using spec::Value;

bool OptimizationDelta::is_delta_var(const std::string& name) const {
  for (const auto& [n, init] : new_vars) {
    if (n == name) return true;
  }
  return false;
}

std::vector<const Correspondence::Entry*> Correspondence::a_actions_of(
    const std::string& b_action) const {
  std::vector<const Entry*> out;
  for (const auto& e : entries) {
    if (e.b_action == b_action) out.push_back(&e);
  }
  return out;
}

namespace {

void apply_updates(const Spec& spec, State& s, const DeltaUpdates& updates,
                   const OptimizationDelta& delta) {
  for (const auto& [name, v] : updates) {
    PRAFT_CHECK_MSG(delta.is_delta_var(name),
                    "non-mutating optimization wrote protocol variable " +
                        name + " (violates the paper's §4.2 restriction)");
    spec.set(s, name, v);
  }
}

}  // namespace

Spec apply_delta(const Spec& a, const OptimizationDelta& delta) {
  Spec ad(a.name() + "+" + delta.name);
  for (const auto& v : a.vars()) ad.declare_var(v);
  for (const auto& [n, init] : delta.new_vars) ad.declare_var(n);

  for (const State& i : a.init()) {
    State s = i;
    for (const auto& [n, init] : delta.new_vars) s.push_back(init);
    ad.add_init(std::move(s));
  }

  // Unchanged + modified subactions. Base actions read/write variables by
  // name; A's variables keep their positions in AΔ, so the original step
  // functions run verbatim on the extended states.
  for (const Action& act : a.actions()) {
    std::vector<const ModifiedAction*> clauses;
    for (const auto& m : delta.modified) {
      if (m.base == act.name) clauses.push_back(&m);
    }
    Action wrapped;
    wrapped.name = act.name;
    wrapped.domains = act.domains;
    auto base_step = act.step;
    wrapped.step = [base_step, clauses, &delta](
                       const Spec& sp, const State& s,
                       const std::vector<Value>& params)
        -> std::optional<State> {
      std::optional<State> next = base_step(sp, s, params);
      if (!next.has_value()) return std::nullopt;
      for (const ModifiedAction* m : clauses) {
        VarFn a_pre = [&sp, &s](const std::string& n) { return sp.get(s, n); };
        VarFn a_post = [&sp, &next](const std::string& n) {
          return sp.get(*next, n);
        };
        VarFn d_pre = a_pre;  // Δ-vars live in the same state vector
        auto updates = m->clause.apply(a_pre, a_post, d_pre, params);
        if (!updates.has_value()) return std::nullopt;  // extra guard failed
        apply_updates(sp, *next, *updates, delta);
      }
      return next;
    };
    ad.add_action(std::move(wrapped));
  }

  // Added subactions: may read everything, may write only Δ-vars.
  for (const AddedAction& aa : delta.added) {
    Action act;
    act.name = aa.name;
    act.domains = aa.domains;
    auto step = aa.step;
    act.step = [step, &delta](const Spec& sp, const State& s,
                              const std::vector<Value>& params)
        -> std::optional<State> {
      VarFn vars = [&sp, &s](const std::string& n) { return sp.get(s, n); };
      auto updates = step(vars, vars, params);
      if (!updates.has_value()) return std::nullopt;
      State next = s;
      apply_updates(sp, next, *updates, delta);
      return next;
    };
    ad.add_action(std::move(act));
  }

  for (const auto& inv : a.invariants()) ad.add_invariant(inv);
  for (const auto& inv : delta.new_invariants) ad.add_invariant(inv);
  return ad;
}

Spec port(const Spec& b, const RefinementMapping& f, const Correspondence& corr,
          const OptimizationDelta& delta) {
  PRAFT_CHECK(f.to != nullptr && f.from != nullptr);
  const Spec& a = *f.to;
  Spec bd(b.name() + "+" + delta.name);
  for (const auto& v : b.vars()) bd.declare_var(v);
  for (const auto& [n, init] : delta.new_vars) {
    PRAFT_CHECK_MSG(!b.has_var(n), "Δ-variable name collides with B: " + n);
    bd.declare_var(n);
  }
  for (const State& i : b.init()) {
    State s = i;
    for (const auto& [n, init] : delta.new_vars) s.push_back(init);
    bd.add_init(std::move(s));
  }

  // Cases 2 and 3: every B subaction is kept; those that imply a modified A
  // subaction additionally evaluate the translated clause with
  // Var_A = f(Var_B) and P_A = f_args(P_B).
  for (const Action& bact : b.actions()) {
    std::vector<std::pair<const ModifiedAction*, const Correspondence::Entry*>>
        clauses;
    for (const Correspondence::Entry* e : corr.a_actions_of(bact.name)) {
      for (const auto& m : delta.modified) {
        if (m.base == e->a_action) clauses.emplace_back(&m, e);
      }
    }
    Action wrapped;
    wrapped.name = bact.name;
    wrapped.domains = bact.domains;
    auto base_step = bact.step;
    wrapped.step = [base_step, clauses, &delta, &f, &a, &b](
                       const Spec& sp, const State& s,
                       const std::vector<Value>& params)
        -> std::optional<State> {
      std::optional<State> next = base_step(sp, s, params);
      if (!next.has_value()) return std::nullopt;
      if (!clauses.empty()) {
        // Map B states (pre/post) into A's variable space once.
        const State a_pre_state = f.map_state(b, s);
        const State a_post_state = f.map_state(b, *next);
        for (const auto& [m, e] : clauses) {
          VarFn a_pre = [&a, &a_pre_state](const std::string& n) {
            return a.get(a_pre_state, n);
          };
          VarFn a_post = [&a, &a_post_state](const std::string& n) {
            return a.get(a_post_state, n);
          };
          VarFn d_pre = [&sp, &s](const std::string& n) {
            return sp.get(s, n);
          };
          const std::vector<Value> a_params =
              e->map_params ? e->map_params(b, s, params) : params;
          auto updates = m->clause.apply(a_pre, a_post, d_pre, a_params);
          if (!updates.has_value()) return std::nullopt;
          apply_updates(sp, *next, *updates, delta);
        }
      }
      return next;
    };
    bd.add_action(std::move(wrapped));
  }

  // Case 1: added subactions with Var_A reads substituted by f(Var_B).
  for (const AddedAction& aa : delta.added) {
    Action act;
    act.name = aa.name;
    act.domains = aa.domains;
    auto step = aa.step;
    act.step = [step, &delta, &f, &a, &b](const Spec& sp, const State& s,
                                          const std::vector<Value>& params)
        -> std::optional<State> {
      const State a_state = f.map_state(b, s);
      VarFn avars = [&a, &a_state](const std::string& n) {
        return a.get(a_state, n);
      };
      VarFn dvars = [&sp, &s](const std::string& n) { return sp.get(s, n); };
      auto updates = step(avars, dvars, params);
      if (!updates.has_value()) return std::nullopt;
      State next = s;
      apply_updates(sp, next, *updates, delta);
      return next;
    };
    bd.add_action(std::move(act));
  }

  for (const auto& inv : b.invariants()) bd.add_invariant(inv);
  return bd;
}

RefinementMapping projection_mapping(const Spec& bd, const Spec& b) {
  RefinementMapping m;
  m.from = &bd;
  m.to = &b;
  const Spec* bp = &b;
  m.map_state = [bp](const Spec& bd_spec, const State& s) {
    State out;
    out.reserve(bp->vars().size());
    for (const auto& v : bp->vars()) out.push_back(bd_spec.get(s, v));
    return out;
  };
  return m;
}

RefinementMapping lifted_mapping(const RefinementMapping& f, const Spec& bd,
                                 const Spec& ad,
                                 const OptimizationDelta& delta) {
  RefinementMapping m;
  m.from = &bd;
  m.to = &ad;
  const RefinementMapping* base = &f;
  const OptimizationDelta* d = &delta;
  m.map_state = [base, d](const Spec& bd_spec, const State& s) {
    // f on the B variables, identity on the Δ variables.
    State a_part = base->map_state(*base->from, s);
    for (const auto& [n, init] : d->new_vars) {
      a_part.push_back(bd_spec.get(s, n));
    }
    return a_part;
  };
  return m;
}

}  // namespace praft::core
