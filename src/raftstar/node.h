#pragma once

#include <map>
#include <vector>

#include "consensus/applier.h"
#include "consensus/batcher.h"
#include "consensus/durable_log.h"
#include "consensus/env.h"
#include "consensus/group.h"
#include "consensus/log.h"
#include "consensus/node_iface.h"
#include "consensus/pipeline.h"
#include "consensus/timer.h"
#include "consensus/timing.h"
#include "consensus/types.h"
#include "net/packet.h"
#include "raftstar/messages.h"
#include "storage/persister.h"

namespace praft::raftstar {

/// Raft* shares every timing knob with the rest of the repo (see
/// consensus::TimingOptions); the struct exists for protocol-scoped naming.
struct Options : consensus::TimingOptions {};

enum class Role { kFollower, kCandidate, kLeader };

/// Raft* — the paper's Raft variant that refines MultiPaxos (§3, Fig. 2):
///  1. Vote replies return the voter's extra log entries; the new leader
///     extends its log with safe values (highest log ballot per index)
///     instead of followers erasing their longer logs.
///  2. A follower REJECTS an append whose coverage (prev + |entries|) is
///     shorter than its own log — Raft* never erases accepted entries, it
///     only overwrites them with a full replacement suffix.
///  3. Every accepted append overwrites the ballot of all covered entries
///     with the append's term (tracked as the uniform `log_bal_` watermark),
///     which is why Raft* needs no §5.4.2 commit restriction.
///
/// Timers, batching, log storage and the apply watermark come from the
/// shared consensus runtime; only the deltas above live here.
class RaftStarNode : public consensus::NodeIface {
 public:
  /// `store` (nullable) is this node's stable storage: term/votedFor, the
  /// log and its uniform ballot persist through it; dependent messages wait
  /// on the fsync barrier (storage::Persister).
  RaftStarNode(consensus::Group group, consensus::Env& env, Options opt = {},
               storage::DurableStore* store = nullptr);

  void start() override;
  void on_packet(const net::Packet& p) override;

  /// Leader-only append; returns assigned index or -1.
  LogIndex submit(const kv::Command& cmd) override;

  void set_apply(consensus::ApplyFn fn) override {
    applier_.set_apply(std::move(fn));
  }

  void set_watermark_probe(consensus::WatermarkProbe probe) override {
    applier_.set_probe(std::move(probe));
  }

  void set_state_hooks(consensus::StateCapture capture,
                       consensus::StateRestore restore) override {
    applier_.set_state_hooks(std::move(capture), std::move(restore));
  }

  /// Forces a checkpoint + log compaction at the applied watermark now.
  void compact() override { maybe_compact(/*force=*/true); }
  [[nodiscard]] LogIndex compaction_floor() const override {
    return log_.base_index();
  }
  [[nodiscard]] size_t compactable_entries() const override {
    return static_cast<size_t>(applier_.applied() - log_.base_index());
  }
  [[nodiscard]] size_t resident_log_entries() const override {
    return log_.resident_entries();
  }
  [[nodiscard]] int64_t snapshots_installed() const override {
    return snapshots_installed_;
  }
  [[nodiscard]] LogIndex applied_index() const override {
    return applier_.applied();
  }
  [[nodiscard]] int64_t pipeline_rollbacks() const override {
    return pipe_.rollbacks();
  }

  /// Raft*'s hard state: currentTerm + votedFor, plus the uniform log
  /// ballot (aux) — a recovered log must remember the ballot its entries
  /// were last re-accepted at or safe-value selection breaks.
  [[nodiscard]] consensus::HardState hard_state() const override {
    return consensus::HardState{term_, voted_for_, -1, log_bal_, -1};
  }
  void persist_hard_state() override { persister_.hard_state(); }
  void set_hard_state_probe(consensus::HardStateProbe probe) override {
    persister_.set_probe(std::move(probe));
  }
  storage::RecoveryStats recover(const storage::DurableImage& img) override;

  /// Hook invoked when the leader learns a new commit index (used by the
  /// ported optimizations: Raft*-PQL gates commit on lease holders here).
  using CommitGate = std::function<bool(LogIndex)>;
  void set_commit_gate(CommitGate gate) { commit_gate_ = std::move(gate); }

  /// Re-evaluates the commit gate (PQL calls this when holder acks arrive).
  void retry_commit() { advance_commit(); }

  [[nodiscard]] Role role() const { return role_; }
  [[nodiscard]] bool is_leader() const override {
    return role_ == Role::kLeader;
  }
  [[nodiscard]] Term current_term() const { return term_; }
  [[nodiscard]] Term log_bal() const { return log_bal_; }
  [[nodiscard]] NodeId leader_hint() const override { return leader_; }
  [[nodiscard]] LogIndex commit_index() const override {
    return applier_.commit_index();
  }
  [[nodiscard]] LogIndex last_index() const { return log_.last_index(); }
  /// Bounds-checked access (PRAFT_CHECK on out-of-range indexes).
  [[nodiscard]] const Entry& entry_at(LogIndex i) const { return log_.at(i); }
  [[nodiscard]] NodeId id() const override { return group_.self; }
  [[nodiscard]] const consensus::Group& group() const { return group_; }

  /// The f+1'th largest replicated index (self included) — what the commit
  /// would be without any gate. Exposed for PQL's LeaderLearn.
  [[nodiscard]] LogIndex quorum_match_index() const;

  /// Observer invoked for every successful AppendReply the leader receives
  /// (non-mutating hook per §4.2 — it may read but never mutates Raft* state;
  /// Raft*-PQL uses it to collect lease-holder acknowledgements).
  using AppendReplyObserver = std::function<void(
      NodeId follower, LogIndex match, const std::vector<NodeId>& piggyback)>;
  void set_append_reply_observer(AppendReplyObserver obs) {
    append_reply_observer_ = std::move(obs);
  }

  /// Piggyback hook: ids attached to our AppendReply messages (Raft*-PQL
  /// attaches the holders of leases granted by this replica; Fig. 13).
  using ReplyDecorator = std::function<std::vector<NodeId>()>;
  void set_reply_decorator(ReplyDecorator dec) {
    reply_decorator_ = std::move(dec);
  }

  /// Observer invoked whenever an entry is stored into the LOCAL log
  /// (leader submit, safe-value adoption, follower suffix replacement).
  /// Raft*-PQL tracks per-key last-write indexes with it; like all
  /// optimization hooks it must not mutate Raft* state (§4.2).
  using EntryObserver = std::function<void(LogIndex, const Entry&)>;
  void set_entry_observer(EntryObserver obs) {
    entry_observer_ = std::move(obs);
  }

  void force_election() override { start_election(); }

 private:
  void on_request_vote(const RequestVote& m);
  void on_vote_reply(const VoteReply& m);
  void on_append_entries(const AppendEntries& m);
  void on_append_reply(const AppendReply& m);
  void on_install_snapshot(const InstallSnapshot& m);
  void on_install_reply(const InstallSnapshotReply& m);

  void start_election();
  void become_leader();
  void step_down(Term t);
  void replicate_to(NodeId peer, bool uncapped = false);
  void probe_retransmits();
  void send_snapshot(NodeId peer);
  void broadcast_append();
  void advance_commit();
  void commit_to(LogIndex target);
  void maybe_compact(bool force);
  [[nodiscard]] Term term_at(LogIndex i) const;
  /// Arms a durability barrier for everything appended so far (the leader
  /// counts itself toward commit quorums only up to the mirror's durable
  /// index — see consensus::DurableLogMirror).
  void note_appended();

  consensus::Group group_;
  consensus::Env& env_;
  Options opt_;

  Term term_ = 0;
  NodeId voted_for_ = kNoNode;
  consensus::ContiguousLog<Entry> log_;
  Term log_bal_ = 0;  // uniform per-entry ballot (see Entry doc)

  // Durability plumbing (see RaftNode): fsync barriers + the shared
  // WAL-mirroring/durable-cover machinery.
  storage::Persister persister_;
  consensus::DurableLogMirror<Entry> mirror_;
  bool recovering_ = false;  // gates compaction during recovery

  // Latest checkpoint (covers exactly the compacted prefix; see RaftNode).
  consensus::Snapshot snap_;
  consensus::CompactionTrigger compaction_;
  int64_t snapshots_installed_ = 0;

  Role role_ = Role::kFollower;
  NodeId leader_ = kNoNode;

  // Shared runtime machinery.
  consensus::ElectionTimer election_;
  consensus::PeriodicTimer heartbeat_;
  consensus::Batcher batcher_;
  consensus::Applier applier_;

  // Candidate state: vote tally plus collected extra entries per voter.
  consensus::QuorumTracker votes_;
  struct ExtraLog {
    Term log_bal;
    LogIndex from;
    std::vector<Entry> entries;
  };
  std::vector<ExtraLog> extras_;
  LogIndex election_last_index_ = 0;  // our last_index when we solicited votes
  // Newest checkpoint shipped by a voter (see VoteReply::has_snap):
  // installed in BecomeLeader before safe-value selection.
  consensus::Snapshot election_snap_;

  // Ordered maps: quorum_match_index iterates match_index_, and the visit
  // order must be seed-stable (lint rule D1).
  std::map<NodeId, LogIndex> next_index_;
  std::map<NodeId, LogIndex> match_index_;
  // Per-peer in-flight window (consensus::PeerPipeline; see RaftNode).
  consensus::PeerPipeline pipe_;

  CommitGate commit_gate_;
  AppendReplyObserver append_reply_observer_;
  ReplyDecorator reply_decorator_;
  EntryObserver entry_observer_;

  void store_entry(Entry e);  // append + observer
};

}  // namespace praft::raftstar
