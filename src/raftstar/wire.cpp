#include "raftstar/wire.h"

#include "net/field_codec.h"

namespace praft::raftstar {

namespace {

using net::WireReader;
using net::WireWriter;

static_assert(std::variant_size_v<Message> == 6,
              "new Raft* message: add a codec below and bump this count");

void put_entries(WireWriter& w, const std::vector<Entry>& entries) {
  w.u32(static_cast<uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.i64(e.term);
    net::put_cmd(w, e.cmd);
  }
}

std::vector<Entry> get_entries(WireReader& r) {
  const uint32_t n = r.u32();
  std::vector<Entry> entries;
  entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Entry e;
    e.term = r.i64();
    e.cmd = net::get_cmd(r);
    entries.push_back(std::move(e));
  }
  return entries;
}

void put(WireWriter& w, const RequestVote& m) {
  w.i64(m.term);
  w.i32(m.candidate);
  w.i64(m.last_index);
  w.i64(m.last_term);
}
RequestVote get_request_vote(WireReader& r) {
  RequestVote m;
  m.term = r.i64();
  m.candidate = r.i32();
  m.last_index = r.i64();
  m.last_term = r.i64();
  return m;
}

void put(WireWriter& w, const VoteReply& m) {
  w.i64(m.term);
  w.i32(m.voter);
  w.boolean(m.granted);
  w.i64(m.log_bal);
  w.i64(m.extra_from);
  w.boolean(m.has_snap);
  put_entries(w, m.extras);
  if (m.has_snap) net::put_snapshot(w, m.snap);
}
VoteReply get_vote_reply(WireReader& r) {
  VoteReply m;
  m.term = r.i64();
  m.voter = r.i32();
  m.granted = r.boolean();
  m.log_bal = r.i64();
  m.extra_from = r.i64();
  m.has_snap = r.boolean();
  m.extras = get_entries(r);
  if (m.has_snap) m.snap = net::get_snapshot(r);
  return m;
}

void put(WireWriter& w, const AppendEntries& m) {
  w.i64(m.term);
  w.i32(m.leader);
  w.i64(m.prev_index);
  w.i64(m.prev_term);
  w.i64(m.commit);
  put_entries(w, m.entries);
}
AppendEntries get_append_entries(WireReader& r) {
  AppendEntries m;
  m.term = r.i64();
  m.leader = r.i32();
  m.prev_index = r.i64();
  m.prev_term = r.i64();
  m.commit = r.i64();
  m.entries = get_entries(r);
  return m;
}

void put(WireWriter& w, const AppendReply& m) {
  w.i64(m.term);
  w.i32(m.follower);
  w.boolean(m.ok);
  w.i64(m.match_index);
  w.i64(m.follower_last);
  w.i64(m.conflict_hint);
  w.u32(static_cast<uint32_t>(m.piggyback_ids.size()));
  for (NodeId id : m.piggyback_ids) w.i32(id);
}
AppendReply get_append_reply(WireReader& r) {
  AppendReply m;
  m.term = r.i64();
  m.follower = r.i32();
  m.ok = r.boolean();
  m.match_index = r.i64();
  m.follower_last = r.i64();
  m.conflict_hint = r.i64();
  const uint32_t n = r.u32();
  m.piggyback_ids.reserve(n);
  for (uint32_t i = 0; i < n; ++i) m.piggyback_ids.push_back(r.i32());
  return m;
}

void put(WireWriter& w, const InstallSnapshot& m) {
  w.i64(m.term);
  w.i32(m.leader);
  net::put_snapshot(w, m.snap);
}
InstallSnapshot get_install_snapshot(WireReader& r) {
  InstallSnapshot m;
  m.term = r.i64();
  m.leader = r.i32();
  m.snap = net::get_snapshot(r);
  return m;
}

void put(WireWriter& w, const InstallSnapshotReply& m) {
  w.i64(m.term);
  w.i32(m.follower);
  w.i64(m.last_index);
}
InstallSnapshotReply get_install_snapshot_reply(WireReader& r) {
  InstallSnapshotReply m;
  m.term = r.i64();
  m.follower = r.i32();
  m.last_index = r.i64();
  return m;
}

}  // namespace

net::Frame encode(const Message& m, net::BufferPool& pool) {
  const size_t total = wire_size(m);
  net::Frame f = pool.acquire(total);
  WireWriter w(f);
  w.header(net::Family::kRaftStar, static_cast<uint8_t>(m.index()));
  std::visit([&w](const auto& x) { put(w, x); }, m);
  w.finish();
  PRAFT_CHECK_MSG(f.size() == total, "raftstar codec/wire_size drift");
  return f;
}

Message decode(net::FrameView f) {
  WireReader r(f);
  const auto h = r.header();
  PRAFT_CHECK(h.family == net::Family::kRaftStar);
  Message m;
  switch (h.opcode) {
    case 0: m = get_request_vote(r); break;
    case 1: m = get_vote_reply(r); break;
    case 2: m = get_append_entries(r); break;
    case 3: m = get_append_reply(r); break;
    case 4: m = get_install_snapshot(r); break;
    case 5: m = get_install_snapshot_reply(r); break;
    default: PRAFT_CHECK_MSG(false, "bad raftstar opcode");
  }
  r.finish();
  return m;
}

}  // namespace praft::raftstar
