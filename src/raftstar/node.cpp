#include "raftstar/node.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"

namespace praft::raftstar {

RaftStarNode::RaftStarNode(consensus::Group group, consensus::Env& env,
                           Options opt, storage::DurableStore* store)
    : group_(std::move(group)),
      env_(env),
      opt_(opt),
      persister_(env, store, opt_.fsync_duration, opt_.sync_batch_delay,
                 [this] { return hard_state(); }),
      mirror_(persister_, log_),
      election_(env, opt_.election_timeout_min, opt_.election_timeout_max),
      heartbeat_(env),
      batcher_(env, opt_,
               [this] {
                 if (role_ == Role::kLeader) broadcast_append();
               }),
      votes_(group_.majority()),
      pipe_(opt_) {
  group_.validate();
  election_.set_gate([this] { return role_ != Role::kLeader; });
  election_.set_handler([this](bool expired) {
    if (expired) start_election();
  });
  heartbeat_.set_gate([this] { return role_ == Role::kLeader; });
  heartbeat_.set_handler([this] {
    probe_retransmits();
    broadcast_append();
    // Interval-leg compaction must also fire on an idle leader (followers
    // re-evaluate on the commit_to every heartbeat append triggers).
    maybe_compact(/*force=*/false);
  });
}

void RaftStarNode::start() { election_.start(); }

void RaftStarNode::note_appended() {
  mirror_.note_appended([this] {
    if (role_ == Role::kLeader) advance_commit();
  });
}

void RaftStarNode::store_entry(Entry e) {
  log_.append(std::move(e));
  if (entry_observer_) entry_observer_(last_index(), log_.at(last_index()));
}

Term RaftStarNode::term_at(LogIndex i) const { return log_.at(i).term; }

void RaftStarNode::start_election() {
  ++term_;
  role_ = Role::kCandidate;
  leader_ = kNoNode;
  voted_for_ = group_.self;
  votes_ = consensus::QuorumTracker(group_.majority());
  votes_.add(group_.self);
  extras_.clear();
  election_snap_ = consensus::Snapshot{};  // a failed election's snapshot is
                                           // no voter's word in this one
  election_last_index_ = last_index();
  persister_.hard_state();  // the self-vote must survive a crash
  election_.touch();
  PRAFT_LOG(kDebug) << "raft* " << group_.self << " starts election term "
                    << term_;
  RequestVote rv{term_, group_.self, last_index(), term_at(last_index())};
  for (NodeId peer : group_.members) {
    if (peer == group_.self) continue;
    persister_.send(peer, Message{rv}, wire_size(rv));
  }
  if (votes_.reached()) become_leader();
}

void RaftStarNode::step_down(Term t) {
  if (t > term_) {
    term_ = t;
    voted_for_ = kNoNode;
    persister_.hard_state();
  }
  if (role_ == Role::kLeader) {
    next_index_.clear();
    match_index_.clear();
    heartbeat_.stop();
    // A flush armed while we led must not fire now that we are deposed, and
    // in-flight windows from this reign must not gate (or be retired by
    // stale acks during) a future one.
    batcher_.cancel();
    pipe_.reset_all();
  }
  role_ = Role::kFollower;
}

void RaftStarNode::on_packet(const net::Packet& p) {
  const auto* msg = net::payload_as<Message>(p);
  PRAFT_CHECK_MSG(msg != nullptr, "raft* node got foreign payload");
  std::visit(
      [this](const auto& m) {
        using M = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<M, RequestVote>) {
          on_request_vote(m);
        } else if constexpr (std::is_same_v<M, VoteReply>) {
          on_vote_reply(m);
        } else if constexpr (std::is_same_v<M, AppendEntries>) {
          on_append_entries(m);
        } else if constexpr (std::is_same_v<M, AppendReply>) {
          on_append_reply(m);
        } else if constexpr (std::is_same_v<M, InstallSnapshot>) {
          on_install_snapshot(m);
        } else {
          on_install_reply(m);
        }
      },
      *msg);
}

void RaftStarNode::on_request_vote(const RequestVote& m) {
  if (m.term > term_) step_down(m.term);
  VoteReply reply;
  reply.term = term_;
  reply.voter = group_.self;
  if (m.term == term_ && (voted_for_ == kNoNode || voted_for_ == m.candidate)) {
    // Appendix B.2 Phase1b: empty log, or lastTerm <, or == and not longer
    // index-wise than the candidate... with one Raft* twist: a voter whose
    // log is LONGER but on an older last term still votes and ships its
    // extra entries (Fig. 2a lines 14-16) for safe-value selection.
    const Term my_last_term = term_at(last_index());
    const bool up_to_date =
        m.last_term > my_last_term ||
        (m.last_term == my_last_term && m.last_index >= last_index());
    if (up_to_date) {
      reply.granted = true;
      voted_for_ = m.candidate;
      persister_.hard_state();
      election_.touch();
      reply.log_bal = log_bal_;
      // A candidate whose log ends below our snapshot base cannot receive
      // those entries as extras (they were compacted away): ship the
      // checkpoint, and extras resume above it.
      if (m.last_index < log_.base_index() && snap_.valid()) {
        reply.has_snap = true;
        reply.snap = snap_;
      }
      const LogIndex from = std::max(m.last_index, log_.base_index()) + 1;
      reply.extra_from = from;
      for (LogIndex i = from; i <= last_index(); ++i) {
        reply.extras.push_back(log_.at(i));
      }
    }
  }
  if (reply.granted && opt_.unsafe_skip_vote_fsync) {
    // TEST-ONLY injected bug: the reply leaves before the vote hits disk.
    persister_.send_unsynced(m.candidate, Message{reply}, wire_size(reply));
  } else {
    persister_.send(m.candidate, Message{reply}, wire_size(reply));
  }
}

void RaftStarNode::on_vote_reply(const VoteReply& m) {
  if (m.term > term_) {
    step_down(m.term);
    return;
  }
  if (role_ != Role::kCandidate || m.term != term_ || !m.granted) return;
  if (votes_.add(m.voter)) {
    if (!m.extras.empty()) {
      extras_.push_back(ExtraLog{m.log_bal, m.extra_from, m.extras});
    }
    if (m.has_snap && m.snap.last_index > election_snap_.last_index) {
      election_snap_ = m.snap;
    }
  }
  if (votes_.reached()) become_leader();
}

void RaftStarNode::become_leader() {
  // Compaction: a voter whose snapshot base is above our log shipped its
  // checkpoint instead of the compacted entries. Install the newest one
  // BEFORE safe-value selection, so the committed prefix it covers is never
  // refilled with no-ops.
  if (election_snap_.valid() && applier_.install_snapshot(election_snap_)) {
    ++snapshots_installed_;
    persister_.snapshot(election_snap_);
    if (election_snap_.last_index <= last_index() &&
        election_snap_.last_index > log_.base_index()) {
      // Keep our accepted suffix (Raft* never erases accepted entries); the
      // values it holds at committed indexes match the chosen ones by the
      // ballot discipline (log_bal >= the choosing ballot).
      log_.compact_to(election_snap_.last_index);
    } else if (election_snap_.last_index > last_index()) {
      // Everything we held is inside the committed checkpoint: superseded.
      log_.reset_to(election_snap_.last_index,
                    Entry{election_snap_.last_term, {}});
    }
    snap_ = election_snap_;
    PRAFT_LOG(kInfo) << "raft* " << group_.self
                     << " installed election snapshot @"
                     << election_snap_.last_index;
  }
  election_snap_ = consensus::Snapshot{};

  // BecomeLeader (Fig. 2a lines 18-29): extend our log with the safe value
  // for every index past our last_index — the value from the reply with the
  // highest log ballot — re-stamped at the current term. Indexes at or
  // below the (possibly just-installed) snapshot base are settled.
  const LogIndex adopt_from =
      std::max(election_last_index_, log_.base_index());
  LogIndex max_extra = adopt_from;
  for (const auto& ex : extras_) {
    max_extra = std::max(
        max_extra, ex.from + static_cast<LogIndex>(ex.entries.size()) - 1);
  }
  for (LogIndex i = adopt_from + 1; i <= max_extra; ++i) {
    Term best_bal = -1;
    const Entry* best = nullptr;
    for (const auto& ex : extras_) {
      const LogIndex off = i - ex.from;
      if (off < 0 || off >= static_cast<LogIndex>(ex.entries.size())) continue;
      if (ex.log_bal > best_bal) {
        best_bal = ex.log_bal;
        best = &ex.entries[static_cast<size_t>(off)];
      }
    }
    // Gaps cannot occur (extras are contiguous suffixes), but guard anyway.
    Entry e;
    e.term = term_;
    e.cmd = best != nullptr ? best->cmd : kv::noop_command();
    store_entry(e);
  }
  extras_.clear();

  role_ = Role::kLeader;
  leader_ = group_.self;
  log_bal_ = term_;  // the leader's implicit accept covers its whole log
  persister_.hard_state();
  next_index_.clear();
  match_index_.clear();
  pipe_.reset_all();
  for (NodeId peer : group_.members) {
    if (peer == group_.self) continue;
    // Full-suffix replacement semantics: start from the first retained
    // entry (index 1 until the first compaction). Peers behind the base
    // get a snapshot from replicate_to.
    next_index_[peer] = log_.base_index() + 1;
    match_index_[peer] = 0;
  }
  PRAFT_LOG(kInfo) << "raft* " << group_.self << " leader at term " << term_;
  // No term-start no-op needed: Raft* re-ballots every covered entry, so
  // prior-term entries commit by counting (the §5.4.2 rule is unnecessary).
  note_appended();  // safe-value adoptions above must reach disk to count
  broadcast_append();
  heartbeat_.start(opt_.heartbeat_interval);
}

LogIndex RaftStarNode::submit(const kv::Command& cmd) {
  if (role_ != Role::kLeader) return -1;
  // Backpressure: a full replication pipe refuses new submissions (temporary
  // -1, retried by the harness) instead of growing leader memory unboundedly.
  if (!batcher_.can_accept()) return -1;
  store_entry(Entry{term_, cmd});
  note_appended();
  batcher_.add_pending(wire::entry_bytes(cmd));
  return last_index();
}

void RaftStarNode::broadcast_append() {
  for (NodeId peer : group_.members) {
    if (peer == group_.self) continue;
    replicate_to(peer);
  }
  advance_commit();
}

void RaftStarNode::replicate_to(NodeId peer, bool uncapped) {
  // Pump loop (see RaftNode::replicate_to): batches stream until the peer
  // catches up or its in-flight window (consensus::PeerPipeline) closes.
  // An uncapped reject-resend follows an on_reject that just emptied the
  // window, so the full-suffix replacement is always admitted.
  bool sent_any = false;
  for (;;) {
    const LogIndex next = next_index_[peer];
    PRAFT_CHECK(next >= 1);
    if (next <= log_.base_index()) {
      // The follower is behind our compacted prefix: state transfer instead
      // of log replay (same catch-up shape as Raft — see RaftNode).
      if (!pipe_.can_send(peer)) return;
      send_snapshot(peer);
      sent_any = true;
      continue;  // appends pipeline right behind the snapshot
    }
    const bool has_new = last_index() >= next;
    if (!has_new && sent_any) return;  // caught up; no trailing keep-alive
    if (has_new && !pipe_.can_send(peer)) return;  // window full
    const LogIndex prev = next - 1;
    AppendEntries ae;
    ae.term = term_;
    ae.leader = group_.self;
    ae.prev_index = prev;
    ae.prev_term = term_at(std::min(prev, last_index()));
    ae.commit = commit_index();
    const LogIndex hi =
        uncapped ? last_index()
                 : std::min(last_index(),
                            prev + static_cast<LogIndex>(
                                       opt_.max_entries_per_batch));
    for (LogIndex i = prev + 1; i <= hi; ++i) {
      ae.entries.push_back(log_.at(i));
    }
    const size_t bytes = wire_size(ae);
    persister_.send(peer, Message{ae}, bytes);
    // Empty keep-alives stay untracked and ungated (see RaftNode).
    if (!has_new) return;
    pipe_.on_send(peer, next, hi, bytes, env_.now());
    next_index_[peer] = hi + 1;
    sent_any = true;
  }
}

void RaftStarNode::probe_retransmits() {
  // Loss detection (see RaftNode::probe_retransmits): unwind the window and
  // roll nextIndex back to the lowest un-acked position; the heartbeat's
  // broadcast_append re-sends from there.
  for (NodeId peer : group_.members) {
    if (peer == group_.self || !pipe_.retransmit_due(peer, env_.now())) {
      continue;
    }
    const LogIndex lo = pipe_.on_loss(peer);
    if (lo >= 1) {
      next_index_[peer] = std::max<LogIndex>(
          1, std::min(next_index_[peer], lo));
    }
  }
}

void RaftStarNode::on_append_entries(const AppendEntries& m) {
  if (m.term < term_) {
    AppendReply reply{term_, group_.self, false, 0, last_index(), 0, {}};
    persister_.send(m.leader, Message{reply}, wire_size(reply));
    return;
  }
  step_down(m.term);
  leader_ = m.leader;
  election_.touch();

  const LogIndex coverage =
      m.prev_index + static_cast<LogIndex>(m.entries.size());

  // Compaction clamp (see RaftNode::on_append_entries): entries at or below
  // our snapshot base are committed and applied here; skip them and resume
  // the suffix replacement at the base sentinel.
  LogIndex prev = m.prev_index;
  size_t skip = 0;
  if (prev < log_.base_index()) {
    const LogIndex covered = std::min(
        static_cast<LogIndex>(m.entries.size()), log_.base_index() - prev);
    skip = static_cast<size_t>(covered);
    prev += covered;
    if (prev < log_.base_index()) {
      // The whole append predates our snapshot: ack it as matched.
      AppendReply reply;
      reply.term = term_;
      reply.follower = group_.self;
      reply.ok = true;
      reply.match_index = coverage;
      reply.follower_last = last_index();
      if (reply_decorator_) reply.piggyback_ids = reply_decorator_();
      persister_.send(m.leader, Message{reply}, wire_size(reply));
      return;
    }
  }

  const bool prev_ok =
      skip > 0 ||
      (m.prev_index <= last_index() && term_at(m.prev_index) == m.prev_term);
  // Raft* difference #2: reject appends whose coverage is shorter than our
  // log instead of erasing our suffix (Appendix B.2 AcceptEntries requires
  // lIndex >= lastIndex).
  if (!prev_ok || coverage < last_index()) {
    AppendReply reply;
    reply.term = term_;
    reply.follower = group_.self;
    reply.ok = false;
    reply.follower_last = last_index();
    // conflict_hint == 0 means "prev matched but coverage was too short:
    // resend from the same prev with the full suffix"; otherwise it is the
    // index the leader should back off to.
    reply.conflict_hint =
        prev_ok ? 0
                : std::max<LogIndex>(1, std::min(last_index() + 1, m.prev_index));
    persister_.send(m.leader, Message{reply}, wire_size(reply));
    return;
  }

  // Replace the whole suffix after prev with the leader's entries, and stamp
  // the covered log at the append's ballot (difference #3).
  log_.truncate_after(prev);
  for (size_t k = skip; k < m.entries.size(); ++k) store_entry(m.entries[k]);
  log_bal_ = m.term;
  persister_.hard_state();
  note_appended();

  commit_to(std::min(m.commit, last_index()));
  AppendReply reply;
  reply.term = term_;
  reply.follower = group_.self;
  reply.ok = true;
  reply.match_index = coverage;
  reply.follower_last = last_index();
  if (reply_decorator_) reply.piggyback_ids = reply_decorator_();
  persister_.send(m.leader, Message{reply}, wire_size(reply));
}

void RaftStarNode::on_append_reply(const AppendReply& m) {
  if (m.term > term_) {
    step_down(m.term);
    return;
  }
  if (role_ != Role::kLeader || m.term != term_) return;
  if (m.ok) {
    // Cumulative ack: retires every in-flight batch the match index covers
    // (and feeds the peer's RTT estimate for adaptive retransmit timeouts).
    pipe_.on_ack(m.follower, m.match_index, env_.now());
    match_index_[m.follower] = std::max(match_index_[m.follower], m.match_index);
    next_index_[m.follower] =
        std::max(next_index_[m.follower], m.match_index + 1);
    if (append_reply_observer_) {
      append_reply_observer_(m.follower, m.match_index, m.piggyback_ids);
    }
    advance_commit();
    if (next_index_[m.follower] <= last_index()) replicate_to(m.follower);
  } else {
    // Unwind everything pipelined behind the rejected batch before backing
    // off — the full-replacement resend below supersedes it all.
    pipe_.on_reject(m.follower);
    if (m.follower_last > last_index()) {
      // The follower's log is longer than ours. Extend our log with no-ops so
      // our coverage can overwrite its (necessarily uncommitted) suffix; the
      // safe-value selection at election time already recovered anything
      // that could have been committed.
      while (last_index() < m.follower_last) {
        store_entry(Entry{term_, kv::noop_command()});
      }
      note_appended();
    }
    if (m.conflict_hint == 0) {
      // Coverage was too short; resend the whole retained suffix
      // (full-replacement semantics make prev = base always valid).
      next_index_[m.follower] = log_.base_index() + 1;
    } else {
      next_index_[m.follower] = std::max<LogIndex>(
          1, std::min(next_index_[m.follower] - 1, m.conflict_hint));
    }
    replicate_to(m.follower, /*uncapped=*/true);
  }
}

LogIndex RaftStarNode::quorum_match_index() const {
  std::vector<LogIndex> matches;
  // Self counts only its durable prefix (the mirror's note_appended barrier
  // advances it) — same rule as RaftNode::advance_commit.
  matches.push_back(mirror_.durable_index());
  for (const auto& [peer, match] : match_index_) matches.push_back(match);
  std::sort(matches.begin(), matches.end(), std::greater<>());
  const auto k = static_cast<size_t>(opt_.commit_quorum(group_.majority()) - 1);
  // A durability barrier can clear before the leader maps are (re)built —
  // with fewer known replicas than the quorum, nothing is committable.
  if (k >= matches.size()) return 0;
  return matches[k];
}

void RaftStarNode::advance_commit() {
  if (role_ != Role::kLeader) return;
  const LogIndex target = quorum_match_index();
  // No current-term check: every successful reply re-accepted the covered
  // prefix at this term's ballot (LeaderLearn in Fig. 2b).
  LogIndex allowed = commit_index();
  while (allowed < target) {
    const LogIndex next = allowed + 1;
    if (commit_gate_ && !commit_gate_(next)) break;  // PQL holder gating
    allowed = next;
  }
  commit_to(allowed);
}

void RaftStarNode::commit_to(LogIndex target) {
  // Committed entries are no longer in flight for the batching controller
  // (leader only — a follower never flushed them).
  if (role_ == Role::kLeader) {
    size_t acked = 0;
    for (LogIndex i = commit_index() + 1; i <= target; ++i) {
      acked += wire::entry_bytes(log_.at(i).cmd);
    }
    if (acked > 0) batcher_.note_acked(acked);
  }
  applier_.commit_to(target,
                     [this](LogIndex i) { return &log_.at(i).cmd; });
  maybe_compact(/*force=*/false);
}

void RaftStarNode::maybe_compact(bool force) {
  if (recovering_ || !applier_.can_snapshot()) return;
  const LogIndex target = applier_.applied();
  const auto compactable = static_cast<size_t>(target - log_.base_index());
  if (!compaction_.due(opt_, compactable, env_.now(), force)) return;
  snap_.last_index = target;
  snap_.last_term = term_at(target);
  snap_.state = applier_.capture_state();
  log_.compact_to(target);
  persister_.snapshot(snap_);
  compaction_.fired(env_.now());
  PRAFT_LOG(kDebug) << "raft* " << group_.self << " compacted log to "
                    << target;
}

void RaftStarNode::send_snapshot(NodeId peer) {
  PRAFT_CHECK_MSG(snap_.valid() && snap_.last_index == log_.base_index(),
                  "snapshot does not cover the compacted prefix");
  InstallSnapshot is{term_, group_.self, snap_};
  const size_t bytes = wire_size(is);
  persister_.send(peer, Message{is}, bytes);
  // The snapshot occupies the window like any batch (see RaftNode).
  pipe_.on_send(peer, next_index_[peer], snap_.last_index, bytes, env_.now());
  next_index_[peer] = snap_.last_index + 1;  // optimistic (see RaftNode)
}

void RaftStarNode::on_install_snapshot(const InstallSnapshot& m) {
  if (m.term >= term_) {
    step_down(m.term);
    leader_ = m.leader;
    election_.touch();
    if (applier_.install_snapshot(m.snap)) {
      ++snapshots_installed_;
      persister_.snapshot(m.snap);
      if (m.snap.last_index <= last_index() &&
          m.snap.last_index > log_.base_index() &&
          term_at(m.snap.last_index) == m.snap.last_term) {
        log_.compact_to(m.snap.last_index);  // retain the matching suffix
      } else {
        log_.reset_to(m.snap.last_index, Entry{m.snap.last_term, {}});
      }
      snap_ = m.snap;
      PRAFT_LOG(kInfo) << "raft* " << group_.self << " installed snapshot @"
                       << m.snap.last_index;
    }
  }
  InstallSnapshotReply reply{term_, group_.self, applier_.applied()};
  persister_.send(m.leader, Message{reply}, wire_size(reply));
}

storage::RecoveryStats RaftStarNode::recover(
    const storage::DurableImage& img) {
  PRAFT_CHECK_MSG(role_ == Role::kFollower && last_index() == 0 && term_ == 0,
                  "recover() must run once, on a fresh node, before start()");
  recovering_ = true;
  term_ = img.hard.term;
  voted_for_ = img.hard.vote;
  log_bal_ = img.hard.aux;
  if (img.snap.valid()) {
    applier_.install_snapshot(img.snap);
    snap_ = img.snap;
  }
  const storage::RecoveryStats stats = mirror_.replay(img);
  recovering_ = false;
  PRAFT_LOG(kInfo) << "raft* " << group_.self << " recovered: term " << term_
                   << ", log to " << last_index() << " at ballot " << log_bal_;
  return stats;
}

void RaftStarNode::on_install_reply(const InstallSnapshotReply& m) {
  if (m.term > term_) {
    step_down(m.term);
    return;
  }
  if (role_ != Role::kLeader || m.term != term_) return;
  pipe_.on_ack(m.follower, m.last_index, env_.now());
  match_index_[m.follower] = std::max(match_index_[m.follower], m.last_index);
  next_index_[m.follower] =
      std::max(next_index_[m.follower], m.last_index + 1);
  advance_commit();
  if (next_index_[m.follower] <= last_index()) replicate_to(m.follower);
}

}  // namespace praft::raftstar
