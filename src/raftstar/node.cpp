#include "raftstar/node.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"

namespace praft::raftstar {

RaftStarNode::RaftStarNode(consensus::Group group, consensus::Env& env,
                           Options opt)
    : group_(std::move(group)),
      env_(env),
      opt_(opt),
      election_(env, opt_.election_timeout_min, opt_.election_timeout_max),
      heartbeat_(env),
      batcher_(env, opt_.batch_delay,
               [this] {
                 if (role_ == Role::kLeader) broadcast_append();
               }),
      votes_(group_.majority()) {
  group_.validate();
  election_.set_gate([this] { return role_ != Role::kLeader; });
  election_.set_handler([this](bool expired) {
    if (expired) start_election();
  });
  heartbeat_.set_gate([this] { return role_ == Role::kLeader; });
  heartbeat_.set_handler([this] { broadcast_append(); });
}

void RaftStarNode::start() { election_.start(); }

void RaftStarNode::store_entry(Entry e) {
  log_.append(std::move(e));
  if (entry_observer_) entry_observer_(last_index(), log_.at(last_index()));
}

Term RaftStarNode::term_at(LogIndex i) const { return log_.at(i).term; }

void RaftStarNode::start_election() {
  ++term_;
  role_ = Role::kCandidate;
  leader_ = kNoNode;
  voted_for_ = group_.self;
  votes_ = consensus::QuorumTracker(group_.majority());
  votes_.add(group_.self);
  extras_.clear();
  election_last_index_ = last_index();
  election_.touch();
  PRAFT_LOG(kDebug) << "raft* " << group_.self << " starts election term "
                    << term_;
  RequestVote rv{term_, group_.self, last_index(), term_at(last_index())};
  for (NodeId peer : group_.members) {
    if (peer == group_.self) continue;
    env_.send(peer, Message{rv}, wire_size(rv));
  }
  if (votes_.reached()) become_leader();
}

void RaftStarNode::step_down(Term t) {
  if (t > term_) {
    term_ = t;
    voted_for_ = kNoNode;
  }
  if (role_ == Role::kLeader) {
    next_index_.clear();
    match_index_.clear();
    heartbeat_.stop();
  }
  role_ = Role::kFollower;
}

void RaftStarNode::on_packet(const net::Packet& p) {
  const auto* msg = net::payload_as<Message>(p);
  PRAFT_CHECK_MSG(msg != nullptr, "raft* node got foreign payload");
  std::visit(
      [this](const auto& m) {
        using M = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<M, RequestVote>) {
          on_request_vote(m);
        } else if constexpr (std::is_same_v<M, VoteReply>) {
          on_vote_reply(m);
        } else if constexpr (std::is_same_v<M, AppendEntries>) {
          on_append_entries(m);
        } else {
          on_append_reply(m);
        }
      },
      *msg);
}

void RaftStarNode::on_request_vote(const RequestVote& m) {
  if (m.term > term_) step_down(m.term);
  VoteReply reply;
  reply.term = term_;
  reply.voter = group_.self;
  if (m.term == term_ && (voted_for_ == kNoNode || voted_for_ == m.candidate)) {
    // Appendix B.2 Phase1b: empty log, or lastTerm <, or == and not longer
    // index-wise than the candidate... with one Raft* twist: a voter whose
    // log is LONGER but on an older last term still votes and ships its
    // extra entries (Fig. 2a lines 14-16) for safe-value selection.
    const Term my_last_term = term_at(last_index());
    const bool up_to_date =
        m.last_term > my_last_term ||
        (m.last_term == my_last_term && m.last_index >= last_index());
    if (up_to_date) {
      reply.granted = true;
      voted_for_ = m.candidate;
      election_.touch();
      reply.log_bal = log_bal_;
      reply.extra_from = m.last_index + 1;
      for (LogIndex i = m.last_index + 1; i <= last_index(); ++i) {
        reply.extras.push_back(log_.at(i));
      }
    }
  }
  env_.send(m.candidate, Message{reply}, wire_size(reply));
}

void RaftStarNode::on_vote_reply(const VoteReply& m) {
  if (m.term > term_) {
    step_down(m.term);
    return;
  }
  if (role_ != Role::kCandidate || m.term != term_ || !m.granted) return;
  if (votes_.add(m.voter) && !m.extras.empty()) {
    extras_.push_back(ExtraLog{m.log_bal, m.extra_from, m.extras});
  }
  if (votes_.reached()) become_leader();
}

void RaftStarNode::become_leader() {
  // BecomeLeader (Fig. 2a lines 18-29): extend our log with the safe value
  // for every index past our last_index — the value from the reply with the
  // highest log ballot — re-stamped at the current term.
  LogIndex max_extra = election_last_index_;
  for (const auto& ex : extras_) {
    max_extra = std::max(
        max_extra, ex.from + static_cast<LogIndex>(ex.entries.size()) - 1);
  }
  for (LogIndex i = election_last_index_ + 1; i <= max_extra; ++i) {
    Term best_bal = -1;
    const Entry* best = nullptr;
    for (const auto& ex : extras_) {
      const LogIndex off = i - ex.from;
      if (off < 0 || off >= static_cast<LogIndex>(ex.entries.size())) continue;
      if (ex.log_bal > best_bal) {
        best_bal = ex.log_bal;
        best = &ex.entries[static_cast<size_t>(off)];
      }
    }
    // Gaps cannot occur (extras are contiguous suffixes), but guard anyway.
    Entry e;
    e.term = term_;
    e.cmd = best != nullptr ? best->cmd : kv::noop_command();
    store_entry(e);
  }
  extras_.clear();

  role_ = Role::kLeader;
  leader_ = group_.self;
  log_bal_ = term_;  // the leader's implicit accept covers its whole log
  next_index_.clear();
  match_index_.clear();
  for (NodeId peer : group_.members) {
    if (peer == group_.self) continue;
    next_index_[peer] = 1;  // full-suffix replacement semantics: start from 1
    match_index_[peer] = 0;
  }
  PRAFT_LOG(kInfo) << "raft* " << group_.self << " leader at term " << term_;
  // No term-start no-op needed: Raft* re-ballots every covered entry, so
  // prior-term entries commit by counting (the §5.4.2 rule is unnecessary).
  broadcast_append();
  heartbeat_.start(opt_.heartbeat_interval);
}

LogIndex RaftStarNode::submit(const kv::Command& cmd) {
  if (role_ != Role::kLeader) return -1;
  store_entry(Entry{term_, cmd});
  batcher_.poke();
  return last_index();
}

void RaftStarNode::broadcast_append() {
  for (NodeId peer : group_.members) {
    if (peer == group_.self) continue;
    replicate_to(peer);
  }
  advance_commit();
}

void RaftStarNode::replicate_to(NodeId peer, bool uncapped) {
  const LogIndex next = next_index_[peer];
  PRAFT_CHECK(next >= 1);
  const LogIndex prev = next - 1;
  AppendEntries ae;
  ae.term = term_;
  ae.leader = group_.self;
  ae.prev_index = prev;
  ae.prev_term = term_at(std::min(prev, last_index()));
  ae.commit = commit_index();
  const LogIndex hi =
      uncapped ? last_index()
               : std::min(last_index(),
                          prev + static_cast<LogIndex>(
                                     opt_.max_entries_per_batch));
  for (LogIndex i = prev + 1; i <= hi; ++i) {
    ae.entries.push_back(log_.at(i));
  }
  env_.send(peer, Message{ae}, wire_size(ae));
  // Optimistic pipelining (see RaftNode::replicate_to).
  if (hi >= next) next_index_[peer] = hi + 1;
}

void RaftStarNode::on_append_entries(const AppendEntries& m) {
  if (m.term < term_) {
    AppendReply reply{term_, group_.self, false, 0, last_index(), 0, {}};
    env_.send(m.leader, Message{reply}, wire_size(reply));
    return;
  }
  step_down(m.term);
  leader_ = m.leader;
  election_.touch();

  const LogIndex coverage =
      m.prev_index + static_cast<LogIndex>(m.entries.size());
  const bool prev_ok =
      m.prev_index <= last_index() && term_at(m.prev_index) == m.prev_term;
  // Raft* difference #2: reject appends whose coverage is shorter than our
  // log instead of erasing our suffix (Appendix B.2 AcceptEntries requires
  // lIndex >= lastIndex).
  if (!prev_ok || coverage < last_index()) {
    AppendReply reply;
    reply.term = term_;
    reply.follower = group_.self;
    reply.ok = false;
    reply.follower_last = last_index();
    // conflict_hint == 0 means "prev matched but coverage was too short:
    // resend from the same prev with the full suffix"; otherwise it is the
    // index the leader should back off to.
    reply.conflict_hint =
        prev_ok ? 0
                : std::max<LogIndex>(1, std::min(last_index() + 1, m.prev_index));
    env_.send(m.leader, Message{reply}, wire_size(reply));
    return;
  }

  // Replace the whole suffix after prev with the leader's entries, and stamp
  // the covered log at the append's ballot (difference #3).
  log_.truncate_after(m.prev_index);
  for (const Entry& e : m.entries) store_entry(e);
  log_bal_ = m.term;

  commit_to(std::min(m.commit, last_index()));
  AppendReply reply;
  reply.term = term_;
  reply.follower = group_.self;
  reply.ok = true;
  reply.match_index = coverage;
  reply.follower_last = last_index();
  if (reply_decorator_) reply.piggyback_ids = reply_decorator_();
  env_.send(m.leader, Message{reply}, wire_size(reply));
}

void RaftStarNode::on_append_reply(const AppendReply& m) {
  if (m.term > term_) {
    step_down(m.term);
    return;
  }
  if (role_ != Role::kLeader || m.term != term_) return;
  if (m.ok) {
    match_index_[m.follower] = std::max(match_index_[m.follower], m.match_index);
    next_index_[m.follower] =
        std::max(next_index_[m.follower], m.match_index + 1);
    if (append_reply_observer_) {
      append_reply_observer_(m.follower, m.match_index, m.piggyback_ids);
    }
    advance_commit();
    if (next_index_[m.follower] <= last_index()) replicate_to(m.follower);
  } else {
    if (m.follower_last > last_index()) {
      // The follower's log is longer than ours. Extend our log with no-ops so
      // our coverage can overwrite its (necessarily uncommitted) suffix; the
      // safe-value selection at election time already recovered anything
      // that could have been committed.
      while (last_index() < m.follower_last) {
        store_entry(Entry{term_, kv::noop_command()});
      }
    }
    if (m.conflict_hint == 0) {
      // Coverage was too short; resend the whole suffix (full-replacement
      // semantics make prev=0 always valid).
      next_index_[m.follower] = 1;
    } else {
      next_index_[m.follower] = std::max<LogIndex>(
          1, std::min(next_index_[m.follower] - 1, m.conflict_hint));
    }
    replicate_to(m.follower, /*uncapped=*/true);
  }
}

LogIndex RaftStarNode::quorum_match_index() const {
  std::vector<LogIndex> matches;
  matches.push_back(last_index());  // self
  for (const auto& [peer, match] : match_index_) matches.push_back(match);
  std::sort(matches.begin(), matches.end(), std::greater<>());
  return matches[static_cast<size_t>(
      opt_.commit_quorum(group_.majority()) - 1)];
}

void RaftStarNode::advance_commit() {
  if (role_ != Role::kLeader) return;
  const LogIndex target = quorum_match_index();
  // No current-term check: every successful reply re-accepted the covered
  // prefix at this term's ballot (LeaderLearn in Fig. 2b).
  LogIndex allowed = commit_index();
  while (allowed < target) {
    const LogIndex next = allowed + 1;
    if (commit_gate_ && !commit_gate_(next)) break;  // PQL holder gating
    allowed = next;
  }
  commit_to(allowed);
}

void RaftStarNode::commit_to(LogIndex target) {
  applier_.commit_to(target,
                     [this](LogIndex i) { return &log_.at(i).cmd; });
}

}  // namespace praft::raftstar
