#pragma once

#include <variant>
#include <vector>

#include "consensus/snapshot.h"
#include "consensus/types.h"
#include "kv/command.h"

namespace praft::raftstar {

using consensus::LogIndex;
using consensus::Term;

/// A Raft* log entry. `term` is the creation term (used for the prev-check),
/// while the *ballot* of every entry is the node-level `log_bal` watermark:
/// Raft*'s AcceptEntries sets logBallot[i] = append.term for ALL i <= lIndex
/// (Appendix B.2), so per-entry ballots are always uniform across one log —
/// the LogBallotInv invariant. We exploit that to store it once per node.
struct Entry {
  Term term = 0;
  kv::Command cmd;

  friend bool operator==(const Entry&, const Entry&) = default;
};

struct RequestVote {
  Term term = 0;
  NodeId candidate = kNoNode;
  LogIndex last_index = 0;
  Term last_term = 0;

  friend bool operator==(const RequestVote&, const RequestVote&) = default;
};

/// Raft* difference #1 (paper §3): an OK reply carries the voter's extra
/// entries beyond the candidate's last_index, plus the voter's log ballot so
/// the candidate can pick safe values (highest ballot per index).
struct VoteReply {
  Term term = 0;
  NodeId voter = kNoNode;
  bool granted = false;
  Term log_bal = -1;
  LogIndex extra_from = 0;     // first index in `extras`
  std::vector<Entry> extras;   // voter's entries after candidate.last_index
  /// Compaction: when the candidate's log ends below the voter's snapshot
  /// base, the voter cannot ship those entries — it ships its checkpoint
  /// instead (extras then start at the voter's base + 1). Without this a
  /// winning candidate would fill committed, compacted-away indexes with
  /// no-ops in BecomeLeader's safe-value selection.
  bool has_snap = false;
  consensus::Snapshot snap;

  friend bool operator==(const VoteReply&, const VoteReply&) = default;
};

struct AppendEntries {
  Term term = 0;
  NodeId leader = kNoNode;
  LogIndex prev_index = 0;
  Term prev_term = 0;
  std::vector<Entry> entries;
  LogIndex commit = 0;

  friend bool operator==(const AppendEntries&, const AppendEntries&) = default;
};

struct AppendReply {
  Term term = 0;
  NodeId follower = kNoNode;
  bool ok = false;
  LogIndex match_index = 0;    // on success: prev + |entries|
  LogIndex follower_last = 0;  // follower's last index (both cases)
  LogIndex conflict_hint = 0;  // on prev-mismatch: back-off target
  /// Optimization piggyback (paper Fig. 13 line 16): Raft*-PQL attaches the
  /// lease holders granted by the replier. Empty for plain Raft*.
  std::vector<NodeId> piggyback_ids;

  friend bool operator==(const AppendReply&, const AppendReply&) = default;
};

/// Snapshot state transfer: identical in shape to Raft's (the protocols are
/// structurally parallel down to their catch-up path).
struct InstallSnapshot {
  Term term = 0;
  NodeId leader = kNoNode;
  consensus::Snapshot snap;

  friend bool operator==(const InstallSnapshot&,
                         const InstallSnapshot&) = default;
};

struct InstallSnapshotReply {
  Term term = 0;
  NodeId follower = kNoNode;
  LogIndex last_index = 0;  // follower's applied watermark after the install

  friend bool operator==(const InstallSnapshotReply&,
                         const InstallSnapshotReply&) = default;
};

using Message = std::variant<RequestVote, VoteReply, AppendEntries, AppendReply,
                             InstallSnapshot, InstallSnapshotReply>;

// Exact encoded frame sizes (see raftstar/wire.cpp for the field layout).
namespace wire = consensus::wire;

inline size_t wire_size(const RequestVote&) {
  return wire::kFrame + 8 + 4 + 8 + 8;
}
inline size_t wire_size(const AppendReply& m) {
  return wire::kFrame + 8 + 4 + 1 + 8 + 8 + 8 + wire::kCount +
         4 * m.piggyback_ids.size();
}
inline size_t wire_size(const VoteReply& m) {
  size_t b = wire::kFrame + 8 + 4 + 1 + 8 + 8 + 1 + wire::kCount;
  for (const auto& e : m.extras) b += wire::entry_bytes(e.cmd);
  if (m.has_snap) b += m.snap.wire_bytes();
  return b;
}
inline size_t wire_size(const InstallSnapshot& m) {
  return wire::kFrame + 8 + 4 + m.snap.wire_bytes();
}
inline size_t wire_size(const InstallSnapshotReply&) {
  return wire::kFrame + 8 + 4 + 8;
}
inline size_t wire_size(const AppendEntries& m) {
  size_t b = wire::kFrame + 8 + 4 + 8 + 8 + 8 + wire::kCount;
  for (const auto& e : m.entries) b += wire::entry_bytes(e.cmd);
  return b;
}
inline size_t wire_size(const Message& m) {
  return std::visit([](const auto& x) { return wire_size(x); }, m);
}

}  // namespace praft::raftstar
