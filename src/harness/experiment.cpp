#include "harness/experiment.h"

#include "common/check.h"
#include "harness/log_server.h"
#include "mencius/server.h"
#include "pql/leader_lease.h"
#include "pql/raftstar_pql.h"
#include "sim/resources.h"

namespace praft::harness {

const char* system_name(SystemKind k) {
  switch (k) {
    case SystemKind::kRaft: return "Raft";
    case SystemKind::kRaftStar: return "Raft*";
    case SystemKind::kPaxos: return "MultiPaxos";
    case SystemKind::kRaftStarPql: return "Raft*-PQL";
    case SystemKind::kRaftStarLL: return "Raft*-LL";
    case SystemKind::kRaftStarMencius: return "Raft*-Mencius";
  }
  return "?";
}

LatencySummary summarize(const Histogram& h) {
  LatencySummary s;
  s.count = h.count();
  s.p50 = h.percentile(50);
  s.p90 = h.percentile(90);
  s.p99 = h.percentile(99);
  return s;
}

namespace {

// Protocol Options default-construct to the paper's WAN-scale timing
// (consensus::TimingOptions), so factories pass no explicit options.
Cluster::ServerFactory make_server_factory(const ExperimentConfig& cfg,
                                           const CostModel& costs) {
  if (!cfg.protocol.empty()) {
    // Runtime selection through the protocol registry; TimingOptions
    // defaults are the paper's WAN-scale values.
    const std::string protocol = cfg.protocol;
    const consensus::TimingOptions timing = cfg.timing;
    return [costs, protocol, timing](NodeHost& h, const consensus::Group& g) {
      return std::make_unique<LogServer>(h, g, costs, protocol, timing);
    };
  }
  switch (cfg.system) {
    case SystemKind::kRaft:
      return [costs](NodeHost& h, const consensus::Group& g) {
        return std::make_unique<RaftServer>(h, g, costs);
      };
    case SystemKind::kRaftStar:
      return [costs](NodeHost& h, const consensus::Group& g) {
        return std::make_unique<RaftStarServer>(h, g, costs);
      };
    case SystemKind::kPaxos:
      return [costs](NodeHost& h, const consensus::Group& g) {
        return std::make_unique<PaxosServer>(h, g, costs);
      };
    case SystemKind::kRaftStarPql:
      return [costs, cfg](NodeHost& h, const consensus::Group& g) {
        pql::PqlOptions popt;  // PQL paper leases: 2 s / 0.5 s renew (§5.1)
        popt.include_leader_grants = cfg.pql_include_leader_grants;
        return std::make_unique<pql::RaftStarPqlServer>(
            h, g, costs, raftstar::Options{}, popt);
      };
    case SystemKind::kRaftStarLL:
      return [costs](NodeHost& h, const consensus::Group& g) {
        return std::make_unique<pql::LeaderLeaseServer>(h, g, costs);
      };
    case SystemKind::kRaftStarMencius:
      return [costs, cfg](NodeHost& h, const consensus::Group& g) {
        mencius::Options mopt;
        mopt.decide_own_skips = cfg.mencius_full_port;
        return std::make_unique<mencius::MenciusServer>(h, g, costs, mopt);
      };
  }
  PRAFT_CHECK_MSG(false, "unknown system");
  return {};
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  ClusterConfig cc;
  cc.seed = cfg.seed;
  cc.costs.enabled = cfg.model_cpu;
  if (cfg.flat_rtt >= 0) {
    cc.latency = sim::LatencyMatrix(5, cfg.flat_rtt);
  }
  if (cfg.model_bandwidth) {
    // Per-site NIC egress (DESIGN.md §6): Oregon has the paper's 750 Mbps;
    // Seoul the weakest uplink (drives Raft-Oregon ≈ +30% over Raft-Seoul).
    const double mbps[5] = {750, 700, 650, 700, 560};
    for (double m : mbps) {
      cc.replica_egress.push_back(sim::EgressLink::mbps_to_bytes_per_us(m));
    }
  }
  Cluster cluster(cc);
  cluster.build_replicas(make_server_factory(cfg, cc.costs));

  if (!cluster.server(0).leaderless()) {
    const int leader = cluster.establish_leader(cfg.leader_replica);
    PRAFT_CHECK_MSG(leader == cfg.leader_replica,
                    "could not establish the requested leader");
  } else {
    cluster.run_for(msec(500));  // let status beats flow
  }

  const Time t0 = cluster.sim().now();
  cluster.metrics().set_window(t0 + cfg.warmup, t0 + cfg.warmup + cfg.run);
  cluster.add_clients(cfg.clients_per_region, cfg.workload, t0);
  cluster.run_until(t0 + cfg.warmup + cfg.run + cfg.cooldown);

  ExperimentResult res;
  res.leader_replica = cfg.leader_replica;
  res.throughput_ops = cluster.metrics().throughput_ops();
  res.client_retries = cluster.client_retries();
  const SiteId leader_site =
      cluster.config().replica_sites[static_cast<size_t>(cfg.leader_replica)];
  std::vector<SiteId> follower_sites;
  for (SiteId s = 0; s < cluster.config().latency.num_sites(); ++s) {
    if (s != leader_site) follower_sites.push_back(s);
  }
  res.leader_reads = summarize(cluster.metrics().reads(leader_site));
  res.leader_writes = summarize(cluster.metrics().writes(leader_site));
  res.follower_reads = summarize(cluster.metrics().merged_reads(follower_sites));
  res.follower_writes =
      summarize(cluster.metrics().merged_writes(follower_sites));
  return res;
}

}  // namespace praft::harness
