#include "harness/host.h"

#include <memory>

namespace praft::harness {

NodeHost::NodeHost(sim::Simulator& sim, sim::Network& net, SiteId site,
                   double egress_bytes_per_us)
    : sim_(sim), net_(net), site_(site), rng_(sim.rng().split()) {
  id_ = net_.add_node(site, [this](net::Packet&& p) { deliver(std::move(p)); },
                      egress_bytes_per_us);
}

void NodeHost::deliver(net::Packet&& p) {
  if (handler_ == nullptr) return;
  const Duration cost = handler_->cost_of(p);
  if (cost <= 0) {
    handler_->handle(p);
    return;
  }
  const Time done = cpu_.enqueue(sim_.now(), cost);
  // The packet waits in the CPU queue; processing completes at `done`.
  auto shared = std::make_shared<net::Packet>(std::move(p));
  sim_.at(done, [this, shared] {
    if (handler_ != nullptr) handler_->handle(*shared);
  });
}

}  // namespace praft::harness
