#include "harness/host.h"

#include <memory>

namespace praft::harness {

NodeHost::NodeHost(sim::Simulator& sim, sim::Network& net, SiteId site,
                   double egress_bytes_per_us, sim::SerialResource* shared_cpu)
    : sim_(sim), net_(net), site_(site), rng_(sim.rng().split()),
      cpu_res_(shared_cpu != nullptr ? shared_cpu : &cpu_) {
  id_ = net_.add_node(site, [this](net::Packet&& p) { deliver(std::move(p)); },
                      egress_bytes_per_us);
}

void NodeHost::deliver(net::Packet&& p) {
  if (handler_ == nullptr) return;
  const Duration cost = handler_->cost_of(p);
  if (cost <= 0) {
    handler_->handle(p);
    return;
  }
  const Time done = cpu_res_->enqueue(sim_.now(), cost);
  // The packet waits in the CPU queue; processing completes at `done`. The
  // closure owns the packet outright (the event queue takes move-only
  // callables), so no extra heap allocation rides the hot path.
  sim_.at(done, [this, pkt = std::move(p)] {
    if (handler_ != nullptr) handler_->handle(pkt);
  });
}

}  // namespace praft::harness
