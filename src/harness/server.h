#pragma once

#include <map>

#include "harness/cost_model.h"
#include "harness/host.h"
#include "harness/messages.h"
#include "kv/store.h"

namespace praft::harness {

/// Base class for replica adapters: owns the KV state machine and the
/// client-facing request plumbing; concrete adapters wire a protocol node in.
class ReplicaServer : public PacketHandler {
 public:
  ReplicaServer(NodeHost& host, CostModel costs)
      : host_(host), costs_(costs) {
    host_.attach(this);
  }

  virtual void start() = 0;
  [[nodiscard]] virtual bool is_leader() const = 0;
  [[nodiscard]] virtual NodeId leader_hint() const = 0;
  /// True when the protocol has no single elected leader (see
  /// consensus::NodeIface::leaderless).
  [[nodiscard]] virtual bool leaderless() const { return false; }
  /// Kicks off an immediate election attempt (used to pin the leader site).
  virtual void trigger_election() {}
  /// Highest position this replica knows committed (the replica's committed
  /// prefix, exposed for chaos/invariant tracing). -1 when not applicable.
  [[nodiscard]] virtual consensus::LogIndex commit_index() const { return -1; }

  [[nodiscard]] NodeId id() const { return host_.id(); }
  [[nodiscard]] SiteId site() const { return host_.site(); }
  [[nodiscard]] const kv::KvStore& store() const { return store_; }
  [[nodiscard]] NodeHost& host() { return host_; }

 protected:
  void reply_to_client(NodeId client, uint64_t seq, uint64_t value, bool ok) {
    ClientReply r{seq, value, ok, id()};
    host_.send(client, Message{r}, wire_size(r));
  }

  NodeHost& host_;
  CostModel costs_;
  kv::KvStore store_;
};

/// Pending client-op bookkeeping shared by log-replicating adapters: maps a
/// log index to where the reply must go once the entry executes.
struct PendingOp {
  NodeId client = kNoNode;   // reply directly to this client...
  NodeId origin = kNoNode;   // ...or relay via this forwarding server
  uint64_t seq = 0;
  kv::Command cmd;           // for identity verification after leader changes
};

// Ordered: snapshot installation walks this map to drop covered replies, and
// the walk order must be seed-stable (lint rule D1). Keys are log indexes,
// so ordered erasure of the covered prefix is also the natural shape.
using PendingMap = std::map<int64_t, PendingOp>;

}  // namespace praft::harness
