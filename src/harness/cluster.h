#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "consensus/group.h"
#include "consensus/timing.h"
#include "harness/client.h"
#include "harness/cost_model.h"
#include "harness/host.h"
#include "harness/metrics.h"
#include "harness/server.h"
#include "kv/workload.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace praft::harness {

/// World configuration for one simulated deployment (the paper's §5 testbed:
/// one replica per region, clients co-located with their regional replica).
struct ClusterConfig {
  int num_replicas = 5;
  std::vector<SiteId> replica_sites;  // default: replica i at site i
  sim::LatencyMatrix latency = sim::LatencyMatrix::aws5();
  /// Per-site egress bandwidth for REPLICA nodes, bytes/us (0 = unlimited).
  std::vector<double> replica_egress;
  CostModel costs;
  uint64_t seed = 1;
};

/// Builds and owns a full simulated deployment: simulator, network, replica
/// hosts + servers, and closed-loop clients.
class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);

  using ServerFactory = std::function<std::unique_ptr<ReplicaServer>(
      NodeHost& host, const consensus::Group& group)>;

  /// Creates the replica nodes (ids 0..n-1) and starts their servers.
  void build_replicas(const ServerFactory& factory);

  /// Same, selecting the consensus protocol by registry name at runtime
  /// ("raft", "raftstar", "multipaxos", "mencius", or anything registered
  /// later) behind the generic LogServer adapter.
  void build_replicas(const std::string& protocol,
                      const consensus::TimingOptions& timing = {});

  /// Adds `per_region` clients next to every replica, starting at `start_at`.
  void add_clients(int per_region, const kv::WorkloadConfig& wl, Time start_at);

  /// Creates an extra endpoint at `site` (tests drive hand-rolled clients).
  NodeHost& make_host(SiteId site) {
    client_hosts_.push_back(std::make_unique<NodeHost>(sim_, net_, site));
    return *client_hosts_.back();
  }

  /// Forces `preferred` to run for leadership and waits until it (or anyone)
  /// leads. Returns the leader replica index, or -1 on timeout.
  int establish_leader(int preferred, Duration deadline = sec(30));

  void run_until(Time t) { sim_.run_until(t); }
  void run_for(Duration d) { sim_.run_for(d); }

  /// Stops all clients (used by tests to let the cluster quiesce).
  void stop_clients() {
    for (auto& c : clients_) c->stop();
  }

  // -- Trace hooks (chaos/invariant checking) ------------------------------
  /// Observes every (replica, index, command) apply across the cluster.
  /// Returns the number of servers hooked (only LogServer-based replicas
  /// expose the probe). Call after build_replicas.
  using ApplyProbe =
      std::function<void(NodeId, consensus::LogIndex, const kv::Command&)>;
  int install_apply_probe(ApplyProbe probe);

  /// Observes every replica's (commit, applied) watermark advance.
  using WatermarkProbe =
      std::function<void(NodeId, consensus::LogIndex commit,
                         consensus::LogIndex applied)>;
  int install_watermark_probe(WatermarkProbe probe);

  /// Observes every snapshot install across the cluster: (replica, covered
  /// last index, store fingerprint after the restore). Only LogServer-based
  /// replicas expose it; returns the number hooked.
  using SnapshotProbe =
      std::function<void(NodeId, consensus::LogIndex, uint64_t store_fp)>;
  int install_snapshot_probe(SnapshotProbe probe);

  /// Observes every client-visible (invocation, response) pair: installed on
  /// existing clients and on any client added later.
  void install_reply_probe(ClosedLoopClient::ReplyProbe probe);

  [[nodiscard]] int leader_replica() const;

  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }
  Metrics& metrics() { return metrics_; }
  ReplicaServer& server(int i) { return *servers_[static_cast<size_t>(i)]; }
  [[nodiscard]] int num_replicas() const {
    return static_cast<int>(servers_.size());
  }
  [[nodiscard]] const consensus::Group& group_template() const {
    return group_template_;
  }
  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }
  [[nodiscard]] uint64_t client_retries() const;

 private:
  ClusterConfig cfg_;
  sim::Simulator sim_;
  sim::Network net_;
  Metrics metrics_;
  consensus::Group group_template_;  // self = kNoNode; members = replica ids
  std::vector<std::unique_ptr<NodeHost>> replica_hosts_;
  std::vector<std::unique_ptr<ReplicaServer>> servers_;
  std::vector<std::unique_ptr<NodeHost>> client_hosts_;
  std::vector<std::unique_ptr<ClosedLoopClient>> clients_;
  ClosedLoopClient::ReplyProbe reply_probe_;
};

}  // namespace praft::harness
