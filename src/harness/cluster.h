#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "consensus/group.h"
#include "consensus/timing.h"
#include "harness/client.h"
#include "harness/cost_model.h"
#include "harness/host.h"
#include "harness/metrics.h"
#include "harness/server.h"
#include "kv/workload.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/wal.h"

namespace praft::harness {

/// World configuration for one simulated deployment (the paper's §5 testbed:
/// one replica per region, clients co-located with their regional replica).
struct ClusterConfig {
  int num_replicas = 5;
  std::vector<SiteId> replica_sites;  // default: replica i at site i
  sim::LatencyMatrix latency = sim::LatencyMatrix::aws5();
  /// Per-site egress bandwidth for REPLICA nodes, bytes/us (0 = unlimited).
  std::vector<double> replica_egress;
  CostModel costs;
  uint64_t seed = 1;
};

/// Builds and owns a full simulated deployment: simulator, network, replica
/// hosts + servers, and closed-loop clients.
class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);

  using ServerFactory = std::function<std::unique_ptr<ReplicaServer>(
      NodeHost& host, const consensus::Group& group)>;

  /// Creates the replica nodes (ids 0..n-1) and starts their servers.
  void build_replicas(const ServerFactory& factory);

  /// Same, selecting the consensus protocol by registry name at runtime
  /// ("raft", "raftstar", "multipaxos", "mencius", or anything registered
  /// later) behind the generic LogServer adapter. Name-built replicas get a
  /// per-replica storage::DurableStore (owned by the cluster, so it survives
  /// node destruction) and support crash_replica/restart_replica.
  void build_replicas(const std::string& protocol,
                      const consensus::TimingOptions& timing = {});

  // -- Crash-restart (name-built replicas only) ----------------------------
  /// Destroys replica `i`'s server and protocol node NOW: scheduled
  /// callbacks are invalidated, in-flight deliveries drop, and every staged
  /// write that no completed fsync covered is lost — exactly a power cut.
  /// The durable store survives.
  void crash_replica(int i);
  /// Rebuilds replica `i` purely from its durable image (hard state +
  /// snapshot + WAL replay) and starts it. Crashes it first if still up.
  void restart_replica(int i);
  /// False while a replica is crashed (between crash_ and restart_).
  [[nodiscard]] bool replica_up(int i) const {
    return servers_[static_cast<size_t>(i)] != nullptr;
  }
  /// Stable node id of replica `i` (valid even while it is down).
  [[nodiscard]] NodeId replica_id(int i) const {
    return replica_hosts_[static_cast<size_t>(i)]->id();
  }
  [[nodiscard]] storage::DurableStore& store_of(int i) {
    return *stores_[static_cast<size_t>(i)];
  }
  [[nodiscard]] int64_t restarts() const { return restarts_; }
  /// Revocation counters of destroyed node incarnations, accumulated at
  /// crash time so restart-heavy runs keep their full coverage signal
  /// (a rebuilt node's own counter restarts at zero).
  [[nodiscard]] int64_t retired_revocations() const {
    return retired_revocations_;
  }
  /// Same crash-time banking for replication-pipeline window rollbacks
  /// (rejects + loss probes) — the chaos coverage signal for schedules that
  /// force in-flight batches to unwind.
  [[nodiscard]] int64_t retired_pipeline_rollbacks() const {
    return retired_pipeline_rollbacks_;
  }

  /// Observes every completed restart: the recovered hard state, what the
  /// recovery replayed, and the applied index right after it.
  using RestartProbe = std::function<void(
      NodeId, const consensus::HardState& recovered,
      const storage::RecoveryStats& stats, consensus::LogIndex applied)>;
  void set_restart_probe(RestartProbe probe) {
    restart_probe_ = std::move(probe);
  }

  /// Adds `per_region` clients next to every replica, starting at `start_at`.
  void add_clients(int per_region, const kv::WorkloadConfig& wl, Time start_at);

  /// Creates an extra endpoint at `site` (tests drive hand-rolled clients).
  NodeHost& make_host(SiteId site) {
    client_hosts_.push_back(std::make_unique<NodeHost>(sim_, net_, site));
    return *client_hosts_.back();
  }

  /// Forces `preferred` to run for leadership and waits until it (or anyone)
  /// leads. Returns the leader replica index, or -1 on timeout.
  int establish_leader(int preferred, Duration deadline = sec(30));

  void run_until(Time t) { sim_.run_until(t); }
  void run_for(Duration d) { sim_.run_for(d); }

  /// Stops all clients (used by tests to let the cluster quiesce).
  void stop_clients() {
    for (auto& c : clients_) c->stop();
  }

  // -- Trace hooks (chaos/invariant checking) ------------------------------
  /// Observes every (replica, index, command) apply across the cluster.
  /// Returns the number of servers hooked (only LogServer-based replicas
  /// expose the probe). Call after build_replicas.
  using ApplyProbe =
      std::function<void(NodeId, consensus::LogIndex, const kv::Command&)>;
  int install_apply_probe(ApplyProbe probe);

  /// Observes every replica's (commit, applied) watermark advance.
  using WatermarkProbe =
      std::function<void(NodeId, consensus::LogIndex commit,
                         consensus::LogIndex applied)>;
  int install_watermark_probe(WatermarkProbe probe);

  /// Observes every snapshot install across the cluster: (replica, covered
  /// last index, store fingerprint after the restore). Only LogServer-based
  /// replicas expose it; returns the number hooked.
  using SnapshotProbe =
      std::function<void(NodeId, consensus::LogIndex, uint64_t store_fp)>;
  int install_snapshot_probe(SnapshotProbe probe);

  /// Observes the hard state each protocol message depended on, at the
  /// moment the message leaves its replica (see storage::Persister). The
  /// chaos checker pairs it with the restart probe to assert recovered
  /// nodes never regress externally-visible term/ballot/vote state.
  using HardStateProbe =
      std::function<void(NodeId, const consensus::HardState&)>;
  int install_hard_state_probe(HardStateProbe probe);

  /// Observes every client-visible (invocation, response) pair: installed on
  /// existing clients and on any client added later.
  void install_reply_probe(ClosedLoopClient::ReplyProbe probe);

  [[nodiscard]] int leader_replica() const;

  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }
  Metrics& metrics() { return metrics_; }
  ReplicaServer& server(int i) { return *servers_[static_cast<size_t>(i)]; }
  [[nodiscard]] int num_replicas() const {
    return static_cast<int>(servers_.size());
  }
  [[nodiscard]] const consensus::Group& group_template() const {
    return group_template_;
  }
  [[nodiscard]] const ClusterConfig& config() const { return cfg_; }
  [[nodiscard]] uint64_t client_retries() const;

 private:
  void build_hosts();
  std::unique_ptr<ReplicaServer> make_named_server(int i);
  /// Applies every stored probe to replica `i` (idempotent overwrites) —
  /// the ONE wrapper implementation, shared by install_*_probe on live
  /// replicas and restart_replica on rebuilt ones.
  void install_probes_on(int i);
  int reinstall_probes();

  ClusterConfig cfg_;
  sim::Simulator sim_;
  sim::Network net_;
  Metrics metrics_;
  consensus::Group group_template_;  // self = kNoNode; members = replica ids
  std::vector<std::unique_ptr<NodeHost>> replica_hosts_;
  std::vector<std::unique_ptr<ReplicaServer>> servers_;
  std::vector<std::unique_ptr<storage::DurableStore>> stores_;
  std::vector<std::unique_ptr<NodeHost>> client_hosts_;
  std::vector<std::unique_ptr<ClosedLoopClient>> clients_;
  ClosedLoopClient::ReplyProbe reply_probe_;

  // Name-built configuration, retained so restart_replica can rebuild, plus
  // installed probes, re-applied to every restarted incarnation.
  std::string protocol_;
  consensus::TimingOptions timing_;
  ApplyProbe apply_probe_;
  WatermarkProbe watermark_probe_;
  SnapshotProbe snapshot_probe_;
  HardStateProbe hard_state_probe_;
  RestartProbe restart_probe_;
  int64_t restarts_ = 0;
  int64_t retired_revocations_ = 0;
  int64_t retired_pipeline_rollbacks_ = 0;
};

}  // namespace praft::harness
