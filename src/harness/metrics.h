#pragma once

#include <map>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"

namespace praft::harness {

/// Collects per-site read/write latency histograms and a committed-op count
/// within a measurement window (the paper trims warm-up and cool-down; §5).
class Metrics {
 public:
  Metrics() = default;
  Metrics(Time window_start, Time window_end)
      : window_start_(window_start), window_end_(window_end) {}

  void set_window(Time start, Time end) {
    window_start_ = start;
    window_end_ = end;
  }

  /// Records one completed operation observed at `now` (reply time).
  void record(Time now, SiteId site, bool is_read, Duration latency);

  [[nodiscard]] int64_t completed() const { return completed_; }
  [[nodiscard]] double throughput_ops() const;

  [[nodiscard]] const Histogram& reads(SiteId site) const;
  [[nodiscard]] const Histogram& writes(SiteId site) const;
  /// Merged across the given sites.
  [[nodiscard]] Histogram merged_reads(const std::vector<SiteId>& sites) const;
  [[nodiscard]] Histogram merged_writes(const std::vector<SiteId>& sites) const;

 private:
  struct SiteHists {
    Histogram reads;
    Histogram writes;
  };
  [[nodiscard]] bool in_window(Time t) const {
    return t >= window_start_ && t < window_end_;
  }

  Time window_start_ = 0;
  Time window_end_ = kTimeMax;
  int64_t completed_ = 0;
  std::map<SiteId, SiteHists> by_site_;
  Histogram empty_;
};

}  // namespace praft::harness
