#include "harness/protocols.h"

namespace praft::harness {

// Deliberately a name map parallel to consensus::ProtocolRegistry: the
// registry stays transport-cost-agnostic and the per-message entry counts
// live only in the harness traits (see protocols.h). Protocols registered
// without traits degrade gracefully to base message cost.
ProtocolCost protocol_cost(const std::string& name) {
  if (name == "raft") return protocol_cost<RaftProtocol>();
  if (name == "raftstar") return protocol_cost<RaftStarProtocol>();
  if (name == "multipaxos") return protocol_cost<PaxosProtocol>();
  if (name == "mencius") return protocol_cost<MenciusProtocol>();
  return {};  // unknown: base message cost only
}

}  // namespace praft::harness
