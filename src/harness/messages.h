#pragma once

#include <variant>

#include "consensus/types.h"
#include "kv/command.h"

namespace praft::harness {

/// Client -> replica: execute one command.
struct ClientRequest {
  kv::Command cmd;

  friend bool operator==(const ClientRequest&, const ClientRequest&) = default;
};

/// Replica -> client: result of a committed (or locally served) command.
struct ClientReply {
  uint64_t seq = 0;
  uint64_t value = 0;
  bool ok = true;
  NodeId server = kNoNode;

  friend bool operator==(const ClientReply&, const ClientReply&) = default;
};

/// Follower -> leader: etcd-style forwarding of client commands.
struct Forward {
  kv::Command cmd;
  NodeId origin = kNoNode;  // the forwarding server

  friend bool operator==(const Forward&, const Forward&) = default;
};

/// Leader -> forwarding server: result to relay to the client.
struct ForwardReply {
  kv::Command cmd;  // echoed for reply routing (client/seq) and read values
  uint64_t value = 0;
  bool ok = true;

  friend bool operator==(const ForwardReply&, const ForwardReply&) = default;
};

using Message = std::variant<ClientRequest, ClientReply, Forward, ForwardReply>;

// Exact encoded frame sizes (see harness/wire.cpp for the field layout).
// Replies used to be billed flat kSmallMsg even though ForwardReply echoes
// the full command; these are now derived from the codec like everything
// else.
namespace wire = consensus::wire;

inline size_t wire_size(const ClientRequest& m) {
  return wire::kFrame + m.cmd.wire_bytes();
}
inline size_t wire_size(const ClientReply&) {
  return wire::kFrame + 8 + 8 + 1 + 4;
}
inline size_t wire_size(const Forward& m) {
  return wire::kFrame + m.cmd.wire_bytes() + 4;
}
inline size_t wire_size(const ForwardReply& m) {
  return wire::kFrame + m.cmd.wire_bytes() + 8 + 1;
}
inline size_t wire_size(const Message& m) {
  return std::visit([](const auto& x) { return wire_size(x); }, m);
}

}  // namespace praft::harness
