#pragma once

#include <variant>

#include "consensus/types.h"
#include "kv/command.h"

namespace praft::harness {

/// Client -> replica: execute one command.
struct ClientRequest {
  kv::Command cmd;
};

/// Replica -> client: result of a committed (or locally served) command.
struct ClientReply {
  uint64_t seq = 0;
  uint64_t value = 0;
  bool ok = true;
  NodeId server = kNoNode;
};

/// Follower -> leader: etcd-style forwarding of client commands.
struct Forward {
  kv::Command cmd;
  NodeId origin = kNoNode;  // the forwarding server
};

/// Leader -> forwarding server: result to relay to the client.
struct ForwardReply {
  kv::Command cmd;  // echoed for reply routing (client/seq) and read values
  uint64_t value = 0;
  bool ok = true;
};

using Message = std::variant<ClientRequest, ClientReply, Forward, ForwardReply>;

inline size_t wire_size(const ClientRequest& m) {
  return consensus::wire::kSmallMsg + m.cmd.wire_bytes();
}
inline size_t wire_size(const ClientReply&) { return consensus::wire::kSmallMsg; }
inline size_t wire_size(const Forward& m) {
  return consensus::wire::kSmallMsg + m.cmd.wire_bytes();
}
inline size_t wire_size(const ForwardReply&) { return consensus::wire::kSmallMsg; }
inline size_t wire_size(const Message& m) {
  return std::visit([](const auto& x) { return wire_size(x); }, m);
}

}  // namespace praft::harness
