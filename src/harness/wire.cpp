#include "harness/wire.h"

#include "net/field_codec.h"

namespace praft::harness {

namespace {

using net::WireReader;
using net::WireWriter;

static_assert(std::variant_size_v<Message> == 4,
              "new harness message: add a codec below and bump this count");

void put(WireWriter& w, const ClientRequest& m) { net::put_cmd(w, m.cmd); }
ClientRequest get_client_request(WireReader& r) {
  ClientRequest m;
  m.cmd = net::get_cmd(r);
  return m;
}

void put(WireWriter& w, const ClientReply& m) {
  w.u64(m.seq);
  w.u64(m.value);
  w.boolean(m.ok);
  w.i32(m.server);
}
ClientReply get_client_reply(WireReader& r) {
  ClientReply m;
  m.seq = r.u64();
  m.value = r.u64();
  m.ok = r.boolean();
  m.server = r.i32();
  return m;
}

void put(WireWriter& w, const Forward& m) {
  net::put_cmd(w, m.cmd);
  w.i32(m.origin);
}
Forward get_forward(WireReader& r) {
  Forward m;
  m.cmd = net::get_cmd(r);
  m.origin = r.i32();
  return m;
}

void put(WireWriter& w, const ForwardReply& m) {
  net::put_cmd(w, m.cmd);
  w.u64(m.value);
  w.boolean(m.ok);
}
ForwardReply get_forward_reply(WireReader& r) {
  ForwardReply m;
  m.cmd = net::get_cmd(r);
  m.value = r.u64();
  m.ok = r.boolean();
  return m;
}

}  // namespace

net::Frame encode(const Message& m, net::BufferPool& pool) {
  const size_t total = wire_size(m);
  net::Frame f = pool.acquire(total);
  WireWriter w(f);
  w.header(net::Family::kHarness, static_cast<uint8_t>(m.index()));
  std::visit([&w](const auto& x) { put(w, x); }, m);
  w.finish();
  PRAFT_CHECK_MSG(f.size() == total, "harness codec/wire_size drift");
  return f;
}

Message decode(net::FrameView f) {
  WireReader r(f);
  const auto h = r.header();
  PRAFT_CHECK(h.family == net::Family::kHarness);
  Message m;
  switch (h.opcode) {
    case 0: m = get_client_request(r); break;
    case 1: m = get_client_reply(r); break;
    case 2: m = get_forward(r); break;
    case 3: m = get_forward_reply(r); break;
    default: PRAFT_CHECK_MSG(false, "bad harness opcode");
  }
  r.finish();
  return m;
}

}  // namespace praft::harness
