#pragma once

#include <functional>
#include <optional>
#include <string>
#include <variant>

#include "mencius/messages.h"
#include "mencius/node.h"
#include "net/packet.h"
#include "paxos/messages.h"
#include "paxos/node.h"
#include "raft/messages.h"
#include "raft/node.h"
#include "raftstar/messages.h"
#include "raftstar/node.h"

namespace praft::harness {

/// Per-protocol CPU-cost accounting: the number of log entries a packet
/// carries when it belongs to the protocol, std::nullopt for foreign
/// packets. This is the one remaining job of the compile-time traits below —
/// everything else (node type, options, server wiring) is resolved at
/// runtime through consensus::ProtocolRegistry and the type-erased
/// LogServer.
using ProtocolCost =
    std::function<std::optional<size_t>(const net::Packet&)>;

/// Compile-time traits: the node type, its message variant, its options, and
/// the per-message entry count (for CPU cost accounting). Consumed by
/// TypedLogServer<P> (adapters needing concrete node access, e.g. PQL) and
/// by protocol_cost().
struct RaftProtocol {
  using Node = raft::RaftNode;
  using Message = raft::Message;
  using Options = raft::Options;
  static constexpr const char* kName = "Raft";
  static size_t entry_count(const Message& m) {
    if (const auto* ae = std::get_if<raft::AppendEntries>(&m)) {
      return ae->entries.size();
    }
    return 0;
  }
};

struct RaftStarProtocol {
  using Node = raftstar::RaftStarNode;
  using Message = raftstar::Message;
  using Options = raftstar::Options;
  static constexpr const char* kName = "Raft*";
  static size_t entry_count(const Message& m) {
    if (const auto* ae = std::get_if<raftstar::AppendEntries>(&m)) {
      return ae->entries.size();
    }
    return 0;
  }
};

struct PaxosProtocol {
  using Node = paxos::PaxosNode;
  using Message = paxos::Message;
  using Options = paxos::Options;
  static constexpr const char* kName = "MultiPaxos";
  static size_t entry_count(const Message& m) {
    if (const auto* ab = std::get_if<paxos::AcceptBatch>(&m)) {
      return ab->cmds.size();
    }
    if (const auto* po = std::get_if<paxos::PrepareOk>(&m)) {
      return po->accepted.size();
    }
    return 0;
  }
};

struct MenciusProtocol {
  using Node = mencius::MenciusNode;
  using Message = mencius::Message;
  using Options = mencius::Options;
  static constexpr const char* kName = "Mencius";
  static size_t entry_count(const Message& m) {
    return mencius::entry_count(m);
  }
};

/// Cost hook derived from a protocol's traits.
template <typename P>
ProtocolCost protocol_cost() {
  return [](const net::Packet& p) -> std::optional<size_t> {
    const auto* m = net::payload_as<typename P::Message>(p);
    if (m == nullptr) return std::nullopt;
    return P::entry_count(*m);
  };
}

/// Cost hook for a registry protocol name ("raft", "raftstar",
/// "multipaxos", "mencius"). Unknown names get an empty hook — the server
/// falls back to base message cost, so protocols registered by future
/// subsystems still run (just without per-entry CPU accounting).
ProtocolCost protocol_cost(const std::string& name);

}  // namespace praft::harness
