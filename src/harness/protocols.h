#pragma once

#include <variant>

#include "paxos/messages.h"
#include "paxos/node.h"
#include "raft/messages.h"
#include "raft/node.h"
#include "raftstar/messages.h"
#include "raftstar/node.h"

namespace praft::harness {

/// Protocol traits consumed by LogServer<P>: the node type, its message
/// variant, options, and how many log entries a message carries (for CPU
/// cost accounting).
struct RaftProtocol {
  using Node = raft::RaftNode;
  using Message = raft::Message;
  using Options = raft::Options;
  static constexpr const char* kName = "Raft";
  static size_t entry_count(const Message& m) {
    if (const auto* ae = std::get_if<raft::AppendEntries>(&m)) {
      return ae->entries.size();
    }
    return 0;
  }
};

struct RaftStarProtocol {
  using Node = raftstar::RaftStarNode;
  using Message = raftstar::Message;
  using Options = raftstar::Options;
  static constexpr const char* kName = "Raft*";
  static size_t entry_count(const Message& m) {
    if (const auto* ae = std::get_if<raftstar::AppendEntries>(&m)) {
      return ae->entries.size();
    }
    return 0;
  }
};

struct PaxosProtocol {
  using Node = paxos::PaxosNode;
  using Message = paxos::Message;
  using Options = paxos::Options;
  static constexpr const char* kName = "MultiPaxos";
  static size_t entry_count(const Message& m) {
    if (const auto* ab = std::get_if<paxos::AcceptBatch>(&m)) {
      return ab->cmds.size();
    }
    if (const auto* po = std::get_if<paxos::PrepareOk>(&m)) {
      return po->accepted.size();
    }
    return 0;
  }
};

}  // namespace praft::harness
