#pragma once

#include "common/types.h"

namespace praft::harness {

/// Per-node CPU service costs. These are the calibration constants behind the
/// CPU-bound throughput figures (DESIGN.md §6): the Raft leader's per-op work
/// is client_request (decode, propose, amortized fsync, reply) and it
/// saturates first; Mencius spreads that cost over all replicas.
struct CostModel {
  bool enabled = true;
  Duration message_base = usec(4);    // fixed cost to receive any message
  Duration client_request = usec(22); // full client-op handling at the serving
                                      // node (leader, or Mencius owner)
  Duration forward_handle = usec(6);  // follower relaying a client op
  Duration entry_follower = usec(14); // per log entry applied from an append
                                      // (fsync amortization, dedup — etcd's
                                      // follower path is not cheap)
  Duration per_4kb = usec(6);         // additional cost per 4 KiB of payload

  [[nodiscard]] Duration size_cost(size_t bytes) const {
    return static_cast<Duration>(
        static_cast<double>(per_4kb) * static_cast<double>(bytes) / 4096.0);
  }

  /// Baseline receive cost for a message of `bytes` encoded wire bytes:
  /// fixed per-message overhead plus the size-proportional part. With the
  /// flat codec, `bytes` is the exact frame length — cost is charged from
  /// what is actually on the wire, not a flat small-message estimate.
  [[nodiscard]] Duration receive_cost(size_t bytes) const {
    return message_base + size_cost(bytes);
  }
};

}  // namespace praft::harness
