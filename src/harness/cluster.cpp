#include "harness/cluster.h"

#include "common/check.h"
#include "harness/log_server.h"

namespace praft::harness {

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(std::move(cfg)), sim_(cfg_.seed), net_(sim_, cfg_.latency) {
  PRAFT_CHECK(cfg_.num_replicas > 0);
  if (cfg_.replica_sites.empty()) {
    for (int i = 0; i < cfg_.num_replicas; ++i) {
      cfg_.replica_sites.push_back(
          static_cast<SiteId>(i % net_.latency().num_sites()));
    }
  }
  PRAFT_CHECK(static_cast<int>(cfg_.replica_sites.size()) == cfg_.num_replicas);
}

void Cluster::build_replicas(const ServerFactory& factory) {
  PRAFT_CHECK_MSG(servers_.empty(), "build_replicas called twice");
  // First pass: create hosts so every replica knows all member ids.
  for (int i = 0; i < cfg_.num_replicas; ++i) {
    const SiteId site = cfg_.replica_sites[static_cast<size_t>(i)];
    double egress = 0.0;
    if (static_cast<size_t>(site) < cfg_.replica_egress.size()) {
      egress = cfg_.replica_egress[static_cast<size_t>(site)];
    }
    replica_hosts_.push_back(
        std::make_unique<NodeHost>(sim_, net_, site, egress));
    group_template_.members.push_back(replica_hosts_.back()->id());
  }
  group_template_.self = kNoNode;
  for (int i = 0; i < cfg_.num_replicas; ++i) {
    consensus::Group g = group_template_;
    g.self = replica_hosts_[static_cast<size_t>(i)]->id();
    servers_.push_back(factory(*replica_hosts_[static_cast<size_t>(i)], g));
    servers_.back()->start();
  }
}

void Cluster::build_replicas(const std::string& protocol,
                             const consensus::TimingOptions& timing) {
  // An unknown name fails inside ProtocolRegistry::make with a message
  // listing the registered protocols (no duplicate pre-check here).
  const CostModel costs = cfg_.costs;
  build_replicas([protocol, timing, costs](NodeHost& host,
                                           const consensus::Group& g) {
    return std::make_unique<LogServer>(host, g, costs, protocol, timing);
  });
}

void Cluster::add_clients(int per_region, const kv::WorkloadConfig& wl,
                          Time start_at) {
  PRAFT_CHECK_MSG(!servers_.empty(), "build replicas before clients");
  kv::WorkloadConfig cfg = wl;
  cfg.num_partitions = cfg_.num_replicas;
  for (int r = 0; r < cfg_.num_replicas; ++r) {
    const SiteId site = cfg_.replica_sites[static_cast<size_t>(r)];
    const NodeId target = servers_[static_cast<size_t>(r)]->id();
    for (int c = 0; c < per_region; ++c) {
      client_hosts_.push_back(std::make_unique<NodeHost>(sim_, net_, site));
      kv::WorkloadGenerator gen(cfg, r, sim_.rng().split());
      ClosedLoopClient::Options copt;
      copt.start_at = start_at;
      clients_.push_back(std::make_unique<ClosedLoopClient>(
          *client_hosts_.back(), target, std::move(gen), metrics_, copt));
      if (reply_probe_) clients_.back()->set_reply_probe(reply_probe_);
      clients_.back()->start();
    }
  }
}

int Cluster::install_apply_probe(ApplyProbe probe) {
  int hooked = 0;
  for (auto& s : servers_) {
    auto* ls = dynamic_cast<LogServer*>(s.get());
    if (ls == nullptr) continue;
    ls->set_apply_probe(probe);  // LogServer passes its own id as arg 0
    ++hooked;
  }
  return hooked;
}

int Cluster::install_watermark_probe(WatermarkProbe probe) {
  int hooked = 0;
  for (auto& s : servers_) {
    auto* ls = dynamic_cast<LogServer*>(s.get());
    if (ls == nullptr) continue;
    const NodeId id = ls->id();
    ls->node_iface().set_watermark_probe(
        [probe, id](consensus::LogIndex commit, consensus::LogIndex applied) {
          probe(id, commit, applied);
        });
    ++hooked;
  }
  return hooked;
}

int Cluster::install_snapshot_probe(SnapshotProbe probe) {
  int hooked = 0;
  for (auto& s : servers_) {
    auto* ls = dynamic_cast<LogServer*>(s.get());
    if (ls == nullptr) continue;
    ls->set_snapshot_probe(probe);  // LogServer passes its own id as arg 0
    ++hooked;
  }
  return hooked;
}

void Cluster::install_reply_probe(ClosedLoopClient::ReplyProbe probe) {
  reply_probe_ = std::move(probe);
  for (auto& c : clients_) c->set_reply_probe(reply_probe_);
}

int Cluster::establish_leader(int preferred, Duration deadline) {
  PRAFT_CHECK(preferred >= 0 && preferred < num_replicas());
  // Give the preferred replica a head start on everyone's election timers.
  sim_.after(msec(1), [this, preferred] {
    servers_[static_cast<size_t>(preferred)]->trigger_election();
  });
  const Time limit = sim_.now() + deadline;
  while (sim_.now() < limit) {
    sim_.run_for(msec(50));
    const int leader = leader_replica();
    if (leader >= 0) return leader;
  }
  return -1;
}

int Cluster::leader_replica() const {
  for (size_t i = 0; i < servers_.size(); ++i) {
    const NodeId id = servers_[i]->id();
    // A crashed replica may still believe it leads; it does not count.
    if (!net_.node_up(id) || net_.faults().is_down(id, sim_.now())) continue;
    if (servers_[i]->is_leader()) return static_cast<int>(i);
  }
  return -1;
}

uint64_t Cluster::client_retries() const {
  uint64_t total = 0;
  for (const auto& c : clients_) total += c->retries();
  return total;
}

}  // namespace praft::harness
