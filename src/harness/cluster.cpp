#include "harness/cluster.h"

#include "common/check.h"
#include "harness/log_server.h"

namespace praft::harness {

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(std::move(cfg)), sim_(cfg_.seed), net_(sim_, cfg_.latency) {
  PRAFT_CHECK(cfg_.num_replicas > 0);
  if (cfg_.replica_sites.empty()) {
    for (int i = 0; i < cfg_.num_replicas; ++i) {
      cfg_.replica_sites.push_back(
          static_cast<SiteId>(i % net_.latency().num_sites()));
    }
  }
  PRAFT_CHECK(static_cast<int>(cfg_.replica_sites.size()) == cfg_.num_replicas);
}

void Cluster::build_hosts() {
  for (int i = 0; i < cfg_.num_replicas; ++i) {
    const SiteId site = cfg_.replica_sites[static_cast<size_t>(i)];
    double egress = 0.0;
    if (static_cast<size_t>(site) < cfg_.replica_egress.size()) {
      egress = cfg_.replica_egress[static_cast<size_t>(site)];
    }
    replica_hosts_.push_back(
        std::make_unique<NodeHost>(sim_, net_, site, egress));
    group_template_.members.push_back(replica_hosts_.back()->id());
  }
  group_template_.self = kNoNode;
}

void Cluster::build_replicas(const ServerFactory& factory) {
  PRAFT_CHECK_MSG(servers_.empty(), "build_replicas called twice");
  // First pass: create hosts so every replica knows all member ids.
  build_hosts();
  for (int i = 0; i < cfg_.num_replicas; ++i) {
    consensus::Group g = group_template_;
    g.self = replica_hosts_[static_cast<size_t>(i)]->id();
    servers_.push_back(factory(*replica_hosts_[static_cast<size_t>(i)], g));
    servers_.back()->start();
  }
}

std::unique_ptr<ReplicaServer> Cluster::make_named_server(int i) {
  consensus::Group g = group_template_;
  g.self = replica_hosts_[static_cast<size_t>(i)]->id();
  return std::make_unique<LogServer>(*replica_hosts_[static_cast<size_t>(i)],
                                     std::move(g), cfg_.costs, protocol_,
                                     timing_,
                                     stores_[static_cast<size_t>(i)].get());
}

void Cluster::build_replicas(const std::string& protocol,
                             const consensus::TimingOptions& timing) {
  // An unknown name fails inside ProtocolRegistry::make with a message
  // listing the registered protocols (no duplicate pre-check here).
  PRAFT_CHECK_MSG(servers_.empty(), "build_replicas called twice");
  protocol_ = protocol;
  timing_ = timing;
  build_hosts();
  for (int i = 0; i < cfg_.num_replicas; ++i) {
    stores_.push_back(std::make_unique<storage::DurableStore>());
  }
  for (int i = 0; i < cfg_.num_replicas; ++i) {
    servers_.push_back(make_named_server(i));
    servers_.back()->start();
  }
}

void Cluster::crash_replica(int i) {
  PRAFT_CHECK(i >= 0 && i < num_replicas());
  PRAFT_CHECK_MSG(!protocol_.empty(),
                  "crash/restart requires name-built replicas (durable store)");
  auto& server = servers_[static_cast<size_t>(i)];
  if (server == nullptr) return;  // already down
  if (auto* ls = dynamic_cast<LogServer*>(server.get())) {
    // The incarnation's coverage counters die with it; bank them first.
    retired_revocations_ += ls->node_iface().revocations_started();
    retired_pipeline_rollbacks_ += ls->node_iface().pipeline_rollbacks();
  }
  NodeHost& host = *replica_hosts_[static_cast<size_t>(i)];
  // Order matters: first make every pending timer/fsync callback a no-op and
  // unbind in-flight deliveries, THEN free the node they capture.
  host.invalidate_scheduled();
  host.detach();
  server.reset();
  // A power cut loses every staged write no completed fsync covered.
  stores_[static_cast<size_t>(i)]->drop_unsynced();
}

void Cluster::install_probes_on(int i) {
  auto* ls = dynamic_cast<LogServer*>(servers_[static_cast<size_t>(i)].get());
  if (ls == nullptr) return;
  if (apply_probe_) ls->set_apply_probe(apply_probe_);
  if (snapshot_probe_) ls->set_snapshot_probe(snapshot_probe_);
  const NodeId id = ls->id();
  if (watermark_probe_) {
    ls->node_iface().set_watermark_probe(
        [probe = watermark_probe_, id](consensus::LogIndex commit,
                                       consensus::LogIndex applied) {
          probe(id, commit, applied);
        });
  }
  if (hard_state_probe_) {
    ls->node_iface().set_hard_state_probe(
        [probe = hard_state_probe_, id](const consensus::HardState& hs) {
          probe(id, hs);
        });
  }
}

void Cluster::restart_replica(int i) {
  PRAFT_CHECK(i >= 0 && i < num_replicas());
  if (replica_up(i)) crash_replica(i);
  servers_[static_cast<size_t>(i)] = make_named_server(i);
  install_probes_on(i);
  servers_[static_cast<size_t>(i)]->start();
  ++restarts_;
  if (restart_probe_) {
    auto* ls =
        dynamic_cast<LogServer*>(servers_[static_cast<size_t>(i)].get());
    PRAFT_CHECK(ls != nullptr);
    restart_probe_(ls->id(), ls->node_iface().hard_state(), ls->recovery(),
                   ls->node_iface().applied_index());
  }
}

void Cluster::add_clients(int per_region, const kv::WorkloadConfig& wl,
                          Time start_at) {
  PRAFT_CHECK_MSG(!servers_.empty(), "build replicas before clients");
  kv::WorkloadConfig cfg = wl;
  cfg.num_partitions = cfg_.num_replicas;
  for (int r = 0; r < cfg_.num_replicas; ++r) {
    const SiteId site = cfg_.replica_sites[static_cast<size_t>(r)];
    const NodeId target = replica_id(r);
    for (int c = 0; c < per_region; ++c) {
      client_hosts_.push_back(std::make_unique<NodeHost>(sim_, net_, site));
      kv::WorkloadGenerator gen(cfg, r, sim_.rng().split());
      ClosedLoopClient::Options copt;
      copt.start_at = start_at;
      clients_.push_back(std::make_unique<ClosedLoopClient>(
          *client_hosts_.back(), target, std::move(gen), metrics_, copt));
      if (reply_probe_) clients_.back()->set_reply_probe(reply_probe_);
      clients_.back()->start();
    }
  }
}

int Cluster::reinstall_probes() {
  int hooked = 0;
  for (int i = 0; i < num_replicas(); ++i) {
    if (!replica_up(i)) continue;
    if (dynamic_cast<LogServer*>(servers_[static_cast<size_t>(i)].get()) ==
        nullptr) {
      continue;
    }
    install_probes_on(i);
    ++hooked;
  }
  return hooked;
}

int Cluster::install_apply_probe(ApplyProbe probe) {
  apply_probe_ = std::move(probe);
  return reinstall_probes();
}

int Cluster::install_watermark_probe(WatermarkProbe probe) {
  watermark_probe_ = std::move(probe);
  return reinstall_probes();
}

int Cluster::install_snapshot_probe(SnapshotProbe probe) {
  snapshot_probe_ = std::move(probe);
  return reinstall_probes();
}

int Cluster::install_hard_state_probe(HardStateProbe probe) {
  hard_state_probe_ = std::move(probe);
  return reinstall_probes();
}

void Cluster::install_reply_probe(ClosedLoopClient::ReplyProbe probe) {
  reply_probe_ = std::move(probe);
  for (auto& c : clients_) c->set_reply_probe(reply_probe_);
}

int Cluster::establish_leader(int preferred, Duration deadline) {
  PRAFT_CHECK(preferred >= 0 && preferred < num_replicas());
  // Give the preferred replica a head start on everyone's election timers.
  sim_.after(msec(1), [this, preferred] {
    if (replica_up(preferred)) {
      servers_[static_cast<size_t>(preferred)]->trigger_election();
    }
  });
  const Time limit = sim_.now() + deadline;
  while (sim_.now() < limit) {
    sim_.run_for(msec(50));
    const int leader = leader_replica();
    if (leader >= 0) return leader;
  }
  return -1;
}

int Cluster::leader_replica() const {
  for (size_t i = 0; i < servers_.size(); ++i) {
    if (servers_[i] == nullptr) continue;  // crashed (awaiting restart)
    const NodeId id = servers_[i]->id();
    // A crashed replica may still believe it leads; it does not count.
    if (!net_.node_up(id) || net_.faults().is_down(id, sim_.now())) continue;
    if (servers_[i]->is_leader()) return static_cast<int>(i);
  }
  return -1;
}

uint64_t Cluster::client_retries() const {
  uint64_t total = 0;
  for (const auto& c : clients_) total += c->retries();
  return total;
}

}  // namespace praft::harness
