#include "harness/client.h"

namespace praft::harness {

ClosedLoopClient::ClosedLoopClient(NodeHost& host, NodeId server,
                                   kv::WorkloadGenerator gen, Metrics& metrics,
                                   Options opt)
    : host_(host), server_(server), gen_(std::move(gen)), metrics_(metrics),
      opt_(opt) {
  host_.attach(this);
}

void ClosedLoopClient::start() {
  const Duration delay = opt_.start_at > host_.now()
                             ? opt_.start_at - host_.now()
                             : 0;
  // Small per-client jitter avoids a synchronized thundering herd at t=0.
  host_.schedule(delay + static_cast<Duration>(host_.random() % 1000),
                 [this] { issue_next(); });
}

void ClosedLoopClient::issue_next() {
  if (stopped_) return;
  current_ = gen_.next(host_.id(), next_seq_++);
  in_flight_ = true;
  transmit();
}

void ClosedLoopClient::transmit() {
  sent_at_ = host_.now();
  ClientRequest req{current_};
  host_.send(server_, Message{req}, wire_size(req));
  arm_retry(current_.seq);
}

void ClosedLoopClient::arm_retry(uint64_t seq) {
  host_.schedule(opt_.retry_timeout, [this, seq] {
    if (!stopped_ && in_flight_ && current_.seq == seq) {
      ++retries_;
      transmit();
    }
  });
}

void ClosedLoopClient::handle(const net::Packet& p) {
  const auto* msg = net::payload_as<Message>(p);
  if (msg == nullptr) return;
  const auto* reply = std::get_if<ClientReply>(msg);
  if (reply == nullptr || !in_flight_ || reply->seq != current_.seq) return;
  in_flight_ = false;
  ++completed_;
  metrics_.record(host_.now(), host_.site(), current_.is_read(),
                  host_.now() - sent_at_);
  if (reply_probe_) {
    reply_probe_(current_, reply->value, reply->ok, sent_at_, host_.now());
  }
  issue_next();
}

}  // namespace praft::harness
