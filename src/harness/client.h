#pragma once

#include "harness/host.h"
#include "harness/messages.h"
#include "harness/metrics.h"
#include "kv/workload.h"

namespace praft::harness {

/// Closed-loop client options (separate type so defaults are complete at the
/// point of use as a default argument).
struct ClientOptions {
  Time start_at = 0;
  Duration retry_timeout = sec(5);
};

/// Closed-loop client (§5 Workload): issues one request, waits for the reply,
/// records latency, immediately issues the next. A retry timer guards against
/// requests lost to leader changes or injected faults.
class ClosedLoopClient final : public PacketHandler {
 public:
  using Options = ClientOptions;

  ClosedLoopClient(NodeHost& host, NodeId server, kv::WorkloadGenerator gen,
                   Metrics& metrics, Options opt = {});

  void start();
  /// Stops issuing new requests (in-flight request is abandoned).
  void stop() { stopped_ = true; }
  void handle(const net::Packet& p) override;

  /// Trace hook: observes every accepted reply (the client-visible history —
  /// linearizability checkers record (invocation, response) pairs here).
  using ReplyProbe = std::function<void(const kv::Command& cmd, uint64_t value,
                                        bool ok, Time sent_at, Time recv_at)>;
  void set_reply_probe(ReplyProbe probe) { reply_probe_ = std::move(probe); }

  [[nodiscard]] uint64_t completed() const { return completed_; }
  [[nodiscard]] uint64_t retries() const { return retries_; }

 private:
  void issue_next();
  void transmit();
  void arm_retry(uint64_t seq);

  NodeHost& host_;
  NodeId server_;
  kv::WorkloadGenerator gen_;
  Metrics& metrics_;
  Options opt_;

  kv::Command current_;
  Time sent_at_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t completed_ = 0;
  uint64_t retries_ = 0;
  bool in_flight_ = false;
  bool stopped_ = false;
  ReplyProbe reply_probe_;
};

}  // namespace praft::harness
