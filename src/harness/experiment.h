#pragma once

#include <string>
#include <vector>

#include "harness/cluster.h"

namespace praft::harness {

/// Which replicated system a run measures (the legends of Figs. 9 and 10).
enum class SystemKind {
  kRaft,
  kRaftStar,
  kPaxos,
  kRaftStarPql,
  kRaftStarLL,
  kRaftStarMencius,
};

const char* system_name(SystemKind k);

/// One experiment point: a system, a workload, a client count, a duration.
struct ExperimentConfig {
  SystemKind system = SystemKind::kRaft;
  /// When non-empty, overrides `system`: the replicas run this consensus
  /// registry protocol ("raft", "raftstar", "multipaxos", "mencius", ...)
  /// behind the generic LogServer adapter, selected at runtime.
  std::string protocol;
  /// Protocol timing knobs (election/heartbeat cadence, batching, pipeline
  /// window). Only honoured on the registry path (`protocol` non-empty).
  consensus::TimingOptions timing;
  /// When >= 0, replaces the aws5 geo matrix with a uniform all-pairs RTT
  /// (sim::LatencyMatrix flat constructor) — the pipelining bench sweeps
  /// this from LAN to intercontinental.
  Duration flat_rtt = -1;
  kv::WorkloadConfig workload;
  int clients_per_region = 50;
  int leader_replica = 0;  // leader site (ignored by Mencius)
  Duration run = sec(10);
  Duration warmup = sec(2);
  Duration cooldown = sec(1);
  uint64_t seed = 1;
  bool model_cpu = true;
  bool model_bandwidth = false;  // Fig. 10b/d turn this on
  /// Ablation A1: drop the leader's own grants from PQL's holder set.
  bool pql_include_leader_grants = true;
  /// Ablation A2: Mencius hand-port that misses the AppendEntries/propose
  /// side of the Phase2b delta (owners do not self-mark skips early).
  bool mencius_full_port = true;
};

/// Latency summary for one site class, microseconds.
struct LatencySummary {
  int64_t count = 0;
  int64_t p50 = 0;
  int64_t p90 = 0;
  int64_t p99 = 0;
};

LatencySummary summarize(const Histogram& h);

struct ExperimentResult {
  double throughput_ops = 0;
  LatencySummary leader_reads, leader_writes;
  LatencySummary follower_reads, follower_writes;
  int leader_replica = -1;
  uint64_t client_retries = 0;
};

/// Builds the §5 testbed (5 regions, one replica + clients per region),
/// runs it, and returns the measured figures.
ExperimentResult run_experiment(const ExperimentConfig& cfg);

}  // namespace praft::harness
