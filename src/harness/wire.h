#pragma once

#include "harness/messages.h"
#include "net/wire.h"

namespace praft::harness {

/// Flat-frame codec for the harness client/forwarding message family
/// (net/wire.h layout, Family::kHarness, opcode = variant alternative
/// index). encode() produces exactly wire_size(m) bytes and decode()
/// inverts it.
net::Frame encode(const Message& m, net::BufferPool& pool);
Message decode(net::FrameView f);

}  // namespace praft::harness
