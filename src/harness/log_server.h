#pragma once

#include <memory>
#include <string>
#include <utility>

#include "common/check.h"
#include "consensus/node_iface.h"
#include "consensus/registry.h"
#include "harness/protocols.h"
#include "harness/server.h"

namespace praft::harness {

/// Replica adapter for log-replicating protocols: client requests (reads AND
/// writes — the paper's baselines persist reads in the log, §4.4 "Paxos
/// Quorum Lease") are submitted at the leader; follower replicas forward to
/// the leader etcd-style and relay the reply.
///
/// The protocol node behind the adapter is runtime-polymorphic
/// (consensus::NodeIface): construct with a registry name to pick the
/// protocol at runtime, or hand in a concretely-built node (see
/// TypedLogServer below) when the adapter needs protocol-specific hooks.
class LogServer : public ReplicaServer {
 public:
  /// Selects the protocol by registry name ("raft", "raftstar",
  /// "multipaxos", "mencius", or anything registered later). `store`
  /// (nullable) is the replica's stable storage; when it already holds
  /// durable state the node is rebuilt from it (crash-restart recovery)
  /// before start().
  LogServer(NodeHost& host, consensus::Group group, CostModel costs,
            const std::string& protocol,
            const consensus::TimingOptions& timing = {},
            storage::DurableStore* store = nullptr)
      : LogServer(host, costs,
                  consensus::make_node(protocol, std::move(group), host,
                                       timing, store),
                  protocol_cost(protocol), store) {}

  /// Wraps an already-constructed node (typed adapters, tests).
  LogServer(NodeHost& host, CostModel costs,
            std::unique_ptr<consensus::NodeIface> node, ProtocolCost cost,
            storage::DurableStore* store = nullptr)
      : ReplicaServer(host, costs), node_(std::move(node)),
        cost_(std::move(cost)) {
    PRAFT_CHECK_MSG(node_ != nullptr, "LogServer needs a protocol node");
    node_->set_apply([this](consensus::LogIndex i, const kv::Command& c) {
      on_apply(i, c);
    });
    // Snapshot plumbing: the adapter owns the state machine, so it supplies
    // the capture/restore halves of the ported Checkpoint action. Without
    // these hooks the node can neither compact nor install snapshots.
    node_->set_state_hooks(
        [this] { return store_.image(); },
        [this](const kv::StoreImage& img, consensus::LogIndex last_index) {
          store_.restore(img);
          // Replies pending at snapshot-covered indexes can never be served
          // from an apply anymore; drop them (clients retry end-to-end).
          for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->first <= last_index) {
              it = pending_.erase(it);
            } else {
              ++it;
            }
          }
          if (snapshot_probe_) {
            snapshot_probe_(id(), last_index, store_.fingerprint());
          }
        });
    // Crash-restart recovery: a store that already holds durable state means
    // this server replaces a crashed incarnation — rebuild the node from it
    // (state hooks above are live, so the snapshot restores and the WAL
    // suffix re-applies into the fresh kv store).
    if (store != nullptr && store->has_state()) {
      recovery_ = node_->recover(store->image());
    }
  }

  void start() override { node_->start(); }
  [[nodiscard]] bool is_leader() const override { return node_->is_leader(); }
  [[nodiscard]] NodeId leader_hint() const override {
    return node_->leader_hint();
  }
  [[nodiscard]] bool leaderless() const override {
    return node_->leaderless();
  }
  void trigger_election() override { node_->force_election(); }
  [[nodiscard]] consensus::LogIndex commit_index() const override {
    return node_->commit_index();
  }

  consensus::NodeIface& node_iface() { return *node_; }
  [[nodiscard]] const consensus::NodeIface& node_iface() const {
    return *node_;
  }

  /// What recovery did when this server was rebuilt from a durable store
  /// (recovered == false for a fresh start).
  [[nodiscard]] const storage::RecoveryStats& recovery() const {
    return recovery_;
  }

  /// Test probe: observes every (index, command) this replica applies.
  using ApplyProbe =
      std::function<void(NodeId, consensus::LogIndex, const kv::Command&)>;
  void set_apply_probe(ApplyProbe probe) { apply_probe_ = std::move(probe); }

  /// Test probe: observes every snapshot install on this replica — the
  /// covered last index plus the store fingerprint right after the restore
  /// (chaos invariants verify it equals replaying the agreed prefix).
  using SnapshotProbe =
      std::function<void(NodeId, consensus::LogIndex, uint64_t store_fp)>;
  void set_snapshot_probe(SnapshotProbe probe) {
    snapshot_probe_ = std::move(probe);
  }

  void handle(const net::Packet& p) override {
    if (const auto* hm = net::payload_as<Message>(p)) {
      on_harness_message(*hm);
      return;
    }
    if (handle_other(p)) return;
    // With a protocol classifier, silently drop foreign packet families
    // (a lease message reaching a plain replica, etc.) instead of letting
    // the node CHECK-fail on them. Without one (a registry protocol with no
    // cost traits), hand everything through.
    if (cost_ && !cost_(p)) return;
    node_->on_packet(p);
  }

  [[nodiscard]] Duration cost_of(const net::Packet& p) const override {
    if (!costs_.enabled) return 0;
    // Every branch charges from p.bytes — the exact encoded frame size —
    // so a 4 KB-value request costs more to receive than an 8 B one, and
    // replies (which echo commands on the forward path) are billed for what
    // they actually carry.
    if (const auto* hm = net::payload_as<Message>(p)) {
      if (std::holds_alternative<ClientRequest>(*hm)) {
        return (is_leader() ? costs_.client_request : costs_.forward_handle) +
               costs_.size_cost(p.bytes);
      }
      if (std::holds_alternative<Forward>(*hm)) {
        return costs_.client_request + costs_.size_cost(p.bytes);
      }
      return costs_.receive_cost(p.bytes);
    }
    if (cost_) {
      if (const auto entries = cost_(p)) {
        return costs_.message_base +
               static_cast<Duration>(*entries) * costs_.entry_follower +
               costs_.size_cost(p.bytes);
      }
    }
    return costs_.receive_cost(p.bytes);
  }

 protected:
  /// Subclasses (PQL, LL) intercept extra message families here. Return true
  /// when the packet was consumed; anything else goes to the protocol node.
  virtual bool handle_other(const net::Packet& p) {
    (void)p;
    return false;
  }

  /// Subclasses may divert reads (lease-based local reads). Return true when
  /// the request was fully handled.
  virtual bool try_serve_read(const kv::Command& cmd, NodeId reply_to,
                              bool via_forward, NodeId origin) {
    (void)cmd;
    (void)reply_to;
    (void)via_forward;
    (void)origin;
    return false;
  }

  void on_harness_message(const Message& hm) {
    if (const auto* req = std::get_if<ClientRequest>(&hm)) {
      submit_or_forward(req->cmd, /*origin=*/kNoNode);
    } else if (const auto* fwd = std::get_if<Forward>(&hm)) {
      submit_or_forward(fwd->cmd, fwd->origin);
    } else if (const auto* fr = std::get_if<ForwardReply>(&hm)) {
      reply_to_client(fr->cmd.client, fr->cmd.seq, fr->value, fr->ok);
    }
    // ClientReply is never addressed to a server.
  }

  void submit_or_forward(const kv::Command& cmd, NodeId origin) {
    if (cmd.is_read() &&
        try_serve_read(cmd, cmd.client, origin != kNoNode, origin)) {
      return;
    }
    if (node_->is_leader()) {
      const consensus::LogIndex idx = node_->submit(cmd);
      if (idx >= 0) {
        pending_[idx] = PendingOp{cmd.client, origin, cmd.seq, cmd};
        return;
      }
    }
    const NodeId leader = node_->leader_hint();
    if (origin == kNoNode) {
      if (leader != kNoNode && leader != id()) {
        Forward f{cmd, id()};
        host_.send(leader, Message{f}, wire_size(f));
      } else {
        // No known leader yet (startup or failover window): re-attempt
        // shortly instead of forcing the client into its long retry.
        host_.schedule(msec(100),
                       [this, cmd] { submit_or_forward(cmd, kNoNode); });
      }
    }
    // Forwarded requests that miss the leader are dropped; the origin
    // server's client retries end-to-end.
  }

  void on_apply(consensus::LogIndex idx, const kv::Command& cmd) {
    const kv::ApplyResult res = store_.apply(cmd);
    if (apply_probe_) apply_probe_(id(), idx, cmd);
    on_applied_hook(idx, cmd);
    auto it = pending_.find(idx);
    if (it == pending_.end()) return;
    const PendingOp op = it->second;
    pending_.erase(it);
    // A leader change may have replaced the entry at this index: reply only
    // when the committed command is the one we proposed.
    if (!(op.cmd == cmd)) return;
    if (op.origin != kNoNode && op.origin != id()) {
      ForwardReply fr{cmd, res.value, true};
      host_.send(op.origin, Message{fr}, wire_size(fr));
    } else {
      reply_to_client(op.client, op.seq, res.value, true);
    }
  }

  /// Subclass hook invoked after each apply (PQL wakes pending local reads).
  virtual void on_applied_hook(consensus::LogIndex idx,
                               const kv::Command& cmd) {
    (void)idx;
    (void)cmd;
  }

  std::unique_ptr<consensus::NodeIface> node_;
  ProtocolCost cost_;
  PendingMap pending_;
  ApplyProbe apply_probe_;
  SnapshotProbe snapshot_probe_;
  storage::RecoveryStats recovery_;
};

/// Typed wrapper for adapters (and tests) that need the concrete node type —
/// PQL installs Raft*-specific observers, Mencius tests read skip counters.
/// Everything else about the server is the runtime LogServer.
template <typename P>
class TypedLogServer : public LogServer {
 public:
  TypedLogServer(NodeHost& host, consensus::Group group, CostModel costs,
                 typename P::Options opt = {})
      : LogServer(host, costs,
                  std::make_unique<typename P::Node>(std::move(group), host,
                                                     opt),
                  protocol_cost<P>()) {}

  typename P::Node& node() {
    return static_cast<typename P::Node&>(*node_);
  }
  [[nodiscard]] const typename P::Node& node() const {
    return static_cast<const typename P::Node&>(*node_);
  }
};

using RaftServer = TypedLogServer<RaftProtocol>;
using RaftStarServer = TypedLogServer<RaftStarProtocol>;
using PaxosServer = TypedLogServer<PaxosProtocol>;

}  // namespace praft::harness
