#pragma once

#include <functional>

#include "common/rng.h"
#include "consensus/env.h"
#include "net/packet.h"
#include "sim/network.h"
#include "sim/resources.h"
#include "sim/simulator.h"

namespace praft::harness {

/// Receives packets (after CPU-cost accounting) from a NodeHost.
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void handle(const net::Packet& p) = 0;
  /// CPU service time to process this packet (0 = free).
  [[nodiscard]] virtual Duration cost_of(const net::Packet& p) const {
    (void)p;
    return 0;
  }
};

/// Binds one simulated machine: a network endpoint, a serial CPU and the
/// sans-io Env a protocol node talks to. Delivery order: network -> CPU
/// queue (service time from the handler's cost model) -> handle().
///
/// A host normally owns its CPU (one endpoint == one machine). When
/// `shared_cpu` is supplied, service time is billed against that external
/// resource instead — several endpoints then contend for one serial CPU,
/// which is how the shard layer models multiple consensus-group replicas
/// co-located on one physical machine.
class NodeHost final : public consensus::Env {
 public:
  NodeHost(sim::Simulator& sim, sim::Network& net, SiteId site,
           double egress_bytes_per_us = 0.0,
           sim::SerialResource* shared_cpu = nullptr);

  void attach(PacketHandler* handler) { handler_ = handler; }
  /// Unbinds the handler (packets in flight are dropped, like a crash).
  void detach() { handler_ = nullptr; }

  /// Crash support: invalidates every callback scheduled through this Env so
  /// far — they become no-ops when the simulator fires them. Called by
  /// Cluster::crash_replica before destroying the node object, so timer and
  /// fsync-completion closures can never touch freed protocol state.
  void invalidate_scheduled() { ++sched_epoch_; }

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] SiteId site() const { return site_; }
  [[nodiscard]] Duration cpu_busy() const { return cpu_res_->busy_time(); }

  // consensus::Env
  [[nodiscard]] Time now() const override { return sim_.now(); }
  void send(NodeId to, std::any payload, size_t bytes) override {
    net_.send(id_, to, std::move(payload), bytes);
  }
  void schedule(Duration delay, std::function<void()> fn) override {
    sim_.after(delay, [this, epoch = sched_epoch_, fn = std::move(fn)] {
      if (epoch == sched_epoch_) fn();
    });
  }
  uint64_t random() override { return rng_.next(); }

 private:
  void deliver(net::Packet&& p);

  sim::Simulator& sim_;
  sim::Network& net_;
  SiteId site_;
  NodeId id_;
  Rng rng_;
  sim::SerialResource cpu_;            // owned CPU (the default)
  sim::SerialResource* cpu_res_;       // &cpu_, or the shared machine CPU
  PacketHandler* handler_ = nullptr;
  uint64_t sched_epoch_ = 0;
};

}  // namespace praft::harness
