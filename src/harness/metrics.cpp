#include "harness/metrics.h"

namespace praft::harness {

void Metrics::record(Time now, SiteId site, bool is_read, Duration latency) {
  if (!in_window(now)) return;
  ++completed_;
  auto& h = by_site_[site];
  (is_read ? h.reads : h.writes).record(latency);
}

double Metrics::throughput_ops() const {
  const Time span = window_end_ - window_start_;
  if (span <= 0) return 0.0;
  return static_cast<double>(completed_) * 1e6 / static_cast<double>(span);
}

const Histogram& Metrics::reads(SiteId site) const {
  auto it = by_site_.find(site);
  return it == by_site_.end() ? empty_ : it->second.reads;
}

const Histogram& Metrics::writes(SiteId site) const {
  auto it = by_site_.find(site);
  return it == by_site_.end() ? empty_ : it->second.writes;
}

Histogram Metrics::merged_reads(const std::vector<SiteId>& sites) const {
  Histogram out;
  for (SiteId s : sites) out.merge(reads(s));
  return out;
}

Histogram Metrics::merged_writes(const std::vector<SiteId>& sites) const {
  Histogram out;
  for (SiteId s : sites) out.merge(writes(s));
  return out;
}

}  // namespace praft::harness
