#pragma once

#include <map>
#include <vector>

#include "consensus/applier.h"
#include "consensus/batcher.h"
#include "consensus/durable_log.h"
#include "consensus/env.h"
#include "consensus/group.h"
#include "consensus/log.h"
#include "consensus/node_iface.h"
#include "consensus/pipeline.h"
#include "consensus/timer.h"
#include "consensus/timing.h"
#include "consensus/types.h"
#include "net/packet.h"
#include "raft/messages.h"
#include "storage/persister.h"

namespace praft::raft {

/// Tunables. All of Raft's timing knobs are the shared consensus ones; the
/// struct exists so call sites keep a protocol-scoped name.
struct Options : consensus::TimingOptions {};

enum class Role { kFollower, kCandidate, kLeader };

/// Standard Raft (Ongaro & Ousterhout 2014) as the paper's baseline:
/// randomized elections, AppendEntries with conflict-suffix erasure, in-order
/// commit, and the §5.4.2 restriction (only current-term entries commit by
/// counting). This is the protocol Raft* deviates from (see src/raftstar).
///
/// Log storage, the election timer, leader heartbeats, submission batching
/// and the apply watermark all come from the shared consensus runtime; this
/// file holds only Raft's genuine protocol delta.
class RaftNode : public consensus::NodeIface {
 public:
  /// `store` (nullable) is this node's stable storage: currentTerm/votedFor
  /// and the log persist through it, and every message that depends on them
  /// waits for its fsync barrier (storage::Persister).
  RaftNode(consensus::Group group, consensus::Env& env, Options opt = {},
           storage::DurableStore* store = nullptr);

  /// Arms the election timer. Call once after construction.
  void start() override;

  /// Feeds a network packet whose payload holds a raft::Message.
  void on_packet(const net::Packet& p) override;

  /// Leader-only: appends `cmd` to the log and schedules replication.
  /// Returns the assigned index, or -1 when this node is not the leader.
  LogIndex submit(const kv::Command& cmd) override;

  /// Registers the in-order apply callback (exactly once per index).
  void set_apply(consensus::ApplyFn fn) override {
    applier_.set_apply(std::move(fn));
  }

  void set_watermark_probe(consensus::WatermarkProbe probe) override {
    applier_.set_probe(std::move(probe));
  }

  void set_state_hooks(consensus::StateCapture capture,
                       consensus::StateRestore restore) override {
    applier_.set_state_hooks(std::move(capture), std::move(restore));
  }

  /// Forces a checkpoint + log compaction at the applied watermark now.
  void compact() override { maybe_compact(/*force=*/true); }
  [[nodiscard]] LogIndex compaction_floor() const override {
    return log_.base_index();
  }
  [[nodiscard]] size_t compactable_entries() const override {
    return static_cast<size_t>(applier_.applied() - log_.base_index());
  }
  [[nodiscard]] size_t resident_log_entries() const override {
    return log_.resident_entries();
  }
  [[nodiscard]] int64_t snapshots_installed() const override {
    return snapshots_installed_;
  }
  [[nodiscard]] LogIndex applied_index() const override {
    return applier_.applied();
  }
  [[nodiscard]] int64_t pipeline_rollbacks() const override {
    return pipe_.rollbacks();
  }

  /// Raft's hard state: currentTerm + votedFor (§5 "Persistent state").
  [[nodiscard]] consensus::HardState hard_state() const override {
    return consensus::HardState{term_, voted_for_, -1, 0, -1};
  }
  void persist_hard_state() override { persister_.hard_state(); }
  void set_hard_state_probe(consensus::HardStateProbe probe) override {
    persister_.set_probe(std::move(probe));
  }
  storage::RecoveryStats recover(const storage::DurableImage& img) override;

  [[nodiscard]] Role role() const { return role_; }
  [[nodiscard]] bool is_leader() const override {
    return role_ == Role::kLeader;
  }
  [[nodiscard]] Term current_term() const { return term_; }
  [[nodiscard]] NodeId leader_hint() const override { return leader_; }
  [[nodiscard]] LogIndex commit_index() const override {
    return applier_.commit_index();
  }
  [[nodiscard]] LogIndex last_index() const { return log_.last_index(); }
  /// Bounds-checked access (PRAFT_CHECK on out-of-range indexes).
  [[nodiscard]] const Entry& entry_at(LogIndex i) const { return log_.at(i); }
  [[nodiscard]] NodeId id() const override { return group_.self; }

  /// Test hook: forces an immediate election attempt.
  void force_election() override { start_election(); }

 private:
  void on_request_vote(const RequestVote& m);
  void on_vote_reply(const VoteReply& m);
  void on_append_entries(const AppendEntries& m);
  void on_append_reply(const AppendReply& m);
  void on_install_snapshot(const InstallSnapshot& m);
  void on_install_reply(const InstallSnapshotReply& m);

  void start_election();
  void become_leader();
  void step_down(Term t);
  void replicate_to(NodeId peer);
  void probe_retransmits();
  void send_snapshot(NodeId peer);
  void broadcast_append();
  void advance_commit();
  void commit_to(LogIndex target);
  void maybe_compact(bool force);
  [[nodiscard]] Term term_at(LogIndex i) const;
  /// Arms a durability barrier for everything appended so far: when it
  /// clears, the leader re-counts commit quorums (a leader may count ITSELF
  /// only for durably-logged entries — see consensus::DurableLogMirror).
  void note_appended();

  consensus::Group group_;
  consensus::Env& env_;
  Options opt_;

  // Persistent state: staged into the durable store on every change and
  // replayed from it by recover() after a crash (src/storage). A diskless
  // node (no store) keeps it in memory only.
  Term term_ = 0;
  NodeId voted_for_ = kNoNode;
  consensus::ContiguousLog<Entry> log_;

  // Durability plumbing: the persister gates dependent messages on fsyncs;
  // the mirror stages every log mutation into the WAL and tracks the
  // fsync-covered prefix (shared with Raft* via the consensus runtime).
  storage::Persister persister_;
  consensus::DurableLogMirror<Entry> mirror_;
  bool recovering_ = false;  // gates compaction during recovery

  // Latest checkpoint: always covers exactly the log's compacted prefix
  // (snap_.last_index == log_.base_index() after the first compaction), so
  // any follower behind the base can be served a snapshot.
  consensus::Snapshot snap_;
  consensus::CompactionTrigger compaction_;
  int64_t snapshots_installed_ = 0;

  // Volatile state.
  Role role_ = Role::kFollower;
  NodeId leader_ = kNoNode;

  // Shared runtime machinery.
  consensus::ElectionTimer election_;
  consensus::PeriodicTimer heartbeat_;
  consensus::Batcher batcher_;
  consensus::Applier applier_;

  // Candidate state.
  consensus::QuorumTracker votes_;

  // Leader state. Ordered maps: advance_commit iterates match_index_, and
  // quorum counting must visit peers in a seed-stable order (lint rule D1).
  std::map<NodeId, LogIndex> next_index_;
  std::map<NodeId, LogIndex> match_index_;
  // Per-peer in-flight window: replicate_to pumps batches until it closes;
  // ack/reject/loss events below reopen or roll it back.
  consensus::PeerPipeline pipe_;
};

}  // namespace praft::raft
