#pragma once

#include <unordered_map>
#include <vector>

#include "consensus/env.h"
#include "consensus/group.h"
#include "consensus/types.h"
#include "net/packet.h"
#include "raft/messages.h"

namespace praft::raft {

/// Tunables. Defaults are WAN-scale (the paper's testbed spans 25–292 ms
/// RTTs); unit tests shrink them to keep simulated time small.
struct Options {
  Duration election_timeout_min = msec(1200);
  Duration election_timeout_max = msec(2400);
  Duration heartbeat_interval = msec(150);
  /// Leader batching delay (etcd-style): submissions within this window ride
  /// one AppendEntries. 0 means flush on the next event-loop turn.
  Duration batch_delay = msec(1);
  size_t max_entries_per_append = 4096;
};

enum class Role { kFollower, kCandidate, kLeader };

/// Standard Raft (Ongaro & Ousterhout 2014) as the paper's baseline:
/// randomized elections, AppendEntries with conflict-suffix erasure, in-order
/// commit, and the §5.4.2 restriction (only current-term entries commit by
/// counting). This is the protocol Raft* deviates from (see src/raftstar).
class RaftNode {
 public:
  RaftNode(consensus::Group group, consensus::Env& env, Options opt = {});

  /// Arms the election timer. Call once after construction.
  void start();

  /// Feeds a network packet whose payload holds a raft::Message.
  void on_packet(const net::Packet& p);

  /// Leader-only: appends `cmd` to the log and schedules replication.
  /// Returns the assigned index, or -1 when this node is not the leader.
  LogIndex submit(const kv::Command& cmd);

  /// Registers the in-order apply callback (exactly once per index).
  void set_apply(consensus::ApplyFn fn) { apply_ = std::move(fn); }

  [[nodiscard]] Role role() const { return role_; }
  [[nodiscard]] bool is_leader() const { return role_ == Role::kLeader; }
  [[nodiscard]] Term current_term() const { return term_; }
  [[nodiscard]] NodeId leader_hint() const { return leader_; }
  [[nodiscard]] LogIndex commit_index() const { return commit_; }
  [[nodiscard]] LogIndex last_index() const {
    return static_cast<LogIndex>(log_.size()) - 1;
  }
  [[nodiscard]] const Entry& entry_at(LogIndex i) const {
    return log_[static_cast<size_t>(i)];
  }
  [[nodiscard]] NodeId id() const { return group_.self; }

  /// Test hook: forces an immediate election attempt.
  void force_election() { start_election(); }

 private:
  void on_request_vote(const RequestVote& m);
  void on_vote_reply(const VoteReply& m);
  void on_append_entries(const AppendEntries& m);
  void on_append_reply(const AppendReply& m);

  void arm_election_timer();
  void arm_heartbeat(uint64_t epoch);
  void start_election();
  void become_leader();
  void step_down(Term t);
  void schedule_flush();
  void replicate_to(NodeId peer);
  void broadcast_append();
  void advance_commit();
  void deliver_applies();
  [[nodiscard]] Term term_at(LogIndex i) const;

  consensus::Group group_;
  consensus::Env& env_;
  Options opt_;

  // Persistent state (modeled in memory; the simulator never loses it).
  Term term_ = 0;
  NodeId voted_for_ = kNoNode;
  std::vector<Entry> log_;  // log_[0] is the sentinel

  // Volatile state.
  Role role_ = Role::kFollower;
  NodeId leader_ = kNoNode;
  LogIndex commit_ = 0;
  LogIndex applied_ = 0;
  Time last_heartbeat_ = 0;
  uint64_t election_epoch_ = 0;
  uint64_t heartbeat_epoch_ = 0;
  bool flush_scheduled_ = false;

  // Candidate state.
  consensus::QuorumTracker votes_;

  // Leader state.
  std::unordered_map<NodeId, LogIndex> next_index_;
  std::unordered_map<NodeId, LogIndex> match_index_;

  consensus::ApplyFn apply_;
};

}  // namespace praft::raft
