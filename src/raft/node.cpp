#include "raft/node.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"

namespace praft::raft {

RaftNode::RaftNode(consensus::Group group, consensus::Env& env, Options opt,
                   storage::DurableStore* store)
    : group_(std::move(group)),
      env_(env),
      opt_(opt),
      persister_(env, store, opt_.fsync_duration, opt_.sync_batch_delay,
                 [this] { return hard_state(); }),
      mirror_(persister_, log_),
      election_(env, opt_.election_timeout_min, opt_.election_timeout_max),
      heartbeat_(env),
      batcher_(env, opt_,
               [this] {
                 if (role_ == Role::kLeader) broadcast_append();
               }),
      votes_(group_.majority()),
      pipe_(opt_) {
  group_.validate();
  election_.set_gate([this] { return role_ != Role::kLeader; });
  election_.set_handler([this](bool expired) {
    if (expired) start_election();
  });
  heartbeat_.set_gate([this] { return role_ == Role::kLeader; });
  heartbeat_.set_handler([this] {
    probe_retransmits();
    broadcast_append();
    // Interval-leg compaction must also fire on an idle leader (followers
    // re-evaluate on the commit_to every heartbeat append triggers).
    maybe_compact(/*force=*/false);
  });
}

void RaftNode::start() { election_.start(); }

Term RaftNode::term_at(LogIndex i) const { return log_.at(i).term; }

void RaftNode::note_appended() {
  mirror_.note_appended([this] {
    if (role_ == Role::kLeader) advance_commit();
  });
}

void RaftNode::start_election() {
  ++term_;
  role_ = Role::kCandidate;
  leader_ = kNoNode;
  voted_for_ = group_.self;
  votes_ = consensus::QuorumTracker(group_.majority());
  votes_.add(group_.self);
  persister_.hard_state();  // the self-vote must survive a crash
  election_.touch();  // restart the clock for this attempt
  PRAFT_LOG(kDebug) << "raft " << group_.self << " starts election term "
                    << term_;
  RequestVote rv{term_, group_.self, last_index(), term_at(last_index())};
  for (NodeId peer : group_.members) {
    if (peer == group_.self) continue;
    persister_.send(peer, Message{rv}, wire_size(rv));
  }
  if (votes_.reached()) become_leader();  // single-node group
}

void RaftNode::step_down(Term t) {
  if (t > term_) {
    term_ = t;
    voted_for_ = kNoNode;
    persister_.hard_state();
  }
  if (role_ == Role::kLeader) {
    next_index_.clear();
    match_index_.clear();
    heartbeat_.stop();
    // A flush armed while we led must not fire now that we are deposed, and
    // in-flight windows from this reign must not gate (or be retired by
    // stale acks during) a future one.
    batcher_.cancel();
    pipe_.reset_all();
  }
  role_ = Role::kFollower;
}

void RaftNode::on_packet(const net::Packet& p) {
  const auto* msg = net::payload_as<Message>(p);
  PRAFT_CHECK_MSG(msg != nullptr, "raft node got foreign payload");
  std::visit(
      [this](const auto& m) {
        using M = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<M, RequestVote>) {
          on_request_vote(m);
        } else if constexpr (std::is_same_v<M, VoteReply>) {
          on_vote_reply(m);
        } else if constexpr (std::is_same_v<M, AppendEntries>) {
          on_append_entries(m);
        } else if constexpr (std::is_same_v<M, AppendReply>) {
          on_append_reply(m);
        } else if constexpr (std::is_same_v<M, InstallSnapshot>) {
          on_install_snapshot(m);
        } else {
          on_install_reply(m);
        }
      },
      *msg);
}

void RaftNode::on_request_vote(const RequestVote& m) {
  if (m.term > term_) step_down(m.term);
  bool granted = false;
  if (m.term == term_ &&
      (voted_for_ == kNoNode || voted_for_ == m.candidate)) {
    // §5.4.1 election restriction: candidate's log at least as up-to-date.
    const Term my_last_term = term_at(last_index());
    const bool up_to_date =
        m.last_term > my_last_term ||
        (m.last_term == my_last_term && m.last_index >= last_index());
    if (up_to_date) {
      granted = true;
      voted_for_ = m.candidate;
      persister_.hard_state();
      election_.touch();  // granting a vote defers our own election
    }
  }
  VoteReply reply{term_, group_.self, granted};
  if (granted && opt_.unsafe_skip_vote_fsync) {
    // TEST-ONLY injected bug: the reply leaves before the vote hits disk.
    persister_.send_unsynced(m.candidate, Message{reply}, wire_size(reply));
  } else {
    persister_.send(m.candidate, Message{reply}, wire_size(reply));
  }
}

void RaftNode::on_vote_reply(const VoteReply& m) {
  if (m.term > term_) {
    step_down(m.term);
    return;
  }
  if (role_ != Role::kCandidate || m.term != term_ || !m.granted) return;
  votes_.add(m.voter);
  if (votes_.reached()) become_leader();
}

void RaftNode::become_leader() {
  role_ = Role::kLeader;
  leader_ = group_.self;
  next_index_.clear();
  match_index_.clear();
  pipe_.reset_all();
  for (NodeId peer : group_.members) {
    if (peer == group_.self) continue;
    next_index_[peer] = last_index() + 1;
    match_index_[peer] = 0;
  }
  PRAFT_LOG(kInfo) << "raft " << group_.self << " leader at term " << term_;
  // Commit a no-op to pull prior-term entries to commit (§5.4.2 workaround —
  // Raft cannot count replicas of old-term entries directly).
  log_.append(Entry{term_, kv::noop_command()});
  note_appended();
  broadcast_append();
  heartbeat_.start(opt_.heartbeat_interval);
}

LogIndex RaftNode::submit(const kv::Command& cmd) {
  if (role_ != Role::kLeader) return -1;
  // Backpressure: a full replication pipe (batch_backpressure_bytes of
  // pending + un-acked flushed data) refuses new submissions — the same
  // temporary -1 a non-leader gives, which the harness retries later.
  if (!batcher_.can_accept()) return -1;
  log_.append(Entry{term_, cmd});
  note_appended();
  batcher_.add_pending(wire::entry_bytes(cmd));
  return last_index();
}

void RaftNode::broadcast_append() {
  for (NodeId peer : group_.members) {
    if (peer == group_.self) continue;
    replicate_to(peer);
  }
  advance_commit();  // single-node groups commit immediately
}

void RaftNode::replicate_to(NodeId peer) {
  // Pump: send batches until the peer is caught up or its in-flight window
  // closes (consensus::PeerPipeline). nextIndex advances optimistically per
  // batch, so successive iterations carry disjoint suffixes — multiple
  // AppendEntries in flight per peer; a reject (or the retransmit probe
  // after a loss) rolls the window back.
  bool sent_any = false;
  for (;;) {
    const LogIndex next = next_index_[peer];
    PRAFT_CHECK(next >= 1);
    if (next <= log_.base_index()) {
      // The entries this follower needs were compacted away: catch it up
      // with the checkpoint instead of log replay (the ported Checkpoint
      // action's state-transfer half).
      if (!pipe_.can_send(peer)) return;
      send_snapshot(peer);
      sent_any = true;
      continue;  // appends pipeline right behind the snapshot
    }
    const bool has_new = last_index() >= next;
    if (!has_new && sent_any) return;  // caught up; no trailing keep-alive
    if (has_new && !pipe_.can_send(peer)) return;  // window full
    const LogIndex prev = next - 1;
    AppendEntries ae;
    ae.term = term_;
    ae.leader = group_.self;
    ae.prev_index = prev;
    ae.prev_term = term_at(std::min(prev, last_index()));
    ae.commit = commit_index();
    const LogIndex hi =
        std::min(last_index(),
                 prev + static_cast<LogIndex>(opt_.max_entries_per_batch));
    for (LogIndex i = prev + 1; i <= hi; ++i) {
      ae.entries.push_back(log_.at(i));
    }
    const size_t bytes = wire_size(ae);
    persister_.send(peer, Message{ae}, bytes);
    // Empty keep-alives stay untracked and ungated: heartbeats must always
    // flow, and their cumulative ok-replies (match == prev) retire every
    // outstanding batch they cover.
    if (!has_new) return;
    pipe_.on_send(peer, next, hi, bytes, env_.now());
    next_index_[peer] = hi + 1;
    sent_any = true;
  }
}

void RaftNode::probe_retransmits() {
  // Loss detection: a peer whose oldest in-flight batch outlived the
  // retransmit timeout gets its window unwound and its nextIndex rolled
  // back to the lowest un-acked position; the heartbeat's broadcast_append
  // then re-sends from there (windowed retransmit probe).
  for (NodeId peer : group_.members) {
    if (peer == group_.self || !pipe_.retransmit_due(peer, env_.now())) {
      continue;
    }
    const LogIndex lo = pipe_.on_loss(peer);
    if (lo >= 1) {
      next_index_[peer] = std::max<LogIndex>(
          1, std::min(next_index_[peer], lo));
    }
  }
}

void RaftNode::on_append_entries(const AppendEntries& m) {
  if (m.term < term_) {
    AppendReply reply{term_, group_.self, false, 0, 0};
    persister_.send(m.leader, Message{reply}, wire_size(reply));
    return;
  }
  step_down(m.term);
  leader_ = m.leader;
  election_.touch();

  // A prev below our snapshot base points into the compacted prefix. That
  // prefix is committed and applied here, and the leader's copy is identical
  // (Leader Completeness), so clamp: skip the covered entries and resume the
  // append at the base sentinel, whose term check the snapshot already
  // settled.
  LogIndex prev = m.prev_index;
  size_t skip = 0;
  if (prev < log_.base_index()) {
    const LogIndex covered = std::min(
        static_cast<LogIndex>(m.entries.size()), log_.base_index() - prev);
    skip = static_cast<size_t>(covered);
    prev += covered;
    if (prev < log_.base_index()) {
      // The whole append predates our snapshot: ack it as matched.
      AppendReply reply{term_, group_.self, true,
                        m.prev_index + static_cast<LogIndex>(m.entries.size()),
                        0};
      persister_.send(m.leader, Message{reply}, wire_size(reply));
      return;
    }
  }

  if (skip == 0 &&
      (m.prev_index > last_index() || term_at(m.prev_index) != m.prev_term)) {
    // Consistency check failed; hint the leader where to back off.
    const LogIndex hint = std::min(last_index() + 1, m.prev_index);
    AppendReply reply{term_, group_.self, false, 0, std::max<LogIndex>(1, hint)};
    persister_.send(m.leader, Message{reply}, wire_size(reply));
    return;
  }

  // Append, erasing any conflicting suffix (the behaviour that prevents a
  // direct refinement mapping to Paxos — see paper §3).
  LogIndex idx = prev;
  for (size_t k = skip; k < m.entries.size(); ++k) {
    const Entry& e = m.entries[k];
    ++idx;
    if (idx <= last_index()) {
      if (log_.at(idx).term != e.term) {
        log_.truncate_after(idx - 1);  // erase extraneous entries
        log_.append(e);
      }
    } else {
      log_.append(e);
    }
  }
  note_appended();
  const LogIndex match = m.prev_index + static_cast<LogIndex>(m.entries.size());
  commit_to(std::min(m.commit, match));
  // The ok-reply is what lets the leader count this replica toward a commit
  // quorum, so it must not leave before the appended entries (and any term
  // bump above) are durable — persister_.send gates it on the fsync barrier.
  AppendReply reply{term_, group_.self, true, match, 0};
  persister_.send(m.leader, Message{reply}, wire_size(reply));
}

void RaftNode::on_append_reply(const AppendReply& m) {
  if (m.term > term_) {
    step_down(m.term);
    return;
  }
  if (role_ != Role::kLeader || m.term != term_) return;
  if (m.ok) {
    // Cumulative ack: retires every in-flight batch the match index covers,
    // reopening the peer's window for the refill below (and feeding the
    // peer's RTT estimate for adaptive retransmit timeouts).
    pipe_.on_ack(m.follower, m.match_index, env_.now());
    match_index_[m.follower] = std::max(match_index_[m.follower], m.match_index);
    next_index_[m.follower] =
        std::max(next_index_[m.follower], m.match_index + 1);
    advance_commit();
    if (next_index_[m.follower] <= last_index()) replicate_to(m.follower);
  } else {
    // The peer's log diverged below our window: everything pipelined after
    // the rejected batch is garbage too, so unwind it all before backing
    // nextIndex off.
    pipe_.on_reject(m.follower);
    next_index_[m.follower] =
        std::max<LogIndex>(1, std::min(next_index_[m.follower] - 1,
                                       m.conflict_hint));
    replicate_to(m.follower);
  }
}

void RaftNode::advance_commit() {
  // Highest N replicated on a majority with log[N].term == current term
  // (§5.4.2: never commit old-term entries by counting).
  for (LogIndex n = last_index(); n > commit_index(); --n) {
    if (term_at(n) != term_) break;
    // Self counts only once its own entries are durable (the mirror's
    // note_appended barrier advances the durable index) — a leader whose
    // disk lags may not treat its volatile log as a replica.
    int count = mirror_.durable_index() >= n ? 1 : 0;
    for (const auto& [peer, match] : match_index_) {
      if (match >= n) ++count;
    }
    if (count >= opt_.commit_quorum(group_.majority())) {
      commit_to(n);
      break;
    }
  }
}

void RaftNode::commit_to(LogIndex target) {
  // Committed entries are no longer in flight for the batching controller
  // (leader only — a follower never flushed them).
  if (role_ == Role::kLeader) {
    size_t acked = 0;
    for (LogIndex i = commit_index() + 1; i <= target; ++i) {
      acked += wire::entry_bytes(log_.at(i).cmd);
    }
    if (acked > 0) batcher_.note_acked(acked);
  }
  applier_.commit_to(target,
                     [this](LogIndex i) { return &log_.at(i).cmd; });
  maybe_compact(/*force=*/false);
}

void RaftNode::maybe_compact(bool force) {
  if (recovering_ || !applier_.can_snapshot()) return;
  const LogIndex target = applier_.applied();
  const auto compactable = static_cast<size_t>(target - log_.base_index());
  if (!compaction_.due(opt_, compactable, env_.now(), force)) return;
  snap_.last_index = target;
  snap_.last_term = term_at(target);
  snap_.state = applier_.capture_state();
  log_.compact_to(target);
  // Durably: the snapshot substitutes for the WAL prefix it covers.
  persister_.snapshot(snap_);
  compaction_.fired(env_.now());
  PRAFT_LOG(kDebug) << "raft " << group_.self << " compacted log to "
                    << target;
}

void RaftNode::send_snapshot(NodeId peer) {
  PRAFT_CHECK_MSG(snap_.valid() && snap_.last_index == log_.base_index(),
                  "snapshot does not cover the compacted prefix");
  InstallSnapshot is{term_, group_.self, snap_};
  const size_t bytes = wire_size(is);
  persister_.send(peer, Message{is}, bytes);
  // The snapshot occupies the peer's window like any batch (its reply acks
  // snap_.last_index); a loss rolls nextIndex back below the base, which
  // re-enters the snapshot path.
  pipe_.on_send(peer, next_index_[peer], snap_.last_index, bytes, env_.now());
  // Optimistic pipelining, like replicate_to: resume appends right after
  // the snapshot; the reply (or a reject) corrects the window.
  next_index_[peer] = snap_.last_index + 1;
}

void RaftNode::on_install_snapshot(const InstallSnapshot& m) {
  if (m.term >= term_) {
    step_down(m.term);
    leader_ = m.leader;
    election_.touch();
    if (applier_.install_snapshot(m.snap)) {
      ++snapshots_installed_;
      // Persist the snapshot FIRST so the WAL truncation a reset stages is
      // committed against it (staging order = durable apply order).
      persister_.snapshot(m.snap);
      if (m.snap.last_index <= last_index() &&
          m.snap.last_index > log_.base_index() &&
          term_at(m.snap.last_index) == m.snap.last_term) {
        // Our log already holds the matching entry: keep the suffix and
        // just move the base (Raft §7's retain-following-entries case).
        log_.compact_to(m.snap.last_index);
      } else {
        // Short or conflicting log: anything we held beyond the snapshot
        // conflicts with the committed prefix and is uncommitted — drop it.
        log_.reset_to(m.snap.last_index, Entry{m.snap.last_term, {}});
      }
      snap_ = m.snap;
      PRAFT_LOG(kInfo) << "raft " << group_.self << " installed snapshot @"
                       << m.snap.last_index;
    }
  }
  InstallSnapshotReply reply{term_, group_.self, applier_.applied()};
  persister_.send(m.leader, Message{reply}, wire_size(reply));
}

storage::RecoveryStats RaftNode::recover(const storage::DurableImage& img) {
  PRAFT_CHECK_MSG(role_ == Role::kFollower && last_index() == 0 && term_ == 0,
                  "recover() must run once, on a fresh node, before start()");
  recovering_ = true;
  term_ = img.hard.term;
  voted_for_ = img.hard.vote;
  if (img.snap.valid()) {
    // State transfer from our own disk: the snapshot stands in for the WAL
    // prefix it covers, exactly like a peer-shipped InstallSnapshot.
    applier_.install_snapshot(img.snap);
    snap_ = img.snap;
  }
  const storage::RecoveryStats stats = mirror_.replay(img);
  recovering_ = false;
  PRAFT_LOG(kInfo) << "raft " << group_.self << " recovered: term " << term_
                   << ", log to " << last_index() << " (" << stats.replayed
                   << " replayed above floor " << stats.snapshot_floor << ")";
  return stats;
}

void RaftNode::on_install_reply(const InstallSnapshotReply& m) {
  if (m.term > term_) {
    step_down(m.term);
    return;
  }
  if (role_ != Role::kLeader || m.term != term_) return;
  pipe_.on_ack(m.follower, m.last_index, env_.now());
  match_index_[m.follower] = std::max(match_index_[m.follower], m.last_index);
  next_index_[m.follower] =
      std::max(next_index_[m.follower], m.last_index + 1);
  advance_commit();
  if (next_index_[m.follower] <= last_index()) replicate_to(m.follower);
}

}  // namespace praft::raft
