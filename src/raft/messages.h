#pragma once

#include <variant>
#include <vector>

#include "consensus/snapshot.h"
#include "consensus/types.h"
#include "kv/command.h"

namespace praft::raft {

using consensus::LogIndex;
using consensus::Term;

struct Entry {
  Term term = 0;
  kv::Command cmd;
};

struct RequestVote {
  Term term = 0;
  NodeId candidate = kNoNode;
  LogIndex last_index = 0;
  Term last_term = 0;
};

struct VoteReply {
  Term term = 0;
  NodeId voter = kNoNode;
  bool granted = false;
};

struct AppendEntries {
  Term term = 0;
  NodeId leader = kNoNode;
  LogIndex prev_index = 0;
  Term prev_term = 0;
  std::vector<Entry> entries;
  LogIndex commit = 0;
};

struct AppendReply {
  Term term = 0;
  NodeId follower = kNoNode;
  bool ok = false;
  LogIndex match_index = 0;    // on success: prev + |entries|
  LogIndex conflict_hint = 0;  // on failure: where the leader should back off
};

/// Snapshot state transfer (Raft §7): the leader ships its retained
/// checkpoint to a follower whose nextIndex fell behind the leader's
/// compacted log prefix. Replaces replaying the discarded entries.
struct InstallSnapshot {
  Term term = 0;
  NodeId leader = kNoNode;
  consensus::Snapshot snap;
};

struct InstallSnapshotReply {
  Term term = 0;
  NodeId follower = kNoNode;
  LogIndex last_index = 0;  // follower's applied watermark after the install
};

using Message = std::variant<RequestVote, VoteReply, AppendEntries, AppendReply,
                             InstallSnapshot, InstallSnapshotReply>;

inline size_t wire_size(const RequestVote&) { return consensus::wire::kSmallMsg; }
inline size_t wire_size(const VoteReply&) { return consensus::wire::kSmallMsg; }
inline size_t wire_size(const AppendReply&) { return consensus::wire::kSmallMsg; }
inline size_t wire_size(const InstallSnapshot& m) { return m.snap.wire_bytes(); }
inline size_t wire_size(const InstallSnapshotReply&) {
  return consensus::wire::kSmallMsg;
}
inline size_t wire_size(const AppendEntries& m) {
  size_t b = consensus::wire::kMsgHeader;
  for (const auto& e : m.entries) b += consensus::wire::entry_bytes(e.cmd);
  return b;
}

inline size_t wire_size(const Message& m) {
  return std::visit([](const auto& x) { return wire_size(x); }, m);
}

}  // namespace praft::raft
